#!/usr/bin/env bash
# CI floor for the repo: build everything, vet, race-check the concurrency
# hot spots (the message-passing substrate and the collectives that run on
# it), then run the full test suite.
#
# Usage: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race (comm + core)"
go test -race ./internal/comm/... ./internal/core/...

echo "== go test ./..."
go test ./...

echo "CI green."
