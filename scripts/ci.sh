#!/usr/bin/env bash
# CI floor for the repo: build everything, vet, enforce the documentation
# floor (godoc coverage on the exported API packages + docs-vs-code drift),
# race-check the concurrency hot spots (the message-passing substrate with
# its real transports, the collectives and parallel merge that run on it),
# smoke the real execution backends (goroutine + loopback TCP) through the
# sparbench transport sweep, run the full test suite, prove the
# record/replay contract end to end (record a scenario trace with
# sparreplay, replay it through sparbench, diff the rows byte for byte),
# prove the observability contract the same way (live vs replay Perfetto
# exports byte-identical, the pinned lstm export matching its committed
# golden under internal/experiments/testdata),
# smoke-run the k-way merge ablation benchmarks, then record the
# deterministic sweeps as
# BENCH_2.json (contention model), BENCH_3.json (k-way merge/scratch),
# BENCH_4.json (hierarchy-depth ablation), BENCH_5.json (runtime
# adaptation ablation), BENCH_7.json (overlap/bucketing ablation plus
# the chunked-pipeline cost-model validation), and BENCH_8.json (the
# multi-tenant cluster sweep plus the pinned adapt-diversity cells),
# hard-failing if any drifts
# from the committed files. BENCH_5's acceptance invariants (adaptive
# beats static-uniform on clustered/drifting workloads, within noise
# elsewhere) are enforced by TestBench5AcceptanceCriteria against the
# committed file during the test phase, BENCH_7's (bucketed beats
# per-layer and fused on both workloads, pipeline model within its error
# band) by TestBench7AcceptanceCriteria/TestBench7PipelineModelBand, and
# BENCH_8's (full mix concurrent, cost-aware strictly beats random on
# mean predicted job time, packed holds slowdown 1.0 on exclusive
# groups) by TestBench8AcceptanceCriteria/TestBench8AdaptDiversity, so a
# drift that regresses any fails twice. BENCH_6.json (the
# execution-backend comparison) carries measured wall times, so it is NOT
# drift-gated; the transport smoke plus the equivalence/calibration tests
# enforce its deterministic claims instead. BENCH_7's wall-clock overlap
# snapshot lives in its note as static text for the same reason.
#
# Usage: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== doccheck (exported symbols need doc comments)"
go run ./tools/doccheck . ./internal/simnet ./internal/comm ./internal/core ./internal/adapt ./internal/scenario ./internal/cluster ./internal/obs

echo "== docdrift (docs tables must name real identifiers)"
go run ./tools/docdrift -root . docs/COLLECTIVES.md docs/ARCHITECTURE.md

echo "== go test -race (comm + core + adapt + stream + scenario + train + cluster + obs: real transports, parallel merge, lazy RNG streams, chunked pipelines + bucket scheduler, multi-tenant event loop, sharded metrics + concurrent span tracks)"
go test -race ./internal/comm/... ./internal/core/... ./internal/adapt/... ./internal/stream/... ./internal/scenario/... ./internal/train/... ./internal/cluster/... ./internal/obs/...

echo "== transport smoke (goroutine + loopback TCP backends, wall clock)"
go run ./cmd/sparbench -sweep transport -transport all > /dev/null

echo "== overlap wall smoke (bucketed vs per-layer on the goroutine backend, 1 run)"
go run ./cmd/sparbench -sweep overlapwall -runs 1 > /dev/null

echo "== go test ./..."
go test ./...

tmp_bench=$(mktemp)
tmp_bench3=$(mktemp)
tmp_bench4=$(mktemp)
tmp_bench5=$(mktemp)
tmp_bench7=$(mktemp)
tmp_bench8=$(mktemp)
tmp_replay=$(mktemp -d)
trap 'rm -f "$tmp_bench" "$tmp_bench3" "$tmp_bench4" "$tmp_bench5" "$tmp_bench7" "$tmp_bench8"; rm -rf "$tmp_replay"' EXIT

echo "== replay determinism (record a scenario trace, replay it, diff against the live run)"
go run ./cmd/sparreplay -record -scenario clustered -out "$tmp_replay/t.trace"
go run ./cmd/sparreplay -scenario clustered -json > "$tmp_replay/live.json"
go run ./cmd/sparbench -replay "$tmp_replay/t.trace" -json > "$tmp_replay/replay.json"
if ! cmp -s "$tmp_replay/live.json" "$tmp_replay/replay.json"; then
  echo "replaying the recorded trace diverged from the live run:" >&2
  diff "$tmp_replay/live.json" "$tmp_replay/replay.json" >&2 || true
  exit 1
fi

echo "== obs export determinism (live run vs trace replay must emit identical Perfetto JSON + metrics, and the pinned lstm export must match its committed golden)"
go run ./cmd/sparreplay -scenario clustered -obs "$tmp_replay/live_obs.json" -obsmetrics "$tmp_replay/live_obs.txt" > /dev/null
go run ./cmd/sparreplay -replay "$tmp_replay/t.trace" -obs "$tmp_replay/replay_obs.json" -obsmetrics "$tmp_replay/replay_obs.txt" > /dev/null
if ! cmp -s "$tmp_replay/live_obs.json" "$tmp_replay/replay_obs.json"; then
  echo "replaying the recorded trace produced a different observability timeline:" >&2
  diff "$tmp_replay/live_obs.json" "$tmp_replay/replay_obs.json" >&2 || true
  exit 1
fi
if ! cmp -s "$tmp_replay/live_obs.txt" "$tmp_replay/replay_obs.txt"; then
  echo "replaying the recorded trace produced a different metrics dump:" >&2
  diff "$tmp_replay/live_obs.txt" "$tmp_replay/replay_obs.txt" >&2 || true
  exit 1
fi
go run ./cmd/sparreplay -scenario lstm -obs "$tmp_replay/lstm_obs.json" > /dev/null
if ! cmp -s "$tmp_replay/lstm_obs.json" internal/experiments/testdata/obs_lstm_golden.json; then
  echo "the lstm Perfetto export drifted from the committed golden (regenerate with go test ./internal/experiments -run TestGoldenObsExport -update):" >&2
  diff "$tmp_replay/lstm_obs.json" internal/experiments/testdata/obs_lstm_golden.json >&2 || true
  exit 1
fi

echo "== bench smoke (k-way merge + scratch + sketch-overhead ablations, 1 iteration each)"
go test -run '^$' -bench 'BenchmarkAblationKWayMerge|BenchmarkAblationScratchAllreduce|BenchmarkAblationSketchOverhead' -benchtime 1x . > /dev/null

echo "== record BENCH_2.json (contention-model sweep; simulated metrics only, deterministic)"
go run ./cmd/sparbench -sweep contention -json > "$tmp_bench"
if ! cmp -s "$tmp_bench" BENCH_2.json; then
  cp "$tmp_bench" BENCH_2.json
  echo "BENCH_2.json drifted from the committed sweep — regenerated it; commit the update" >&2
  exit 1
fi

echo "== record BENCH_3.json (k-way merge/scratch ablation; deterministic alloc + sim metrics)"
go run ./cmd/sparbench -sweep merge -json > "$tmp_bench3"
if ! cmp -s "$tmp_bench3" BENCH_3.json; then
  cp "$tmp_bench3" BENCH_3.json
  echo "BENCH_3.json drifted from the committed sweep — regenerated it; commit the update" >&2
  exit 1
fi

echo "== record BENCH_4.json (hierarchy-depth ablation; simulated metrics only, deterministic)"
go run ./cmd/sparbench -sweep hierlevels -json > "$tmp_bench4"
if ! cmp -s "$tmp_bench4" BENCH_4.json; then
  cp "$tmp_bench4" BENCH_4.json
  echo "BENCH_4.json drifted from the committed sweep — regenerated it; commit the update" >&2
  exit 1
fi

echo "== record BENCH_5.json (runtime-adaptation ablation; simulated metrics only, deterministic)"
go run ./cmd/sparbench -sweep adapt -json > "$tmp_bench5"
if ! cmp -s "$tmp_bench5" BENCH_5.json; then
  cp "$tmp_bench5" BENCH_5.json
  echo "BENCH_5.json drifted from the committed sweep — regenerated it; commit the update" >&2
  exit 1
fi

echo "== record BENCH_7.json (overlap/bucketing ablation + pipeline cost-model cells; simulated metrics only, deterministic)"
go run ./cmd/sparbench -sweep overlap -json > "$tmp_bench7"
if ! cmp -s "$tmp_bench7" BENCH_7.json; then
  cp "$tmp_bench7" BENCH_7.json
  echo "BENCH_7.json drifted from the committed sweep — regenerated it; commit the update" >&2
  exit 1
fi

echo "== record BENCH_8.json (multi-tenant cluster sweep + pinned adapt-diversity cells; simulated metrics only, deterministic — doubles as the cluster sweep smoke)"
go run ./cmd/sparbench -sweep cluster -json > "$tmp_bench8"
if ! cmp -s "$tmp_bench8" BENCH_8.json; then
  cp "$tmp_bench8" BENCH_8.json
  echo "BENCH_8.json drifted from the committed sweep — regenerated it; commit the update" >&2
  exit 1
fi

echo "CI green."
