// Command mlopt regenerates the large-scale classification experiments of
// §8.2: Table 2 (distributed SGD with MPI-OPT on URL/Webspam-shaped data,
// SparCML versus dense MPI), the stochastic-coordinate-descent comparison
// (sparse versus dense allgather), and the Apache-Spark-layer comparison.
//
// Usage:
//
//	mlopt -exp table2 [-scale 0.02] [-epochs 3]
//	mlopt -exp scd    [-scale 0.01]
//	mlopt -exp spark  [-scale 0.02]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlopt: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlopt", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "table2", "experiment: table2 | scd | spark")
		scale  = fs.Float64("scale", 0.02, "dataset scale relative to the paper's (rows and dimension)")
		epochs = fs.Int("epochs", 3, "epochs per configuration")
		seed   = fs.Int64("seed", 1, "random seed")
		csv    = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *exp {
	case "table2":
		fmt.Fprintf(stdout, "# Table 2: distributed optimization using MPI-OPT (dataset scale %.3f)\n", *scale)
		fmt.Fprintln(stdout, "# per-epoch simulated times; communication part in brackets, as in the paper")
		tb := report.NewTable("system", "dataset", "model", "nodes", "baseline", "algorithm", "algo-time", "speedup", "comm-speedup", "final-acc")
		for _, tc := range experiments.DefaultTable2Cases(*scale) {
			row := experiments.RunTable2Case(tc, *epochs, *seed)
			tb.AddRowRaw(
				row.System, row.Dataset, row.Model, fmt.Sprint(row.Nodes),
				fmt.Sprintf("%s (%s)", report.FormatSeconds(row.BaselineTime), report.FormatSeconds(row.BaselineComm)),
				row.Algorithm.String(),
				fmt.Sprintf("%s (%s)", report.FormatSeconds(row.AlgoTime), report.FormatSeconds(row.AlgoComm)),
				fmt.Sprintf("%.2f", row.Speedup),
				fmt.Sprintf("(%.2f)", row.CommSpeedup),
				fmt.Sprintf("%.3f", row.FinalAccuracy),
			)
		}
		return tb.Emit(stdout, *csv)
	case "scd":
		fmt.Fprintf(stdout, "# §8.2 SCD: sparse vs dense allgather, URL-shaped data, 8 nodes, 100 coords/node/iter (scale %.3f)\n", *scale)
		res := experiments.RunSCDExperiment(*scale, *epochs, *seed)
		tb := report.NewTable("variant", "epoch-time", "comm-time")
		tb.AddRowRaw("dense allgather", report.FormatSeconds(res.DenseEpochTime), report.FormatSeconds(res.DenseCommTime))
		tb.AddRowRaw("sparse allgather", report.FormatSeconds(res.SparseEpochTime), report.FormatSeconds(res.SparseCommTime))
		if err := tb.Emit(stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\noverall speedup %.2fx (paper: 1.8x); communication speedup %.2fx (paper: 5.3x); final accuracy %.3f\n",
			res.Speedup, res.CommSpeedup, res.FinalAccuracy)
		return nil
	case "spark":
		fmt.Fprintf(stdout, "# §8.2 Spark comparison: URL-shaped SGD, 8 nodes (scale %.3f)\n", *scale)
		res := experiments.RunSparkComparison(*scale, *epochs, *seed)
		tb := report.NewTable("layer", "epoch-time", "comm-time")
		tb.AddRowRaw("Spark-like (dense)", report.FormatSeconds(res.SparkEpoch), report.FormatSeconds(res.SparkComm))
		tb.AddRowRaw("dense MPI", report.FormatSeconds(res.DenseEpoch), report.FormatSeconds(res.DenseComm))
		tb.AddRowRaw("SparCML sparse", report.FormatSeconds(res.SparseEpoch), report.FormatSeconds(res.SparseComm))
		if err := tb.Emit(stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ncomm speedup vs Spark-like: dense MPI %.1fx (paper on GigE: 12x), SparCML %.1fx (paper: up to 185x on Daint)\n",
			res.DenseVsSparkComm, res.SparseVsSparkComm)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
