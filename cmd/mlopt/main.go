// Command mlopt regenerates the large-scale classification experiments of
// §8.2: Table 2 (distributed SGD with MPI-OPT on URL/Webspam-shaped data,
// SparCML versus dense MPI), the stochastic-coordinate-descent comparison
// (sparse versus dense allgather), and the Apache-Spark-layer comparison.
//
// Usage:
//
//	mlopt -exp table2 [-scale 0.02] [-epochs 3]
//	mlopt -exp scd    [-scale 0.01]
//	mlopt -exp spark  [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlopt: ")
	var (
		exp    = flag.String("exp", "table2", "experiment: table2 | scd | spark")
		scale  = flag.Float64("scale", 0.02, "dataset scale relative to the paper's (rows and dimension)")
		epochs = flag.Int("epochs", 3, "epochs per configuration")
		seed   = flag.Int64("seed", 1, "random seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	switch *exp {
	case "table2":
		fmt.Printf("# Table 2: distributed optimization using MPI-OPT (dataset scale %.3f)\n", *scale)
		fmt.Println("# per-epoch simulated times; communication part in brackets, as in the paper")
		tb := report.NewTable("system", "dataset", "model", "nodes", "baseline", "algorithm", "algo-time", "speedup", "comm-speedup", "final-acc")
		for _, tc := range experiments.DefaultTable2Cases(*scale) {
			row := experiments.RunTable2Case(tc, *epochs, *seed)
			tb.AddRowRaw(
				row.System, row.Dataset, row.Model, fmt.Sprint(row.Nodes),
				fmt.Sprintf("%s (%s)", report.FormatSeconds(row.BaselineTime), report.FormatSeconds(row.BaselineComm)),
				row.Algorithm.String(),
				fmt.Sprintf("%s (%s)", report.FormatSeconds(row.AlgoTime), report.FormatSeconds(row.AlgoComm)),
				fmt.Sprintf("%.2f", row.Speedup),
				fmt.Sprintf("(%.2f)", row.CommSpeedup),
				fmt.Sprintf("%.3f", row.FinalAccuracy),
			)
		}
		emit(tb, *csv)
	case "scd":
		fmt.Printf("# §8.2 SCD: sparse vs dense allgather, URL-shaped data, 8 nodes, 100 coords/node/iter (scale %.3f)\n", *scale)
		res := experiments.RunSCDExperiment(*scale, *epochs, *seed)
		tb := report.NewTable("variant", "epoch-time", "comm-time")
		tb.AddRowRaw("dense allgather", report.FormatSeconds(res.DenseEpochTime), report.FormatSeconds(res.DenseCommTime))
		tb.AddRowRaw("sparse allgather", report.FormatSeconds(res.SparseEpochTime), report.FormatSeconds(res.SparseCommTime))
		emit(tb, *csv)
		fmt.Printf("\noverall speedup %.2fx (paper: 1.8x); communication speedup %.2fx (paper: 5.3x); final accuracy %.3f\n",
			res.Speedup, res.CommSpeedup, res.FinalAccuracy)
	case "spark":
		fmt.Printf("# §8.2 Spark comparison: URL-shaped SGD, 8 nodes (scale %.3f)\n", *scale)
		res := experiments.RunSparkComparison(*scale, *epochs, *seed)
		tb := report.NewTable("layer", "epoch-time", "comm-time")
		tb.AddRowRaw("Spark-like (dense)", report.FormatSeconds(res.SparkEpoch), report.FormatSeconds(res.SparkComm))
		tb.AddRowRaw("dense MPI", report.FormatSeconds(res.DenseEpoch), report.FormatSeconds(res.DenseComm))
		tb.AddRowRaw("SparCML sparse", report.FormatSeconds(res.SparseEpoch), report.FormatSeconds(res.SparseComm))
		emit(tb, *csv)
		fmt.Printf("\ncomm speedup vs Spark-like: dense MPI %.1fx (paper on GigE: 12x), SparCML %.1fx (paper: up to 185x on Daint)\n",
			res.DenseVsSparkComm, res.SparseVsSparkComm)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func emit(tb *report.Table, csv bool) {
	if csv {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	tb.Fprint(os.Stdout)
}
