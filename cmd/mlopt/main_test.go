package main

import (
	"strings"
	"testing"
)

func TestRunSCDTiny(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "scd", "-scale", "0.002", "-epochs", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sparse allgather") || !strings.Contains(out, "speedup") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunSparkTiny(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "spark", "-scale", "0.002", "-epochs", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SparCML sparse") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "bogus"}, &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
