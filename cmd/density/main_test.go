package main

import (
	"strings"
	"testing"
)

func TestRunFig7(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-fig", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") || !strings.Contains(buf.String(), "E[K]") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunFig1Analytic(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-fig", "1", "-n", "5000"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") || !strings.Contains(buf.String(), "analytic%") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-fig", "3"}, &buf); err == nil {
		t.Fatal("unknown figure must error")
	}
}
