// Command density regenerates the density-analysis figures: Figure 1 (the
// density of the reduced gradient versus node count and per-node density,
// analytic and empirical from real model gradients) and Figure 7 (the
// expected multiplicative growth of the reduced result under uniform
// sparsity, N=512).
//
// Usage:
//
//	density -fig 1 [-n 270000] [-empirical]
//	density -fig 7
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("density: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("density", flag.ContinueOnError)
	var (
		fig       = fs.Int("fig", 1, "figure to regenerate: 1 or 7")
		n         = fs.Int("n", 270000, "model dimension for Figure 1 (~ResNet20 parameter count)")
		empirical = fs.Bool("empirical", false, "also measure real TopK gradient fill-in (slower)")
		csv       = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *fig {
	case 1:
		nodes := report.Pow2Range(2, 256)
		densities := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}
		fmt.Fprintf(stdout, "# Figure 1: reduced-result density (%%) vs node count and per-node density; N=%d\n", *n)
		var rows []experiments.Fig1Row
		if *empirical {
			rows = experiments.Fig1Empirical(nodes[:6], densities, 1) // empirical capped at P=64
		} else {
			rows = experiments.Fig1Grid(*n, nodes, densities)
		}
		tb := report.NewTable("per-node-density%", "P", "analytic%", "empirical%")
		for _, r := range rows {
			emp := "-"
			if r.Empirical > 0 {
				emp = fmt.Sprintf("%.2f", r.Empirical*100)
			}
			tb.AddRowRaw(
				fmt.Sprintf("%.2f", r.PerNodeDensity*100),
				fmt.Sprint(r.P),
				fmt.Sprintf("%.2f", r.Analytic*100),
				emp,
			)
		}
		return tb.Emit(stdout, *csv)
	case 7:
		fmt.Fprintln(stdout, "# Figure 7: expected size growth of the reduced result, uniform distribution, N=512")
		ks := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
		ps := report.Pow2Range(2, 64)
		rows := experiments.Fig7Table(ks, ps)
		tb := report.NewTable("k", "P", "E[K]", "growth E[K]/k")
		for _, r := range rows {
			tb.AddRowRaw(
				fmt.Sprint(r.K),
				fmt.Sprint(r.P),
				fmt.Sprintf("%.1f", r.Expected),
				fmt.Sprintf("%.2f", r.Growth),
			)
		}
		return tb.Emit(stdout, *csv)
	default:
		return fmt.Errorf("unknown figure %d (want 1 or 7)", *fig)
	}
}
