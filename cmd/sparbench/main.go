// Command sparbench regenerates the Figure 3 micro-benchmarks: sparse
// allreduce time versus node count (left panel; paper: Piz Daint, N=16M,
// d=0.781%) and versus per-node density (right panel; paper: Greina GigE,
// N=16M, P=8), for all six algorithms.
//
// Usage:
//
//	sparbench -sweep nodes   [-n 1048576] [-density 0.00781] [-maxp 64] [-profile aries]
//	sparbench -sweep density [-n 1048576] [-p 8] [-profile gige]
//	sparbench -csv  # machine-readable output
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparbench: ")
	var (
		sweep    = flag.String("sweep", "nodes", "sweep to run: nodes | density")
		n        = flag.Int("n", 1<<20, "vector dimension N (paper uses 16M; 2^20 default keeps memory modest)")
		densityF = flag.Float64("density", 0.00781, "per-node density d for the nodes sweep")
		maxP     = flag.Int("maxp", 64, "largest node count for the nodes sweep")
		p        = flag.Int("p", 8, "node count for the density sweep")
		profile  = flag.String("profile", "", "network profile: aries | ib-fdr | gige | spark (default: aries for nodes, gige for density)")
		gens     = flag.Int("gens", 2, "data generations per cell (paper: 5)")
		runs     = flag.Int("runs", 3, "runs per generation (paper: 10)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		trace    = flag.Bool("trace", false, "dump a message timeline of one SSAR_Recursive_double allreduce and exit")
	)
	flag.Parse()

	if *trace {
		dumpTrace(*n, *densityF, *p, mustProfile(*profile, "aries"))
		return
	}

	var rows []experiments.MicrobenchRow
	switch *sweep {
	case "nodes":
		prof := mustProfile(*profile, "aries")
		nodes := report.Pow2Range(2, *maxP)
		fmt.Printf("# Figure 3 (left): reduction time vs node count; N=%d d=%.4f%% profile=%s\n",
			*n, *densityF*100, prof.Name)
		rows = experiments.Fig3NodeSweep(*n, *densityF, nodes, prof, *gens, *runs)
	case "density":
		prof := mustProfile(*profile, "gige")
		densities := []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}
		fmt.Printf("# Figure 3 (right): reduction time vs density; N=%d P=%d profile=%s\n",
			*n, *p, prof.Name)
		rows = experiments.Fig3DensitySweep(*n, *p, densities, prof, *gens, *runs)
	default:
		log.Fatalf("unknown sweep %q", *sweep)
	}

	tb := report.NewTable("algorithm", "P", "density%", "median", "q25", "q75", "result_nnz", "dense?")
	for _, r := range rows {
		tb.AddRowRaw(
			r.Algorithm.String(),
			fmt.Sprint(r.P),
			fmt.Sprintf("%.4f", r.Density*100),
			report.FormatSeconds(r.Median),
			report.FormatSeconds(r.Q25),
			report.FormatSeconds(r.Q75),
			fmt.Sprint(r.ResultNNZ),
			fmt.Sprint(r.ResultDense),
		)
	}
	if *csv {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	tb.Fprint(os.Stdout)
}

// dumpTrace runs one recursive-doubling sparse allreduce with tracing
// enabled and prints the virtual-time message timeline (the Figure 2
// schedule, observable directly).
func dumpTrace(n int, density float64, P int, prof simnet.Profile) {
	w := comm.NewWorld(P, prof)
	tr := w.EnableTrace()
	rng := rand.New(rand.NewSource(1))
	k := int(density * float64(n))
	if k < 1 {
		k = 1
	}
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		seen := map[int32]bool{}
		idx := make([]int32, 0, k)
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	comm.Run(w, func(p *comm.Proc) any {
		return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARRecDouble})
	})
	fmt.Printf("# SSAR_Recursive_double message timeline: N=%d d=%.4f%% P=%d profile=%s\n",
		n, density*100, P, prof.Name)
	tr.Dump(os.Stdout)
	counts, bytes := tr.Rounds()
	fmt.Printf("\n# rounds: %d; per-round messages %v\n", len(counts), counts)
	fmt.Printf("# per-round bytes %v (geometric growth under low overlap)\n", bytes)
}

func mustProfile(name, fallback string) simnet.Profile {
	if name == "" {
		name = fallback
	}
	prof, err := simnet.ProfileByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return prof
}
