// Command sparbench regenerates the Figure 3 micro-benchmarks: sparse
// allreduce time versus node count (left panel; paper: Piz Daint, N=16M,
// d=0.781%) and versus per-node density (right panel; paper: Greina GigE,
// N=16M, P=8), for all six algorithms — plus the hierarchical extensions:
// flat SSAR versus topology-aware HierSSAR on a two-level machine, flat
// DSAR versus HierDSAR under a per-node NIC serialization cap, and the
// contention-model validation sweep recorded as BENCH_2.json.
//
// Usage:
//
//	sparbench -sweep nodes      [-n 1048576] [-density 0.00781] [-maxp 64] [-profile aries]
//	sparbench -sweep density    [-n 1048576] [-p 8] [-profile gige]
//	sparbench -sweep hier       [-n 1048576] [-density 0.0001] [-maxp 64] [-rpn 4] [-intra nvlink] [-profile aries]
//	sparbench -sweep hierdsar   [-n 262144] [-density 0.6] [-maxp 32] [-rpn 4] [-nic 1] [-intra nvlink] [-profile aries]
//	sparbench -sweep contention [-intra nvlink] [-profile aries] [-json]
//	sparbench -sweep merge      [-json]
//	sparbench -sweep hierlevels [-json]
//	sparbench -sweep adapt      [-json]
//	sparbench -sweep adaptdiv   [-json]
//	sparbench -sweep cluster    [-json]
//	sparbench -sweep transport  [-transport goroutine|tcp|all] [-json]
//	sparbench -sweep overlap    [-json]
//	sparbench -sweep overlapwall [-runs 5]
//	sparbench -replay t.trace   [-rpn 4] [-nic 1] [-json] [-obs trace.json] [-obsmetrics m.txt]
//	sparbench -csv  # machine-readable output
//
// Any invocation also takes -cpuprofile/-memprofile to write pprof
// profiles of the run (inspect with `go tool pprof`).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sparbench", flag.ContinueOnError)
	var (
		sweep     = fs.String("sweep", "nodes", "sweep to run: nodes | density | hier | hierdsar | contention | merge | hierlevels | adapt | adaptdiv | cluster | transport | overlap | overlapwall")
		transport = fs.String("transport", "goroutine", "real backend(s) for the transport sweep: goroutine | tcp | all")
		n         = fs.Int("n", 1<<20, "vector dimension N (paper uses 16M; 2^20 default keeps memory modest)")
		densityF  = fs.Float64("density", 0.00781, "per-node density d for the nodes sweep")
		maxP      = fs.Int("maxp", 64, "largest node count for the nodes sweep")
		p         = fs.Int("p", 8, "node count for the density sweep")
		rpn       = fs.Int("rpn", 4, "ranks per node for the hier/hierdsar sweeps")
		nic       = fs.Int("nic", 1, "per-node NIC serialization cap for the hierdsar sweep (0 disables contention)")
		intra     = fs.String("intra", "nvlink", "intra-node profile for the hier/hierdsar/contention sweeps")
		profile   = fs.String("profile", "", "network profile: aries | ib-fdr | gige | spark | nvlink (default: aries for nodes/hier, gige for density)")
		gens      = fs.Int("gens", 2, "data generations per cell (paper: 5)")
		runs      = fs.Int("runs", 3, "runs per generation (paper: 10)")
		csv       = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut   = fs.Bool("json", false, "for -sweep contention: emit the BENCH_2-format JSON document")
		trace     = fs.Bool("trace", false, "dump a message timeline of one SSAR_Recursive_double allreduce and exit")
		replayF   = fs.String("replay", "", "workload trace file: replay one adaptation cell from it and exit (record with cmd/sparreplay)")
		obsOut    = fs.String("obs", "", "for -replay: write the adaptive arm's Chrome trace-event JSON (Perfetto) here")
		obsMet    = fs.String("obsmetrics", "", "for -replay: write the adaptive arm's plain-text metrics dump here")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run here")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile (after the run) here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	if *replayF != "" {
		tr, err := scenario.ReadFile(*replayF)
		if err != nil {
			return err
		}
		var row experiments.AdaptRow
		if *obsOut != "" || *obsMet != "" {
			var hub *obs.Obs
			row, hub = experiments.ReplayAdaptCellObs(*rpn, *nic, tr)
			if err := exportObs(hub, *obsOut, *obsMet); err != nil {
				return err
			}
		} else {
			row = experiments.ReplayAdaptCell(*rpn, *nic, tr)
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(row)
		}
		tb := report.NewTable("workload", "N", "P", "calls", "k-range", "static-uniform", "static-clustered", "adaptive", "vs-uniform", "vs-best", "switches", "clustered-calls", "final")
		tb.AddRowRaw(
			row.Workload, fmt.Sprint(row.N), fmt.Sprint(row.P), fmt.Sprint(row.Calls),
			fmt.Sprintf("%d..%d", row.KStart, row.KEnd),
			report.FormatSeconds(row.StaticUniformSim),
			report.FormatSeconds(row.StaticClusteredSim),
			report.FormatSeconds(row.AdaptiveSim),
			fmt.Sprintf("%.3f", row.AdaptiveVsUniform),
			fmt.Sprintf("%.3f", row.AdaptiveVsBestStatic),
			fmt.Sprint(row.AdaptiveSwitches),
			fmt.Sprint(row.AdaptiveClusteredCalls),
			row.FinalChoice,
		)
		return tb.Emit(stdout, *csv)
	}

	if *trace {
		prof, err := profileOrDefault(*profile, "aries")
		if err != nil {
			return err
		}
		return dumpTrace(stdout, *n, *densityF, *p, prof)
	}

	if *sweep == "contention" {
		interProf, err := profileOrDefault(*profile, "aries")
		if err != nil {
			return err
		}
		intraProf, err := profileOrDefault(*intra, "nvlink")
		if err != nil {
			return err
		}
		rows := experiments.ContentionSweep(intraProf, interProf)
		if *jsonOut {
			return emitBench2(stdout, rows)
		}
		tb := report.NewTable("N", "P", "rpn", "nic", "density%", "auto", "old-heuristic", "cheapest-sim", "auto-ok", "old-ok")
		for _, r := range rows {
			tb.AddRowRaw(
				fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.RanksPerNode), fmt.Sprint(r.NICSerial),
				fmt.Sprintf("%.4f", r.Density*100),
				r.AutoChoice, r.OldChoice, r.CheapestSim,
				fmt.Sprint(r.AutoMatchesCheapest), fmt.Sprint(r.OldMatchesCheapest),
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "merge" {
		rows := experiments.MergeSweep()
		if *jsonOut {
			return emitBench3(stdout, rows)
		}
		tb := report.NewTable("P", "N", "k", "pattern", "chained-allocs", "kway-allocs", "kway+scratch", "reduction%", "bit-identical", "split-sim")
		for _, r := range rows {
			tb.AddRowRaw(
				fmt.Sprint(r.P), fmt.Sprint(r.N), fmt.Sprint(r.K), r.Pattern,
				fmt.Sprintf("%.0f", r.ChainedAllocs),
				fmt.Sprintf("%.0f", r.KWayAllocs),
				fmt.Sprintf("%.0f", r.KWayScratchAllocs),
				fmt.Sprintf("%.1f", r.AllocReduction*100),
				fmt.Sprint(r.BitIdentical),
				report.FormatSeconds(r.SplitSimSeconds),
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "hierlevels" {
		rows := experiments.HierLevelsSweep()
		if *jsonOut {
			return emitBench4(stdout, rows)
		}
		tb := report.NewTable("family", "N", "P", "density%", "flat", "2-level", "3-level", "vs-flat", "vs-2level", "auto", "auto-ok")
		for _, r := range rows {
			auto := fmt.Sprintf("%s@%d", r.AutoChoice, r.AutoLevels)
			if r.AutoLevels == 0 {
				auto = r.AutoChoice
			}
			tb.AddRowRaw(
				r.Family, fmt.Sprint(r.N), fmt.Sprint(r.P),
				fmt.Sprintf("%.4f", r.Density*100),
				report.FormatSeconds(r.FlatSim),
				report.FormatSeconds(r.TwoLevelSim),
				report.FormatSeconds(r.ThreeLevelSim),
				fmt.Sprintf("%.2f", r.SpeedupOverFlat),
				fmt.Sprintf("%.2f", r.SpeedupOverTwoLevel),
				auto,
				fmt.Sprint(r.AutoMatchesCheapest),
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "adapt" {
		rows := experiments.AdaptSweep()
		if *jsonOut {
			return emitBench5(stdout, rows)
		}
		tb := report.NewTable("workload", "N", "P", "calls", "k-range", "static-uniform", "static-clustered", "adaptive", "vs-uniform", "vs-best", "switches", "clustered-calls", "final")
		for _, r := range rows {
			tb.AddRowRaw(
				r.Workload, fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.Calls),
				fmt.Sprintf("%d..%d", r.KStart, r.KEnd),
				report.FormatSeconds(r.StaticUniformSim),
				report.FormatSeconds(r.StaticClusteredSim),
				report.FormatSeconds(r.AdaptiveSim),
				fmt.Sprintf("%.3f", r.AdaptiveVsUniform),
				fmt.Sprintf("%.3f", r.AdaptiveVsBestStatic),
				fmt.Sprint(r.AdaptiveSwitches),
				fmt.Sprint(r.AdaptiveClusteredCalls),
				r.FinalChoice,
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "cluster" {
		rows, summaries := experiments.ClusterSweep()
		if *jsonOut {
			return emitBench8(stdout, rows, summaries, experiments.ClusterAdaptCells())
		}
		tb := report.NewTable("scale", "policy", "job", "P", "steps", "sim", "isolated", "slowdown", "predicted-job", "algorithm", "switches")
		for _, r := range rows {
			tb.AddRowRaw(
				r.Scale, r.Policy, r.Job, fmt.Sprint(r.P), fmt.Sprint(r.Steps),
				report.FormatSeconds(r.SimSeconds),
				report.FormatSeconds(r.IsolatedSim),
				fmt.Sprintf("%.3f", r.Slowdown),
				report.FormatSeconds(r.PredictedJob),
				r.Algorithm, fmt.Sprint(r.Switches),
			)
		}
		if err := tb.Emit(stdout, *csv); err != nil {
			return err
		}
		st := report.NewTable("scale", "policy", "jobs", "peak", "mean-slowdown", "max-slowdown", "mean-predicted-job", "makespan")
		for _, s := range summaries {
			st.AddRowRaw(
				s.Scale, s.Policy, fmt.Sprint(s.Jobs), fmt.Sprint(s.ConcurrentPeak),
				fmt.Sprintf("%.3f", s.MeanSlowdown),
				fmt.Sprintf("%.3f", s.MaxSlowdown),
				report.FormatSeconds(s.MeanPredictedJob),
				report.FormatSeconds(s.MakespanSeconds),
			)
		}
		return st.Emit(stdout, *csv)
	}

	if *sweep == "transport" {
		var backends []string
		switch *transport {
		case "goroutine", "tcp":
			backends = []string{*transport}
		case "all":
			backends = []string{"goroutine", "tcp"}
		default:
			return fmt.Errorf("unknown -transport %q (want goroutine, tcp, or all)", *transport)
		}
		rows, demo, err := experiments.TransportSweep(backends)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emitBench6(stdout, rows, demo)
		}
		tb := report.NewTable("transport", "algorithm", "N", "P", "k", "sim", "wall", "bit-identical")
		for _, r := range rows {
			tb.AddRowRaw(
				r.Transport, r.Algorithm,
				fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.K),
				report.FormatSeconds(r.SimSeconds),
				report.FormatSeconds(r.WallSeconds),
				fmt.Sprint(r.BitIdenticalToSim),
			)
		}
		if err := tb.Emit(stdout, *csv); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# calibration demo (%s, P=%d N=%d k=%d, %d adaptive calls): samples=%d fit_ok=%v alpha=%.3gs beta=%.3gs/B choice=%s ranks_agree=%v bit_identical=%v\n",
			demo.Transport, demo.P, demo.N, demo.K, demo.Calls, demo.Samples, demo.FitOK,
			demo.AlphaSeconds, demo.BetaSecondsPerByte, demo.Choice, demo.RanksAgree, demo.BitIdenticalToStatic)
		return nil
	}

	if *sweep == "overlap" {
		rows := experiments.OverlapSweep()
		pm := experiments.PipeModelSweep()
		if *jsonOut {
			return emitBench7(stdout, rows, pm)
		}
		tb := report.NewTable("workload", "N", "P", "calls", "layers", "buckets", "bucket-coords", "fused", "layerwise", "bucketed", "layerwise-nb", "bucketed-vs-fused", "bucketed-vs-layerwise")
		for _, r := range rows {
			tb.AddRowRaw(
				r.Workload, fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.Calls),
				fmt.Sprint(r.Layers), fmt.Sprint(r.Buckets), fmt.Sprint(r.BucketCoords),
				report.FormatSeconds(r.FusedSim),
				report.FormatSeconds(r.LayerwiseSim),
				report.FormatSeconds(r.BucketedSim),
				report.FormatSeconds(r.LayerwiseNBSim),
				fmt.Sprintf("%.3f", r.BucketedVsFused),
				fmt.Sprintf("%.3f", r.BucketedVsLayerwise),
			)
		}
		if err := tb.Emit(stdout, *csv); err != nil {
			return err
		}
		pt := report.NewTable("N", "P", "k", "chunks", "sim", "model", "model/sim")
		for _, r := range pm {
			pt.AddRowRaw(
				fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.K), fmt.Sprint(r.Chunks),
				report.FormatSeconds(r.SimSeconds),
				report.FormatSeconds(r.ModelSeconds),
				fmt.Sprintf("%.3f", r.ModelOverSim),
			)
		}
		return pt.Emit(stdout, *csv)
	}

	if *sweep == "overlapwall" {
		rows := experiments.OverlapWallSweep(*runs)
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		tb := report.NewTable("workload", "calls", "layers", "buckets", "runs", "layerwise-wall", "bucketed-wall", "bucketed-vs-layerwise")
		for _, r := range rows {
			tb.AddRowRaw(
				r.Workload, fmt.Sprint(r.Calls), fmt.Sprint(r.Layers), fmt.Sprint(r.Buckets),
				fmt.Sprint(r.Runs),
				report.FormatSeconds(r.LayerwiseWall),
				report.FormatSeconds(r.BucketedWall),
				fmt.Sprintf("%.3f", r.BucketedVsLayerwise),
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "adaptdiv" {
		rows := experiments.AdaptDiversitySweep()
		if *jsonOut {
			// Snapshot-only: unlike BENCH_5 this document is NOT
			// drift-gated — the library grows, and each new scenario
			// legitimately adds a row.
			doc := struct {
				Note  string                 `json:"note"`
				Cells []experiments.AdaptRow `json:"cells"`
			}{
				Note: "scenario-diversity check: the adaptation ablation arms run over the entire " +
					"scenario library (not just the BENCH_5 cells). Snapshot-only, NOT drift-gated.",
				Cells: rows,
			}
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		}
		tb := report.NewTable("workload", "N", "P", "calls", "k-range", "static-uniform", "static-clustered", "adaptive", "vs-uniform", "vs-best", "switches", "clustered-calls", "final")
		for _, r := range rows {
			tb.AddRowRaw(
				r.Workload, fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.Calls),
				fmt.Sprintf("%d..%d", r.KStart, r.KEnd),
				report.FormatSeconds(r.StaticUniformSim),
				report.FormatSeconds(r.StaticClusteredSim),
				report.FormatSeconds(r.AdaptiveSim),
				fmt.Sprintf("%.3f", r.AdaptiveVsUniform),
				fmt.Sprintf("%.3f", r.AdaptiveVsBestStatic),
				fmt.Sprint(r.AdaptiveSwitches),
				fmt.Sprint(r.AdaptiveClusteredCalls),
				r.FinalChoice,
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "hierdsar" {
		if *rpn < 1 {
			return fmt.Errorf("-rpn must be >= 1, got %d", *rpn)
		}
		if *nic < 0 {
			return fmt.Errorf("-nic must be >= 0, got %d", *nic)
		}
		interProf, err := profileOrDefault(*profile, "aries")
		if err != nil {
			return err
		}
		intraProf, err := profileOrDefault(*intra, "nvlink")
		if err != nil {
			return err
		}
		// The hierdsar sweep defaults to a dense-regime density and a
		// moderate dimension; explicit flags win.
		d := *densityF
		if !flagPassed(fs, "density") {
			d = 0.6
		}
		dim := *n
		if !flagPassed(fs, "n") {
			dim = 1 << 18
		}
		ranks := report.Pow2Range(2*(*rpn), *maxP)
		if len(ranks) == 0 {
			return fmt.Errorf("-maxp %d yields no multi-node shapes (need at least %d ranks for 2 nodes of %d)",
				*maxP, 2*(*rpn), *rpn)
		}
		fmt.Fprintf(stdout, "# hierarchical DSAR under NIC contention: flat DSAR vs DSAR_Hierarchical on %d×%s/%s nodes, nic=%d; N=%d d=%.2f%%\n",
			*rpn, intraProf.Name, interProf.Name, *nic, dim, d*100)
		rows := experiments.HierDSARNodeSweep(dim, d, ranks, *rpn, *nic, intraProf, interProf, *gens, *runs)
		tb := report.NewTable("P", "ranks/node", "flat-median", "hier-median", "speedup", "flat-msgs", "hier-msgs")
		for _, r := range rows {
			tb.AddRowRaw(
				fmt.Sprint(r.P),
				fmt.Sprint(r.RanksPerNode),
				report.FormatSeconds(r.FlatMedian),
				report.FormatSeconds(r.HierMedian),
				fmt.Sprintf("%.2f", r.Speedup),
				fmt.Sprint(r.FlatMsgs),
				fmt.Sprint(r.HierMsgs),
			)
		}
		return tb.Emit(stdout, *csv)
	}

	if *sweep == "hier" {
		if *rpn < 1 {
			return fmt.Errorf("-rpn must be >= 1, got %d", *rpn)
		}
		interProf, err := profileOrDefault(*profile, "aries")
		if err != nil {
			return err
		}
		intraProf, err := profileOrDefault(*intra, "nvlink")
		if err != nil {
			return err
		}
		// The hier sweep defaults to a latency-bound density; an explicit
		// -density flag wins.
		d := *densityF
		if !flagPassed(fs, "density") {
			d = 1e-4
		}
		// Start at two nodes: single-node shapes (P ≤ rpn) carry no
		// hierarchy and are skipped by the sweep anyway.
		ranks := report.Pow2Range(2*(*rpn), *maxP)
		if len(ranks) == 0 {
			return fmt.Errorf("-maxp %d yields no multi-node shapes (need at least %d ranks for 2 nodes of %d)",
				*maxP, 2*(*rpn), *rpn)
		}
		fmt.Fprintf(stdout, "# hierarchical crossover: flat SSAR_Split_allgather on %s vs SSAR_Hierarchical on %d×%s/%s nodes; N=%d d=%.4f%%\n",
			interProf.Name, *rpn, intraProf.Name, interProf.Name, *n, d*100)
		rows := experiments.HierNodeSweep(*n, d, ranks, *rpn, intraProf, interProf, *gens, *runs)
		tb := report.NewTable("P", "ranks/node", "flat-median", "hier-median", "speedup", "flat-msgs", "hier-msgs")
		for _, r := range rows {
			tb.AddRowRaw(
				fmt.Sprint(r.P),
				fmt.Sprint(r.RanksPerNode),
				report.FormatSeconds(r.FlatMedian),
				report.FormatSeconds(r.HierMedian),
				fmt.Sprintf("%.2f", r.Speedup),
				fmt.Sprint(r.FlatMsgs),
				fmt.Sprint(r.HierMsgs),
			)
		}
		return tb.Emit(stdout, *csv)
	}

	var rows []experiments.MicrobenchRow
	switch *sweep {
	case "nodes":
		prof, err := profileOrDefault(*profile, "aries")
		if err != nil {
			return err
		}
		nodes := report.Pow2Range(2, *maxP)
		fmt.Fprintf(stdout, "# Figure 3 (left): reduction time vs node count; N=%d d=%.4f%% profile=%s\n",
			*n, *densityF*100, prof.Name)
		rows = experiments.Fig3NodeSweep(*n, *densityF, nodes, prof, *gens, *runs)
	case "density":
		prof, err := profileOrDefault(*profile, "gige")
		if err != nil {
			return err
		}
		densities := []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}
		fmt.Fprintf(stdout, "# Figure 3 (right): reduction time vs density; N=%d P=%d profile=%s\n",
			*n, *p, prof.Name)
		rows = experiments.Fig3DensitySweep(*n, *p, densities, prof, *gens, *runs)
	default:
		return fmt.Errorf("unknown sweep %q", *sweep)
	}

	tb := report.NewTable("algorithm", "P", "density%", "median", "q25", "q75", "result_nnz", "dense?")
	for _, r := range rows {
		tb.AddRowRaw(
			r.Algorithm.String(),
			fmt.Sprint(r.P),
			fmt.Sprintf("%.4f", r.Density*100),
			report.FormatSeconds(r.Median),
			report.FormatSeconds(r.Q25),
			report.FormatSeconds(r.Q75),
			fmt.Sprint(r.ResultNNZ),
			fmt.Sprint(r.ResultDense),
		)
	}
	return tb.Emit(stdout, *csv)
}

// emitBench2 writes the BENCH_2.json document: the contention-model sweep
// with modeled and simulated seconds per algorithm per cell. Every metric
// is simulated virtual time (deterministic given the seeded inputs), so
// the file is reproducible byte-for-byte — scripts/ci.sh regenerates it.
func emitBench2(w io.Writer, rows []experiments.ContentionRow) error {
	doc := struct {
		ID    string                      `json:"id"`
		Note  string                      `json:"note"`
		Cells []experiments.ContentionRow `json:"cells"`
	}{
		ID: "BENCH_2",
		Note: "contention-model sweep: per-algorithm modeled vs simulated time on two-level " +
			"topologies with the per-node NIC serialization cap on/off; auto_choice is the " +
			"cost-model Auto, old_heuristic_choice the replaced topology-presence rule, " +
			"cheapest_sim the empirically cheapest algorithm",
		Cells: rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitBench3 writes the BENCH_3.json document: the k-way merge / scratch
// ablation. Allocation counts (testing.AllocsPerRun on deterministic
// single-goroutine reductions) and simulated seconds are reproducible
// byte-for-byte, so scripts/ci.sh regenerates the file and hard-fails on
// drift, exactly like BENCH_2. Wall-clock ns/op for the same cells lives
// in the note as a one-time snapshot (wall time is machine-dependent and
// cannot be drift-gated; re-measure with
// `go test -bench BenchmarkAblationKWayMerge`).
func emitBench3(w io.Writer, rows []experiments.MergeCell) error {
	doc := struct {
		ID    string                  `json:"id"`
		Note  string                  `json:"note"`
		Cells []experiments.MergeCell `json:"cells"`
	}{
		ID: "BENCH_3",
		Note: "k-way merge + scratch ablation: allocations per P-stream reduction for chained " +
			"two-way Add vs one-pass MergeK vs MergeK with a warm Scratch pool, bitwise equivalence, " +
			"and the deterministic simulated time of SSAR_Split_allgather at each shape. " +
			"Wall-clock snapshot at recording time (go1.24, one shared machine, k=2000, N=2^18): " +
			"chained 1.48ms/op vs k-way+scratch 0.95ms/op at P=16; 17.5ms/op vs 5.9ms/op at P=64 " +
			"(see BenchmarkAblationKWayMerge).",
		Cells: rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitBench4 writes the BENCH_4.json document: the hierarchy-depth
// ablation (flat vs 2-level vs 3-level schemes on a DragonflyLike
// machine). Every metric is simulated virtual time on seeded inputs, so
// the file is reproducible byte-for-byte — scripts/ci.sh regenerates it
// and hard-fails on drift, exactly like BENCH_2 and BENCH_3.
func emitBench4(w io.Writer, rows []experiments.HierLevelsRow) error {
	doc := struct {
		ID    string                      `json:"id"`
		Note  string                      `json:"note"`
		Cells []experiments.HierLevelsRow `json:"cells"`
	}{
		ID: "BENCH_4",
		Note: "hierarchy-depth ablation on DragonflyLike(4,4): the same allreduce instance run " +
			"flat, with the 2-level (node-only) hierarchical scheme, and with the full 3-level " +
			"recursion on one world; auto_choice/auto_levels is what the level-aware cost model " +
			"(ChooseAutoLevels) resolves to, cheapest_sim the empirically cheapest depth",
		Cells: rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitBench5 writes the BENCH_5.json document: the runtime-adaptation
// ablation (static-uniform vs static-clustered vs adaptive Auto on
// stationary and drifting workloads). Every metric is simulated virtual
// time on seeded inputs, so the file is reproducible byte-for-byte —
// scripts/ci.sh regenerates it and hard-fails on drift, exactly like
// BENCH_2–4.
func emitBench5(w io.Writer, rows []experiments.AdaptRow) error {
	doc := struct {
		ID    string                 `json:"id"`
		Note  string                 `json:"note"`
		Cells []experiments.AdaptRow `json:"cells"`
	}{
		ID: "BENCH_5",
		Note: "runtime-adaptation ablation: the same call schedule run under static-uniform Auto " +
			"(the default), static-clustered Auto (Options.Support pinned to the 10%/70% default " +
			"shape), and the adaptive controller (internal/adapt: ShapeSketch support detection + " +
			"LinkCalibrator + hysteresis). Acceptance: adaptive_vs_uniform > 1 on the clustered and " +
			"drifting cells, within agreement-overhead noise (~1%, two tiny allreduces per call) of " +
			"1 on stationary uniform, and adaptive_vs_best_static within the same noise of >= 1 on " +
			"the drifting cells. Sketch overhead wall-clock snapshot at recording time (go1.24, one " +
			"shared machine): ~8us per observed call vs ~1.3ms per P=16 k-way split-phase merge " +
			"(~0.6%, within the 2% budget; ~0.1% at P=64) — see BenchmarkAblationSketchOverhead, " +
			"re-measure with go test -bench (wall time is machine-dependent and cannot be drift-gated).",
		Cells: rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitBench6 writes the BENCH_6.json document: the execution-backend
// comparison plus the wall-clock calibration demo. Unlike BENCH_2–5 this
// file is NOT drift-gated byte-for-byte: wall_seconds, alpha_seconds, and
// beta_seconds_per_byte are measured on whatever machine recorded it and
// vary run to run. The deterministic claims — every real backend's results
// bit-identical to the simulator's, a usable measured link fit, all ranks
// agreeing on the Auto resolution — are what CI enforces (via the
// equivalence and calibration tests); the committed file is a one-time
// snapshot, re-record with `sparbench -sweep transport -json`.
func emitBench6(w io.Writer, rows []experiments.TransportRow, demo experiments.CalibDemo) error {
	doc := struct {
		ID    string                     `json:"id"`
		Note  string                     `json:"note"`
		Cells []experiments.TransportRow `json:"cells"`
		Calib experiments.CalibDemo      `json:"calibration_demo"`
	}{
		ID: "BENCH_6",
		Note: "execution-backend comparison: the same seeded allreduce instances on the simulator " +
			"(virtual time) and the real transports (goroutine channels / loopback TCP, measured " +
			"wall time), with bit-identity of every rank's result against the simulator; plus the " +
			"calibration demo — the adaptive controller on the goroutine backend fitting alpha-beta " +
			"link constants from measured transfer durations and resolving Auto from them. " +
			"wall_seconds / alpha_seconds / beta_seconds_per_byte are machine-dependent snapshots " +
			"and are NOT drift-gated (unlike BENCH_2-5); the deterministic fields are enforced by " +
			"TestCrossTransportEquivalence and TestControllerOnGoroutineTransport instead.",
		Cells: rows,
		Calib: demo,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitBench7 writes the BENCH_7.json document: the overlap/bucketing
// ablation (fused vs per-layer nonblocking vs bucket-fusion scheduler on
// the layered workloads) plus the pipelining-term validation cells. Every
// numeric field is simulated virtual time on seeded inputs, so the file
// is reproducible byte-for-byte — scripts/ci.sh regenerates it and
// hard-fails on drift like BENCH_2–5. The wall-clock side of the story
// (where bucketing beats per-layer issue) is machine-dependent and lives
// in the Note as a recorded snapshot; re-measure with
// `sparbench -sweep overlapwall`.
func emitBench7(w io.Writer, rows []experiments.OverlapRow, pm []experiments.PipeModelRow) error {
	doc := struct {
		ID        string                     `json:"id"`
		Note      string                     `json:"note"`
		Cells     []experiments.OverlapRow   `json:"cells"`
		PipeModel []experiments.PipeModelRow `json:"pipeline_model_cells"`
	}{
		ID: "BENCH_7",
		Note: "overlap/bucketing ablation: the library's layered workload profiles at N=2^20 run as " +
			"(1) one fused blocking allreduce per call, (2) one blocking allreduce per model layer — " +
			"the naive layer-wise loop, and (3) the bucket-fusion scheduler (core.BucketScheduler, " +
			"BucketCoords-sized buckets issued nonblocking in backprop order, AutoChunks pipelining). " +
			"bucketed_vs_layerwise > 1 is the drift-gated headline; bucketed_vs_fused > 1 shows " +
			"model-sized buckets also beat the monolithic exchange. " +
			"layerwise_nonblocking_sim_seconds records per-layer nonblocking issue for comparison: " +
			"on the simulator outstanding collectives max-compose at zero per-call cost, so at equal " +
			"per-collective options it is a virtual-time lower bound — chunked pipelining is how the " +
			"bucketed arm still undercuts it, and the per-call issue cost it hides is a wall " +
			"phenomenon. Wall snapshot at recording time (goroutine transport, go1.24, one " +
			"shared machine, median of 5, pinned SSAR_Split_allgather): " + wallSnapshot + " — " +
			"machine-dependent, NOT drift-gated, re-measure with `sparbench -sweep overlapwall`. " +
			"pipeline_model_cells validate the cost model's chunked-pipelining term: the same " +
			"seeded instance simulated at chunks 1/2/4/8 vs PredictSeconds; model_over_sim stays " +
			"within the band asserted by TestBench7PipelineModelBand.",
		Cells:     rows,
		PipeModel: pm,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// wallSnapshot is the recorded one-machine wall measurement quoted in the
// BENCH_7 Note (static text so the document stays byte-gateable).
const wallSnapshot = "lstm-1m (3 layers -> 3 buckets) layerwise 222ms vs bucketed 208ms (1.07x), " +
	"transformer-1m (4 layers -> 3 buckets) 173ms vs 172ms (1.00x); the wall margin is modest " +
	"because P=8 rank goroutines already saturate the recording machine's cores, so overlapped " +
	"merges add little throughput — the latency floors bucketing removes are what the simulated " +
	"cells isolate"

// emitBench8 writes the BENCH_8.json document: the multi-tenant cluster
// sweep (per-job slowdown and per-policy summaries across placement
// policies on shared ingress-capped machines) plus the pinned
// scenario-diversity adaptation cells promoted from the snapshot-only
// adaptdiv sweep. Every metric is simulated virtual time on seed-isolated
// streams, so the file is reproducible byte-for-byte — scripts/ci.sh
// regenerates it and hard-fails on drift like BENCH_2–5 and 7, and
// TestBench8AcceptanceCriteria enforces the acceptance invariants against
// the committed file.
func emitBench8(w io.Writer, rows []experiments.ClusterRow, summaries []experiments.ClusterPolicySummary, adaptCells []experiments.AdaptRow) error {
	doc := struct {
		ID         string                             `json:"id"`
		Note       string                             `json:"note"`
		Cells      []experiments.ClusterRow           `json:"cells"`
		Policies   []experiments.ClusterPolicySummary `json:"policy_summary"`
		AdaptCells []experiments.AdaptRow             `json:"adapt_cells"`
	}{
		ID: "BENCH_8",
		Note: "multi-tenant cluster sweep: the same eight-job mix (uniform and clustered workloads, " +
			"densities cycling around the regime gate) gang-scheduled onto a shared ingress-capped " +
			"three-level machine under each placement policy — packed, spread, random, cost-aware — " +
			"at two scales (64 slots the mix fills exactly, 128 slots with headroom). slowdown is " +
			"sim_seconds over the job's isolated baseline (alone on the idle machine, packed, no " +
			"jitter); contention is dynamic, from the in-flight flow counters the cluster serves " +
			"through the comm ActivitySource seam. Acceptance (TestBench8AcceptanceCriteria): the " +
			"full mix runs concurrently (concurrent_peak = jobs), no job runs faster than isolated, " +
			"packed slowdown stays 1.0 on exclusive groups, and the cost-aware policy's " +
			"mean_predicted_job_seconds strictly beats random's at every scale. adapt_cells are the " +
			"scenario-diversity adaptation rows (Bench8AdaptNames: the whole library, pinned by " +
			"name so library growth never drifts this file) on the BENCH_5 machine shape and key — " +
			"the four shared workloads reproduce the BENCH_5 rows exactly, and the gate extends " +
			"adaptive >= static-uniform (within noise) to the clustered/drifting diversity cells.",
		Cells:      rows,
		Policies:   summaries,
		AdaptCells: adaptCells,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// exportObs writes the hub's Chrome trace and/or metrics dump to the
// given paths (empty path = skip).
func exportObs(hub *obs.Obs, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := hub.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := hub.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func flagPassed(fs *flag.FlagSet, name string) bool {
	passed := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

// dumpTrace runs one recursive-doubling sparse allreduce with tracing
// enabled and prints the virtual-time message timeline (the Figure 2
// schedule, observable directly).
func dumpTrace(w io.Writer, n int, density float64, P int, prof simnet.Profile) error {
	world := comm.NewWorld(P, prof)
	tr := world.EnableTrace()
	rng := rand.New(rand.NewSource(1))
	k := int(density * float64(n))
	if k < 1 {
		k = 1
	}
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		seen := map[int32]bool{}
		idx := make([]int32, 0, k)
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	comm.Run(world, func(p *comm.Proc) any {
		return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARRecDouble})
	})
	fmt.Fprintf(w, "# SSAR_Recursive_double message timeline: N=%d d=%.4f%% P=%d profile=%s\n",
		n, density*100, P, prof.Name)
	tr.Dump(w)
	counts, bytes := tr.Rounds()
	fmt.Fprintf(w, "\n# rounds: %d; per-round messages %v\n", len(counts), counts)
	fmt.Fprintf(w, "# per-round bytes %v (geometric growth under low overlap)\n", bytes)
	return nil
}

func profileOrDefault(name, fallback string) (simnet.Profile, error) {
	if name == "" {
		name = fallback
	}
	return simnet.ProfileByName(name)
}
