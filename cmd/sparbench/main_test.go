package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunNodesSweepTiny(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-sweep", "nodes", "-n", "4096", "-maxp", "4", "-gens", "1", "-runs", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SSAR_Recursive_double") || !strings.Contains(out, "Figure 3") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunHierSweepTiny(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-sweep", "hier", "-n", "16384", "-maxp", "8", "-rpn", "4", "-gens", "1", "-runs", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hierarchical crossover") || !strings.Contains(out, "speedup") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunTraceTiny(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-trace", "-n", "1024", "-p", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "message timeline") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunCSVAndErrors(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-sweep", "density", "-n", "1024", "-p", "2", "-gens", "1", "-runs", "1", "-csv"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "algorithm,P") {
		t.Fatalf("want CSV header, got:\n%s", buf.String())
	}
	if err := run([]string{"-sweep", "bogus"}, &buf); err == nil {
		t.Fatal("unknown sweep must error")
	}
	if err := run([]string{"-sweep", "nodes", "-profile", "bogus"}, &buf); err == nil {
		t.Fatal("unknown profile must error")
	}
	// Regression: -rpn 0 used to hang in Pow2Range(0, maxp).
	if err := run([]string{"-sweep", "hier", "-rpn", "0"}, &buf); err == nil {
		t.Fatal("rpn < 1 must error")
	}
}

func TestRunHierDSARSweepTiny(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-sweep", "hierdsar", "-n", "4096", "-maxp", "8", "-rpn", "4", "-gens", "1", "-runs", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hierarchical DSAR under NIC contention") || !strings.Contains(out, "speedup") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if err := run([]string{"-sweep", "hierdsar", "-nic", "-1"}, &buf); err == nil {
		t.Fatal("nic < 0 must error")
	}
	if err := run([]string{"-sweep", "hierdsar", "-rpn", "0"}, &buf); err == nil {
		t.Fatal("rpn < 1 must error")
	}
}

func TestRunContentionSweepJSON(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-sweep", "contention", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID    string `json:"id"`
		Cells []struct {
			AutoChoice          string `json:"auto_choice"`
			OldChoice           string `json:"old_heuristic_choice"`
			AutoMatchesCheapest bool   `json:"auto_matches_cheapest"`
			OldMatchesCheapest  bool   `json:"old_matches_cheapest"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("BENCH_2 output is not valid JSON: %v", err)
	}
	if doc.ID != "BENCH_2" || len(doc.Cells) == 0 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	demonstrated := false
	for _, c := range doc.Cells {
		if c.AutoMatchesCheapest && !c.OldMatchesCheapest {
			demonstrated = true
		}
	}
	if !demonstrated {
		t.Fatal("BENCH_2 must contain a cell where Auto beats the old heuristic")
	}

	// The human-readable table form must render too.
	var tbl strings.Builder
	if err := run([]string{"-sweep", "contention"}, &tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "old-heuristic") {
		t.Fatalf("unexpected table output:\n%s", tbl.String())
	}
}
