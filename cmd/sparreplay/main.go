// Command sparreplay records and replays deterministic workload traces.
// A trace is the per-step, per-rank input schedule one scenario generation
// emitted, serialized field-exact (internal/scenario); replaying it
// through the adaptation cell runner reproduces the live run's decisions
// and simulated times byte for byte.
//
// Usage:
//
//	sparreplay -list
//	sparreplay -scenario clustered [-seed 701] [-rpn 4] [-nic 1] [-json]   # live run
//	sparreplay -record -scenario clustered -out clustered.trace [-seed 701]
//	sparreplay -replay clustered.trace [-rpn 4] [-nic 1] [-json]
//	sparreplay -scenario lstm -obs trace.json [-obsmetrics metrics.txt]
//
// A live run and a replay of its recorded trace emit identical bytes —
// scripts/ci.sh diffs exactly that, including the -obs Perfetto export:
// replaying a recorded trace reproduces the live timeline byte for byte.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparreplay: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sparreplay", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list the scenario library and exit")
		name    = fs.String("scenario", "", "library scenario to run or record")
		record  = fs.Bool("record", false, "record the scenario's trace to -out instead of running it")
		out     = fs.String("out", "", "output path for -record")
		replay  = fs.String("replay", "", "trace file to replay instead of generating live")
		seed    = fs.Int64("seed", experiments.AdaptSeed, "generation seed (the BENCH_5 sweep's default)")
		rpn     = fs.Int("rpn", 4, "ranks per node of the simulated topology")
		nic     = fs.Int("nic", 1, "per-node NIC serialization cap")
		jsonOut = fs.Bool("json", false, "emit the cell row as JSON instead of a table")
		obsOut  = fs.String("obs", "", "write the adaptive arm's Chrome trace-event JSON (Perfetto) here")
		obsMet  = fs.String("obsmetrics", "", "write the adaptive arm's plain-text metrics dump here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		tb := report.NewTable("scenario", "N", "P", "calls", "blocks", "layers", "zipf", "ragged")
		for _, sc := range scenario.Library() {
			tb.AddRowRaw(
				sc.Name, fmt.Sprint(sc.N), fmt.Sprint(sc.P), fmt.Sprint(sc.Calls),
				fmt.Sprint(len(sc.Blocks)), fmt.Sprint(len(sc.Layers)),
				fmt.Sprintf("%.2f", sc.ZipfS), fmt.Sprintf("%.2f", sc.Ragged),
			)
		}
		return tb.Emit(stdout, false)
	}

	if *replay != "" {
		tr, err := scenario.ReadFile(*replay)
		if err != nil {
			return err
		}
		if *obsOut != "" || *obsMet != "" {
			row, hub := experiments.ReplayAdaptCellObs(*rpn, *nic, tr)
			if err := writeObs(hub, *obsOut, *obsMet); err != nil {
				return err
			}
			return emitRow(stdout, row, *jsonOut)
		}
		return emitRow(stdout, experiments.ReplayAdaptCell(*rpn, *nic, tr), *jsonOut)
	}

	if *name == "" {
		return fmt.Errorf("need -scenario (or -replay / -list); see -h")
	}
	sc, err := scenario.ByName(*name)
	if err != nil {
		return err
	}
	key := scenario.NewKey(*seed)

	if *record {
		if *out == "" {
			return fmt.Errorf("-record needs -out")
		}
		tr := scenario.Record(sc, key)
		if err := tr.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %s: %d steps x %d ranks, N=%d, key=%#x -> %s\n",
			sc.Name, len(tr.Steps), tr.P, tr.N, uint64(key), *out)
		return nil
	}

	if *obsOut != "" || *obsMet != "" {
		row, hub := experiments.RunAdaptCellObs(*rpn, *nic, sc, key)
		if err := writeObs(hub, *obsOut, *obsMet); err != nil {
			return err
		}
		return emitRow(stdout, row, *jsonOut)
	}
	return emitRow(stdout, experiments.RunAdaptCell(*rpn, *nic, sc, key), *jsonOut)
}

// writeObs exports the hub's Chrome trace and/or metrics dump to the
// given paths (empty path = skip).
func writeObs(hub *obs.Obs, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := hub.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := hub.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// emitRow prints one adaptation-cell row. The JSON form is byte-stable:
// a live run and a replay of its trace must produce identical output.
func emitRow(w io.Writer, row experiments.AdaptRow, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(row)
	}
	tb := report.NewTable("workload", "N", "P", "calls", "k-range", "static-uniform", "static-clustered", "adaptive", "vs-uniform", "vs-best", "switches", "clustered-calls", "final")
	tb.AddRowRaw(
		row.Workload, fmt.Sprint(row.N), fmt.Sprint(row.P), fmt.Sprint(row.Calls),
		fmt.Sprintf("%d..%d", row.KStart, row.KEnd),
		report.FormatSeconds(row.StaticUniformSim),
		report.FormatSeconds(row.StaticClusteredSim),
		report.FormatSeconds(row.AdaptiveSim),
		fmt.Sprintf("%.3f", row.AdaptiveVsUniform),
		fmt.Sprintf("%.3f", row.AdaptiveVsBestStatic),
		fmt.Sprint(row.AdaptiveSwitches),
		fmt.Sprint(row.AdaptiveClusteredCalls),
		row.FinalChoice,
	)
	return tb.Emit(w, false)
}
