// Command dnn regenerates the deep-learning experiments: Figure 4a
// (CIFAR-shaped residual network, TopK+QSGD vs dense), Figure 4b
// (ATIS-shaped LSTM, TopK vs dense), Figure 5 (4×-wide residual network on
// the ImageNet-shaped task, top-1/top-5), and Figure 6 (ASR-shaped LSTM:
// TopK at growing GPU counts vs the BMUF baseline, plus the scalability
// curve). Hyperparameters mirror Table 3 at reduced scale.
//
// Usage:
//
//	dnn -task cifar [-rows 2000] [-epochs 8] [-p 8]
//	dnn -task atis | wide | asr
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnn: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, exit 0
		}
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dnn", flag.ContinueOnError)
	var (
		task   = fs.String("task", "cifar", "experiment: cifar | atis | wide | asr")
		rows   = fs.Int("rows", 0, "dataset rows (0 = task default)")
		epochs = fs.Int("epochs", 0, "training epochs (0 = task default)")
		p      = fs.Int("p", 0, "base rank count (0 = task default)")
		seed   = fs.Int64("seed", 1, "random seed")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := experiments.DNNScale{Rows: *rows, Epochs: *epochs, P: *p}
	if sc.Rows != 0 && (sc.Epochs == 0 || sc.P == 0) {
		return fmt.Errorf("-rows, -epochs and -p must be set together (or all left default)")
	}

	var series []experiments.DNNSeries
	switch *task {
	case "cifar":
		fmt.Fprintln(stdout, "# Figure 4a: train accuracy, sparsified+quantized vs dense SGD (CIFAR-shaped, residual MLP for ResNet-110)")
		series = experiments.Fig4aCIFAR(sc, *seed)
	case "atis":
		fmt.Fprintln(stdout, "# Figure 4b: train accuracy, LSTM on ATIS-shaped data, topk 2/512 vs dense")
		series = experiments.Fig4bATIS(sc, *seed)
	case "wide":
		fmt.Fprintln(stdout, "# Figure 5: top-1/top-5 train accuracy, 4x-wide residual net, topk 1/512 vs dense (ImageNet-shaped)")
		series = experiments.Fig5Wide(sc, *seed)
	case "asr":
		fmt.Fprintln(stdout, "# Figure 6a: CE loss vs simulated time, ASR-shaped LSTM; BMUF baseline vs SparCML topk at 2x/4x/8x GPUs")
		series = experiments.Fig6ASR(sc, *seed)
	default:
		return fmt.Errorf("unknown task %q", *task)
	}

	for _, s := range series {
		fmt.Fprintf(stdout, "\n== %s (P=%d, %d params)\n", s.Label, s.P, s.Params)
		tb := report.NewTable("epoch", "sim-time", "comm-time", "loss", "top1", "top5", "bytes-sent")
		for _, pt := range s.Points {
			tb.AddRowRaw(
				fmt.Sprint(pt.Epoch),
				report.FormatSeconds(pt.Time),
				report.FormatSeconds(pt.CommTime),
				fmt.Sprintf("%.4f", pt.Loss),
				fmt.Sprintf("%.3f", pt.Top1),
				fmt.Sprintf("%.3f", pt.Top5),
				report.FormatBytes(pt.BytesSent),
			)
		}
		if err := tb.Emit(stdout, *csv); err != nil {
			return err
		}
	}

	if *task == "asr" {
		fmt.Fprintln(stdout, "\n# Figure 6b: scalability (end-of-run speedup vs the smallest SparCML configuration)")
		tb := report.NewTable("configuration", "P", "sim-time", "speedup")
		for _, pt := range experiments.Scalability(series[1:]) {
			tb.AddRowRaw(pt.Label, fmt.Sprint(pt.P), report.FormatSeconds(pt.Time), fmt.Sprintf("%.2f", pt.Speedup))
		}
		return tb.Emit(stdout, *csv)
	}
	return nil
}
