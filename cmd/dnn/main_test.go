package main

import (
	"strings"
	"testing"
)

func TestRunCIFARTiny(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-task", "cifar", "-rows", "80", "-epochs", "1", "-p", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4a") || !strings.Contains(out, "top1") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunInconsistentScaleFlags(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-task", "cifar", "-rows", "80"}, &buf); err == nil {
		t.Fatal("partial scale flags must error")
	}
}

func TestRunUnknownTask(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-task", "bogus"}, &buf); err == nil {
		t.Fatal("unknown task must error")
	}
}
