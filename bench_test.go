// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§8), plus the ablation benches called out in
// DESIGN.md §4. Each bench wraps the corresponding runner in
// internal/experiments at a reduced default scale; the cmd/ tools run the
// same code at paper scale and print the full tables (see EXPERIMENTS.md
// for paper-vs-measured shapes).
//
// Run everything:  go test -bench=. -benchmem
package sparcml

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
	"repro/internal/topk"
	"repro/internal/train"
)

// --- Figure 1 -------------------------------------------------------------

// BenchmarkFig1ReducedDensity measures the empirical fill-in computation:
// real TopK gradient supports from a model under training, unioned across
// simulated nodes.
func BenchmarkFig1ReducedDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1Empirical([]int{2, 8, 32}, []float64{0.01, 0.05}, 1)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- Figure 3 -------------------------------------------------------------

// BenchmarkFig3NodeSweep measures the left panel: reduction time vs node
// count at d=0.781% on the Aries profile, all six algorithms.
func BenchmarkFig3NodeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3NodeSweep(1<<16, 0.0078, []int{2, 4, 8, 16}, simnet.Aries, 1, 1)
		if len(rows) != 4*len(experiments.Fig3Algorithms) {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkFig3DensitySweep measures the right panel: reduction time vs
// per-node density at P=8 on the GigE profile.
func BenchmarkFig3DensitySweep(b *testing.B) {
	densities := []float64{0.0005, 0.005, 0.05}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3DensitySweep(1<<16, 8, densities, simnet.GigE, 1, 1)
		if len(rows) != len(densities)*len(experiments.Fig3Algorithms) {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkFig3PerAlgorithm isolates one allreduce per iteration at the
// Figure 3 operating point, per algorithm — the core measured quantity.
func BenchmarkFig3PerAlgorithm(b *testing.B) {
	var n, P = 1 << 18, 8
	rng := rand.New(rand.NewSource(1))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		k := int(0.0078 * float64(n))
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	for _, alg := range experiments.Fig3Algorithms {
		b.Run(alg.String(), func(b *testing.B) {
			w := comm.NewWorld(P, simnet.Aries)
			for i := 0; i < b.N; i++ {
				comm.Run(w, func(p *comm.Proc) any {
					return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: alg})
				})
			}
			b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
		})
	}
}

// --- Hierarchical (two-level topology) -------------------------------------

// BenchmarkHierVsFlat measures the issue's acceptance scenario: a sparse
// allreduce at N=2^20, d=0.01% on P=32 ranks, once with flat
// SSAR_Split_allgather on a world priced entirely by the Aries inter-node
// profile and once with SSAR_Hierarchical on a two-level topology (4
// ranks/node, NVLink-like intra + Aries inter). The simulated time of the
// hierarchical variant must come out lower.
func BenchmarkHierVsFlat(b *testing.B) {
	const n, P, rpn = 1 << 20, 32, 4
	rng := rand.New(rand.NewSource(13))
	nf := float64(n)
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		k := int(1e-4 * nf)
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	topo := simnet.Topology{RanksPerNode: rpn, Intra: simnet.NVLinkLike, Inter: simnet.Aries}
	b.Run("flat-inter", func(b *testing.B) {
		w := comm.NewWorld(P, simnet.Aries)
		for i := 0; i < b.N; i++ {
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
			})
		}
		b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
	})
	b.Run("hier-topo", func(b *testing.B) {
		w := comm.NewWorldTopo(P, topo)
		for i := 0; i < b.N; i++ {
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.HierSSAR})
			})
		}
		b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
	})
}

// BenchmarkHierSweep runs the reduced hierarchical crossover sweep (the
// cmd/sparbench -sweep hier scenario at test scale).
func BenchmarkHierSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.HierNodeSweep(1<<16, 1e-3, []int{8, 16, 32}, 4,
			simnet.NVLinkLike, simnet.Aries, 1, 1)
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

// --- NIC contention (PR 2) --------------------------------------------------

// BenchmarkHierDSARVsFlatContended measures the dense-regime tentpole
// scenario: flat DSAR versus DSAR_Hierarchical on the same NIC-serialized
// two-level world (P=16, 4 ranks/node, NICSerial=1, d=60%). The
// hierarchical variant's simulated time must come out lower.
func BenchmarkHierDSARVsFlatContended(b *testing.B) {
	const n, P, rpn = 1 << 16, 16, 4
	rng := rand.New(rand.NewSource(17))
	nf := float64(n)
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		k := int(0.6 * nf)
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	topo := simnet.Topology{RanksPerNode: rpn, Intra: simnet.NVLinkLike,
		Inter: simnet.Aries, NICSerial: 1}
	for _, alg := range []core.Algorithm{core.DSARSplitAllgather, core.HierDSAR} {
		b.Run(alg.String(), func(b *testing.B) {
			w := comm.NewWorldTopo(P, topo)
			for i := 0; i < b.N; i++ {
				comm.Run(w, func(p *comm.Proc) any {
					return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: alg})
				})
			}
			b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
		})
	}
}

// BenchmarkContentionSweep runs the BENCH_2 contention-model validation
// sweep (cost-model Auto vs old heuristic vs empirical cheapest) and
// reports how many cells the cost model gets right.
func BenchmarkContentionSweep(b *testing.B) {
	var autoOK float64
	for i := 0; i < b.N; i++ {
		rows := experiments.ContentionSweep(simnet.NVLinkLike, simnet.Aries)
		autoOK = 0
		for _, r := range rows {
			if r.AutoMatchesCheapest {
				autoOK++
			}
		}
	}
	b.ReportMetric(autoOK, "auto-correct-cells")
}

// --- Figure 4 -------------------------------------------------------------

// BenchmarkFig4aCIFARTopK runs the CIFAR-shaped comparison (dense vs TopK
// 8/512 and 16/512 with 4-bit QSGD).
func BenchmarkFig4aCIFARTopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4aCIFAR(experiments.DNNScale{Rows: 400, Epochs: 2, P: 4}, 1)
		if len(series) != 3 {
			b.Fatal("want 3 series")
		}
	}
}

// BenchmarkFig4bATISLSTM runs the ATIS-shaped LSTM comparison (dense vs
// TopK 2/512).
func BenchmarkFig4bATISLSTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4bATIS(experiments.DNNScale{Rows: 200, Epochs: 2, P: 2}, 1)
		if len(series) != 2 {
			b.Fatal("want 2 series")
		}
	}
}

// --- Figure 5 -------------------------------------------------------------

// BenchmarkFig5WideResNet runs the wide-residual-network comparison
// (1000-class head, TopK 1/512 vs dense).
func BenchmarkFig5WideResNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig5Wide(experiments.DNNScale{Rows: 400, Epochs: 1, P: 4}, 1)
		if len(series) != 2 {
			b.Fatal("want 2 series")
		}
	}
}

// --- Figure 6 -------------------------------------------------------------

// BenchmarkFig6aASR runs the ASR-shaped workload: BMUF baseline vs TopK at
// 2x/4x/8x scale.
func BenchmarkFig6aASR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig6ASR(experiments.DNNScale{Rows: 320, Epochs: 1, P: 2}, 1)
		if len(series) != 4 {
			b.Fatal("want 4 series")
		}
	}
}

// BenchmarkFig6bScalability computes the scalability curve from the ASR
// runs and reports the largest-scale speedup as a metric.
func BenchmarkFig6bScalability(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig6ASR(experiments.DNNScale{Rows: 320, Epochs: 1, P: 2}, 1)
		pts := experiments.Scalability(series[1:])
		last = pts[len(pts)-1].Speedup
	}
	b.ReportMetric(last, "speedup@8x")
}

// --- Figure 7 -------------------------------------------------------------

// BenchmarkFig7ExpectedK evaluates the closed-form growth surface.
func BenchmarkFig7ExpectedK(b *testing.B) {
	ks := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	ps := []int{2, 4, 8, 16, 32, 64}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7Table(ks, ps)
		if len(rows) != len(ks)*len(ps) {
			b.Fatal("unexpected row count")
		}
	}
}

// --- Table 2 and §8.2 -----------------------------------------------------

// BenchmarkTable2MPIOpt runs one Table 2 row per named system
// configuration (scaled dataset).
func BenchmarkTable2MPIOpt(b *testing.B) {
	cases := experiments.DefaultTable2Cases(0.005)
	for _, tc := range []experiments.Table2Case{cases[0], cases[5], cases[9]} {
		tc.Nodes = 4
		b.Run(fmt.Sprintf("%s/%s", tc.System, tc.Dataset), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				row := experiments.RunTable2Case(tc, 1, 1)
				speedup = row.Speedup
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkSCDAllgather runs the coordinate-descent sparse-vs-dense
// allgather comparison.
func BenchmarkSCDAllgather(b *testing.B) {
	var comm float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunSCDExperiment(0.003, 1, 1)
		comm = res.CommSpeedup
	}
	b.ReportMetric(comm, "comm-speedup")
}

// BenchmarkSparkComparison runs the Spark-like-layer comparison.
func BenchmarkSparkComparison(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunSparkComparison(0.005, 1, 1)
		f = res.SparseVsSparkComm
	}
	b.ReportMetric(f, "comm-speedup-vs-spark")
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

// BenchmarkAblationDelta varies the sparse→dense switch threshold δ and
// measures the simulated SSAR recursive-doubling time: too small a δ
// densifies early (bandwidth blow-up); the default tracks the volume
// crossover.
func BenchmarkAblationDelta(b *testing.B) {
	const n, P, k = 1 << 16, 8, 1500
	for _, frac := range []float64{0.05, 0.25, 0.67, 1.0} {
		b.Run(fmt.Sprintf("delta=%.0f%%N", frac*100), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			inputs := make([]*stream.Vector, P)
			for r := range inputs {
				idx := make([]int32, 0, k)
				seen := map[int32]bool{}
				val := make([]float64, 0, k)
				for len(idx) < k {
					ix := int32(rng.Intn(n))
					if !seen[ix] {
						seen[ix] = true
						idx = append(idx, ix)
						val = append(val, rng.NormFloat64())
					}
				}
				v := stream.NewSparse(n, idx, val, stream.OpSum)
				v.SetDelta(int(frac * n))
				inputs[r] = v
			}
			w := comm.NewWorld(P, simnet.GigE)
			for i := 0; i < b.N; i++ {
				comm.Run(w, func(p *comm.Proc) any {
					return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARRecDouble})
				})
			}
			b.ReportMetric(w.MaxTime()*1e3, "simms/op")
		})
	}
}

// BenchmarkAblationMerge compares the sorted-merge summation against the
// hash-accumulate alternative.
func BenchmarkAblationMerge(b *testing.B) {
	const n, k = 1 << 20, 20000
	rng := rand.New(rand.NewSource(5))
	mk := func() *stream.Vector {
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		return stream.NewSparse(n, idx, val, stream.OpSum)
	}
	x, y := mk(), mk()
	b.Run("sorted-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := x.Clone()
			c.Add(y)
		}
	})
	b.Run("hash-accumulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := x.Clone()
			c.AddHash(y)
		}
	})
}

// randSparseInputs draws P sparse vectors of k distinct uniform indices
// each, deterministic per seed (shared by the k-way and scratch ablations).
func randSparseInputs(seed int64, n, k, P int) []*stream.Vector {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]*stream.Vector, P)
	for r := range vs {
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		vs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	return vs
}

// BenchmarkAblationKWayMerge is the PR-3 tentpole ablation (BENCH_3.json):
// reducing P−1 received partition streams by chained two-way merges versus
// the one-pass k-way MergeK, cold and with a warm Scratch pool. At P ≥ 16
// the k-way+scratch path must show ≥ 50% fewer allocations and lower
// ns/op than the chained baseline.
func BenchmarkAblationKWayMerge(b *testing.B) {
	const n, k = 1 << 18, 2000
	for _, P := range []int{4, 16, 64} {
		vs := randSparseInputs(int64(P)*211, n, k, P)
		b.Run(fmt.Sprintf("P=%d/chained-2way", P), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc := vs[0].Clone()
				for _, o := range vs[1:] {
					acc.Add(o)
				}
			}
		})
		b.Run(fmt.Sprintf("P=%d/kway", P), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stream.MergeK(vs, nil)
			}
		})
		b.Run(fmt.Sprintf("P=%d/kway-scratch", P), func(b *testing.B) {
			b.ReportAllocs()
			sc := stream.NewScratch()
			for i := 0; i < 4; i++ {
				sc.Release(stream.MergeK(vs, sc))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Release(stream.MergeK(vs, sc))
			}
		})
	}
}

// BenchmarkAblationScratchAllreduce measures the end-to-end allocation
// discipline: a full SSAR_Split_allgather allreduce at P=16 with and
// without per-rank Scratch pools (allocs/op includes the whole simulated
// world, goroutines and message harness included).
func BenchmarkAblationScratchAllreduce(b *testing.B) {
	const n, P, k = 1 << 16, 16, 1500
	inputs := randSparseInputs(23, n, k, P)
	b.Run("no-scratch", func(b *testing.B) {
		b.ReportAllocs()
		w := comm.NewWorld(P, simnet.Aries)
		for i := 0; i < b.N; i++ {
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
			})
		}
		b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
	})
	b.Run("with-scratch", func(b *testing.B) {
		b.ReportAllocs()
		w := comm.NewWorld(P, simnet.Aries)
		scratches := make([]*stream.Scratch, P)
		for i := range scratches {
			scratches[i] = stream.NewScratch()
		}
		for i := 0; i < 3; i++ { // reach buffer steady state
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()],
					core.Options{Algorithm: core.SSARSplitAllgather, Scratch: scratches[p.Rank()]})
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()],
					core.Options{Algorithm: core.SSARSplitAllgather, Scratch: scratches[p.Rank()]})
			})
		}
		b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
	})
}

// BenchmarkAblationSketchOverhead is the PR-5 tentpole ablation
// (BENCH_5.json acceptance): one adaptive-layer sketch observation per
// call (adapt.ShapeSketch via stream.Vector.Observe) against the
// split-phase k-way merge it rides along with, at the BENCH_3 merge
// shapes. The sketch's strided sampling caps its work at ~1k indices, so
// observe/op must stay ≤ 2% of merge/op at P ≥ 16 (compare the two
// sub-benchmark times; TestSketchOverheadBudget enforces a loose multiple
// of the budget to stay robust on noisy CI machines).
func BenchmarkAblationSketchOverhead(b *testing.B) {
	const n, k = 1 << 18, 2000
	for _, P := range []int{16, 64} {
		vs := randSparseInputs(int64(P)*977, n, k, P)
		b.Run(fmt.Sprintf("P=%d/merge", P), func(b *testing.B) {
			sc := stream.NewScratch()
			for i := 0; i < 4; i++ {
				sc.Release(stream.MergeK(vs, sc))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Release(stream.MergeK(vs, sc))
			}
		})
		b.Run(fmt.Sprintf("P=%d/observe", P), func(b *testing.B) {
			s := adapt.NewShapeSketch(0, 0)
			for i := 0; i < b.N; i++ {
				s.Observe(vs[i%P])
			}
		})
		b.Run(fmt.Sprintf("P=%d/merge+observe", P), func(b *testing.B) {
			sc := stream.NewScratch()
			s := adapt.NewShapeSketch(0, 0)
			for i := 0; i < 4; i++ {
				sc.Release(stream.MergeK(vs, sc))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(vs[i%P])
				sc.Release(stream.MergeK(vs, sc))
			}
		})
	}
}

// TestSketchOverheadBudget is the loose, CI-safe form of the sketch
// overhead acceptance: the 2% budget is enforced at 10× slack (observe/op
// ≤ 20% of merge/op) so a noisy shared machine cannot flake the suite,
// while a regression that makes observation do real per-pair work (the
// measured ratio is ~0.6%) still fails loudly. The true ratio is recorded
// in BENCH_5's note from BenchmarkAblationSketchOverhead.
func TestSketchOverheadBudget(t *testing.T) {
	const n, k, P, reps = 1 << 18, 2000, 16, 50
	vs := randSparseInputs(977*P, n, k, P)
	sc := stream.NewScratch()
	s := adapt.NewShapeSketch(0, 0)
	for i := 0; i < 4; i++ {
		sc.Release(stream.MergeK(vs, sc))
		s.Observe(vs[i])
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		sc.Release(stream.MergeK(vs, sc))
	}
	merge := time.Since(start)
	start = time.Now()
	for i := 0; i < reps; i++ {
		s.Observe(vs[i%P])
	}
	observe := time.Since(start)
	ratio := float64(observe) / float64(merge)
	t.Logf("observe/merge = %.2f%% (merge %v/op, observe %v/op)",
		ratio*100, merge/reps, observe/reps)
	if ratio > 0.20 {
		t.Fatalf("sketch observation costs %.1f%% of the split-phase merge; budget is 2%% (enforced here at 10x slack)", ratio*100)
	}
}

// BenchmarkObsDisabledOverhead is the PR-10 observability acceptance
// bench: the BENCH_3-shaped P=16 split-phase merge allreduce with no
// hub attached (the default, where every hook is one nil field check)
// versus with EnableObservability recording every send and phase.
// Compare the two sub-benchmark times; TestObsDisabledOverheadBudget
// enforces the disabled-path budget in the test suite.
func BenchmarkObsDisabledOverhead(b *testing.B) {
	const n, k, P = 1 << 18, 2000, 16
	inputs := randSparseInputs(31*P, n, k, P)
	run := func(b *testing.B, observe bool) {
		for i := 0; i < b.N; i++ {
			// Fresh world per op so the enabled arm's span buffers do not
			// accumulate across iterations and skew the comparison.
			w := comm.NewWorld(P, simnet.Aries)
			if observe {
				w.EnableObservability()
			}
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()],
					core.Options{Algorithm: core.SSARSplitAllgather})
			})
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// TestObsDisabledOverheadBudget enforces the observability acceptance:
// with no hub attached, the instrumentation left in the hot paths must
// cost under 1% of the P=16 split-phase merge allreduce it rides in. The
// per-hook disabled cost (one nil field check, measured in a rank
// goroutine) is multiplied by a deliberately generous hook count per
// call — every send plus every phase bracket at P=16 stays well under
// 16·P — and, like TestSketchOverheadBudget, the 1% budget is enforced
// at 10× slack so a noisy CI machine cannot flake the suite while a
// regression that puts real work (an allocation, a lock) on the disabled
// path still fails loudly. Zero-allocation of the same path is asserted
// exactly in internal/comm's TestDisabledObsZeroAllocs.
func TestObsDisabledOverheadBudget(t *testing.T) {
	const n, k, P, reps = 1 << 18, 2000, 16, 20
	inputs := randSparseInputs(31*P, n, k, P)
	w := comm.NewWorld(P, simnet.Aries)
	call := func() {
		comm.Run(w, func(p *comm.Proc) any {
			return core.Allreduce(p, inputs[p.Rank()],
				core.Options{Algorithm: core.SSARSplitAllgather})
		})
	}
	call() // warm scratch and scheduler state
	start := time.Now()
	for i := 0; i < reps; i++ {
		call()
	}
	perCall := time.Since(start) / reps

	// Disabled hook cost, measured where the hooks actually run: inside a
	// rank goroutine of a world that never called EnableObservability.
	const hookReps = 1 << 20
	var hooks time.Duration
	comm.Run(w, func(p *comm.Proc) any {
		if p.Rank() != 0 {
			return nil
		}
		begin := time.Now()
		for i := 0; i < hookReps; i++ {
			p.SpanBegin("probe")
			p.SpanEnd()
		}
		hooks = time.Since(begin)
		return nil
	})
	perHook := hooks / (2 * hookReps)
	const hooksPerCall = 16 * P
	estimated := perHook * hooksPerCall
	ratio := float64(estimated) / float64(perCall)
	t.Logf("disabled hooks ≈ %.3f%% of merge call (%v/hook × %d hooks vs %v/call)",
		ratio*100, perHook, hooksPerCall, perCall)
	if ratio > 0.10 {
		t.Fatalf("disabled observability costs %.2f%% of the split-phase merge call; budget is 1%% (enforced here at 10x slack)", ratio*100)
	}
}

// BenchmarkAblationQuantBits measures the DSAR allreduce at 2/4/8-bit
// quantization versus full precision.
func BenchmarkAblationQuantBits(b *testing.B) {
	const n, P = 1 << 15, 8
	rng := rand.New(rand.NewSource(7))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		vals := make([]float64, n)
		for i := range vals {
			if rng.Float64() < 0.3 {
				vals[i] = rng.NormFloat64()
			}
		}
		inputs[r] = stream.FromDense(vals, stream.OpSum)
	}
	run := func(b *testing.B, q *quant.Config) {
		w := comm.NewWorld(P, simnet.GigE)
		for i := 0; i < b.N; i++ {
			comm.Run(w, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{
					Algorithm: core.DSARSplitAllgather, Quant: q, Seed: 1,
				})
			})
		}
		b.ReportMetric(w.MaxTime()*1e3, "simms/op")
	}
	b.Run("fp64", func(b *testing.B) { run(b, nil) })
	for _, bits := range []int{8, 4, 2} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			run(b, &quant.Config{Bits: bits, Bucket: 1024, Norm: quant.NormMax})
		})
	}
}

// BenchmarkAblationBucket varies the TopK bucket size (selection
// granularity, §8.3).
func BenchmarkAblationBucket(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, bucket := range []int{128, 512, 1024} {
		b.Run(fmt.Sprintf("bucket=%d", bucket), func(b *testing.B) {
			k := bucket / 128 // constant selected fraction
			for i := 0; i < b.N; i++ {
				topk.SparsifyBuckets(v, bucket, k)
			}
		})
	}
}

// BenchmarkAblationNetworkProfile locates the rec-double vs
// split-allgather crossover across network profiles (α/β ratios).
func BenchmarkAblationNetworkProfile(b *testing.B) {
	const n, P, k = 1 << 18, 8, 4000
	rng := rand.New(rand.NewSource(11))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		val := make([]float64, 0, k)
		for len(idx) < k {
			ix := int32(rng.Intn(n))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	for _, prof := range []simnet.Profile{simnet.Aries, simnet.InfiniBandFDR, simnet.GigE} {
		for _, alg := range []core.Algorithm{core.SSARRecDouble, core.SSARSplitAllgather} {
			b.Run(prof.Name+"/"+alg.String(), func(b *testing.B) {
				w := comm.NewWorld(P, prof)
				for i := 0; i < b.N; i++ {
					comm.Run(w, func(p *comm.Proc) any {
						return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: alg})
					})
				}
				b.ReportMetric(w.MaxTime()*1e6, "simµs/op")
			})
		}
	}
}

// BenchmarkAblationErrorFeedback compares TopK training with and without
// the error-feedback residual; the metric is final top-1 accuracy (the
// convergence cost of dropping feedback).
func BenchmarkAblationErrorFeedback(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		const P = 4
		ds := data.SyntheticDense(data.DenseConfig{Rows: 600, Dim: 24, Classes: 4, Sep: 3, Seed: 5})
		var top1 float64
		for i := 0; i < b.N; i++ {
			w := comm.NewWorld(P, simnet.Aries)
			results := comm.Run(w, func(p *comm.Proc) []train.Point {
				task := &train.MLPTask{
					Net:   nn.ResidualMLP(33, 24, 32, 1, 4, 1),
					Shard: ds.Shard(p.Rank(), P),
				}
				return train.Run(p, task, train.Config{
					Method: train.MethodTopK, LR: 0.0125, BatchPerNode: 32,
					Epochs: 4, Bucket: 512, K: 8,
					Algorithm: core.SSARRecDouble, Seed: 1,
					DisableErrorFeedback: disable,
				})
			})
			top1 = results[0][len(results[0])-1].Top1
		}
		b.ReportMetric(top1, "final-top1")
	}
	b.Run("with-feedback", func(b *testing.B) { run(b, false) })
	b.Run("without-feedback", func(b *testing.B) { run(b, true) })
}
