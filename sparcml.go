// Package sparcml is the public API of the SparCML reproduction: sparse
// collective communication for machine learning (Renggli et al., SC'19).
//
// A World hosts P ranks as goroutines; each rank's program receives a Comm
// handle and exchanges sparse vectors with MPI-style collectives whose
// implementations exploit sparsity (SSAR/DSAR algorithms, §5.3 of the
// paper), optionally with QSGD low-precision compression of dense stages
// (§6) and nonblocking semantics (§7).
//
// Quick start:
//
//	world := sparcml.NewWorld(8, sparcml.Aries)
//	results := sparcml.Run(world, func(c *sparcml.Comm) []float64 {
//	    v := sparcml.NewSparse(1<<20, myIdx, myVal)
//	    sum := c.Allreduce(v, sparcml.Options{})
//	    return sum.ToDense()
//	})
//
// All collectives move real data and simultaneously advance a virtual
// latency–bandwidth clock, so world.SimTime() reports the communication
// time the operation would take on the selected network (Cray Aries,
// InfiniBand FDR, Gigabit Ethernet, or a Spark-like software stack).
package sparcml

import (
	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// Vector is a sparse stream: a vector over [0, N) stored as sorted
// index–value pairs that automatically switches to a dense array when it
// fills in past the δ threshold. See stream.Vector for the full method
// set (Add, Concat, ExtractRange, Encode, ...).
type Vector = stream.Vector

// Op is a coordinate-wise reduction operation with a neutral element.
type Op = stream.Op

// Reduction operations.
const (
	OpSum  = stream.OpSum
	OpMax  = stream.OpMax
	OpMin  = stream.OpMin
	OpProd = stream.OpProd
)

// Algorithm selects an allreduce implementation.
type Algorithm = core.Algorithm

// Allreduce algorithms (§5.3), dense baselines, and Auto selection.
const (
	Auto               = core.Auto
	SSARRecDouble      = core.SSARRecDouble
	SSARSplitAllgather = core.SSARSplitAllgather
	DSARSplitAllgather = core.DSARSplitAllgather
	DenseRecDouble     = core.DenseRecDouble
	DenseRabenseifner  = core.DenseRabenseifner
	DenseRing          = core.DenseRing
	RingSparse         = core.RingSparse
	// HierSSAR is the hierarchical sparse allreduce for two-level
	// topologies: intra-node reduce → inter-node SSAR among node leaders →
	// intra-node broadcast. Auto selects it on worlds built with
	// NewWorldTopo when the cost model prices it cheapest in the
	// sparse-result regime.
	HierSSAR = core.HierSSAR
	// HierDSAR is the hierarchical dynamic sparse allreduce: intra-node
	// reduce → DSAR among node leaders (densify at the leader, dense or
	// QSGD-quantized inter-node allgather) → intra-node broadcast of the
	// dense result. Auto selects it in the dense-result regime when the
	// cost model prices it cheapest — typically when a NICSerial cap makes
	// concurrent flat flows expensive.
	HierDSAR = core.HierDSAR
)

// Options configures an allreduce; see core.Options. Setting the Scratch
// field (one pool per rank — see World.Scratch) makes steady-state
// allreduce calls nearly allocation-free.
type Options = core.Options

// AutoChunks, set as Options.Chunks, asks the cost model to pick the
// pipelined chunk degree alongside the algorithm (a positive value pins
// it; 0 or 1 runs the classic unchunked pass).
const AutoChunks = core.AutoChunks

// Scratch is a per-rank pool of reusable reduction buffers. Passing one in
// Options.Scratch lets the collectives draw merge/densify storage from the
// pool and recycle received streams into it, so repeated allreduce calls
// allocate almost nothing. A Scratch belongs to ONE rank and must not be
// shared across ranks or across concurrently running collectives; vectors
// returned by a collective stay valid — their storage is only recycled if
// explicitly released with Scratch.Release.
type Scratch = stream.Scratch

// NewScratch returns an empty reduction-buffer pool for one rank.
func NewScratch() *Scratch { return stream.NewScratch() }

// SupportModel selects the index-distribution assumption behind the cost
// model's fill-in expectation E[K]; see core.CostScenario.Support for the
// estimators' validity ranges.
type SupportModel = core.SupportModel

// Support models for CostScenario.Support / Options.Support.
const (
	// SupportUniform is the paper's worst-case uniform support model.
	SupportUniform = core.SupportUniform
	// SupportClustered is the blocked hot-set support model
	// (density.ExpectedKClustered), parameterized by HotFraction/HotMass.
	SupportClustered = core.SupportClustered
)

// Adaptive is a per-rank runtime adaptation controller: an AutoAdaptive
// allreduce decision layer that sketches every input's support shape,
// keeps per-level α–β link constants calibrated from observed transfers,
// and feeds both into the cost model with hysteresis. Obtain controllers
// with World.EnableAdaptation + World.Adapt and drive calls through
// Comm.AllreduceAdaptive. See internal/adapt.Controller.
type Adaptive = adapt.Controller

// AdaptConfig tunes the adaptation layer (EWMA decay, clustering
// threshold, hysteresis margin/hold, calibration minimums); the zero
// value selects sensible defaults. See internal/adapt.Config.
type AdaptConfig = adapt.Config

// QuantConfig configures QSGD stochastic quantization; see quant.Config.
type QuantConfig = quant.Config

// Quantization norms.
const (
	NormMax = quant.NormMax
	NormL2  = quant.NormL2
)

// Profile describes a network in the α–β cost model.
type Profile = simnet.Profile

// Topology describes a two-level machine: ranks are grouped into nodes of
// RanksPerNode consecutive ranks, intra-node messages are priced by the
// Intra profile and inter-node messages by the Inter profile. NICSerial,
// when positive, caps how many concurrent inter-node sends one node can
// drive at full bandwidth (per-node NIC contention). Use with
// NewWorldTopo:
//
//	world := sparcml.NewWorldTopo(32, sparcml.Topology{
//	    RanksPerNode: 4, Intra: sparcml.NVLinkLike, Inter: sparcml.Aries,
//	    NICSerial: 1, // one full-rate flow per node NIC
//	})
//
// A Topology is exactly the two-level case of the general Hierarchy
// (Topology.Hierarchy converts); deeper machines use NewWorldHier.
type Topology = simnet.Topology

// Hierarchy describes an N-level machine as an ordered list of Levels from
// innermost (intra-node links) to outermost (global links): Span(l)
// consecutive ranks share a level-l group, a message is priced by the
// profile of the innermost level its two ranks share, and each level's
// Serial cap models the group's egress bandwidth serialization. Use with
// NewWorldHier:
//
//	world := sparcml.NewWorldHier(64, sparcml.DragonflyLike(4, 4))
//
// Auto selects the recursive hierarchical collectives — and their depth —
// on such worlds whenever the level-aware cost model prices them cheapest.
type Hierarchy = simnet.Hierarchy

// Level is one tier of a Hierarchy: GroupSize units of the previous level
// per group, the Profile pricing messages whose innermost shared group is
// at this level, and the group's egress Serial cap.
type Level = simnet.Level

// DragonflyLike returns the three-tier hierarchy of a Dragonfly machine in
// the class of Piz Daint: NVLink-like links inside nodes of ranksPerNode
// ranks behind a single full-rate NIC, Aries links between the
// nodesPerGroup nodes of one group behind a tapered two-flow uplink, and
// AriesGlobal links between groups.
func DragonflyLike(ranksPerNode, nodesPerGroup int) Hierarchy {
	return simnet.DragonflyLike(ranksPerNode, nodesPerGroup)
}

// CostScenario describes an allreduce instance for the analytic α–β(+NIC)
// cost model that drives Auto selection; see core.CostScenario for field
// semantics (byte quantities are wire bytes, times are simulated seconds).
type CostScenario = core.CostScenario

// PredictSeconds returns the modeled completion time in simulated seconds
// of one allreduce under the scenario, for any Auto candidate algorithm.
func PredictSeconds(alg Algorithm, s CostScenario) float64 {
	return core.PredictSeconds(alg, s)
}

// ChooseAuto returns the algorithm Auto resolves to for a scenario: the
// paper's δ representation gate followed by a modeled-cost comparison of
// the candidates (hierarchical ones included on multi-node topologies).
func ChooseAuto(s CostScenario) Algorithm {
	return core.ChooseAuto(s)
}

// ChooseAutoLevels is ChooseAuto returning additionally the hierarchy
// depth the chosen algorithm should run at (Options.Levels; 0 for flat
// choices) and the split-phase chunk count it should pipeline at
// (Options.Chunks; 1 unless the scenario's Chunks is AutoChunks): on a
// multi-tier Hierarchy world the cost model prices the hierarchical
// algorithms at every usable depth and picks the cheapest.
func ChooseAutoLevels(s CostScenario) (Algorithm, int, int) {
	return core.ChooseAutoLevels(s)
}

// Built-in network profiles.
var (
	// Aries models Piz Daint's Cray Aries interconnect.
	Aries = simnet.Aries
	// InfiniBandFDR models an FDR InfiniBand fabric.
	InfiniBandFDR = simnet.InfiniBandFDR
	// GigE models Gigabit Ethernet.
	GigE = simnet.GigE
	// SparkLike models a JVM dataflow communication layer.
	SparkLike = simnet.SparkLike
	// NVLinkLike models an intra-node GPU interconnect, the natural Intra
	// profile of a Topology.
	NVLinkLike = simnet.NVLinkLike
	// AriesGlobal models the tapered global links between Dragonfly
	// groups, the natural outermost profile of a three-tier Hierarchy.
	AriesGlobal = simnet.AriesGlobal
)

// NewSparse builds a sparse vector of dimension n from index–value pairs
// under summation. Indices must be unique and in [0, n); they need not be
// sorted.
func NewSparse(n int, idx []int32, val []float64) *Vector {
	return stream.NewSparse(n, idx, val, stream.OpSum)
}

// NewSparseOp is NewSparse with an explicit reduction operation.
func NewSparseOp(n int, idx []int32, val []float64, op Op) *Vector {
	return stream.NewSparse(n, idx, val, op)
}

// NewDense builds a dense vector under summation.
func NewDense(values []float64) *Vector {
	return stream.NewDense(values, stream.OpSum)
}

// FromDense builds a vector from a dense slice, choosing the sparse
// representation when beneficial.
func FromDense(values []float64) *Vector {
	return stream.FromDense(values, stream.OpSum)
}

// World is a group of P communicating ranks over a simulated network.
type World struct {
	inner     *comm.World
	scratches []*Scratch  // one pool per rank, see Scratch(rank)
	adapts    []*Adaptive // one controller per rank, see EnableAdaptation
}

// NewWorld creates a world of p ranks on the given network profile.
func NewWorld(p int, profile Profile) *World {
	return &World{inner: comm.NewWorld(p, profile), scratches: newScratches(p)}
}

func newScratches(p int) []*Scratch {
	out := make([]*Scratch, p)
	for i := range out {
		out[i] = NewScratch()
	}
	return out
}

// NewWorldTopo creates a world of p ranks on a two-level topology:
// messages between ranks on the same node cost topo.Intra, messages
// between nodes cost topo.Inter. Auto algorithm selection picks the
// hierarchical collectives on such worlds.
func NewWorldTopo(p int, topo Topology) *World {
	return &World{inner: comm.NewWorldTopo(p, topo), scratches: newScratches(p)}
}

// NewWorldHier creates a world of p ranks on an N-level machine hierarchy:
// every message is priced by the profile of the innermost level its ranks
// share and pays each crossed level's egress serialization factor. Auto
// picks the recursive hierarchical collectives — at the cheapest modeled
// depth — on such worlds.
func NewWorldHier(p int, h Hierarchy) *World {
	return &World{inner: comm.NewWorldHier(p, h), scratches: newScratches(p)}
}

// TCPConfig configures a TCP-transport world (NewWorldTCP): the rendezvous
// address, this process's ranks, and the dial timeout.
type TCPConfig = comm.TCPConfig

// NewWorldTCP creates a world of p ranks communicating over TCP sockets —
// a real execution backend, with measured wall-clock times instead of the
// simulator's virtual clock. The zero cfg hosts every rank in this process
// behind an ephemeral loopback rendezvous; a multi-process world names a
// shared cfg.Rendezvous and partitions ranks via cfg.LocalRanks. The
// profile still parameterizes Auto's cost model (until calibration
// replaces it) but never prices a transfer. Close the world to release its
// sockets.
func NewWorldTCP(p int, profile Profile, cfg TCPConfig) (*World, error) {
	inner, err := comm.NewWorldTCP(p, profile, cfg)
	if err != nil {
		return nil, err
	}
	return &World{inner: inner, scratches: newScratches(p)}, nil
}

// UseGoroutineTransport switches the world to the in-process goroutine
// backend: ranks run truly concurrently, every payload is deep-copied
// through the wire codec, and all times are measured wall-clock seconds.
// Call before Run; returns the world for chaining.
func (w *World) UseGoroutineTransport() *World {
	w.inner.UseGoroutineTransport()
	return w
}

// Transport names the world's execution backend: "sim", "goroutine", or
// "tcp".
func (w *World) Transport() string { return w.inner.Transport() }

// WallClock reports whether the world's times (SimTime, SimTimes, Now,
// trace timestamps) are measured wall-clock seconds rather than virtual
// α–β seconds.
func (w *World) WallClock() bool { return w.inner.WallClock() }

// Close releases backend resources (TCP listeners and connections); a
// no-op on the simulator and goroutine backends.
func (w *World) Close() error { return w.inner.Close() }

// Size returns the number of ranks.
func (w *World) Size() int { return w.inner.Size() }

// Scratch returns rank's reusable reduction-buffer pool. The pools persist
// across Run calls, which is what makes them pay off:
//
//	results := sparcml.Run(world, func(c *sparcml.Comm) []float64 {
//	    opts := sparcml.Options{Scratch: world.Scratch(c.Rank())}
//	    return c.Allreduce(v, opts).ToDense()
//	})
//
// Safe to call concurrently from inside Run, but always with the calling
// rank's own id: each pool belongs to exactly one rank.
func (w *World) Scratch(rank int) *Scratch {
	return w.scratches[rank]
}

// EnableAdaptation switches the world to runtime-adaptive Auto selection:
// message tracing is enabled (capped per rank, so long-running workloads
// stay at bounded memory) and one Adaptive controller per rank is built
// from cfg — all identical, which is what keeps the per-rank decision
// state machines in lockstep. Call it once, from the driving goroutine,
// before Run; it is idempotent (later calls keep the first configuration).
// Then route collectives through the controllers:
//
//	world.EnableAdaptation(sparcml.AdaptConfig{})
//	results := sparcml.Run(world, func(c *sparcml.Comm) []float64 {
//	    a := world.Adapt(c.Rank())
//	    return c.AllreduceAdaptive(v, a, sparcml.Options{}).ToDense()
//	})
func (w *World) EnableAdaptation(cfg AdaptConfig) {
	if w.adapts != nil {
		return
	}
	tr := w.inner.EnableTrace()
	tr.LimitPerRank(adaptTraceLimit)
	w.adapts = make([]*Adaptive, w.Size())
	for r := range w.adapts {
		a := adapt.NewController(cfg)
		a.AttachTracer(tr, r)
		w.adapts[r] = a
	}
}

// Observability is the per-world observation hub: a low-overhead metrics
// registry plus per-rank span timelines, exportable as a plain-text
// metrics dump (WriteMetrics) or a Chrome trace-event JSON (WriteChrome)
// that loads directly into Perfetto. See internal/obs for the span
// taxonomy and ARCHITECTURE.md's Observability section for a walkthrough.
type Observability = obs.Obs

// EnableObservability attaches an observation hub to the world: every
// send, collective phase, adaptation decision, and training step from
// then on lands on the hub as a span or metric. Call it once, from the
// driving goroutine, before Run; it is idempotent. With no hub attached
// the instrumentation costs one nil check per hook and zero allocations:
//
//	hub := world.EnableObservability()
//	sparcml.Run(world, func(c *sparcml.Comm) []float64 { ... })
//	hub.WriteChrome(f) // open f in https://ui.perfetto.dev
func (w *World) EnableObservability() *Observability {
	return w.inner.EnableObservability()
}

// adaptTraceLimit bounds the shared trace at EnableAdaptation to this
// many recorded sends per rank — far more than the link calibrator needs
// for an exact fit, small enough that week-long training loops do not
// accumulate unbounded trace memory.
const adaptTraceLimit = 4096

// Adapt returns rank's adaptation controller. Like Scratch, each
// controller belongs to exactly one rank and persists across Run calls
// (which is what lets its sketch and calibration warm up over a training
// run). Panics unless EnableAdaptation was called first.
func (w *World) Adapt(rank int) *Adaptive {
	if w.adapts == nil {
		panic("sparcml: call World.EnableAdaptation before Adapt")
	}
	return w.adapts[rank]
}

// Topology returns the world's two-level topology, if one was configured
// with NewWorldTopo.
func (w *World) Topology() (Topology, bool) { return w.inner.Topology() }

// Hierarchy returns the world's machine hierarchy, if one was configured
// (directly via NewWorldHier, or as the two-level hierarchy of a
// NewWorldTopo topology).
func (w *World) Hierarchy() (Hierarchy, bool) { return w.inner.Hierarchy() }

// SimTime returns the maximum completion time across ranks for the most
// recent Run: simulated α–β seconds on the default backend, measured
// wall-clock seconds on the real backends (WallClock reports which).
func (w *World) SimTime() float64 { return w.inner.MaxTime() }

// SimTimes returns each rank's completion time for the most recent Run —
// simulated or measured wall-clock seconds, as with SimTime. On a
// multi-process TCP world only this process's ranks have entries; the
// rest are zero.
func (w *World) SimTimes() []float64 { return w.inner.Times() }

// Comm is one rank's communicator handle.
type Comm struct {
	proc *comm.Proc
}

// Run executes f concurrently on every rank of the world and returns the
// per-rank results in rank order. It may be called repeatedly; each call
// starts fresh virtual clocks, so SimTime after a call reports that call's
// simulated duration.
func Run[R any](w *World, f func(*Comm) R) []R {
	return comm.Run(w.inner, func(p *comm.Proc) R {
		return f(&Comm{proc: p})
	})
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.proc.Rank() }

// Size returns the world size.
func (c *Comm) Size() int { return c.proc.Size() }

// Now returns this rank's current virtual time in seconds.
func (c *Comm) Now() float64 { return c.proc.Now() }

// Compute advances this rank's virtual clock by a modeled local
// computation of the given duration.
func (c *Comm) Compute(seconds float64) { c.proc.Compute(seconds) }

// Allreduce performs a sparse allreduce of v across all ranks and returns
// the reduction (identical on every rank). v is not modified.
func (c *Comm) Allreduce(v *Vector, opts Options) *Vector {
	return core.Allreduce(c.proc, v, opts)
}

// AllreduceAdaptive is Allreduce with the runtime adaptation layer in
// front: a, this rank's controller (World.Adapt), sketches the input,
// agrees the measured scenario with the other ranks, and picks algorithm
// and hierarchy depth through the cost model with hysteresis. Every rank
// must route the same calls through its own controller in the same order.
// Results are those of the chosen concrete algorithm — adaptation never
// changes reduction semantics.
func (c *Comm) AllreduceAdaptive(v *Vector, a *Adaptive, opts Options) *Vector {
	return a.Allreduce(c.proc, v, opts)
}

// IAllreduce starts a nonblocking allreduce; the input must not be
// modified until Wait. Ranks must issue nonblocking operations in
// identical program order.
func (c *Comm) IAllreduce(v *Vector, opts Options) *Request {
	return &Request{inner: core.IAllreduce(c.proc, v, opts), c: c}
}

// BucketScheduler coalesces per-layer gradient contributions into
// cost-model-sized fused buckets and runs them as overlapped nonblocking
// collectives in backprop order; see core.BucketScheduler.
type BucketScheduler = core.BucketScheduler

// NewBucketScheduler partitions the model's layer spans (span i = [lo,hi)
// coordinate range of layer i) into buckets of at least coords
// coordinates each, walked in backprop order so bucket 0 is ready first.
func NewBucketScheduler(spans [][2]int, coords int) *BucketScheduler {
	return core.NewBucketScheduler(spans, coords)
}

// BucketCoords returns the scenario's model-derived bucket size in
// coordinates: large enough that the per-collective latency floor stays
// a small fraction of the bucket's dense-equivalent transfer time.
func BucketCoords(s CostScenario) int { return core.BucketCoords(s) }

// BucketIssue fuses every bucket of the scheduler and starts its
// nonblocking allreduce, in issue (backprop) order. opts follows
// BucketScheduler.Issue: nil, one replicated element, or one per bucket.
func (c *Comm) BucketIssue(s *BucketScheduler, contribs []*Vector, opts []Options) []*Request {
	inner := s.Issue(c.proc, contribs, opts)
	out := make([]*Request, len(inner))
	for i, r := range inner {
		out[i] = &Request{inner: r, c: c}
	}
	return out
}

// BucketDrain waits on BucketIssue's requests in issue order and returns
// the summed bucket vectors.
func (c *Comm) BucketDrain(reqs []*Request) []*Vector {
	out := make([]*Vector, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}

// AllgatherSparse gathers disjoint sparse contributions from all ranks
// into their union (identical on every rank).
func (c *Comm) AllgatherSparse(mine *Vector) *Vector {
	return core.SparseAllgather(c.proc, mine)
}

// IAllgatherSparse is the nonblocking variant of AllgatherSparse.
func (c *Comm) IAllgatherSparse(mine *Vector) *Request {
	return &Request{inner: core.ISparseAllgather(c.proc, mine), c: c}
}

// AllreduceDense reduces a raw dense slice (recursive doubling), returning
// the sum on every rank — a convenience for scalars and small metadata.
func (c *Comm) AllreduceDense(x []float64) []float64 {
	return core.AllreduceDense(c.proc, x, stream.OpSum)
}

// Bcast broadcasts root's slice to every rank.
func (c *Comm) Bcast(x []float64, root int) []float64 {
	return core.Bcast(c.proc, x, root, stream.DefaultValueBytes)
}

// Barrier synchronizes all ranks.
func (c *Comm) Barrier() { c.proc.Barrier() }

// Reduce combines every rank's vector at the root (binomial tree);
// non-root ranks return nil.
func (c *Comm) Reduce(v *Vector, root int) *Vector {
	return core.Reduce(c.proc, v, root)
}

// ReduceScatter partitions the dimension space uniformly across ranks and
// returns this rank's fully reduced partition.
func (c *Comm) ReduceScatter(v *Vector) *Vector {
	return core.ReduceScatterSparse(c.proc, v)
}

// Gather collects disjoint sparse contributions at the root; non-root
// ranks return nil.
func (c *Comm) Gather(mine *Vector, root int) *Vector {
	return core.GatherSparse(c.proc, mine, root)
}

// Scatter splits the root's vector by the uniform dimension partition and
// returns each rank's slice in canonical representation (dense when the
// partition holds more than δ entries). Non-root ranks pass v == nil and
// must supply n and op.
func (c *Comm) Scatter(v *Vector, root, n int, op Op) *Vector {
	return core.ScatterRanges(c.proc, v, root, n, op)
}

// Alltoall sends pieces[r] to rank r and returns the pieces received,
// indexed by source.
func (c *Comm) Alltoall(pieces []*Vector) []*Vector {
	return core.AlltoallSparse(c.proc, pieces)
}

// DrydenAllreduce runs the Dryden et al. (2016) lossy sparse allreduce
// baseline: the result keeps at most k entries; the locally postponed
// remainder is returned for the caller's error-feedback residual.
func (c *Comm) DrydenAllreduce(v *Vector, k int) (result, postponed *Vector) {
	return core.DrydenAllreduce(c.proc, v, k)
}

// SimulationKey is the determinism key of one workload-generation run:
// every random stream (scenario draws, cluster jitter, random placement)
// derives from (key, stream name), so equal keys replay byte-identical
// runs. See scenario.SimulationKey.
type SimulationKey = scenario.SimulationKey

// NewSimulationKey builds a SimulationKey from a user-facing seed.
func NewSimulationKey(seed int64) SimulationKey { return scenario.NewKey(seed) }

// WorkloadScenario is a declarative workload: dimension, world size, call
// count, and the density/support/drift schedules the deterministic
// generator realizes. See scenario.Scenario for the schedule fields.
type WorkloadScenario = scenario.Scenario

// ScenarioByName looks up a named workload in the scenario library.
func ScenarioByName(name string) (WorkloadScenario, error) { return scenario.ByName(name) }

// ScenarioNames lists every library workload in sorted order.
func ScenarioNames() []string { return scenario.Names() }

// Cluster is the multi-tenant cluster simulator: one shared machine
// hierarchy hosting concurrent jobs gang-scheduled by a Placement policy
// and advanced on a shared virtual clock, with cross-job contention
// served dynamically from in-flight flow counters. See internal/cluster.
type Cluster = cluster.Cluster

// ClusterConfig configures a Cluster: the machine, its slot count, the
// determinism key, and the straggler/arrival jitter knobs.
type ClusterConfig = cluster.Config

// ClusterJob declares one workload to admit to a Cluster.
type ClusterJob = cluster.Job

// ClusterJobStats is one cluster job's outcome: arrival/admission/finish
// times, simulated collective seconds, the admission-time cost prediction,
// and the pinned algorithm.
type ClusterJobStats = cluster.JobStats

// Placement gang-schedules a cluster job's ranks onto machine slots.
type Placement = cluster.Placement

// The placement policies: lowest free slots (Packed), uniform stride
// across the machine (Spread), uniform random slots from the job's
// isolated stream (RandomPlacement), and cost-model-driven candidate
// search (CostAware).
type (
	// Packed places jobs on the lowest free slots.
	Packed = cluster.Packed
	// Spread places jobs at a uniform stride across the free slots.
	Spread = cluster.Spread
	// RandomPlacement places jobs on random free slots.
	RandomPlacement = cluster.Random
	// CostAware prices candidate placements with the Auto cost model and
	// takes the cheapest.
	CostAware = cluster.CostAware
)

// NewCluster creates a cluster over cfg.Slots slots of cfg.Machine,
// placing jobs with the given policy:
//
//	c := sparcml.NewCluster(sparcml.ClusterConfig{
//	    Machine: sparcml.DragonflyLike(4, 2), Slots: 64,
//	    Key: sparcml.NewSimulationKey(1),
//	}, sparcml.CostAware{})
//	sc, _ := sparcml.ScenarioByName("clustered")
//	c.Add(sparcml.ClusterJob{Name: "trainer-0", Scenario: sc})
//	stats := c.Run()
func NewCluster(cfg ClusterConfig, place Placement) *Cluster { return cluster.New(cfg, place) }

// Request is a handle on a nonblocking collective.
type Request struct {
	inner *core.Request
	c     *Comm
}

// Wait blocks until the operation completes, folds its virtual time into
// the caller (modeling computation/communication overlap), and returns
// the result.
func (r *Request) Wait() *Vector { return r.inner.Wait(r.c.proc) }

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool { return r.inner.Test() }
