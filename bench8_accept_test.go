package sparcml

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"repro/internal/experiments"
)

// bench8Doc mirrors the BENCH_8.json document emitted by
// `sparbench -sweep cluster -json`.
type bench8Doc struct {
	ID         string                             `json:"id"`
	Cells      []experiments.ClusterRow           `json:"cells"`
	Policies   []experiments.ClusterPolicySummary `json:"policy_summary"`
	AdaptCells []experiments.AdaptRow             `json:"adapt_cells"`
}

func readBench8(t *testing.T) bench8Doc {
	t.Helper()
	raw, err := os.ReadFile("BENCH_8.json")
	if err != nil {
		t.Fatalf("read BENCH_8.json: %v", err)
	}
	var doc bench8Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_8.json: %v", err)
	}
	if doc.ID != "BENCH_8" {
		t.Fatalf("unexpected document id %q", doc.ID)
	}
	return doc
}

// TestBench8AcceptanceCriteria validates the PR-9 acceptance invariants on
// the committed BENCH_8.json (scripts/ci.sh regenerates the file and
// hard-fails on drift, so the committed cells always reflect the current
// code): the whole eight-job mix runs concurrently under every policy on
// both three-level machines, no job ever beats its isolated baseline,
// packed keeps its jobs on exclusive capped groups (slowdown exactly 1),
// and the cost-aware policy wins — its mean predicted job time strictly
// beats random's at every scale, and its mean realized slowdown is never
// worse than any other policy's.
func TestBench8AcceptanceCriteria(t *testing.T) {
	doc := readBench8(t)
	const eps = 1e-9

	byScale := map[string]map[string]experiments.ClusterPolicySummary{}
	for _, s := range doc.Policies {
		if byScale[s.Scale] == nil {
			byScale[s.Scale] = map[string]experiments.ClusterPolicySummary{}
		}
		byScale[s.Scale][s.Policy] = s
		if s.Jobs < 8 {
			t.Errorf("%s/%s: only %d jobs, want >= 8", s.Scale, s.Policy, s.Jobs)
		}
		if s.ConcurrentPeak != s.Jobs {
			t.Errorf("%s/%s: concurrent peak %d of %d jobs — the mix must run fully concurrent",
				s.Scale, s.Policy, s.ConcurrentPeak, s.Jobs)
		}
	}
	if len(byScale) < 2 {
		t.Fatalf("BENCH_8.json covers %d machine scales, want 2", len(byScale))
	}
	for scale, policies := range byScale {
		if len(policies) < 3 {
			t.Fatalf("%s: only %d policies, want >= 3", scale, len(policies))
		}
		aware, ok := policies["cost-aware"]
		if !ok {
			t.Fatalf("%s: no cost-aware summary", scale)
		}
		random, ok := policies["random"]
		if !ok {
			t.Fatalf("%s: no random summary", scale)
		}
		if aware.MeanPredictedJob >= random.MeanPredictedJob {
			t.Errorf("%s: cost-aware mean predicted job %g does not strictly beat random's %g",
				scale, aware.MeanPredictedJob, random.MeanPredictedJob)
		}
		for name, s := range policies {
			if aware.MeanSlowdown > s.MeanSlowdown+eps {
				t.Errorf("%s: cost-aware mean slowdown %g worse than %s's %g",
					scale, aware.MeanSlowdown, name, s.MeanSlowdown)
			}
		}
	}

	for _, c := range doc.Cells {
		if c.Slowdown < 1-eps {
			t.Errorf("%s/%s/%s: slowdown %g < 1 — a co-tenant run beat its isolated baseline",
				c.Scale, c.Policy, c.Job, c.Slowdown)
		}
		if got := c.SimSeconds / c.IsolatedSim; math.Abs(got-c.Slowdown) > 1e-6*c.Slowdown {
			t.Errorf("%s/%s/%s: slowdown %g inconsistent with sim/isolated = %g",
				c.Scale, c.Policy, c.Job, c.Slowdown, got)
		}
		if c.Policy == "packed" && math.Abs(c.Slowdown-1) > eps {
			t.Errorf("%s/packed/%s: slowdown %g, want exactly 1 on exclusive groups",
				c.Scale, c.Job, c.Slowdown)
		}
	}
}

// TestBench8AdaptDiversity promotes the scenario-diversity adaptation
// cells (snapshot-only in the adaptdiv sweep) into the drift gate: the
// pinned library cells are all present, the adaptive controller beats
// static-uniform Auto on every clustered/drifting cell, stays within
// agreement-overhead noise on the stationary uniform one, never loses
// badly (>15%) on any library shape it was not tuned on, and keeps its
// switch count bounded by hysteresis. The four BENCH_5 workloads must
// reproduce the committed BENCH_5.json rows exactly — same machine, key,
// and streams, so any divergence means the two documents were recorded
// from different code.
func TestBench8AdaptDiversity(t *testing.T) {
	doc := readBench8(t)
	const noise = 0.03

	byName := map[string]experiments.AdaptRow{}
	for _, c := range doc.AdaptCells {
		byName[c.Workload] = c
	}
	for _, want := range experiments.Bench8AdaptNames() {
		if _, ok := byName[want]; !ok {
			t.Fatalf("BENCH_8.json is missing the %q adapt cell", want)
		}
	}

	for _, c := range doc.AdaptCells {
		if c.AdaptiveSwitches > 3 {
			t.Errorf("%s: %d switches — hysteresis should bound churn", c.Workload, c.AdaptiveSwitches)
		}
		switch c.Workload {
		case "uniform":
			if c.AdaptiveVsUniform < 1-noise {
				t.Errorf("uniform: adaptive loses %.1f%% to static Auto, beyond the %.0f%% noise bound",
					(1-c.AdaptiveVsUniform)*100, noise*100)
			}
		case "clustered", "drift-cluster", "drift-shift":
			if c.AdaptiveVsUniform <= 1 {
				t.Errorf("%s: adaptive_vs_uniform = %.3f, adaptive must beat static-uniform Auto",
					c.Workload, c.AdaptiveVsUniform)
			}
		default:
			// Diversity-only shapes (small worlds, few calls): the
			// controller may pay its agreement overhead without a regime
			// win to show for it, but must never lose badly.
			if c.AdaptiveVsUniform < 0.85 {
				t.Errorf("%s: adaptive loses %.1f%% to static Auto on a diversity cell",
					c.Workload, (1-c.AdaptiveVsUniform)*100)
			}
		}
	}

	raw, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		t.Fatalf("read BENCH_5.json: %v", err)
	}
	var bench5 struct {
		Cells []experiments.AdaptRow `json:"cells"`
	}
	if err := json.Unmarshal(raw, &bench5); err != nil {
		t.Fatalf("parse BENCH_5.json: %v", err)
	}
	for _, b5 := range bench5.Cells {
		b8, ok := byName[b5.Workload]
		if !ok {
			t.Errorf("BENCH_5 workload %q absent from BENCH_8 adapt cells", b5.Workload)
			continue
		}
		if !reflect.DeepEqual(b5, b8) {
			t.Errorf("%s: BENCH_8 adapt cell diverges from BENCH_5:\n%+v\nvs\n%+v", b5.Workload, b8, b5)
		}
	}
}

// TestFacadeCluster exercises the public multi-tenant surface end to end:
// library scenarios admitted to a cost-aware cluster through the facade
// aliases, with the determinism contract holding across runs.
func TestFacadeCluster(t *testing.T) {
	run := func() []ClusterJobStats {
		c := NewCluster(ClusterConfig{
			Machine: DragonflyLike(4, 2), Slots: 32,
			Key: NewSimulationKey(12),
		}, CostAware{})
		sc, err := ScenarioByName("multimodal")
		if err != nil {
			t.Fatalf("ScenarioByName: %v", err)
		}
		c.Add(ClusterJob{Name: "trainer-0", Scenario: sc})
		c.Add(ClusterJob{Name: "trainer-1", Scenario: sc})
		return c.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same key diverged:\n%+v\nvs\n%+v", a, b)
	}
	for _, s := range a {
		if s.SimSeconds <= 0 || s.Algorithm == "" || len(s.Slots) != s.P {
			t.Fatalf("malformed stats through the facade: %+v", s)
		}
	}
}
