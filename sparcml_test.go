package sparcml

import (
	"math"
	"testing"
)

func TestFacadeAllreduce(t *testing.T) {
	w := NewWorld(4, Aries)
	results := Run(w, func(c *Comm) *Vector {
		v := NewSparse(100, []int32{int32(c.Rank()), 50}, []float64{1, 2})
		return c.Allreduce(v, Options{})
	})
	for r, res := range results {
		if res.Get(50) != 8 {
			t.Fatalf("rank %d: shared coordinate = %g, want 8", r, res.Get(50))
		}
		for i := 0; i < 4; i++ {
			if res.Get(i) != 1 {
				t.Fatalf("rank %d: coordinate %d = %g, want 1", r, i, res.Get(i))
			}
		}
	}
	if w.SimTime() <= 0 {
		t.Fatal("simulated time must be positive")
	}
	if len(w.SimTimes()) != 4 {
		t.Fatal("SimTimes length")
	}
}

func TestFacadeTopologyWorld(t *testing.T) {
	topo := Topology{RanksPerNode: 2, Intra: NVLinkLike, Inter: Aries}
	w := NewWorldTopo(8, topo)
	if got, ok := w.Topology(); !ok || got.RanksPerNode != 2 {
		t.Fatal("topology world must report its topology")
	}
	// Auto on a topology world routes through HierSSAR; the reduction must
	// still be exact.
	results := Run(w, func(c *Comm) *Vector {
		v := NewSparse(100, []int32{int32(c.Rank()), 50}, []float64{1, 2})
		return c.Allreduce(v, Options{})
	})
	for r, res := range results {
		if res.Get(50) != 16 {
			t.Fatalf("rank %d: shared coordinate = %g, want 16", r, res.Get(50))
		}
	}
	if w.SimTime() <= 0 {
		t.Fatal("simulated time must be positive")
	}
	// Explicit HierSSAR must agree with the flat algorithm on a flat world.
	flat := NewWorld(8, Aries)
	flatRes := Run(flat, func(c *Comm) *Vector {
		v := NewSparse(100, []int32{int32(c.Rank()), 50}, []float64{1, 2})
		return c.Allreduce(v, Options{Algorithm: HierSSAR})
	})
	if !flatRes[0].Equal(results[0]) {
		t.Fatal("HierSSAR on flat world must match topology result")
	}
}

func TestFacadeHierarchyWorld(t *testing.T) {
	// The README 3-tier quickstart: a DragonflyLike machine of 64 ranks.
	w := NewWorldHier(64, DragonflyLike(4, 4))
	h, ok := w.Hierarchy()
	if !ok || h.Depth() != 3 || h.Span(1) != 16 {
		t.Fatal("hierarchy world must report its 3-tier hierarchy")
	}
	if _, ok := w.Topology(); ok {
		t.Fatal("hierarchy world must not report a two-level topology")
	}
	results := Run(w, func(c *Comm) *Vector {
		v := NewSparse(100000, []int32{int32(c.Rank()), 200}, []float64{1, 2})
		return c.Allreduce(v, Options{Scratch: w.Scratch(c.Rank())})
	})
	for r, res := range results {
		if res.Get(200) != 128 {
			t.Fatalf("rank %d: shared coordinate = %g, want 128", r, res.Get(200))
		}
		for i := 0; i < 64; i++ {
			if res.Get(i) != 1 {
				t.Fatalf("rank %d: coordinate %d = %g, want 1", r, i, res.Get(i))
			}
		}
	}
	if w.SimTime() <= 0 {
		t.Fatal("simulated time must be positive")
	}
	// The level-aware cost model must resolve Auto to a hierarchical
	// algorithm with an explicit depth on this machine.
	alg, levels, _ := ChooseAutoLevels(CostScenario{
		N: 100000, P: 64, K: 2, Profile: AriesGlobal, Hier: &h,
	})
	if alg != HierSSAR || levels < 2 {
		t.Fatalf("ChooseAutoLevels on DragonflyLike = %v@%d, want a hierarchical pick", alg, levels)
	}
	// A custom 2-level hierarchy must behave like the equivalent topology.
	topo := Topology{RanksPerNode: 2, Intra: NVLinkLike, Inter: Aries}
	hw := NewWorldHier(8, topo.Hierarchy())
	tw := NewWorldTopo(8, topo)
	prog := func(c *Comm) *Vector {
		v := NewSparse(100, []int32{int32(c.Rank()), 50}, []float64{1, 2})
		return c.Allreduce(v, Options{})
	}
	hres, tres := Run(hw, prog), Run(tw, prog)
	if !hres[0].Equal(tres[0]) {
		t.Fatal("two-level hierarchy world must match the topology world")
	}
	if hw.SimTime() != tw.SimTime() {
		t.Fatalf("two-level hierarchy sim time %g must equal topology world's %g",
			hw.SimTime(), tw.SimTime())
	}
}

func TestFacadeNonblockingAndBarrier(t *testing.T) {
	w := NewWorld(2, GigE)
	Run(w, func(c *Comm) any {
		v := NewSparse(10, []int32{int32(c.Rank())}, []float64{1})
		req := c.IAllreduce(v, Options{Algorithm: SSARRecDouble})
		c.Compute(1e-6)
		res := req.Wait()
		if res.NNZ() != 2 {
			panic("wrong nonblocking result")
		}
		if !req.Test() {
			panic("Test after Wait must be true")
		}
		c.Barrier()
		return nil
	})
}

func TestFacadeAllgatherAndBcast(t *testing.T) {
	w := NewWorld(3, InfiniBandFDR)
	results := Run(w, func(c *Comm) [2]float64 {
		mine := NewSparse(30, []int32{int32(10 * c.Rank())}, []float64{float64(c.Rank() + 1)})
		union := c.AllgatherSparse(mine)
		bc := c.Bcast([]float64{42}, 1)
		return [2]float64{union.Get(20), bc[0]}
	})
	for r, got := range results {
		if got[0] != 3 || got[1] != 42 {
			t.Fatalf("rank %d: got %v", r, got)
		}
	}
}

func TestFacadeQuantizedOptions(t *testing.T) {
	w := NewWorld(4, Aries)
	results := Run(w, func(c *Comm) *Vector {
		vals := make([]float64, 1024)
		for i := range vals {
			vals[i] = math.Sin(float64(i + c.Rank()))
		}
		v := FromDense(vals)
		return c.Allreduce(v, Options{
			Algorithm: DSARSplitAllgather,
			Quant:     &QuantConfig{Bits: 4, Bucket: 256, Norm: NormMax},
		})
	})
	for r := 1; r < len(results); r++ {
		if !results[r].Equal(results[0]) {
			t.Fatal("quantized results must be identical across ranks")
		}
	}
}

func TestFacadeDenseHelpers(t *testing.T) {
	w := NewWorld(2, Aries)
	out := Run(w, func(c *Comm) float64 {
		return c.AllreduceDense([]float64{float64(c.Rank() + 1)})[0]
	})
	if out[0] != 3 || out[1] != 3 {
		t.Fatalf("got %v, want [3 3]", out)
	}
}

func TestFacadeVectorConstructors(t *testing.T) {
	v := NewDense([]float64{1, 0, 2})
	if !v.IsDense() || v.NNZ() != 2 {
		t.Fatal("NewDense wrong")
	}
	s := FromDense([]float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	if s.IsDense() {
		t.Fatal("FromDense should pick sparse for 10% density")
	}
	m := NewSparseOp(5, []int32{1}, []float64{3}, OpMax)
	if m.Op() != OpMax {
		t.Fatal("NewSparseOp op lost")
	}
}

func TestFacadeRootedCollectives(t *testing.T) {
	w := NewWorld(4, Aries)
	results := Run(w, func(c *Comm) *Vector {
		v := NewSparse(40, []int32{int32(c.Rank())}, []float64{1})
		red := c.Reduce(v, 2)
		if c.Rank() != 2 && red != nil {
			panic("non-root got a reduction")
		}
		mine := NewSparse(40, []int32{int32(10 * c.Rank())}, []float64{float64(c.Rank() + 1)})
		g := c.Gather(mine, 0)
		if c.Rank() == 0 {
			if g.NNZ() != 4 {
				panic("gather wrong")
			}
			return g
		}
		return red
	})
	if results[2] == nil || results[2].NNZ() != 4 {
		t.Fatal("root reduction missing or wrong")
	}
}

func TestFacadeScatterAlltoallReduceScatter(t *testing.T) {
	w := NewWorld(4, Aries)
	Run(w, func(c *Comm) any {
		// Scatter from root 0.
		var full *Vector
		if c.Rank() == 0 {
			full = NewSparse(40, []int32{5, 15, 25, 35}, []float64{5, 15, 25, 35})
		}
		piece := c.Scatter(full, 0, 40, OpSum)
		if piece.NNZ() != 1 {
			panic("scatter piece wrong")
		}
		// Alltoall identity payloads.
		pieces := make([]*Vector, 4)
		for i := range pieces {
			pieces[i] = NewSparse(8, []int32{int32(c.Rank())}, []float64{1})
		}
		got := c.Alltoall(pieces)
		for src, g := range got {
			if g.Get(src) != 1 {
				panic("alltoall wrong")
			}
		}
		// ReduceScatter of a shared vector.
		v := NewSparse(40, []int32{0, 10, 20, 30}, []float64{1, 1, 1, 1})
		mine := c.ReduceScatter(v)
		lo := c.Rank() * 10
		if mine.Get(lo) != 4 {
			panic("reduce-scatter wrong")
		}
		return nil
	})
}

func TestFacadeDrydenAllreduce(t *testing.T) {
	w := NewWorld(4, Aries)
	results := Run(w, func(c *Comm) *Vector {
		v := NewSparse(64, []int32{int32(c.Rank() * 16)}, []float64{float64(c.Rank() + 1)})
		res, post := c.DrydenAllreduce(v, 64)
		if post.NNZ() != 0 {
			panic("nothing should be postponed with large k")
		}
		return res
	})
	for _, res := range results {
		if res.NNZ() != 4 {
			t.Fatal("Dryden result wrong")
		}
	}
}

// TestFacadeScratchReuse exercises the buffer-reuse quickstart: repeated
// allreduce calls drawing from per-rank World.Scratch pools must keep
// returning results identical to the scratch-free path, and earlier
// results must stay intact while later rounds recycle buffers.
func TestFacadeScratchReuse(t *testing.T) {
	w := NewWorld(4, Aries)
	mk := func(rank int) *Vector {
		return NewSparse(1000, []int32{int32(rank), 500, int32(900 + rank)},
			[]float64{1, float64(rank + 1), 2})
	}
	plain := Run(w, func(c *Comm) []float64 {
		return c.Allreduce(mk(c.Rank()), Options{}).ToDense()
	})
	var kept *Vector
	for round := 0; round < 4; round++ {
		results := Run(w, func(c *Comm) *Vector {
			opts := Options{Scratch: w.Scratch(c.Rank())}
			return c.Allreduce(mk(c.Rank()), opts)
		})
		if round == 0 {
			kept = results[0]
		}
		for r, res := range results {
			got := res.ToDense()
			for i, x := range plain[r] {
				if got[i] != x {
					t.Fatalf("round=%d rank=%d coord=%d: got %g want %g", round, r, i, got[i], x)
				}
			}
		}
	}
	// The round-0 result must not have been corrupted by pool reuse.
	for i, x := range plain[0] {
		if kept.Get(i) != x {
			t.Fatalf("kept result mutated at %d: %g vs %g", i, kept.Get(i), x)
		}
	}
	// MergeK is part of the facade's Vector surface via the stream alias.
	a := NewSparse(10, []int32{1}, []float64{1})
	b := NewSparse(10, []int32{1}, []float64{-1})
	s := NewScratch()
	a.AddAll([]*Vector{b}, s)
	if a.NNZ() != 0 {
		t.Fatal("cancellation through the facade failed")
	}
}
