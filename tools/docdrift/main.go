// Command docdrift fails when an exported Go identifier named in a
// markdown table of the given docs no longer exists anywhere in the
// repository's Go source — the cheap guard that keeps the algorithm and
// API tables in docs/COLLECTIVES.md from silently rotting as code evolves.
//
// A "named identifier" is a backticked token in a table row (a line
// starting with '|') that looks like an exported Go identifier: leading
// upper-case letter, at least one lower-case letter, only letters, digits
// and underscores. Dotted selectors like `core.HierDSAR` are checked by
// their final element.
//
// Usage: go run ./tools/docdrift -root . docs/COLLECTIVES.md...
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var backticked = regexp.MustCompile("`([^`]+)`")
var identifier = regexp.MustCompile(`^[A-Z][A-Za-z0-9_]*$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docdrift: ")
	root := flag.String("root", ".", "repository root to scan for Go source")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: docdrift [-root dir] <doc.md>...")
	}

	source, err := allGoSource(*root)
	if err != nil {
		log.Fatal(err)
	}

	missing := 0
	for _, doc := range flag.Args() {
		names, err := tableIdentifiers(doc)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range names {
			if !wordPresent(source, name) {
				fmt.Fprintf(os.Stderr, "%s: `%s` is named in a table but does not exist in the Go source\n", doc, name)
				missing++
			}
		}
	}
	if missing > 0 {
		log.Fatalf("%d stale identifier(s) — update the docs or restore the symbols", missing)
	}
	fmt.Println("docdrift: all documented identifiers exist in the source")
}

// allGoSource concatenates every .go file under root (skipping hidden
// directories) so presence checks can run over one haystack.
func allGoSource(root string) (string, error) {
	var sb strings.Builder
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != root {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sb.Write(b)
			sb.WriteByte('\n')
		}
		return nil
	})
	return sb.String(), err
}

// tableIdentifiers extracts the exported-identifier-shaped backticked
// tokens from the markdown file's table rows.
func tableIdentifiers(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range backticked.FindAllStringSubmatch(line, -1) {
			token := m[1]
			if i := strings.LastIndex(token, "."); i >= 0 {
				token = token[i+1:]
			}
			if !identifier.MatchString(token) || !strings.ContainsAny(token, "abcdefghijklmnopqrstuvwxyz") {
				continue
			}
			if !seen[token] {
				seen[token] = true
				out = append(out, token)
			}
		}
	}
	return out, nil
}

// wordPresent reports whether name occurs in source on an identifier
// boundary (not as a substring of a longer identifier).
func wordPresent(source, name string) bool {
	re := regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`)
	return re.MatchString(source)
}
