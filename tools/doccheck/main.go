// Command doccheck enforces the godoc floor on the packages named on the
// command line: every exported top-level symbol (funcs, types, methods,
// consts, vars) must carry a doc comment. It complements `go vet` in
// scripts/ci.sh — vet validates comment placement and formatting, doccheck
// validates presence.
//
// Usage: go run ./tools/doccheck <pkg-dir>...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: doccheck <pkg-dir>...")
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		log.Fatalf("%d exported symbol(s) missing doc comments", len(problems))
	}
	fmt.Println("doccheck: all exported symbols documented")
}

func checkDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		problems = append(problems, checkFile(fset, path, file)...)
	}
	return problems, nil
}

func checkFile(fset *token.FileSet, path string, file *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		problems = append(problems, fmt.Sprintf("%s: %s has no doc comment", fset.Position(pos), what))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc.Text() == "" {
				kind := "func " + d.Name.Name
				if d.Recv != nil {
					kind = "method " + d.Name.Name
				}
				report(d.Pos(), kind)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc.Text() == "" && sp.Doc.Text() == "" {
						report(sp.Pos(), "type "+sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, ident := range sp.Names {
						if !ident.IsExported() {
							continue
						}
						// Accept a block-level doc, a per-spec doc, or a
						// trailing line comment.
						if d.Doc.Text() == "" && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
							report(ident.Pos(), "value "+ident.Name)
						}
					}
				}
			}
		}
	}
	return problems
}
