package sparcml

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/experiments"
)

// TestBench7AcceptanceCriteria validates the PR-8 acceptance invariants
// on the committed BENCH_7.json (scripts/ci.sh regenerates the file and
// hard-fails on drift, so the committed cells always reflect the current
// code): on both layered workload profiles the bucket-fusion scheduler
// beats the naive blocking per-layer loop AND the monolithic fused
// exchange in simulated virtual time.
func TestBench7AcceptanceCriteria(t *testing.T) {
	doc := readBench7(t)
	if len(doc.Cells) < 2 {
		t.Fatalf("BENCH_7.json has %d workload cells, want >= 2", len(doc.Cells))
	}
	seen := map[string]bool{}
	for _, c := range doc.Cells {
		seen[c.Workload] = true
		if c.Buckets < 2 {
			t.Errorf("%s: %d buckets — the sizing rule should split these models, or the ablation degenerates to fused-vs-layerwise", c.Workload, c.Buckets)
		}
		if c.BucketedVsLayerwise <= 1 {
			t.Errorf("%s: bucketed_vs_layerwise = %.3f, want > 1 (the headline: bucketed overlap beats the per-layer loop)",
				c.Workload, c.BucketedVsLayerwise)
		}
		if c.BucketedVsFused <= 1 {
			t.Errorf("%s: bucketed_vs_fused = %.3f, want > 1", c.Workload, c.BucketedVsFused)
		}
	}
	for _, want := range []string{"lstm-1m", "transformer-1m"} {
		if !seen[want] {
			t.Fatalf("BENCH_7.json is missing the %q workload", want)
		}
	}
}

// TestBench7PipelineModelBand pins the documented error band of the cost
// model's chunked-pipelining term: across Chunks in {1,2,4,8} the model's
// prediction stays within 5% of simulation on the committed validation
// cells (recorded ratios sit in [0.976, 1.002]).
func TestBench7PipelineModelBand(t *testing.T) {
	doc := readBench7(t)
	if len(doc.PipeModel) < 4 {
		t.Fatalf("BENCH_7.json has %d pipeline model cells, want >= 4", len(doc.PipeModel))
	}
	chunks := map[int]bool{}
	for _, c := range doc.PipeModel {
		chunks[c.Chunks] = true
		if c.ModelOverSim < 0.95 || c.ModelOverSim > 1.05 {
			t.Errorf("chunks=%d: model_over_sim = %.4f, outside the documented [0.95, 1.05] band",
				c.Chunks, c.ModelOverSim)
		}
	}
	for _, want := range []int{1, 2, 4, 8} {
		if !chunks[want] {
			t.Fatalf("BENCH_7.json pipeline model cells are missing chunks=%d", want)
		}
	}
}

func readBench7(t *testing.T) struct {
	ID        string                     `json:"id"`
	Cells     []experiments.OverlapRow   `json:"cells"`
	PipeModel []experiments.PipeModelRow `json:"pipeline_model_cells"`
} {
	t.Helper()
	raw, err := os.ReadFile("BENCH_7.json")
	if err != nil {
		t.Fatalf("read BENCH_7.json: %v", err)
	}
	var doc struct {
		ID        string                     `json:"id"`
		Cells     []experiments.OverlapRow   `json:"cells"`
		PipeModel []experiments.PipeModelRow `json:"pipeline_model_cells"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_7.json: %v", err)
	}
	if doc.ID != "BENCH_7" {
		t.Fatalf("unexpected document id %q", doc.ID)
	}
	return doc
}
