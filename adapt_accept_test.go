package sparcml

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/experiments"
)

// TestBench5AcceptanceCriteria validates the PR-5 acceptance invariants
// on the committed BENCH_5.json (scripts/ci.sh regenerates the file and
// hard-fails on drift, so the committed cells always reflect the current
// code): the adaptive controller beats the default uniform-static Auto on
// the clustered and drifting workloads, never loses to it by more than
// agreement-overhead noise on stationary uniform ones, and stays within
// that noise of (or beats) the better static arm on the drifting cells.
// The noise bound is 3%: the measured overhead of the two tiny per-call
// agreement allreduces is ~0.7–1.1% on these cells.
func TestBench5AcceptanceCriteria(t *testing.T) {
	raw, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		t.Fatalf("read BENCH_5.json: %v", err)
	}
	var doc struct {
		ID    string                 `json:"id"`
		Cells []experiments.AdaptRow `json:"cells"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_5.json: %v", err)
	}
	if doc.ID != "BENCH_5" {
		t.Fatalf("unexpected document id %q", doc.ID)
	}
	const noise = 0.03
	byName := map[string]experiments.AdaptRow{}
	for _, c := range doc.Cells {
		byName[c.Workload] = c
	}
	for _, want := range []string{"uniform", "clustered", "drift-cluster", "drift-shift"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("BENCH_5.json is missing the %q workload", want)
		}
	}
	for _, c := range doc.Cells {
		if c.AdaptiveSwitches > 3 {
			t.Errorf("%s: %d switches — hysteresis should bound churn", c.Workload, c.AdaptiveSwitches)
		}
		switch c.Workload {
		case "uniform":
			if c.AdaptiveVsUniform < 1-noise {
				t.Errorf("uniform: adaptive loses %.1f%% to static Auto, beyond the %.0f%% noise bound",
					(1-c.AdaptiveVsUniform)*100, noise*100)
			}
			if c.AdaptiveClusteredCalls != 0 {
				t.Errorf("uniform: %d calls misclassified as clustered", c.AdaptiveClusteredCalls)
			}
		case "clustered", "drift-cluster", "drift-shift":
			if c.AdaptiveVsUniform <= 1+noise {
				t.Errorf("%s: adaptive_vs_uniform = %.3f, must beat static-uniform Auto by more than noise",
					c.Workload, c.AdaptiveVsUniform)
			}
			if c.AdaptiveClusteredCalls == 0 {
				t.Errorf("%s: the clustered support model was never selected", c.Workload)
			}
		}
		if c.Workload == "drift-cluster" || c.Workload == "drift-shift" {
			if c.AdaptiveVsBestStatic < 1-noise {
				t.Errorf("%s: adaptive_vs_best_static = %.3f, must be >= best static within noise",
					c.Workload, c.AdaptiveVsBestStatic)
			}
		}
	}
}

// TestFacadeAdaptive exercises the public adaptation surface end to end:
// EnableAdaptation + Adapt + AllreduceAdaptive across repeated Run calls,
// with correctness against the plain static path.
func TestFacadeAdaptive(t *testing.T) {
	const n, P, k = 1 << 14, 8, 400
	w := NewWorldTopo(P, Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries, NICSerial: 1})
	w.EnableAdaptation(AdaptConfig{})
	rng := rand.New(rand.NewSource(61))
	mkInputs := func() []*Vector {
		out := make([]*Vector, P)
		for r := range out {
			seen := map[int32]bool{}
			idx := make([]int32, 0, k)
			val := make([]float64, 0, k)
			for len(idx) < k {
				ix := int32(rng.Intn(n))
				if seen[ix] {
					continue
				}
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, float64(rng.Intn(7))-3)
			}
			out[r] = NewSparse(n, idx, val)
		}
		return out
	}
	for round := 0; round < 3; round++ {
		inputs := mkInputs()
		results := Run(w, func(c *Comm) *Vector {
			return c.AllreduceAdaptive(inputs[c.Rank()], w.Adapt(c.Rank()), Options{})
		})
		want := inputs[0].Clone()
		for _, v := range inputs[1:] {
			want.Add(v)
		}
		for r, got := range results {
			if !got.Equal(want) {
				t.Fatalf("round %d rank %d: adaptive result differs from reference", round, r)
			}
		}
	}
	alg, _ := w.Adapt(0).Choice()
	if alg == Auto {
		t.Fatal("controller should hold a concrete algorithm after warm-up")
	}
	if w.Adapt(0).Calibrator().Samples(0) == 0 {
		t.Fatal("calibration should have consumed traced transfers")
	}
}

// TestFacadeAdaptRequiresEnable pins the explicit-initialization contract.
func TestFacadeAdaptRequiresEnable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Adapt before EnableAdaptation must panic")
		}
	}()
	NewWorld(2, Aries).Adapt(0)
}
