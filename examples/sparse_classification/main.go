// Sparse classification: the §8.2 workload in miniature. A URL-shaped
// high-dimensional sparse dataset is trained with distributed logistic
// regression (MPI-OPT), once with the dense MPI-style allreduce baseline
// and once with SparCML sparse collectives — no sparsification or
// quantization, just exploiting the sparsity the task already has.
//
// Run: go run ./examples/sparse_classification
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/mlopt"
	"repro/internal/simnet"
)

func main() {
	if err := run(os.Stdout, 8, 4000, 100000, 3); err != nil {
		fmt.Fprintln(os.Stderr, "sparse_classification:", err)
		os.Exit(1)
	}
}

// run trains logistic regression on P ranks over a rows×dim URL-shaped
// sparse dataset for the given number of epochs, dense vs sparse comms.
func run(out io.Writer, P, rows, dim, epochs int) error {
	ds := data.SyntheticSparse(data.SparseConfig{
		Rows: rows, Dim: dim, NNZPerRow: 80,
		HotFraction: 0.02, ClusterBias: 0.7, NoiseRate: 0.02, Seed: 1,
	})
	fmt.Fprintf(out, "dataset: %d samples, %d features, density %.4f%% (URL-shaped)\n",
		ds.Rows(), ds.Dim, 100*ds.Density())

	runOne := func(mode mlopt.CommMode, name string) []mlopt.EpochStats {
		w := comm.NewWorld(P, simnet.GigE)
		results := comm.Run(w, func(p *comm.Proc) []mlopt.EpochStats {
			return mlopt.TrainSGD(p, ds.Shard(p.Rank(), P), mlopt.SGDConfig{
				Loss: mlopt.Logistic, LR: 1.0, BatchPerNode: 100, Epochs: epochs,
				Mode: mode, Algorithm: core.SSARSplitAllgather, Seed: 7,
			})
		})
		stats := results[0]
		fmt.Fprintf(out, "\n%s:\n", name)
		for _, e := range stats {
			fmt.Fprintf(out, "  epoch %d: time %8.2fms (comm %8.2fms)  loss %.4f  acc %.3f\n",
				e.Epoch, e.Time*1e3, e.CommTime*1e3, e.Loss, e.Accuracy)
		}
		return stats
	}

	dense := runOne(mlopt.CommDense, "dense MPI baseline (Rabenseifner allreduce)")
	sparse := runOne(mlopt.CommSparse, "SparCML (SSAR_Split_allgather)")

	var dT, dC, sT, sC float64
	for i := range dense {
		dT += dense[i].Time
		dC += dense[i].CommTime
		sT += sparse[i].Time
		sC += sparse[i].CommTime
	}
	fmt.Fprintf(out, "\nend-to-end speedup %.2fx, communication speedup %.2fx (cf. Table 2: up to 20x/26x on GigE)\n",
		dT/sT, dC/sC)
	return nil
}
