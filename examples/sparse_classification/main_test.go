package main

import (
	"strings"
	"testing"
)

func TestRunTiny(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 4, 400, 5000, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dense MPI baseline", "SparCML (SSAR_Split_allgather)", "communication speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
