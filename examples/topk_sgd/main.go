// TopK SGD: Algorithm 1 end to end. A residual MLP is trained
// data-parallel on 8 ranks three ways — full dense SGD, TopK 8/512 with
// error feedback, and TopK 8/512 with 4-bit QSGD quantization — showing
// that accuracy tracks the dense baseline while the transmitted gradient
// volume drops by orders of magnitude (the Figure 4a finding).
//
// Run: go run ./examples/topk_sgd
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/simnet"
	"repro/internal/train"
)

func main() {
	if err := run(os.Stdout, 8, 2000, 8); err != nil {
		fmt.Fprintln(os.Stderr, "topk_sgd:", err)
		os.Exit(1)
	}
}

// run trains on P ranks over `rows` samples for `epochs` epochs with the
// three methods.
func run(out io.Writer, P, rows, epochs int) error {
	ds := data.SyntheticDense(data.DenseConfig{Rows: rows, Dim: 64, Classes: 10, Sep: 2.2, Seed: 3})

	mkTask := func(rank int) train.Task {
		return &train.MLPTask{
			Net:   nn.ResidualMLP(41, 64, 96, 3, 10, 1),
			Shard: ds.Shard(rank, P),
		}
	}

	runOne := func(name string, cfg train.Config) {
		w := comm.NewWorld(P, simnet.Aries)
		results := comm.Run(w, func(p *comm.Proc) []train.Point {
			return train.Run(p, mkTask(p.Rank()), cfg)
		})
		last := results[0][len(results[0])-1]
		fmt.Fprintf(out, "%-28s final top-1 %.3f  loss %.4f  comm %8.2fms  gradient payload %s\n",
			name, last.Top1, last.Loss, last.CommTime*1e3, formatBytes(last.BytesSent))
	}

	base := train.Config{
		LR: 0.05, BatchPerNode: 32, Epochs: epochs,
		Device: simnet.GPUP100, EvalSamples: 256, Seed: 9,
	}

	dense := base
	dense.Method = train.MethodDense
	dense.Momentum = 0.9
	runOne("dense 32-bit SGD", dense)

	topk := base
	topk.Method = train.MethodTopK
	topk.LR = base.LR / float64(P) // Algorithm 1 applies the summed update
	topk.Bucket, topk.K = 512, 8
	topk.Algorithm = core.Auto
	runOne("TopK 8/512 + error feedback", topk)

	quantized := topk
	quantized.QuantBits = 4
	quantized.Algorithm = core.DSARSplitAllgather
	runOne("TopK 8/512 + 4-bit QSGD", quantized)
	return nil
}

func formatBytes(b int64) string {
	switch {
	case b < 1<<20:
		return fmt.Sprintf("%.0fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	}
}
