package main

import (
	"strings"
	"testing"
)

func TestRunTiny(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 2, 128, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dense 32-bit SGD", "TopK 8/512 + error feedback", "TopK 8/512 + 4-bit QSGD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
