// Low-precision and nonblocking collectives. Demonstrates the two §6/§7
// features through the public API: QSGD-quantized DSAR allreduce at 2, 4,
// and 8 bits per entry (bandwidth vs accuracy trade-off), and a
// nonblocking allreduce overlapped with local computation.
//
// Run: go run ./examples/lowprecision
package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	sparcml "repro"
)

func main() {
	if err := run(os.Stdout, 8, 1<<16); err != nil {
		fmt.Fprintln(os.Stderr, "lowprecision:", err)
		os.Exit(1)
	}
}

func rankInput(rank, n int) *sparcml.Vector {
	rng := rand.New(rand.NewSource(int64(rank + 1)))
	vals := make([]float64, n)
	// Dense-ish gradients: the regime where DSAR + quantization applies.
	for i := range vals {
		if rng.Float64() < 0.3 {
			vals[i] = rng.NormFloat64()
		}
	}
	return sparcml.FromDense(vals)
}

// run compares full-precision DSAR against 8/4/2-bit QSGD on P ranks with
// vectors of dimension n, then overlaps a nonblocking allreduce with local
// compute.
func run(out io.Writer, P, n int) error {
	world := sparcml.NewWorld(P, sparcml.GigE)

	// Full-precision reference.
	ref := sparcml.Run(world, func(c *sparcml.Comm) []float64 {
		return c.Allreduce(rankInput(c.Rank(), n), sparcml.Options{Algorithm: sparcml.DSARSplitAllgather}).ToDense()
	})[0]
	fullTime := world.SimTime()
	fmt.Fprintf(out, "DSAR_Split_allgather, N=%d, P=%d on GigE\n", n, P)
	fmt.Fprintf(out, "%-14s  %10s  %10s  %s\n", "precision", "sim-time", "speedup", "relative L2 error")
	fmt.Fprintf(out, "%-14s  %9.2fms  %9.2fx  %s\n", "64-bit", fullTime*1e3, 1.0, "0 (reference)")

	for _, bits := range []int{8, 4, 2} {
		got := sparcml.Run(world, func(c *sparcml.Comm) []float64 {
			return c.Allreduce(rankInput(c.Rank(), n), sparcml.Options{
				Algorithm: sparcml.DSARSplitAllgather,
				Quant:     &sparcml.QuantConfig{Bits: bits, Bucket: 256, Norm: sparcml.NormMax},
				Seed:      int64(bits),
			}).ToDense()
		})[0]
		elapsed := world.SimTime()
		fmt.Fprintf(out, "%-14s  %9.2fms  %9.2fx  %.4f\n",
			fmt.Sprintf("%d-bit QSGD", bits), elapsed*1e3, fullTime/elapsed, relErr(got, ref))
	}

	// Nonblocking: overlap an allreduce with 2ms of local compute.
	sparcml.Run(world, func(c *sparcml.Comm) any {
		req := c.IAllreduce(rankInput(c.Rank(), n), sparcml.Options{Algorithm: sparcml.DSARSplitAllgather})
		c.Compute(2e-3) // overlapped local work
		req.Wait()
		return nil
	})
	fmt.Fprintf(out, "\nnonblocking allreduce overlapped with 2ms compute: %.2fms total (collective alone: %.2fms)\n",
		world.SimTime()*1e3, fullTime*1e3)
	return nil
}

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}
