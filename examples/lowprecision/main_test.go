package main

import (
	"strings"
	"testing"
)

func TestRunTiny(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 4, 1<<10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"64-bit", "4-bit QSGD", "nonblocking allreduce"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
