package main

import (
	"strings"
	"testing"
)

func TestRunTiny(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 8, 1<<14, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reduced 8 sparse vectors", "sparse speedup", "hierarchical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
