// Quickstart: a sparse allreduce across 8 ranks in ~40 lines.
//
// Each rank contributes a sparse vector over a one-million-dimensional
// space; SparCML reduces them with an automatically selected sparse
// algorithm, and the simulated network clock reports what the operation
// would cost on a Cray Aries interconnect versus a dense MPI allreduce.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	sparcml "repro"
)

func main() {
	const (
		P = 8       // ranks
		N = 1 << 20 // vector dimension
		k = 1000    // non-zeros per rank (~0.1% density)
	)

	world := sparcml.NewWorld(P, sparcml.Aries)
	results := sparcml.Run(world, func(c *sparcml.Comm) *sparcml.Vector {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		idx := make([]int32, 0, k)
		val := make([]float64, 0, k)
		seen := map[int32]bool{}
		for len(idx) < k {
			ix := int32(rng.Intn(N))
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, rng.NormFloat64())
			}
		}
		v := sparcml.NewSparse(N, idx, val)
		return c.Allreduce(v, sparcml.Options{}) // Auto algorithm selection
	})
	sparseTime := world.SimTime()

	fmt.Printf("reduced %d sparse vectors of dimension %d\n", P, N)
	fmt.Printf("result: nnz=%d density=%.3f%% dense-representation=%v\n",
		results[0].NNZ(), 100*results[0].Density(), results[0].IsDense())
	fmt.Printf("simulated time on Cray Aries (sparse, auto):  %.1fµs\n", sparseTime*1e6)

	// The same reduction through the dense MPI baseline, for contrast.
	sparcml.Run(world, func(c *sparcml.Comm) *sparcml.Vector {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		dense := make([]float64, N)
		for i := 0; i < k; i++ {
			dense[rng.Intn(N)] = rng.NormFloat64()
		}
		return c.Allreduce(sparcml.NewDense(dense), sparcml.Options{Algorithm: sparcml.DenseRabenseifner})
	})
	denseTime := world.SimTime()
	fmt.Printf("simulated time on Cray Aries (dense baseline): %.1fµs\n", denseTime*1e6)
	fmt.Printf("sparse speedup: %.1fx\n", denseTime/sparseTime)
}
