// Quickstart: a sparse allreduce across 8 ranks in ~40 lines.
//
// Each rank contributes a sparse vector over a one-million-dimensional
// space; SparCML reduces them with an automatically selected sparse
// algorithm, and the simulated network clock reports what the operation
// would cost on a Cray Aries interconnect versus a dense MPI allreduce.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	sparcml "repro"
)

func main() {
	if err := run(os.Stdout, 8, 1<<20, 1000); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// rankInput draws a rank's sparse contribution: k distinct indices in
// [0, n) with Gaussian values, deterministic per rank.
func rankInput(rank, n, k int) *sparcml.Vector {
	rng := rand.New(rand.NewSource(int64(rank + 1)))
	idx := make([]int32, 0, k)
	val := make([]float64, 0, k)
	seen := map[int32]bool{}
	for len(idx) < k {
		ix := int32(rng.Intn(n))
		if !seen[ix] {
			seen[ix] = true
			idx = append(idx, ix)
			val = append(val, rng.NormFloat64())
		}
	}
	return sparcml.NewSparse(n, idx, val)
}

// run reduces P sparse vectors of dimension n with k non-zeros each, then
// contrasts against the dense MPI baseline.
func run(out io.Writer, P, n, k int) error {
	world := sparcml.NewWorld(P, sparcml.Aries)
	results := sparcml.Run(world, func(c *sparcml.Comm) *sparcml.Vector {
		return c.Allreduce(rankInput(c.Rank(), n, k), sparcml.Options{}) // Auto algorithm selection
	})
	sparseTime := world.SimTime()

	fmt.Fprintf(out, "reduced %d sparse vectors of dimension %d\n", P, n)
	fmt.Fprintf(out, "result: nnz=%d density=%.3f%% dense-representation=%v\n",
		results[0].NNZ(), 100*results[0].Density(), results[0].IsDense())
	fmt.Fprintf(out, "simulated time on Cray Aries (sparse, auto):  %.1fµs\n", sparseTime*1e6)

	// The same reduction through the dense MPI baseline, for contrast.
	sparcml.Run(world, func(c *sparcml.Comm) *sparcml.Vector {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		dense := make([]float64, n)
		for i := 0; i < k; i++ {
			dense[rng.Intn(n)] = rng.NormFloat64()
		}
		return c.Allreduce(sparcml.NewDense(dense), sparcml.Options{Algorithm: sparcml.DenseRabenseifner})
	})
	denseTime := world.SimTime()
	fmt.Fprintf(out, "simulated time on Cray Aries (dense baseline): %.1fµs\n", denseTime*1e6)
	fmt.Fprintf(out, "sparse speedup: %.1fx\n", denseTime/sparseTime)

	// The same sparse reduction on a two-level topology (4 ranks per
	// node, NVLink-like intra + Aries inter): Auto routes through the
	// hierarchical algorithm.
	if P >= 8 {
		topo := sparcml.NewWorldTopo(P, sparcml.Topology{
			RanksPerNode: 4, Intra: sparcml.NVLinkLike, Inter: sparcml.Aries,
		})
		sparcml.Run(topo, func(c *sparcml.Comm) *sparcml.Vector {
			return c.Allreduce(rankInput(c.Rank(), n, k), sparcml.Options{})
		})
		fmt.Fprintf(out, "simulated time on 4-GPU nodes (hierarchical): %.1fµs\n", topo.SimTime()*1e6)
	}

	// Steady-state training loops reuse per-rank buffer pools: after a
	// warm-up call the collectives stop allocating (see BENCH_3.json).
	reps := 3
	for i := 0; i < reps; i++ {
		pooled := sparcml.Run(world, func(c *sparcml.Comm) *sparcml.Vector {
			opts := sparcml.Options{Scratch: world.Scratch(c.Rank())}
			return c.Allreduce(rankInput(c.Rank(), n, k), opts)
		})
		if !pooled[0].Equal(results[0]) {
			return fmt.Errorf("scratch-pooled round %d diverged from the first reduction", i)
		}
	}
	fmt.Fprintf(out, "%d pooled-buffer rounds reproduced the reduction bit-for-bit\n", reps)
	return nil
}
