package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/simnet"
)

// testMachine returns a small ingress-capped 3-level machine: nodes of 4
// slots behind a single-flow NIC, groups of 2 nodes behind a two-flow
// uplink.
func testMachine() simnet.Hierarchy {
	h := simnet.DragonflyLike(4, 2)
	for i := range h.Levels {
		h.Levels[i].IngressSerial = h.Levels[i].Serial
	}
	return h
}

// smallJob returns a P-rank, calls-step uniform workload declaration.
func smallJob(name string, p, calls int, start float64) Job {
	return Job{
		Name: name,
		Scenario: scenario.Scenario{
			Name: "uniform", N: 1 << 12, P: p, Calls: calls,
			Density: scenario.Const(0.02),
		},
		Start: start,
	}
}

// runSmall runs a canonical 4-job mix under the given policy and knobs.
func runSmall(t *testing.T, place Placement, seed int64, jitter float64) []JobStats {
	t.Helper()
	c := New(Config{
		Machine: testMachine(), Slots: 32,
		Key: scenario.NewKey(seed), Jitter: jitter,
	}, place)
	c.Add(smallJob("a", 8, 3, 0))
	c.Add(smallJob("b", 8, 3, 0))
	c.Add(smallJob("c", 16, 2, 1e-4))
	c.Add(smallJob("d", 8, 2, 2e-4))
	return c.Run()
}

// TestClusterDeterminism: re-running a cluster schedule under the same
// SimulationKey must reproduce per-job sim times (and every other stat)
// exactly, for every policy.
func TestClusterDeterminism(t *testing.T) {
	for _, place := range []Placement{Packed{}, Spread{}, Random{}, CostAware{}} {
		a := runSmall(t, place, 42, 0.2)
		b := runSmall(t, place, 42, 0.2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same key diverged:\n%+v\nvs\n%+v", place.Name(), a, b)
		}
		if c := runSmall(t, place, 43, 0.2); reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different keys produced identical runs", place.Name())
		}
	}
}

// TestClusterFIFOAdmission: jobs are admitted in Add order and a queue
// head too large for the free slots blocks later jobs (no backfill), even
// ones that would fit.
func TestClusterFIFOAdmission(t *testing.T) {
	c := New(Config{Machine: testMachine(), Slots: 16, Key: scenario.NewKey(1)}, Packed{})
	c.Add(smallJob("first", 16, 2, 0)) // fills the machine
	c.Add(smallJob("big", 16, 2, 0))   // must wait for "first"
	c.Add(smallJob("small", 4, 1, 0))  // would fit, must not jump "big"
	stats := c.Run()
	if stats[0].Admitted != 0 {
		t.Fatalf("first admitted at %g, want 0", stats[0].Admitted)
	}
	if stats[1].Admitted != stats[0].Finished {
		t.Fatalf("big admitted at %g, want first's finish %g", stats[1].Admitted, stats[0].Finished)
	}
	if stats[2].Admitted < stats[1].Admitted {
		t.Fatalf("small backfilled past big: %g < %g", stats[2].Admitted, stats[1].Admitted)
	}
}

// TestClusterContentionSlowsJobs: two spread jobs sharing nodes must each
// run no faster than alone, and at least one strictly slower — the
// dynamic activity counters at work. (Packed jobs on exclusive nodes and
// groups share no capped boundary, so spreading is what creates
// cross-tenant contention here.) A second tenant admitted only after the
// first finishes must match its solo time exactly.
func TestClusterContentionSlowsJobs(t *testing.T) {
	solo := func(name string) JobStats {
		c := New(Config{Machine: testMachine(), Slots: 32, Key: scenario.NewKey(7)}, Spread{})
		c.Add(smallJob(name, 16, 2, 0))
		return c.Run()[0]
	}
	a, b := solo("a"), solo("b")

	c := New(Config{Machine: testMachine(), Slots: 32, Key: scenario.NewKey(7)}, Spread{})
	c.Add(smallJob("a", 16, 2, 0))
	c.Add(smallJob("b", 16, 2, 0))
	both := c.Run()
	if both[0].SimSeconds < a.SimSeconds || both[1].SimSeconds < b.SimSeconds {
		t.Fatalf("co-tenancy sped a job up: %+v vs solo %g/%g", both, a.SimSeconds, b.SimSeconds)
	}
	if both[0].SimSeconds == a.SimSeconds && both[1].SimSeconds == b.SimSeconds {
		t.Fatal("co-tenancy changed nothing: activity counters are dead")
	}

	// A second tenant admitted after the first finishes sees an idle
	// machine: byte-identical to its solo run.
	seq := New(Config{Machine: testMachine(), Slots: 16, Key: scenario.NewKey(7)}, Spread{})
	seq.Add(smallJob("a", 16, 2, 0))
	seq.Add(smallJob("b", 16, 2, 0))
	stats := seq.Run()
	bSolo := func() JobStats {
		c := New(Config{Machine: testMachine(), Slots: 16, Key: scenario.NewKey(7)}, Spread{})
		c.Add(smallJob("b", 16, 2, 0))
		return c.Run()[0]
	}()
	if stats[1].SimSeconds != bSolo.SimSeconds {
		t.Fatalf("serialized job b ran %g, solo %g — residual flows leaked", stats[1].SimSeconds, bSolo.SimSeconds)
	}
}

// TestClusterFlowAccounting: every registered flow is retired — after Run
// the counters must be all zero — and a job never contributes at levels
// its traffic does not cross.
func TestClusterFlowAccounting(t *testing.T) {
	c := New(Config{Machine: testMachine(), Slots: 32, Key: scenario.NewKey(3)}, Packed{})
	c.Add(smallJob("a", 8, 2, 0))
	c.Add(smallJob("intra", 4, 2, 0)) // fits one node: crosses nothing
	c.Run()
	for l, groups := range c.flows {
		for g, f := range groups {
			if f != 0 {
				t.Fatalf("flows[%d][%d] = %d after Run, want 0", l, g, f)
			}
		}
	}
	// Register a node-local job's flows by hand: no level is crossed, so
	// no counter moves.
	c.adjustFlows([]int{0, 1, 2, 3}, +1)
	for l, groups := range c.flows {
		for g, f := range groups {
			if f != 0 {
				t.Fatalf("node-local job leaked flows[%d][%d] = %d", l, g, f)
			}
		}
	}
	// An 8-slot job across two nodes loads each node's egress with its 4
	// residents, and nothing above (it fits one level-1 group).
	c.adjustFlows([]int{0, 1, 2, 3, 4, 5, 6, 7}, +1)
	if c.flows[0][0] != 4 || c.flows[0][1] != 4 {
		t.Fatalf("two-node job flows at level 0: %v, want [4 4 ...]", c.flows[0])
	}
	for l := 1; l < len(c.flows); l++ {
		for g, f := range c.flows[l] {
			if f != 0 {
				t.Fatalf("two-node job leaked flows[%d][%d] = %d", l, g, f)
			}
		}
	}
	c.adjustFlows([]int{0, 1, 2, 3, 4, 5, 6, 7}, -1)
}

// TestClusterJitterStretches: enabling the straggler knob must stretch
// per-job sim times (never shrink them) while leaving the workload
// streams untouched, and must itself be deterministic.
func TestClusterJitterStretches(t *testing.T) {
	base := runSmall(t, Packed{}, 42, 0)
	jit := runSmall(t, Packed{}, 42, 0.5)
	grew := false
	for i := range base {
		if jit[i].SimSeconds < base[i].SimSeconds {
			t.Fatalf("jitter shrank job %s: %g < %g", jit[i].Name, jit[i].SimSeconds, base[i].SimSeconds)
		}
		if jit[i].SimSeconds > base[i].SimSeconds {
			grew = true
		}
		// The workload (and hence the pinned algorithm) is unperturbed.
		if jit[i].Algorithm != base[i].Algorithm {
			t.Fatalf("jitter changed job %s's algorithm: %s vs %s", jit[i].Name, jit[i].Algorithm, base[i].Algorithm)
		}
	}
	if !grew {
		t.Fatal("Jitter = 0.5 stretched nothing")
	}
	if again := runSmall(t, Packed{}, 42, 0.5); !reflect.DeepEqual(jit, again) {
		t.Fatal("jittered run is not deterministic")
	}
}

// TestClusterArrivalJitter: the arrival knob delays starts within its
// bound, deterministically per key.
func TestClusterArrivalJitter(t *testing.T) {
	run := func(seed int64, aj float64) []JobStats {
		c := New(Config{Machine: testMachine(), Slots: 32, Key: scenario.NewKey(seed), ArrivalJitter: aj}, Packed{})
		c.Add(smallJob("a", 8, 1, 0))
		c.Add(smallJob("b", 8, 1, 0))
		return c.Run()
	}
	plain := run(9, 0)
	jit := run(9, 1e-3)
	for i := range jit {
		if jit[i].Arrived < plain[i].Arrived || jit[i].Arrived >= plain[i].Arrived+1e-3 {
			t.Fatalf("job %s arrived at %g, want in [%g, %g)", jit[i].Name, jit[i].Arrived, plain[i].Arrived, plain[i].Arrived+1e-3)
		}
	}
	if !reflect.DeepEqual(jit, run(9, 1e-3)) {
		t.Fatal("arrival jitter is not deterministic")
	}
}

// TestClusterStatsShape: basic invariants of the reported stats.
func TestClusterStatsShape(t *testing.T) {
	stats := runSmall(t, CostAware{}, 5, 0)
	for _, s := range stats {
		if s.Admitted < s.Arrived {
			t.Fatalf("job %s admitted before it arrived: %+v", s.Name, s)
		}
		if math.Abs(s.Finished-s.Admitted-s.SimSeconds) > 1e-12 {
			t.Fatalf("job %s ran with gaps: finished %g, admitted %g, sim %g", s.Name, s.Finished, s.Admitted, s.SimSeconds)
		}
		if s.PredictedStep <= 0 || s.PredictedJob != s.PredictedStep*float64(s.Steps) {
			t.Fatalf("job %s predictions malformed: %+v", s.Name, s)
		}
		if len(s.Slots) != s.P || s.Algorithm == "" {
			t.Fatalf("job %s stats malformed: %+v", s.Name, s)
		}
	}
}
