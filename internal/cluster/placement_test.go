package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// request builds a PlaceRequest over the test machine with the given free
// slots and a synthetic flow field.
func request(free []int, p int, flows func(slot, level int) int) PlaceRequest {
	m := testMachine()
	return PlaceRequest{
		Machine: m,
		Free:    free,
		P:       p,
		Cost: core.CostScenario{
			N: 1 << 14, P: p, K: 1 << 9,
			Profile: m.Levels[m.Depth()-1].Profile,
			Chunks:  core.AutoChunks,
		},
		Flows: flows,
		RNG:   rand.New(rand.NewSource(1)),
	}
}

func ascending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestPlacementContracts: every policy returns exactly P strictly
// ascending free slots, and reports ok=false when the job cannot fit.
func TestPlacementContracts(t *testing.T) {
	free := []int{0, 1, 2, 3, 8, 9, 10, 11, 20, 21, 22, 23, 28, 29, 30, 31}
	isFree := map[int]bool{}
	for _, s := range free {
		isFree[s] = true
	}
	for _, place := range []Placement{Packed{}, Spread{}, Random{}, CostAware{}} {
		slots, ok := place.Place(request(free, 8, nil))
		if !ok || len(slots) != 8 {
			t.Fatalf("%s: got %v, want 8 slots", place.Name(), slots)
		}
		for i, s := range slots {
			if !isFree[s] {
				t.Fatalf("%s: placed on busy slot %d", place.Name(), s)
			}
			if i > 0 && slots[i-1] >= s {
				t.Fatalf("%s: slots not ascending: %v", place.Name(), slots)
			}
		}
		if _, ok := place.Place(request(free, len(free)+1, nil)); ok {
			t.Fatalf("%s: placed a job larger than the free set", place.Name())
		}
	}
}

// TestCostAwareNeverWorseThanPackedOrSpread: on any job mix, CostAware's
// predicted step time must never exceed the better of Packed's and
// Spread's on the same request — its candidate set includes both picks,
// and Predict is the same deterministic model for all three.
func TestCostAwareNeverWorseThanPackedOrSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		// A random free set (always enough for the job) and a random flow
		// field standing in for arbitrary co-tenant load.
		total := 32
		free := []int{}
		for s := 0; s < total; s++ {
			if rng.Float64() < 0.7 {
				free = append(free, s)
			}
		}
		p := 4 << rng.Intn(2) // 4 or 8
		if len(free) < p {
			continue
		}
		load := make([][]int, 3)
		for l := range load {
			load[l] = make([]int, total)
			for g := range load[l] {
				load[l][g] = rng.Intn(12)
			}
		}
		m := testMachine()
		flows := func(slot, level int) int { return load[level][m.GroupOf(slot, level)] }

		r := request(free, p, flows)
		best := -1.0
		for _, place := range []Placement{Packed{}, Spread{}} {
			slots, ok := place.Place(r)
			if !ok {
				t.Fatalf("%s failed on a feasible request", place.Name())
			}
			if pred := r.Predict(slots); best < 0 || pred < best {
				best = pred
			}
		}
		slots, ok := CostAware{}.Place(r)
		if !ok {
			t.Fatal("CostAware failed on a feasible request")
		}
		if pred := r.Predict(slots); pred > best {
			t.Fatalf("trial %d: CostAware predicted %g, best of packed/spread %g (free=%v, p=%d)", trial, pred, best, free, p)
		}
	}
}

// TestCostAwareDodgesLoadedRegion: with the first machine group heavily
// loaded and the second idle, CostAware must place an 8-rank job in the
// idle group, where Packed piles onto the load.
func TestCostAwareDodgesLoadedRegion(t *testing.T) {
	m := testMachine()
	// Free slots everywhere; group 0 (slots 0..7) saturated with flows.
	flows := func(slot, level int) int {
		if m.GroupOf(slot, 0) < 2 { // the two nodes of group 0
			return 32
		}
		return 0
	}
	r := request(ascending(32), 8, flows)
	packed, _ := Packed{}.Place(r)
	aware, ok := CostAware{}.Place(r)
	if !ok {
		t.Fatal("CostAware failed")
	}
	if aware[0] < 8 {
		t.Fatalf("CostAware placed into the loaded region: %v", aware)
	}
	if r.Predict(aware) >= r.Predict(packed) {
		t.Fatalf("CostAware pick %v predicts %g, no better than packed %v at %g",
			aware, r.Predict(aware), packed, r.Predict(packed))
	}
}

// TestRandomPlacementIsolatedStream: Random draws only from the request's
// stream, and sorted output is a valid subset.
func TestRandomPlacementIsolatedStream(t *testing.T) {
	key := scenario.NewKey(11)
	draw := func() []int {
		r := request(ascending(32), 8, nil)
		r.RNG = scenario.NewPartitionedRNG(key).Named("job/placement")
		slots, ok := Random{}.Place(r)
		if !ok {
			t.Fatal("Random failed on a feasible request")
		}
		return slots
	}
	a, b := draw(), draw()
	if !sort.IntsAreSorted(a) {
		t.Fatalf("Random slots not sorted: %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same stream, different draw: %v vs %v", a, b)
		}
	}
}

// TestClusterEndToEndPolicies: the full loop runs under every policy on a
// shared mix, and the cost-aware policy's mean predicted job time is the
// best (or tied) of the four — the BENCH_8 headline, in miniature.
func TestClusterEndToEndPolicies(t *testing.T) {
	mean := func(place Placement) float64 {
		stats := runSmall(t, place, 17, 0)
		sum := 0.0
		for _, s := range stats {
			sum += s.PredictedJob
		}
		return sum / float64(len(stats))
	}
	awarePred := mean(CostAware{})
	for _, place := range []Placement{Packed{}, Spread{}, Random{}} {
		if m := mean(place); awarePred > m {
			t.Fatalf("cost-aware mean predicted job time %g worse than %s's %g", awarePred, place.Name(), m)
		}
	}
}
