// Package cluster is the multi-tenant cluster simulator: one shared
// machine hierarchy hosting N concurrent training jobs, each a
// scenario-library workload gang-scheduled onto machine slots by a
// pluggable Placement policy and advanced step by step on a shared
// virtual clock by a deterministic discrete-event loop.
//
// Contention across jobs is dynamic, not proxied: the cluster maintains
// per-level, per-group counters of the flows actually in flight at each
// event and serves them to every job's world through the comm
// ActivitySource seam, so a message's egress (and, on ingress-capped
// hierarchies, incast) factors reflect who else is really communicating —
// the multi-tenant replacement for the static communicator-size proxy.
// A step's pricing freezes the in-flight set at issue time: counters are
// mutated only between comm.Run calls on the single event-loop goroutine,
// so concurrent rank goroutines read a stable snapshot.
//
// Determinism follows the scenario package's stream-isolation contract:
// workloads, arrival jitter, straggler jitter and the Random policy's
// draws all come from streams derived from (SimulationKey, name), with
// every job's streams namespaced by its unique name. Equal configurations
// replay byte-identical schedules — per-job sim times included.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// Config configures a Cluster.
type Config struct {
	// Machine is the shared machine hierarchy jobs are placed onto.
	Machine simnet.Hierarchy
	// Slots is the number of machine slots (ranks the machine hosts).
	Slots int
	// Key is the determinism key every random stream derives from:
	// workloads, jitter, arrival noise, and the Random placement policy.
	Key scenario.SimulationKey
	// Jitter is the straggler knob: each job step's simulated time is
	// stretched by a factor uniform in [1, 1+Jitter], drawn from the job's
	// isolated jitter stream. Zero consumes no draws at all, so enabling
	// jitter on one cluster never perturbs another's streams.
	Jitter float64
	// ArrivalJitter delays each job's start by a uniform [0, ArrivalJitter)
	// seconds drawn from the job's arrival stream. Zero consumes no draws.
	ArrivalJitter float64
	// Obs, when non-nil, receives the cluster's job lifecycle on the
	// shared virtual clock: each job gets a named track carrying
	// job:arrive / job:queued / job:admit / job:step / job:finish events.
	// The event loop is single-threaded, so the recorded order is
	// deterministic. Nil disables observability at zero cost.
	Obs *obs.Obs
}

// Job declares one workload to admit: a scenario-library workload with
// its own world size (Scenario.P), collective schedule (Scenario.Calls
// steps) and start offset.
type Job struct {
	// Name uniquely identifies the job and namespaces its random streams:
	// two jobs running the same scenario draw unrelated workloads.
	Name string
	// Scenario is the workload declaration; Scenario.P is the job's world
	// size and Scenario.Calls its step count.
	Scenario scenario.Scenario
	// Start is the earliest admission time in virtual seconds.
	Start float64
}

// JobStats is one job's outcome.
type JobStats struct {
	// Name, P and Steps echo the job declaration.
	Name  string `json:"name"`
	P     int    `json:"p"`
	Steps int    `json:"steps"`
	// Arrived is when the job entered the admission queue (start offset
	// plus arrival jitter) and Admitted when it was granted slots; the
	// difference is its queueing delay. Finished is when its last step
	// completed. All in virtual seconds.
	Arrived  float64 `json:"arrived"`
	Admitted float64 `json:"admitted"`
	Finished float64 `json:"finished"`
	// SimSeconds is the job's total simulated collective time across its
	// steps, straggler jitter included — the per-job sim time the
	// determinism contract reproduces exactly.
	SimSeconds float64 `json:"sim_seconds"`
	// PredictedStep is the cost model's per-step estimate at admission,
	// under the external flows observed then; PredictedJob is
	// PredictedStep x Steps, the placement quality headline.
	PredictedStep float64 `json:"predicted_step_seconds"`
	PredictedJob  float64 `json:"predicted_job_seconds"`
	// Algorithm is the final pinned collective choice (with depth when
	// hierarchical) and Switches how often the per-step re-decision under
	// observed contention changed it mid-run.
	Algorithm string `json:"algorithm"`
	Switches  int    `json:"switches"`
	// Slots is the machine slot set the job ran on.
	Slots []int `json:"slots"`
}

// jobState tracks one admitted or queued job through the event loop.
type jobState struct {
	decl    Job
	arrived float64
	stats   JobStats
	sched   [][]*stream.Vector
	world   *comm.World
	slots   []int
	step    int
	alg     core.Algorithm
	levels  int
	chunks  int
	decided bool
	done    float64 // pending step-completion time
	running bool
}

// Cluster wraps one shared machine and admits jobs in declared (FIFO)
// order: the queue head waits for its start time and for enough free
// slots, and later jobs never backfill past it. Create with New, declare
// jobs with Add, then Run the event loop to completion.
type Cluster struct {
	cfg   Config
	place Placement
	prng  *scenario.PartitionedRNG
	jobs  []*jobState
	queue []*jobState // arrived, not yet admitted, FIFO
	free  []bool      // per-slot occupancy
	flows [][]int     // [level][group] in-flight flow counters
	now   float64
}

// New creates a cluster over cfg.Slots slots of cfg.Machine, placing jobs
// with the given policy. Panics on an invalid machine, a non-positive
// slot count, or a nil policy.
func New(cfg Config, place Placement) *Cluster {
	if err := cfg.Machine.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.Slots <= 0 {
		panic("cluster: need a positive slot count")
	}
	if place == nil {
		panic("cluster: need a placement policy")
	}
	c := &Cluster{cfg: cfg, place: place, prng: scenario.NewPartitionedRNG(cfg.Key)}
	c.free = make([]bool, cfg.Slots)
	for i := range c.free {
		c.free[i] = true
	}
	c.flows = make([][]int, cfg.Machine.Depth())
	for l := range c.flows {
		groups := 1
		if span := cfg.Machine.Span(l); span != math.MaxInt {
			groups = (cfg.Slots + span - 1) / span
		}
		c.flows[l] = make([]int, groups)
	}
	return c
}

// Add declares a job. Jobs are admitted in Add order (FIFO, no backfill).
// Panics on a duplicate or empty name, or a job larger than the machine.
func (c *Cluster) Add(j Job) {
	if j.Name == "" {
		panic("cluster: job needs a name")
	}
	for _, other := range c.jobs {
		if other.decl.Name == j.Name {
			panic(fmt.Sprintf("cluster: duplicate job name %q", j.Name))
		}
	}
	if j.Scenario.P > c.cfg.Slots {
		panic(fmt.Sprintf("cluster: job %s needs %d slots, machine has %d", j.Name, j.Scenario.P, c.cfg.Slots))
	}
	js := &jobState{decl: j, arrived: j.Start}
	if c.cfg.ArrivalJitter > 0 {
		rng := c.prng.Named(j.Name + "/" + scenario.SubsystemArrival)
		js.arrived += rng.Float64() * c.cfg.ArrivalJitter
	}
	js.stats = JobStats{Name: j.Name, P: j.Scenario.P, Steps: j.Scenario.Calls, Arrived: js.arrived}
	c.jobs = append(c.jobs, js)
	if tr := c.cfg.Obs.Named(j.Name); tr != nil {
		tr.Instant("job:arrive", js.arrived,
			obs.Attr{Key: "p", Value: strconv.Itoa(j.Scenario.P)},
			obs.Attr{Key: "steps", Value: strconv.Itoa(j.Scenario.Calls)})
	}
}

// Run executes the discrete-event loop until every declared job has
// finished and returns the per-job stats in Add order. The loop advances
// a shared virtual clock event by event — job arrivals, step completions —
// admitting queued jobs whenever slots free up and re-pricing nothing
// retroactively: a step's cost is frozen at issue time against the flows
// then in flight.
func (c *Cluster) Run() []JobStats {
	// Arrivals in time order (ties: Add order), as the initial event set.
	arrivals := append([]*jobState(nil), c.jobs...)
	sort.SliceStable(arrivals, func(a, b int) bool { return arrivals[a].arrived < arrivals[b].arrived })
	next := 0
	pending := len(c.jobs)
	for pending > 0 {
		// Earliest event: the next arrival or the earliest running step
		// completion, arrivals first on ties so a freed machine admits in
		// arrival order.
		var js *jobState
		t := math.Inf(1)
		arrival := false
		for _, r := range c.jobs {
			if r.running && r.done < t {
				js, t = r, r.done
			}
		}
		if next < len(arrivals) && arrivals[next].arrived <= t {
			js, t, arrival = arrivals[next], arrivals[next].arrived, true
		}
		if js == nil {
			panic("cluster: no runnable event (placement rejected an idle machine?)")
		}
		c.now = t
		if arrival {
			next++
			c.queue = append(c.queue, js)
			c.tryAdmit()
			continue
		}
		// Step completed: retire its flows, then advance or finish.
		c.adjustFlows(js.slots, -1)
		js.running = false
		js.step++
		if js.step < len(js.sched) {
			c.startStep(js)
			continue
		}
		js.stats.Finished = c.now
		if tr := c.cfg.Obs.Named(js.decl.Name); tr != nil {
			tr.Instant("job:finish", c.now)
		}
		for _, s := range js.slots {
			c.free[s] = true
		}
		pending--
		c.tryAdmit()
	}
	out := make([]JobStats, len(c.jobs))
	for i, r := range c.jobs {
		out[i] = r.stats
	}
	return out
}

// tryAdmit admits queued jobs FIFO until the head cannot be placed.
func (c *Cluster) tryAdmit() {
	for len(c.queue) > 0 {
		js := c.queue[0]
		slots, ok := c.place.Place(c.placeRequest(js))
		if !ok {
			if c.idle() {
				panic(fmt.Sprintf("cluster: policy %s cannot place job %s on an idle machine", c.place.Name(), js.decl.Name))
			}
			return
		}
		c.queue = c.queue[1:]
		c.admit(js, slots)
	}
}

// idle reports whether no job currently holds slots.
func (c *Cluster) idle() bool {
	for _, f := range c.free {
		if !f {
			return false
		}
	}
	return true
}

// freeSlots returns the ascending free slot list.
func (c *Cluster) freeSlots() []int {
	out := make([]int, 0, len(c.free))
	for s, f := range c.free {
		if f {
			out = append(out, s)
		}
	}
	return out
}

// placeRequest assembles the placement view of one queued job.
func (c *Cluster) placeRequest(js *jobState) PlaceRequest {
	return PlaceRequest{
		Machine: c.cfg.Machine,
		Free:    c.freeSlots(),
		P:       js.decl.Scenario.P,
		Cost:    c.jobCost(js),
		Flows:   c.flowsAt,
		RNG:     c.prng.Named(js.decl.Name + "/placement"),
	}
}

// jobCost builds the placement-independent part of a job's cost scenario:
// the problem shape with K estimated from the scenario's scheduled
// density at its first call (the same closed form the generator scales
// support draws by).
func (c *Cluster) jobCost(js *jobState) core.CostScenario {
	sc := js.decl.Scenario
	d := sc.Density.At(0, sc.Calls)
	k := int(math.Round(d * float64(sc.N)))
	if k < 1 {
		k = 1
	}
	if k > sc.N {
		k = sc.N
	}
	top := c.cfg.Machine.Levels[c.cfg.Machine.Depth()-1].Profile
	return core.CostScenario{N: sc.N, P: sc.P, K: k, Profile: top, Chunks: core.AutoChunks}
}

// flowsAt returns the in-flight flow count at the level-`level` group
// containing machine slot `slot` — the cluster's ActivitySource view.
func (c *Cluster) flowsAt(slot, level int) int {
	return c.flows[level][c.groupOf(slot, level)]
}

// groupOf maps a slot to its level-l group index on the machine.
func (c *Cluster) groupOf(slot, level int) int {
	return c.cfg.Machine.GroupOf(slot, level)
}

// EgressFlows implements comm.ActivitySource: how many in-flight flows
// drive the egress of the level group containing the slot, the sender's
// own included (its step's flows are registered before its world runs).
func (c *Cluster) EgressFlows(slot, level int) int { return c.flowsAt(slot, level) }

// IngressFlows implements comm.ActivitySource: the same counters read
// from the receiver's side — flows crossing a group boundary load its
// ingress as they load the egress of the groups they left.
func (c *Cluster) IngressFlows(slot, level int) int { return c.flowsAt(slot, level) }

// adjustFlows registers (delta +1) or retires (delta -1) one job step's
// flow contributions: at every level where the job's slots span more than
// one group — so its collective traffic actually crosses that boundary —
// each occupied group gains the job's resident slot count, mirroring the
// static proxy's "every communicator rank in the group drives one flow
// out" accounting, now summed over tenants actually in flight.
func (c *Cluster) adjustFlows(slots []int, delta int) {
	for l := range c.flows {
		lo := c.groupOf(slots[0], l)
		if c.groupOf(slots[len(slots)-1], l) == lo {
			continue // the whole job shares this group: nothing crosses
		}
		g, cnt := lo, 0
		for _, s := range slots {
			if sg := c.groupOf(s, l); sg != g {
				c.flows[l][g] += delta * cnt
				g, cnt = sg, 0
			}
			cnt++
		}
		c.flows[l][g] += delta * cnt
	}
}

// externalAt returns, per machine level, the worst external flow count
// any of the job's groups observes right now — the External vector its
// Auto decisions price. Must be called before the job's own step flows
// are registered.
func (c *Cluster) externalAt(slots []int) []int {
	ext := make([]int, len(c.flows))
	for l := range c.flows {
		for _, s := range slots {
			if f := c.flowsAt(s, l); f > ext[l] {
				ext[l] = f
			}
		}
	}
	return ext
}

// admit grants the job its slots, builds its placed world, generates its
// schedule from its namespaced streams, prices the admission-time
// prediction, and issues its first step.
func (c *Cluster) admit(js *jobState, slots []int) {
	js.slots = slots
	js.stats.Admitted = c.now
	js.stats.Slots = append([]int(nil), slots...)
	for _, s := range slots {
		if !c.free[s] {
			panic(fmt.Sprintf("cluster: policy %s placed job %s on busy slot %d", c.place.Name(), js.decl.Name, s))
		}
		c.free[s] = false
	}
	sc := js.decl.Scenario
	sc.Name = js.decl.Name + "/" + sc.Name // isolate this job's streams
	js.sched = sc.Generator(c.cfg.Key).All()
	js.world = comm.NewWorldPlaced(js.decl.Scenario.P, c.cfg.Machine, slots)
	js.world.SetActivitySource(c)

	cost := c.jobCost(js)
	c.bindPlacement(&cost, slots)
	cost.External = c.externalAt(slots)
	alg, levels, chunks := core.ChooseAutoLevels(cost)
	cost.Levels, cost.Chunks = levels, chunks
	js.stats.PredictedStep = core.PredictSeconds(alg, cost)
	js.stats.PredictedJob = js.stats.PredictedStep * float64(len(js.sched))
	if tr := c.cfg.Obs.Named(js.decl.Name); tr != nil {
		tr.Event("job:queued", js.arrived, c.now)
		tr.Instant("job:admit", c.now,
			obs.Attr{Key: "slots", Value: fmt.Sprint(slots)},
			obs.Attr{Key: "predicted_step_s",
				Value: strconv.FormatFloat(js.stats.PredictedStep, 'g', -1, 64)})
	}
	c.startStep(js)
}

// bindPlacement points the cost scenario at the hierarchy the placed
// world actually reports: the induced job-structure hierarchy when the
// placement is regular, flat otherwise.
func (c *Cluster) bindPlacement(cost *core.CostScenario, slots []int) {
	if ih, ok := c.cfg.Machine.Induced(slots); ok {
		cost.Hier = &ih
	}
}

// startStep issues the job's next step at the current virtual time: it
// re-decides the collective under the external flows observed now (the
// per-job Auto-under-contention decision), registers the step's flows,
// runs the step's collective on the job's placed world against the frozen
// in-flight snapshot, stretches the time by the straggler jitter draw,
// and schedules the completion event.
func (c *Cluster) startStep(js *jobState) {
	inputs := js.sched[js.step]
	kmax := 0
	for _, v := range inputs {
		if nnz := v.NNZ(); nnz > kmax {
			kmax = nnz
		}
	}
	cost := c.jobCost(js)
	cost.K = kmax
	c.bindPlacement(&cost, js.slots)
	cost.External = c.externalAt(js.slots)
	alg, levels, chunks := core.ChooseAutoLevels(cost)
	if js.decided && (alg != js.alg || levels != js.levels) {
		js.stats.Switches++
	}
	js.alg, js.levels, js.chunks, js.decided = alg, levels, chunks, true
	js.stats.Algorithm = alg.String()
	if levels > 0 {
		js.stats.Algorithm = fmt.Sprintf("%s@%d", alg, levels)
	}

	c.adjustFlows(js.slots, +1)
	opts := core.Options{Algorithm: alg, Levels: levels, Chunks: chunks}
	comm.Run(js.world, func(p *comm.Proc) any {
		return core.Allreduce(p, inputs[p.Rank()], opts)
	})
	dt := js.world.MaxTime()
	if c.cfg.Jitter > 0 {
		rng := c.prng.Named(js.decl.Name + "/" + scenario.SubsystemJitter)
		dt *= 1 + c.cfg.Jitter*rng.Float64()
	}
	js.stats.SimSeconds += dt
	js.done = c.now + dt
	js.running = true
	if tr := c.cfg.Obs.Named(js.decl.Name); tr != nil {
		tr.Event("job:step", c.now, js.done,
			obs.Attr{Key: "step", Value: strconv.Itoa(js.step)},
			obs.Attr{Key: "alg", Value: js.stats.Algorithm})
		c.cfg.Obs.Metrics().Counter("cluster.steps").Inc(0)
	}
}
