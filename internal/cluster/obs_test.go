package cluster

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// TestClusterJobLifecycleSpans: with an obs hub attached, every job gets
// a named track whose events tell the full lifecycle story in order:
// job:arrive → job:queued → job:admit → job:step… → job:finish, with the
// queued span covering [arrived, admitted] and step count matching the
// scenario.
func TestClusterJobLifecycleSpans(t *testing.T) {
	hub := obs.New(0, obs.ClockVirtual)
	c := New(Config{
		Machine: testMachine(), Slots: 16,
		Key: scenario.NewKey(7), Obs: hub,
	}, Packed{})
	c.Add(smallJob("alpha", 16, 3, 0)) // fills the machine
	c.Add(smallJob("beta", 8, 2, 0))   // must queue behind alpha
	stats := c.Run()

	byJob := map[string][]obs.Span{}
	for _, s := range hub.Spans() {
		byJob[s.Track] = append(byJob[s.Track], s)
	}
	for i, st := range stats {
		spans := byJob[st.Name]
		if len(spans) == 0 {
			t.Fatalf("job %q: no spans on its named track", st.Name)
		}
		count := map[string]int{}
		for _, s := range spans {
			count[s.Name]++
		}
		if count["job:arrive"] != 1 || count["job:queued"] != 1 ||
			count["job:admit"] != 1 || count["job:finish"] != 1 {
			t.Fatalf("job %q lifecycle counts: %v", st.Name, count)
		}
		if count["job:step"] != st.Steps {
			t.Fatalf("job %q: %d job:step events, want %d", st.Name, count["job:step"], st.Steps)
		}
		for _, s := range spans {
			switch s.Name {
			case "job:arrive":
				if !s.Instant || s.Start != st.Arrived {
					t.Fatalf("job %q arrive at %g, want instant at %g", st.Name, s.Start, st.Arrived)
				}
			case "job:queued":
				if s.Start != st.Arrived || s.End != st.Admitted {
					t.Fatalf("job %q queued [%g,%g], want [%g,%g]",
						st.Name, s.Start, s.End, st.Arrived, st.Admitted)
				}
			case "job:finish":
				if !s.Instant || s.Start != st.Finished {
					t.Fatalf("job %q finish at %g, want %g", st.Name, s.Start, st.Finished)
				}
			case "job:step":
				if s.End <= s.Start {
					t.Fatalf("job %q: empty step span %+v", st.Name, s)
				}
			}
		}
		// The second job queues behind the first on a full machine.
		if i == 1 && st.Admitted <= st.Arrived {
			t.Fatalf("job %q admitted at %g despite full machine at arrival %g",
				st.Name, st.Admitted, st.Arrived)
		}
	}
	wantSteps := int64(stats[0].Steps + stats[1].Steps)
	if got := hub.Metrics().Counter("cluster.steps").Value(); got != wantSteps {
		t.Fatalf("cluster.steps = %d, want %d", got, wantSteps)
	}
}

// TestClusterObsDisabledIdentical: attaching an obs hub must not perturb
// the simulation — stats with and without observability are identical.
func TestClusterObsDisabledIdentical(t *testing.T) {
	run := func(hub *obs.Obs) []JobStats {
		c := New(Config{
			Machine: testMachine(), Slots: 32,
			Key: scenario.NewKey(42), Jitter: 0.2, Obs: hub,
		}, CostAware{})
		c.Add(smallJob("a", 8, 3, 0))
		c.Add(smallJob("b", 16, 2, 1e-4))
		return c.Run()
	}
	plain := run(nil)
	observed := run(obs.New(0, obs.ClockVirtual))
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("stats diverged with obs attached:\n%+v\nvs\n%+v", plain, observed)
	}
}
