package cluster

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/simnet"
)

// PlaceRequest is the placement view of one job awaiting admission: the
// machine, the free slots, the job's size and cost shape, and the
// cluster's live flow counters. Policies return a strictly ascending
// subset of Free of size P, or ok=false when Free cannot host the job.
type PlaceRequest struct {
	// Machine is the shared machine hierarchy.
	Machine simnet.Hierarchy
	// Free lists the currently free machine slots, ascending.
	Free []int
	// P is the job's world size.
	P int
	// Cost is the job's placement-independent cost shape (N, P, K,
	// profile); Predict binds it to a candidate slot set.
	Cost core.CostScenario
	// Flows returns the in-flight flow count at the level group containing
	// a slot — the same counters the ActivitySource serves, so cost-aware
	// policies price candidates against live contention.
	Flows func(slot, level int) int
	// RNG is the job's isolated placement stream (used by Random; drawing
	// from it never perturbs any other stream).
	RNG *rand.Rand
}

// Predict prices the job on a candidate slot set (ascending): the cost
// scenario is bound to the candidate's induced hierarchy (flat when the
// placement is irregular) and to the external flows its groups observe
// now, then the cheapest Auto candidate's predicted step time is
// returned — exactly the decision the cluster will pin at admission.
func (r PlaceRequest) Predict(slots []int) float64 {
	sc := r.Cost
	if ih, ok := r.Machine.Induced(slots); ok {
		sc.Hier = &ih
	}
	if r.Flows != nil {
		ext := make([]int, r.Machine.Depth())
		for l := range ext {
			for _, s := range slots {
				if f := r.Flows(s, l); f > ext[l] {
					ext[l] = f
				}
			}
		}
		sc.External = ext
	}
	alg, levels, chunks := core.ChooseAutoLevels(sc)
	sc.Levels, sc.Chunks = levels, chunks
	return core.PredictSeconds(alg, sc)
}

// Placement gang-schedules a job's ranks onto machine slots.
type Placement interface {
	// Name identifies the policy in documents and error messages.
	Name() string
	// Place returns the strictly ascending slot set for the job, or
	// ok=false when the request's free slots cannot host it.
	Place(r PlaceRequest) (slots []int, ok bool)
}

// Packed places the job on the lowest free slots — the bin-packing
// default of real schedulers, maximizing locality (and intra-group
// contention) by filling machines front to back.
type Packed struct{}

// Name identifies the policy.
func (Packed) Name() string { return "packed" }

// Place implements Placement.
func (Packed) Place(r PlaceRequest) ([]int, bool) {
	if len(r.Free) < r.P {
		return nil, false
	}
	return append([]int(nil), r.Free[:r.P:r.P]...), true
}

// Spread places the job at a uniform stride across the free slots —
// load-balancing across the machine at the price of crossing outer
// (slower, capped) levels on every message.
type Spread struct{}

// Name identifies the policy.
func (Spread) Name() string { return "spread" }

// Place implements Placement.
func (Spread) Place(r PlaceRequest) ([]int, bool) {
	if len(r.Free) < r.P {
		return nil, false
	}
	stride := len(r.Free) / r.P
	out := make([]int, r.P)
	for i := range out {
		out[i] = r.Free[i*stride]
	}
	return out, true
}

// Random places the job on a uniform random subset of the free slots,
// drawn from the job's isolated placement stream — the contention-blind
// baseline (and, typically, an irregular placement that forces the job
// flat).
type Random struct{}

// Name identifies the policy.
func (Random) Name() string { return "random" }

// Place implements Placement.
func (Random) Place(r PlaceRequest) ([]int, bool) {
	if len(r.Free) < r.P {
		return nil, false
	}
	perm := r.RNG.Perm(len(r.Free))[:r.P]
	sort.Ints(perm)
	out := make([]int, r.P)
	for i, j := range perm {
		out[i] = r.Free[j]
	}
	return out, true
}

// CostAware prices a candidate set of placements with the same cost model
// the cluster pins decisions by — each candidate bound to its induced
// hierarchy and the external flows its groups observe — and takes the
// cheapest. The candidates always include Packed's and Spread's picks, so
// CostAware never predicts worse than the better of the two, plus every
// node-aligned packed window of the free slots (the knob that lets it
// dodge a loaded machine region a plain Packed would pile onto). Ties
// keep the earliest candidate, so the choice is deterministic.
type CostAware struct{}

// Name identifies the policy.
func (CostAware) Name() string { return "cost-aware" }

// Place implements Placement.
func (CostAware) Place(r PlaceRequest) ([]int, bool) {
	if len(r.Free) < r.P {
		return nil, false
	}
	var candidates [][]int
	if s, ok := (Packed{}).Place(r); ok {
		candidates = append(candidates, s)
	}
	if s, ok := (Spread{}).Place(r); ok {
		candidates = append(candidates, s)
	}
	// Node-aligned packed windows: slide the packed window across the free
	// list in steps of one machine node, skipping duplicates of the plain
	// packed pick.
	node := r.Machine.Span(0)
	if node < 1 {
		node = 1
	}
	for off := node; off+r.P <= len(r.Free); off += node {
		candidates = append(candidates, r.Free[off:off+r.P:off+r.P])
	}
	best, bestT := candidates[0], r.Predict(candidates[0])
	for _, cand := range candidates[1:] {
		if t := r.Predict(cand); t < bestT {
			best, bestT = cand, t
		}
	}
	return append([]int(nil), best...), true
}
