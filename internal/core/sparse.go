package core

import (
	"math/rand"
	"runtime"
	"strconv"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/stream"
)

// ssarRecDouble implements SSAR_Recursive_double (§5.3.1): log2(P) stages;
// at stage t, ranks a distance 2^(t−1) apart exchange their accumulated
// sparse streams and merge. Latency-optimal (log2(P)·α); the bandwidth
// term grows with fill-in, between log2(P)·k·βs (full overlap) and
// (P−1)·k·βs (disjoint supports). Non-power-of-two worlds fold the excess
// ranks onto the first P−2^⌊log2P⌋ ranks (Appendix A).
func ssarRecDouble(p *comm.Proc, v *stream.Vector, sc *stream.Scratch, base int) *stream.Vector {
	acc := v.CloneInto(sc)
	rank, P := p.Rank(), p.Size()
	p2 := largestPow2(P)
	rem := P - p2

	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, acc, acc.WireBytes())
			// The peer sends a dedicated clone back: adopt it.
			return p.Recv(rank-p2, base+1).Payload.(*stream.Vector)
		}
		if rank < rem {
			in := p.Recv(rank+p2, base).Payload.(*stream.Vector)
			mergeCharged(p, acc, in, sc)
			sc.Release(in)
		}
	}

	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		m := p.SendRecv(peer, base+2+stage, acc.CloneInto(sc), acc.WireBytes())
		in := m.Payload.(*stream.Vector)
		mergeCharged(p, acc, in, sc)
		sc.Release(in)
	}

	if rem > 0 && rank < rem {
		p.Send(rank+p2, base+1, acc.CloneInto(sc), acc.WireBytes())
	}
	return acc
}

// mergeCharged reduces in into acc and charges the modeled compute cost:
// sparse merges cost γ·SparseComputeFactor per pair touched, dense
// combines γ per element (§5.1: "summing sparse vectors is computationally
// more expensive than summing dense vectors"). Merge buffers are drawn
// from sc (nil degrades to plain allocation); releasing in afterwards is
// the caller's decision — only vectors this rank exclusively owns may go
// back into the pool.
func mergeCharged(p *comm.Proc, acc, in *stream.Vector, sc *stream.Scratch) {
	prof := p.Profile()
	if acc.IsDense() || in.IsDense() {
		p.Compute(prof.DenseReduceTime(acc.Dim()))
	} else {
		p.Compute(prof.SparseMergeTime(acc.NNZ() + in.NNZ()))
	}
	acc.AddInto(in, sc)
}

// mergeKCharged reduces all received partition streams into acc in one
// k-way merge pass (stream.Vector.AddAll) and charges the single-pass
// compute cost: every input pair is touched once, so the sparse charge is
// Σᵢ|Hᵢ| rather than the chained two-way merges' Σᵢ(|accᵢ|+|Hᵢ|), plus
// one dense pass when the output spills past δ mid-merge. When any
// operand is dense, AddAll executes the literal chained folds, so the
// charging falls back to the per-step mergeCharged rule it matches. The
// received vectors are consumed: their buffers are released into sc.
func mergeKCharged(p *comm.Proc, acc *stream.Vector, ins []*stream.Vector, sc *stream.Scratch) {
	if len(ins) == 0 {
		return
	}
	anyDense := acc.IsDense()
	for _, in := range ins {
		if in.IsDense() {
			anyDense = true
		}
	}
	if anyDense {
		for _, in := range ins {
			mergeCharged(p, acc, in, sc)
			sc.Release(in)
		}
		return
	}
	prof := p.Profile()
	pairs := acc.NNZ()
	for _, in := range ins {
		pairs += in.NNZ()
	}
	p.Compute(prof.SparseMergeTime(pairs))
	if p.Wall() && len(ins) >= 2 {
		// Real transport: the rank runs on an OS thread with wall-clock
		// time, so the all-sparse merge may fan out across spare cores.
		// MergeKParallel is bit-identical to AddAll here (all inputs are
		// sparse and the fan-in is ≥ 3 streams, the exact-δ k-way regime
		// for both paths); the modeled Compute charges above are no-ops.
		vs := make([]*stream.Vector, 0, len(ins)+1)
		vs = append(vs, acc)
		vs = append(vs, ins...)
		acc.TakeFrom(stream.MergeKParallel(vs, runtime.GOMAXPROCS(0)), sc)
	} else {
		acc.AddAll(ins, sc)
	}
	if acc.IsDense() {
		p.Compute(prof.DenseReduceTime(acc.Dim())) // the mid-merge spill's dense fill
	}
	for _, in := range ins {
		sc.Release(in)
	}
}

// splitPhase is the first phase shared by SSAR_Split_allgather and
// DSAR_Split_allgather (§5.3.2): the dimension space [0, N) is split into
// P uniform partitions; every rank sends each partition's slice of its
// input directly to the partition owner ("this direct communication comes
// at a higher latency cost", hence the (P−1)·α latency term), then reduces
// the P slices it received for its own partition in a single k-way merge
// pass — the hot path of the whole allreduce, so slices are extracted into
// scratch buffers and the incoming streams are recycled after the merge.
func splitPhase(p *comm.Proc, v *stream.Vector, sc *stream.Scratch, base int) *stream.Vector {
	rank, P := p.Rank(), p.Size()
	n := v.Dim()
	p.SpanBegin("split:send")
	for off := 1; off < P; off++ {
		to := (rank + off) % P
		lo, hi := partition(n, P, to)
		piece := v.ExtractRangeInto(lo, hi, sc)
		p.Send(to, base+rank, piece, piece.WireBytes())
	}
	p.SpanEnd()
	lo, hi := partition(n, P, rank)
	acc := v.ExtractRangeInto(lo, hi, sc)
	p.SpanBegin("split:merge")
	ins := make([]*stream.Vector, P-1)
	for off := 1; off < P; off++ {
		from := (rank - off + P) % P
		ins[off-1] = p.Recv(from, base+from).Payload.(*stream.Vector)
	}
	mergeKCharged(p, acc, ins, sc)
	p.SpanEnd()
	return acc
}

// splitPhasePipelined is the chunked split phase: every rank's partition
// is subdivided into C uniform key-range chunks, and chunk c's slices
// travel under their own tag (base + c·P + src) so the merge of chunk c
// can start while chunk c+1's sends are still being issued. On real
// transports the overlap is physical — a forked merge goroutine drains and
// merges chunk after chunk while the main goroutine keeps extracting and
// sending — and on the simulator the send stage stays on the parent clock
// while the merge stage runs on a forked clock, so Join composes the two
// stages by max, the virtual-time analogue of the same pipeline. The C
// reduced chunk slices are disjoint ascending key ranges of this rank's
// partition, so reassembly is a pure concatenation (uncharged: the merge
// charge already covered every pair once). Callers must pass C ≥ 2
// (clampChunks decides that); C = 1 is splitPhase itself.
func splitPhasePipelined(p *comm.Proc, v *stream.Vector, sc *stream.Scratch, base, C int) *stream.Vector {
	rank, P := p.Rank(), p.Size()
	n := v.Dim()
	myLo, myHi := partition(n, P, rank)
	accs := make([]*stream.Vector, C)

	// The merge stage: extract my partition's chunk, receive the P−1 peer
	// slices for it, k-way merge — repeated per chunk, on proc f. The
	// extraction uses no scratch when f runs concurrently with the send
	// stage (a Scratch belongs to one goroutine).
	mergeStage := func(f *comm.Proc, fsc *stream.Scratch) {
		for c := 0; c < C; c++ {
			mergeStart := f.Now()
			clo, chi := stream.ChunkRange(myHi-myLo, C, c)
			acc := v.ExtractRangeInto(myLo+clo, myLo+chi, fsc)
			ins := make([]*stream.Vector, P-1)
			for off := 1; off < P; off++ {
				from := (rank - off + P) % P
				ins[off-1] = f.Recv(from, base+c*P+from).Payload.(*stream.Vector)
			}
			mergeKCharged(f, acc, ins, fsc)
			accs[c] = acc
			// The merge stage overlaps the send stage (physically on wall
			// transports), so its spans live on the dedicated merge lane.
			if o := f.Obs(); o != nil {
				o.EventLane(obs.LaneMerge, "split:merge", mergeStart, f.Now(),
					obs.Attr{Key: "chunk", Value: strconv.Itoa(c)})
			}
		}
	}
	sendStage := func() {
		for c := 0; c < C; c++ {
			sendStart := p.Now()
			for off := 1; off < P; off++ {
				to := (rank + off) % P
				tLo, tHi := partition(n, P, to)
				clo, chi := stream.ChunkRange(tHi-tLo, C, c)
				piece := v.ExtractRangeInto(tLo+clo, tLo+chi, sc)
				p.Send(to, base+c*P+rank, piece, piece.WireBytes())
			}
			if o := p.Obs(); o != nil {
				o.Event("split:send", sendStart, p.Now(),
					obs.Attr{Key: "chunk", Value: strconv.Itoa(c)})
			}
		}
	}

	if p.Wall() {
		// Real transport: true pipeline. The merge goroutine owns no
		// scratch (the main goroutine's sc stays single-owner) and the two
		// stages only share v read-only and the accs slots handed over at
		// the channel close.
		f := p.Fork()
		done := make(chan struct{})
		go func() {
			defer close(done)
			mergeStage(f, nil)
		}()
		sendStage()
		<-done
		p.Join(f)
	} else {
		// Simulator: sends price on the parent clock (injection occupies
		// the sender, as in splitPhase), merges on a forked clock; Join's
		// max models the overlap of the merge stage behind the send stage.
		sendStage()
		f := p.Fork()
		mergeStage(f, sc)
		p.Join(f)
	}

	out := stream.ConcatChunks(accs, sc)
	for _, a := range accs {
		sc.Release(a)
	}
	return out
}

// ssarSplitAllgather implements SSAR_Split_allgather (§5.3.2): the split
// phase above followed by a sparse concatenating allgather via recursive
// doubling (partition contents are disjoint by construction, so merging is
// concatenation — the "simple (concatenating) sparse allgather"). With
// chunks ≥ 2 the split phase runs pipelined (splitPhasePipelined) and the
// allgather's tag range shifts past the C·P chunk tags; chunks ≤ 1 is the
// unchunked path, byte-identical to the pre-chunking implementation.
func ssarSplitAllgather(p *comm.Proc, v *stream.Vector, sc *stream.Scratch, base, chunks int) *stream.Vector {
	C := clampChunks(chunks, v.Dim(), p.Size())
	var acc *stream.Vector
	if C > 1 {
		acc = splitPhasePipelined(p, v, sc, base, C)
	} else {
		acc = splitPhase(p, v, sc, base)
	}
	out := sparseAllgatherConcat(p, acc, sc, base+C*p.Size()+8)
	sc.Release(acc) // the allgather cloned it; the partition slice is dead
	return out
}

// sparseAllgatherConcat gathers disjoint sparse vectors from all ranks via
// recursive doubling with concatenation; every rank returns the union.
// Also used directly for the SCD experiment (§8.2) where nodes contribute
// disjoint coordinate blocks. Non-power-of-two worlds fold as usual.
func sparseAllgatherConcat(p *comm.Proc, mine *stream.Vector, sc *stream.Scratch, base int) *stream.Vector {
	acc := mine.CloneInto(sc)
	rank, P := p.Rank(), p.Size()
	p2 := largestPow2(P)
	rem := P - p2

	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, acc, acc.WireBytes())
			// The peer sends a dedicated clone back: adopt it.
			return p.Recv(rank-p2, base+1).Payload.(*stream.Vector)
		}
		if rank < rem {
			in := p.Recv(rank+p2, base).Payload.(*stream.Vector)
			concatCharged(p, acc, in)
			sc.Release(in)
		}
	}

	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		m := p.SendRecv(peer, base+2+stage, acc.CloneInto(sc), acc.WireBytes())
		in := m.Payload.(*stream.Vector)
		concatCharged(p, acc, in)
		sc.Release(in)
	}

	if rem > 0 && rank < rem {
		p.Send(rank+p2, base+1, acc.CloneInto(sc), acc.WireBytes())
	}
	return acc
}

func concatCharged(p *comm.Proc, acc, in *stream.Vector) {
	prof := p.Profile()
	if acc.IsDense() || in.IsDense() {
		p.Compute(prof.DenseReduceTime(acc.Dim()))
		acc.Add(in)
		return
	}
	p.Compute(prof.SparseMergeTime(acc.NNZ() + in.NNZ()))
	acc.Concat(in)
}

// SparseAllgather gathers disjoint sparse contributions from all ranks
// (public wrapper allocating a tag range).
func SparseAllgather(p *comm.Proc, mine *stream.Vector) *stream.Vector {
	return sparseAllgatherConcat(p, mine, nil, p.NextTagBase())
}

// dsarSplitAllgather implements DSAR_Split_allgather (§5.3.3): the sparse
// split phase, after which each rank *densifies* its reduced partition
// ("exploit the fact that every reduced split will become dense") and the
// partitions are exchanged with a dense recursive-doubling allgather,
// optionally QSGD-quantized (§6: "we employ the low-precision data
// representation only in the second part ... where the data becomes
// dense").
//
// Each partition is quantized once, by its owner; every rank decodes the
// same bytes, so all ranks return bit-identical results — the property
// that keeps data-parallel SGD replicas consistent.
func dsarSplitAllgather(p *comm.Proc, v *stream.Vector, opts Options, base int) *stream.Vector {
	sc := opts.Scratch
	C := clampChunks(opts.Chunks, v.Dim(), p.Size())
	var reduced *stream.Vector
	if C > 1 {
		reduced = splitPhasePipelined(p, v, sc, base, C)
	} else {
		reduced = splitPhase(p, v, sc, base)
	}
	rank, P := p.Rank(), p.Size()
	n := v.Dim()
	lo, hi := partition(n, P, rank)

	// Densify my partition into a contiguous block. Every coordinate of the
	// result is covered by exactly one partition, so no neutral pre-fill of
	// the result array is needed — gathered blocks land directly in it.
	densify := func(block []float64) {
		if reduced.IsDense() {
			copy(block, reduced.ToDense()[lo:hi])
		} else {
			idx, val := reduced.Pairs()
			for i, ix := range idx {
				block[ix-int32(lo)] = val[i]
			}
		}
		sc.Release(reduced)
		p.Compute(p.Profile().DenseReduceTime(len(block)))
	}
	result := make([]float64, n)

	agBase := base + C*P + 8
	if opts.Quant != nil {
		// Quantize my block; exchange quantized blocks; decode all. The
		// block dies once encoded, so it is scratch-pooled.
		block := sc.GrabDense(hi-lo, v.Op().Neutral())
		p.SpanBegin("dsar:densify")
		densify(block)
		p.SpanEnd()
		p.SpanBegin("dsar:quantize")
		rng := rand.New(rand.NewSource(opts.Seed ^ int64(rank+1)*0x5851F42D4C957F2D))
		q := quant.Encode(block, *opts.Quant, rng)
		sc.PutDense(block)                              // Encode copies into its own storage
		p.Compute(p.Profile().DenseReduceTime(hi - lo)) // encode pass
		p.SpanEnd()
		p.SpanBegin("dsar:allgather")
		gathered := allgatherQuantized(p, q, agBase)
		for r, qr := range gathered {
			rLo, _ := partition(n, P, r)
			dec := qr.Decode()
			copy(result[rLo:rLo+len(dec)], dec)
		}
		p.Compute(p.Profile().DenseReduceTime(n)) // decode pass
		p.SpanEnd()
	} else {
		// The block goes on the wire itself (AllgatherDenseInto takes
		// ownership), so it is a dedicated allocation, not pool storage;
		// received peer blocks land directly in the result array with no
		// per-part assembly copies.
		block := make([]float64, hi-lo)
		if neutral := v.Op().Neutral(); neutral != 0 {
			for i := range block {
				block[i] = neutral
			}
		}
		p.SpanBegin("dsar:densify")
		densify(block)
		p.SpanEnd()
		p.SpanBegin("dsar:allgather")
		AllgatherDenseInto(p, block, result, v.ValueBytes(), agBase)
		p.SpanEnd()
	}
	// The assembled array becomes the result's backing storage directly —
	// the caller owns it, so it is never recycled into the scratch.
	res := stream.WrapDense(result, v.Op())
	res.SetValueBytes(v.ValueBytes())
	return res
}

// allgatherQuantized is AllgatherDense over quantized blocks, with wire
// sizes taken from the quantized representation.
func allgatherQuantized(p *comm.Proc, mine *quant.Quantized, base int) []*quant.Quantized {
	rank, P := p.Rank(), p.Size()
	parts := make([]*quant.Quantized, P)
	parts[rank] = mine
	p2 := largestPow2(P)
	rem := P - p2

	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, mine, mine.WireBytes())
			res := p.Recv(rank-p2, base+1).Payload.([]*quant.Quantized)
			out := make([]*quant.Quantized, P)
			copy(out, res)
			return out
		}
		if rank < rem {
			parts[rank+p2] = p.Recv(rank+p2, base).Payload.(*quant.Quantized)
		}
	}

	owned := []int{rank}
	if rem > 0 && rank < rem {
		owned = append(owned, rank+p2)
	}
	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		bytes := 0
		out := make(map[int]*quant.Quantized, len(owned))
		for _, b := range owned {
			out[b] = parts[b]
			bytes += parts[b].WireBytes()
		}
		m := p.SendRecv(peer, base+2+stage, out, bytes)
		for b, q := range m.Payload.(map[int]*quant.Quantized) {
			parts[b] = q
			owned = append(owned, b)
		}
	}

	if rem > 0 && rank < rem {
		bytes := 0
		for _, q := range parts {
			bytes += q.WireBytes()
		}
		p.Send(rank+p2, base+1, parts, bytes)
	}
	return parts
}

// ringSparse is the sparse counterpart of the ring allreduce compared in
// the Figure 3 micro-benchmarks: a ring reduce-scatter over sparse
// partition slices followed by a ring allgather of the reduced (still
// sparse) partitions. Bandwidth matches the dense ring scaled by density;
// latency is 2(P−1)·α.
func ringSparse(p *comm.Proc, v *stream.Vector, sc *stream.Scratch, base int) *stream.Vector {
	rank, P := p.Rank(), p.Size()
	n := v.Dim()
	if P == 1 {
		return v.Clone()
	}
	next := (rank + 1) % P
	prev := (rank - 1 + P) % P

	// Per-block sparse slices of my input.
	blocks := make([]*stream.Vector, P)
	for b := 0; b < P; b++ {
		lo, hi := partition(n, P, b)
		blocks[b] = v.ExtractRangeInto(lo, hi, sc)
	}

	// Reduce-scatter ring: circulate and accumulate sparse slices.
	for s := 0; s < P-1; s++ {
		sendBlk := ((rank-s)%P + P) % P
		recvBlk := ((rank-s-1)%P + P) % P
		out := blocks[sendBlk]
		blocks[sendBlk] = nil // passed along; no longer needed locally
		p.Send(next, base+s, out, out.WireBytes())
		in := p.Recv(prev, base+s).Payload.(*stream.Vector)
		mergeCharged(p, blocks[recvBlk], in, sc)
		// The circulated slice was merged (copied) into the accumulator and
		// its sender passed ownership along the ring: recycle it.
		sc.Release(in)
	}

	ownBlk := (rank + 1) % P
	acc := blocks[ownBlk]

	// Allgather ring of the reduced sparse blocks.
	have := map[int]*stream.Vector{ownBlk: acc}
	cur := ownBlk
	for s := 0; s < P-1; s++ {
		out := have[cur]
		p.Send(next, base+P+s, out, out.WireBytes())
		recvBlk := ((cur-1)%P + P) % P
		in := p.Recv(prev, base+P+s).Payload.(*stream.Vector)
		have[recvBlk] = in
		cur = recvBlk
	}

	// Assemble: blocks are disjoint; concatenate in index order.
	result := stream.Zero(n, v.Op())
	result.SetValueBytes(v.ValueBytes())
	for b := 0; b < P; b++ {
		concatCharged(p, result, have[b])
	}
	return result
}
