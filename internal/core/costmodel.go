package core

import (
	"math"

	"repro/internal/density"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file implements the analytic, level-aware α–β(+contention) cost
// model behind Auto: a closed-form estimate of each allreduce algorithm's
// simulated completion time under the same assumptions the simulator
// charges — per-message latency α, per-byte bandwidth β (scaled by the
// egress serialization factor of every hierarchy level a message escapes,
// see simnet.Hierarchy.SerialFactor), and per-element compute γ. Fill-in
// follows the paper's uniform-support expectation E[K] (§5.2, Figure 7);
// non-uniform (clustered) supports are priced by the Support knob. The
// exact formulas, one per algorithm, are documented in
// docs/ARCHITECTURE.md and must be kept in sync with this file.

// CostScenario describes one allreduce instance for the analytic cost
// model: the agreed problem shape plus the machine it runs on. All byte
// quantities are wire bytes; every Predict result is in simulated seconds.
// Every rank resolving Auto must build an identical scenario (K is the
// globally agreed maximum per-rank non-zero count), so the deterministic
// float arithmetic yields the same choice everywhere.
type CostScenario struct {
	// N is the vector dimension and P the number of ranks; both must be
	// positive.
	N, P int
	// K is the agreed maximum per-rank non-zero count, k = maxᵢ|Hᵢ| of the
	// paper's analysis. Must be in [0, N].
	K int
	// ValueBytes is the wire size of one value in bytes (4 or 8); zero
	// means stream.DefaultValueBytes.
	ValueBytes int
	// Delta is the sparse→dense representation threshold δ in non-zeros;
	// zero means stream.Delta(N, ValueBytes).
	Delta int
	// Profile prices every message on flat worlds and local compute
	// everywhere (γ terms). On hierarchy scenarios it should equal the
	// outermost level's profile, matching comm.NewWorldHier.
	Profile simnet.Profile
	// Topo, when non-nil, prices messages by the two-level topology —
	// shorthand for Hier set to Topo.Hierarchy(), kept for the
	// NewWorldTopo surface.
	Topo *simnet.Topology
	// Hier, when non-nil, prices messages by the N-level machine
	// hierarchy: each message uses the profile of the innermost level its
	// ranks share and pays the egress serialization factor of every level
	// it escapes. Takes precedence over Topo.
	Hier *simnet.Hierarchy
	// Levels caps the hierarchical algorithms' modeled recursion depth,
	// mirroring Options.Levels: 0 prices the full hierarchy; d >= 2 prices
	// the depth-d truncation (ChooseAutoLevels searches the depths).
	Levels int
	// Chunks is the split-phase pipelining degree, mirroring
	// Options.Chunks: values ≤ 1 price the unchunked split phase; C ≥ 2
	// prices the chunk pipeline — C·(P−1) messages of a 1/C slice each,
	// with the k-way merge overlap-discounted behind the send stage (see
	// pipe). The modeled degree is clamped exactly as execution clamps it
	// (clampChunks). The AutoChunks sentinel prices as unchunked here;
	// decision layers that want the model to pick the degree use
	// ChooseChunks / ChooseAutoLevels, which search the candidates.
	Chunks int
	// Quant, when non-nil, prices the dense allgather stage of the DSAR
	// algorithms at the QSGD wire size (Bits/8 + 4/Bucket bytes per
	// element) instead of ValueBytes.
	Quant *quant.Config
	// SmallDataBytes is the rec-double/split wire-size boundary the
	// hierarchical SSAR top phase selects by; zero means
	// DefaultSmallDataBytes. The flat algorithms are priced directly and
	// do not consult it.
	SmallDataBytes int
	// Support selects the index-distribution assumption behind the fill-in
	// expectation E[K]. The default SupportUniform is the paper's
	// worst-case uniform model; SupportClustered uses the blocked hot-set
	// closed form (density.ExpectedKClustered).
	//
	// Validity ranges: on genuinely clustered supports (the `clustered`
	// test pattern: a 10% hot block absorbing 70% of the mass) the
	// clustered form tracks the measured union within ~15%, while the
	// uniform form overestimates it by ~1.65× — enough to flip the δ
	// regime gate toward the dense-result family near the boundary
	// (TestSupportModelGateBoundary pins the band). Conversely, applying
	// SupportClustered to uniform supports *under*estimates E[K] by a
	// comparable factor and flips the gate the other way; neither model is
	// safe to hand-set without knowing the input shape, which is what the
	// internal/adapt ShapeSketch measures at runtime.
	Support SupportModel
	// HotFraction and HotMass parameterize SupportClustered: the fraction
	// of the dimension space forming the shared hot region and the
	// probability mass it absorbs. Zero values default to
	// DefaultHotFraction and DefaultHotMass (the shape of the `clustered`
	// test pattern). Ignored under SupportUniform.
	HotFraction, HotMass float64
	// External, when non-empty, models co-tenant traffic: External[l] flows
	// from other jobs contend at hierarchy level l alongside this job's
	// own, raising every crossed level's egress (and, on ingress-capped
	// hierarchies, ingress) factor. Missing entries mean zero. This is how
	// the cluster simulator's observed per-level activity feeds placement
	// and per-job Auto decisions; empty External prices the job as the sole
	// tenant, exactly as before.
	External []int
}

// SupportModel selects how the cost model estimates fill-in E[K] from the
// per-rank non-zero count.
type SupportModel int

const (
	// SupportUniform assumes uniformly drawn supports
	// (density.ExpectedKUniform) — the paper's worst case for fill-in.
	SupportUniform SupportModel = iota
	// SupportClustered assumes blocked hot-set supports
	// (density.ExpectedKClustered), matching real gradient index
	// distributions where a shared hot region absorbs most of the mass.
	SupportClustered
)

// DefaultHotFraction is the SupportClustered hot-region size as a fraction
// of the dimension space, matching the `clustered` test pattern.
const DefaultHotFraction = 0.1

// DefaultHotMass is the SupportClustered probability mass the hot region
// absorbs, matching the `clustered` test pattern.
const DefaultHotMass = 0.7

// PredictSeconds returns the modeled completion time in simulated seconds
// of one allreduce under the scenario. Supported algorithms are the Auto
// candidates: SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather,
// HierSSAR, and HierDSAR (the hierarchical two — priced at the scenario's
// Levels depth — degrade to their flat counterparts when the scenario has
// no exploitable hierarchy); other algorithms panic. The estimate tracks
// the simulator's charging rules on uniform supports and is intended for
// ranking algorithms, not for exact time prediction.
func PredictSeconds(alg Algorithm, s CostScenario) float64 {
	if s.N <= 0 || s.P <= 0 || s.K < 0 {
		panic("core: CostScenario needs N > 0, P > 0, K >= 0")
	}
	switch alg {
	case SSARRecDouble:
		return s.predictRecDouble()
	case SSARSplitAllgather:
		return s.predictSplitAllgather()
	case DSARSplitAllgather:
		return s.predictDSAR()
	case HierSSAR:
		h, L, ok := s.hierAt()
		if !ok {
			return s.predictSplitAllgather()
		}
		return s.predictHierSSAR(h, L)
	case HierDSAR:
		h, L, ok := s.hierAt()
		if !ok {
			return s.predictDSAR()
		}
		return s.predictHierDSAR(h, L)
	default:
		panic("core: no cost model for " + alg.String())
	}
}

// ChooseAuto returns the algorithm Auto resolves to under the scenario;
// see ChooseAutoLevels for the depth and chunk count it pairs with it.
func ChooseAuto(s CostScenario) Algorithm {
	alg, _, _ := ChooseAutoLevels(s)
	return alg
}

// ChooseAutoLevels returns the algorithm Auto resolves to under the
// scenario together with the hierarchy depth the hierarchical algorithms
// should run at (0 for flat choices) and the split-phase chunk count the
// winner should pipeline at (1 when the scenario does not opt into the
// chunk search). The paper's δ gate first fixes the result
// representation — expected fill-in E[K] ≥ δ means the reduced vector
// densifies, so only the DSAR family (which also honors quantization) is
// eligible; below δ only the sparse-result SSAR family is. Within the
// regime the candidates — the flat algorithm plus, when the machine
// hierarchy is exploitable, the hierarchical algorithm at every usable
// depth from 2 tiers up to the full hierarchy — are priced by
// PredictSeconds and the cheapest wins (ties keep the earliest candidate:
// flat before hierarchical, shallower before deeper). When the scenario's
// Chunks is the AutoChunks sentinel, each candidate is priced at its
// ChooseChunks-best pipelining degree and the returned chunk count is the
// winner's; any other Chunks value is passed through unchanged, so the
// default 0 prices every candidate unchunked exactly as before.
func ChooseAutoLevels(s CostScenario) (Algorithm, int, int) {
	type cand struct {
		alg    Algorithm
		levels int
	}
	var candidates []cand
	var depths []int
	if h, ok := s.hierarchy(); ok {
		for d := 2; d <= hierDepth(h, s.Levels); d++ {
			if hierExploitable(h, d, s.P) {
				depths = append(depths, d)
			}
		}
	}
	if s.fill(s.P) >= float64(s.deltaOr()) {
		candidates = append(candidates, cand{DSARSplitAllgather, 0})
		for _, d := range depths {
			candidates = append(candidates, cand{HierDSAR, d})
		}
	} else {
		candidates = append(candidates, cand{SSARRecDouble, 0}, cand{SSARSplitAllgather, 0})
		for _, d := range depths {
			candidates = append(candidates, cand{HierSSAR, d})
		}
	}
	best, bestChunks, bestT := candidates[0], s.Chunks, math.Inf(1)
	for _, c := range candidates {
		sc := s
		sc.Levels = c.levels
		if s.Chunks == AutoChunks {
			sc.Chunks = ChooseChunks(c.alg, sc)
		}
		if t := PredictSeconds(c.alg, sc); t < bestT {
			best, bestChunks, bestT = c, sc.Chunks, t
		}
	}
	return best.alg, best.levels, bestChunks
}

// chunkCandidates are the pipelining degrees the chunk search prices.
// Unchunked is first so strict-< ties keep it; the powers of two match the
// documented Options.Chunks sweet spot and the BENCH_7 validation cells.
var chunkCandidates = [...]int{1, 2, 4, 8}

// ChooseChunks returns the split-phase chunk count the cost model picks
// for one algorithm under the scenario (at the scenario's Levels depth):
// each candidate degree in chunkCandidates is priced by PredictSeconds
// with CostScenario.Chunks pinned to it and the strictly cheapest wins,
// so ties keep the smaller count and algorithms whose price ignores
// Chunks (the rec-double family, or a hier top phase that resolves to
// rec-double) return 1. Like every Auto decision the result depends only
// on the agreed scenario, so all ranks pick the same degree.
func ChooseChunks(alg Algorithm, s CostScenario) int {
	switch alg {
	case SSARSplitAllgather, DSARSplitAllgather, HierSSAR, HierDSAR:
	default:
		return 1
	}
	best, bestT := 1, math.Inf(1)
	for _, c := range chunkCandidates {
		sc := s
		sc.Chunks = c
		if t := PredictSeconds(alg, sc); t < bestT {
			best, bestT = c, t
		}
	}
	return best
}

func (s CostScenario) valueBytesOr() int {
	if s.ValueBytes == 0 {
		return stream.DefaultValueBytes
	}
	return s.ValueBytes
}

func (s CostScenario) deltaOr() int {
	if s.Delta == 0 {
		return stream.Delta(s.N, s.valueBytesOr())
	}
	return s.Delta
}

func (s CostScenario) smallOr() int {
	if s.SmallDataBytes == 0 {
		return DefaultSmallDataBytes
	}
	return s.SmallDataBytes
}

// hierarchy returns the scenario's machine hierarchy: Hier when set,
// otherwise the two-level hierarchy of Topo.
func (s CostScenario) hierarchy() (simnet.Hierarchy, bool) {
	if s.Hier != nil {
		return *s.Hier, true
	}
	if s.Topo != nil {
		return s.Topo.Hierarchy(), true
	}
	return simnet.Hierarchy{}, false
}

// hierAt resolves the hierarchy and the effective recursion depth of the
// hierarchical algorithms under the scenario's Levels cap, reporting false
// when no exploitable hierarchy remains.
func (s CostScenario) hierAt() (simnet.Hierarchy, int, bool) {
	h, ok := s.hierarchy()
	if !ok {
		return h, 0, false
	}
	L := hierDepth(h, s.Levels)
	return h, L, hierExploitable(h, L, s.P)
}

// fill returns E[K] for the union of `groups` rank supports under the
// scenario's support model, capped at P groups and N entries.
func (s CostScenario) fill(groups int) float64 {
	if groups > s.P {
		groups = s.P
	}
	if groups < 1 || s.K == 0 {
		return 0
	}
	if s.Support == SupportClustered {
		hf, hm := s.HotFraction, s.HotMass
		if hf == 0 {
			hf = DefaultHotFraction
		}
		if hm == 0 {
			hm = DefaultHotMass
		}
		return density.ExpectedKClustered(s.N, s.K, groups, hf, hm)
	}
	return density.ExpectedKUniform(s.N, s.K, groups)
}

// wire returns the modeled wire bytes of a stream holding k non-zeros in
// the representation it would actually be in: sparse pairs below δ, dense
// past it (§5.1).
func (s CostScenario) wire(k float64) float64 {
	if k > float64(s.deltaOr()) {
		return float64(stream.HeaderBytes) + float64(s.N)*float64(s.valueBytesOr())
	}
	return float64(stream.HeaderBytes) + k*float64(stream.IndexBytes+s.valueBytesOr())
}

// densePerElem returns the dense-allgather wire bytes per element: the
// value size, or the amortized QSGD size when quantization is configured.
func (s CostScenario) densePerElem() float64 {
	if s.Quant == nil {
		return float64(s.valueBytesOr())
	}
	bucket := s.Quant.Bucket
	if bucket < 1 {
		bucket = 1
	}
	return float64(s.Quant.Bits)/8 + 4/float64(bucket)
}

// modelMsg prices one message: α + overhead + (β+βsw)·bytes·factor, the
// float-bytes twin of Profile.ContendedTransferTime.
func modelMsg(prof simnet.Profile, bytes, factor float64) float64 {
	return prof.Alpha + prof.SoftwareOverhead +
		(prof.BetaPerByte+prof.SoftwarePerByte)*bytes*factor
}

// spanCapped returns the level-l group span clipped to the world size.
func (s CostScenario) spanCapped(h simnet.Hierarchy, l int) int {
	span := h.Span(l)
	if span > s.P {
		span = s.P
	}
	return span
}

// ext returns the modeled external (co-tenant) flow count at level l.
func (s CostScenario) ext(l int) int {
	if l < len(s.External) {
		return s.External[l]
	}
	return 0
}

// levelFactor returns the contention factor one flow pays crossing level l
// when `own` of this job's flows share the group's boundary: the egress
// serialization factor for own plus External co-tenant flows, times the
// matching ingress factor on ingress-capped levels (1 elsewhere, so
// sole-tenant scenarios on cap-free hierarchies price exactly as before).
func (s CostScenario) levelFactor(h simnet.Hierarchy, l, own int) float64 {
	active := own + s.ext(l)
	if active < 1 {
		active = 1
	}
	return h.SerialFactor(l, active) * h.IngressFactor(l, active)
}

// link returns the profile and egress contention factor pricing an
// exchange at rank distance `dist` when the whole world communicator is
// active: the profile of the innermost level spanning the distance, times
// each crossed level's serialization factor with all of the sender's
// group-mates contending.
func (s CostScenario) link(dist int) (simnet.Profile, float64) {
	h, ok := s.hierarchy()
	if !ok {
		return s.Profile, 1
	}
	l := 0
	for l < h.Depth()-1 && dist >= h.Span(l) {
		l++
	}
	f := 1.0
	for j := 0; j < l; j++ {
		f *= s.levelFactor(h, j, s.spanCapped(h, j))
	}
	return h.Levels[l].Profile, f
}

// topLink returns the profile and contention factor pricing a top-phase
// exchange between leaders `d` leader-slots apart when the leaders are one
// per `stride` ranks: the communicator places ⌈span/stride⌉ ranks in each
// crossed level's group, so a full-depth top phase (stride = the outermost
// grouped span) pays factor 1 while a truncated one still pays the caps of
// the levels it ignores — the cost that makes deeper recursion win.
func (s CostScenario) topLink(h simnet.Hierarchy, d, stride int) (simnet.Profile, float64) {
	dist := d * stride
	l := 0
	for l < h.Depth()-1 && dist >= h.Span(l) {
		l++
	}
	f := 1.0
	for j := 0; j < l; j++ {
		active := (s.spanCapped(h, j) + stride - 1) / stride
		if active < 1 {
			active = 1
		}
		f *= s.levelFactor(h, j, active)
	}
	return h.Levels[l].Profile, f
}

// mergeCost prices combining `pairs` sparse index–value pairs, or one
// dense pass over the vector when the accumulation has densified.
func (s CostScenario) mergeCost(pairs float64, dense bool) float64 {
	if dense {
		return s.Profile.GammaPerElem * float64(s.N)
	}
	return s.Profile.GammaPerElem * s.Profile.SparseComputeFactor * pairs
}

// chunksOr returns the pipelining degree the scenario actually prices: the
// requested Chunks clamped exactly as execution clamps it. The AutoChunks
// sentinel prices as unchunked (the search layers resolve it first).
func (s CostScenario) chunksOr() int {
	return clampChunks(s.Chunks, s.N, s.P)
}

// topChunks is chunksOr for the hierarchical top phase, where the split
// runs over the m leaders instead of the full world.
func (s CostScenario) topChunks(m int) int {
	return clampChunks(s.Chunks, s.N, m)
}

// pipe returns the completion time of the two-stage chunk pipeline: C
// chunks flow through a send stage costing S in total and a merge stage
// costing M in total. The stages overlap perfectly except that the first
// (equivalently last) chunk must still traverse the non-bottleneck stage,
// so completion is max(S, M) + min(S, M)/C — the overlap-discounted merge
// term of the model. At C = 1 this degrades to S + M, but callers keep the
// literal unchunked accumulation on that path so the float ordering (and
// hence every replica-consistent Auto decision) is bit-identical to the
// pre-pipelining model.
func pipe(S, M float64, C int) float64 {
	if M > S {
		S, M = M, S
	}
	return S + M/float64(C)
}

// predictRecDouble prices SSAR_Recursive_double: log2(P) exchange+merge
// stages whose payload is the accumulated union E[K_d], plus — on
// non-power-of-two worlds — the fold of the excess ranks onto the first
// ones (their input in, the full result back, at rank distance 2^⌊log2 P⌋).
func (s CostScenario) predictRecDouble() float64 {
	t := 0.0
	p2 := largestPow2(s.P)
	if s.P > p2 {
		prof, f := s.link(p2)
		t += modelMsg(prof, s.wire(float64(s.K)), f)
		t += s.mergeCost(2*float64(s.K), s.fill(2) > float64(s.deltaOr()))
	}
	for d := 1; d < p2; d *= 2 {
		kt := s.fill(d)
		prof, f := s.link(d)
		t += modelMsg(prof, s.wire(kt), f)
		t += s.mergeCost(2*kt, s.fill(2*d) > float64(s.deltaOr()))
	}
	if s.P > p2 {
		prof, f := s.link(p2)
		t += modelMsg(prof, s.wire(s.fill(s.P)), f)
	}
	return t
}

// splitSendCost prices the direct-exchange half of the split phase:
// perDest messages to each of the P−1 other ranks, each carrying `slice`
// non-zeros — serialized at the sender, which is the (P−1)·perDest·α
// term — bucketed by the hierarchy level each destination sits at (each
// bucket paying the egress factors of the levels it crosses). The caller
// adds the k-way merge separately. perDest = 1 with the full K/P slice
// reproduces the unchunked split phase; the chunked caller passes
// perDest = C with a slice/C payload.
func (s CostScenario) splitSendCost(perDest int, slice float64) float64 {
	t := 0.0
	if h, ok := s.hierarchy(); ok {
		prev := 1
		f := 1.0
		for l := 0; l < h.Depth(); l++ {
			span := s.spanCapped(h, l)
			if cnt := span - prev; cnt > 0 {
				t += float64(cnt*perDest) * modelMsg(h.Levels[l].Profile, s.wire(slice), f)
			}
			if span >= s.P {
				break
			}
			f *= s.levelFactor(h, l, span)
			prev = span
		}
	} else {
		t += float64((s.P-1)*perDest) * modelMsg(s.Profile, s.wire(slice), 1)
	}
	return t
}

// splitPhaseCost prices the shared split phase: P−1 direct sends of one
// dimension-partition slice (≈ K/P non-zeros) each — serialized at the
// sender, which is the (P−1)·α term — bucketed by the hierarchy level each
// destination sits at (each bucket paying the egress factors of the levels
// it crosses), plus the single k-way merge reducing this rank's partition:
// every received pair is touched once, so the charge is the P·K/P ≈ K
// total input pairs rather than the chained two-way merges' Σᵢ(|accᵢ|+|Hᵢ|).
// At Chunks ≥ 2 the phase is the chunk pipeline instead: C·(P−1) sends of
// a 1/C slice each (more α, same β volume) with the merge
// overlap-discounted behind the send stage per pipe.
func (s CostScenario) splitPhaseCost() float64 {
	slice := float64(s.K) / float64(s.P)
	if C := s.chunksOr(); C > 1 {
		S := s.splitSendCost(C, slice/float64(C))
		M := s.mergeCost(float64(s.P)*slice, false)
		return pipe(S, M, C)
	}
	t := s.splitSendCost(1, slice)
	t += s.mergeCost(float64(s.P)*slice, false)
	return t
}

// predictSplitAllgather prices SSAR_Split_allgather: the split phase plus
// a concatenating sparse allgather whose payload doubles each stage up to
// the reduced size E[K_P] (with the non-power-of-two fold in and out of
// the allgather priced like predictRecDouble's).
func (s CostScenario) predictSplitAllgather() float64 {
	t := s.splitPhaseCost()
	p2 := largestPow2(s.P)
	part := s.fill(s.P) / float64(p2)
	if s.P > p2 {
		slice := s.fill(s.P) / float64(s.P)
		prof, f := s.link(p2)
		t += modelMsg(prof, s.wire(slice), f)
		t += s.mergeCost(2*slice, false)
	}
	for d := 1; d < p2; d *= 2 {
		kt := part * float64(d)
		prof, f := s.link(d)
		t += modelMsg(prof, s.wire(kt), f)
		t += s.mergeCost(2*kt, 2*kt > float64(s.deltaOr()))
	}
	if s.P > p2 {
		prof, f := s.link(p2)
		t += modelMsg(prof, s.wire(s.fill(s.P)), f)
	}
	return t
}

// predictDSAR prices DSAR_Split_allgather: the sparse split phase, a
// densify pass over the local partition (plus QSGD encode/decode passes
// when quantizing), and a dense allgather whose per-stage volume doubles.
func (s CostScenario) predictDSAR() float64 {
	t := s.splitPhaseCost()
	g := s.Profile.GammaPerElem
	block := float64(s.N) / float64(s.P)
	t += g * block // densify the owned partition
	if s.Quant != nil {
		t += g*block + g*float64(s.N) // encode own block, decode all
	}
	p2 := largestPow2(s.P)
	if s.P > p2 {
		prof, f := s.link(p2)
		t += modelMsg(prof, block*s.densePerElem()+float64(stream.HeaderBytes), f)
	}
	for d := 1; d < p2; d *= 2 {
		bytes := float64(d)*(float64(s.N)/float64(p2))*s.densePerElem() + float64(stream.HeaderBytes)
		prof, f := s.link(d)
		t += modelMsg(prof, bytes, f)
	}
	if s.P > p2 {
		prof, f := s.link(p2)
		t += modelMsg(prof, float64(s.N)*s.densePerElem()+float64(stream.HeaderBytes), f)
	}
	return t
}

// stageChildren returns the participant count of the level-l up-sweep
// stage (leaders of level-(l-1) subgroups per level-l group, nominal
// shape) and the rank span each participant already aggregates.
func (s CostScenario) stageChildren(h simnet.Hierarchy, l int) (c, base int) {
	base = 1
	if l > 0 {
		base = h.Span(l - 1)
	}
	span := s.spanCapped(h, l)
	return (span + base - 1) / base, base
}

// stageReduceCost prices the level-l up-sweep stage of the recursive
// hierarchical schemes: a binomial-tree sparse reduce of the level's
// participants to the group leader — ⌈log2 c⌉ rounds on the level's
// profile with payloads growing as the union E[K_(d·base)] of the ranks
// already aggregated below. One participant per subgroup drives the
// exchange, so no egress factor applies.
func (s CostScenario) stageReduceCost(h simnet.Hierarchy, l int) float64 {
	c, base := s.stageChildren(h, l)
	t := 0.0
	for d := 1; d < c; d *= 2 {
		kt := s.fill(d * base)
		t += modelMsg(h.Levels[l].Profile, s.wire(kt), 1)
		t += s.mergeCost(2*kt, s.fill(2*d*base) > float64(s.deltaOr()))
	}
	return t
}

// stageBcastCost prices the level-l down-sweep stage: the binomial-tree
// broadcast of the final result (wire size `bytes`) to the level's
// participants — ⌈log2 c⌉ sequential hops on the critical path.
func (s CostScenario) stageBcastCost(h simnet.Hierarchy, l int, bytes float64) float64 {
	c, _ := s.stageChildren(h, l)
	rounds := 0
	for d := 1; d < c; d *= 2 {
		rounds++
	}
	return float64(rounds) * modelMsg(h.Levels[l].Profile, bytes, 1)
}

// topSplitSendCost prices the direct-exchange half of a top-phase split
// over m leaders (one per `stride` ranks): perDest sends to each of the
// m−1 other leaders, each carrying `slice` non-zeros, bucketed by the
// innermost level spanning each destination, every bucket paying the
// egress factors of the levels it crosses with one contending flow per
// co-located leader. The caller adds the k-way merge of the m slices
// separately; perDest = 1 is the unchunked phase, perDest = C with a
// slice/C payload the chunked one.
func (s CostScenario) topSplitSendCost(h simnet.Hierarchy, m, stride int, slice float64, perDest int) float64 {
	t := 0.0
	prev := 1
	f := 1.0
	for l := 0; l < h.Depth(); l++ {
		span := s.spanCapped(h, l)
		if span <= stride {
			continue // one leader per group here and below: no destinations
		}
		u := (span + stride - 1) / stride // leaders per level-l group
		if u > m {
			u = m
		}
		if cnt := u - prev; cnt > 0 {
			t += float64(cnt*perDest) * modelMsg(h.Levels[l].Profile, s.wire(slice), f)
		}
		if u >= m {
			break
		}
		f *= s.levelFactor(h, l, u)
		prev = u
	}
	return t
}

// predictHierSSAR prices the recursive SSAR_Hierarchical at depth L:
// per-level up-sweep reduces, a top-phase sparse allreduce among the
// level-(L-2) leaders (rec-double or split allgather by the same wire-size
// rule the implementation applies), and the mirrored down-sweep broadcast.
func (s CostScenario) predictHierSSAR(h simnet.Hierarchy, L int) float64 {
	stride := h.Span(L - 2)
	m := (s.P + stride - 1) / stride
	t := 0.0
	for l := 0; l <= L-2; l++ {
		t += s.stageReduceCost(h, l)
	}
	kp := s.fill(stride) // per-leader non-zeros after the up sweep
	wireK := stream.HeaderBytes + int(kp)*(stream.IndexBytes+s.valueBytesOr())
	p2m := largestPow2(m)
	if wireK <= s.smallOr() {
		// Top-phase recursive doubling: payload is the union of stride·d
		// inputs, with the non-power-of-two leader fold in and out.
		if m > p2m {
			prof, f := s.topLink(h, p2m, stride)
			t += modelMsg(prof, s.wire(kp), f)
			t += s.mergeCost(2*kp, s.fill(2*stride) > float64(s.deltaOr()))
		}
		for d := 1; d < p2m; d *= 2 {
			groups := (stride*d*m + p2m - 1) / p2m // folded leaders aggregate m/p2m inputs
			kt := s.fill(groups)
			prof, f := s.topLink(h, d, stride)
			t += modelMsg(prof, s.wire(kt), f)
			t += s.mergeCost(2*kt, s.fill(2*groups) > float64(s.deltaOr()))
		}
		if m > p2m {
			prof, f := s.topLink(h, p2m, stride)
			t += modelMsg(prof, s.wire(s.fill(s.P)), f)
		}
	} else {
		// Top-phase split allgather over m partitions (k-way merge: the m
		// slices of one leader partition are touched once each), pipelined
		// like splitPhaseCost when the scenario chunks.
		slice := kp / float64(m)
		part := s.fill(s.P) / float64(p2m)
		if C := s.topChunks(m); C > 1 {
			S := s.topSplitSendCost(h, m, stride, slice/float64(C), C)
			t += pipe(S, s.mergeCost(float64(m)*slice, false), C)
		} else {
			t += s.topSplitSendCost(h, m, stride, slice, 1)
			t += s.mergeCost(float64(m)*slice, false)
		}
		if m > p2m {
			fslice := s.fill(s.P) / float64(m)
			prof, f := s.topLink(h, p2m, stride)
			t += modelMsg(prof, s.wire(fslice), f)
			t += s.mergeCost(2*fslice, false)
		}
		for d := 1; d < p2m; d *= 2 {
			kt := part * float64(d)
			prof, f := s.topLink(h, d, stride)
			t += modelMsg(prof, s.wire(kt), f)
			t += s.mergeCost(2*kt, 2*kt > float64(s.deltaOr()))
		}
		if m > p2m {
			prof, f := s.topLink(h, p2m, stride)
			t += modelMsg(prof, s.wire(s.fill(s.P)), f)
		}
	}
	bytes := s.wire(s.fill(s.P))
	for l := L - 2; l >= 0; l-- {
		t += s.stageBcastCost(h, l, bytes)
	}
	return t
}

// predictHierDSAR prices the recursive DSAR_Hierarchical at depth L:
// per-level up-sweep reduces, a top-phase DSAR over the m leader
// partitions (sparse split, densify, dense/quantized allgather), and the
// down-sweep broadcast of the dense result.
func (s CostScenario) predictHierDSAR(h simnet.Hierarchy, L int) float64 {
	stride := h.Span(L - 2)
	m := (s.P + stride - 1) / stride
	t := 0.0
	for l := 0; l <= L-2; l++ {
		t += s.stageReduceCost(h, l)
	}
	kp := s.fill(stride)
	slice := kp / float64(m)
	if C := s.topChunks(m); C > 1 {
		S := s.topSplitSendCost(h, m, stride, slice/float64(C), C)
		t += pipe(S, s.mergeCost(float64(m)*slice, false), C)
	} else {
		t += s.topSplitSendCost(h, m, stride, slice, 1)
		t += s.mergeCost(float64(m)*slice, false)
	}
	g := s.Profile.GammaPerElem
	block := float64(s.N) / float64(m)
	t += g * block
	if s.Quant != nil {
		t += g*block + g*float64(s.N)
	}
	p2m := largestPow2(m)
	if m > p2m {
		prof, f := s.topLink(h, p2m, stride)
		t += modelMsg(prof, block*s.densePerElem()+float64(stream.HeaderBytes), f)
	}
	for d := 1; d < p2m; d *= 2 {
		bytes := float64(d)*(float64(s.N)/float64(p2m))*s.densePerElem() + float64(stream.HeaderBytes)
		prof, f := s.topLink(h, d, stride)
		t += modelMsg(prof, bytes, f)
	}
	if m > p2m {
		prof, f := s.topLink(h, p2m, stride)
		t += modelMsg(prof, float64(s.N)*s.densePerElem()+float64(stream.HeaderBytes), f)
	}
	dense := float64(stream.HeaderBytes) + float64(s.N)*float64(s.valueBytesOr())
	for l := L - 2; l >= 0; l-- {
		t += s.stageBcastCost(h, l, dense)
	}
	return t
}
