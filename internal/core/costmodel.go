package core

import (
	"math"

	"repro/internal/density"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file implements the analytic α–β(+NIC) cost model behind Auto: a
// closed-form estimate of each allreduce algorithm's simulated completion
// time under the same assumptions the simulator charges — per-message
// latency α, per-byte bandwidth β (scaled by the per-node NIC contention
// factor for inter-node messages, see simnet.Topology.NICFactor), and
// per-element compute γ. Fill-in follows the paper's uniform-support
// expectation E[K] (§5.2, Figure 7); non-uniform (clustered) supports are
// a known overestimate tracked in ROADMAP.md. The exact formulas, one per
// algorithm, are documented in docs/ARCHITECTURE.md and must be kept in
// sync with this file.

// CostScenario describes one allreduce instance for the analytic cost
// model: the agreed problem shape plus the network it runs on. All byte
// quantities are wire bytes; every Predict result is in simulated seconds.
// Every rank resolving Auto must build an identical scenario (K is the
// globally agreed maximum per-rank non-zero count), so the deterministic
// float arithmetic yields the same choice everywhere.
type CostScenario struct {
	// N is the vector dimension and P the number of ranks; both must be
	// positive.
	N, P int
	// K is the agreed maximum per-rank non-zero count, k = maxᵢ|Hᵢ| of the
	// paper's analysis. Must be in [0, N].
	K int
	// ValueBytes is the wire size of one value in bytes (4 or 8); zero
	// means stream.DefaultValueBytes.
	ValueBytes int
	// Delta is the sparse→dense representation threshold δ in non-zeros;
	// zero means stream.Delta(N, ValueBytes).
	Delta int
	// Profile prices every message on flat worlds and local compute
	// everywhere (γ terms). On topology scenarios it should equal
	// Topo.Inter, matching comm.NewWorldTopo.
	Profile simnet.Profile
	// Topo, when non-nil, prices messages by node locality (rank distance
	// below RanksPerNode is intra-node) and applies the NICSerial
	// contention factor to inter-node bandwidth.
	Topo *simnet.Topology
	// Quant, when non-nil, prices the dense allgather stage of the DSAR
	// algorithms at the QSGD wire size (Bits/8 + 4/Bucket bytes per
	// element) instead of ValueBytes.
	Quant *quant.Config
	// SmallDataBytes is the rec-double/split wire-size boundary HierSSAR's
	// leader phase selects by; zero means DefaultSmallDataBytes. The flat
	// algorithms are priced directly and do not consult it.
	SmallDataBytes int
	// Support selects the index-distribution assumption behind the fill-in
	// expectation E[K]. The default SupportUniform is the paper's
	// worst-case uniform model; SupportClustered uses the blocked hot-set
	// closed form (density.ExpectedKClustered), which avoids the uniform
	// model's systematic E[K] overestimate on clustered gradient supports.
	Support SupportModel
	// HotFraction and HotMass parameterize SupportClustered: the fraction
	// of the dimension space forming the shared hot region and the
	// probability mass it absorbs. Zero values default to
	// DefaultHotFraction and DefaultHotMass (the shape of the `clustered`
	// test pattern). Ignored under SupportUniform.
	HotFraction, HotMass float64
}

// SupportModel selects how the cost model estimates fill-in E[K] from the
// per-rank non-zero count.
type SupportModel int

const (
	// SupportUniform assumes uniformly drawn supports
	// (density.ExpectedKUniform) — the paper's worst case for fill-in.
	SupportUniform SupportModel = iota
	// SupportClustered assumes blocked hot-set supports
	// (density.ExpectedKClustered), matching real gradient index
	// distributions where a shared hot region absorbs most of the mass.
	SupportClustered
)

// DefaultHotFraction is the SupportClustered hot-region size as a fraction
// of the dimension space, matching the `clustered` test pattern.
const DefaultHotFraction = 0.1

// DefaultHotMass is the SupportClustered probability mass the hot region
// absorbs, matching the `clustered` test pattern.
const DefaultHotMass = 0.7

// PredictSeconds returns the modeled completion time in simulated seconds
// of one allreduce under the scenario. Supported algorithms are the Auto
// candidates: SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather,
// HierSSAR, and HierDSAR (the hierarchical two degrade to their flat
// counterparts when the scenario has no exploitable topology); other
// algorithms panic. The estimate tracks the simulator's charging rules on
// uniform supports and is intended for ranking algorithms, not for exact
// time prediction.
func PredictSeconds(alg Algorithm, s CostScenario) float64 {
	if s.N <= 0 || s.P <= 0 || s.K < 0 {
		panic("core: CostScenario needs N > 0, P > 0, K >= 0")
	}
	switch alg {
	case SSARRecDouble:
		return s.predictRecDouble()
	case SSARSplitAllgather:
		return s.predictSplitAllgather()
	case DSARSplitAllgather:
		return s.predictDSAR()
	case HierSSAR:
		if !s.hier() {
			return s.predictSplitAllgather()
		}
		return s.predictHierSSAR()
	case HierDSAR:
		if !s.hier() {
			return s.predictDSAR()
		}
		return s.predictHierDSAR()
	default:
		panic("core: no cost model for " + alg.String())
	}
}

// ChooseAuto returns the algorithm Auto resolves to under the scenario.
// The paper's δ gate first fixes the result representation — expected
// fill-in E[K] ≥ δ means the reduced vector densifies, so only the DSAR
// family (which also honors quantization) is eligible; below δ only the
// sparse-result SSAR family is. Within the regime the candidates —
// including the hierarchical variants when the topology has more than one
// node and more than one rank per node — are priced by PredictSeconds and
// the cheapest wins (ties keep the earliest candidate, flat before
// hierarchical).
func ChooseAuto(s CostScenario) Algorithm {
	var candidates []Algorithm
	if s.fill(s.P) >= float64(s.deltaOr()) {
		candidates = []Algorithm{DSARSplitAllgather}
		if s.hier() {
			candidates = append(candidates, HierDSAR)
		}
	} else {
		candidates = []Algorithm{SSARRecDouble, SSARSplitAllgather}
		if s.hier() {
			candidates = append(candidates, HierSSAR)
		}
	}
	best, bestT := candidates[0], math.Inf(1)
	for _, alg := range candidates {
		if t := PredictSeconds(alg, s); t < bestT {
			best, bestT = alg, t
		}
	}
	return best
}

func (s CostScenario) valueBytesOr() int {
	if s.ValueBytes == 0 {
		return stream.DefaultValueBytes
	}
	return s.ValueBytes
}

func (s CostScenario) deltaOr() int {
	if s.Delta == 0 {
		return stream.Delta(s.N, s.valueBytesOr())
	}
	return s.Delta
}

func (s CostScenario) smallOr() int {
	if s.SmallDataBytes == 0 {
		return DefaultSmallDataBytes
	}
	return s.SmallDataBytes
}

// hier reports whether the scenario has a topology the hierarchical
// algorithms can exploit (more than one rank per node, more than one node).
func (s CostScenario) hier() bool {
	return s.Topo != nil && s.Topo.RanksPerNode > 1 && s.Topo.RanksPerNode < s.P
}

// fill returns E[K] for the union of `groups` rank supports under the
// scenario's support model, capped at P groups and N entries.
func (s CostScenario) fill(groups int) float64 {
	if groups > s.P {
		groups = s.P
	}
	if groups < 1 || s.K == 0 {
		return 0
	}
	if s.Support == SupportClustered {
		hf, hm := s.HotFraction, s.HotMass
		if hf == 0 {
			hf = DefaultHotFraction
		}
		if hm == 0 {
			hm = DefaultHotMass
		}
		return density.ExpectedKClustered(s.N, s.K, groups, hf, hm)
	}
	return density.ExpectedKUniform(s.N, s.K, groups)
}

// wire returns the modeled wire bytes of a stream holding k non-zeros in
// the representation it would actually be in: sparse pairs below δ, dense
// past it (§5.1).
func (s CostScenario) wire(k float64) float64 {
	if k > float64(s.deltaOr()) {
		return float64(stream.HeaderBytes) + float64(s.N)*float64(s.valueBytesOr())
	}
	return float64(stream.HeaderBytes) + k*float64(stream.IndexBytes+s.valueBytesOr())
}

// densePerElem returns the dense-allgather wire bytes per element: the
// value size, or the amortized QSGD size when quantization is configured.
func (s CostScenario) densePerElem() float64 {
	if s.Quant == nil {
		return float64(s.valueBytesOr())
	}
	bucket := s.Quant.Bucket
	if bucket < 1 {
		bucket = 1
	}
	return float64(s.Quant.Bits)/8 + 4/float64(bucket)
}

// modelMsg prices one message: α + overhead + (β+βsw)·bytes·factor, the
// float-bytes twin of Profile.ContendedTransferTime.
func modelMsg(prof simnet.Profile, bytes, factor float64) float64 {
	return prof.Alpha + prof.SoftwareOverhead +
		(prof.BetaPerByte+prof.SoftwarePerByte)*bytes*factor
}

// link returns the profile and NIC contention factor pricing an exchange
// at rank distance `dist` when the whole world communicator is active:
// intra-node (factor 1) below RanksPerNode, inter-node with all node-mates
// contending otherwise.
func (s CostScenario) link(dist int) (simnet.Profile, float64) {
	if s.Topo == nil {
		return s.Profile, 1
	}
	if dist < s.Topo.RanksPerNode {
		return s.Topo.Intra, 1
	}
	active := s.Topo.RanksPerNode
	if active > s.P {
		active = s.P
	}
	return s.Topo.Inter, s.Topo.NICFactor(active)
}

// interLeader returns the inter-node profile with the leader-phase
// contention factor: one active rank per node, hence factor 1.
func (s CostScenario) interLeader() simnet.Profile {
	if s.Topo == nil {
		return s.Profile
	}
	return s.Topo.Inter
}

// mergeCost prices combining `pairs` sparse index–value pairs, or one
// dense pass over the vector when the accumulation has densified.
func (s CostScenario) mergeCost(pairs float64, dense bool) float64 {
	if dense {
		return s.Profile.GammaPerElem * float64(s.N)
	}
	return s.Profile.GammaPerElem * s.Profile.SparseComputeFactor * pairs
}

// predictRecDouble prices SSAR_Recursive_double: log2(P) exchange+merge
// stages whose payload is the accumulated union E[K_d].
func (s CostScenario) predictRecDouble() float64 {
	t := 0.0
	for d := 1; d < s.P; d *= 2 {
		kt := s.fill(d)
		prof, f := s.link(d)
		t += modelMsg(prof, s.wire(kt), f)
		t += s.mergeCost(2*kt, s.fill(2*d) > float64(s.deltaOr()))
	}
	return t
}

// splitPhaseCost prices the shared split phase: P−1 direct sends of one
// dimension-partition slice (≈ K/P non-zeros) each — serialized at the
// sender, which is the (P−1)·α term — plus the single k-way merge
// reducing this rank's partition: every received pair is touched once, so
// the charge is the P·K/P ≈ K total input pairs rather than the chained
// two-way merges' Σᵢ(|accᵢ|+|Hᵢ|).
func (s CostScenario) splitPhaseCost() float64 {
	slice := float64(s.K) / float64(s.P)
	t := 0.0
	if s.Topo != nil {
		rpn := s.Topo.RanksPerNode
		if rpn > s.P {
			rpn = s.P
		}
		_, f := s.link(rpn) // inter-node, all ranks active
		t += float64(rpn-1) * modelMsg(s.Topo.Intra, s.wire(slice), 1)
		t += float64(s.P-rpn) * modelMsg(s.Topo.Inter, s.wire(slice), f)
	} else {
		t += float64(s.P-1) * modelMsg(s.Profile, s.wire(slice), 1)
	}
	t += s.mergeCost(float64(s.P)*slice, false)
	return t
}

// predictSplitAllgather prices SSAR_Split_allgather: the split phase plus
// a concatenating sparse allgather whose payload doubles each stage up to
// the reduced size E[K_P].
func (s CostScenario) predictSplitAllgather() float64 {
	t := s.splitPhaseCost()
	part := s.fill(s.P) / float64(s.P)
	for d := 1; d < s.P; d *= 2 {
		kt := part * float64(d)
		prof, f := s.link(d)
		t += modelMsg(prof, s.wire(kt), f)
		t += s.mergeCost(2*kt, 2*kt > float64(s.deltaOr()))
	}
	return t
}

// predictDSAR prices DSAR_Split_allgather: the sparse split phase, a
// densify pass over the local partition (plus QSGD encode/decode passes
// when quantizing), and a dense allgather whose per-stage volume doubles.
func (s CostScenario) predictDSAR() float64 {
	t := s.splitPhaseCost()
	g := s.Profile.GammaPerElem
	block := float64(s.N) / float64(s.P)
	t += g * block // densify the owned partition
	if s.Quant != nil {
		t += g*block + g*float64(s.N) // encode own block, decode all
	}
	for d := 1; d < s.P; d *= 2 {
		bytes := float64(d)*block*s.densePerElem() + float64(stream.HeaderBytes)
		prof, f := s.link(d)
		t += modelMsg(prof, bytes, f)
	}
	return t
}

// intraReduceCost prices the binomial-tree sparse reduce of r node-local
// inputs to the node leader: ⌈log2 r⌉ rounds on the intra profile with
// payloads growing as E[K_d].
func (s CostScenario) intraReduceCost(r int) float64 {
	t := 0.0
	for d := 1; d < r; d *= 2 {
		kt := s.fill(d)
		t += modelMsg(s.Topo.Intra, s.wire(kt), 1)
		t += s.mergeCost(2*kt, s.fill(2*d) > float64(s.deltaOr()))
	}
	return t
}

// intraBcastCost prices the binomial-tree broadcast of the final result
// (wire size `bytes`) within one node of r ranks: ⌈log2 r⌉ sequential
// intra-node hops on the critical path.
func (s CostScenario) intraBcastCost(r int, bytes float64) float64 {
	rounds := 0
	for d := 1; d < r; d *= 2 {
		rounds++
	}
	return float64(rounds) * modelMsg(s.Topo.Intra, bytes, 1)
}

// predictHierSSAR prices SSAR_Hierarchical: intra-node reduce, a leader
// allreduce over the inter-node network (rec-double or split allgather by
// the same wire-size rule the implementation applies, contention-free
// because one rank per node drives the NIC), and the intra-node broadcast
// of the result.
func (s CostScenario) predictHierSSAR() float64 {
	r := s.Topo.RanksPerNode
	m := (s.P + r - 1) / r
	t := s.intraReduceCost(r)
	kp := s.fill(r) // per-leader non-zeros after the intra reduce
	inter := s.interLeader()
	wireK := stream.HeaderBytes + int(kp)*(stream.IndexBytes+s.valueBytesOr())
	if wireK <= s.smallOr() {
		// Leader recursive doubling: payload is the union of r·d inputs.
		for d := 1; d < m; d *= 2 {
			kt := s.fill(r * d)
			t += modelMsg(inter, s.wire(kt), 1)
			t += s.mergeCost(2*kt, s.fill(2*r*d) > float64(s.deltaOr()))
		}
	} else {
		// Leader split allgather over m partitions (k-way merge: the m
		// slices of one leader partition are touched once each).
		slice := kp / float64(m)
		t += float64(m-1) * modelMsg(inter, s.wire(slice), 1)
		part := s.fill(s.P) / float64(m)
		t += s.mergeCost(float64(m)*slice, false)
		for d := 1; d < m; d *= 2 {
			kt := part * float64(d)
			t += modelMsg(inter, s.wire(kt), 1)
			t += s.mergeCost(2*kt, 2*kt > float64(s.deltaOr()))
		}
	}
	return t + s.intraBcastCost(r, s.wire(s.fill(s.P)))
}

// predictHierDSAR prices DSAR_Hierarchical: intra-node reduce, a leader
// DSAR over m node partitions (sparse split, densify, dense/quantized
// allgather — all contention-free at one flow per NIC), and the intra-node
// broadcast of the dense result.
func (s CostScenario) predictHierDSAR() float64 {
	r := s.Topo.RanksPerNode
	m := (s.P + r - 1) / r
	t := s.intraReduceCost(r)
	kp := s.fill(r)
	inter := s.interLeader()
	slice := kp / float64(m)
	t += float64(m-1) * modelMsg(inter, s.wire(slice), 1)
	t += s.mergeCost(float64(m)*slice, false)
	g := s.Profile.GammaPerElem
	block := float64(s.N) / float64(m)
	t += g * block
	if s.Quant != nil {
		t += g*block + g*float64(s.N)
	}
	for d := 1; d < m; d *= 2 {
		bytes := float64(d)*block*s.densePerElem() + float64(stream.HeaderBytes)
		t += modelMsg(inter, bytes, 1)
	}
	dense := float64(stream.HeaderBytes) + float64(s.N)*float64(s.valueBytesOr())
	return t + s.intraBcastCost(r, dense)
}
