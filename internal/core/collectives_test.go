package core

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/stream"
)

func TestReduceToEveryRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, P := range []int{1, 2, 3, 5, 8} {
		inputs := patterns[0].gen(rng, 200, 15, P)
		want := refSum(inputs)
		for root := 0; root < P; root++ {
			w := comm.NewWorld(P, testProfile)
			results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
				return Reduce(p, inputs[p.Rank()], root)
			})
			for r, res := range results {
				if r != root {
					if res != nil {
						t.Fatalf("P=%d root=%d: non-root rank %d returned a result", P, root, r)
					}
					continue
				}
				got := res.ToDense()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("P=%d root=%d coord=%d: got %g want %g", P, root, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestReducePlusBcastEqualsAllreduce(t *testing.T) {
	// §5.3's composition note: reduce followed by broadcast must agree
	// with every allreduce implementation.
	rng := rand.New(rand.NewSource(63))
	P := 8
	inputs := patterns[3].gen(rng, 500, 40, P)
	w := comm.NewWorld(P, testProfile)
	composed := comm.Run(w, func(p *comm.Proc) []float64 {
		red := Reduce(p, inputs[p.Rank()], 0)
		var dense []float64
		if red != nil {
			dense = red.ToDense()
		}
		return Bcast(p, dense, 0, stream.DefaultValueBytes)
	})
	direct := runAllreduce(t, P, inputs, Options{Algorithm: SSARRecDouble})
	for r := range composed {
		got := direct[r].ToDense()
		for i := range got {
			if composed[r][i] != got[i] {
				t.Fatalf("rank %d coord %d: reduce+bcast %g vs allreduce %g", r, i, composed[r][i], got[i])
			}
		}
	}
}

func TestReduceScatterSparseOwnsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	P, n := 4, 400
	inputs := patterns[0].gen(rng, n, 30, P)
	want := refSum(inputs)
	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		return ReduceScatterSparse(p, inputs[p.Rank()])
	})
	for r, res := range results {
		lo, hi := partition(n, P, r)
		for i := 0; i < n; i++ {
			wantV := 0.0
			if i >= lo && i < hi {
				wantV = want[i]
			}
			if res.Get(i) != wantV {
				t.Fatalf("rank %d coord %d: got %g want %g", r, i, res.Get(i), wantV)
			}
		}
	}
}

func TestGatherSparse(t *testing.T) {
	for _, P := range []int{2, 3, 8} {
		n := 100
		w := comm.NewWorld(P, testProfile)
		results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
			mine := stream.NewSparse(n, []int32{int32(p.Rank() * 3)}, []float64{float64(p.Rank() + 1)}, stream.OpSum)
			return GatherSparse(p, mine, 0)
		})
		for r, res := range results {
			if r != 0 {
				if res != nil {
					t.Fatalf("P=%d: non-root rank %d returned a result", P, r)
				}
				continue
			}
			if res.NNZ() != P {
				t.Fatalf("P=%d: root gathered %d entries, want %d", P, res.NNZ(), P)
			}
			for i := 0; i < P; i++ {
				if res.Get(3*i) != float64(i+1) {
					t.Fatalf("P=%d: coord %d = %g", P, 3*i, res.Get(3*i))
				}
			}
		}
	}
}

func TestScatterRangesRoundTripsWithGather(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	P, n := 4, 200
	full := randSparse(rng, n, 40)
	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		var v *stream.Vector
		if p.Rank() == 1 {
			v = full
		}
		piece := ScatterRanges(p, v, 1, n, stream.OpSum)
		// Each piece must lie within this rank's partition.
		lo, hi := partition(n, P, p.Rank())
		if piece.NNZ() > 0 {
			idx, _ := piece.Pairs()
			for _, ix := range idx {
				if int(ix) < lo || int(ix) >= hi {
					panic("scattered entry outside partition")
				}
			}
		}
		return GatherSparse(p, piece, 1)
	})
	if !results[1].Equal(full) {
		t.Fatal("scatter→gather did not round-trip the vector")
	}
}

func TestAlltoallSparse(t *testing.T) {
	P, n := 4, 64
	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) []*stream.Vector {
		pieces := make([]*stream.Vector, P)
		for to := 0; to < P; to++ {
			// Encode (src, dst) in the payload: coordinate src·P+dst.
			pieces[to] = stream.NewSparse(n, []int32{int32(p.Rank()*P + to)}, []float64{1}, stream.OpSum)
		}
		return AlltoallSparse(p, pieces)
	})
	for dst, recv := range results {
		for src, piece := range recv {
			if piece.Get(src*P+dst) != 1 {
				t.Fatalf("dst %d: piece from src %d wrong", dst, src)
			}
		}
	}
}

func TestAlltoallSparsePanicsOnWrongLen(t *testing.T) {
	w := comm.NewWorld(2, testProfile)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	comm.Run(w, func(p *comm.Proc) any {
		return AlltoallSparse(p, make([]*stream.Vector, 1))
	})
}
