package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// The tests in this file validate the analytic results of §5.3 against the
// simulated α–β clock: Lemma 5.1 (sparse allreduce bounds for the two
// extreme overlap cases), the SSAR_Recursive_double bracket, the
// split-allgather latency term L2(P) = (P−1)α + log2(P)α, Lemma 5.2 (the
// DSAR bandwidth floor and the 2/κ speedup cap), and the Figure 2 stage
// structure of recursive doubling.

// pureNet isolates communication cost: no compute charges.
var pureNet = simnet.Profile{Name: "pure", Alpha: 1e-5, BetaPerByte: 1e-9}

func simulate(P int, prof simnet.Profile, inputs []*stream.Vector, opts Options) float64 {
	w := comm.NewWorld(P, prof)
	comm.Run(w, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], opts)
	})
	return w.MaxTime()
}

func fullyOverlappingInputs(rng *rand.Rand, n, k, P int) []*stream.Vector {
	return patterns[1].gen(rng, n, k, P)
}

func disjointInputs(rng *rand.Rand, n, k, P int) []*stream.Vector {
	return patterns[2].gen(rng, n, k, P)
}

func TestSSARRecDoubleBracket(t *testing.T) {
	// §5.3.1: L1 + log2(P)·k·βs ≤ T ≤ L1 + (P−1)·k·βs with L1 = log2(P)·α.
	rng := rand.New(rand.NewSource(31))
	P, n, k := 8, 100000, 200
	alpha, beta := pureNet.Alpha, pureNet.BetaPerByte
	logP := math.Log2(float64(P))
	betaS := beta * float64(stream.IndexBytes+stream.DefaultValueBytes)
	l1 := logP * alpha

	overlap := simulate(P, pureNet, fullyOverlappingInputs(rng, n, k, P), Options{Algorithm: SSARRecDouble})
	lower := l1 + logP*float64(k)*betaS
	if overlap < lower*0.99 {
		t.Fatalf("full-overlap time %g below analytic lower bound %g", overlap, lower)
	}
	// Full overlap should sit near the lower bound (within header slack).
	if overlap > lower*1.3 {
		t.Fatalf("full-overlap time %g far above lower bound %g", overlap, lower)
	}

	disjoint := simulate(P, pureNet, disjointInputs(rng, n, k, P), Options{Algorithm: SSARRecDouble})
	upper := l1 + float64(P-1)*float64(k)*betaS
	if disjoint > upper*1.3 {
		t.Fatalf("disjoint time %g far above analytic upper bound %g", disjoint, upper)
	}
	if disjoint < overlap {
		t.Fatalf("disjoint (%g) must be slower than fully overlapping (%g)", disjoint, overlap)
	}
}

func TestLemma51DenseLowerBoundOrdering(t *testing.T) {
	// Lemma 5.1: T ≥ log2(P)α + 2·(P−1)/P·k·βd when K = k. Every sparse
	// algorithm's simulated time must respect the latency part of the
	// bound, and full-overlap instances must beat disjoint instances.
	rng := rand.New(rand.NewSource(33))
	P, n, k := 8, 65536, 128
	latencyFloor := math.Log2(float64(P)) * pureNet.Alpha
	for _, alg := range []Algorithm{SSARRecDouble, SSARSplitAllgather, RingSparse} {
		got := simulate(P, pureNet, fullyOverlappingInputs(rng, n, k, P), Options{Algorithm: alg})
		if got < latencyFloor {
			t.Fatalf("alg=%s: time %g below log2(P)·α = %g", alg, got, latencyFloor)
		}
	}
}

func TestSplitAllgatherLatencyTerm(t *testing.T) {
	// §5.3.2: L2(P) = (P−1)α + log2(P)α. With k=1 (negligible bandwidth)
	// the measured time should approach L2.
	latOnly := simnet.Profile{Name: "lat", Alpha: 1e-4, BetaPerByte: 1e-12}
	rng := rand.New(rand.NewSource(35))
	P := 8
	inputs := patterns[0].gen(rng, 1000, 1, P)
	got := simulate(P, latOnly, inputs, Options{Algorithm: SSARSplitAllgather})
	l2 := (float64(P-1) + math.Log2(float64(P))) * latOnly.Alpha
	if math.Abs(got-l2) > 0.05*l2 {
		t.Fatalf("split-allgather latency %g, want ≈ L2(P) = %g", got, l2)
	}
}

func TestRecDoubleLatencyTerm(t *testing.T) {
	// §5.3.1: latency L1(P) = log2(P)·α, data-independent.
	latOnly := simnet.Profile{Name: "lat", Alpha: 1e-4, BetaPerByte: 1e-12}
	rng := rand.New(rand.NewSource(37))
	for _, P := range []int{2, 4, 8, 16} {
		inputs := patterns[0].gen(rng, 1000, 1, P)
		got := simulate(P, latOnly, inputs, Options{Algorithm: SSARRecDouble})
		l1 := math.Log2(float64(P)) * latOnly.Alpha
		if math.Abs(got-l1) > 0.05*l1 {
			t.Fatalf("P=%d: rec-double latency %g, want ≈ L1 = %g", P, got, l1)
		}
	}
}

func TestLemma52DSARBandwidthFloor(t *testing.T) {
	// Lemma 5.2: DSAR needs at least log2(P)·α + δ·βd; and sparsity alone
	// cannot beat the dense allreduce by more than 2/κ. We verify the
	// simulated DSAR time respects the floor and that the measured speedup
	// over Rabenseifner stays under the cap.
	rng := rand.New(rand.NewSource(39))
	P, n := 8, 1<<16
	k := n / 3 // heavy fill-in: result becomes dense
	inputs := patterns[0].gen(rng, n, k, P)

	dsarT := simulate(P, pureNet, inputs, Options{Algorithm: DSARSplitAllgather})
	delta := stream.Delta(n, stream.DefaultValueBytes)
	floor := math.Log2(float64(P))*pureNet.Alpha +
		float64(delta)*pureNet.BetaPerByte*float64(stream.DefaultValueBytes)/2
	// The floor is stated in words; βd per word = 8 bytes. Allow the /2
	// slack because our allgather pipelines partitions.
	if dsarT < floor {
		t.Fatalf("DSAR time %g below Lemma 5.2 floor %g", dsarT, floor)
	}

	denseT := simulate(P, pureNet, inputs, Options{Algorithm: DenseRabenseifner})
	kappa := float64(delta) / float64(n)
	cap := 2 / kappa
	if speedup := denseT / dsarT; speedup > cap {
		t.Fatalf("sparse speedup %g exceeds Lemma 5.2 cap %g", speedup, cap)
	}
}

func TestFigure2StageStructure(t *testing.T) {
	// Figure 2: recursive doubling with P=8 has exactly 3 stages; at stage
	// t ranks a distance 2^(t−1) apart exchange data. We verify the stage
	// count via the latency term and the distance structure by checking
	// that disjoint inputs grow the intermediate payload 2× per stage
	// (k, 2k, 4k received bytes).
	latOnly := simnet.Profile{Name: "lat", Alpha: 1e-3, BetaPerByte: 0}
	rng := rand.New(rand.NewSource(41))
	P := 8
	inputs := disjointInputs(rng, 4096, 64, P)
	got := simulate(P, latOnly, inputs, Options{Algorithm: SSARRecDouble})
	if want := 3 * latOnly.Alpha; math.Abs(got-want) > 1e-12 {
		t.Fatalf("P=8 rec-double stages: time %g, want exactly 3α = %g", got, want)
	}

	// Payload doubling: with pure bandwidth cost, disjoint inputs cost
	// (1+2+4)·k·βs = 7k·βs per the §5.3.1 geometric series k(P−1).
	bwOnly := simnet.Profile{Name: "bw", Alpha: 0, BetaPerByte: 1e-9}
	got = simulate(P, bwOnly, inputs, Options{Algorithm: SSARRecDouble})
	betaS := bwOnly.BetaPerByte * float64(stream.IndexBytes+stream.DefaultValueBytes)
	want := 7 * 64 * betaS
	// Headers add 5 bytes/message; allow 5%.
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("disjoint growth: time %g, want ≈ k(P−1)βs = %g", got, want)
	}
}

func TestCrossoverRecDoubleVsSplitAllgather(t *testing.T) {
	// §8.1: "SSAR Recursive double performs best for a small amount of
	// data... At higher node count P, data becomes larger, which leads to
	// less improvement". On a latency-heavy network with small k,
	// rec-double must win; with large k (bandwidth-bound), split-allgather
	// must win.
	rng := rand.New(rand.NewSource(43))
	P := 16
	n := 1 << 18

	small := patterns[0].gen(rng, n, 8, P)
	recT := simulate(P, simnet.GigE, small, Options{Algorithm: SSARRecDouble})
	splitT := simulate(P, simnet.GigE, small, Options{Algorithm: SSARSplitAllgather})
	if recT >= splitT {
		t.Fatalf("small data: rec-double (%g) should beat split-allgather (%g)", recT, splitT)
	}

	big := patterns[0].gen(rng, n, 8000, P)
	recT = simulate(P, simnet.GigE, big, Options{Algorithm: SSARRecDouble})
	splitT = simulate(P, simnet.GigE, big, Options{Algorithm: SSARSplitAllgather})
	if splitT >= recT {
		t.Fatalf("large data: split-allgather (%g) should beat rec-double (%g)", splitT, recT)
	}
}

func TestSparseBeatsDenseAtLowDensity(t *testing.T) {
	// The headline claim: at low density, sparse allreduce is an order of
	// magnitude faster than the dense baselines.
	rng := rand.New(rand.NewSource(45))
	P, n := 8, 1<<18
	inputs := patterns[0].gen(rng, n, n/1000, P)
	sparseT := simulate(P, simnet.Aries, inputs, Options{Algorithm: SSARSplitAllgather})
	denseT := simulate(P, simnet.Aries, inputs, Options{Algorithm: DenseRabenseifner})
	if denseT/sparseT < 10 {
		t.Fatalf("sparse speedup at 0.1%% density = %.1fx, want >10x", denseT/sparseT)
	}
}
