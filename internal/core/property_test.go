package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// Randomized differential test: on arbitrary instances (random dimension,
// node count, per-rank densities, representation mix), all lossless
// algorithms must agree bit-for-bit with each other and with the
// sequential reference. This is the strongest single correctness statement
// about the collectives, complementing the fixed adversarial patterns.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		P := 2 + rng.Intn(7) // 2..8, includes non-powers of two
		n := 50 + rng.Intn(400)
		inputs := make([]*stream.Vector, P)
		for r := range inputs {
			k := rng.Intn(n/2 + 1)
			inputs[r] = randSparse(rng, n, k)
			if rng.Intn(3) == 0 {
				inputs[r].Densify()
			}
		}
		want := refSum(inputs)
		for _, alg := range allAlgorithms {
			w := comm.NewWorld(P, testProfile)
			results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
			})
			for _, res := range results {
				got := res.ToDense()
				for i := range want {
					if got[i] != want[i] {
						t.Logf("seed=%d P=%d n=%d alg=%s coord=%d: got %g want %g",
							seed, P, n, alg, i, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossAlgorithmEquivalence is the table-driven equivalence check: for
// every Algorithm (including HierSSAR, both on flat and on topology
// worlds), the same randomized sparse inputs across several world sizes
// must produce bit-identical reductions on every rank. Values are dyadic
// rationals, so float addition is exact and any reduction order must agree
// bit-for-bit with the sequential reference.
func TestCrossAlgorithmEquivalence(t *testing.T) {
	worlds := []struct {
		name string
		P    int
		mk   func(P int) *comm.World
	}{
		{"flat/P=2", 2, func(P int) *comm.World { return comm.NewWorld(P, testProfile) }},
		{"flat/P=5", 5, func(P int) *comm.World { return comm.NewWorld(P, testProfile) }},
		{"flat/P=8", 8, func(P int) *comm.World { return comm.NewWorld(P, testProfile) }},
		{"topo/P=8/rpn=4", 8, func(P int) *comm.World { return comm.NewWorldTopo(P, testTopo) }},
		{"topo/P=16/rpn=4", 16, func(P int) *comm.World { return comm.NewWorldTopo(P, testTopo) }},
		{"topo/P=10/rpn=4", 10, func(P int) *comm.World { return comm.NewWorldTopo(P, testTopo) }},
		// NIC-contention worlds: the serialization cap reprices inter-node
		// bandwidth but must never change any reduction bit, including on
		// ragged node counts.
		{"nic/P=16/rpn=4", 16, func(P int) *comm.World { return comm.NewWorldTopo(P, contendedTopo) }},
		{"nic/P=10/rpn=4", 10, func(P int) *comm.World { return comm.NewWorldTopo(P, contendedTopo) }},
		{"nic/P=7/rpn=3", 7, func(P int) *comm.World {
			return comm.NewWorldTopo(P, simnet.Topology{RanksPerNode: 3,
				Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 2})
		}},
		// Three-level hierarchy worlds (nodes of 3 in groups of 2, capped
		// egress at both tiers): divisible, ragged last node, ragged last
		// group, and ragged at every tier. The per-level serialization
		// reprices bandwidth but must never change any reduction bit.
		{"hier3/P=12", 12, func(P int) *comm.World { return comm.NewWorldHier(P, testHier3) }},
		{"hier3/P=13/ragged-node", 13, func(P int) *comm.World { return comm.NewWorldHier(P, testHier3) }},
		{"hier3/P=9/ragged-group", 9, func(P int) *comm.World { return comm.NewWorldHier(P, testHier3) }},
		{"hier3/P=17/ragged-both", 17, func(P int) *comm.World { return comm.NewWorldHier(P, testHier3) }},
	}
	rng := rand.New(rand.NewSource(12345))
	for _, wc := range worlds {
		t.Run(wc.name, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				n := 100 + rng.Intn(500)
				inputs := make([]*stream.Vector, wc.P)
				for r := range inputs {
					inputs[r] = randSparse(rng, n, rng.Intn(n/3+1))
					if rng.Intn(4) == 0 {
						inputs[r].Densify()
					}
				}
				want := refSum(inputs)
				for _, alg := range allAlgorithms {
					w := wc.mk(wc.P)
					results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
						return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
					})
					for r, res := range results {
						got := res.ToDense()
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("trial=%d n=%d alg=%s rank=%d coord=%d: got %g want %g",
									trial, n, alg, r, i, got[i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// Randomized timing sanity: simulated completion time is identical across
// repeated runs of the same instance (determinism of the virtual clock),
// and strictly positive whenever any communication happens.
func TestQuickSimulatedTimeDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		P := 2 + rng.Intn(6)
		n := 100 + rng.Intn(1000)
		inputs := make([]*stream.Vector, P)
		for r := range inputs {
			inputs[r] = randSparse(rng, n, 1+rng.Intn(20))
		}
		alg := allAlgorithms[rng.Intn(len(allAlgorithms))]
		times := make([]float64, 2)
		for trial := range times {
			w := comm.NewWorld(P, testProfile)
			comm.Run(w, func(p *comm.Proc) any {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
			})
			times[trial] = w.MaxTime()
		}
		return times[0] == times[1] && times[0] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
