package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/stream"
)

// Randomized differential test: on arbitrary instances (random dimension,
// node count, per-rank densities, representation mix), all lossless
// algorithms must agree bit-for-bit with each other and with the
// sequential reference. This is the strongest single correctness statement
// about the collectives, complementing the fixed adversarial patterns.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		P := 2 + rng.Intn(7) // 2..8, includes non-powers of two
		n := 50 + rng.Intn(400)
		inputs := make([]*stream.Vector, P)
		for r := range inputs {
			k := rng.Intn(n/2 + 1)
			inputs[r] = randSparse(rng, n, k)
			if rng.Intn(3) == 0 {
				inputs[r].Densify()
			}
		}
		want := refSum(inputs)
		for _, alg := range allAlgorithms {
			w := comm.NewWorld(P, testProfile)
			results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
			})
			for _, res := range results {
				got := res.ToDense()
				for i := range want {
					if got[i] != want[i] {
						t.Logf("seed=%d P=%d n=%d alg=%s coord=%d: got %g want %g",
							seed, P, n, alg, i, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Randomized timing sanity: simulated completion time is identical across
// repeated runs of the same instance (determinism of the virtual clock),
// and strictly positive whenever any communication happens.
func TestQuickSimulatedTimeDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		P := 2 + rng.Intn(6)
		n := 100 + rng.Intn(1000)
		inputs := make([]*stream.Vector, P)
		for r := range inputs {
			inputs[r] = randSparse(rng, n, 1+rng.Intn(20))
		}
		alg := allAlgorithms[rng.Intn(len(allAlgorithms))]
		times := make([]float64, 2)
		for trial := range times {
			w := comm.NewWorld(P, testProfile)
			comm.Run(w, func(p *comm.Proc) any {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
			})
			times[trial] = w.MaxTime()
		}
		return times[0] == times[1] && times[0] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
