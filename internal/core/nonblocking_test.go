package core

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/stream"
)

func TestIAllreduceMatchesBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	P := 8
	inputs := patterns[0].gen(rng, 1000, 50, P)
	want := refSum(inputs)
	for _, alg := range []Algorithm{SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather} {
		w := comm.NewWorld(P, testProfile)
		results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
			req := IAllreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
			return req.Wait(p)
		})
		for r, res := range results {
			got := res.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("alg=%s rank=%d coord=%d: got %g want %g", alg, r, i, got[i], want[i])
				}
			}
		}
	}
}

func TestIAllreduceOverlapsCompute(t *testing.T) {
	// A nonblocking allreduce overlapped with local compute should cost
	// max(compute, collective), not the sum.
	rng := rand.New(rand.NewSource(53))
	P := 4
	inputs := patterns[0].gen(rng, 10000, 100, P)

	w := comm.NewWorld(P, testProfile)
	comm.Run(w, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARRecDouble})
	})
	collectiveT := w.MaxTime()

	localWork := collectiveT * 0.8
	comm.Run(w, func(p *comm.Proc) any {
		req := IAllreduce(p, inputs[p.Rank()], Options{Algorithm: SSARRecDouble})
		p.Compute(localWork)
		return req.Wait(p)
	})
	overlapped := w.MaxTime()
	if overlapped > collectiveT*1.05 {
		t.Fatalf("overlapped time %g, want ≈ collective time %g (compute hidden)", overlapped, collectiveT)
	}

	// Blocking version serializes: collective + compute.
	comm.Run(w, func(p *comm.Proc) any {
		res := Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARRecDouble})
		p.Compute(localWork)
		return res
	})
	serial := w.MaxTime()
	if serial < collectiveT+localWork*0.99 {
		t.Fatalf("serial time %g, want ≥ %g", serial, collectiveT+localWork)
	}
}

func TestTwoOutstandingNonblockingOps(t *testing.T) {
	// MPI-3 allows multiple outstanding collectives; tags must not collide
	// and both must complete with correct results.
	rng := rand.New(rand.NewSource(55))
	P := 4
	a := patterns[0].gen(rng, 500, 30, P)
	b := patterns[2].gen(rng, 500, 30, P)
	wantA, wantB := refSum(a), refSum(b)

	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) [2]*stream.Vector {
		r1 := IAllreduce(p, a[p.Rank()], Options{Algorithm: SSARRecDouble})
		r2 := IAllreduce(p, b[p.Rank()], Options{Algorithm: SSARSplitAllgather})
		// Wait in reverse issue order to stress tag separation.
		v2 := r2.Wait(p)
		v1 := r1.Wait(p)
		return [2]*stream.Vector{v1, v2}
	})
	for r, pair := range results {
		gotA, gotB := pair[0].ToDense(), pair[1].ToDense()
		for i := range wantA {
			if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
				t.Fatalf("rank %d coord %d: outstanding ops interfered", r, i)
			}
		}
	}
}

func TestRequestTest(t *testing.T) {
	P := 2
	inputs := []*stream.Vector{
		stream.NewSparse(10, []int32{1}, []float64{1}, stream.OpSum),
		stream.NewSparse(10, []int32{2}, []float64{2}, stream.OpSum),
	}
	w := comm.NewWorld(P, testProfile)
	comm.Run(w, func(p *comm.Proc) any {
		req := IAllreduce(p, inputs[p.Rank()], Options{Algorithm: SSARRecDouble})
		res := req.Wait(p)
		if !req.Test() {
			panic("Test must report true after Wait")
		}
		if res.Get(1) != 1 || res.Get(2) != 2 {
			panic("wrong result")
		}
		return nil
	})
}

func TestISparseAllgather(t *testing.T) {
	P, n := 8, 800
	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		lo, hi := partition(n, P, p.Rank())
		idx := []int32{int32(lo), int32(hi - 1)}
		val := []float64{float64(lo + 1), float64(hi)}
		mine := stream.NewSparse(n, idx, val, stream.OpSum)
		req := ISparseAllgather(p, mine)
		return req.Wait(p)
	})
	for r, res := range results {
		if res.NNZ() != 2*P {
			t.Fatalf("rank %d: gathered %d entries, want %d", r, res.NNZ(), 2*P)
		}
		if !res.Equal(results[0]) {
			t.Fatalf("rank %d: allgather results differ", r)
		}
	}
}

func TestSparseAllgatherBlocking(t *testing.T) {
	P, n := 5, 100 // non-power-of-two
	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		mine := stream.NewSparse(n, []int32{int32(p.Rank())}, []float64{float64(p.Rank() + 1)}, stream.OpSum)
		return SparseAllgather(p, mine)
	})
	for r, res := range results {
		if res.NNZ() != P {
			t.Fatalf("rank %d: nnz=%d want %d", r, res.NNZ(), P)
		}
		for i := 0; i < P; i++ {
			if res.Get(i) != float64(i+1) {
				t.Fatalf("rank %d: coord %d = %g", r, i, res.Get(i))
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, P := range []int{2, 3, 8, 13} {
		for root := 0; root < P; root += P/2 + 1 {
			w := comm.NewWorld(P, testProfile)
			results := comm.Run(w, func(p *comm.Proc) []float64 {
				var x []float64
				if p.Rank() == root {
					x = []float64{1, 2, 3, float64(root)}
				}
				return Bcast(p, x, root, 8)
			})
			for r, res := range results {
				if len(res) != 4 || res[3] != float64(root) {
					t.Fatalf("P=%d root=%d rank=%d: got %v", P, root, r, res)
				}
			}
		}
	}
}
