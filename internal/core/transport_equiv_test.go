package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// TestCrossTransportEquivalence is the cross-transport equivalence table:
// every collective — SSAR/DSAR variants, the hierarchical algorithms on
// ragged tiers, quantized and not — must produce bit-identical results on
// the simulator, the goroutine backend, and loopback TCP, at P ∈
// {4, 16, 32}. Dyadic values make float addition exact, so any divergence
// is a transport bug (payload codec corruption, reordering, or a merge
// path that departed from the serial fold), never float noise. The
// simulator is the reference; its result is also checked against the
// plain chained reduction.
func TestCrossTransportEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// RanksPerNode 3 keeps the last node ragged at every tested P
	// (4 = 3+1, 16 = 5·3+1, 32 = 10·3+2).
	mkTopo := func() simnet.Topology {
		return simnet.Topology{RanksPerNode: 3, Intra: simnet.NVLinkLike, Inter: simnet.Aries}
	}
	algs := []struct {
		name  string
		alg   Algorithm
		hier  bool
		quant bool // exercised with quantization too
	}{
		{"ssar-recdouble", SSARRecDouble, false, false},
		{"ssar-split", SSARSplitAllgather, false, false},
		{"dsar-split", DSARSplitAllgather, false, true},
		{"hier-ssar", HierSSAR, true, false},
		{"hier-dsar", HierDSAR, true, true},
		{"dense-raben", DenseRabenseifner, false, false},
	}

	for _, P := range []int{4, 16, 32} {
		topo := mkTopo()
		simFlat := comm.NewWorld(P, simnet.Aries)
		simHier := comm.NewWorldTopo(P, topo)
		goFlat := comm.NewWorld(P, simnet.Aries).UseGoroutineTransport()
		goHier := comm.NewWorldTopo(P, topo).UseGoroutineTransport()
		tcpFlat, err := comm.NewWorldTCP(P, simnet.Aries, comm.TCPConfig{})
		if err != nil {
			t.Fatalf("P=%d: tcp flat world: %v", P, err)
		}
		h := topo.Hierarchy()
		tcpHier, err := comm.NewWorldTCP(P, simnet.Aries, comm.TCPConfig{Hierarchy: &h})
		if err != nil {
			t.Fatalf("P=%d: tcp hier world: %v", P, err)
		}
		defer tcpFlat.Close()
		defer tcpHier.Close()

		for _, pat := range patterns {
			n := 600 + rng.Intn(300)
			k := 1 + rng.Intn(n/5)
			inputs := pat.gen(rng, n, k, P)

			for _, tc := range algs {
				quantModes := []bool{false}
				if tc.quant {
					quantModes = append(quantModes, true)
				}
				for _, quantized := range quantModes {
					opts := Options{Algorithm: tc.alg, Seed: 42}
					if quantized {
						opts.Quant = &quant.Config{Bits: 4, Bucket: 256, Norm: quant.NormMax}
					}
					run := func(w *comm.World) [][]float64 {
						return comm.Run(w, func(p *comm.Proc) []float64 {
							return Allreduce(p, inputs[p.Rank()], opts).ToDense()
						})
					}
					simW, goW, tcpW := simFlat, goFlat, tcpFlat
					if tc.hier {
						simW, goW, tcpW = simHier, goHier, tcpHier
					}
					want := run(simW)
					label := fmt.Sprintf("P=%d pattern=%s alg=%s quant=%v", P, pat.name, tc.name, quantized)
					for backend, got := range map[string][][]float64{
						"goroutine": run(goW),
						"tcp":       run(tcpW),
					} {
						for r := range got {
							for i := range want[r] {
								if got[r][i] != want[r][i] {
									t.Fatalf("%s backend=%s rank=%d coord=%d: got %g, sim %g",
										label, backend, r, i, got[r][i], want[r][i])
								}
							}
						}
					}
					if !quantized && tc.alg != DenseRabenseifner {
						// Cross-check the simulator itself against the
						// chained reference reduction.
						ref := chainReduce(inputs)
						for i, x := range ref {
							if want[0][i] != x {
								t.Fatalf("%s: sim rank 0 coord %d: got %g, reference %g", label, i, want[0][i], x)
							}
						}
					}
				}
			}
		}
	}
}

// chainReduce folds the inputs densely in rank order — the semantic
// reference every allreduce must match on exact (dyadic) values.
func chainReduce(inputs []*stream.Vector) []float64 {
	out := make([]float64, inputs[0].Dim())
	for _, v := range inputs {
		for i, x := range v.ToDense() {
			out[i] += x
		}
	}
	return out
}

// TestCrossTransportRaggedLevels drives the N-level recursive collectives
// over a ragged three-level hierarchy on both real backends and checks
// bit-identity against the simulator, at the depth Auto would exploit and
// at a truncated depth.
func TestCrossTransportRaggedLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := simnet.Hierarchy{Levels: []simnet.Level{
		{GroupSize: 3, Profile: simnet.NVLinkLike},
		{GroupSize: 4, Profile: simnet.InfiniBandFDR},
		{GroupSize: 0, Profile: simnet.Aries},
	}}
	const P = 26 // 3·4 = 12 per level-1 group: 26 = 12 + 12 + 2, ragged twice
	n := 800
	k := 120
	inputs := patterns[0].gen(rng, n, k, P)

	sim := comm.NewWorldHier(P, h)
	gor := comm.NewWorldHier(P, h).UseGoroutineTransport()
	tcp, err := comm.NewWorldTCP(P, simnet.Aries, comm.TCPConfig{Hierarchy: &h})
	if err != nil {
		t.Fatalf("tcp world: %v", err)
	}
	defer tcp.Close()

	for _, levels := range []int{0, 2} {
		for _, alg := range []Algorithm{HierSSAR, HierDSAR} {
			opts := Options{Algorithm: alg, Levels: levels, Seed: 3}
			run := func(w *comm.World) [][]float64 {
				return comm.Run(w, func(p *comm.Proc) []float64 {
					return Allreduce(p, inputs[p.Rank()], opts).ToDense()
				})
			}
			want := run(sim)
			for backend, got := range map[string][][]float64{"goroutine": run(gor), "tcp": run(tcp)} {
				for r := range got {
					for i := range want[r] {
						if got[r][i] != want[r][i] {
							t.Fatalf("alg=%v levels=%d backend=%s rank=%d coord=%d: got %g, sim %g",
								alg, levels, backend, r, i, got[r][i], want[r][i])
						}
					}
				}
			}
		}
	}
}
