package core

import (
	"repro/internal/comm"
	"repro/internal/stream"
)

// Request is a handle on a nonblocking collective, in the style of MPI-3
// nonblocking collectives (§7: "we allow a thread to trigger a collective
// operation, such as allreduce, in a nonblocking way. This enables the
// thread to proceed with local computations while the operation is
// performed in the background").
//
// The operation runs on a forked virtual clock; Wait folds its completion
// time back into the caller's clock as max(local, collective), modeling
// perfect computation/communication overlap — overlapped local Compute is
// free up to the collective's duration.
type Request struct {
	forked *comm.Proc
	done   chan struct{}
	result *stream.Vector
}

// IAllreduce starts a nonblocking sparse allreduce. The input vector must
// not be modified until Wait returns. Ranks must issue nonblocking
// collectives in identical program order (as MPI requires). If
// opts.Scratch is set, that pool belongs to this operation until Wait:
// it must not be used by the issuing thread or by another outstanding
// collective in the meantime.
func IAllreduce(p *comm.Proc, v *stream.Vector, opts Options) *Request {
	base := p.NextTagBase()
	f := p.Fork()
	r := &Request{forked: f, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.result = allreduceTagged(f, v, opts, base)
	}()
	return r
}

// ISparseAllgather starts a nonblocking sparse concatenating allgather.
func ISparseAllgather(p *comm.Proc, mine *stream.Vector) *Request {
	base := p.NextTagBase()
	f := p.Fork()
	r := &Request{forked: f, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.result = sparseAllgatherConcat(f, mine, nil, base)
	}()
	return r
}

// Wait blocks until the collective completes, merges its virtual time into
// p's clock, and returns the result.
func (r *Request) Wait(p *comm.Proc) *stream.Vector {
	<-r.done
	p.Join(r.forked)
	return r.result
}

// Test reports whether the collective has completed without blocking
// (MPI_Test). It does not merge clocks; call Wait to retrieve the result.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}
