package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/stream"
)

// perRankScratches builds one buffer pool per rank — the required
// ownership discipline (a Scratch must never be shared across ranks).
func perRankScratches(P int) []*stream.Scratch {
	out := make([]*stream.Scratch, P)
	for i := range out {
		out[i] = stream.NewScratch()
	}
	return out
}

// TestAllreduceScratchBitIdentical: for every algorithm and input pattern,
// repeated allreduce calls reusing per-rank scratch pools must return
// results bit-identical to the scratch-free path, on every rank, every
// round (round ≥ 2 exercises recycled buffers).
func TestAllreduceScratchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, P := range []int{2, 4, 7, 8} {
		for _, pat := range patterns {
			n := 200 + rng.Intn(200)
			k := 1 + rng.Intn(n/8)
			inputs := pat.gen(rng, n, k, P)
			for _, alg := range allAlgorithms {
				plain := runAllreduce(t, P, inputs, Options{Algorithm: alg})
				w := comm.NewWorld(P, testProfile)
				scratches := perRankScratches(P)
				for round := 0; round < 3; round++ {
					results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
						return Allreduce(p, inputs[p.Rank()],
							Options{Algorithm: alg, Scratch: scratches[p.Rank()]})
					})
					for r, res := range results {
						got, want := res.ToDense(), plain[r].ToDense()
						for i := range want {
							if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
								t.Fatalf("P=%d pattern=%s alg=%s round=%d rank=%d coord=%d: got %g want %g",
									P, pat.name, alg, round, r, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestAllreduceScratchKeepsResultsIntact: results returned from earlier
// rounds must not be corrupted by later rounds recycling the pool — the
// returned vector's storage is never released unless the caller does it.
func TestAllreduceScratchKeepsResultsIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	P, n, k := 4, 400, 30
	inputs := patterns[0].gen(rng, n, k, P)
	w := comm.NewWorld(P, testProfile)
	scratches := perRankScratches(P)
	run := func() []*stream.Vector {
		return comm.Run(w, func(p *comm.Proc) *stream.Vector {
			return Allreduce(p, inputs[p.Rank()],
				Options{Algorithm: SSARSplitAllgather, Scratch: scratches[p.Rank()]})
		})
	}
	first := run()
	snapshot := first[0].ToDense()
	for i := 0; i < 5; i++ {
		run()
	}
	after := first[0].ToDense()
	for i := range snapshot {
		if snapshot[i] != after[i] {
			t.Fatalf("round-1 result mutated at coord %d: %g -> %g", i, snapshot[i], after[i])
		}
	}
}

// TestAllreduceScratchAllocReduction is the end-to-end allocation
// acceptance check at P=16: steady-state allreduce calls with per-rank
// scratch pools must allocate less than half of what the scratch-free
// path allocates (the ISSUE's ≥ 50%-fewer-allocations bar, measured on
// the whole world including the harness overhead).
func TestAllreduceScratchAllocReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const P, n, k = 16, 1 << 16, 1500
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, k)
	}
	w := comm.NewWorld(P, testProfile)
	baseline := testing.AllocsPerRun(5, func() {
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather})
		})
	})
	scratches := perRankScratches(P)
	// Warm the pools to steady state before measuring.
	for i := 0; i < 3; i++ {
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()],
				Options{Algorithm: SSARSplitAllgather, Scratch: scratches[p.Rank()]})
		})
	}
	pooled := testing.AllocsPerRun(5, func() {
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()],
				Options{Algorithm: SSARSplitAllgather, Scratch: scratches[p.Rank()]})
		})
	})
	if pooled > baseline/2 {
		t.Fatalf("scratch path allocates %.0f/op vs %.0f/op without — want ≥ 50%% reduction", pooled, baseline)
	}
	t.Logf("allocs/op: %.0f without scratch, %.0f with (%.0f%% reduction)",
		baseline, pooled, 100*(1-pooled/baseline))
}

// TestNonblockingWithScratch: a nonblocking allreduce with a dedicated
// scratch pool per rank must still produce correct results (the pool must
// not be shared with the issuing thread's other work until Wait).
func TestNonblockingWithScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	P, n, k := 4, 300, 20
	inputs := patterns[0].gen(rng, n, k, P)
	want := refSum(inputs)
	scratches := perRankScratches(P)
	w := comm.NewWorld(P, testProfile)
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		req := IAllreduce(p, inputs[p.Rank()],
			Options{Algorithm: SSARSplitAllgather, Scratch: scratches[p.Rank()]})
		p.Compute(1e-6) // overlapped local work
		return req.Wait(p)
	})
	for r, res := range results {
		got := res.ToDense()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank=%d coord=%d: got %g want %g", r, i, got[i], want[i])
			}
		}
	}
}
