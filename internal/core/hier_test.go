package core

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

var testTopo = simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries}

// TestHierSSARMatchesFlat is the acceptance-criterion correctness check:
// HierSSAR on a topology world must produce bit-identical reductions to
// flat SSAR_Split_allgather on identical inputs (dyadic values make float
// addition exact, so any reduction order must agree bit-for-bit).
func TestHierSSARMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct{ P, rpn int }{
		{8, 2}, {8, 4}, {16, 4}, {32, 4}, // divisible
		{6, 4}, {10, 4}, {7, 3}, // ragged last node
		{4, 4}, {3, 8}, // single node: degrades to flat intra-priced
		{5, 1}, // one rank per node: degrades to flat
	} {
		topo := simnet.Topology{RanksPerNode: tc.rpn, Intra: simnet.NVLinkLike, Inter: simnet.Aries}
		for _, pat := range patterns {
			n := 300 + rng.Intn(300)
			k := 1 + rng.Intn(n/6)
			inputs := pat.gen(rng, n, k, tc.P)

			flat := comm.NewWorld(tc.P, simnet.Aries)
			want := comm.Run(flat, func(p *comm.Proc) []float64 {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather}).ToDense()
			})

			w := comm.NewWorldTopo(tc.P, topo)
			results := comm.Run(w, func(p *comm.Proc) []float64 {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: HierSSAR}).ToDense()
			})
			for r, got := range results {
				for i := range want[0] {
					if got[i] != want[0][i] {
						t.Fatalf("P=%d rpn=%d pattern=%s rank=%d coord=%d: hier %g, flat %g",
							tc.P, tc.rpn, pat.name, r, i, got[i], want[0][i])
					}
				}
			}
		}
	}
}

// TestHierSSARBeatsFlatOnTopology is the acceptance-criterion performance
// check: on the 2-level topology named in the issue (P=32, 4 ranks/node,
// NVLink-like intra + Aries inter), HierSSAR's simulated time must beat
// flat SSAR_Split_allgather run entirely on the inter-node profile.
func TestHierSSARBeatsFlatOnTopology(t *testing.T) {
	const (
		P       = 32
		n       = 1 << 20
		density = 1e-4
	)
	rng := rand.New(rand.NewSource(5))
	nf := float64(n)
	k := int(density * nf)
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, k)
	}

	flat := comm.NewWorld(P, simnet.Aries)
	comm.Run(flat, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather})
	})
	flatTime := flat.MaxTime()

	w := comm.NewWorldTopo(P, testTopo)
	comm.Run(w, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: HierSSAR})
	})
	hierTime := w.MaxTime()

	if hierTime <= 0 || flatTime <= 0 {
		t.Fatal("simulated times must be positive")
	}
	if hierTime >= flatTime {
		t.Fatalf("HierSSAR (%.2fµs) must beat flat SSAR_Split_allgather (%.2fµs) on a 2-level topology",
			hierTime*1e6, flatTime*1e6)
	}
	t.Logf("P=%d n=%d d=%g: hier %.2fµs vs flat %.2fµs (%.2fx)",
		P, n, density, hierTime*1e6, flatTime*1e6, flatTime/hierTime)
}

// TestHierSSARFlatFallback: requesting HierSSAR on a world with no
// topology must still be correct (degrades to split allgather).
func TestHierSSARFlatFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, P := range []int{1, 2, 5, 8} {
		inputs := patterns[0].gen(rng, 400, 30, P)
		want := refSum(inputs)
		results := runAllreduce(t, P, inputs, Options{Algorithm: HierSSAR})
		for r, res := range results {
			got := res.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=%d rank=%d coord=%d: got %g want %g", P, r, i, got[i], want[i])
				}
			}
		}
	}
}

// contendedTopo is testTopo with a fully serializing per-node NIC cap.
var contendedTopo = simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike,
	Inter: simnet.Aries, NICSerial: 1}

// TestAutoCostModelOnTopology: Auto must pick by modeled cost, not by
// topology presence — hierarchical when the NIC cap (or the latency
// structure) makes it cheapest, flat when the flat algorithm genuinely
// wins — and the result must stay correct on ragged node sizes.
func TestAutoCostModelOnTopology(t *testing.T) {
	// Latency-bound sparse instance on a NIC-capped topology: the flat
	// split/rec-double phases pay the contention factor, the hierarchical
	// leader phase (one flow per node) does not → HierSSAR.
	w := comm.NewWorldTopo(32, contendedTopo)
	comm.Run(w, func(p *comm.Proc) any {
		v := randSparse(rand.New(rand.NewSource(int64(p.Rank()))), 1<<20, 100)
		if got, _, _ := resolve(p, v, Options{}, p.NextTagBase()); got != HierSSAR {
			panic("Auto on a contended topology should resolve to HierSSAR, got " + got.String())
		}
		return nil
	})

	// Tiny instance on an uncontended topology: flat rec-double's first
	// stages are already intra-priced and it skips the hierarchical
	// broadcast entirely, so it is empirically cheaper — the old
	// topology-presence heuristic would have picked HierSSAR here.
	tiny := comm.NewWorldTopo(8, testTopo)
	comm.Run(tiny, func(p *comm.Proc) any {
		v := randSparse(rand.New(rand.NewSource(int64(p.Rank()))), 1000, 20)
		if got, _, _ := resolve(p, v, Options{}, p.NextTagBase()); got != SSARRecDouble {
			panic("Auto on a tiny uncontended instance should resolve to SSARRecDouble, got " + got.String())
		}
		return nil
	})

	// Single-node topology: no hierarchy to exploit, flat cost comparison.
	single := comm.NewWorldTopo(4, testTopo)
	comm.Run(single, func(p *comm.Proc) any {
		v := randSparse(rand.New(rand.NewSource(int64(p.Rank()))), 1<<20, 100)
		if got, _, _ := resolve(p, v, Options{}, p.NextTagBase()); got != SSARRecDouble {
			panic("Auto on a single-node topology should price flat algorithms, got " + got.String())
		}
		return nil
	})

	// Dense regime on a NIC-capped topology: the dense allgather volume
	// through a serialized NIC is what hurts, so the hierarchical DSAR
	// (one flow per node) wins — the old heuristic always chose flat DSAR.
	denseNIC := comm.NewWorldTopo(16, contendedTopo)
	comm.Run(denseNIC, func(p *comm.Proc) any {
		v := randSparse(rand.New(rand.NewSource(int64(p.Rank()))), 1<<16, 40000)
		if got, _, _ := resolve(p, v, Options{}, p.NextTagBase()); got != HierDSAR {
			panic("Auto in the contended dense regime should resolve to HierDSAR, got " + got.String())
		}
		return nil
	})

	// Dense regime without contention: flat DSAR stays cheapest (the
	// hierarchical variant pays an extra dense intra-node broadcast).
	denseW := comm.NewWorldTopo(16, testTopo)
	comm.Run(denseW, func(p *comm.Proc) any {
		v := randSparse(rand.New(rand.NewSource(int64(p.Rank()))), 1<<16, 40000)
		if got, _, _ := resolve(p, v, Options{}, p.NextTagBase()); got != DSARSplitAllgather {
			panic("Auto in the uncontended dense regime should resolve to DSAR, got " + got.String())
		}
		return nil
	})

	// End-to-end on ragged worlds under Auto, with and without contention.
	for _, topo := range []simnet.Topology{testTopo, contendedTopo} {
		rng := rand.New(rand.NewSource(23))
		P := 10
		inputs := patterns[0].gen(rng, 500, 40, P)
		want := refSum(inputs)
		wr := comm.NewWorldTopo(P, topo)
		results := comm.Run(wr, func(p *comm.Proc) *stream.Vector {
			return Allreduce(p, inputs[p.Rank()], Options{})
		})
		for r, res := range results {
			got := res.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Auto nic=%d P=%d rank=%d coord=%d: got %g want %g",
						topo.NICSerial, P, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHierSSARLeaderPhaseSelectsBySize: small agreed sizes must take the
// recursive-doubling leader phase, large ones the split allgather; both
// must be correct. Exercised via SmallDataBytes so the same input crosses
// the boundary.
func TestHierSSARLeaderPhaseSelectsBySize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	P := 16
	inputs := patterns[0].gen(rng, 2000, 100, P)
	want := refSum(inputs)
	for _, small := range []int{1, 1 << 26} { // force split vs rec-double
		w := comm.NewWorldTopo(P, testTopo)
		results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: HierSSAR, SmallDataBytes: small})
		})
		for r, res := range results {
			got := res.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("small=%d rank=%d coord=%d: got %g want %g", small, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHierDSARMatchesFlatDSAR: HierDSAR must produce bit-identical dense
// reductions to flat DSAR_Split_allgather on identical inputs, across
// divisible, ragged, degenerate, and NIC-contended node shapes (contention
// only reprices messages; data must be untouched).
func TestHierDSARMatchesFlatDSAR(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, tc := range []struct{ P, rpn, nic int }{
		{8, 2, 0}, {8, 4, 0}, {16, 4, 0}, {32, 4, 1}, // divisible
		{6, 4, 0}, {10, 4, 1}, {7, 3, 2}, // ragged last node
		{4, 4, 0}, {3, 8, 0}, // single node: degrades to flat DSAR
		{5, 1, 0}, // one rank per node: degrades to flat DSAR
	} {
		topo := simnet.Topology{RanksPerNode: tc.rpn, Intra: simnet.NVLinkLike,
			Inter: simnet.Aries, NICSerial: tc.nic}
		for _, pat := range patterns {
			n := 300 + rng.Intn(300)
			k := 1 + rng.Intn(n/6)
			inputs := pat.gen(rng, n, k, tc.P)

			flat := comm.NewWorld(tc.P, simnet.Aries)
			want := comm.Run(flat, func(p *comm.Proc) []float64 {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: DSARSplitAllgather}).ToDense()
			})

			w := comm.NewWorldTopo(tc.P, topo)
			results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: HierDSAR})
			})
			for r, res := range results {
				if !res.IsDense() {
					t.Fatalf("P=%d rpn=%d rank=%d: HierDSAR must return a dense vector", tc.P, tc.rpn, r)
				}
				got := res.ToDense()
				for i := range want[0] {
					if got[i] != want[0][i] {
						t.Fatalf("P=%d rpn=%d nic=%d pattern=%s rank=%d coord=%d: hier %g, flat %g",
							tc.P, tc.rpn, tc.nic, pat.name, r, i, got[i], want[0][i])
					}
				}
			}
		}
	}
}

// TestHierDSARQuantizedConsistent: with QSGD enabled, every rank must
// decode the same bytes (each node partition is quantized once, by its
// owning leader), so all replicas stay bit-identical even though the
// values are lossy.
func TestHierDSARQuantizedConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, P := range []int{8, 10} {
		inputs := make([]*stream.Vector, P)
		for r := range inputs {
			inputs[r] = randSparse(rng, 4096, 600)
		}
		w := comm.NewWorldTopo(P, testTopo)
		results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
			return Allreduce(p, inputs[p.Rank()], Options{
				Algorithm: HierDSAR,
				Quant:     &quant.Config{Bits: 4, Bucket: 512, Norm: quant.NormMax},
				Seed:      9,
			})
		})
		for r := 1; r < P; r++ {
			if !results[r].Equal(results[0]) {
				t.Fatalf("P=%d: rank %d quantized result differs from rank 0", P, r)
			}
		}
		// The quantized result must still approximate the true sum.
		want := refSum(inputs)
		got := results[0].ToDense()
		var num, den float64
		for i := range want {
			num += (got[i] - want[i]) * (got[i] - want[i])
			den += want[i] * want[i]
		}
		if den == 0 || num/den > 0.05 {
			t.Fatalf("P=%d: quantized relative squared error %g too large", P, num/den)
		}
	}
}

// TestHierDSARBeatsFlatUnderContention is the tentpole performance check:
// in the dense regime on a NIC-serialized topology, HierDSAR's simulated
// time must beat flat DSAR on the same world — the flat dense allgather
// pushes rpn concurrent flows through each NIC while the hierarchical
// variant pushes one.
func TestHierDSARBeatsFlatUnderContention(t *testing.T) {
	const P, n, k = 16, 1 << 16, 40000
	rng := rand.New(rand.NewSource(5))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, k)
	}
	times := map[Algorithm]float64{}
	for _, alg := range []Algorithm{DSARSplitAllgather, HierDSAR} {
		w := comm.NewWorldTopo(P, contendedTopo)
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
		})
		times[alg] = w.MaxTime()
	}
	if times[HierDSAR] <= 0 || times[DSARSplitAllgather] <= 0 {
		t.Fatal("simulated times must be positive")
	}
	if times[HierDSAR] >= times[DSARSplitAllgather] {
		t.Fatalf("HierDSAR (%.2fµs) must beat flat DSAR (%.2fµs) under NIC contention",
			times[HierDSAR]*1e6, times[DSARSplitAllgather]*1e6)
	}
	t.Logf("P=%d n=%d k=%d nic=1: hier %.2fµs vs flat %.2fµs (%.2fx)", P, n, k,
		times[HierDSAR]*1e6, times[DSARSplitAllgather]*1e6,
		times[DSARSplitAllgather]/times[HierDSAR])
}

// TestHierSSARMessageLocality: with tracing enabled, every phase-2 message
// must connect leader ranks and the bulk direct-exchange latency must be
// paid by only nodes−1 inter-node partners per leader, not P−1.
func TestHierSSARInterNodeMessageCount(t *testing.T) {
	const P = 16
	rng := rand.New(rand.NewSource(41))
	inputs := patterns[0].gen(rng, 1000, 30, P)

	countInter := func(w *comm.World, alg Algorithm) int {
		tr := w.EnableTrace()
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
		})
		inter := 0
		for _, ev := range tr.Events() {
			if !testTopo.SameNode(ev.Src, ev.Dst) {
				inter++
			}
		}
		return inter
	}

	flatInter := countInter(comm.NewWorld(P, simnet.Aries), SSARSplitAllgather)
	hierInter := countInter(comm.NewWorldTopo(P, testTopo), HierSSAR)
	if hierInter >= flatInter {
		t.Fatalf("hier must send fewer inter-node messages: hier=%d flat=%d", hierInter, flatInter)
	}
	t.Logf("inter-node messages: hier=%d flat=%d", hierInter, flatInter)
}
