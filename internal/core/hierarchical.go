package core

import (
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file implements the recursive hierarchical sparse allreduces
// HierSSAR and HierDSAR for N-level machine hierarchies (multi-GPU nodes,
// Dragonfly groups, global links — simnet.Hierarchy). The paper's analysis
// (§5.2–5.3) assumes a flat α–β network; on real machines each tier of
// links is an order of magnitude more expensive than the one below, and
// production allreduce libraries exploit that with multi-level schemes.
// One recursion rule composes across arbitrarily many tiers:
//
//  1. Up sweep — for each level l from innermost out: the leaders of the
//     level-(l-1) subgroups (all ranks, at level 0) sparse-reduce to their
//     level-l group leader (binomial tree, priced at the level-l profile).
//  2. Top phase — the leaders of the outermost grouped level run a flat
//     sparse allreduce among themselves over the top-tier links: for
//     HierSSAR recursive doubling or split allgather by agreed size, for
//     HierDSAR a DSAR (sparse split over the leader partition, densify,
//     dense — optionally QSGD-quantized — allgather).
//  3. Down sweep — the reduced vector is broadcast back through the same
//     groups, outermost level first (binomial trees).
//
// Compared to flat SSAR_Split_allgather on P ranks, the direct-exchange
// latency term shrinks from (P−1)·α on the top-tier network to one term
// per tier, each over that tier's group count and priced at that tier's
// links; and because exactly one rank per group drives traffic out of it
// during leader phases, those phases are free of the per-level egress
// serialization (Serial caps) that the flat algorithms pay in full.
// Unquantized, both algorithms are bit-identical to their flat
// counterparts (exact dyadic sums commute); without an exploitable
// hierarchy both degrade to the flat algorithms, so they are safe to
// request unconditionally.

// Tag-space layout for the phases of one hierarchical invocation, all
// within the collective's tag range and below the Auto-agreement offset
// (resolveTagOffset): per-level reduce stages from 0, the top-phase
// agreement and collective ranges above them, per-level broadcast stages
// at the top. With simnet.MaxLevels = 8 levels of hierStageStride tags
// each, every range stays disjoint for worlds up to ~16k ranks per stage.
const (
	hierStageStride    = 1 << 14
	hierLeaderAgreeTag = 1 << 17
	hierLeaderTag      = 1<<17 + 1<<16
	hierBcastBase      = 1 << 18
)

// hierReduceTag returns the tag base of the level-l up-sweep reduce.
func hierReduceTag(l int) int { return l * hierStageStride }

// hierBcastTag returns the tag base of the level-l down-sweep broadcast.
func hierBcastTag(l int) int { return hierBcastBase + l*hierStageStride }

// hierDepth returns the number of hierarchy levels the hierarchical
// algorithms should exploit: the full depth, truncated by the Levels
// option when set (a depth-d truncation runs the up/down sweeps over the
// innermost d−1 grouped levels only and the top phase among the leaders of
// level d−2 — depth 1 means flat).
func hierDepth(h simnet.Hierarchy, optLevels int) int {
	L := h.Depth()
	if optLevels > 0 && optLevels < L {
		L = optLevels
	}
	return L
}

// hierExploitable reports whether the depth-L scheme on a world of P ranks
// differs from the flat algorithm: there must be a real grouping below the
// top (Span(L-2) > 1) that does not already swallow the whole world at the
// innermost level (Span(0) < P).
func hierExploitable(h simnet.Hierarchy, L, P int) bool {
	return L >= 2 && h.Span(L-2) > 1 && h.Span(0) < P
}

// hierStage records one up-sweep stage this rank participated in, for the
// mirrored down-sweep broadcast.
type hierStage struct {
	level int
	group []int
}

// hierUpSweep runs the per-level reduce stages 0..L-2 for this rank.
// It returns this rank's surviving accumulation (nil once the rank handed
// its data to a group leader — such ranks wait for the down sweep) and the
// stages it entered. The returned vector is v itself when every stage this
// rank saw was trivial; otherwise it is pool-owned and the caller must
// release it after the top phase consumes it.
func hierUpSweep(p *comm.Proc, v *stream.Vector, h simnet.Hierarchy, L int, sc *stream.Scratch, base int) (*stream.Vector, []hierStage) {
	rank, P := p.Rank(), p.Size()
	cur := v
	var stages []hierStage
	p.SpanBegin("hier:upsweep")
	defer p.SpanEnd()
	for l := 0; l <= L-2; l++ {
		group := h.StageRanks(rank, l, P)
		if len(group) <= 1 {
			// This rank is the sole participant at this level (ragged tail
			// or GroupSize 1): it is already its own level-l leader.
			continue
		}
		stages = append(stages, hierStage{l, group})
		sub := p.Sub(group)
		out := reduceTagged(sub, cur, 0, sc, base+hierReduceTag(l))
		p.Join(sub)
		if cur != v {
			sc.Release(cur) // reduceTagged cloned it; the old accumulation is dead
		}
		cur = out
		if cur == nil {
			break // handed off to the group leader; wait for the down sweep
		}
	}
	return cur, stages
}

// hierDownSweep broadcasts the reduced vector back through the up-sweep
// stages, outermost first. Ranks that handed off mid-sweep enter with a
// nil result and receive it at their last stage.
func hierDownSweep(p *comm.Proc, result *stream.Vector, stages []hierStage, sc *stream.Scratch, base int) *stream.Vector {
	p.SpanBegin("hier:downsweep")
	defer p.SpanEnd()
	for i := len(stages) - 1; i >= 0; i-- {
		st := stages[i]
		sub := p.Sub(st.group)
		result = bcastVectorTagged(sub, result, 0, sc, base+hierBcastTag(st.level))
		p.Join(sub)
	}
	return result
}

// hierSSAR implements the recursive hierarchical sparse allreduce. Without
// an exploitable hierarchy it degrades to the flat split allgather.
func hierSSAR(p *comm.Proc, v *stream.Vector, opts Options, base int) *stream.Vector {
	sc := opts.Scratch
	h, ok := p.Hierarchy()
	P := p.Size()
	L := 0
	if ok {
		L = hierDepth(h, opts.Levels)
	}
	if !ok || !hierExploitable(h, L, P) {
		return ssarSplitAllgather(p, v, sc, base, opts.Chunks)
	}
	cur, stages := hierUpSweep(p, v, h, L, sc, base)

	// Top phase: sparse allreduce among the leaders of the outermost
	// grouped level. The leaders first agree on the maximum accumulated
	// size (the k = maxᵢ|Hᵢ| of the paper's analysis, one 8-byte word) and
	// pick the flat SSAR variant the paper's guidance prescribes for it.
	var result *stream.Vector
	if cur != nil {
		p.SpanBegin("hier:leaders")
		leaders := h.LeadersAt(L-2, P)
		if len(leaders) == 1 {
			if cur == v {
				cur = v.CloneInto(sc)
			}
			result = cur
		} else {
			lsub := p.Sub(leaders)
			kmax := int(AllreduceDenseRecDouble(lsub, []float64{float64(cur.NNZ())},
				stream.OpMax, stream.DefaultValueBytes, base+hierLeaderAgreeTag)[0])
			small := opts.SmallDataBytes
			if small == 0 {
				small = DefaultSmallDataBytes
			}
			wire := stream.HeaderBytes + kmax*(stream.IndexBytes+cur.ValueBytes())
			if wire <= small {
				result = ssarRecDouble(lsub, cur, sc, base+hierLeaderTag)
			} else {
				result = ssarSplitAllgather(lsub, cur, sc, base+hierLeaderTag, opts.Chunks)
			}
			p.Join(lsub)
			if cur != v {
				sc.Release(cur) // the leader allreduce cloned it
			}
		}
		p.SpanEnd()
	}

	return hierDownSweep(p, result, stages, sc, base)
}

// hierDSAR implements the recursive hierarchical dynamic sparse allreduce:
// the same up and down sweeps as hierSSAR with the top phase replaced by a
// DSAR among the outermost-level leaders — sparse split over the leader
// partition, densify at each leader, dense (optionally QSGD-quantized)
// allgather over the top-tier links. Because one rank per group drives
// traffic out of it in the top phase, the exchange is free of per-level
// egress serialization, which is what makes the scheme win on
// Serial-capped hierarchies in the dense regime. Unquantized results are
// bit-identical to flat DSAR (both compute exact sums densely); with
// quantization each leader partition is encoded once by its owning leader,
// so all ranks still decode identical bytes, but the bucket boundaries
// differ from flat DSAR's P-way partition and the two quantized variants
// are only statistically, not bitwise, equal. Without an exploitable
// hierarchy it degrades to flat DSAR, so it is safe to request
// unconditionally.
func hierDSAR(p *comm.Proc, v *stream.Vector, opts Options, base int) *stream.Vector {
	sc := opts.Scratch
	h, ok := p.Hierarchy()
	P := p.Size()
	L := 0
	if ok {
		L = hierDepth(h, opts.Levels)
	}
	if !ok || !hierExploitable(h, L, P) {
		return dsarSplitAllgather(p, v, opts, base)
	}
	cur, stages := hierUpSweep(p, v, h, L, sc, base)

	// Top phase: DSAR among the outermost-level leaders. Each leader owns
	// one of the leader-count dimension partitions, densifies it after the
	// sparse split, and the dense (optionally quantized) partitions are
	// allgathered — one egress flow per group.
	var result *stream.Vector
	if cur != nil {
		p.SpanBegin("hier:leaders")
		lsub := p.Sub(h.LeadersAt(L-2, P))
		result = dsarSplitAllgather(lsub, cur, opts, base+hierLeaderTag)
		p.Join(lsub)
		if cur != v {
			sc.Release(cur) // the leader DSAR extracted slices; the input is dead
		}
		p.SpanEnd()
	}

	return hierDownSweep(p, result, stages, sc, base)
}

// bcastVectorTagged broadcasts the root's sparse vector to every rank of
// the communicator via a binomial tree (log2(P) rounds); non-root ranks
// pass nil and every rank returns its own copy. Forwarded copies are drawn
// from sc; each destination adopts its dedicated clone.
func bcastVectorTagged(p *comm.Proc, v *stream.Vector, root int, sc *stream.Scratch, base int) *stream.Vector {
	rank, P := p.Rank(), p.Size()
	vrank := (rank - root + P) % P
	var have *stream.Vector
	if vrank == 0 {
		have = v
	}
	mask := 1
	for mask < P {
		mask *= 2
	}
	for mask /= 2; mask >= 1; mask /= 2 {
		if vrank&(mask-1) != 0 { // not yet active at this level
			continue
		}
		if vrank&mask == 0 {
			dst := vrank | mask
			if dst < P && have != nil {
				p.Send((dst+root)%P, base, have.CloneInto(sc), have.WireBytes())
			}
		} else if have == nil {
			src := vrank &^ mask
			have = p.Recv((src+root)%P, base).Payload.(*stream.Vector)
		}
	}
	return have
}
