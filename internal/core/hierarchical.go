package core

import (
	"repro/internal/comm"
	"repro/internal/stream"
)

// This file implements HierSSAR, the hierarchical sparse allreduce for
// two-level topologies (multi-GPU nodes, Dragonfly groups). The paper's
// analysis (§5.2–5.3) assumes a flat α–β network; on real machines
// intra-node links are an order of magnitude cheaper than the network, and
// production allreduce libraries exploit that with two-level schemes. The
// hierarchical composition is:
//
//  1. intra-node sparse reduce to the node leader (binomial tree over the
//     node sub-communicator, priced at the cheap intra-node profile),
//  2. sparse allreduce among the node leaders over the inter-node network,
//     reusing the flat SSAR machinery (recursive doubling for small agreed
//     sizes, split allgather otherwise) on a leader sub-communicator,
//  3. intra-node broadcast of the reduced vector (binomial tree).
//
// Compared to flat SSAR_Split_allgather on P ranks, the direct-exchange
// latency term shrinks from (P−1)·α to (P/r−1)·α on the expensive network
// (r = ranks per node), at the cost of one cheap intra-node reduce and
// broadcast — a win whenever the intra links are meaningfully faster.

// Tag-space offsets for the phases of one HierSSAR invocation, all within
// the collective's tag range and below the Auto-agreement offset.
const (
	hierIntraReduceTag = 0
	hierLeaderAgreeTag = 1 << 16
	hierLeaderTag      = 1 << 17
	hierIntraBcastTag  = 1<<17 + 1<<16
)

// hierSSAR implements the hierarchical sparse allreduce. Without a
// topology (or with one that yields a single node, or one rank per node)
// there is no hierarchy to exploit and it degrades to the flat split
// allgather, so the algorithm is safe to request unconditionally.
func hierSSAR(p *comm.Proc, v *stream.Vector, opts Options, base int) *stream.Vector {
	sc := opts.Scratch
	topo, ok := p.Topology()
	P := p.Size()
	if !ok || topo.RanksPerNode <= 1 || topo.RanksPerNode >= P {
		return ssarSplitAllgather(p, v, sc, base)
	}
	rank := p.Rank()
	members := topo.NodeRanks(rank, P)
	leaders := topo.LeaderRanks(P)
	isLeader := topo.Leader(rank) == rank

	// Phase 1: intra-node sparse reduce to the node leader. Non-leaders
	// hold nil afterwards and wait for the phase-3 broadcast.
	var acc *stream.Vector
	if len(members) == 1 {
		acc = v.CloneInto(sc)
	} else {
		sub := p.Sub(members)
		acc = reduceTagged(sub, v, 0, sc, base+hierIntraReduceTag)
		p.Join(sub)
	}

	// Phase 2: sparse allreduce among node leaders over the inter-node
	// network. The leaders first agree on the maximum accumulated size
	// (the k = maxᵢ|Hᵢ| of the paper's analysis, one 8-byte word) and pick
	// the flat SSAR variant the paper's guidance prescribes for it.
	var result *stream.Vector
	if isLeader {
		if len(leaders) == 1 {
			result = acc
		} else {
			lsub := p.Sub(leaders)
			kmax := int(AllreduceDenseRecDouble(lsub, []float64{float64(acc.NNZ())},
				stream.OpMax, stream.DefaultValueBytes, base+hierLeaderAgreeTag)[0])
			small := opts.SmallDataBytes
			if small == 0 {
				small = DefaultSmallDataBytes
			}
			wire := stream.HeaderBytes + kmax*(stream.IndexBytes+acc.ValueBytes())
			if wire <= small {
				result = ssarRecDouble(lsub, acc, sc, base+hierLeaderTag)
			} else {
				result = ssarSplitAllgather(lsub, acc, sc, base+hierLeaderTag)
			}
			p.Join(lsub)
			sc.Release(acc) // the leader allreduce cloned it
		}
	}

	// Phase 3: intra-node broadcast of the reduced vector.
	if len(members) > 1 {
		sub := p.Sub(members)
		result = bcastVectorTagged(sub, result, 0, sc, base+hierIntraBcastTag)
		p.Join(sub)
	}
	return result
}

// hierDSAR implements the hierarchical dynamic sparse allreduce: the same
// intra-node reduce and broadcast phases as hierSSAR, with the leader
// phase replaced by a DSAR among node leaders — sparse split over the
// node-count partition, densify at each leader, dense (optionally
// QSGD-quantized) allgather over the inter-node network. Because one rank
// per node drives the network in phase 2, the leader exchange is free of
// per-node NIC contention, which is what makes the scheme win on
// NICSerial-capped topologies in the dense regime. Unquantized results
// are bit-identical to flat DSAR (both compute exact sums densely); with
// quantization each node-partition is encoded once by its owning leader,
// so all ranks still decode identical bytes, but the bucket boundaries
// differ from flat DSAR's P-way partition and the two quantized variants
// are only statistically, not bitwise, equal. Without an exploitable
// topology it degrades to flat DSAR, so it is safe to request
// unconditionally.
func hierDSAR(p *comm.Proc, v *stream.Vector, opts Options, base int) *stream.Vector {
	sc := opts.Scratch
	topo, ok := p.Topology()
	P := p.Size()
	if !ok || topo.RanksPerNode <= 1 || topo.RanksPerNode >= P {
		return dsarSplitAllgather(p, v, opts, base)
	}
	rank := p.Rank()
	members := topo.NodeRanks(rank, P)
	leaders := topo.LeaderRanks(P)
	isLeader := topo.Leader(rank) == rank

	// Phase 1: intra-node sparse reduce to the node leader.
	var acc *stream.Vector
	if len(members) == 1 {
		acc = v.CloneInto(sc)
	} else {
		sub := p.Sub(members)
		acc = reduceTagged(sub, v, 0, sc, base+hierIntraReduceTag)
		p.Join(sub)
	}

	// Phase 2: DSAR among node leaders. Each leader owns one of
	// len(leaders) dimension partitions, densifies it after the sparse
	// split, and the dense (optionally quantized) partitions are
	// allgathered — one NIC flow per node.
	var result *stream.Vector
	if isLeader {
		lsub := p.Sub(leaders)
		result = dsarSplitAllgather(lsub, acc, opts, base+hierLeaderTag)
		p.Join(lsub)
		sc.Release(acc) // the leader DSAR extracted slices; the input is dead
	}

	// Phase 3: intra-node broadcast of the dense result.
	if len(members) > 1 {
		sub := p.Sub(members)
		result = bcastVectorTagged(sub, result, 0, sc, base+hierIntraBcastTag)
		p.Join(sub)
	}
	return result
}

// bcastVectorTagged broadcasts the root's sparse vector to every rank of
// the communicator via a binomial tree (log2(P) rounds); non-root ranks
// pass nil and every rank returns its own copy. Forwarded copies are drawn
// from sc; each destination adopts its dedicated clone.
func bcastVectorTagged(p *comm.Proc, v *stream.Vector, root int, sc *stream.Scratch, base int) *stream.Vector {
	rank, P := p.Rank(), p.Size()
	vrank := (rank - root + P) % P
	var have *stream.Vector
	if vrank == 0 {
		have = v
	}
	mask := 1
	for mask < P {
		mask *= 2
	}
	for mask /= 2; mask >= 1; mask /= 2 {
		if vrank&(mask-1) != 0 { // not yet active at this level
			continue
		}
		if vrank&mask == 0 {
			dst := vrank | mask
			if dst < P && have != nil {
				p.Send((dst+root)%P, base, have.CloneInto(sc), have.WireBytes())
			}
		} else if have == nil {
			src := vrank &^ mask
			have = p.Recv((src+root)%P, base).Payload.(*stream.Vector)
		}
	}
	return have
}
