package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// TestChunkedEqualsUnchunked is the chunked-pipeline property test: for
// every algorithm, on flat, ragged two-level, and ragged three-level
// worlds, with plain and QSGD-quantized payloads, the pipelined execution
// at Chunks ∈ {2, 4, 8} must produce results bit-identical to the
// unchunked (Chunks=1) pass on every rank. Dyadic values make float
// addition exact, so the chunk merges' different fold order cannot hide
// behind rounding — any divergence is a pipeline bug (a dropped or
// double-counted key range, a tag collision between chunk stages, or a
// chunk boundary that differs across ranks).
func TestChunkedEqualsUnchunked(t *testing.T) {
	worlds := []struct {
		name string
		P    int
		mk   func(P int) *comm.World
	}{
		{"flat/P=8", 8, func(P int) *comm.World { return comm.NewWorld(P, testProfile) }},
		{"flat/P=5", 5, func(P int) *comm.World { return comm.NewWorld(P, testProfile) }},
		{"topo/P=10/ragged", 10, func(P int) *comm.World { return comm.NewWorldTopo(P, testTopo) }},
		{"hier3/P=17/ragged-both", 17, func(P int) *comm.World { return comm.NewWorldHier(P, testHier3) }},
	}
	quants := []*quant.Config{
		nil,
		{Bits: 4, Bucket: 512, Norm: quant.NormMax},
	}
	rng := rand.New(rand.NewSource(8101))
	for _, wc := range worlds {
		for qi, qc := range quants {
			t.Run(fmt.Sprintf("%s/quant=%v", wc.name, qc != nil), func(t *testing.T) {
				n := 600 + rng.Intn(600)
				inputs := make([]*stream.Vector, wc.P)
				for r := range inputs {
					// Ragged per-rank k: chunk boundaries must not depend on it.
					inputs[r] = randSparse(rng, n, 10+rng.Intn(n/4))
					if rng.Intn(4) == 0 {
						inputs[r].Densify()
					}
				}
				for _, alg := range allAlgorithms {
					if qc != nil && alg != DSARSplitAllgather && alg != HierDSAR {
						continue // quantization applies to the dense-allgather family
					}
					run := func(chunks int) []*stream.Vector {
						w := wc.mk(wc.P)
						return comm.Run(w, func(p *comm.Proc) *stream.Vector {
							return Allreduce(p, inputs[p.Rank()],
								Options{Algorithm: alg, Chunks: chunks, Quant: qc, Seed: 7})
						})
					}
					base := run(1)
					for _, C := range []int{2, 4, 8} {
						got := run(C)
						for r := range got {
							if !vectorsEqual(base[r], got[r]) {
								t.Fatalf("%s chunks=%d quant=%d rank=%d: result differs from unchunked",
									alg, C, qi, r)
							}
						}
					}
				}
			})
		}
	}
}

// vectorsEqual compares two vectors' dense contents bit-for-bit.
func vectorsEqual(a, b *stream.Vector) bool {
	da, db := a.ToDense(), b.ToDense()
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// TestChunkedAutoChunksDeterministic: AutoChunks must resolve to the same
// chunk degree on every rank (it feeds the collective's tag layout) and
// still produce the reference sum.
func TestChunkedAutoChunksDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8102))
	P := 8
	inputs := patterns[0].gen(rng, 4000, 700, P)
	want := refSum(inputs)
	for _, alg := range []Algorithm{SSARSplitAllgather, DSARSplitAllgather, Auto} {
		w := comm.NewWorld(P, testProfile)
		results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg, Chunks: AutoChunks})
		})
		for r, res := range results {
			got := res.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("alg=%s rank=%d coord=%d: got %g want %g", alg, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNonblockingOnRealTransports runs IAllreduce and ISparseAllgather on
// the goroutine and loopback-TCP backends — previously only exercised on
// the simulator — including two outstanding requests issued in identical
// program order on every rank, and checks the results bit-identical to
// the blocking simulator reference.
func TestNonblockingOnRealTransports(t *testing.T) {
	rng := rand.New(rand.NewSource(8103))
	P := 4
	a := patterns[0].gen(rng, 800, 60, P)
	b := patterns[2].gen(rng, 800, 60, P)
	wantA, wantB := refSum(a), refSum(b)

	// The allgather reference: the simulator's blocking result per rank.
	simW := comm.NewWorld(P, simnet.Aries)
	wantAG := comm.Run(simW, func(p *comm.Proc) []float64 {
		return SparseAllgather(p, b[p.Rank()]).ToDense()
	})

	type world struct {
		name string
		w    *comm.World
	}
	worlds := []world{
		{"goroutine", comm.NewWorld(P, simnet.Aries).UseGoroutineTransport()},
	}
	if tcpW, err := comm.NewWorldTCP(P, simnet.Aries, comm.TCPConfig{}); err != nil {
		t.Logf("skipping tcp: %v", err)
	} else {
		defer tcpW.Close()
		worlds = append(worlds, world{"tcp", tcpW})
	}

	for _, wc := range worlds {
		t.Run(wc.name, func(t *testing.T) {
			type out struct {
				a, b []float64
			}
			results := comm.Run(wc.w, func(p *comm.Proc) out {
				// Two outstanding allreduces in identical program order,
				// chunked to drive the pipelined path on a real transport.
				r1 := IAllreduce(p, a[p.Rank()], Options{Algorithm: SSARSplitAllgather, Chunks: 4})
				r2 := IAllreduce(p, b[p.Rank()], Options{Algorithm: SSARRecDouble})
				return out{a: r1.Wait(p).ToDense(), b: r2.Wait(p).ToDense()}
			})
			for r, res := range results {
				for i := range wantA {
					if res.a[i] != wantA[i] {
						t.Fatalf("rank %d coord %d: outstanding req 1 got %g want %g", r, i, res.a[i], wantA[i])
					}
					if res.b[i] != wantB[i] {
						t.Fatalf("rank %d coord %d: outstanding req 2 got %g want %g", r, i, res.b[i], wantB[i])
					}
				}
			}
			ag := comm.Run(wc.w, func(p *comm.Proc) []float64 {
				return ISparseAllgather(p, b[p.Rank()]).Wait(p).ToDense()
			})
			for r := range ag {
				for i := range wantAG[r] {
					if ag[r][i] != wantAG[r][i] {
						t.Fatalf("rank %d coord %d: ISparseAllgather diverges from simulator", r, i)
					}
				}
			}
		})
	}
}
