package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/density"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// simulateUniform runs one allreduce of the given uniform-sparse instance and
// returns the simulated completion time.
func simulateUniform(t *testing.T, n, k, P int, topo *simnet.Topology, prof simnet.Profile, alg Algorithm) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + int64(k)*31 + int64(P)*7))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, k)
	}
	var w *comm.World
	if topo != nil {
		w = comm.NewWorldTopo(P, *topo)
	} else {
		w = comm.NewWorld(P, prof)
	}
	comm.Run(w, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
	})
	return w.MaxTime()
}

// simulateUniformHier is simulateUniform on an N-level hierarchy world
// with an explicit recursion depth.
func simulateUniformHier(t *testing.T, n, k, P int, h simnet.Hierarchy, levels int, alg Algorithm) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + int64(k)*31 + int64(P)*7))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, k)
	}
	w := comm.NewWorldHier(P, h)
	comm.Run(w, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg, Levels: levels})
	})
	return w.MaxTime()
}

// TestPredictTracksSimulator: on uniform supports the model must stay
// within a modest relative error of the simulated time for every priced
// algorithm, across flat, topology, and NIC-contended scenarios. The
// model only needs to *rank* algorithms, but tracking the absolute time
// keeps the formulas honest.
func TestPredictTracksSimulator(t *testing.T) {
	topo := simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries}
	nic := simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 1}
	cases := []struct {
		name    string
		n, k, P int
		topo    *simnet.Topology
	}{
		{"flat-small", 1 << 20, 100, 4, nil},
		{"flat-large", 1 << 20, 50000, 4, nil},
		{"flat-overlap", 1 << 16, 3000, 16, nil},
		{"topo-sparse", 1 << 20, 100, 32, &topo},
		{"nic-sparse", 1 << 20, 100, 32, &nic},
		{"nic-dense", 1 << 16, 40000, 16, &nic},
	}
	algs := []Algorithm{SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather, HierSSAR, HierDSAR}
	for _, tc := range cases {
		s := CostScenario{N: tc.n, P: tc.P, K: tc.k, Profile: simnet.Aries, Topo: tc.topo}
		if tc.topo == nil {
			s.Profile = testProfile
		}
		for _, alg := range algs {
			model := PredictSeconds(alg, s)
			sim := simulateUniform(t, tc.n, tc.k, tc.P, tc.topo, s.Profile, alg)
			if model <= 0 || sim <= 0 {
				t.Fatalf("%s/%s: non-positive time (model=%g sim=%g)", tc.name, alg, model, sim)
			}
			if r := math.Abs(model-sim) / sim; r > 0.35 {
				t.Errorf("%s/%s: model %.3gs vs sim %.3gs (rel err %.0f%%)",
					tc.name, alg, model, sim, r*100)
			}
		}
	}
}

// TestPredictTracksSimulator3Level: the level-aware closed forms must
// track the simulator on a 3-level DragonflyLike machine too, for every
// priced algorithm at every recursion depth.
func TestPredictTracksSimulator3Level(t *testing.T) {
	h := simnet.DragonflyLike(4, 4)
	cases := []struct {
		name    string
		n, k, P int
	}{
		{"dfly-sparse", 1 << 20, 100, 64},
		{"dfly-dense", 1 << 16, 40000, 64},
		{"dfly-ragged", 1 << 18, 2000, 27},
	}
	for _, tc := range cases {
		s := CostScenario{N: tc.n, P: tc.P, K: tc.k, Profile: simnet.AriesGlobal, Hier: &h}
		for _, alg := range []Algorithm{SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather} {
			model := PredictSeconds(alg, s)
			sim := simulateUniformHier(t, tc.n, tc.k, tc.P, h, 0, alg)
			if r := math.Abs(model-sim) / sim; r > 0.35 {
				t.Errorf("%s/%s: model %.3gs vs sim %.3gs (rel err %.0f%%)", tc.name, alg, model, sim, r*100)
			}
		}
		for _, alg := range []Algorithm{HierSSAR, HierDSAR} {
			for _, levels := range []int{2, 3} {
				sc := s
				sc.Levels = levels
				model := PredictSeconds(alg, sc)
				sim := simulateUniformHier(t, tc.n, tc.k, tc.P, h, levels, alg)
				if r := math.Abs(model-sim) / sim; r > 0.35 {
					t.Errorf("%s/%s@%d: model %.3gs vs sim %.3gs (rel err %.0f%%)",
						tc.name, alg, levels, model, sim, r*100)
				}
			}
		}
	}
}

// TestAutoMatchesEmpiricalCheapest is the acceptance-criterion check: in
// scenarios where the old topology-presence heuristic picks the wrong
// algorithm, the cost-model Auto must pick the one that is actually
// cheapest in simulation.
func TestAutoMatchesEmpiricalCheapest(t *testing.T) {
	topo := simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries}
	nic := simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 1}
	cases := []struct {
		name    string
		n, k, P int
		topo    simnet.Topology
		old     Algorithm // what the PR-1 topology-presence heuristic chose
	}{
		// Sparse regime on an uncontended topology: old heuristic always
		// went hierarchical; flat rec-double is empirically cheaper.
		{"sparse-uncontended", 1 << 20, 100, 32, topo, HierSSAR},
		// Dense regime under NIC serialization: old heuristic always went
		// flat DSAR; the hierarchical DSAR is empirically cheaper.
		{"dense-contended", 1 << 16, 40000, 16, nic, DSARSplitAllgather},
	}
	for _, tc := range cases {
		s := CostScenario{N: tc.n, P: tc.P, K: tc.k, Profile: simnet.Aries, Topo: &tc.topo}
		choice := ChooseAuto(s)
		if choice == tc.old {
			t.Fatalf("%s: cost model chose %s, same as the old heuristic — scenario no longer discriminates",
				tc.name, choice)
		}
		candidates := []Algorithm{SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather, HierSSAR, HierDSAR}
		cheapest, cheapestT := Algorithm(-1), math.Inf(1)
		times := map[Algorithm]float64{}
		for _, alg := range candidates {
			sim := simulateUniform(t, tc.n, tc.k, tc.P, &tc.topo, simnet.Aries, alg)
			times[alg] = sim
			if sim < cheapestT {
				cheapest, cheapestT = alg, sim
			}
		}
		if choice != cheapest {
			t.Fatalf("%s: Auto chose %s (sim %.3gs) but %s is cheapest (sim %.3gs)",
				tc.name, choice, times[choice], cheapest, cheapestT)
		}
		if times[tc.old] <= cheapestT {
			t.Fatalf("%s: old heuristic's %s is not actually worse (%.3gs vs %.3gs)",
				tc.name, tc.old, times[tc.old], cheapestT)
		}
		t.Logf("%s: auto=%s %.2fµs, old=%s %.2fµs (%.2fx saved)",
			tc.name, choice, cheapestT*1e6, tc.old, times[tc.old]*1e6, times[tc.old]/cheapestT)
	}
}

// TestChooseAutoDeterministicAndFlatSafe: the comparator must be a pure
// function (same scenario → same choice) and must never pick a
// hierarchical algorithm without an exploitable topology.
func TestChooseAutoDeterministicAndFlatSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		s := CostScenario{
			N:       100 + rng.Intn(1<<20),
			P:       1 + rng.Intn(64),
			Profile: simnet.Aries,
		}
		s.K = rng.Intn(s.N + 1)
		if rng.Intn(2) == 0 {
			topo := simnet.Topology{
				RanksPerNode: 1 + rng.Intn(8),
				Intra:        simnet.NVLinkLike,
				Inter:        simnet.Aries,
				NICSerial:    rng.Intn(3),
			}
			s.Topo = &topo
		}
		a, b := ChooseAuto(s), ChooseAuto(s)
		if a != b {
			t.Fatalf("trial %d: ChooseAuto not deterministic (%s vs %s)", trial, a, b)
		}
		if s.Topo == nil && (a == HierSSAR || a == HierDSAR) {
			t.Fatalf("trial %d: hierarchical algorithm %s chosen on a flat world", trial, a)
		}
	}
}

// TestPredictSeconds panics on unpriced algorithms and bad scenarios.
func TestPredictSecondsValidation(t *testing.T) {
	s := CostScenario{N: 100, P: 4, K: 10, Profile: simnet.Aries}
	for _, bad := range []func(){
		func() { PredictSeconds(DenseRing, s) },
		func() { PredictSeconds(SSARRecDouble, CostScenario{N: 0, P: 4, K: 1, Profile: simnet.Aries}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

// TestClusteredSupportModelRemovesSkew quantifies the ROADMAP item this
// knob fixes: on the `clustered` input pattern the uniform-support model
// systematically overestimates fill-in E[K], which skews ChooseAuto's δ
// regime gate toward the dense-result family. The blocked closed form
// tracks the measured union; on a shape near δ the two models route Auto
// to different families, and the clustered model's choice keeps the
// result sparse as it should be.
func TestClusteredSupportModelRemovesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n, k, P := 1<<16, 5000, 16

	// Measure the actual union of `clustered`-pattern supports.
	inputs := patterns[3].gen(rng, n, k, P) // the "clustered" pattern
	sets := make([][]int32, P)
	for r, v := range inputs {
		idx, _ := v.Pairs()
		sets[r] = idx
	}
	measured := float64(density.MeasureK(sets))

	uniform := CostScenario{N: n, P: P, K: k, Profile: simnet.Aries}
	clustered := CostScenario{N: n, P: P, K: k, Profile: simnet.Aries, Support: SupportClustered}
	eUni := density.ExpectedKUniform(n, k, P)
	eClu := density.ExpectedKClustered(n, k, P, DefaultHotFraction, DefaultHotMass)

	if eUni < 1.4*measured {
		t.Fatalf("uniform model E[K]=%.0f should clearly overestimate measured %.0f", eUni, measured)
	}
	if rel := math.Abs(eClu-measured) / measured; rel > 0.20 {
		t.Fatalf("clustered model E[K]=%.0f vs measured %.0f (rel err %.0f%%)", eClu, measured, rel*100)
	}
	t.Logf("measured K=%.0f, uniform E[K]=%.0f (%.2fx overestimate), clustered E[K]=%.0f (%.2fx)",
		measured, eUni, eUni/measured, eClu, eClu/measured)

	// The skew is consequential: near δ the uniform gate routes to the
	// dense-result DSAR family while the clustered gate correctly keeps
	// the sparse-result SSAR family.
	delta := stream.Delta(n, stream.DefaultValueBytes)
	if eUni < float64(delta) || eClu >= float64(delta) {
		t.Fatalf("shape no longer straddles δ=%d (uniform %.0f, clustered %.0f)", delta, eUni, eClu)
	}
	if got := ChooseAuto(uniform); got != DSARSplitAllgather {
		t.Fatalf("uniform-model Auto should pick the dense family here, got %s", got)
	}
	switch got := ChooseAuto(clustered); got {
	case SSARRecDouble, SSARSplitAllgather:
		// sparse-result family, as the measured fill-in warrants
	default:
		t.Fatalf("clustered-model Auto should pick a sparse-result algorithm, got %s", got)
	}
	if measured >= float64(delta) {
		t.Fatalf("measured union %.0f is not actually below δ=%d", measured, delta)
	}
}

// TestSupportModelGateBoundary is the boundary-value companion to
// TestClusteredSupportModelRemovesSkew: it locates, by bisection, the
// exact per-rank non-zero count at which each support model's expected
// fill-in crosses δ — the point where the δ regime gate flips Auto from
// the sparse-result to the dense-result family — and pins (a) that the
// flip is a clean boundary (k−1 routes sparse, k routes dense, for both
// models), and (b) the documented skew: the uniform worst case reaches
// the gate at roughly a third of the clustered form's k, the band in
// which the two models disagree about the decision.
func TestSupportModelGateBoundary(t *testing.T) {
	n, P := 1<<16, 16
	delta := stream.Delta(n, stream.DefaultValueBytes)
	gateK := func(support SupportModel) int {
		lo, hi := 1, n // fill is monotone in k; find min k with E[K] >= δ
		for lo < hi {
			mid := (lo + hi) / 2
			var ek float64
			if support == SupportClustered {
				ek = density.ExpectedKClustered(n, mid, P, DefaultHotFraction, DefaultHotMass)
			} else {
				ek = density.ExpectedKUniform(n, mid, P)
			}
			if ek >= float64(delta) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	family := func(k int, support SupportModel) string {
		alg := ChooseAuto(CostScenario{N: n, P: P, K: k, Profile: simnet.Aries, Support: support})
		switch alg {
		case DSARSplitAllgather, HierDSAR:
			return "dense"
		default:
			return "sparse"
		}
	}

	kU, kC := gateK(SupportUniform), gateK(SupportClustered)
	if kU >= kC {
		t.Fatalf("uniform gate k=%d must sit below clustered gate k=%d", kU, kC)
	}
	// The uniform form's ~1.65x E[K] overestimate on clustered supports
	// translates to reaching δ at roughly a third of the clustered k here.
	if ratio := float64(kC) / float64(kU); ratio < 1.5 || ratio > 5 {
		t.Fatalf("gate-k ratio %.2f outside the documented skew band [1.5, 5]", ratio)
	}
	// Boundary values: one non-zero below each gate stays sparse, the
	// gate itself flips dense — for the model that owns the gate.
	for _, tc := range []struct {
		support SupportModel
		k       int
		name    string
	}{
		{SupportUniform, kU, "uniform"},
		{SupportClustered, kC, "clustered"},
	} {
		if got := family(tc.k-1, tc.support); got != "sparse" {
			t.Fatalf("%s model at gate-1 (k=%d) routed %s, want sparse", tc.name, tc.k-1, got)
		}
		if got := family(tc.k, tc.support); got != "dense" {
			t.Fatalf("%s model at gate (k=%d) routed %s, want dense", tc.name, tc.k, got)
		}
	}
	// Inside the disagreement band the two models flip the DECISION, not
	// just the estimate: same instance, different family.
	mid := (kU + kC) / 2
	if family(mid, SupportUniform) != "dense" || family(mid, SupportClustered) != "sparse" {
		t.Fatalf("k=%d inside (kU=%d, kC=%d) should split the models' decisions", mid, kU, kC)
	}
	t.Logf("δ=%d: uniform gate k=%d, clustered gate k=%d (ratio %.2f)", delta, kU, kC, float64(kC)/float64(kU))
}

// TestExternalFlowsRaisePredictedCost: modeling co-tenant flows via
// CostScenario.External must strictly raise every contended algorithm's
// predicted time on a serialization-capped hierarchy, monotonically in the
// external count, while an empty or all-zero External prices identically
// to the sole-tenant scenario.
func TestExternalFlowsRaisePredictedCost(t *testing.T) {
	h := simnet.DragonflyLike(4, 2)
	base := CostScenario{N: 1 << 16, P: 32, K: 1 << 12, Profile: simnet.AriesGlobal, Hier: &h}
	algs := []Algorithm{SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather, HierSSAR, HierDSAR}
	for _, alg := range algs {
		sole := PredictSeconds(alg, base)
		zero := base
		zero.External = []int{0, 0, 0}
		if got := PredictSeconds(alg, zero); got != sole {
			t.Fatalf("%v: zero External changed the prediction: %g vs %g", alg, got, sole)
		}
		prev := sole
		for _, ext := range []int{4, 16, 64} {
			sc := base
			sc.External = []int{ext, ext, ext}
			got := PredictSeconds(alg, sc)
			if got <= prev {
				t.Fatalf("%v: External=%d predicted %g, want > %g", alg, ext, got, prev)
			}
			prev = got
		}
	}
	// Ingress caps compound with egress on the same crossed levels.
	capped := simnet.Hierarchy{Levels: append([]simnet.Level(nil), h.Levels...)}
	for i := range capped.Levels {
		capped.Levels[i].IngressSerial = capped.Levels[i].Serial
	}
	for _, alg := range algs {
		eg := base
		eg.External = []int{8, 8, 8}
		in := eg
		in.Hier = &capped
		if got, want := PredictSeconds(alg, in), PredictSeconds(alg, eg); got <= want {
			t.Fatalf("%v: ingress caps predicted %g, want > egress-only %g", alg, got, want)
		}
	}
}
