// Package core implements the paper's primary contribution: sparse
// collective communication algorithms over sparse streams (§5.3).
//
// Three sparse allreduce algorithms are provided, matching the paper:
//
//   - SSAR_Recursive_double — recursive doubling over sparse streams, best
//     when the reduced data is small and latency dominates (§5.3.1).
//   - SSAR_Split_allgather — a split (reduce-scatter by dimension
//     partition) phase followed by a sparse concatenating allgather, best
//     for large data whose result stays sparse (§5.3.2).
//   - DSAR_Split_allgather — the dynamic variant: the split phase stays
//     sparse, then each partition switches to a dense representation
//     (optionally QSGD-quantized, §6) for a dense allgather (§5.3.3).
//
// Dense baselines (recursive doubling, Rabenseifner, ring) and sparse/dense
// allgathers are included, as are nonblocking variants of everything, and
// an Auto mode implementing the paper's selection guidance.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/quant"
	"repro/internal/stream"
)

// Algorithm selects the allreduce implementation.
type Algorithm int

const (
	// Auto picks an algorithm by modeled cost: the paper's δ gate first
	// fixes the result representation (expected fill-in E[K] ≥ δ routes to
	// the dense-result DSAR family, which also honors quantization; below
	// δ to the sparse-result SSAR family), then the candidates — including
	// the hierarchical variants on multi-node topology worlds — are priced
	// by the α–β(+NIC contention) cost model (see CostScenario and
	// PredictSeconds) and the cheapest wins. Every rank first agrees on
	// the maximum per-rank non-zero count, so all ranks pick the same
	// algorithm.
	Auto Algorithm = iota
	// SSARRecDouble is static sparse allreduce by recursive doubling.
	SSARRecDouble
	// SSARSplitAllgather is static sparse allreduce by dimension split +
	// sparse allgather.
	SSARSplitAllgather
	// DSARSplitAllgather is dynamic sparse allreduce: sparse split phase,
	// dense (optionally quantized) allgather phase.
	DSARSplitAllgather
	// DenseRecDouble is the dense recursive-doubling baseline.
	DenseRecDouble
	// DenseRabenseifner is the dense reduce-scatter + allgather baseline
	// used by MPI libraries for large messages.
	DenseRabenseifner
	// DenseRing is the ring allreduce baseline.
	DenseRing
	// RingSparse is the sparse counterpart of the ring allreduce shown in
	// the Figure 3 micro-benchmarks.
	RingSparse
	// HierSSAR is the hierarchical (topology-aware) static sparse
	// allreduce: an intra-node sparse reduce to each node leader, a sparse
	// allreduce among leaders over the inter-node network (recursive
	// doubling or split allgather, by agreed size), and an intra-node
	// broadcast of the result. On a flat world it degrades to
	// SSARSplitAllgather.
	HierSSAR
	// HierDSAR is the hierarchical dynamic sparse allreduce: an intra-node
	// sparse reduce to each node leader, a DSAR among leaders over the
	// inter-node network (sparse split by node partition, densify at the
	// leader, dense — optionally QSGD-quantized — allgather), and an
	// intra-node broadcast of the dense result. Returns a dense vector on
	// every rank; without quantization the reduction is bit-identical to
	// flat DSARSplitAllgather (exact sums). On a flat world it degrades to
	// DSARSplitAllgather.
	HierDSAR
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "Auto"
	case SSARRecDouble:
		return "SSAR_Recursive_double"
	case SSARSplitAllgather:
		return "SSAR_Split_allgather"
	case DSARSplitAllgather:
		return "DSAR_Split_allgather"
	case DenseRecDouble:
		return "Dense_Recursive_double"
	case DenseRabenseifner:
		return "Dense_Rabenseifner"
	case DenseRing:
		return "Dense_Ring"
	case RingSparse:
		return "Ring_sparse"
	case HierSSAR:
		return "SSAR_Hierarchical"
	case HierDSAR:
		return "DSAR_Hierarchical"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures an allreduce.
type Options struct {
	// Algorithm selects the implementation; Auto applies the paper's
	// selection heuristic.
	Algorithm Algorithm
	// Quant, when non-nil, enables QSGD quantization of the dense allgather
	// stage of DSARSplitAllgather and HierDSAR ("we employ the low-precision
	// data representation only in the second part of the DSAR Split
	// allgather algorithm", §6). Ignored by other algorithms.
	Quant *quant.Config
	// Seed drives the stochastic quantization; combined with the rank that
	// owns each partition so encodings are deterministic yet independent.
	Seed int64
	// SmallDataBytes is the wire-size boundary (in bytes) below which the
	// hierarchical algorithms' leader phase uses recursive doubling rather
	// than split allgather. Zero means DefaultSmallDataBytes. Auto no
	// longer thresholds on it directly — the cost model prices both flat
	// variants — but it is forwarded into the hierarchical collectives and
	// their cost predictions.
	SmallDataBytes int
	// Levels caps how many machine-hierarchy levels the hierarchical
	// algorithms exploit: 0 (the default) uses the world's full hierarchy,
	// d >= 2 truncates the recursion to the innermost d levels (up/down
	// sweeps over levels 0..d-2, top phase among the level-(d-2) leaders),
	// and 1 degrades to the flat algorithm. Auto sets it itself — the
	// level-aware cost model picks the cheapest depth (ChooseAutoLevels) —
	// so explicit values are mainly for ablations such as the hierlevels
	// sweep.
	Levels int
	// Chunks selects the pipelining degree of the split-phase algorithms
	// (SSARSplitAllgather, DSARSplitAllgather, and the hierarchical
	// variants' leader phase): the dimension partitions are subdivided into
	// C key-range chunks whose sends and merges overlap stage-pipeline
	// style (see splitPhasePipelined). Values ≤ 1 (including the zero
	// default) run the unchunked path, byte-identical on the wire to the
	// pre-chunking implementation; C ≥ 2 pipelines (value-identical
	// results, chunk-partitioned message schedule). AutoChunks asks the
	// cost model to pick the chunk count (alongside algorithm and depth
	// when Algorithm is Auto). The executed count is clamped by
	// clampChunks — per-rank partitions must stay subdividable and the tag
	// budget bounded — identically on every rank. Algorithms without a
	// split phase ignore it.
	Chunks int
	// Support selects the index-distribution assumption Auto's cost model
	// uses for the fill-in expectation E[K] (see CostScenario.Support for
	// the estimators' validity ranges). The default SupportUniform is the
	// paper's worst case; SupportClustered prices blocked hot-set supports.
	// The runtime adaptation layer (internal/adapt) sets this per call from
	// the observed input shape; setting it statically pins the assumption,
	// which is how the BENCH_5 static-clustered ablation arm is built.
	Support SupportModel
	// HotFraction and HotMass parameterize SupportClustered, exactly as in
	// CostScenario; zero values take the defaults. Ignored under
	// SupportUniform.
	HotFraction, HotMass float64
	// Scratch, when non-nil, supplies the reusable buffer pool the
	// collectives draw merge/densify storage from and recycle received
	// streams into, making steady-state allreduce calls nearly
	// allocation-free. A Scratch belongs to ONE rank: never share one
	// across ranks or across concurrently running collectives (overlapping
	// IAllreduce calls must use distinct pools). Vectors returned by a
	// collective are safe to keep — their storage is never recycled unless
	// the caller explicitly releases them into the pool.
	Scratch *stream.Scratch
}

// DefaultSmallDataBytes is the Auto-mode small/large message boundary,
// mirroring MPI's long-message switch (Thakur & Gropp use 64 KiB⋅class
// thresholds).
const DefaultSmallDataBytes = 64 << 10

// AutoChunks, assigned to Options.Chunks (or CostScenario.Chunks), asks
// the cost model to pick the split-phase pipelining degree: ChooseChunks
// prices the candidate chunk counts (1, 2, 4, 8) with the pipelined cost
// model and the cheapest wins. The decision is replica-consistent — it
// depends only on the globally agreed scenario — so all ranks run the same
// chunked schedule.
const AutoChunks = -1

// maxChunks bounds the executed pipelining degree: past a few chunks the
// per-chunk messages only add header and latency overhead, and the chunk
// tags (C per source rank) must fit every tag budget, including the
// hierarchical leader phase's 2^16-wide range.
const maxChunks = 64

// clampChunks bounds a requested chunk count for execution over [0, n)
// split across P ranks: values ≤ 1 (and the AutoChunks sentinel, which
// resolve translates before execution) mean unchunked, and a pipelined
// count is capped at maxChunks and at ⌊n/P⌋ so every rank's partition
// subdivides into non-empty chunks. The result depends only on globally
// agreed quantities, so every rank clamps identically.
func clampChunks(c, n, P int) int {
	if c < 2 {
		return 1
	}
	if c > maxChunks {
		c = maxChunks
	}
	if per := n / P; c > per {
		c = per
	}
	if c < 2 {
		return 1
	}
	return c
}

// Allreduce performs a sparse allreduce of v across all ranks and returns
// the reduced vector (every rank returns an equal vector). v is not
// modified. The reduction operation is v.Op().
func Allreduce(p *comm.Proc, v *stream.Vector, opts Options) *stream.Vector {
	base := p.NextTagBase()
	return allreduceTagged(p, v, opts, base)
}

func allreduceTagged(p *comm.Proc, v *stream.Vector, opts Options, base int) *stream.Vector {
	alg, levels, chunks := resolve(p, v, opts, base)
	opts.Levels = levels
	opts.Chunks = chunks
	switch alg {
	case SSARRecDouble:
		return ssarRecDouble(p, v, opts.Scratch, base)
	case SSARSplitAllgather:
		return ssarSplitAllgather(p, v, opts.Scratch, base, opts.Chunks)
	case DSARSplitAllgather:
		return dsarSplitAllgather(p, v, opts, base)
	case DenseRecDouble:
		return stream.NewDense(AllreduceDenseRecDouble(p, v.ToDense(), v.Op(), v.ValueBytes(), base), v.Op())
	case DenseRabenseifner:
		return stream.NewDense(AllreduceRabenseifner(p, v.ToDense(), v.Op(), v.ValueBytes(), base), v.Op())
	case DenseRing:
		return stream.NewDense(AllreduceRing(p, v.ToDense(), v.Op(), v.ValueBytes(), base), v.Op())
	case RingSparse:
		return ringSparse(p, v, opts.Scratch, base)
	case HierSSAR:
		return hierSSAR(p, v, opts, base)
	case HierDSAR:
		return hierDSAR(p, v, opts, base)
	default:
		panic("core: unresolved algorithm")
	}
}

// resolve maps Auto to a concrete algorithm, hierarchy depth, and chunk
// count (§5.3: "In practice, allreduce implementations switch between
// different implementations depending on the message size and the number
// of processes").
//
// Per-rank non-zero counts may differ, but every rank must run the *same*
// algorithm, so Auto first agrees on the maximum k with a tiny
// max-allreduce (one 8-byte word, log2(P) rounds) — the k = maxᵢ|Hᵢ| of
// the paper's analysis — and hands the shared value to the cost-model
// comparator ChooseAutoLevels. Everything else the scenario is built from
// (dimension, δ, hierarchy, options) is identical on every rank, and the
// model is pure deterministic float arithmetic, so all ranks agree. The
// same agreement path also serves a pinned algorithm asked to pick only
// its pipelining degree (Options.Chunks = AutoChunks).
func resolve(p *comm.Proc, v *stream.Vector, opts Options, base int) (Algorithm, int, int) {
	if opts.Algorithm != Auto && opts.Chunks != AutoChunks {
		return opts.Algorithm, opts.Levels, opts.Chunks
	}
	kmax := int(AllreduceDenseRecDouble(p, []float64{float64(v.NNZ())},
		stream.OpMax, stream.DefaultValueBytes, base+resolveTagOffset)[0])
	s := ScenarioFor(p, v, opts, kmax)
	if opts.Algorithm != Auto {
		// Chunk-only Auto: algorithm and depth are pinned; price just the
		// chunk count for them.
		s.Levels = opts.Levels
		return opts.Algorithm, opts.Levels, ChooseChunks(opts.Algorithm, s)
	}
	return ChooseAutoLevels(s)
}

// ScenarioFor builds the CostScenario Auto prices a call with: the
// vector's shape and wire settings, the communicator's size, profile and
// machine hierarchy, and the options' quantization/support/depth knobs,
// with K set to the globally agreed maximum per-rank non-zero count. It
// is exported for decision layers that run the agreement themselves and
// want to adjust the scenario before choosing — the runtime adaptation
// controller substitutes its measured support model and calibrated link
// constants into exactly this scenario.
func ScenarioFor(p *comm.Proc, v *stream.Vector, opts Options, kmax int) CostScenario {
	s := CostScenario{
		N: v.Dim(), P: p.Size(), K: kmax,
		ValueBytes: v.ValueBytes(), Delta: v.Delta(),
		Profile: p.Profile(), Quant: opts.Quant,
		SmallDataBytes: opts.SmallDataBytes,
		Levels:         opts.Levels,
		Chunks:         opts.Chunks,
		Support:        opts.Support,
		HotFraction:    opts.HotFraction,
		HotMass:        opts.HotMass,
	}
	if topo, ok := p.Topology(); ok {
		s.Topo = &topo
	} else if h, ok := p.Hierarchy(); ok {
		s.Hier = &h
	}
	return s
}

// resolveTagOffset reserves the top half of each collective's tag range
// for the Auto-mode agreement exchange.
const resolveTagOffset = 1 << 19

// partition returns the dimension range [lo, hi) owned by rank r when the
// universe [0, n) is split across P ranks ("each node gets responsible of
// ⌊N/P⌋ items apart of the last one", Appendix A).
func partition(n, P, r int) (lo, hi int) {
	block := n / P
	lo = r * block
	hi = lo + block
	if r == P-1 {
		hi = n
	}
	return lo, hi
}
