package core

import (
	"repro/internal/comm"
	"repro/internal/stream"
)

// Dense collectives operate on raw []float64 and implement the classic
// algorithms MPI libraries select between (Thakur & Gropp; Chan et al.):
// recursive doubling for small messages, Rabenseifner's reduce-scatter +
// allgather and the ring for large messages. They are both the paper's
// baselines ("the baseline will be the MPI allreduce implementation on the
// fully dense vectors") and building blocks for the DSAR dense stage.
//
// All functions take a tag base; public callers should allocate one with
// p.NextTagBase() (the exported wrappers in this file do so).

// AllreduceDense reduces x element-wise across ranks with recursive
// doubling and returns the result (x is not modified). Convenience wrapper
// allocating its own tag range.
func AllreduceDense(p *comm.Proc, x []float64, op stream.Op) []float64 {
	return AllreduceDenseRecDouble(p, x, op, stream.DefaultValueBytes, p.NextTagBase())
}

// AllreduceDenseRecDouble implements dense recursive doubling: log2(P)
// exchange-and-combine stages (with a pre/post fold when P is not a power
// of two). Cost: ~log2(P)·(α + N·isize·β).
func AllreduceDenseRecDouble(p *comm.Proc, x []float64, op stream.Op, valueBytes, base int) []float64 {
	acc := append([]float64(nil), x...)
	n := len(acc)
	rank, P := p.Rank(), p.Size()
	p2 := largestPow2(P)
	rem := P - p2

	// Fold phase: ranks [p2, P) send their vectors to [0, rem); the first
	// rem ranks absorb them, then the first p2 ranks run the power-of-two
	// algorithm, and finally results are returned to the folded ranks.
	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, acc, n*valueBytes)
			res := p.Recv(rank-p2, base+1).Payload.([]float64)
			return append([]float64(nil), res...)
		}
		if rank < rem {
			in := p.Recv(rank+p2, base).Payload.([]float64)
			combineDense(p, acc, in, op)
		}
	}

	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		m := p.SendRecv(peer, base+2+stage, append([]float64(nil), acc...), n*valueBytes)
		combineDense(p, acc, m.Payload.([]float64), op)
	}

	if rem > 0 && rank < rem {
		p.Send(rank+p2, base+1, append([]float64(nil), acc...), n*valueBytes)
	}
	return acc
}

// AllreduceRabenseifner implements the two-phase large-message algorithm
// (§5.3.2's dense inspiration): recursive-halving reduce-scatter followed
// by recursive-doubling allgather. Cost: ~2·log2(P)·α + 2·(P−1)/P·N·isize·β.
// Requires no divisibility; uses the same partition map as the sparse
// split algorithms. Non-power-of-two worlds fold as in recursive doubling.
func AllreduceRabenseifner(p *comm.Proc, x []float64, op stream.Op, valueBytes, base int) []float64 {
	acc := append([]float64(nil), x...)
	n := len(acc)
	rank, P := p.Rank(), p.Size()
	p2 := largestPow2(P)
	rem := P - p2

	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, acc, n*valueBytes)
			res := p.Recv(rank-p2, base+1).Payload.([]float64)
			return append([]float64(nil), res...)
		}
		if rank < rem {
			in := p.Recv(rank+p2, base).Payload.([]float64)
			combineDense(p, acc, in, op)
		}
	}

	// Recursive halving reduce-scatter among the first p2 ranks: at each
	// stage a rank keeps the half of its current range containing its own
	// final partition and sends the other half to its peer.
	lo, hi := 0, n
	for stage, dist := 0, p2/2; dist >= 1; stage, dist = stage+1, dist/2 {
		peer := rank ^ dist
		mid := lo + (hi-lo)/2
		var keepLo, keepHi, sendLo, sendHi int
		if rank&dist == 0 { // keep lower half
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		out := append([]float64(nil), acc[sendLo:sendHi]...)
		m := p.SendRecv(peer, base+2+stage, out, (sendHi-sendLo)*valueBytes)
		in := m.Payload.([]float64)
		combineDense(p, acc[keepLo:keepHi], in, op)
		lo, hi = keepLo, keepHi
	}

	// Recursive doubling allgather of the reduced ranges.
	mine := block{lo, append([]float64(nil), acc[lo:hi]...)}
	have := []block{mine}
	size := hi - lo
	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		out := make([]block, len(have))
		copy(out, have)
		m := p.SendRecv(peer, base+32+stage, out, size*valueBytes+8*len(have))
		in := m.Payload.([]block)
		have = append(have, in...)
		size *= 2
	}
	for _, b := range have {
		copy(acc[b.lo:b.lo+len(b.val)], b.val)
	}

	if rem > 0 && rank < rem {
		p.Send(rank+p2, base+1, append([]float64(nil), acc...), n*valueBytes)
	}
	return acc
}

// AllreduceRing implements the bandwidth-optimal ring: a reduce-scatter
// ring of P−1 steps followed by an allgather ring of P−1 steps. Cost:
// 2(P−1)·α + 2·(P−1)/P·N·isize·β — optimal bandwidth, linear latency.
func AllreduceRing(p *comm.Proc, x []float64, op stream.Op, valueBytes, base int) []float64 {
	acc := append([]float64(nil), x...)
	n := len(acc)
	rank, P := p.Rank(), p.Size()
	if P == 1 {
		return acc
	}
	next := (rank + 1) % P
	prev := (rank - 1 + P) % P

	// Reduce-scatter: at step s, send block (rank−s) and receive+combine
	// block (rank−s−1); after P−1 steps rank owns block (rank+1) fully
	// reduced.
	for s := 0; s < P-1; s++ {
		sendBlk := ((rank-s)%P + P) % P
		recvBlk := ((rank-s-1)%P + P) % P
		sLo, sHi := partition(n, P, sendBlk)
		out := append([]float64(nil), acc[sLo:sHi]...)
		p.Send(next, base+s, out, (sHi-sLo)*valueBytes)
		in := p.Recv(prev, base+s).Payload.([]float64)
		rLo, rHi := partition(n, P, recvBlk)
		combineDense(p, acc[rLo:rHi], in, op)
	}
	// Allgather ring: circulate the reduced blocks. Each rank copies its
	// own reduced block once to put it on the wire; after that the same
	// slice travels the whole ring — every receiver lands it directly in
	// its destination storage (acc) and forwards the received slice
	// unchanged, instead of re-copying the block at every stage. The
	// forwarded slice is never written by anyone, so the hand-off is safe.
	var fwd []float64
	for s := 0; s < P-1; s++ {
		sendBlk := ((rank+1-s)%P + P) % P
		recvBlk := ((rank-s)%P + P) % P
		sLo, sHi := partition(n, P, sendBlk)
		out := fwd
		if s == 0 {
			out = append([]float64(nil), acc[sLo:sHi]...)
		}
		p.Send(next, base+P+s, out, (sHi-sLo)*valueBytes)
		in := p.Recv(prev, base+P+s).Payload.([]float64)
		rLo, _ := partition(n, P, recvBlk)
		copy(acc[rLo:rLo+len(in)], in)
		fwd = in
	}
	return acc
}

// AllgatherDense gathers each rank's block (the blocks may have different
// lengths) to every rank via recursive doubling, returning the
// concatenation in rank order. Cost: ~log2(P)·α + (P−1)/P·total·β.
func AllgatherDense(p *comm.Proc, mine []float64, valueBytes, base int) [][]float64 {
	rank, P := p.Rank(), p.Size()
	parts := make([][]float64, P)
	parts[rank] = append([]float64(nil), mine...)
	p2 := largestPow2(P)
	rem := P - p2

	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, parts[rank], len(mine)*valueBytes)
			res := p.Recv(rank-p2, base+1).Payload.([][]float64)
			out := make([][]float64, P)
			copy(out, res)
			return out
		}
		if rank < rem {
			m := p.Recv(rank+p2, base)
			parts[rank+p2] = m.Payload.([]float64)
		}
	}

	owned := []int{rank}
	if rem > 0 && rank < rem {
		owned = append(owned, rank+p2)
	}
	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		bytes := 0
		out := make(map[int][]float64, len(owned))
		for _, b := range owned {
			out[b] = parts[b]
			bytes += len(parts[b]) * valueBytes
		}
		m := p.SendRecv(peer, base+2+stage, out, bytes)
		for b, v := range m.Payload.(map[int][]float64) {
			parts[b] = v
			owned = append(owned, b)
		}
	}

	if rem > 0 && rank < rem {
		p.Send(rank+p2, base+1, parts, totalLen(parts)*valueBytes)
	}
	return parts
}

// AllgatherDenseInto gathers each rank's block of the uniform dimension
// partition of dst to every rank via recursive doubling, landing received
// blocks directly in dst at their partition offsets instead of retaining
// them for a final assembly copy. mine must hold this rank's fully reduced
// partition; its ownership transfers to the collective (it is sent to
// peers and must not be mutated or recycled afterwards — hence it must not
// alias dst, which the caller may mutate once the collective returns).
// Received slices are forwarded to later-stage peers unchanged; no slice
// of dst ever goes on the wire. Cost: ~log2(P)·α + (P−1)/P·N·isize·β, the
// same schedule as AllgatherDense.
func AllgatherDenseInto(p *comm.Proc, mine, dst []float64, valueBytes, base int) {
	rank, P := p.Rank(), p.Size()
	n := len(dst)
	lo, hi := partition(n, P, rank)
	if len(mine) != hi-lo {
		panic("core: AllgatherDenseInto block does not match this rank's partition")
	}
	copy(dst[lo:hi], mine)
	// wire holds each block's standalone wire slice for forwarding.
	wire := make([][]float64, P)
	wire[rank] = mine
	land := func(b int, v []float64) {
		bLo, _ := partition(n, P, b)
		copy(dst[bLo:bLo+len(v)], v)
		wire[b] = v
	}
	p2 := largestPow2(P)
	rem := P - p2

	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, mine, len(mine)*valueBytes)
			res := p.Recv(rank-p2, base+1).Payload.([][]float64)
			for b, v := range res {
				if b != rank {
					land(b, v)
				}
			}
			return
		}
		if rank < rem {
			land(rank+p2, p.Recv(rank+p2, base).Payload.([]float64))
		}
	}

	owned := []int{rank}
	if rem > 0 && rank < rem {
		owned = append(owned, rank+p2)
	}
	for stage, dist := 0, 1; dist < p2; stage, dist = stage+1, dist*2 {
		peer := rank ^ dist
		bytes := 0
		out := make(map[int][]float64, len(owned))
		for _, b := range owned {
			out[b] = wire[b]
			bytes += len(wire[b]) * valueBytes
		}
		m := p.SendRecv(peer, base+2+stage, out, bytes)
		for b, v := range m.Payload.(map[int][]float64) {
			land(b, v)
			owned = append(owned, b)
		}
	}

	if rem > 0 && rank < rem {
		bytes := 0
		for _, v := range wire {
			bytes += len(v) * valueBytes
		}
		p.Send(rank+p2, base+1, wire, bytes)
	}
}

// Bcast broadcasts root's vector to all ranks via a binomial tree,
// returning the vector on every rank. Cost: ~log2(P)·(α + N·isize·β).
func Bcast(p *comm.Proc, x []float64, root int, valueBytes int) []float64 {
	base := p.NextTagBase()
	rank, P := p.Rank(), p.Size()
	// Rotate so the root is virtual rank 0.
	vrank := (rank - root + P) % P
	var have []float64
	if vrank == 0 {
		have = append([]float64(nil), x...)
	}
	// Receive from the appropriate ancestor, then forward down the tree.
	mask := 1
	for mask < P {
		mask *= 2
	}
	for mask /= 2; mask >= 1; mask /= 2 {
		if vrank&(mask-1) == 0 { // active at this level
			if vrank&mask == 0 {
				dst := vrank | mask
				if dst < P && have != nil {
					p.Send((dst+root)%P, base, append([]float64(nil), have...), len(have)*valueBytes)
				}
			} else if have == nil {
				src := vrank &^ mask
				have = p.Recv((src+root)%P, base).Payload.([]float64)
			}
		}
	}
	return have
}

func combineDense(p *comm.Proc, dst, src []float64, op stream.Op) {
	if len(dst) != len(src) {
		panic("core: dense combine length mismatch")
	}
	for i := range dst {
		dst[i] = op.Combine(dst[i], src[i])
	}
	p.Compute(p.Profile().DenseReduceTime(len(dst)))
}

func largestPow2(p int) int {
	v := 1
	for v*2 <= p {
		v *= 2
	}
	return v
}

func totalLen(parts [][]float64) int {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n
}
