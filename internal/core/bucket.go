package core

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/stream"
)

// This file implements DDP-style bucket fusion for layer-wise training:
// instead of one tiny allreduce per model layer (each paying the split
// phase's (P−1)·α latency floor) or one monolithic fused exchange (no
// overlap with backprop at all), consecutive layers are coalesced into
// cost-model-sized buckets that are issued as nonblocking collectives in
// backprop order and drained before the optimizer step. Bucket boundaries
// are derived from the layer spans' coordinate counts — identical on every
// rank by construction — never from wire sizes, which differ across ranks
// when per-rank TopK selections are ragged and would desynchronize the
// collectives' program order.

// bucketLatencyShare is the bucket sizing rule's target ratio: a bucket is
// large enough when the fixed per-collective latency term is at most this
// fraction of its dense-equivalent transfer time.
const bucketLatencyShare = 0.1

// BucketCoords returns the bucket size, in span coordinates, that the
// scheduler should target under the scenario: the smallest coordinate
// count whose dense-equivalent transfer time keeps the fixed
// per-collective cost — the split phase's (P−1) serialized message
// latencies — at or below bucketLatencyShare of the payload term,
//
//	coords ≥ (P−1)·(α+o) / (share · (β+βsw) · valueBytes).
//
// Sizing uses dense-equivalent bytes (coordinates × value size) rather
// than observed wire bytes so the result depends only on the agreed
// scenario, keeping bucket boundaries replica-consistent under ragged
// per-rank sparsity. The result is clamped to [1, N]; degenerate profiles
// (no bandwidth term) fuse everything into one bucket.
func BucketCoords(s CostScenario) int {
	perByte := s.Profile.BetaPerByte + s.Profile.SoftwarePerByte
	fixed := float64(s.P-1) * (s.Profile.Alpha + s.Profile.SoftwareOverhead)
	if perByte <= 0 || fixed <= 0 {
		return s.N
	}
	coords := int(math.Ceil(fixed / (bucketLatencyShare * perByte * float64(s.valueBytesOr()))))
	if coords < 1 {
		coords = 1
	}
	if coords > s.N {
		coords = s.N
	}
	return coords
}

// BucketScheduler fuses per-layer gradient contributions into buckets and
// runs them as overlapped nonblocking collectives. Build one from the
// model's layer spans (NewBucketScheduler); each training step then calls
// Issue with the per-layer contribution vectors and Drain with the
// returned requests. Bucket composition is a pure function of the spans
// and the target size, so every rank constructing the scheduler from the
// same inputs issues the same collectives in the same program order.
type BucketScheduler struct {
	spans   [][2]int
	buckets [][]int // ascending layer indices per bucket, buckets in issue order
}

// NewBucketScheduler partitions the model's layer spans (model order,
// span i = [lo, hi) coordinate range of layer i) into buckets of at least
// `coords` coordinates each: layers are walked in reverse — the order
// backprop produces their gradients — and greedily accumulated until the
// bucket reaches the target, so bucket 0 holds the last layers and is
// ready to issue first. A non-positive coords puts every layer in its own
// bucket; a huge coords fuses all layers into one. The final (first-layer)
// bucket may be smaller than the target.
func NewBucketScheduler(spans [][2]int, coords int) *BucketScheduler {
	for i, sp := range spans {
		if sp[0] > sp[1] {
			panic(fmt.Sprintf("core: layer %d span [%d,%d) is inverted", i, sp[0], sp[1]))
		}
	}
	s := &BucketScheduler{spans: spans}
	var cur []int
	acc := 0
	for i := len(spans) - 1; i >= 0; i-- {
		cur = append(cur, i)
		acc += spans[i][1] - spans[i][0]
		if acc >= coords {
			s.buckets = append(s.buckets, reverseLayers(cur))
			cur, acc = nil, 0
		}
	}
	if len(cur) > 0 {
		s.buckets = append(s.buckets, reverseLayers(cur))
	}
	return s
}

// reverseLayers reverses the reverse-walked layer indices back into
// ascending (model) order, which is the order fusion concatenates in.
func reverseLayers(ls []int) []int {
	for i, j := 0, len(ls)-1; i < j; i, j = i+1, j-1 {
		ls[i], ls[j] = ls[j], ls[i]
	}
	return ls
}

// NumBuckets returns the number of buckets.
func (s *BucketScheduler) NumBuckets() int { return len(s.buckets) }

// Layers returns bucket b's layer indices in ascending model order. The
// slice is the scheduler's own; treat it as read-only.
func (s *BucketScheduler) Layers(b int) []int { return s.buckets[b] }

// Fuse concatenates bucket b's per-layer contributions (full-dimension
// vectors with disjoint supports, indexed by model layer) into the single
// vector the bucket's collective carries. Buffers come from sc (nil
// degrades to plain allocation); the inputs are not consumed.
func (s *BucketScheduler) Fuse(b int, contribs []*stream.Vector, sc *stream.Scratch) *stream.Vector {
	parts := make([]*stream.Vector, len(s.buckets[b]))
	for i, li := range s.buckets[b] {
		parts[i] = contribs[li]
	}
	return stream.ConcatChunks(parts, sc)
}

// Issue fuses every bucket and starts its nonblocking allreduce, in issue
// (backprop) order, returning the requests in that order. opts supplies
// the per-bucket collective options: nil means zero Options for all, a
// single element is replicated, otherwise the length must equal
// NumBuckets (the per-bucket decisions of adapt.Controller.PlanBuckets).
// Scratch is stripped from every bucket's Options — outstanding
// collectives must not share a pool (see IAllreduce) — and the fused
// inputs are allocated unpooled for the same reason; like all collectives,
// every rank must Issue with the same bucket composition in the same
// program order.
func (s *BucketScheduler) Issue(p *comm.Proc, contribs []*stream.Vector, opts []Options) []*Request {
	if len(contribs) != len(s.spans) {
		panic(fmt.Sprintf("core: %d contributions for %d layers", len(contribs), len(s.spans)))
	}
	optAt := func(b int) Options {
		switch len(opts) {
		case 0:
			return Options{}
		case 1:
			return opts[0]
		case len(s.buckets):
			return opts[b]
		default:
			panic(fmt.Sprintf("core: %d options for %d buckets", len(opts), len(s.buckets)))
		}
	}
	reqs := make([]*Request, len(s.buckets))
	for b := range s.buckets {
		o := optAt(b)
		o.Scratch = nil
		reqs[b] = IAllreduce(p, s.Fuse(b, contribs, nil), o)
	}
	return reqs
}

// Drain waits on Issue's requests in issue order and returns the summed
// bucket vectors in the same order.
func (s *BucketScheduler) Drain(p *comm.Proc, reqs []*Request) []*stream.Vector {
	out := make([]*stream.Vector, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait(p)
	}
	return out
}
