package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"repro/internal/comm"
)

// block is a contiguous reduced range exchanged by Rabenseifner's
// recursive-doubling allgather: the range's start offset plus its values.
// It is package-level (rather than local to AllreduceRabenseifner) so the
// real transports' payload codec can name it.
type block struct {
	lo  int
	val []float64
}

// The real transports serialize every payload; core's one private payload
// type registers its codec here. The wire form is, per block, a uint64
// offset, a uint32 length, and the raw float64 bits (little endian).
func init() {
	comm.RegisterPayloadCodec("core.blocks", comm.PayloadCodec{
		Type: reflect.TypeOf([]block(nil)),
		Append: func(buf []byte, v any) []byte {
			blocks := v.([]block)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blocks)))
			for _, b := range blocks {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(b.lo)))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.val)))
				for _, x := range b.val {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
				}
			}
			return buf
		},
		Decode: func(data []byte) (any, error) {
			if len(data) < 4 {
				return nil, fmt.Errorf("core: truncated block frame")
			}
			count := int(binary.LittleEndian.Uint32(data))
			off := 4
			out := make([]block, count)
			for i := 0; i < count; i++ {
				if off+12 > len(data) {
					return nil, fmt.Errorf("core: truncated block frame")
				}
				lo := int(int64(binary.LittleEndian.Uint64(data[off:])))
				n := int(binary.LittleEndian.Uint32(data[off+8:]))
				off += 12
				if n < 0 || off+8*n > len(data) {
					return nil, fmt.Errorf("core: truncated block frame")
				}
				val := make([]float64, n)
				for j := range val {
					val[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*j:]))
				}
				out[i] = block{lo: lo, val: val}
				off += 8 * n
			}
			if off != len(data) {
				return nil, fmt.Errorf("core: block frame has trailing bytes")
			}
			return out, nil
		},
	})
}
