package core

import (
	"repro/internal/comm"
	"repro/internal/stream"
)

// This file rounds out the MPI collective surface over sparse streams
// beyond allreduce/allgather: rooted reduce, gather and scatter, a public
// reduce-scatter (the split phase of §5.3.2), and a sparse all-to-all.
// These are the operations the paper's interface ("SPARCML provides a
// similar interface to that of standard MPI calls, with the caveat that
// the data representation is assumed to be a sparse stream", §7) implies,
// and they reuse the same stream merge machinery.

// Reduce combines every rank's vector at the root via a binomial tree
// (log2(P) rounds) and returns the reduction at the root; other ranks
// return nil. The paper's allreduce could be composed as Reduce + Bcast
// ("the nodes could collaborate to compute the result at a single node
// (reduce) followed by a broadcast", §5.3).
func Reduce(p *comm.Proc, v *stream.Vector, root int) *stream.Vector {
	return reduceTagged(p, v, root, nil, p.NextTagBase())
}

// reduceTagged is Reduce over an explicit tag base and scratch pool,
// reusable as a phase of composite collectives (the intra-node phase of
// HierSSAR runs it on a node sub-communicator).
func reduceTagged(p *comm.Proc, v *stream.Vector, root int, sc *stream.Scratch, base int) *stream.Vector {
	rank, P := p.Rank(), p.Size()
	vrank := (rank - root + P) % P
	acc := v.CloneInto(sc)

	// Binomial tree, ascending distances: at round d, a virtual rank whose
	// d-bit is set (all lower bits are zero or it would have exited
	// earlier) sends its accumulation to vrank−d and leaves; otherwise it
	// receives from vrank+d when that rank exists.
	for d := 1; d < P; d *= 2 {
		if vrank&d != 0 {
			dst := (vrank - d + root) % P
			p.Send(dst, base+d, acc, acc.WireBytes())
			return nil
		}
		if vrank+d < P {
			src := (vrank + d + root) % P
			in := p.Recv(src, base+d).Payload.(*stream.Vector)
			mergeCharged(p, acc, in, sc)
			sc.Release(in)
		}
	}
	if rank == root {
		return acc
	}
	return nil
}

// ReduceScatterSparse partitions the dimension space uniformly across
// ranks and returns this rank's fully reduced partition as a canonical
// stream — the split phase of SSAR/DSAR Split allgather (§5.3.2) exposed
// as a standalone collective. (Sparse for any P ≥ 2, since a partition
// never exceeds δ; a single-rank world returns the input's canonical
// representation.)
func ReduceScatterSparse(p *comm.Proc, v *stream.Vector) *stream.Vector {
	return splitPhase(p, v, nil, p.NextTagBase())
}

// GatherSparse collects every rank's (disjoint) sparse vector at the root
// via a binomial tree of concatenations. Non-root ranks return nil.
func GatherSparse(p *comm.Proc, mine *stream.Vector, root int) *stream.Vector {
	base := p.NextTagBase()
	rank, P := p.Rank(), p.Size()
	vrank := (rank - root + P) % P
	acc := mine.Clone()

	for d := 1; d < P; d *= 2 {
		if vrank&d != 0 {
			dst := (vrank - d + root) % P
			p.Send(dst, base+d, acc, acc.WireBytes())
			return nil
		}
		if vrank+d < P {
			src := (vrank + d + root) % P
			in := p.Recv(src, base+d).Payload.(*stream.Vector)
			concatCharged(p, acc, in)
		}
	}
	if rank == root {
		return acc
	}
	return nil
}

// ScatterRanges splits the root's vector by the uniform dimension
// partition and sends each rank its slice; every rank (including the
// root) returns its partition as a stream over the full universe — in the
// canonical representation, so a partition holding more than δ non-zeros
// of a dense input comes back dense (check IsDense before calling Pairs).
// n and op must be provided on non-root ranks (they have no input).
func ScatterRanges(p *comm.Proc, v *stream.Vector, root, n int, op stream.Op) *stream.Vector {
	base := p.NextTagBase()
	rank, P := p.Rank(), p.Size()
	if rank == root {
		if v == nil {
			panic("core: root must provide a vector to ScatterRanges")
		}
		for r := 0; r < P; r++ {
			if r == rank {
				continue
			}
			lo, hi := partition(v.Dim(), P, r)
			piece := v.ExtractRange(lo, hi)
			p.Send(r, base, piece, piece.WireBytes())
		}
		lo, hi := partition(v.Dim(), P, rank)
		return v.ExtractRange(lo, hi)
	}
	return p.Recv(root, base).Payload.(*stream.Vector).Clone()
}

// AlltoallSparse sends pieces[r] to rank r and returns the P pieces
// received, indexed by source rank (the direct exchange pattern of the
// split phase, generalized to arbitrary per-destination payloads).
// pieces[p.Rank()] is returned unchanged in its slot.
func AlltoallSparse(p *comm.Proc, pieces []*stream.Vector) []*stream.Vector {
	base := p.NextTagBase()
	rank, P := p.Rank(), p.Size()
	if len(pieces) != P {
		panic("core: AlltoallSparse needs one piece per rank")
	}
	out := make([]*stream.Vector, P)
	out[rank] = pieces[rank]
	for off := 1; off < P; off++ {
		to := (rank + off) % P
		p.Send(to, base+rank, pieces[to], pieces[to].WireBytes())
	}
	for off := 1; off < P; off++ {
		from := (rank - off + P) % P
		out[from] = p.Recv(from, base+from).Payload.(*stream.Vector)
	}
	return out
}
