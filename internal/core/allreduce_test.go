package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/stream"
)

var testProfile = simnet.Profile{Name: "test", Alpha: 1e-6, BetaPerByte: 1e-9,
	GammaPerElem: 1e-10, SparseComputeFactor: 4}

// inputPattern generates per-rank inputs exercising a sparsity structure.
type inputPattern struct {
	name string
	gen  func(rng *rand.Rand, n, k, P int) []*stream.Vector
}

var patterns = []inputPattern{
	{"uniform", func(rng *rand.Rand, n, k, P int) []*stream.Vector {
		out := make([]*stream.Vector, P)
		for r := range out {
			out[r] = randSparse(rng, n, k)
		}
		return out
	}},
	{"identical-support", func(rng *rand.Rand, n, k, P int) []*stream.Vector {
		// Case (2) of §5.3: all supports overlap fully (Hi = Hj).
		base := randSparse(rng, n, k)
		idx, _ := base.Pairs()
		out := make([]*stream.Vector, P)
		for r := range out {
			val := make([]float64, len(idx))
			for i := range val {
				val[i] = dyadic(rng)
			}
			out[r] = stream.NewSparse(n, append([]int32(nil), idx...), val, stream.OpSum)
		}
		return out
	}},
	{"disjoint", func(rng *rand.Rand, n, k, P int) []*stream.Vector {
		// Case (1) of §5.3: no supports overlap (maximum fill-in).
		out := make([]*stream.Vector, P)
		perm := rng.Perm(n)
		pos := 0
		for r := range out {
			kk := k
			if pos+kk > n {
				kk = n - pos
			}
			idx := make([]int32, kk)
			val := make([]float64, kk)
			for i := 0; i < kk; i++ {
				idx[i] = int32(perm[pos])
				val[i] = dyadic(rng)
				pos++
			}
			out[r] = stream.NewSparse(n, idx, val, stream.OpSum)
		}
		return out
	}},
	{"clustered", func(rng *rand.Rand, n, k, P int) []*stream.Vector {
		// Power-law-ish hot region shared by all ranks plus a random tail,
		// approximating real gradient index distributions.
		out := make([]*stream.Vector, P)
		hot := n / 10
		if hot < 1 {
			hot = 1
		}
		for r := range out {
			seen := map[int32]bool{}
			idx := make([]int32, 0, k)
			val := make([]float64, 0, k)
			for len(idx) < k {
				var ix int32
				if rng.Float64() < 0.7 {
					ix = int32(rng.Intn(hot))
				} else {
					ix = int32(rng.Intn(n))
				}
				if seen[ix] {
					continue
				}
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, dyadic(rng))
			}
			out[r] = stream.NewSparse(n, idx, val, stream.OpSum)
		}
		return out
	}},
	{"empty-some", func(rng *rand.Rand, n, k, P int) []*stream.Vector {
		out := make([]*stream.Vector, P)
		for r := range out {
			if r%2 == 0 {
				out[r] = stream.Zero(n, stream.OpSum)
			} else {
				out[r] = randSparse(rng, n, k)
			}
		}
		return out
	}},
	{"dense-inputs", func(rng *rand.Rand, n, k, P int) []*stream.Vector {
		out := make([]*stream.Vector, P)
		for r := range out {
			v := randSparse(rng, n, k)
			v.Densify()
			out[r] = v
		}
		return out
	}},
}

// dyadic returns a random dyadic rational so float addition is exact and
// order-independent: all algorithms must agree bit-for-bit.
func dyadic(rng *rand.Rand) float64 {
	v := float64(rng.Intn(64)-32) / 8
	if v == 0 {
		return 0.125
	}
	return v
}

func randSparse(rng *rand.Rand, n, k int) *stream.Vector {
	seen := make(map[int32]bool, k)
	idx := make([]int32, 0, k)
	val := make([]float64, 0, k)
	for len(idx) < k && len(idx) < n {
		ix := int32(rng.Intn(n))
		if seen[ix] {
			continue
		}
		seen[ix] = true
		idx = append(idx, ix)
		val = append(val, dyadic(rng))
	}
	return stream.NewSparse(n, idx, val, stream.OpSum)
}

// refSum computes the sequential reference reduction.
func refSum(inputs []*stream.Vector) []float64 {
	out := make([]float64, inputs[0].Dim())
	for _, v := range inputs {
		for i, x := range v.ToDense() {
			out[i] += x
		}
	}
	return out
}

func runAllreduce(t *testing.T, P int, inputs []*stream.Vector, opts Options) []*stream.Vector {
	t.Helper()
	w := comm.NewWorld(P, testProfile)
	return comm.Run(w, func(p *comm.Proc) *stream.Vector {
		return Allreduce(p, inputs[p.Rank()], opts)
	})
}

var allAlgorithms = []Algorithm{
	SSARRecDouble, SSARSplitAllgather, DSARSplitAllgather,
	DenseRecDouble, DenseRabenseifner, DenseRing, RingSparse,
	HierSSAR, HierDSAR, Auto,
}

func TestAllreduceAllAlgorithmsAllPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, P := range []int{2, 4, 8} {
		for _, pat := range patterns {
			n := 200 + rng.Intn(200)
			k := 1 + rng.Intn(n/8)
			inputs := pat.gen(rng, n, k, P)
			want := refSum(inputs)
			for _, alg := range allAlgorithms {
				results := runAllreduce(t, P, inputs, Options{Algorithm: alg})
				for r, res := range results {
					got := res.ToDense()
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("P=%d pattern=%s alg=%s rank=%d coord=%d: got %g want %g",
								P, pat.name, alg, r, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestAllreduceNonPowerOfTwoWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, P := range []int{3, 5, 6, 7, 12} {
		n := 300
		inputs := patterns[0].gen(rng, n, 20, P)
		want := refSum(inputs)
		for _, alg := range allAlgorithms {
			results := runAllreduce(t, P, inputs, Options{Algorithm: alg})
			for r, res := range results {
				got := res.ToDense()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("P=%d alg=%s rank=%d coord=%d: got %g want %g", P, alg, r, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestAllreduceSingleRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randSparse(rng, 100, 10)
	for _, alg := range []Algorithm{SSARRecDouble, SSARSplitAllgather, DenseRing, RingSparse} {
		res := runAllreduce(t, 1, []*stream.Vector{v}, Options{Algorithm: alg})
		if !res[0].Equal(v) {
			t.Fatalf("alg=%s: single-rank allreduce must be identity", alg)
		}
	}
}

func TestAllreduceMaxOperation(t *testing.T) {
	P, n := 4, 64
	inputs := make([]*stream.Vector, P)
	for r := 0; r < P; r++ {
		inputs[r] = stream.NewSparse(n, []int32{int32(r), 60}, []float64{float64(r + 1), float64(10 * (r + 1))}, stream.OpMax)
	}
	results := runAllreduce(t, P, inputs, Options{Algorithm: SSARRecDouble})
	for _, res := range results {
		if res.Get(60) != 40 {
			t.Fatalf("max at 60 = %g, want 40", res.Get(60))
		}
		if res.Get(2) != 3 {
			t.Fatalf("max at 2 = %g, want 3", res.Get(2))
		}
		if got := res.Get(50); !math.IsInf(got, -1) {
			t.Fatalf("absent coordinate = %g, want -Inf", got)
		}
	}
}

func TestSSARStaysSparseWhenResultSparse(t *testing.T) {
	// K << δ: SSAR results must remain in sparse representation.
	rng := rand.New(rand.NewSource(9))
	P, n, k := 8, 10000, 10
	inputs := patterns[0].gen(rng, n, k, P)
	for _, alg := range []Algorithm{SSARRecDouble, SSARSplitAllgather, RingSparse} {
		results := runAllreduce(t, P, inputs, Options{Algorithm: alg})
		for r, res := range results {
			if res.IsDense() {
				t.Fatalf("alg=%s rank=%d: result densified with K=%d << δ=%d", alg, r, res.NNZ(), res.Delta())
			}
		}
	}
}

func TestDSARAlwaysReturnsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inputs := patterns[0].gen(rng, 500, 50, 4)
	results := runAllreduce(t, 4, inputs, Options{Algorithm: DSARSplitAllgather})
	for r, res := range results {
		if !res.IsDense() {
			t.Fatalf("rank %d: DSAR must return a dense vector", r)
		}
	}
}

func TestAutoSelectsDSARWhenFillInExpected(t *testing.T) {
	// High per-node density across many ranks → E[K] > δ → DSAR (dense
	// result). Low density, tiny data → recursive doubling (sparse result).
	rng := rand.New(rand.NewSource(13))
	P := 8
	n := 600
	dense := patterns[0].gen(rng, n, 300, P)
	res := runAllreduce(t, P, dense, Options{Algorithm: Auto})
	if !res[0].IsDense() {
		t.Fatal("Auto should have picked DSAR (dense result) for high fill-in")
	}
	sparse := patterns[0].gen(rng, 100000, 5, P)
	res2 := runAllreduce(t, P, sparse, Options{Algorithm: Auto})
	if res2[0].IsDense() {
		t.Fatal("Auto should have kept the result sparse for low fill-in")
	}
}

func TestResolveCostModelBoundaries(t *testing.T) {
	w := comm.NewWorld(4, testProfile)
	comm.Run(w, func(p *comm.Proc) any {
		small := randSparse(rand.New(rand.NewSource(1)), 1<<20, 100) // 1.2KB sparse
		if got, _, _ := resolve(p, small, Options{}, p.NextTagBase()); got != SSARRecDouble {
			panic("small sparse input should resolve to SSARRecDouble, got " + got.String())
		}
		// Low-overlap large data: rec-double and split allgather move
		// nearly the same total volume ((P−1)·k under uniform supports),
		// so rec-double's log2(P)·α latency wins. The old wire-size
		// threshold forced split allgather here; the simulator agrees with
		// the cost model that rec-double is cheaper (costmodel_test.go
		// cross-checks model against simulated time on this shape).
		big := randSparse(rand.New(rand.NewSource(2)), 1<<20, 50000) // E[K]≈190k < δ≈699k
		if got, _, _ := resolve(p, big, Options{}, p.NextTagBase()); got != SSARRecDouble {
			panic("low-overlap sparse input should resolve to SSARRecDouble, got " + got.String())
		}
		fill := randSparse(rand.New(rand.NewSource(3)), 1000, 600) // E[K]≈923 > δ=666
		if got, _, _ := resolve(p, fill, Options{}, p.NextTagBase()); got != DSARSplitAllgather {
			panic("high-fill input should resolve to DSARSplitAllgather, got " + got.String())
		}
		explicit := Options{Algorithm: DenseRing}
		if got, _, _ := resolve(p, small, explicit, p.NextTagBase()); got != DenseRing {
			panic("explicit algorithm must be respected")
		}
		return nil
	})

	// Overlap-heavy regime at larger P: accumulated rec-double unions
	// saturate near E[K] early, so it keeps resending ~E[K] every stage
	// (Σ E[K_d] > 2·E[K]) while split allgather moves k/P slices plus one
	// allgather of E[K] — the bandwidth regime where split wins.
	w16 := comm.NewWorld(16, testProfile)
	comm.Run(w16, func(p *comm.Proc) any {
		ov := randSparse(rand.New(rand.NewSource(4)), 1<<16, 3000) // E[K]≈34.6k < δ≈43.7k
		if got, _, _ := resolve(p, ov, Options{}, p.NextTagBase()); got != SSARSplitAllgather {
			panic("overlap-heavy input should resolve to SSARSplitAllgather, got " + got.String())
		}
		return nil
	})
}

func TestAutoAgreesAcrossHeterogeneousRanks(t *testing.T) {
	// Regression test for the deadlock class the randomized differential
	// test exposed: ranks with wildly different non-zero counts (including
	// zero) must still agree on one algorithm under Auto.
	n := 100000
	for _, P := range []int{2, 4, 8} {
		inputs := make([]*stream.Vector, P)
		rng := rand.New(rand.NewSource(101))
		for r := range inputs {
			k := 0
			if r%2 == 1 {
				k = 1 + rng.Intn(60000) // some ranks huge, some empty
			}
			inputs[r] = randSparse(rng, n, k)
		}
		want := refSum(inputs)
		results := runAllreduce(t, P, inputs, Options{Algorithm: Auto})
		for r, res := range results {
			got := res.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=%d rank=%d coord=%d: got %g want %g", P, r, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAllRanksGetIdenticalResults(t *testing.T) {
	// Replica consistency: every rank must end with the same vector, for
	// every algorithm (bit-for-bit, since inputs are dyadic).
	rng := rand.New(rand.NewSource(21))
	inputs := patterns[3].gen(rng, 512, 40, 8)
	for _, alg := range allAlgorithms {
		results := runAllreduce(t, 8, inputs, Options{Algorithm: alg})
		for r := 1; r < len(results); r++ {
			if !results[r].Equal(results[0]) {
				t.Fatalf("alg=%s: rank %d result differs from rank 0", alg, r)
			}
		}
	}
}

func TestPartitionCoversUniverse(t *testing.T) {
	for _, n := range []int{7, 64, 100, 1023} {
		for _, P := range []int{1, 2, 3, 8, 16} {
			prev := 0
			for r := 0; r < P; r++ {
				lo, hi := partition(n, P, r)
				if lo != prev {
					t.Fatalf("n=%d P=%d r=%d: gap at %d", n, P, r, lo)
				}
				if hi < lo {
					t.Fatalf("n=%d P=%d r=%d: negative range", n, P, r)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d P=%d: partitions end at %d", n, P, prev)
			}
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		SSARRecDouble:      "SSAR_Recursive_double",
		SSARSplitAllgather: "SSAR_Split_allgather",
		DSARSplitAllgather: "DSAR_Split_allgather",
		DenseRing:          "Dense_Ring",
	}
	for alg, s := range want {
		if alg.String() != s {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), s)
		}
	}
}
