package core

import (
	"repro/internal/comm"
	"repro/internal/stream"
	"repro/internal/topk"
)

// DrydenAllreduce implements the sparse allreduce of Dryden et al. (2016),
// the closest prior design the paper compares against in §9: "a pairwise
// reduce-scatter followed by a ring-based allgather. The amount of data is
// kept constant at every stage of their algorithm by re-selecting the top
// k values and postponing the other received values."
//
// Unlike the SSAR/DSAR algorithms this operation is *lossy*: after the
// reduce-scatter each rank re-selects the k/P largest-magnitude entries of
// its partition and returns the rest as `postponed`, which a Top-K SGD
// caller folds into its error-feedback residual ("this ability to
// preserve a local residual is specific to Top-k SGD and ... our framework
// is more general"). The result has at most k non-zeros; its performance
// tracks SSAR_Split_allgather, as the paper notes.
func DrydenAllreduce(p *comm.Proc, v *stream.Vector, k int) (result, postponed *stream.Vector) {
	base := p.NextTagBase()
	rank, P := p.Rank(), p.Size()
	n := v.Dim()

	// Phase 1: pairwise (recursive halving) reduce-scatter over sparse
	// range slices. Requires power-of-two P; fold otherwise.
	p2 := largestPow2(P)
	rem := P - p2
	acc := v.Clone()
	if rem > 0 {
		if rank >= p2 {
			p.Send(rank-p2, base, acc, acc.WireBytes())
			res := p.Recv(rank-p2, base+1).Payload.(*stream.Vector).Clone()
			return res, stream.Zero(n, v.Op())
		}
		if rank < rem {
			in := p.Recv(rank+p2, base).Payload.(*stream.Vector)
			mergeCharged(p, acc, in, nil)
		}
	}

	lo, hi := 0, n
	for stage, dist := 0, p2/2; dist >= 1; stage, dist = stage+1, dist/2 {
		peer := rank ^ dist
		mid := lo + (hi-lo)/2
		var keepLo, keepHi, sendLo, sendHi int
		if rank&dist == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		out := acc.ExtractRange(sendLo, sendHi)
		m := p.SendRecv(peer, base+2+stage, out, out.WireBytes())
		kept := acc.ExtractRange(keepLo, keepHi)
		mergeCharged(p, kept, m.Payload.(*stream.Vector), nil)
		acc = kept
		lo, hi = keepLo, keepHi
	}

	// Re-select the top k/p2 entries of my reduced range; postpone the
	// rest.
	kLocal := k / p2
	if kLocal < 1 {
		kLocal = 1
	}
	mine, post := reselect(acc, kLocal)
	p.Compute(p.Profile().SparseMergeTime(acc.NNZ()))

	// Phase 2: ring allgather of the fixed-size selections.
	next := (rank + 1) % p2
	prev := (rank - 1 + p2) % p2
	gathered := mine.Clone()
	cur := mine
	for s := 0; s < p2-1; s++ {
		p.Send(next, base+64+s, cur, cur.WireBytes())
		in := p.Recv(prev, base+64+s).Payload.(*stream.Vector)
		concatCharged(p, gathered, in)
		cur = in
	}

	if rem > 0 && rank < rem {
		p.Send(rank+p2, base+1, gathered.Clone(), gathered.WireBytes())
	}
	return gathered, post
}

// reselect splits a sparse vector into its k largest-magnitude entries and
// the postponed remainder.
func reselect(v *stream.Vector, k int) (kept, postponed *stream.Vector) {
	if v.IsDense() {
		c := v.Clone()
		c.Sparsify()
		v = c
	}
	idx, val := v.Pairs()
	if len(idx) <= k {
		return v.Clone(), stream.Zero(v.Dim(), v.Op())
	}
	// Select positions within the pair arrays (not coordinates), so the
	// cost is O(nnz), independent of the universe size.
	selPos := topk.Select(val, k)
	selSet := make(map[int32]bool, len(selPos))
	for _, pos := range selPos {
		selSet[pos] = true
	}
	var ki, pi []int32
	var kv, pv []float64
	for i, ix := range idx {
		if selSet[int32(i)] {
			ki = append(ki, ix)
			kv = append(kv, val[i])
		} else {
			pi = append(pi, ix)
			pv = append(pv, val[i])
		}
	}
	return stream.NewSparse(v.Dim(), ki, kv, v.Op()),
		stream.NewSparse(v.Dim(), pi, pv, v.Op())
}
