package core

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/stream"
)

// The paper's streams work "with single or double precision floating point
// values" (§5.1). Storage is float64; the modeled wire size (ValueBytes)
// drives the α–β cost, so a single-precision deployment should see ~half
// the bandwidth cost and a lower δ threshold.

func TestFloat32WireAccountingHalvesBandwidthCost(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	P, n, k := 8, 1<<16, 4000
	mk := func(valueBytes int) []*stream.Vector {
		r := rand.New(rand.NewSource(91))
		_ = rng
		inputs := make([]*stream.Vector, P)
		for i := range inputs {
			inputs[i] = randSparse(r, n, k)
			inputs[i].SetValueBytes(valueBytes)
		}
		return inputs
	}
	timeFor := func(valueBytes int) float64 {
		w := comm.NewWorld(P, bandwidthBound)
		inputs := mk(valueBytes)
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARRecDouble})
		})
		return w.MaxTime()
	}
	t64, t32 := timeFor(8), timeFor(4)
	// Sparse entries shrink from 12 to 8 bytes → ratio 1.5.
	if ratio := t64 / t32; ratio < 1.3 || ratio > 1.7 {
		t.Fatalf("fp64/fp32 sparse time ratio %.2f, want ≈1.5", ratio)
	}
}

func TestFloat32DeltaThresholdLower(t *testing.T) {
	v64 := stream.NewSparse(1200, []int32{1}, []float64{1}, stream.OpSum)
	v32 := stream.NewSparse(1200, []int32{1}, []float64{1}, stream.OpSum)
	v32.SetValueBytes(4)
	// fp32: δ = N/2; fp64: δ = 2N/3.
	if v32.Delta() >= v64.Delta() {
		t.Fatalf("fp32 δ (%d) must be below fp64 δ (%d)", v32.Delta(), v64.Delta())
	}
}

func TestValueBytesPreservedThroughAllreduce(t *testing.T) {
	P := 4
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = stream.NewSparse(1000, []int32{int32(r)}, []float64{1}, stream.OpSum)
		inputs[r].SetValueBytes(4)
	}
	results := runAllreduce(t, P, inputs, Options{Algorithm: DSARSplitAllgather})
	for _, res := range results {
		if res.ValueBytes() != 4 {
			t.Fatal("ValueBytes lost through DSAR")
		}
	}
}
