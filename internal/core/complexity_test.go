package core

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/stream"
)

// These tests pin the *message complexity* of each algorithm — the number
// of point-to-point messages the analysis of §5.3 counts — using the
// world's message counters. A regression here means the latency terms
// L1(P) and L2(P) no longer hold.

func countMessages(t *testing.T, P int, inputs []*stream.Vector, f func(p *comm.Proc) any) (int64, int64) {
	t.Helper()
	w := comm.NewWorld(P, testProfile)
	w.ResetCounters()
	comm.Run(w, f)
	return w.TotalMessages(), w.TotalBytes()
}

func TestMessageComplexityRecDouble(t *testing.T) {
	// P ranks × log2(P) stages, one message each way per stage pair →
	// P·log2(P) messages total.
	rng := rand.New(rand.NewSource(81))
	P := 8
	inputs := patterns[0].gen(rng, 500, 10, P)
	msgs, _ := countMessages(t, P, inputs, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARRecDouble})
	})
	if want := int64(P * 3); msgs != want {
		t.Fatalf("rec-double P=8: %d messages, want %d", msgs, want)
	}
}

func TestMessageComplexitySplitAllgather(t *testing.T) {
	// Split phase: P·(P−1) direct messages; allgather: P·log2(P).
	rng := rand.New(rand.NewSource(83))
	P := 8
	inputs := patterns[0].gen(rng, 500, 10, P)
	msgs, _ := countMessages(t, P, inputs, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather})
	})
	if want := int64(P*(P-1) + P*3); msgs != want {
		t.Fatalf("split-allgather P=8: %d messages, want %d", msgs, want)
	}
}

func TestMessageComplexityRing(t *testing.T) {
	// Reduce-scatter ring + allgather ring: 2·P·(P−1) messages.
	rng := rand.New(rand.NewSource(85))
	P := 8
	inputs := patterns[0].gen(rng, 500, 10, P)
	for _, alg := range []Algorithm{DenseRing, RingSparse} {
		msgs, _ := countMessages(t, P, inputs, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg})
		})
		if want := int64(2 * P * (P - 1)); msgs != want {
			t.Fatalf("%s P=8: %d messages, want %d", alg, msgs, want)
		}
	}
}

func TestMessageComplexityBcastAndBarrier(t *testing.T) {
	P := 8
	w := comm.NewWorld(P, testProfile)
	comm.Run(w, func(p *comm.Proc) any {
		var x []float64
		if p.Rank() == 0 {
			x = []float64{1}
		}
		return Bcast(p, x, 0, 8)
	})
	if msgs := w.TotalMessages(); msgs != int64(P-1) {
		t.Fatalf("bcast P=8: %d messages, want %d", msgs, P-1)
	}
	w.ResetCounters()
	comm.Run(w, func(p *comm.Proc) any {
		p.Barrier()
		return nil
	})
	if msgs := w.TotalMessages(); msgs != int64(P*3) {
		t.Fatalf("dissemination barrier P=8: %d messages, want %d", msgs, P*3)
	}
}

func TestMessageComplexityReduce(t *testing.T) {
	// Binomial tree: P−1 messages.
	rng := rand.New(rand.NewSource(87))
	for _, P := range []int{2, 5, 8} {
		inputs := patterns[0].gen(rng, 200, 5, P)
		msgs, _ := countMessages(t, P, inputs, func(p *comm.Proc) any {
			return Reduce(p, inputs[p.Rank()], 0)
		})
		if want := int64(P - 1); msgs != want {
			t.Fatalf("reduce P=%d: %d messages, want %d", P, msgs, want)
		}
	}
}

func TestCommunicationVolumeSparseVsDense(t *testing.T) {
	// At 0.1% density the sparse algorithms must move orders of magnitude
	// fewer bytes than the dense baseline.
	rng := rand.New(rand.NewSource(89))
	P, n := 8, 1<<18
	inputs := patterns[0].gen(rng, n, n/1000, P)
	_, sparseBytes := countMessages(t, P, inputs, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather})
	})
	_, denseBytes := countMessages(t, P, inputs, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: DenseRabenseifner})
	})
	if ratio := float64(denseBytes) / float64(sparseBytes); ratio < 20 {
		t.Fatalf("dense/sparse volume ratio %.1f, want ≥20 at 0.1%% density", ratio)
	}
}
