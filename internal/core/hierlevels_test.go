package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// testHier3 is a 3-ranks/node, 2-nodes/group three-tier test hierarchy
// with egress caps at both grouped levels.
var testHier3 = simnet.Hierarchy{Levels: []simnet.Level{
	{GroupSize: 3, Profile: simnet.NVLinkLike, Serial: 1},
	{GroupSize: 2, Profile: simnet.Aries, Serial: 1},
	{Profile: simnet.AriesGlobal},
}}

// TestHierRecursiveMatchesFlatOn3Levels is the tentpole acceptance check:
// the recursive HierSSAR and HierDSAR on a 3-level world must produce
// bit-identical reductions to the flat algorithms on identical inputs
// (dyadic values make float addition exact), across divisible shapes and
// ragged tails at every tier — last node short, last group short, both.
func TestHierRecursiveMatchesFlatOn3Levels(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, P := range []int{
		12, 24, // divisible: full nodes, full groups
		13, 17, // ragged last node (and last group)
		15, 21, // full nodes, ragged last group
		7,       // a single ragged group
		5, 3, 2, // degenerate: fewer ranks than one group or one node
	} {
		for _, pat := range patterns {
			n := 300 + rng.Intn(300)
			k := 1 + rng.Intn(n/6)
			inputs := pat.gen(rng, n, k, P)

			flat := comm.NewWorld(P, simnet.Aries)
			wantS := comm.Run(flat, func(p *comm.Proc) []float64 {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather}).ToDense()
			})
			flatD := comm.NewWorld(P, simnet.Aries)
			wantD := comm.Run(flatD, func(p *comm.Proc) []float64 {
				return Allreduce(p, inputs[p.Rank()], Options{Algorithm: DSARSplitAllgather}).ToDense()
			})

			for alg, want := range map[Algorithm][][]float64{HierSSAR: wantS, HierDSAR: wantD} {
				w := comm.NewWorldHier(P, testHier3)
				results := comm.Run(w, func(p *comm.Proc) []float64 {
					return Allreduce(p, inputs[p.Rank()], Options{Algorithm: alg}).ToDense()
				})
				for r, got := range results {
					for i := range want[0] {
						if got[i] != want[0][i] {
							t.Fatalf("P=%d pattern=%s alg=%s rank=%d coord=%d: hier %g, flat %g",
								P, pat.name, alg, r, i, got[i], want[0][i])
						}
					}
				}
			}
		}
	}
}

// TestHierLevelsOptionTruncates: Options.Levels must truncate the
// recursion depth without changing the result, and on a Dragonfly-like
// machine with constrained top-level links the full 3-level scheme must
// beat both the 2-level truncation and flat at P = 64.
func TestHierLevelsOptionTruncates(t *testing.T) {
	const P = 64
	h := simnet.DragonflyLike(4, 4)
	rng := rand.New(rand.NewSource(11))
	inputs := patterns[0].gen(rng, 1<<16, 400, P)
	want := refSum(inputs)

	times := map[int]float64{}
	for _, levels := range []int{1, 2, 3} {
		w := comm.NewWorldHier(P, h)
		results := comm.Run(w, func(p *comm.Proc) []float64 {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: HierSSAR, Levels: levels}).ToDense()
		})
		for r, got := range results {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("levels=%d rank=%d coord=%d: got %g want %g", levels, r, i, got[i], want[i])
				}
			}
		}
		times[levels] = w.MaxTime()
	}
	if times[3] >= times[2] || times[3] >= times[1] {
		t.Fatalf("3-level scheme (%.2fµs) must beat 2-level (%.2fµs) and flat (%.2fµs) on DragonflyLike at P=%d",
			times[3]*1e6, times[2]*1e6, times[1]*1e6, P)
	}
	t.Logf("P=%d: flat %.2fµs, 2-level %.2fµs, 3-level %.2fµs", P,
		times[1]*1e6, times[2]*1e6, times[3]*1e6)
}

// TestAutoPicksDepthOnDragonfly: on the DragonflyLike preset Auto must
// resolve to a hierarchical algorithm at the depth the level-aware model
// prices cheapest, and the end-to-end Auto allreduce must stay correct —
// including on worlds with ragged tiers.
func TestAutoPicksDepthOnDragonfly(t *testing.T) {
	h := simnet.DragonflyLike(4, 4)
	s := CostScenario{N: 1 << 20, P: 64, K: 104, Profile: simnet.AriesGlobal, Hier: &h}
	alg, levels, _ := ChooseAutoLevels(s)
	if alg != HierSSAR {
		t.Fatalf("sparse regime on DragonflyLike should resolve hierarchical, got %s", alg)
	}
	cheapest, cheapestT := 0, math.Inf(1)
	for d := 2; d <= 3; d++ {
		sc := s
		sc.Levels = d
		if pt := PredictSeconds(HierSSAR, sc); pt < cheapestT {
			cheapest, cheapestT = d, pt
		}
	}
	if levels != cheapest {
		t.Fatalf("Auto picked depth %d but the model prices depth %d cheapest", levels, cheapest)
	}

	dense := CostScenario{N: 1 << 16, P: 64, K: 40000, Profile: simnet.AriesGlobal, Hier: &h}
	if alg, lv, _ := ChooseAutoLevels(dense); alg != HierDSAR || lv != 3 {
		t.Fatalf("dense regime on DragonflyLike should resolve to HierDSAR at depth 3, got %s@%d", alg, lv)
	}

	for _, P := range []int{64, 27} { // divisible and ragged at both tiers
		rng := rand.New(rand.NewSource(int64(P)))
		inputs := patterns[0].gen(rng, 2000, 80, P)
		want := refSum(inputs)
		w := comm.NewWorldHier(P, h)
		results := comm.Run(w, func(p *comm.Proc) []float64 {
			return Allreduce(p, inputs[p.Rank()], Options{}).ToDense()
		})
		for r, got := range results {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Auto P=%d rank=%d coord=%d: got %g want %g", P, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHierDSARQuantizedConsistentOn3Levels: QSGD through the 3-level
// recursion must keep every rank bit-identical (each top-leader partition
// is encoded once) and still approximate the true sum.
func TestHierDSARQuantizedConsistentOn3Levels(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, P := range []int{12, 14} {
		inputs := make([]*stream.Vector, P)
		for r := range inputs {
			inputs[r] = randSparse(rng, 4096, 600)
		}
		w := comm.NewWorldHier(P, testHier3)
		results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
			return Allreduce(p, inputs[p.Rank()], Options{
				Algorithm: HierDSAR,
				Quant:     &quant.Config{Bits: 4, Bucket: 512, Norm: quant.NormMax},
				Seed:      13,
			})
		})
		for r := 1; r < P; r++ {
			if !results[r].Equal(results[0]) {
				t.Fatalf("P=%d: rank %d quantized result differs from rank 0", P, r)
			}
		}
		want := refSum(inputs)
		got := results[0].ToDense()
		var num, den float64
		for i := range want {
			num += (got[i] - want[i]) * (got[i] - want[i])
			den += want[i] * want[i]
		}
		if den == 0 || num/den > 0.05 {
			t.Fatalf("P=%d: quantized relative squared error %g too large", P, num/den)
		}
	}
}

// TestHierInterGroupMessageLocality: with tracing enabled on a 3-level
// world, the recursive scheme must send strictly fewer top-level (global)
// messages than the 2-level truncation, which in turn sends fewer than
// flat — the locality the recursion exists to create.
func TestHierInterGroupMessageLocality(t *testing.T) {
	const P = 24
	rng := rand.New(rand.NewSource(43))
	inputs := patterns[0].gen(rng, 1000, 30, P)

	countGlobal := func(levels int) int {
		w := comm.NewWorldHier(P, testHier3)
		tr := w.EnableTrace()
		comm.Run(w, func(p *comm.Proc) any {
			return Allreduce(p, inputs[p.Rank()], Options{Algorithm: HierSSAR, Levels: levels})
		})
		global := 0
		for _, ev := range tr.Events() {
			if ev.Level == 2 {
				global++
			}
		}
		return global
	}

	flat, two, three := countGlobal(1), countGlobal(2), countGlobal(3)
	if !(three < two && two < flat) {
		t.Fatalf("global message counts must shrink with depth: flat=%d 2-level=%d 3-level=%d", flat, two, three)
	}
	t.Logf("global messages: flat=%d, 2-level=%d, 3-level=%d", flat, two, three)
}
