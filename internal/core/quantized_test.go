package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

func TestDSARQuantizedApproximatesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	P, n, k := 4, 2048, 200
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, k)
	}
	want := refSum(inputs)
	maxAbs := 0.0
	for _, x := range want {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	opts := Options{
		Algorithm: DSARSplitAllgather,
		Quant:     &quant.Config{Bits: 4, Bucket: 512, Norm: quant.NormMax},
		Seed:      1,
	}
	results := runAllreduce(t, P, inputs, opts)
	// 4-bit max-norm quantization: per-coordinate error ≤ scale/7 where the
	// scale is bounded by the bucket max; use the global max as a bound.
	tol := maxAbs/7 + 1e-9
	for r, res := range results {
		got := res.ToDense()
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("rank %d coord %d: got %g want %g (tol %g)", r, i, got[i], want[i], tol)
			}
		}
	}
}

func TestDSARQuantizedConsistentAcrossRanks(t *testing.T) {
	// Quantization is stochastic, but every rank must decode identical
	// bytes — replica divergence would break data-parallel SGD.
	rng := rand.New(rand.NewSource(19))
	P := 8
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, 1024, 300)
	}
	for _, bits := range []int{2, 4, 8} {
		opts := Options{
			Algorithm: DSARSplitAllgather,
			Quant:     &quant.Config{Bits: bits, Bucket: 256, Norm: quant.NormMax},
			Seed:      7,
		}
		results := runAllreduce(t, P, inputs, opts)
		for r := 1; r < P; r++ {
			if !results[r].Equal(results[0]) {
				t.Fatalf("bits=%d: rank %d decoded a different vector than rank 0", bits, r)
			}
		}
	}
}

func TestDSARQuantizedReducesBytes(t *testing.T) {
	// The quantized allgather phase must move fewer bytes, reflected in a
	// smaller simulated completion time on a bandwidth-dominated network.
	rng := rand.New(rand.NewSource(23))
	P, n := 8, 1<<15
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = randSparse(rng, n, n/4)
	}
	bw := comm.NewWorld(P, bandwidthBound)
	comm.Run(bw, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: DSARSplitAllgather})
	})
	tFull := bw.MaxTime()
	comm.Run(bw, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{
			Algorithm: DSARSplitAllgather,
			Quant:     &quant.Config{Bits: 4, Bucket: 1024, Norm: quant.NormMax},
		})
	})
	tQuant := bw.MaxTime()
	if tQuant >= tFull {
		t.Fatalf("quantized DSAR (%g) not faster than full precision (%g)", tQuant, tFull)
	}
	// The allgather stage dominates; 4-bit packing cuts its bytes ~16x, so
	// expect at least 2x end-to-end improvement on this instance.
	if tFull/tQuant < 2 {
		t.Fatalf("quantized speedup only %.2fx, want >2x", tFull/tQuant)
	}
}

// bandwidthBound emphasizes β so byte savings dominate timings.
var bandwidthBound = simnet.Profile{
	Name: "bw-bound", Alpha: 1e-7, BetaPerByte: 1e-8,
	GammaPerElem: 1e-12, SparseComputeFactor: 4,
}
