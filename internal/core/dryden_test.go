package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/stream"
)

func runDryden(t *testing.T, P, k int, inputs []*stream.Vector) ([]*stream.Vector, []*stream.Vector) {
	t.Helper()
	w := comm.NewWorld(P, testProfile)
	type pair struct{ res, post *stream.Vector }
	out := comm.Run(w, func(p *comm.Proc) pair {
		r, q := DrydenAllreduce(p, inputs[p.Rank()], k)
		return pair{r, q}
	})
	results := make([]*stream.Vector, P)
	posts := make([]*stream.Vector, P)
	for i, o := range out {
		results[i], posts[i] = o.res, o.post
	}
	return results, posts
}

func TestDrydenLosslessWhenKLarge(t *testing.T) {
	// With k large enough to hold everything, Dryden must equal the exact
	// allreduce and postpone nothing.
	rng := rand.New(rand.NewSource(71))
	P := 8
	inputs := patterns[0].gen(rng, 400, 10, P)
	want := refSum(inputs)
	results, posts := runDryden(t, P, 400*P, inputs)
	for r, res := range results {
		got := res.ToDense()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d coord %d: got %g want %g", r, i, got[i], want[i])
			}
		}
		if posts[r].NNZ() != 0 {
			t.Fatalf("rank %d postponed %d entries with large k", r, posts[r].NNZ())
		}
	}
}

func TestDrydenConservation(t *testing.T) {
	// Lossy case: every rank's (result restricted to its partition) +
	// postponed must equal the exact partition sum — no mass is lost.
	rng := rand.New(rand.NewSource(73))
	P, n, k := 4, 256, 32
	inputs := patterns[0].gen(rng, n, 30, P)
	want := refSum(inputs)
	results, posts := runDryden(t, P, k, inputs)
	for r := 0; r < P; r++ {
		lo, hi := partition(n, P, r)
		for i := lo; i < hi; i++ {
			got := results[r].Get(i) + posts[r].Get(i)
			if math.Abs(got-want[i]) > 1e-12 {
				t.Fatalf("rank %d coord %d: kept+postponed %g, want %g", r, i, got, want[i])
			}
		}
	}
}

func TestDrydenBoundsResultSize(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	P, n, k := 8, 4096, 64
	inputs := patterns[0].gen(rng, n, 200, P) // heavy: 1600 total entries
	results, _ := runDryden(t, P, k, inputs)
	for r, res := range results {
		if res.NNZ() > k {
			t.Fatalf("rank %d: result has %d entries, cap is k=%d", r, res.NNZ(), k)
		}
	}
	// All ranks must agree on the result.
	for r := 1; r < P; r++ {
		if !results[r].Equal(results[0]) {
			t.Fatalf("rank %d result differs", r)
		}
	}
}

func TestDrydenKeepsLargestMagnitudes(t *testing.T) {
	// Construct inputs where one coordinate per partition dominates; it
	// must survive the re-selection.
	P, n := 4, 64
	inputs := make([]*stream.Vector, P)
	for r := 0; r < P; r++ {
		idx := []int32{int32(16*r) + 1, int32(16*r) + 2, int32(16*r) + 3}
		val := []float64{100, 0.25, 0.125}
		inputs[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	results, _ := runDryden(t, P, P, inputs) // k=P → 1 per partition
	for r := 0; r < P; r++ {
		if results[0].Get(16*r+1) != 100 {
			t.Fatalf("dominant coordinate %d lost", 16*r+1)
		}
	}
	_ = results
}

func TestDrydenNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	P := 6
	inputs := patterns[0].gen(rng, 300, 8, P)
	want := refSum(inputs)
	results, _ := runDryden(t, P, 300*P, inputs)
	for r, res := range results {
		got := res.ToDense()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("P=6 rank %d coord %d: got %g want %g", r, i, got[i], want[i])
			}
		}
	}
}

func TestDrydenPerformanceTracksSplitAllgather(t *testing.T) {
	// §9: "their implementation will provide similar results to our
	// SSAR Split allgather algorithm" — simulated times within ~3x.
	rng := rand.New(rand.NewSource(79))
	P, n, k := 8, 1<<16, 2048
	inputs := patterns[0].gen(rng, n, k/P, P)

	w := comm.NewWorld(P, simnet.Aries)
	comm.Run(w, func(p *comm.Proc) any {
		r, _ := DrydenAllreduce(p, inputs[p.Rank()], k)
		return r
	})
	drydenT := w.MaxTime()

	comm.Run(w, func(p *comm.Proc) any {
		return Allreduce(p, inputs[p.Rank()], Options{Algorithm: SSARSplitAllgather})
	})
	ssarT := w.MaxTime()

	if ratio := drydenT / ssarT; ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("Dryden %g vs SSAR split-allgather %g: ratio %.2f outside [1/3, 3]", drydenT, ssarT, ratio)
	}
}
