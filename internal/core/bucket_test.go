package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// TestBucketSchedulerComposition pins the boundary rule: layers are
// walked in backprop (reverse) order and greedily accumulated until the
// bucket reaches the target coordinate count, with each bucket's layer
// list restored to ascending model order.
func TestBucketSchedulerComposition(t *testing.T) {
	spans := [][2]int{{0, 100}, {100, 160}, {160, 300}, {300, 310}, {310, 400}}
	cases := []struct {
		coords int
		want   [][]int
	}{
		// coords<=0: every layer its own bucket, in reverse order.
		{0, [][]int{{4}, {3}, {2}, {1}, {0}}},
		// 100: {4}=90+{3}=10 reach 100; {2}=140 alone; {1}=60+{0}=100.
		{100, [][]int{{3, 4}, {2}, {0, 1}}},
		// Huge target: everything in one bucket.
		{1 << 20, [][]int{{0, 1, 2, 3, 4}}},
	}
	for _, tc := range cases {
		s := NewBucketScheduler(spans, tc.coords)
		if s.NumBuckets() != len(tc.want) {
			t.Fatalf("coords=%d: %d buckets, want %d", tc.coords, s.NumBuckets(), len(tc.want))
		}
		for b := range tc.want {
			if !reflect.DeepEqual(s.Layers(b), tc.want[b]) {
				t.Errorf("coords=%d bucket %d: layers %v, want %v", tc.coords, b, s.Layers(b), tc.want[b])
			}
		}
	}
}

// TestBucketCoordsSizing checks the sizing rule's shape: more ranks or a
// higher-latency link want bigger buckets; a degenerate profile fuses
// everything.
func TestBucketCoordsSizing(t *testing.T) {
	base := CostScenario{N: 1 << 20, P: 8, Profile: simnet.Aries}
	c8 := BucketCoords(base)
	if c8 < 1 || c8 > base.N {
		t.Fatalf("BucketCoords out of range: %d", c8)
	}
	big := base
	big.P = 64
	if c64 := BucketCoords(big); c64 <= c8 {
		t.Errorf("more ranks should want bigger buckets: P=64 -> %d, P=8 -> %d", c64, c8)
	}
	slow := base
	slow.Profile = simnet.GigE
	if BucketCoords(slow) >= c8 {
		// GigE's alpha/beta ratio is lower than Aries', so its latency
		// floor amortizes at smaller buckets.
		t.Errorf("GigE should want smaller buckets than Aries")
	}
	degenerate := base
	degenerate.Profile = simnet.Profile{}
	if got := BucketCoords(degenerate); got != base.N {
		t.Errorf("degenerate profile: %d, want N=%d", got, base.N)
	}
}

// bucketInputs builds P ragged per-layer contribution sets over spans:
// full-dimension vectors with support inside their span, dyadic values.
func bucketInputs(rng *rand.Rand, n int, spans [][2]int, P int) [][]*stream.Vector {
	inputs := make([][]*stream.Vector, P)
	for r := range inputs {
		inputs[r] = make([]*stream.Vector, len(spans))
		for li, sp := range spans {
			span := sp[1] - sp[0]
			k := 0
			if span > 0 {
				k = 1 + rng.Intn(span) // ragged across ranks and layers
			}
			seen := map[int32]bool{}
			var idx []int32
			var val []float64
			for len(idx) < k {
				ix := int32(sp[0] + rng.Intn(span))
				if seen[ix] {
					continue
				}
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, dyadic(rng))
			}
			inputs[r][li] = stream.NewSparse(n, idx, val, stream.OpSum)
		}
	}
	return inputs
}

// TestBucketSchedulerIssueDrain: fusing + nonblocking issue + drain must
// reproduce the sequential reference sum of each bucket's layers, on the
// simulator and on the goroutine transport, with per-bucket and
// replicated Options.
func TestBucketSchedulerIssueDrain(t *testing.T) {
	const n = 900
	spans := [][2]int{{0, 300}, {300, 340}, {340, 700}, {700, 900}}
	rng := rand.New(rand.NewSource(8104))
	P := 6
	inputs := bucketInputs(rng, n, spans, P)
	s := NewBucketScheduler(spans, 350) // {3}+{2} reach 560; {1}+{0} = 340 tail
	if s.NumBuckets() != 2 {
		t.Fatalf("%d buckets, want 2", s.NumBuckets())
	}

	// Reference: sum of every rank's fused bucket vector.
	wantBucket := make([][]float64, s.NumBuckets())
	for b := range wantBucket {
		fused := make([]*stream.Vector, P)
		for r := range fused {
			fused[r] = s.Fuse(b, inputs[r], nil)
		}
		wantBucket[b] = refSum(fused)
	}

	worlds := []struct {
		name string
		mk   func() *comm.World
	}{
		{"sim", func() *comm.World { return comm.NewWorld(P, testProfile) }},
		{"goroutine", func() *comm.World { return comm.NewWorld(P, simnet.Aries).UseGoroutineTransport() }},
	}
	optCases := [][]Options{
		nil,
		{{Algorithm: SSARSplitAllgather, Chunks: 2}},
		{{Algorithm: SSARSplitAllgather, Chunks: 3}, {Algorithm: SSARRecDouble}},
	}
	for _, wc := range worlds {
		for oi, opts := range optCases {
			results := comm.Run(wc.mk(), func(p *comm.Proc) []*stream.Vector {
				return s.Drain(p, s.Issue(p, inputs[p.Rank()], opts))
			})
			for r, sums := range results {
				for b, sum := range sums {
					got := sum.ToDense()
					for i, want := range wantBucket[b] {
						if got[i] != want {
							t.Fatalf("%s opts=%d rank=%d bucket=%d coord=%d: got %g want %g",
								wc.name, oi, r, b, i, got[i], want)
						}
					}
				}
			}
		}
	}
}

// TestBucketSchedulerOptionArity: a per-bucket Options slice of the wrong
// length is a caller bug and must panic rather than silently misassign
// decisions to buckets.
func TestBucketSchedulerOptionArity(t *testing.T) {
	spans := [][2]int{{0, 10}, {10, 20}, {20, 30}}
	s := NewBucketScheduler(spans, 1) // one bucket per layer
	rng := rand.New(rand.NewSource(8105))
	inputs := bucketInputs(rng, 30, spans, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Issue with a 2-element Options slice for 3 buckets should panic")
		}
	}()
	comm.Run(comm.NewWorld(2, testProfile), func(p *comm.Proc) any {
		return s.Issue(p, inputs[p.Rank()], []Options{{}, {}})
	})
}
