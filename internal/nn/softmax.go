package nn

import (
	"math"
	"sort"
)

// SoftmaxCE computes the mean softmax cross-entropy loss of a batch of
// logits against integer labels, the gradient dL/dLogits (already averaged
// over the batch), and the top-1 correct count.
func SoftmaxCE(logits [][]float64, labels []int) (loss float64, dLogits [][]float64, correct int) {
	if len(logits) != len(labels) {
		panic("nn: batch size mismatch")
	}
	dLogits = make([][]float64, len(logits))
	batch := float64(len(logits))
	for s, z := range logits {
		y := labels[s]
		if y < 0 || y >= len(z) {
			panic("nn: label out of range")
		}
		// Stable log-sum-exp.
		maxZ := math.Inf(-1)
		argmax := 0
		for i, v := range z {
			if v > maxZ {
				maxZ, argmax = v, i
			}
		}
		sum := 0.0
		for _, v := range z {
			sum += math.Exp(v - maxZ)
		}
		logSum := maxZ + math.Log(sum)
		loss += (logSum - z[y]) / batch
		if argmax == y {
			correct++
		}
		d := make([]float64, len(z))
		for i, v := range z {
			d[i] = math.Exp(v-logSum) / batch
		}
		d[y] -= 1 / batch
		dLogits[s] = d
	}
	return loss, dLogits, correct
}

// TopKCorrect counts samples whose label is among the k largest logits —
// the top-5 metric of the ImageNet experiments (Figure 5).
func TopKCorrect(logits [][]float64, labels []int, k int) int {
	correct := 0
	for s, z := range logits {
		order := make([]int, len(z))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return z[order[a]] > z[order[b]] })
		limit := k
		if limit > len(order) {
			limit = len(order)
		}
		for _, i := range order[:limit] {
			if i == labels[s] {
				correct++
				break
			}
		}
	}
	return correct
}

// SGDMomentum is the classic heavy-ball optimizer used by the paper's
// baselines: v ← μ·v − lr·g; w ← w + v.
type SGDMomentum struct {
	// LR is the learning rate.
	LR float64
	// Momentum is the heavy-ball coefficient μ (0 disables).
	Momentum float64
	velocity []float64
}

// Step applies one update to params given grads.
func (o *SGDMomentum) Step(params, grads []float64) {
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	for i := range params {
		o.velocity[i] = o.Momentum*o.velocity[i] - o.LR*grads[i]
		params[i] += o.velocity[i]
	}
}
