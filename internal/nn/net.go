// Package nn is a small from-scratch neural-network stack standing in for
// CNTK (paper §7): dense layers, ReLU, residual blocks (the structural
// idea of ResNets, at MLP scale), an LSTM sequence classifier, softmax
// cross-entropy, and SGD with momentum. All parameters and gradients of a
// model live in single flat buffers so distributed training can hand the
// whole gradient to a collective in one call — the same "tensor fusion"
// SparCML performs (§9).
//
// The paper's networks (ResNet-110, wide ResNets, attention LSTMs) are
// replaced by width- and depth-scaled residual MLPs and LSTMs: the
// phenomena reproduced — TopK error-feedback convergence, gradient
// fill-in, compute/communication ratios — depend on parameter count,
// gradient sparsity and the optimizer, which these models parameterize
// directly (see DESIGN.md §1).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a feedforward Net. Layers are
// stateful across Forward/Backward (they cache activations) and are owned
// by exactly one Net on one rank.
type Layer interface {
	// NumParams returns the layer's parameter count.
	NumParams() int
	// Init writes initial parameter values into its slice of the flat
	// buffer.
	Init(params []float64, rng *rand.Rand)
	// Forward consumes a batch of activations and returns the outputs,
	// caching whatever Backward needs.
	Forward(params []float64, x [][]float64) [][]float64
	// Backward consumes dL/dOut, accumulates parameter gradients into its
	// slice of the flat gradient buffer, and returns dL/dIn.
	Backward(params, grads []float64, dOut [][]float64) [][]float64
	// FlopsPerSample estimates multiply-add work per sample for one
	// forward+backward pass (compute-time modeling).
	FlopsPerSample() float64
}

// Net is a feedforward network over flat parameter and gradient buffers.
type Net struct {
	layers []Layer
	offs   []int
	params []float64
	grads  []float64
	flops  float64
}

// NewNet assembles the layers and initializes parameters deterministically
// from the seed (all data-parallel replicas use the same seed, so models
// start identical without a broadcast).
func NewNet(seed int64, layers ...Layer) *Net {
	n := &Net{layers: layers}
	total := 0
	for _, l := range layers {
		n.offs = append(n.offs, total)
		total += l.NumParams()
		n.flops += l.FlopsPerSample()
	}
	n.params = make([]float64, total)
	n.grads = make([]float64, total)
	rng := rand.New(rand.NewSource(seed))
	for i, l := range layers {
		l.Init(n.params[n.offs[i]:n.offs[i]+l.NumParams()], rng)
	}
	return n
}

// Params returns the flat parameter buffer (live; optimizers mutate it).
func (n *Net) Params() []float64 { return n.params }

// Grads returns the flat gradient buffer (live).
func (n *Net) Grads() []float64 { return n.grads }

// ZeroGrads clears the gradient buffer.
func (n *Net) ZeroGrads() {
	for i := range n.grads {
		n.grads[i] = 0
	}
}

// NumParams returns the total parameter count.
func (n *Net) NumParams() int { return len(n.params) }

// LayerSpans returns the [offset, offset+len) range of each parameterized
// layer within the flat buffers, in network order. Used for layer-wise
// gradient exchange ("communication is done layer-wise using non-blocking
// calls", paper §8.3) and tensor-fusion decisions.
func (n *Net) LayerSpans() [][2]int {
	var spans [][2]int
	for i, l := range n.layers {
		if np := l.NumParams(); np > 0 {
			spans = append(spans, [2]int{n.offs[i], n.offs[i] + np})
		}
	}
	return spans
}

// FlopsPerSample estimates forward+backward work per sample.
func (n *Net) FlopsPerSample() float64 { return n.flops }

// Forward runs the batch through all layers and returns the logits.
func (n *Net) Forward(x [][]float64) [][]float64 {
	for i, l := range n.layers {
		x = l.Forward(n.params[n.offs[i]:n.offs[i]+l.NumParams()], x)
	}
	return x
}

// Backward propagates dL/dLogits back through all layers, accumulating
// parameter gradients.
func (n *Net) Backward(dOut [][]float64) {
	for i := len(n.layers) - 1; i >= 0; i-- {
		l := n.layers[i]
		dOut = l.Backward(n.params[n.offs[i]:n.offs[i]+l.NumParams()], n.grads[n.offs[i]:n.offs[i]+l.NumParams()], dOut)
	}
}

// Dense is a fully connected layer y = W·x + b with W ∈ R^{out×in}.
type Dense struct {
	In, Out int
	lastX   [][]float64
}

// NewDense constructs a Dense layer.
func NewDense(in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense %dx%d", in, out))
	}
	return &Dense{In: in, Out: out}
}

// NumParams returns out·in weights plus out biases.
func (d *Dense) NumParams() int { return d.Out*d.In + d.Out }

// Init applies He initialization (appropriate for ReLU networks).
func (d *Dense) Init(params []float64, rng *rand.Rand) {
	std := math.Sqrt(2 / float64(d.In))
	for i := 0; i < d.Out*d.In; i++ {
		params[i] = rng.NormFloat64() * std
	}
	// Biases start at zero (already zeroed).
}

// Forward computes the affine map for each sample.
func (d *Dense) Forward(params []float64, x [][]float64) [][]float64 {
	d.lastX = x
	w := params[:d.Out*d.In]
	b := params[d.Out*d.In:]
	out := make([][]float64, len(x))
	for s, xs := range x {
		if len(xs) != d.In {
			panic(fmt.Sprintf("nn: Dense expects %d inputs, got %d", d.In, len(xs)))
		}
		ys := make([]float64, d.Out)
		for o := 0; o < d.Out; o++ {
			row := w[o*d.In : (o+1)*d.In]
			sum := b[o]
			for i, xi := range xs {
				sum += row[i] * xi
			}
			ys[o] = sum
		}
		out[s] = ys
	}
	return out
}

// Backward accumulates dW += dOutᵀ·x, db += dOut and returns dX = Wᵀ·dOut.
func (d *Dense) Backward(params, grads []float64, dOut [][]float64) [][]float64 {
	w := params[:d.Out*d.In]
	gw := grads[:d.Out*d.In]
	gb := grads[d.Out*d.In:]
	dX := make([][]float64, len(dOut))
	for s, dy := range dOut {
		xs := d.lastX[s]
		dx := make([]float64, d.In)
		for o := 0; o < d.Out; o++ {
			g := dy[o]
			if g == 0 {
				continue
			}
			row := w[o*d.In : (o+1)*d.In]
			grow := gw[o*d.In : (o+1)*d.In]
			for i := range xs {
				grow[i] += g * xs[i]
				dx[i] += g * row[i]
			}
			gb[o] += g
		}
		dX[s] = dx
	}
	return dX
}

// FlopsPerSample counts ~2 multiply-adds per weight forward and 4 backward.
func (d *Dense) FlopsPerSample() float64 { return 6 * float64(d.Out*d.In) }

// ReLU is the rectifier activation.
type ReLU struct {
	lastX [][]float64
}

// NewReLU constructs a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// NumParams returns 0.
func (r *ReLU) NumParams() int { return 0 }

// Init is a no-op.
func (r *ReLU) Init([]float64, *rand.Rand) {}

// Forward applies max(0, x).
func (r *ReLU) Forward(_ []float64, x [][]float64) [][]float64 {
	r.lastX = x
	out := make([][]float64, len(x))
	for s, xs := range x {
		ys := make([]float64, len(xs))
		for i, v := range xs {
			if v > 0 {
				ys[i] = v
			}
		}
		out[s] = ys
	}
	return out
}

// Backward masks the incoming gradient by the activation pattern.
func (r *ReLU) Backward(_, _ []float64, dOut [][]float64) [][]float64 {
	dX := make([][]float64, len(dOut))
	for s, dy := range dOut {
		xs := r.lastX[s]
		dx := make([]float64, len(dy))
		for i := range dy {
			if xs[i] > 0 {
				dx[i] = dy[i]
			}
		}
		dX[s] = dx
	}
	return dX
}

// FlopsPerSample is negligible; counted as 0.
func (r *ReLU) FlopsPerSample() float64 { return 0 }

// Residual wraps an inner stack with an identity skip connection
// y = x + f(x), the defining structure of ResNets. Inner input and output
// dimensions must match.
type Residual struct {
	inner []Layer
	offs  []int
	total int
}

// NewResidual constructs a residual block over the inner layers.
func NewResidual(inner ...Layer) *Residual {
	r := &Residual{inner: inner}
	for _, l := range inner {
		r.offs = append(r.offs, r.total)
		r.total += l.NumParams()
	}
	return r
}

// NumParams returns the inner layers' total parameter count.
func (r *Residual) NumParams() int { return r.total }

// Init initializes the inner layers.
func (r *Residual) Init(params []float64, rng *rand.Rand) {
	for i, l := range r.inner {
		l.Init(params[r.offs[i]:r.offs[i]+l.NumParams()], rng)
	}
}

// Forward computes x + f(x).
func (r *Residual) Forward(params []float64, x [][]float64) [][]float64 {
	y := x
	for i, l := range r.inner {
		y = l.Forward(params[r.offs[i]:r.offs[i]+l.NumParams()], y)
	}
	out := make([][]float64, len(x))
	for s := range x {
		if len(y[s]) != len(x[s]) {
			panic("nn: residual inner output dimension mismatch")
		}
		ys := make([]float64, len(x[s]))
		for i := range ys {
			ys[i] = x[s][i] + y[s][i]
		}
		out[s] = ys
	}
	return out
}

// Backward propagates through the inner stack and adds the skip gradient.
func (r *Residual) Backward(params, grads []float64, dOut [][]float64) [][]float64 {
	dInner := dOut
	for i := len(r.inner) - 1; i >= 0; i-- {
		l := r.inner[i]
		dInner = l.Backward(params[r.offs[i]:r.offs[i]+l.NumParams()], grads[r.offs[i]:r.offs[i]+l.NumParams()], dInner)
	}
	dX := make([][]float64, len(dOut))
	for s := range dOut {
		dx := make([]float64, len(dOut[s]))
		for i := range dx {
			dx[i] = dOut[s][i] + dInner[s][i]
		}
		dX[s] = dx
	}
	return dX
}

// FlopsPerSample sums the inner layers.
func (r *Residual) FlopsPerSample() float64 {
	f := 0.0
	for _, l := range r.inner {
		f += l.FlopsPerSample()
	}
	return f
}

// ResidualMLP builds a ResNet-style classifier: an input projection to
// `width`, `blocks` residual blocks of two width×width dense layers with
// ReLU, and a classifier head. widthFactor scales the trunk width, the
// knob the wide-ResNet experiments turn (§8.4: "the number of channels in
// each block is multiplied by a constant factor").
func ResidualMLP(seed int64, inputDim, width, blocks, classes int, widthFactor int) *Net {
	if widthFactor < 1 {
		widthFactor = 1
	}
	w := width * widthFactor
	layers := []Layer{NewDense(inputDim, w), NewReLU()}
	for b := 0; b < blocks; b++ {
		layers = append(layers, NewResidual(
			NewDense(w, w), NewReLU(), NewDense(w, w),
		), NewReLU())
	}
	layers = append(layers, NewDense(w, classes))
	return NewNet(seed, layers...)
}
