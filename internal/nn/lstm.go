package nn

import (
	"math"
	"math/rand"
)

// LSTMClassifier is a single-layer LSTM sequence classifier with a learned
// token embedding and a softmax head over the final hidden state — the
// shape of the encoder used for the ATIS natural-language-understanding
// and ASR experiments (§8.3, §8.4), at reduced dimension.
//
// Parameters live in one flat buffer, laid out as:
//
//	embedding  Vocab×Embed
//	Wx         4·Hidden×Embed   (gate order: input, forget, cell, output)
//	Wh         4·Hidden×Hidden
//	b          4·Hidden
//	Wout       Classes×Hidden
//	bout       Classes
type LSTMClassifier struct {
	Vocab, Embed, Hidden, Classes int

	params []float64
	grads  []float64

	offE, offWx, offWh, offB, offWout, offBout, total int
}

// NewLSTMClassifier builds and deterministically initializes the model.
// The forget-gate bias starts at 1, the standard trick that keeps memory
// open early in training.
func NewLSTMClassifier(seed int64, vocab, embed, hidden, classes int) *LSTMClassifier {
	if vocab <= 0 || embed <= 0 || hidden <= 0 || classes <= 1 {
		panic("nn: invalid LSTM configuration")
	}
	m := &LSTMClassifier{Vocab: vocab, Embed: embed, Hidden: hidden, Classes: classes}
	m.offE = 0
	m.offWx = m.offE + vocab*embed
	m.offWh = m.offWx + 4*hidden*embed
	m.offB = m.offWh + 4*hidden*hidden
	m.offWout = m.offB + 4*hidden
	m.offBout = m.offWout + classes*hidden
	m.total = m.offBout + classes
	m.params = make([]float64, m.total)
	m.grads = make([]float64, m.total)

	rng := rand.New(rand.NewSource(seed))
	scaleE := 0.1
	for i := m.offE; i < m.offWx; i++ {
		m.params[i] = rng.NormFloat64() * scaleE
	}
	scaleX := 1 / math.Sqrt(float64(embed))
	for i := m.offWx; i < m.offWh; i++ {
		m.params[i] = rng.NormFloat64() * scaleX
	}
	scaleH := 1 / math.Sqrt(float64(hidden))
	for i := m.offWh; i < m.offB; i++ {
		m.params[i] = rng.NormFloat64() * scaleH
	}
	for j := 0; j < hidden; j++ {
		m.params[m.offB+hidden+j] = 1 // forget-gate bias
	}
	for i := m.offWout; i < m.offBout; i++ {
		m.params[i] = rng.NormFloat64() * scaleH
	}
	return m
}

// Params returns the flat parameter buffer.
func (m *LSTMClassifier) Params() []float64 { return m.params }

// Grads returns the flat gradient buffer.
func (m *LSTMClassifier) Grads() []float64 { return m.grads }

// NumParams returns the total parameter count.
func (m *LSTMClassifier) NumParams() int { return m.total }

// ZeroGrads clears the gradient buffer.
func (m *LSTMClassifier) ZeroGrads() {
	for i := range m.grads {
		m.grads[i] = 0
	}
}

// FlopsPerToken estimates multiply-add work per token for forward+backward.
func (m *LSTMClassifier) FlopsPerToken() float64 {
	return 6 * float64(4*m.Hidden*(m.Embed+m.Hidden))
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// cache holds per-timestep activations for backprop through time.
type lstmCache struct {
	x          [][]float64 // embedded inputs
	i, f, g, o [][]float64
	c, h       [][]float64 // c[t], h[t] AFTER step t; index 0 is t=0 state
	tanhC      [][]float64
}

// forward runs one sequence and returns the logits and the BPTT cache.
func (m *LSTMClassifier) forward(seq []int) ([]float64, *lstmCache) {
	H, E := m.Hidden, m.Embed
	emb := m.params[m.offE:m.offWx]
	wx := m.params[m.offWx:m.offWh]
	wh := m.params[m.offWh:m.offB]
	b := m.params[m.offB:m.offWout]

	T := len(seq)
	cc := &lstmCache{}
	h := make([]float64, H)
	c := make([]float64, H)
	for t := 0; t < T; t++ {
		tok := seq[t]
		if tok < 0 || tok >= m.Vocab {
			panic("nn: token out of vocabulary")
		}
		x := emb[tok*E : (tok+1)*E]
		z := make([]float64, 4*H)
		for r := 0; r < 4*H; r++ {
			sum := b[r]
			rowX := wx[r*E : (r+1)*E]
			for j := 0; j < E; j++ {
				sum += rowX[j] * x[j]
			}
			rowH := wh[r*H : (r+1)*H]
			for j := 0; j < H; j++ {
				sum += rowH[j] * h[j]
			}
			z[r] = sum
		}
		it := make([]float64, H)
		ft := make([]float64, H)
		gt := make([]float64, H)
		ot := make([]float64, H)
		cNew := make([]float64, H)
		hNew := make([]float64, H)
		tc := make([]float64, H)
		for j := 0; j < H; j++ {
			it[j] = sigmoid(z[j])
			ft[j] = sigmoid(z[H+j])
			gt[j] = math.Tanh(z[2*H+j])
			ot[j] = sigmoid(z[3*H+j])
			cNew[j] = ft[j]*c[j] + it[j]*gt[j]
			tc[j] = math.Tanh(cNew[j])
			hNew[j] = ot[j] * tc[j]
		}
		cc.x = append(cc.x, append([]float64(nil), x...))
		cc.i = append(cc.i, it)
		cc.f = append(cc.f, ft)
		cc.g = append(cc.g, gt)
		cc.o = append(cc.o, ot)
		cc.c = append(cc.c, append([]float64(nil), c...)) // c_{t-1}
		cc.tanhC = append(cc.tanhC, tc)
		cc.h = append(cc.h, append([]float64(nil), h...)) // h_{t-1}
		h, c = hNew, cNew
	}

	// Head: logits = Wout·h_T + bout.
	wout := m.params[m.offWout:m.offBout]
	bout := m.params[m.offBout:]
	logits := make([]float64, m.Classes)
	for k := 0; k < m.Classes; k++ {
		sum := bout[k]
		row := wout[k*H : (k+1)*H]
		for j := 0; j < H; j++ {
			sum += row[j] * h[j]
		}
		logits[k] = sum
	}
	// Stash final h in the cache for the head's backward pass.
	cc.h = append(cc.h, h)
	cc.c = append(cc.c, c)
	return logits, cc
}

// backward runs BPTT for one sequence given dL/dLogits, accumulating into
// the flat gradient buffer.
func (m *LSTMClassifier) backward(seq []int, cc *lstmCache, dLogits []float64) {
	H, E := m.Hidden, m.Embed
	wx := m.params[m.offWx:m.offWh]
	wh := m.params[m.offWh:m.offB]
	wout := m.params[m.offWout:m.offBout]

	gE := m.grads[m.offE:m.offWx]
	gWx := m.grads[m.offWx:m.offWh]
	gWh := m.grads[m.offWh:m.offB]
	gB := m.grads[m.offB:m.offWout]
	gWout := m.grads[m.offWout:m.offBout]
	gBout := m.grads[m.offBout:]

	T := len(seq)
	hT := cc.h[T] // final hidden state

	dh := make([]float64, H)
	for k, d := range dLogits {
		gBout[k] += d
		row := wout[k*H : (k+1)*H]
		grow := gWout[k*H : (k+1)*H]
		for j := 0; j < H; j++ {
			grow[j] += d * hT[j]
			dh[j] += d * row[j]
		}
	}
	dc := make([]float64, H)

	for t := T - 1; t >= 0; t-- {
		it, ft, gt, ot := cc.i[t], cc.f[t], cc.g[t], cc.o[t]
		cPrev, tc := cc.c[t], cc.tanhC[t]
		hPrev, x := cc.h[t], cc.x[t]

		dz := make([]float64, 4*H)
		for j := 0; j < H; j++ {
			dcj := dc[j] + dh[j]*ot[j]*(1-tc[j]*tc[j])
			doj := dh[j] * tc[j]
			dij := dcj * gt[j]
			dfj := dcj * cPrev[j]
			dgj := dcj * it[j]
			dz[j] = dij * it[j] * (1 - it[j])
			dz[H+j] = dfj * ft[j] * (1 - ft[j])
			dz[2*H+j] = dgj * (1 - gt[j]*gt[j])
			dz[3*H+j] = doj * ot[j] * (1 - ot[j])
			dc[j] = dcj * ft[j] // carried to t−1
		}

		// Parameter gradients and input gradients.
		dhPrev := make([]float64, H)
		dx := make([]float64, E)
		for r := 0; r < 4*H; r++ {
			d := dz[r]
			if d == 0 {
				continue
			}
			gB[r] += d
			rowX := wx[r*E : (r+1)*E]
			growX := gWx[r*E : (r+1)*E]
			for j := 0; j < E; j++ {
				growX[j] += d * x[j]
				dx[j] += d * rowX[j]
			}
			rowH := wh[r*H : (r+1)*H]
			growH := gWh[r*H : (r+1)*H]
			for j := 0; j < H; j++ {
				growH[j] += d * hPrev[j]
				dhPrev[j] += d * rowH[j]
			}
		}
		tok := seq[t]
		gtok := gE[tok*E : (tok+1)*E]
		for j := 0; j < E; j++ {
			gtok[j] += dx[j]
		}
		dh = dhPrev
	}
}

// Step runs forward+backward over a batch of sequences, accumulating the
// batch-averaged gradient, and returns the mean loss and top-1 correct
// count.
func (m *LSTMClassifier) Step(seqs [][]int, labels []int) (loss float64, correct int) {
	logits := make([][]float64, len(seqs))
	caches := make([]*lstmCache, len(seqs))
	for s, seq := range seqs {
		logits[s], caches[s] = m.forward(seq)
	}
	loss, dLogits, correct := SoftmaxCE(logits, labels)
	for s, seq := range seqs {
		m.backward(seq, caches[s], dLogits[s])
	}
	return loss, correct
}

// Eval runs forward only, returning mean loss and top-1 correct count.
func (m *LSTMClassifier) Eval(seqs [][]int, labels []int) (loss float64, correct int) {
	logits := make([][]float64, len(seqs))
	for s, seq := range seqs {
		logits[s], _ = m.forward(seq)
	}
	loss, _, correct = SoftmaxCE(logits, labels)
	return loss, correct
}
