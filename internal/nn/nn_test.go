package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestSoftmaxCEProperties(t *testing.T) {
	logits := [][]float64{{2, 1, 0.5}, {-1, 3, 0}}
	labels := []int{0, 1}
	loss, dLogits, correct := SoftmaxCE(logits, labels)
	if loss <= 0 {
		t.Fatalf("loss = %g, want positive", loss)
	}
	if correct != 2 {
		t.Fatalf("correct = %d, want 2", correct)
	}
	// Gradient rows must sum to zero (softmax minus one-hot).
	for s, d := range dLogits {
		sum := 0.0
		for _, v := range d {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("sample %d: gradient sums to %g", s, sum)
		}
	}
	// The label coordinate must have negative gradient.
	if dLogits[0][0] >= 0 || dLogits[1][1] >= 0 {
		t.Fatal("label coordinates must have negative gradient")
	}
}

func TestSoftmaxCEStableAtExtremeLogits(t *testing.T) {
	loss, d, _ := SoftmaxCE([][]float64{{1000, -1000, 0}}, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g", loss)
	}
	for _, v := range d[0] {
		if math.IsNaN(v) {
			t.Fatal("NaN gradient at extreme logits")
		}
	}
}

func TestTopKCorrect(t *testing.T) {
	logits := [][]float64{{5, 4, 3, 2, 1}, {1, 2, 3, 4, 5}}
	labels := []int{2, 0}
	if got := TopKCorrect(logits, labels, 1); got != 0 {
		t.Fatalf("top1 = %d, want 0", got)
	}
	if got := TopKCorrect(logits, labels, 3); got != 1 {
		t.Fatalf("top3 = %d, want 1 (sample 0's label ranks 3rd)", got)
	}
	if got := TopKCorrect(logits, labels, 5); got != 2 {
		t.Fatalf("top5 = %d, want 2", got)
	}
}

// mlpLoss computes the scalar loss of a net on a fixed batch, for finite
// differences.
func mlpLoss(n *Net, x [][]float64, y []int) float64 {
	loss, _, _ := SoftmaxCE(n.Forward(x), y)
	return loss
}

func TestMLPGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNet(7,
		NewDense(5, 8), NewReLU(),
		NewResidual(NewDense(8, 8), NewReLU(), NewDense(8, 8)), NewReLU(),
		NewDense(8, 3),
	)
	batch := 4
	x := make([][]float64, batch)
	y := make([]int, batch)
	for s := range x {
		x[s] = make([]float64, 5)
		for i := range x[s] {
			x[s][i] = rng.NormFloat64()
		}
		y[s] = rng.Intn(3)
	}
	n.ZeroGrads()
	loss, dLogits, _ := SoftmaxCE(n.Forward(x), y)
	if loss <= 0 {
		t.Fatal("degenerate loss")
	}
	n.Backward(dLogits)
	analytic := append([]float64(nil), n.Grads()...)

	params := n.Params()
	h := 1e-6
	// Spot-check a spread of parameters across all layers.
	for trial := 0; trial < 60; trial++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		up := mlpLoss(n, x, y)
		params[i] = orig - h
		down := mlpLoss(n, x, y)
		params[i] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-analytic[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("param %d: analytic %g vs finite-diff %g", i, analytic[i], fd)
		}
	}
}

func TestLSTMGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewLSTMClassifier(11, 12, 4, 5, 3)
	seqs := [][]int{{1, 5, 3, 7}, {2, 0, 11}}
	labels := []int{0, 2}

	m.ZeroGrads()
	m.Step(seqs, labels)
	analytic := append([]float64(nil), m.Grads()...)

	evalLoss := func() float64 {
		loss, _ := m.Eval(seqs, labels)
		return loss
	}
	params := m.Params()
	h := 1e-6
	for trial := 0; trial < 80; trial++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		up := evalLoss()
		params[i] = orig - h
		down := evalLoss()
		params[i] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-analytic[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("param %d: analytic %g vs finite-diff %g", i, analytic[i], fd)
		}
	}
}

func TestLSTMGradientCoversAllParameterGroups(t *testing.T) {
	// Every parameter group (embedding, Wx, Wh, b, head) must receive
	// nonzero gradient from a generic batch.
	m := NewLSTMClassifier(3, 10, 4, 6, 4)
	m.ZeroGrads()
	m.Step([][]int{{1, 2, 3, 4, 5}, {9, 8, 7}}, []int{0, 3})
	groups := map[string][2]int{
		"embedding": {m.offE, m.offWx},
		"Wx":        {m.offWx, m.offWh},
		"Wh":        {m.offWh, m.offB},
		"b":         {m.offB, m.offWout},
		"Wout":      {m.offWout, m.offBout},
		"bout":      {m.offBout, m.total},
	}
	for name, span := range groups {
		nonzero := false
		for i := span[0]; i < span[1]; i++ {
			if m.grads[i] != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Errorf("parameter group %s received zero gradient", name)
		}
	}
}

func TestMLPLearnsXORLikeTask(t *testing.T) {
	// A nonlinear task a linear model cannot solve: XOR of two inputs.
	rng := rand.New(rand.NewSource(3))
	n := NewNet(5, NewDense(2, 16), NewReLU(), NewDense(16, 2))
	opt := &SGDMomentum{LR: 0.1, Momentum: 0.9}
	var loss float64
	for step := 0; step < 500; step++ {
		x := make([][]float64, 32)
		y := make([]int, 32)
		for s := range x {
			a, b := rng.Intn(2), rng.Intn(2)
			x[s] = []float64{float64(a), float64(b)}
			y[s] = a ^ b
		}
		n.ZeroGrads()
		var d [][]float64
		loss, d, _ = SoftmaxCE(n.Forward(x), y)
		n.Backward(d)
		opt.Step(n.Params(), n.Grads())
	}
	if loss > 0.1 {
		t.Fatalf("final XOR loss %g, want <0.1", loss)
	}
}

func TestLSTMLearnsOrderSensitiveTask(t *testing.T) {
	// Classify whether token 1 appears before token 2 — impossible for a
	// bag-of-words model, so success requires working recurrence.
	rng := rand.New(rand.NewSource(4))
	m := NewLSTMClassifier(6, 8, 6, 12, 2)
	opt := &SGDMomentum{LR: 0.2, Momentum: 0.9}
	gen := func() ([]int, int) {
		length := 4 + rng.Intn(4)
		seq := make([]int, length)
		for i := range seq {
			seq[i] = 3 + rng.Intn(5) // background tokens 3..7
		}
		i, j := rng.Intn(length), rng.Intn(length)
		for i == j {
			j = rng.Intn(length)
		}
		if i > j {
			i, j = j, i
		}
		if rng.Intn(2) == 0 {
			seq[i], seq[j] = 1, 2
			return seq, 0
		}
		seq[i], seq[j] = 2, 1
		return seq, 1
	}
	var correct, total int
	for step := 0; step < 400; step++ {
		seqs := make([][]int, 16)
		labels := make([]int, 16)
		for s := range seqs {
			seqs[s], labels[s] = gen()
		}
		m.ZeroGrads()
		_, c := m.Step(seqs, labels)
		opt.Step(m.Params(), m.Grads())
		if step >= 350 {
			correct += c
			total += 16
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("order-task accuracy %g, want ≥0.9", acc)
	}
}

func TestNetDeterministicInit(t *testing.T) {
	a := ResidualMLP(9, 10, 16, 2, 4, 1)
	b := ResidualMLP(9, 10, 16, 2, 4, 1)
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("same seed must produce identical parameters")
		}
	}
	c := ResidualMLP(10, 10, 16, 2, 4, 1)
	same := true
	for i := range a.Params() {
		if a.Params()[i] != c.Params()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestResidualMLPWidthFactorScalesParams(t *testing.T) {
	base := ResidualMLP(1, 100, 32, 3, 10, 1)
	wide := ResidualMLP(1, 100, 32, 3, 10, 4)
	// Trunk params scale ~quadratically with width factor.
	ratio := float64(wide.NumParams()) / float64(base.NumParams())
	if ratio < 8 || ratio > 16 {
		t.Fatalf("4x width factor changed params by %.1fx, want ~8-16x", ratio)
	}
}

func TestSGDMomentumMatchesManual(t *testing.T) {
	opt := &SGDMomentum{LR: 0.1, Momentum: 0.5}
	p := []float64{1}
	opt.Step(p, []float64{1}) // v = -0.1; p = 0.9
	opt.Step(p, []float64{1}) // v = -0.05-0.1 = -0.15; p = 0.75
	if math.Abs(p[0]-0.75) > 1e-12 {
		t.Fatalf("p = %g, want 0.75", p[0])
	}
}

func TestDenseRejectsWrongInputSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := NewNet(1, NewDense(3, 2))
	n.Forward([][]float64{{1, 2}})
}

func TestFlopsAccounting(t *testing.T) {
	n := NewNet(1, NewDense(10, 20), NewReLU(), NewDense(20, 5))
	want := 6.0 * (10*20 + 20*5)
	if got := n.FlopsPerSample(); got != want {
		t.Fatalf("FlopsPerSample = %g, want %g", got, want)
	}
	m := NewLSTMClassifier(1, 10, 4, 8, 3)
	if m.FlopsPerToken() <= 0 {
		t.Fatal("LSTM flops must be positive")
	}
}
