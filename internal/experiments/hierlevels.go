package experiments

import (
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
)

// This file holds the hierarchy-depth ablation recorded as BENCH_4.json:
// on a three-tier DragonflyLike machine (nodes behind serialized NICs,
// Dragonfly groups behind tapered uplinks, expensive global links), the
// same allreduce instance is run flat, with the two-level hierarchical
// scheme (nodes only — yesterday's HierSSAR/HierDSAR), and with the full
// three-level recursion, on the *same* world. Every metric is simulated
// virtual time on seeded inputs, so the document is reproducible
// byte-for-byte and scripts/ci.sh drift-gates it like BENCH_2/BENCH_3.

// HierLevelsRow is one flat vs 2-level vs 3-level measurement cell.
type HierLevelsRow struct {
	N             int     `json:"n"`
	P             int     `json:"p"`
	RanksPerNode  int     `json:"ranks_per_node"`
	NodesPerGroup int     `json:"nodes_per_group"`
	Density       float64 `json:"density"`
	K             int     `json:"k_per_rank"`
	// Family is the algorithm family compared: "ssar" (sparse result) or
	// "dsar" (dense result).
	Family string `json:"family"`
	// FlatSim, TwoLevelSim, and ThreeLevelSim are simulated allreduce
	// times in seconds for the flat algorithm and the hierarchical one
	// truncated to 2 levels and run at the full 3 levels.
	FlatSim       float64 `json:"flat_sim_seconds"`
	TwoLevelSim   float64 `json:"two_level_sim_seconds"`
	ThreeLevelSim float64 `json:"three_level_sim_seconds"`
	// FlatModel, TwoLevelModel, and ThreeLevelModel are the corresponding
	// cost-model predictions in seconds.
	FlatModel       float64 `json:"flat_model_seconds"`
	TwoLevelModel   float64 `json:"two_level_model_seconds"`
	ThreeLevelModel float64 `json:"three_level_model_seconds"`
	// SpeedupOverFlat is FlatSim / ThreeLevelSim; SpeedupOverTwoLevel is
	// TwoLevelSim / ThreeLevelSim.
	SpeedupOverFlat     float64 `json:"speedup_over_flat"`
	SpeedupOverTwoLevel float64 `json:"speedup_over_two_level"`
	// AutoChoice and AutoLevels are what ChooseAutoLevels resolves to on
	// the cell's scenario; CheapestSim names the empirically cheapest
	// variant ("flat", "2-level", or "3-level"). AutoMatchesCheapest
	// reports whether the variant Auto picked simulates within 2% of the
	// cheapest one — adjacent depths can tie near the crossover, and a
	// near-tie is not a mis-prediction.
	AutoChoice          string `json:"auto_choice"`
	AutoLevels          int    `json:"auto_levels"`
	CheapestSim         string `json:"cheapest_sim"`
	AutoMatchesCheapest bool   `json:"auto_matches_cheapest"`
}

// RunHierLevelsCell measures one depth-ablation cell on the DragonflyLike
// hierarchy with the given shape. Simulated times are deterministic, so
// one run per variant suffices.
func RunHierLevelsCell(n int, d float64, P, rpn, npg int, family string, seed int64) HierLevelsRow {
	h := simnet.DragonflyLike(rpn, npg)
	rng := rand.New(rand.NewSource(seed))
	inputs := uniformInputs(rng, n, d, P)
	k := inputs[0].NNZ()
	row := HierLevelsRow{N: n, P: P, RanksPerNode: rpn, NodesPerGroup: npg,
		Density: d, K: k, Family: family}

	flat, hier := core.SSARSplitAllgather, core.HierSSAR
	if family == "dsar" {
		flat, hier = core.DSARSplitAllgather, core.HierDSAR
	}
	run := func(alg core.Algorithm, levels int) float64 {
		w := comm.NewWorldHier(P, h)
		comm.Run(w, func(p *comm.Proc) any {
			return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: alg, Levels: levels})
		})
		return w.MaxTime()
	}
	row.FlatSim = run(flat, 0)
	row.TwoLevelSim = run(hier, 2)
	row.ThreeLevelSim = run(hier, 3)

	scenario := core.CostScenario{N: n, P: P, K: k, Profile: h.Levels[2].Profile, Hier: &h}
	row.FlatModel = core.PredictSeconds(flat, scenario)
	two := scenario
	two.Levels = 2
	row.TwoLevelModel = core.PredictSeconds(hier, two)
	three := scenario
	three.Levels = 3
	row.ThreeLevelModel = core.PredictSeconds(hier, three)

	if row.ThreeLevelSim > 0 {
		row.SpeedupOverFlat = row.FlatSim / row.ThreeLevelSim
		row.SpeedupOverTwoLevel = row.TwoLevelSim / row.ThreeLevelSim
	}
	alg, levels, _ := core.ChooseAutoLevels(scenario)
	row.AutoChoice = alg.String()
	row.AutoLevels = levels
	cheapest := row.FlatSim
	switch {
	case row.FlatSim <= row.TwoLevelSim && row.FlatSim <= row.ThreeLevelSim:
		row.CheapestSim = "flat"
	case row.TwoLevelSim <= row.ThreeLevelSim:
		row.CheapestSim, cheapest = "2-level", row.TwoLevelSim
	default:
		row.CheapestSim, cheapest = "3-level", row.ThreeLevelSim
	}
	// Measure Auto's actual pick rather than assuming it is one of the
	// three variants above: Auto may resolve to a different flat algorithm
	// (e.g. rec-double) or cross the delta gate into the other family.
	autoSim := run(alg, levels)
	row.AutoMatchesCheapest = autoSim <= 1.02*cheapest
	return row
}

// HierLevelsSweep runs the default BENCH_4 cells: a latency-bound sparse
// instance (SSAR family) and a dense-regime instance (DSAR family) on
// DragonflyLike(4, 4) machines of 32, 64, and 128 ranks — 2, 4, and 8
// Dragonfly groups.
func HierLevelsSweep() []HierLevelsRow {
	var rows []HierLevelsRow
	for _, P := range []int{32, 64, 128} {
		rows = append(rows, RunHierLevelsCell(1<<20, 1e-4, P, 4, 4, "ssar", 503+int64(P)))
	}
	for _, P := range []int{32, 64, 128} {
		rows = append(rows, RunHierLevelsCell(1<<16, 0.6, P, 4, 4, "dsar", 601+int64(P)))
	}
	return rows
}
