package experiments

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the runtime-adaptation ablation recorded as
// BENCH_5.json: the same call sequence run with static-uniform Auto (the
// default), static-clustered Auto (Options.Support pinned), and the
// adaptive controller (internal/adapt), on stationary uniform, stationary
// clustered, and two drifting workloads — one drifting into clustering
// (where the uniform support model flips the δ gate wrongly) and one
// drifting into density under mild clustering (where the clustered model
// with its default shape is the wrong one). The workloads are the
// declarative BENCH_5 cells of internal/scenario; every metric is
// simulated virtual time on seed-isolated inputs, so the document is
// reproducible byte-for-byte and scripts/ci.sh drift-gates it like
// BENCH_2–4. Any cell can be recorded to a trace (scenario.Record) and
// re-run byte-identically from the file via ReplayAdaptCell.

// AdaptRow is one workload cell of the adaptation ablation.
type AdaptRow struct {
	Workload     string `json:"workload"`
	N            int    `json:"n"`
	P            int    `json:"p"`
	RanksPerNode int    `json:"ranks_per_node"`
	NICSerial    int    `json:"nic_serial"`
	Calls        int    `json:"calls"`
	// KStart and KEnd are the per-rank non-zero counts of the first and
	// last call (equal on stationary workloads).
	KStart int `json:"k_start"`
	KEnd   int `json:"k_end"`
	// Simulated total time of the whole call sequence per arm.
	StaticUniformSim   float64 `json:"static_uniform_sim_seconds"`
	StaticClusteredSim float64 `json:"static_clustered_sim_seconds"`
	AdaptiveSim        float64 `json:"adaptive_sim_seconds"`
	// AdaptiveVsUniform is StaticUniformSim/AdaptiveSim (the acceptance
	// headline: > 1 means adaptive beats the default static Auto);
	// AdaptiveVsBestStatic compares against the better static arm.
	AdaptiveVsUniform    float64 `json:"adaptive_vs_uniform"`
	AdaptiveVsBestStatic float64 `json:"adaptive_vs_best_static"`
	// AdaptiveSwitches counts post-adoption algorithm/depth switches
	// (bounded by hysteresis); AdaptiveClusteredCalls counts decided calls
	// that selected the clustered support model; FinalChoice is the
	// algorithm (and depth, when hierarchical) the controller ended on.
	AdaptiveSwitches       int    `json:"adaptive_switches"`
	AdaptiveClusteredCalls int    `json:"adaptive_clustered_calls"`
	FinalChoice            string `json:"final_choice"`
}

// RunAdaptCell measures one scenario cell: the schedule generated under
// key, run under the three arms on identical fresh worlds. Simulated
// times are deterministic, so one run per arm suffices.
func RunAdaptCell(rpn, nic int, sc scenario.Scenario, key scenario.SimulationKey) AdaptRow {
	row, _ := runAdaptSchedule(rpn, nic, sc.Name, sc.N, sc.P, sc.Generator(key).All(), false)
	return row
}

// RunAdaptCellObs is RunAdaptCell with observability attached to the
// adaptive arm's world: the returned hub carries per-rank send and
// collective-phase spans plus the adapt decision instants, ready for
// WriteChrome/WriteMetrics. The static arms stay uninstrumented, so the
// row itself is byte-identical to RunAdaptCell's.
func RunAdaptCellObs(rpn, nic int, sc scenario.Scenario, key scenario.SimulationKey) (AdaptRow, *obs.Obs) {
	return runAdaptSchedule(rpn, nic, sc.Name, sc.N, sc.P, sc.Generator(key).All(), true)
}

// ReplayAdaptCell re-runs a cell from a recorded trace. Because the trace
// codec reconstructs every input vector field-exact and the arms are
// deterministic given their inputs, the returned row is byte-identical to
// the live run that recorded the trace.
func ReplayAdaptCell(rpn, nic int, tr *scenario.Trace) AdaptRow {
	row, _ := runAdaptSchedule(rpn, nic, tr.Name, tr.N, tr.P, tr.Steps, false)
	return row
}

// ReplayAdaptCellObs is ReplayAdaptCell with observability attached, the
// replay-side twin of RunAdaptCellObs: replaying a recorded trace yields
// a hub whose exported timeline is byte-identical to the live run's,
// because the simulator's virtual clocks are deterministic given the
// reconstructed inputs.
func ReplayAdaptCellObs(rpn, nic int, tr *scenario.Trace) (AdaptRow, *obs.Obs) {
	return runAdaptSchedule(rpn, nic, tr.Name, tr.N, tr.P, tr.Steps, true)
}

// runAdaptSchedule is the shared measurement core of the live and replay
// paths: both reduce to "run this exact schedule under the three arms".
// When observe is set, the adaptive arm's world gets an obs hub (returned
// to the caller); the hooks only read the virtual clocks, so the row is
// identical either way.
func runAdaptSchedule(rpn, nic int, name string, n, P int, sched [][]*stream.Vector, observe bool) (AdaptRow, *obs.Obs) {
	topo := simnet.Topology{RanksPerNode: rpn, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: nic}
	row := AdaptRow{
		Workload: name, N: n, P: P, RanksPerNode: rpn, NICSerial: nic,
		Calls: len(sched), KStart: sched[0][0].NNZ(), KEnd: sched[len(sched)-1][0].NNZ(),
	}

	static := func(opts core.Options) float64 {
		w := comm.NewWorldTopo(P, topo)
		comm.Run(w, func(p *comm.Proc) any {
			for _, inputs := range sched {
				core.Allreduce(p, inputs[p.Rank()], opts)
			}
			return nil
		})
		return w.MaxTime()
	}
	row.StaticUniformSim = static(core.Options{})
	row.StaticClusteredSim = static(core.Options{Support: core.SupportClustered})

	w := comm.NewWorldTopo(P, topo)
	var hub *obs.Obs
	if observe {
		hub = w.EnableObservability()
	}
	tr := w.EnableTrace()
	tr.LimitPerRank(4096)
	ctrls := make([]*adapt.Controller, P)
	for r := range ctrls {
		ctrls[r] = adapt.NewController(adapt.Config{})
		ctrls[r].AttachTracer(tr, r)
	}
	comm.Run(w, func(p *comm.Proc) any {
		for _, inputs := range sched {
			ctrls[p.Rank()].Allreduce(p, inputs[p.Rank()], core.Options{})
		}
		return nil
	})
	row.AdaptiveSim = w.MaxTime()
	row.AdaptiveSwitches = ctrls[0].Switches()
	row.AdaptiveClusteredCalls = ctrls[0].ClusteredCalls()
	alg, levels := ctrls[0].Choice()
	row.FinalChoice = alg.String()
	if levels > 0 {
		row.FinalChoice = fmt.Sprintf("%s@%d", alg, levels)
	}

	if row.AdaptiveSim > 0 {
		row.AdaptiveVsUniform = row.StaticUniformSim / row.AdaptiveSim
		row.AdaptiveVsBestStatic = math.Min(row.StaticUniformSim, row.StaticClusteredSim) / row.AdaptiveSim
	}
	return row, hub
}

// AdaptSeed seeds the BENCH_5 sweep; cmd/sparreplay records its traces
// under the same key so a recorded cell replays the committed document
// rows exactly.
const AdaptSeed = 701

// AdaptSweep runs the BENCH_5 scenario cells (scenario.Bench5Names) on a
// 32-rank, 4-ranks-per-node contended topology at N = 2^18. Densities sit
// around the δ regime gate, where the support model actually flips
// decisions: at P = 32 the uniform worst case routes to the dense-result
// family from d ≈ 3.4%, while a 5%-wide hot block holding ~90% of the
// mass keeps the true union around a fifth of the space — where the
// sparse-result family simulates ~20% faster than the dense one the
// uniform model picks.
func AdaptSweep() []AdaptRow {
	const (
		rpn = 4
		nic = 1
	)
	key := scenario.NewKey(AdaptSeed)
	names := scenario.Bench5Names()
	rows := make([]AdaptRow, 0, len(names))
	for _, name := range names {
		sc, err := scenario.ByName(name)
		if err != nil {
			panic(err) // the library always carries its own cells
		}
		rows = append(rows, RunAdaptCell(rpn, nic, sc, key))
	}
	return rows
}

// AdaptDiversitySweep runs the adaptation ablation across the *entire*
// scenario library (scenario.Names) rather than the four BENCH_5 cells:
// the same three arms per workload, on the same machine shape. Library
// scenarios vary P, N, and call counts, so this sweep is a
// scenario-diversity check (does the controller ever lose badly to the
// static arms on shapes it was not tuned on?) and is reported
// snapshot-only — it is NOT drift-gated, because adding a library entry
// legitimately adds a row.
func AdaptDiversitySweep() []AdaptRow {
	key := scenario.NewKey(AdaptSeed)
	names := scenario.Names()
	rows := make([]AdaptRow, 0, len(names))
	for _, name := range names {
		sc, err := scenario.ByName(name)
		if err != nil {
			panic(err)
		}
		rows = append(rows, RunAdaptCell(4, 1, sc, key))
	}
	return rows
}
