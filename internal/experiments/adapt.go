package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adapt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the runtime-adaptation ablation recorded as
// BENCH_5.json: the same call sequence run with static-uniform Auto (the
// default), static-clustered Auto (Options.Support pinned), and the
// adaptive controller (internal/adapt), on stationary uniform, stationary
// clustered, and two drifting workloads — one drifting into clustering
// (where the uniform support model flips the δ gate wrongly) and one
// drifting into density under mild clustering (where the clustered model
// with its default shape is the wrong one). Every metric is simulated
// virtual time on seeded inputs, so the document is reproducible
// byte-for-byte and scripts/ci.sh drift-gates it like BENCH_2–4.

// AdaptRow is one workload cell of the adaptation ablation.
type AdaptRow struct {
	Workload     string `json:"workload"`
	N            int    `json:"n"`
	P            int    `json:"p"`
	RanksPerNode int    `json:"ranks_per_node"`
	NICSerial    int    `json:"nic_serial"`
	Calls        int    `json:"calls"`
	// KStart and KEnd are the per-rank non-zero counts of the first and
	// last call (equal on stationary workloads).
	KStart int `json:"k_start"`
	KEnd   int `json:"k_end"`
	// Simulated total time of the whole call sequence per arm.
	StaticUniformSim   float64 `json:"static_uniform_sim_seconds"`
	StaticClusteredSim float64 `json:"static_clustered_sim_seconds"`
	AdaptiveSim        float64 `json:"adaptive_sim_seconds"`
	// AdaptiveVsUniform is StaticUniformSim/AdaptiveSim (the acceptance
	// headline: > 1 means adaptive beats the default static Auto);
	// AdaptiveVsBestStatic compares against the better static arm.
	AdaptiveVsUniform    float64 `json:"adaptive_vs_uniform"`
	AdaptiveVsBestStatic float64 `json:"adaptive_vs_best_static"`
	// AdaptiveSwitches counts post-adoption algorithm/depth switches
	// (bounded by hysteresis); AdaptiveClusteredCalls counts decided calls
	// that selected the clustered support model; FinalChoice is the
	// algorithm (and depth, when hierarchical) the controller ended on.
	AdaptiveSwitches       int    `json:"adaptive_switches"`
	AdaptiveClusteredCalls int    `json:"adaptive_clustered_calls"`
	FinalChoice            string `json:"final_choice"`
}

// adaptWorkload defines one cell's call schedule.
type adaptWorkload struct {
	name  string
	calls int
	// hotFrac is the width of the hot block as a fraction of the
	// dimension space.
	hotFrac float64
	// kAt and biasAt give call c's per-rank non-zero count and hot-set
	// bias (probability of drawing from the hot block).
	kAt    func(c int) int
	biasAt func(c int) float64
}

// adaptInputs generates the full deterministic schedule: calls × P
// vectors. All arms replay the identical inputs.
func adaptInputs(seed int64, n, P int, wl adaptWorkload) [][]*stream.Vector {
	rng := rand.New(rand.NewSource(seed))
	sched := make([][]*stream.Vector, wl.calls)
	hot := int(wl.hotFrac * float64(n))
	if hot < 1 {
		hot = 1
	}
	for c := range sched {
		k, bias := wl.kAt(c), wl.biasAt(c)
		sched[c] = make([]*stream.Vector, P)
		for r := 0; r < P; r++ {
			sched[c][r] = biasedSparse(rng, n, k, hot, bias)
		}
	}
	return sched
}

// RunAdaptCell measures one workload cell: the same schedule under the
// three arms on identical fresh worlds. Simulated times are
// deterministic, so one run per arm suffices.
func RunAdaptCell(n, P, rpn, nic int, wl adaptWorkload, seed int64) AdaptRow {
	topo := simnet.Topology{RanksPerNode: rpn, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: nic}
	sched := adaptInputs(seed, n, P, wl)
	row := AdaptRow{
		Workload: wl.name, N: n, P: P, RanksPerNode: rpn, NICSerial: nic,
		Calls: wl.calls, KStart: wl.kAt(0), KEnd: wl.kAt(wl.calls - 1),
	}

	static := func(opts core.Options) float64 {
		w := comm.NewWorldTopo(P, topo)
		comm.Run(w, func(p *comm.Proc) any {
			for _, inputs := range sched {
				core.Allreduce(p, inputs[p.Rank()], opts)
			}
			return nil
		})
		return w.MaxTime()
	}
	row.StaticUniformSim = static(core.Options{})
	row.StaticClusteredSim = static(core.Options{Support: core.SupportClustered})

	w := comm.NewWorldTopo(P, topo)
	tr := w.EnableTrace()
	tr.LimitPerRank(4096)
	ctrls := make([]*adapt.Controller, P)
	for r := range ctrls {
		ctrls[r] = adapt.NewController(adapt.Config{})
		ctrls[r].AttachTracer(tr, r)
	}
	comm.Run(w, func(p *comm.Proc) any {
		for _, inputs := range sched {
			ctrls[p.Rank()].Allreduce(p, inputs[p.Rank()], core.Options{})
		}
		return nil
	})
	row.AdaptiveSim = w.MaxTime()
	row.AdaptiveSwitches = ctrls[0].Switches()
	row.AdaptiveClusteredCalls = ctrls[0].ClusteredCalls()
	alg, levels := ctrls[0].Choice()
	row.FinalChoice = alg.String()
	if levels > 0 {
		row.FinalChoice = fmt.Sprintf("%s@%d", alg, levels)
	}

	if row.AdaptiveSim > 0 {
		row.AdaptiveVsUniform = row.StaticUniformSim / row.AdaptiveSim
		row.AdaptiveVsBestStatic = math.Min(row.StaticUniformSim, row.StaticClusteredSim) / row.AdaptiveSim
	}
	return row
}

// AdaptSweep runs the default BENCH_5 cells on a 32-rank, 4-ranks-per-
// node contended topology at N = 2^18. Densities sit around the δ regime
// gate, where the support model actually flips decisions: at P = 32 the
// uniform worst case routes to the dense-result family from d ≈ 3.4%,
// while a 5%-wide hot block holding ~90% of the mass keeps the true
// union around a fifth of the space — where the sparse-result family
// simulates ~20% faster than the dense one the uniform model picks.
func AdaptSweep() []AdaptRow {
	const (
		n     = 1 << 18
		P     = 32
		rpn   = 4
		nic   = 1
		calls = 24
	)
	const driftCalls = 36
	ramp := func(from, to float64) func(c int) int {
		return func(c int) int {
			t := float64(c) / float64(driftCalls-1)
			return int(float64(n) * from * math.Pow(to/from, t))
		}
	}
	flat := func(d float64) func(c int) int { return func(int) int { return int(float64(n) * d) } }
	bias := func(b float64) func(c int) float64 { return func(int) float64 { return b } }
	workloads := []adaptWorkload{
		// Stationary uniform, just under the gate: every arm should behave
		// alike; adaptive must stay within noise (its two tiny agreement
		// allreduces per call) of static Auto.
		{name: "uniform", calls: calls, hotFrac: 0.05, kAt: flat(0.03), biasAt: bias(0)},
		// Stationary clustered past the uniform gate (d = 4%, 90% of the
		// mass in a 5% hot block): the uniform model routes to the
		// dense-result family although the actual union stays around a
		// fifth of the space — squarely sparse, and measurably cheaper.
		{name: "clustered", calls: calls, hotFrac: 0.05, kAt: flat(0.04), biasAt: bias(0.9)},
		// Drifting into clustering: density ramps 2.5% → 5% while the hot
		// bias ramps to 0.9 over the first twelve calls (the canonical
		// training trajectory — gradients concentrate as the model
		// converges). Once density crosses the uniform gate (d ≈ 3.4%,
		// around mid-run) static-uniform is wrong for every remaining call.
		{name: "drift-cluster", calls: driftCalls, hotFrac: 0.05, kAt: ramp(0.025, 0.05),
			biasAt: func(c int) float64 { return 0.9 * math.Min(1, float64(c)/12) }},
		// A regime shift: 24 calls of clustered-sparse gradients, a short
		// drift, then de-clustered dense ones (d = 8%, bias ≈ 0). In phase
		// one the uniform model routes to the dense family too early; in
		// phase two the *clustered* static arm — its default 10%/70% shape
		// now wrong — underestimates fill-in and keeps a densifying result
		// on the sparse path. Adaptive is the only arm right in both.
		{name: "drift-shift", calls: 34, hotFrac: 0.05,
			kAt: func(c int) int {
				return int(float64(n) * (0.04 + 0.04*shiftPhase(c)))
			},
			biasAt: func(c int) float64 { return 0.9 - 0.85*shiftPhase(c) }},
	}
	rows := make([]AdaptRow, 0, len(workloads))
	for i, wl := range workloads {
		rows = append(rows, RunAdaptCell(n, P, rpn, nic, wl, 701+int64(i)))
	}
	return rows
}

// shiftPhase is the drift-shift schedule's phase indicator: 0 through
// call 23, a linear transition over calls 24–27, 1 from call 28 on.
func shiftPhase(c int) float64 {
	return math.Min(1, math.Max(0, float64(c-23)/4))
}
