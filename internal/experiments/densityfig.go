package experiments

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/density"
	"repro/internal/nn"
	"repro/internal/topk"
)

// Fig1Row is one cell of the Figure 1 grid: the density of the reduced
// gradient versus node count and per-node density.
type Fig1Row struct {
	P int
	// PerNodeDensity is the TopK selection fraction at each node.
	PerNodeDensity float64
	// Analytic is the closed-form expected reduced density under uniform
	// index placement.
	Analytic float64
	// Empirical is the measured reduced density of real per-bucket TopK
	// gradient selections from a model under training (0 when skipped).
	Empirical float64
}

// Fig1Grid computes the analytic reduced-density grid of Figure 1 for a
// model of dimension n (the paper snapshots ResNet20 on CIFAR-10, ~270k
// parameters).
func Fig1Grid(n int, nodeCounts []int, densities []float64) []Fig1Row {
	var rows []Fig1Row
	for _, d := range densities {
		for _, P := range nodeCounts {
			rows = append(rows, Fig1Row{
				P:              P,
				PerNodeDensity: d,
				Analytic:       density.ReducedDensity(n, d, P),
			})
		}
	}
	return rows
}

// Fig1Empirical measures reduced density from *real* gradients: a small
// residual MLP is trained on CIFAR-shaped synthetic data; at the snapshot
// epoch each of P simulated nodes computes a minibatch gradient, selects
// per-bucket TopK at the given density, and the union of supports is
// measured — exactly the Figure 1 procedure. Real gradients cluster (hot
// layers), so the measured fill-in is lower than the uniform worst case.
func Fig1Empirical(nodeCounts []int, densities []float64, seed int64) []Fig1Row {
	// A deliberately hard task (low separation) so the mid-training
	// snapshot has live gradients everywhere — a converged model's softmax
	// saturates and its gradients underflow to exact zeros, which would
	// make TopK selections degenerate.
	ds := data.SyntheticDense(data.DenseConfig{Rows: 2048, Dim: 64, Classes: 10, Sep: 1.2, Seed: seed})
	net := nn.ResidualMLP(seed, 64, 64, 2, 10, 1)
	n := net.NumParams()
	rng := rand.New(rand.NewSource(seed))

	// Brief warm-up so gradients reflect mid-training structure (the
	// paper snapshots epoch 5 of 160).
	opt := &nn.SGDMomentum{LR: 0.02, Momentum: 0.9}
	for step := 0; step < 30; step++ {
		x, y := sampleDenseBatch(rng, ds, 32)
		net.ZeroGrads()
		_, dl, _ := nn.SoftmaxCE(net.Forward(x), y)
		net.Backward(dl)
		opt.Step(net.Params(), net.Grads())
	}

	gradAt := func() []float64 {
		x, y := sampleDenseBatch(rng, ds, 32)
		net.ZeroGrads()
		_, dl, _ := nn.SoftmaxCE(net.Forward(x), y)
		net.Backward(dl)
		return append([]float64(nil), net.Grads()...)
	}

	var rows []Fig1Row
	maxP := 0
	for _, P := range nodeCounts {
		if P > maxP {
			maxP = P
		}
	}
	// Per-node gradients (one per simulated node).
	grads := make([][]float64, maxP)
	for i := range grads {
		grads[i] = gradAt()
	}

	for _, d := range densities {
		k := int(d * 512)
		if k < 1 {
			k = 1
		}
		sets := make([][]int32, maxP)
		for i, g := range grads {
			sel := topk.SparsifyBuckets(g, 512, k)
			idx, _ := sel.Pairs()
			sets[i] = idx
		}
		for _, P := range nodeCounts {
			union := density.MeasureK(sets[:P])
			rows = append(rows, Fig1Row{
				P:              P,
				PerNodeDensity: d,
				Analytic:       density.ReducedDensity(n, d, P),
				Empirical:      float64(union) / float64(n),
			})
		}
	}
	return rows
}

func sampleDenseBatch(rng *rand.Rand, ds *data.DenseDataset, batch int) ([][]float64, []int) {
	x := make([][]float64, batch)
	y := make([]int, batch)
	for i := range x {
		s := rng.Intn(ds.Rows())
		x[i] = ds.X[s]
		y[i] = ds.Y[s]
	}
	return x, y
}

// Fig7Row is one cell of Figure 7: the expected multiplicative growth of
// the reduced result under uniform sparsity at N=512.
type Fig7Row struct {
	K, P     int
	Growth   float64
	Expected float64
}

// Fig7Table computes the Figure 7 surface for N=512.
func Fig7Table(ks, ps []int) []Fig7Row {
	const n = 512
	var rows []Fig7Row
	for _, k := range ks {
		for _, p := range ps {
			rows = append(rows, Fig7Row{
				K: k, P: p,
				Growth:   density.Growth(n, k, p),
				Expected: density.ExpectedKUniform(n, k, p),
			})
		}
	}
	return rows
}
