package experiments

import (
	"math"
	"runtime/debug"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the k-way merge / scratch-buffer ablation recorded as
// BENCH_3.json: for each world-size shape it counts the allocations of the
// three ways to reduce P partition streams — chained two-way Add, the
// one-pass k-way MergeK, and MergeK drawing from a warm Scratch pool —
// verifies they are bit-identical, and records the (deterministic)
// simulated time of the full split-allgather allreduce whose hot path the
// k-way merge now is. Allocation counts come from testing.AllocsPerRun on
// single-goroutine deterministic code, so the document is reproducible
// byte-for-byte on a fixed Go toolchain and CI can hard-fail on drift.
// (A toolchain upgrade may legitimately shift allocation counts — e.g.
// slice growth policy changes; scripts/ci.sh regenerates the file on
// drift, so such an upgrade costs one committed regeneration, exactly
// like a code change that moves the numbers.)

// MergeCell is one k-way merge ablation cell.
type MergeCell struct {
	P       int    `json:"p"`
	N       int    `json:"n"`
	K       int    `json:"k_per_stream"`
	Pattern string `json:"pattern"`
	// Allocations per reduction of P streams (rounded to whole objects).
	ChainedAllocs     float64 `json:"chained_allocs_per_op"`
	KWayAllocs        float64 `json:"kway_allocs_per_op"`
	KWayScratchAllocs float64 `json:"kway_scratch_allocs_per_op"`
	// AllocReduction is 1 − kway_scratch/chained.
	AllocReduction float64 `json:"alloc_reduction"`
	// BitIdentical reports whether all three reductions agreed
	// bit-for-bit on every coordinate.
	BitIdentical bool `json:"bit_identical"`
	// SplitSimSeconds is the simulated completion time of one full
	// SSAR_Split_allgather allreduce at this shape (deterministic).
	SplitSimSeconds float64 `json:"split_allgather_sim_seconds"`
}

// mergeInputs builds P deterministic sparse streams for a cell: one
// scenario call at density k/n, uniform or with the leading tenth of the
// space holding 70% of the mass.
func mergeInputs(seed int64, n, k, P int, pattern string) []*stream.Vector {
	sc := scenario.Scenario{
		Name: "merge-" + pattern, N: n, P: P, Calls: 1,
		Density: scenario.Const(float64(k) / float64(n)),
	}
	if pattern == "clustered" {
		sc.Blocks = []scenario.Block{{Start: 0, Frac: 0.1, Weight: 1}}
		sc.HotMass = scenario.Const(0.7)
	}
	return sc.Generator(scenario.NewKey(seed)).Next()
}

// RunMergeCell measures one ablation cell. All metrics are deterministic:
// allocation counts of single-goroutine reductions and simulated seconds.
func RunMergeCell(n, k, P int, pattern string, seed int64) MergeCell {
	vs := mergeInputs(seed, n, k, P, pattern)
	cell := MergeCell{P: P, N: n, K: k, Pattern: pattern}

	chained := func() *stream.Vector {
		acc := vs[0].Clone()
		for _, o := range vs[1:] {
			acc.Add(o)
		}
		return acc
	}
	// Disable GC while counting: a collection landing mid-measurement adds
	// runtime allocations to the Mallocs delta AllocsPerRun reads, and
	// whether one lands depends on the heap state the process happened to
	// reach — the one nondeterminism a byte-exact drift gate cannot carry.
	// With GC off the counts are purely code-driven.
	gcPct := debug.SetGCPercent(-1)
	cell.ChainedAllocs = math.Round(testing.AllocsPerRun(10, func() { chained() }))
	cell.KWayAllocs = math.Round(testing.AllocsPerRun(10, func() { stream.MergeK(vs, nil) }))

	sc := stream.NewScratch()
	for i := 0; i < 4; i++ { // warm the pool to steady state
		sc.Release(stream.MergeK(vs, sc))
	}
	cell.KWayScratchAllocs = math.Round(testing.AllocsPerRun(10, func() {
		sc.Release(stream.MergeK(vs, sc))
	}))
	debug.SetGCPercent(gcPct)
	if cell.ChainedAllocs > 0 {
		cell.AllocReduction = 1 - cell.KWayScratchAllocs/cell.ChainedAllocs
	}

	ref := chained()
	kway := stream.MergeK(vs, nil)
	pooled := stream.MergeK(vs, stream.NewScratch())
	cell.BitIdentical = bitIdentical(ref, kway) && bitIdentical(ref, pooled)

	// Deterministic simulated time of the collective the merge serves.
	w := comm.NewWorld(P, simnet.Aries)
	comm.Run(w, func(p *comm.Proc) any {
		return core.Allreduce(p, vs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
	})
	cell.SplitSimSeconds = w.MaxTime()
	return cell
}

func bitIdentical(a, b *stream.Vector) bool {
	da, db := a.ToDense(), b.ToDense()
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
			return false
		}
	}
	return true
}

// MergeSweep runs the default BENCH_3 cells: the merge-fan-in shapes the
// split phase produces at P ∈ {4, 16, 64} on uniform supports, plus a
// clustered-support cell at P = 16.
func MergeSweep() []MergeCell {
	var cells []MergeCell
	for _, P := range []int{4, 16, 64} {
		cells = append(cells, RunMergeCell(1<<18, 2000, P, "uniform", 211+int64(P)))
	}
	cells = append(cells, RunMergeCell(1<<18, 2000, 16, "clustered", 401))
	return cells
}
