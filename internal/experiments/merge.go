package experiments

import (
	"math"
	"math/rand"
	"runtime/debug"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the k-way merge / scratch-buffer ablation recorded as
// BENCH_3.json: for each world-size shape it counts the allocations of the
// three ways to reduce P partition streams — chained two-way Add, the
// one-pass k-way MergeK, and MergeK drawing from a warm Scratch pool —
// verifies they are bit-identical, and records the (deterministic)
// simulated time of the full split-allgather allreduce whose hot path the
// k-way merge now is. Allocation counts come from testing.AllocsPerRun on
// single-goroutine deterministic code, so the document is reproducible
// byte-for-byte on a fixed Go toolchain and CI can hard-fail on drift.
// (A toolchain upgrade may legitimately shift allocation counts — e.g.
// slice growth policy changes; scripts/ci.sh regenerates the file on
// drift, so such an upgrade costs one committed regeneration, exactly
// like a code change that moves the numbers.)

// MergeCell is one k-way merge ablation cell.
type MergeCell struct {
	P       int    `json:"p"`
	N       int    `json:"n"`
	K       int    `json:"k_per_stream"`
	Pattern string `json:"pattern"`
	// Allocations per reduction of P streams (rounded to whole objects).
	ChainedAllocs     float64 `json:"chained_allocs_per_op"`
	KWayAllocs        float64 `json:"kway_allocs_per_op"`
	KWayScratchAllocs float64 `json:"kway_scratch_allocs_per_op"`
	// AllocReduction is 1 − kway_scratch/chained.
	AllocReduction float64 `json:"alloc_reduction"`
	// BitIdentical reports whether all three reductions agreed
	// bit-for-bit on every coordinate.
	BitIdentical bool `json:"bit_identical"`
	// SplitSimSeconds is the simulated completion time of one full
	// SSAR_Split_allgather allreduce at this shape (deterministic).
	SplitSimSeconds float64 `json:"split_allgather_sim_seconds"`
}

// biasedSparse draws one sparse stream of k distinct indices: each draw
// lands in the leading `hot` coordinates with probability `bias`,
// uniformly in [0, n) otherwise. Shared by the merge (BENCH_3) and
// adaptation (BENCH_5) cells; bias 0 consumes no bias draws, keeping the
// uniform cells' rng streams stable.
func biasedSparse(rng *rand.Rand, n, k, hot int, bias float64) *stream.Vector {
	seen := map[int32]bool{}
	idx := make([]int32, 0, k)
	val := make([]float64, 0, k)
	for len(idx) < k {
		var ix int32
		if bias > 0 && rng.Float64() < bias {
			ix = int32(rng.Intn(hot))
		} else {
			ix = int32(rng.Intn(n))
		}
		if seen[ix] {
			continue
		}
		seen[ix] = true
		idx = append(idx, ix)
		val = append(val, float64(rng.Intn(64)-32)/8+0.125)
	}
	return stream.NewSparse(n, idx, val, stream.OpSum)
}

// mergeInputs builds P deterministic sparse streams for a cell.
func mergeInputs(seed int64, n, k, P int, pattern string) []*stream.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*stream.Vector, P)
	for r := range out {
		bias := 0.0
		if pattern == "clustered" {
			bias = 0.7
		}
		out[r] = biasedSparse(rng, n, k, n/10, bias)
	}
	return out
}

// RunMergeCell measures one ablation cell. All metrics are deterministic:
// allocation counts of single-goroutine reductions and simulated seconds.
func RunMergeCell(n, k, P int, pattern string, seed int64) MergeCell {
	vs := mergeInputs(seed, n, k, P, pattern)
	cell := MergeCell{P: P, N: n, K: k, Pattern: pattern}

	chained := func() *stream.Vector {
		acc := vs[0].Clone()
		for _, o := range vs[1:] {
			acc.Add(o)
		}
		return acc
	}
	// Disable GC while counting: a collection landing mid-measurement adds
	// runtime allocations to the Mallocs delta AllocsPerRun reads, and
	// whether one lands depends on the heap state the process happened to
	// reach — the one nondeterminism a byte-exact drift gate cannot carry.
	// With GC off the counts are purely code-driven.
	gcPct := debug.SetGCPercent(-1)
	cell.ChainedAllocs = math.Round(testing.AllocsPerRun(10, func() { chained() }))
	cell.KWayAllocs = math.Round(testing.AllocsPerRun(10, func() { stream.MergeK(vs, nil) }))

	sc := stream.NewScratch()
	for i := 0; i < 4; i++ { // warm the pool to steady state
		sc.Release(stream.MergeK(vs, sc))
	}
	cell.KWayScratchAllocs = math.Round(testing.AllocsPerRun(10, func() {
		sc.Release(stream.MergeK(vs, sc))
	}))
	debug.SetGCPercent(gcPct)
	if cell.ChainedAllocs > 0 {
		cell.AllocReduction = 1 - cell.KWayScratchAllocs/cell.ChainedAllocs
	}

	ref := chained()
	kway := stream.MergeK(vs, nil)
	pooled := stream.MergeK(vs, stream.NewScratch())
	cell.BitIdentical = bitIdentical(ref, kway) && bitIdentical(ref, pooled)

	// Deterministic simulated time of the collective the merge serves.
	w := comm.NewWorld(P, simnet.Aries)
	comm.Run(w, func(p *comm.Proc) any {
		return core.Allreduce(p, vs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
	})
	cell.SplitSimSeconds = w.MaxTime()
	return cell
}

func bitIdentical(a, b *stream.Vector) bool {
	da, db := a.ToDense(), b.ToDense()
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
			return false
		}
	}
	return true
}

// MergeSweep runs the default BENCH_3 cells: the merge-fan-in shapes the
// split phase produces at P ∈ {4, 16, 64} on uniform supports, plus a
// clustered-support cell at P = 16.
func MergeSweep() []MergeCell {
	var cells []MergeCell
	for _, P := range []int{4, 16, 64} {
		cells = append(cells, RunMergeCell(1<<18, 2000, P, "uniform", 211+int64(P)))
	}
	cells = append(cells, RunMergeCell(1<<18, 2000, 16, "clustered", 401))
	return cells
}
