package experiments

import (
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simnet"
)

// The hierarchical micro-benchmark measures the flat-vs-hierarchical
// crossover the paper's flat α–β analysis cannot see: the same sparse
// allreduce instance run once with flat SSAR_Split_allgather on a world
// priced entirely by the inter-node profile, and once with HierSSAR on a
// two-level topology (cheap intra-node links, same inter-node network).
// The flat latency term (P−1)·α shrinks to (P/r−1)·α, so the hierarchical
// scheme wins in the latency-bound regime and converges to flat as the
// data grows bandwidth-bound.

// HierRow is one flat-vs-hierarchical measurement cell.
type HierRow struct {
	N, P, RanksPerNode int
	Density            float64
	// FlatMedian and HierMedian are simulated allreduce times in seconds.
	FlatMedian, HierMedian float64
	// Speedup is FlatMedian / HierMedian.
	Speedup float64
	// FlatMsgs and HierMsgs are total message counts for one allreduce.
	FlatMsgs, HierMsgs int64
}

// RunHierCell measures one configuration: flat SSAR_Split_allgather on the
// inter profile versus HierSSAR on Topology{rpn, intra, inter}.
func RunHierCell(n int, density float64, P, rpn int, intra, inter simnet.Profile, gens, runs int, seed int64) HierRow {
	if gens <= 0 {
		gens = 2
	}
	if runs <= 0 {
		runs = 3
	}
	row := HierRow{N: n, P: P, RanksPerNode: rpn, Density: density}
	topo := simnet.Topology{RanksPerNode: rpn, Intra: intra, Inter: inter}
	var flat, hier report.Sample
	for g := 0; g < gens; g++ {
		rng := rand.New(rand.NewSource(seed + int64(g)*6151))
		inputs := uniformInputs(rng, n, density, P)
		for r := 0; r < runs; r++ {
			fw := comm.NewWorld(P, inter)
			comm.Run(fw, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
			})
			flat.Add(fw.MaxTime())
			row.FlatMsgs = fw.TotalMessages()

			hw := comm.NewWorldTopo(P, topo)
			comm.Run(hw, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.HierSSAR})
			})
			hier.Add(hw.MaxTime())
			row.HierMsgs = hw.TotalMessages()
		}
	}
	row.FlatMedian = flat.Median()
	row.HierMedian = hier.Median()
	if row.HierMedian > 0 {
		row.Speedup = row.FlatMedian / row.HierMedian
	}
	return row
}

// HierNodeSweep measures the flat-vs-hierarchical comparison across total
// rank counts at fixed ranks-per-node and density (the issue's acceptance
// scenario P=32, 4 ranks/node, NVLink-like intra + Aries inter is one
// cell of the default sweep). Single-node shapes (P ≤ rpn) are skipped:
// there the "hierarchical" run degrades to flat SSAR with every link
// intra-priced, so its speedup would measure the profile price ratio, not
// the algorithm.
func HierNodeSweep(n int, density float64, ranks []int, rpn int, intra, inter simnet.Profile, gens, runs int) []HierRow {
	var rows []HierRow
	for _, P := range ranks {
		if P <= rpn {
			continue
		}
		rows = append(rows, RunHierCell(n, density, P, rpn, intra, inter, gens, runs, int64(P)*7529))
	}
	return rows
}

// HierDensitySweep measures the comparison across per-rank densities at a
// fixed world shape, locating the latency→bandwidth crossover.
func HierDensitySweep(n int, densities []float64, P, rpn int, intra, inter simnet.Profile, gens, runs int) []HierRow {
	var rows []HierRow
	for _, d := range densities {
		rows = append(rows, RunHierCell(n, d, P, rpn, intra, inter, gens, runs, int64(d*1e7)+29))
	}
	return rows
}
