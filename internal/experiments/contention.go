package experiments

import (
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the contention-model experiments introduced with the
// per-node NIC serialization cap (simnet.Topology.NICSerial): a
// flat-vs-hierarchical DSAR sweep on capped topologies, and the
// cost-model validation sweep recorded as BENCH_2.json — for each cell it
// measures every Auto candidate, prices it with the analytic model, and
// compares the cost-model choice against both the empirically cheapest
// algorithm and the PR-1 topology-presence heuristic it replaced.

// AlgCost is one algorithm's modeled and measured cost in a contention
// sweep cell (both in simulated seconds).
type AlgCost struct {
	Algorithm    string  `json:"algorithm"`
	ModelSeconds float64 `json:"model_seconds"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// ContentionRow is one contention-sweep cell: a fixed allreduce instance
// on a two-level topology, measured and modeled for every Auto candidate.
type ContentionRow struct {
	N            int       `json:"n"`
	P            int       `json:"p"`
	RanksPerNode int       `json:"ranks_per_node"`
	NICSerial    int       `json:"nic_serial"`
	Density      float64   `json:"density"`
	K            int       `json:"k_per_rank"`
	Costs        []AlgCost `json:"costs"`
	// AutoChoice is what the cost-model Auto resolves to; OldChoice is
	// what the replaced topology-presence heuristic would have picked;
	// CheapestSim is the empirically cheapest algorithm in simulation.
	AutoChoice  string `json:"auto_choice"`
	OldChoice   string `json:"old_heuristic_choice"`
	CheapestSim string `json:"cheapest_sim"`
	// AutoMatchesCheapest and OldMatchesCheapest summarize the comparison;
	// a cell with the first true and the second false demonstrates a
	// scenario the old heuristic got wrong and the cost model gets right.
	AutoMatchesCheapest bool `json:"auto_matches_cheapest"`
	OldMatchesCheapest  bool `json:"old_matches_cheapest"`
}

// contentionCandidates are the algorithms Auto chooses between.
var contentionCandidates = []core.Algorithm{
	core.SSARRecDouble, core.SSARSplitAllgather, core.DSARSplitAllgather,
	core.HierSSAR, core.HierDSAR,
}

// oldHeuristicChoice reproduces the PR-1 Auto rule this PR replaced: δ
// gate to DSAR, otherwise HierSSAR whenever a multi-node topology exists,
// otherwise the SmallDataBytes wire-size threshold.
func oldHeuristicChoice(n, k, P, rpn int) core.Algorithm {
	delta := stream.Delta(n, stream.DefaultValueBytes)
	if density.ExpectedKUniform(n, k, P) >= float64(delta) {
		return core.DSARSplitAllgather
	}
	if rpn > 1 && rpn < P {
		return core.HierSSAR
	}
	wire := stream.HeaderBytes + k*(stream.IndexBytes+stream.DefaultValueBytes)
	if wire <= core.DefaultSmallDataBytes {
		return core.SSARRecDouble
	}
	return core.SSARSplitAllgather
}

// RunContentionCell measures one contention cell: every Auto candidate on
// the same inputs over Topology{rpn, intra, inter, nic}, plus the modeled
// cost of each. Simulated times are deterministic, so one run per
// algorithm suffices.
func RunContentionCell(n int, d float64, P, rpn, nic int, intra, inter simnet.Profile, seed int64) ContentionRow {
	topo := simnet.Topology{RanksPerNode: rpn, Intra: intra, Inter: inter, NICSerial: nic}
	rng := rand.New(rand.NewSource(seed))
	inputs := uniformInputs(rng, n, d, P)
	k := inputs[0].NNZ()
	row := ContentionRow{N: n, P: P, RanksPerNode: rpn, NICSerial: nic, Density: d, K: k}

	scenario := core.CostScenario{N: n, P: P, K: k, Profile: inter, Topo: &topo}
	cheapest, cheapestT := "", 0.0
	for _, alg := range contentionCandidates {
		w := comm.NewWorldTopo(P, topo)
		comm.Run(w, func(p *comm.Proc) any {
			return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: alg})
		})
		sim := w.MaxTime()
		row.Costs = append(row.Costs, AlgCost{
			Algorithm:    alg.String(),
			ModelSeconds: core.PredictSeconds(alg, scenario),
			SimSeconds:   sim,
		})
		if cheapest == "" || sim < cheapestT {
			cheapest, cheapestT = alg.String(), sim
		}
	}
	row.AutoChoice = core.ChooseAuto(scenario).String()
	row.OldChoice = oldHeuristicChoice(n, k, P, rpn).String()
	row.CheapestSim = cheapest
	row.AutoMatchesCheapest = row.AutoChoice == cheapest
	row.OldMatchesCheapest = row.OldChoice == cheapest
	return row
}

// ContentionSweep runs the default contention-model validation cells: a
// latency-bound sparse instance and a dense-regime instance, each with the
// NIC cap off and fully serialized. The sparse/uncapped and dense/capped
// cells are the two where the old topology-presence heuristic picks a
// demonstrably non-cheapest algorithm.
func ContentionSweep(intra, inter simnet.Profile) []ContentionRow {
	var rows []ContentionRow
	cells := []struct {
		n    int
		d    float64
		P    int
		rpn  int
		nic  int
		seed int64
	}{
		{1 << 20, 1e-4, 32, 4, 0, 101},
		{1 << 20, 1e-4, 32, 4, 1, 103},
		{1 << 16, 0.6, 16, 4, 0, 107},
		{1 << 16, 0.6, 16, 4, 1, 109},
	}
	for _, c := range cells {
		rows = append(rows, RunContentionCell(c.n, c.d, c.P, c.rpn, c.nic, intra, inter, c.seed))
	}
	return rows
}

// RunHierDSARCell measures flat DSAR_Split_allgather versus
// DSAR_Hierarchical on the *same* NIC-capped two-level world (unlike
// RunHierCell, which contrasts a flat world with a topology world): the
// question is purely algorithmic — does routing the dense allgather
// through one leader flow per node beat P concurrent flows through capped
// NICs.
func RunHierDSARCell(n int, d float64, P, rpn, nic int, intra, inter simnet.Profile, gens, runs int, seed int64) HierRow {
	if gens <= 0 {
		gens = 2
	}
	if runs <= 0 {
		runs = 3
	}
	row := HierRow{N: n, P: P, RanksPerNode: rpn, Density: d}
	topo := simnet.Topology{RanksPerNode: rpn, Intra: intra, Inter: inter, NICSerial: nic}
	var flat, hier report.Sample
	for g := 0; g < gens; g++ {
		rng := rand.New(rand.NewSource(seed + int64(g)*6151))
		inputs := uniformInputs(rng, n, d, P)
		for r := 0; r < runs; r++ {
			fw := comm.NewWorldTopo(P, topo)
			comm.Run(fw, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.DSARSplitAllgather})
			})
			flat.Add(fw.MaxTime())
			row.FlatMsgs = fw.TotalMessages()

			hw := comm.NewWorldTopo(P, topo)
			comm.Run(hw, func(p *comm.Proc) any {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.HierDSAR})
			})
			hier.Add(hw.MaxTime())
			row.HierMsgs = hw.TotalMessages()
		}
	}
	row.FlatMedian = flat.Median()
	row.HierMedian = hier.Median()
	if row.HierMedian > 0 {
		row.Speedup = row.FlatMedian / row.HierMedian
	}
	return row
}

// HierDSARNodeSweep measures the flat-vs-hierarchical DSAR comparison
// across total rank counts at a fixed dense-regime density and NIC cap.
// Single-node shapes (P ≤ rpn) are skipped as in HierNodeSweep.
func HierDSARNodeSweep(n int, d float64, ranks []int, rpn, nic int, intra, inter simnet.Profile, gens, runs int) []HierRow {
	var rows []HierRow
	for _, P := range ranks {
		if P <= rpn {
			continue
		}
		rows = append(rows, RunHierDSARCell(n, d, P, rpn, nic, intra, inter, gens, runs, int64(P)*9433))
	}
	return rows
}
