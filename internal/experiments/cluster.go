package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

// This file holds the multi-tenant cluster sweep recorded as BENCH_8.json:
// the same eight-job mix gang-scheduled onto a shared ingress-capped
// three-level machine under every placement policy (packed, spread,
// random, cost-aware), at two machine scales. Each job's headline is its
// slowdown — simulated collective time under co-tenancy divided by the
// same job's time alone on an idle machine (packed, no jitter) — and each
// policy's is the mean predicted job time its placements commit to, the
// quantity the cost-aware policy optimizes. Everything is simulated
// virtual time on seed-isolated streams, so the document is reproducible
// byte-for-byte and scripts/ci.sh drift-gates it like BENCH_2–5 and 7.
// The document also carries the scenario-diversity adaptation cells
// (Bench8AdaptNames) promoted from the snapshot-only adaptdiv sweep:
// the name list is pinned here, so growing the scenario library never
// drifts the gated file.

// ClusterSeed seeds every BENCH_8 stream: the job workloads, the Random
// policy's placement draws, and nothing else (the sweep runs without
// arrival or straggler jitter so slowdowns attribute purely to placement
// and contention).
const ClusterSeed = 801

// ClusterRow is one (scale, policy, job) cell of the cluster sweep.
type ClusterRow struct {
	Scale  string `json:"scale"`
	Policy string `json:"policy"`
	Job    string `json:"job"`
	P      int    `json:"p"`
	Steps  int    `json:"steps"`
	// SimSeconds is the job's simulated collective time under co-tenancy;
	// IsolatedSim the same job alone on the idle machine (packed, no
	// jitter); Slowdown their ratio — 1.0 means the placement gave the job
	// exclusive capped boundaries.
	SimSeconds  float64 `json:"sim_seconds"`
	IsolatedSim float64 `json:"isolated_sim_seconds"`
	Slowdown    float64 `json:"slowdown"`
	// QueueSeconds is admission minus arrival (zero here: the machine fits
	// the whole mix); PredictedJob the admission-time cost-model estimate
	// for the whole job under the external flows observed then.
	QueueSeconds float64 `json:"queue_seconds"`
	PredictedJob float64 `json:"predicted_job_seconds"`
	// Algorithm is the final pinned collective (with depth when
	// hierarchical) and Switches how often the per-step re-decision under
	// observed contention changed it.
	Algorithm string `json:"algorithm"`
	Switches  int    `json:"switches"`
}

// ClusterPolicySummary aggregates one (scale, policy) run of the sweep.
type ClusterPolicySummary struct {
	Scale  string `json:"scale"`
	Policy string `json:"policy"`
	Jobs   int    `json:"jobs"`
	// ConcurrentPeak is the largest number of jobs holding slots at once —
	// the acceptance floor is the full mix running concurrently.
	ConcurrentPeak int `json:"concurrent_peak"`
	// MeanSlowdown and MaxSlowdown aggregate the per-job slowdowns;
	// MeanPredictedJob is the mean admission-time predicted job time, the
	// metric the cost-aware policy must win on; Makespan is when the last
	// job finished.
	MeanSlowdown     float64 `json:"mean_slowdown"`
	MaxSlowdown      float64 `json:"max_slowdown"`
	MeanPredictedJob float64 `json:"mean_predicted_job_seconds"`
	MakespanSeconds  float64 `json:"makespan_seconds"`
}

// clusterScale is one machine configuration of the sweep with its job mix.
type clusterScale struct {
	name    string
	machine simnet.Hierarchy
	slots   int
	jobs    []cluster.Job
}

// clusterMachine returns a DragonflyLike machine with ingress caps
// mirroring the egress caps on every capped level — the shape on which
// incast costs the same as fan-out, so both sides of the activity
// counters matter.
func clusterMachine(ranksPerNode, nodesPerGroup int) simnet.Hierarchy {
	h := simnet.DragonflyLike(ranksPerNode, nodesPerGroup)
	for i := range h.Levels {
		h.Levels[i].IngressSerial = h.Levels[i].Serial
	}
	return h
}

// clusterJobs builds the eight-job mix at one scale: job sizes equal (so
// every policy faces the same packing problem), densities cycling through
// three regimes around the δ gate, and every odd job clustered (90% of
// the mass in a 5%-wide hot block) so the mix exercises both sides of the
// support-model decision.
func clusterJobs(n, p, calls int) []cluster.Job {
	jobs := make([]cluster.Job, 8)
	for i := range jobs {
		sc := scenario.Scenario{
			Name: "uniform", N: n, P: p, Calls: calls,
			Density: scenario.Const(0.02 + 0.01*float64(i%3)),
		}
		if i%2 == 1 {
			sc.Name = "clustered"
			sc.Blocks = []scenario.Block{{Start: 0, Frac: 0.05, Weight: 1}}
			sc.HotMass = scenario.Const(0.9)
		}
		jobs[i] = cluster.Job{Name: fmt.Sprintf("job%d", i), Scenario: sc}
	}
	return jobs
}

// clusterScales lists the two BENCH_8 machine scales: a 64-slot machine
// the mix fills exactly (every policy must co-locate), and a 128-slot
// machine with headroom (where placement freedom — dodging loaded
// regions, spreading wide — actually differentiates the policies). Both
// keep the packed-isolated baseline meaningful: on machines where nodes
// host many NIC-sharing ranks, or with slots to spare, spreading one
// rank per node can legitimately beat a packed solo run (it dodges every
// capped boundary), which would invert the slowdown invariants this
// document gates — scaling the sweep up further means revisiting the
// baseline definition, not just the slot count.
func clusterScales() []clusterScale {
	return []clusterScale{
		{
			name:    "fly4x2/64",
			machine: clusterMachine(4, 2),
			slots:   64,
			jobs:    clusterJobs(1<<14, 8, 4),
		},
		{
			name:    "fly4x4/128",
			machine: clusterMachine(4, 4),
			slots:   128,
			jobs:    clusterJobs(1<<16, 16, 3),
		},
	}
}

// concurrentPeak returns the largest number of jobs simultaneously
// holding slots: the max overlap of the [Admitted, Finished) intervals.
func concurrentPeak(stats []cluster.JobStats) int {
	type event struct {
		t     float64
		delta int
	}
	events := make([]event, 0, 2*len(stats))
	for _, s := range stats {
		events = append(events, event{s.Admitted, +1}, event{s.Finished, -1})
	}
	// Ends before starts at equal times: back-to-back jobs do not overlap.
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].delta < events[b].delta
	})
	peak, cur := 0, 0
	for _, e := range events {
		if cur += e.delta; cur > peak {
			peak = cur
		}
	}
	return peak
}

// ClusterPolicies lists the placement policies of the BENCH_8 sweep in
// document order.
func ClusterPolicies() []cluster.Placement {
	return []cluster.Placement{cluster.Packed{}, cluster.Spread{}, cluster.Random{}, cluster.CostAware{}}
}

// ClusterSweep runs the BENCH_8 cluster cells: per scale, it first records
// each job's isolated baseline (alone on the idle machine, packed, no
// jitter — one baseline per job shared across policies), then runs the
// whole mix under every policy on a fresh cluster with the same key, so
// slowdowns compare identical workloads.
func ClusterSweep() ([]ClusterRow, []ClusterPolicySummary) {
	var rows []ClusterRow
	var summaries []ClusterPolicySummary
	for _, sc := range clusterScales() {
		iso := make(map[string]float64, len(sc.jobs))
		for _, j := range sc.jobs {
			c := cluster.New(cluster.Config{Machine: sc.machine, Slots: sc.slots, Key: scenario.NewKey(ClusterSeed)}, cluster.Packed{})
			c.Add(j)
			iso[j.Name] = c.Run()[0].SimSeconds
		}
		for _, place := range ClusterPolicies() {
			c := cluster.New(cluster.Config{Machine: sc.machine, Slots: sc.slots, Key: scenario.NewKey(ClusterSeed)}, place)
			for _, j := range sc.jobs {
				c.Add(j)
			}
			stats := c.Run()

			sum := ClusterPolicySummary{
				Scale: sc.name, Policy: place.Name(),
				Jobs: len(stats), ConcurrentPeak: concurrentPeak(stats),
			}
			for _, s := range stats {
				slow := s.SimSeconds / iso[s.Name]
				rows = append(rows, ClusterRow{
					Scale: sc.name, Policy: place.Name(),
					Job: s.Name, P: s.P, Steps: s.Steps,
					SimSeconds: s.SimSeconds, IsolatedSim: iso[s.Name], Slowdown: slow,
					QueueSeconds: s.Admitted - s.Arrived, PredictedJob: s.PredictedJob,
					Algorithm: s.Algorithm, Switches: s.Switches,
				})
				sum.MeanSlowdown += slow
				if slow > sum.MaxSlowdown {
					sum.MaxSlowdown = slow
				}
				sum.MeanPredictedJob += s.PredictedJob
				if s.Finished > sum.MakespanSeconds {
					sum.MakespanSeconds = s.Finished
				}
			}
			sum.MeanSlowdown /= float64(len(stats))
			sum.MeanPredictedJob /= float64(len(stats))
			summaries = append(summaries, sum)
		}
	}
	return rows, summaries
}

// Bench8AdaptNames pins the scenario-diversity cells of BENCH_8's
// adaptation section: the whole scenario library as of this document's
// introduction, in document order. Pinned by name — unlike the
// snapshot-only adaptdiv sweep (which iterates scenario.Names and grows
// with the library), adding a library entry never drifts BENCH_8; extend
// this list deliberately when a new scenario should join the gate.
func Bench8AdaptNames() []string {
	return []string{
		"uniform", "clustered", "drift-cluster", "drift-shift",
		"lstm", "multimodal", "ragged", "transformer", "zipf",
	}
}

// ClusterAdaptCells runs the pinned diversity cells on the BENCH_5
// machine shape (4 ranks per node, NIC serial 1) under the BENCH_5 key,
// so the four shared workloads reproduce the BENCH_5 rows exactly and the
// remaining library shapes join the drift gate with them.
func ClusterAdaptCells() []AdaptRow {
	key := scenario.NewKey(AdaptSeed)
	names := Bench8AdaptNames()
	rows := make([]AdaptRow, 0, len(names))
	for _, name := range names {
		sc, err := scenario.ByName(name)
		if err != nil {
			panic(err) // the pinned list names library entries only
		}
		rows = append(rows, RunAdaptCell(4, 1, sc, key))
	}
	return rows
}
