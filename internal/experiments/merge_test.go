package experiments

import "testing"

// TestRunMergeCellAcceptance checks the PR's ablation acceptance bar on a
// reduced shape: the k-way + scratch reduction must be bit-identical to
// the chained merges and allocate at least 50% less at P = 16.
func TestRunMergeCellAcceptance(t *testing.T) {
	cell := RunMergeCell(1<<16, 800, 16, "uniform", 99)
	if !cell.BitIdentical {
		t.Fatal("k-way merge diverged from chained Add")
	}
	if cell.AllocReduction < 0.5 {
		t.Fatalf("alloc reduction %.0f%% below the 50%% bar (chained %.0f, kway+scratch %.0f)",
			cell.AllocReduction*100, cell.ChainedAllocs, cell.KWayScratchAllocs)
	}
	if cell.KWayAllocs >= cell.ChainedAllocs {
		t.Fatalf("cold k-way allocates %.0f/op, not below chained %.0f/op",
			cell.KWayAllocs, cell.ChainedAllocs)
	}
	if cell.SplitSimSeconds <= 0 {
		t.Fatal("simulated split-allgather time must be positive")
	}
}

// TestRunMergeCellClusteredPattern keeps the clustered-support cell honest:
// same invariants on the hot-set distribution.
func TestRunMergeCellClusteredPattern(t *testing.T) {
	cell := RunMergeCell(1<<16, 800, 8, "clustered", 101)
	if !cell.BitIdentical {
		t.Fatal("k-way merge diverged from chained Add on clustered supports")
	}
	if cell.AllocReduction < 0.5 {
		t.Fatalf("alloc reduction %.0f%% below the 50%% bar", cell.AllocReduction*100)
	}
}
