package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/simnet"
	"repro/internal/train"
)

// DNNSeries is one training curve: a labeled sequence of per-epoch points
// (loss/accuracy versus simulated time).
type DNNSeries struct {
	Label  string
	P      int
	Params int
	Points []train.Point
}

// DNNScale shrinks the DNN experiments to tractable CPU sizes while
// preserving their structure (model family, sparsity fractions, node
// counts are unchanged or scaled as documented in EXPERIMENTS.md).
type DNNScale struct {
	Rows   int // dataset rows
	Epochs int
	P      int // ranks standing in for the paper's GPU counts
}

// Fig4aCIFAR reproduces Figure 4a: training accuracy of TopK (k/512 with
// 4-bit QSGD) versus full dense SGD on the CIFAR-shaped task, using a
// residual MLP in place of ResNet-110. Returns dense, k=8/512 and k=16/512
// curves.
func Fig4aCIFAR(sc DNNScale, seed int64) []DNNSeries {
	if sc.Rows == 0 {
		sc = DNNScale{Rows: 2000, Epochs: 8, P: 8}
	}
	ds := data.SyntheticDense(data.DenseConfig{Rows: sc.Rows, Dim: 64, Classes: 10, Sep: 2.2, Seed: seed})
	mkTask := func(rank int) train.Task {
		return &train.MLPTask{
			Net:   nn.ResidualMLP(seed+77, 64, 96, 3, 10, 1),
			Shard: ds.Shard(rank, sc.P),
		}
	}
	base := train.Config{
		LR: 0.05, BatchPerNode: 32, Epochs: sc.Epochs,
		Device: simnet.GPUP100, EvalSamples: 256, Seed: seed,
	}
	var series []DNNSeries
	dense := base
	dense.Method = train.MethodDense
	dense.Momentum = 0.9
	series = append(series, runDNN("dense 32-bit", sc.P, simnet.Aries, dense, mkTask))

	for _, k := range []int{8, 16} {
		topk := base
		topk.Method = train.MethodTopK
		topk.LR = base.LR / float64(sc.P)
		topk.Bucket, topk.K = 512, k
		topk.QuantBits = 4
		topk.Algorithm = core.Auto
		series = append(series, runDNN(label("topk %d/512 + 4-bit", k), sc.P, simnet.Aries, topk, mkTask))
	}
	return series
}

// Fig4bATIS reproduces Figure 4b: LSTM training accuracy on the
// ATIS-shaped intent task, dense versus TopK k=2/512 (no quantization).
func Fig4bATIS(sc DNNScale, seed int64) []DNNSeries {
	if sc.Rows == 0 {
		sc = DNNScale{Rows: 1200, Epochs: 8, P: 4}
	}
	cfg := data.ATISShape(1)
	cfg.Rows = sc.Rows
	ds := data.SyntheticSequences(cfg)
	mkTask := func(rank int) train.Task {
		return &train.LSTMTask{
			Model: nn.NewLSTMClassifier(seed+5, cfg.Vocab, 24, 48, cfg.Classes),
			Shard: ds.Shard(rank, sc.P),
		}
	}
	base := train.Config{
		LR: 0.5, BatchPerNode: 16, Epochs: sc.Epochs,
		Device: simnet.GPUP100, EvalSamples: 200, Seed: seed,
	}
	var series []DNNSeries
	dense := base
	dense.Method = train.MethodDense
	series = append(series, runDNN("dense 32-bit", sc.P, simnet.Aries, dense, mkTask))

	topk := base
	topk.Method = train.MethodTopK
	topk.LR = base.LR / float64(sc.P)
	topk.Bucket, topk.K = 512, 2
	topk.Algorithm = core.Auto
	series = append(series, runDNN("topk 2/512", sc.P, simnet.Aries, topk, mkTask))
	return series
}

// Fig5Wide reproduces Figure 5: top-1/top-5 train error of a 4×-wide
// residual network under TopK k=1/512 versus the dense baseline on the
// ImageNet-shaped task (1000 classes).
func Fig5Wide(sc DNNScale, seed int64) []DNNSeries {
	if sc.Rows == 0 {
		sc = DNNScale{Rows: 4000, Epochs: 6, P: 8}
	}
	ds := data.SyntheticDense(data.ImageNetShape(sc.Rows))
	widthFactor := 4
	mkTask := func(rank int) train.Task {
		return &train.MLPTask{
			// 4× width multiplies trunk parameters ~16×; the huge classifier
			// head (width×1000) dominates, as the paper observes for wide
			// ResNets ("this speedup is due almost entirely to ... the last
			// fully-connected layer").
			Net:   nn.ResidualMLP(seed+11, ds.Dim(), 32, 2, 1000, widthFactor),
			Shard: ds.Shard(rank, sc.P),
		}
	}
	base := train.Config{
		LR: 0.02, BatchPerNode: 8, Epochs: sc.Epochs,
		Device: simnet.GPUP100, EvalSamples: 256, Seed: seed,
	}
	var series []DNNSeries
	dense := base
	dense.Method = train.MethodDense
	dense.Momentum = 0.9
	series = append(series, runDNN("dense 32-bit", sc.P, simnet.Aries, dense, mkTask))

	topk := base
	topk.Method = train.MethodTopK
	topk.LR = 2 * base.LR / float64(sc.P)
	topk.Bucket, topk.K = 512, 1
	topk.Algorithm = core.Auto
	series = append(series, runDNN("topk 1/512", sc.P, simnet.Aries, topk, mkTask))
	return series
}

// Fig6ASR reproduces Figure 6: the ASR production workload. The baseline
// is BMUF at the smallest node count; TopK k=4/512 runs at 2×, 4×, and 8×
// that scale (standing in for the paper's 32/64/128 GPUs vs the 16-GPU
// baseline), on an InfiniBand cluster of V100-rate devices.
func Fig6ASR(sc DNNScale, seed int64) []DNNSeries {
	if sc.Rows == 0 {
		sc = DNNScale{Rows: 3200, Epochs: 12, P: 4}
	}
	cfg := data.ASRShape(sc.Rows)
	ds := data.SyntheticSequences(cfg)
	mk := func(P int) func(rank int) train.Task {
		return func(rank int) train.Task {
			return &train.LSTMTask{
				Model: nn.NewLSTMClassifier(seed+23, cfg.Vocab, 24, 48, cfg.Classes),
				Shard: ds.Shard(rank, P),
			}
		}
	}
	var series []DNNSeries

	// Effective (not peak) V100 throughput for small-batch LSTM training:
	// recurrent steps serialize, so utilization is a few percent of peak.
	// Using the effective rate keeps the modeled compute/communication
	// ratio realistic for this workload.
	lstmDevice := simnet.Device{Name: "V100-lstm-eff", FlopsPerSec: 6e11}

	// Strong scaling, as in the paper: "we keep a fixed global batch size
	// of 512 samples, which is the same as for sequential training". At
	// our reduced dataset scale the global batch is 256.
	const globalBatch = 256

	// BMUF baseline at the smallest scale (the paper: "training on 4
	// nodes, 16 GPUs in total ... employing a carefully-tuned instance of
	// block-momentum SGD"; higher node counts diverged for it).
	bmuf := train.Config{
		Method: train.MethodBMUF, LR: 0.5, Momentum: 0.9,
		BatchPerNode: globalBatch / sc.P, Epochs: sc.Epochs,
		BMUFBlockSteps: 8, BMUFMomentum: 0.5,
		Device: lstmDevice, EvalSamples: 200, Seed: seed,
	}
	series = append(series, runDNN("BMUF baseline", sc.P, simnet.InfiniBandFDR, bmuf, mk(sc.P)))

	for _, mult := range []int{2, 4, 8} {
		P := sc.P * mult
		// The paper transmits k=4/512; at our reduced parameter count that
		// leaves too few coordinates per step, so we keep the same *selected
		// fraction of the update mass* with k=8/512 and a sum-scaled LR.
		topk := train.Config{
			Method: train.MethodTopK, LR: 2.0 / float64(P),
			BatchPerNode: max(1, globalBatch/P), Epochs: sc.Epochs,
			Bucket: 512, K: 8, Algorithm: core.Auto,
			Device: lstmDevice, EvalSamples: 200, Seed: seed,
		}
		series = append(series, runDNN(label("SparCML topk 4/512, %dx GPUs", mult*2), P, simnet.InfiniBandFDR, topk, mk(P)))
	}
	return series
}

// Fig6bScalability distills Figure 6b from Fig6ASR output: simulated time
// to complete the run versus node count, normalized to the smallest TopK
// configuration.
type ScalabilityPoint struct {
	Label   string
	P       int
	Time    float64
	Speedup float64
}

// Scalability computes end-of-run time speedups relative to the first
// TopK series.
func Scalability(series []DNNSeries) []ScalabilityPoint {
	var out []ScalabilityPoint
	var ref float64
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		t := s.Points[len(s.Points)-1].Time
		if ref == 0 {
			ref = t
		}
		out = append(out, ScalabilityPoint{Label: s.Label, P: s.P, Time: t, Speedup: ref / t})
	}
	return out
}

func runDNN(name string, P int, profile simnet.Profile, cfg train.Config, mk func(rank int) train.Task) DNNSeries {
	w := comm.NewWorld(P, profile)
	results := comm.Run(w, func(p *comm.Proc) []train.Point {
		return train.Run(p, mk(p.Rank()), cfg)
	})
	params := 0
	if t := mk(0); t != nil {
		params = len(t.Params())
	}
	return DNNSeries{Label: name, P: P, Params: params, Points: results[0]}
}

func label(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
