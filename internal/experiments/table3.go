package experiments

// Table 3 of the paper: hyperparameters for the DNN training experiments,
// kept as data so tests and documentation stay in sync with the configs
// the runners actually use (at reduced scale; see EXPERIMENTS.md).
type Table3Row struct {
	Name            string
	Model           string
	GlobalBatchSize int
	Epochs          int
	// TopK selection: K entries out of every Bucket.
	K, Bucket int
	// QuantBits is the QSGD precision (0 = no quantization).
	QuantBits int
}

// Table3 mirrors the paper's Table 3 plus the selection parameters quoted
// in §8.3/§8.4.
var Table3 = []Table3Row{
	{Name: "CIFAR-10", Model: "ResNet-110", GlobalBatchSize: 256, Epochs: 160, K: 8, Bucket: 512, QuantBits: 4},
	{Name: "ImageNet-1K", Model: "4xResNet 18 and 34", GlobalBatchSize: 512, Epochs: 70, K: 1, Bucket: 512},
	{Name: "ATIS", Model: "LSTM", GlobalBatchSize: 560, Epochs: 20, K: 2, Bucket: 512},
	{Name: "Hansards", Model: "LSTM", GlobalBatchSize: 256, Epochs: 20, K: 4, Bucket: 512},
	{Name: "ASR (proprietary)", Model: "LSTM", GlobalBatchSize: 512, Epochs: 20, K: 4, Bucket: 512},
}

// Table3For returns the row for a dataset name, or false.
func Table3For(name string) (Table3Row, bool) {
	for _, r := range Table3 {
		if r.Name == name {
			return r, true
		}
	}
	return Table3Row{}, false
}
