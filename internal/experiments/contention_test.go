package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

func TestHierDSARCellBeatsFlatUnderContention(t *testing.T) {
	// Dense regime, fully serialized NICs, 4 nodes of 4: the hierarchical
	// DSAR's single leader flow per node must beat flat DSAR's four.
	row := RunHierDSARCell(1<<16, 0.6, 16, 4, 1, simnet.NVLinkLike, simnet.Aries, 1, 1, 1)
	if row.FlatMedian <= 0 || row.HierMedian <= 0 {
		t.Fatal("medians must be positive")
	}
	if row.Speedup <= 1 {
		t.Fatalf("HierDSAR must beat flat DSAR under contention, got speedup %.2f", row.Speedup)
	}
	if row.HierMsgs >= row.FlatMsgs {
		t.Fatalf("hier must send fewer messages: hier=%d flat=%d", row.HierMsgs, row.FlatMsgs)
	}
}

func TestHierDSARNodeSweepShapes(t *testing.T) {
	rows := HierDSARNodeSweep(1<<12, 0.6, []int{2, 8, 16}, 4, 1, simnet.NVLinkLike, simnet.Aries, 1, 1)
	if len(rows) != 2 { // P=2 < rpn is skipped
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.FlatMedian <= 0 || r.HierMedian <= 0 {
			t.Fatalf("cell %+v has nonpositive medians", r)
		}
	}
}

func TestContentionSweepDemonstratesAcceptance(t *testing.T) {
	rows := ContentionSweep(simnet.NVLinkLike, simnet.Aries)
	if len(rows) != 4 {
		t.Fatalf("want 4 cells, got %d", len(rows))
	}
	oldWrongAutoRight := 0
	for _, r := range rows {
		if len(r.Costs) != len(contentionCandidates) {
			t.Fatalf("cell %+v: want %d algorithm costs", r, len(contentionCandidates))
		}
		for _, c := range r.Costs {
			if c.SimSeconds <= 0 || c.ModelSeconds <= 0 {
				t.Fatalf("cell nic=%d alg=%s: nonpositive times %+v", r.NICSerial, c.Algorithm, c)
			}
		}
		if !r.AutoMatchesCheapest {
			t.Errorf("cell n=%d P=%d nic=%d: Auto chose %s but %s is cheapest",
				r.N, r.P, r.NICSerial, r.AutoChoice, r.CheapestSim)
		}
		if r.AutoMatchesCheapest && !r.OldMatchesCheapest {
			oldWrongAutoRight++
		}
	}
	// The acceptance criterion: at least one sweep cell where the old
	// topology-presence heuristic would have chosen wrong and the
	// cost-model Auto matches the empirically cheapest algorithm.
	if oldWrongAutoRight == 0 {
		t.Fatal("no cell demonstrates the cost model beating the old heuristic")
	}
}

func TestOldHeuristicChoiceReproducesPR1Rules(t *testing.T) {
	// δ gate to DSAR, topology presence to HierSSAR, size threshold below.
	if got := oldHeuristicChoice(1000, 600, 8, 4); got != core.DSARSplitAllgather {
		t.Fatalf("dense regime: got %s", got)
	}
	if got := oldHeuristicChoice(1<<20, 100, 32, 4); got != core.HierSSAR {
		t.Fatalf("topology presence: got %s", got)
	}
	if got := oldHeuristicChoice(1<<20, 100, 32, 1); got != core.SSARRecDouble {
		t.Fatalf("small flat: got %s", got)
	}
	if got := oldHeuristicChoice(1<<20, 50000, 4, 1); got != core.SSARSplitAllgather {
		t.Fatalf("large flat: got %s", got)
	}
}
