package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"repro/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files (testdata/)")

// goldenAdaptScenario is the committed-trace workload: the clustered
// shape at a size that keeps the trace file small enough to commit.
var goldenAdaptScenario = scenario.Scenario{
	Name: "clustered-small", N: 1 << 13, P: 8, Calls: 4,
	Density: scenario.Const(0.04),
	Blocks:  []scenario.Block{{Start: 0, Frac: 0.05, Weight: 1}},
	HotMass: scenario.Const(0.9),
}

// TestGoldenTraceReplay replays the committed trace and compares every
// field of the resulting row against the committed golden row: the
// recorded merges and adaptation decisions must reproduce exactly,
// release after release. Regenerate both files with -update.
func TestGoldenTraceReplay(t *testing.T) {
	const (
		tracePath = "testdata/clustered-small.trace"
		rowPath   = "testdata/clustered-small.row.json"
	)
	if *updateGolden {
		tr := scenario.Record(goldenAdaptScenario, scenario.NewKey(AdaptSeed))
		if err := tr.WriteFile(tracePath); err != nil {
			t.Fatal(err)
		}
		row := ReplayAdaptCell(4, 1, tr)
		buf, err := json.MarshalIndent(row, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(rowPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", tracePath, rowPath)
		return
	}

	tr, err := scenario.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read golden trace (regenerate with -update): %v", err)
	}
	got := ReplayAdaptCell(4, 1, tr)

	buf, err := os.ReadFile(rowPath)
	if err != nil {
		t.Fatalf("read golden row (regenerate with -update): %v", err)
	}
	var want AdaptRow
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse %s: %v", rowPath, err)
	}
	if got != want {
		t.Fatalf("replaying the committed trace diverged from the committed row:\ngot:  %+v\nwant: %+v", got, want)
	}

	// The trace must also still match a fresh generation of its scenario —
	// record and replay share one definition of the workload.
	fresh := scenario.Record(goldenAdaptScenario, scenario.NewKey(AdaptSeed))
	if live := ReplayAdaptCell(4, 1, fresh); live != got {
		t.Fatalf("fresh generation diverged from the committed trace:\nfresh: %+v\ntrace: %+v", live, got)
	}
}
