package experiments

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// obsGoldenScenario returns the pinned observability-export workload: the
// library "lstm" cell, small enough that its Perfetto JSON stays
// committable. Pinned by name so library edits to other scenarios never
// drift the golden.
func obsGoldenScenario(t *testing.T) scenario.Scenario {
	t.Helper()
	sc, err := scenario.ByName("lstm")
	if err != nil {
		t.Fatalf("library lost the lstm scenario: %v", err)
	}
	return sc
}

// TestGoldenObsExport pins the Perfetto export: running the lstm cell
// with observability attached must reproduce the committed Chrome
// trace-event JSON byte for byte, the export must survive a
// decode∘encode round trip unchanged, and replaying a recording of the
// same cell must emit the identical timeline. Regenerate with -update.
func TestGoldenObsExport(t *testing.T) {
	const goldenPath = "testdata/obs_lstm_golden.json"
	sc := obsGoldenScenario(t)
	key := scenario.NewKey(AdaptSeed)

	_, hub := RunAdaptCellObs(4, 1, sc, key)
	var live bytes.Buffer
	if err := hub.WriteChrome(&live); err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		if err := os.WriteFile(goldenPath, live.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, live.Len())
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden export (regenerate with -update): %v", err)
	}
	if !bytes.Equal(live.Bytes(), want) {
		t.Fatalf("live obs export diverged from the committed golden (%d vs %d bytes); regenerate with -update if the change is intended",
			live.Len(), len(want))
	}

	// decode∘encode identity: the exporter's output parses back into the
	// event structs and re-encodes to the same bytes.
	decoded, err := obs.DecodeChromeTrace(want)
	if err != nil {
		t.Fatalf("golden export does not parse: %v", err)
	}
	re, err := obs.EncodeChromeTrace(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, want) {
		t.Fatal("decode∘encode of the golden export is not the identity")
	}

	// Replay identity: a trace recorded from the same scenario replays to
	// the byte-identical timeline — the acceptance claim that recorded
	// runs are fully inspectable after the fact.
	tr := scenario.Record(sc, key)
	_, replayHub := ReplayAdaptCellObs(4, 1, tr)
	var replayed bytes.Buffer
	if err := replayHub.WriteChrome(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayed.Bytes(), want) {
		t.Fatal("replaying a recorded lstm trace did not reproduce the live obs export byte for byte")
	}

	// The metrics dump is deterministic too: live and replay agree.
	var liveM, replayM bytes.Buffer
	if err := hub.WriteMetrics(&liveM); err != nil {
		t.Fatal(err)
	}
	if err := replayHub.WriteMetrics(&replayM); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveM.Bytes(), replayM.Bytes()) {
		t.Fatalf("metrics dumps diverged between live and replay:\n%s\nvs\n%s", liveM.String(), replayM.String())
	}
}
