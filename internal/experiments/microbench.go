// Package experiments contains the runners that regenerate every table and
// figure of the paper's evaluation (§8). Each runner returns structured
// rows; cmd/ tools print them and the root benchmark harness wraps them in
// testing.B targets. DESIGN.md §3 maps experiment ids to these functions.
package experiments

import (
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// Fig3Algorithms are the six algorithms compared in the Figure 3
// micro-benchmarks.
var Fig3Algorithms = []core.Algorithm{
	core.SSARRecDouble,
	core.SSARSplitAllgather,
	core.DSARSplitAllgather,
	core.DenseRabenseifner,
	core.DenseRing,
	core.RingSparse,
}

// MicrobenchConfig parameterizes one micro-benchmark cell: a sparse
// allreduce of dimension N at per-node density d across P nodes.
type MicrobenchConfig struct {
	// N is the vector dimension (the paper uses 16M; default sweeps use
	// 2^20 to keep memory modest — shapes are unchanged, see DESIGN.md).
	N int
	// Density is the per-node non-zero fraction.
	Density float64
	// P is the node count.
	P int
	// Profile is the simulated network.
	Profile simnet.Profile
	// Gens × Runs repeated measurements (the paper uses 5×10).
	Gens, Runs int
	// Seed drives data generation.
	Seed int64
}

// MicrobenchRow is one (algorithm, configuration) measurement.
type MicrobenchRow struct {
	Algorithm core.Algorithm
	N, P      int
	Density   float64
	// Median, Q25, Q75 are simulated reduction times in seconds.
	Median, Q25, Q75 float64
	// ResultNNZ is the reduced result's non-zero count (fill-in).
	ResultNNZ int
	// ResultDense reports whether the result ended in dense representation.
	ResultDense bool
}

// uniformInputs draws k = d·N indices uniformly at random per node with
// random values, the §8.1 synthetic workload. The contention, hier, and
// hierlevels sweeps stay on this frozen sampler deliberately: their
// BENCH_2/BENCH_4 cells are tuned to sit on decision boundaries, so their
// byte streams must not move when scenarios evolve. New workloads belong
// in internal/scenario.
func uniformInputs(rng *rand.Rand, n int, density float64, P int) []*stream.Vector {
	k := int(density * float64(n))
	if k < 1 {
		k = 1
	}
	out := make([]*stream.Vector, P)
	for r := range out {
		idx := sampleDistinct(rng, n, k)
		val := make([]float64, k)
		for i := range val {
			val[i] = rng.NormFloat64()
		}
		out[r] = stream.NewSparse(n, idx, val, stream.OpSum)
	}
	return out
}

// sampleDistinct draws k distinct sorted indices from [0, n). It uses a
// dense permutation-free rejection sampler appropriate for k ≪ n and a
// Floyd sampler otherwise.
func sampleDistinct(rng *rand.Rand, n, k int) []int32 {
	if k > n {
		k = n
	}
	seen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		ix := int32(rng.Intn(n))
		if _, dup := seen[ix]; dup {
			continue
		}
		seen[ix] = struct{}{}
		out = append(out, ix)
	}
	return out
}

// RunMicrobench measures one configuration for one algorithm.
func RunMicrobench(cfg MicrobenchConfig, alg core.Algorithm) MicrobenchRow {
	if cfg.Gens <= 0 {
		cfg.Gens = 2
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	var sample report.Sample
	row := MicrobenchRow{Algorithm: alg, N: cfg.N, P: cfg.P, Density: cfg.Density}
	for g := 0; g < cfg.Gens; g++ {
		sc := scenario.Scenario{
			Name: "microbench", N: cfg.N, P: cfg.P, Calls: 1,
			Density: scenario.Const(cfg.Density),
			Values:  scenario.ValuesNormal,
		}
		inputs := sc.Generator(scenario.NewKey(cfg.Seed + int64(g)*7907)).Next()
		for r := 0; r < cfg.Runs; r++ {
			w := comm.NewWorld(cfg.P, cfg.Profile)
			results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
				return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: alg})
			})
			sample.Add(w.MaxTime())
			row.ResultNNZ = results[0].NNZ()
			row.ResultDense = results[0].IsDense()
		}
	}
	row.Median = sample.Median()
	row.Q25, row.Q75 = sample.IQR()
	return row
}

// Fig3NodeSweep reproduces the left panel of Figure 3: reduction time
// versus node count at fixed density (paper: Piz Daint, N=16M, d=0.781%).
func Fig3NodeSweep(n int, density float64, nodes []int, profile simnet.Profile, gens, runs int) []MicrobenchRow {
	var rows []MicrobenchRow
	for _, P := range nodes {
		for _, alg := range Fig3Algorithms {
			rows = append(rows, RunMicrobench(MicrobenchConfig{
				N: n, Density: density, P: P, Profile: profile,
				Gens: gens, Runs: runs, Seed: int64(P) * 104729,
			}, alg))
		}
	}
	return rows
}

// Fig3DensitySweep reproduces the right panel of Figure 3: reduction time
// versus per-node density at fixed node count (paper: Greina GigE, N=16M,
// P=8).
func Fig3DensitySweep(n, P int, densities []float64, profile simnet.Profile, gens, runs int) []MicrobenchRow {
	var rows []MicrobenchRow
	for _, d := range densities {
		for _, alg := range Fig3Algorithms {
			rows = append(rows, RunMicrobench(MicrobenchConfig{
				N: n, Density: d, P: P, Profile: profile,
				Gens: gens, Runs: runs, Seed: int64(d*1e6) + 17,
			}, alg))
		}
	}
	return rows
}
