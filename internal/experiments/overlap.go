package experiments

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the overlap/bucketing ablation recorded as BENCH_7.json:
// the library's layered workload profiles (lstm, transformer) run three
// ways — one monolithic fused allreduce per call, one blocking allreduce
// per model layer (the naive layer-wise training loop), and the
// bucket-fusion scheduler (core.BucketScheduler) issuing model-sized
// buckets as nonblocking collectives with chunked pipelining
// (Options.Chunks = AutoChunks). The layer profiles are taken from the
// scenario library but scaled to N = 2^20: at the library's 2^16 the
// BucketCoords sizing rule (~alpha/beta-sized buckets, ~10^5 coordinates
// on Aries-class links) fuses the whole model into one bucket and the
// ablation degenerates to fused-vs-layerwise.
//
// The simulated cells carry the "bucketed beats per-layer" headline and
// are drift-gated by scripts/ci.sh. A fourth column records nonblocking
// per-layer issue: on the simulator outstanding collectives max-compose
// at zero per-call cost (core.Request's forked clocks), so at equal
// per-collective options nonblocking layerwise is a virtual-time LOWER
// bound — the bucketed arm undercuts it only through chunked pipelining,
// and the issue overhead it hides is a wall phenomenon. OverlapWallSweep
// measures that side on the goroutine transport; its snapshot lives in
// the BENCH_7 Note as static text (the BENCH_3 precedent), keeping the
// document byte-gateable.
//
// The second cell block validates the cost model's pipelining term: the
// same pinned split-allgather instance simulated at Chunks ∈ {1,2,4,8}
// against PredictSeconds on the matching CostScenario.

// OverlapRow is one workload cell of the overlap ablation, all arms in
// simulated virtual seconds.
type OverlapRow struct {
	Workload     string `json:"workload"`
	N            int    `json:"n"`
	P            int    `json:"p"`
	RanksPerNode int    `json:"ranks_per_node"`
	NICSerial    int    `json:"nic_serial"`
	Calls        int    `json:"calls"`
	// Layers is the model's layer count; Buckets is how many collectives
	// the scheduler fuses them into at BucketCoords coordinates per
	// bucket (the core.BucketCoords sizing rule on the inter-node
	// profile).
	Layers       int `json:"layers"`
	Buckets      int `json:"buckets"`
	BucketCoords int `json:"bucket_coords"`
	// FusedSim: one blocking allreduce of the whole gradient per call.
	// LayerwiseSim: one *blocking* allreduce per layer — the naive
	// layer-wise loop the scheduler replaces, and the baseline of the
	// headline. BucketedSim: the bucket scheduler, nonblocking with
	// AutoChunks pipelining. LayerwiseNBSim: nonblocking per-layer issue,
	// reported because at equal per-collective options it is the
	// virtual-time lower bound (see the file comment) — its wall cost is
	// what the wall sweep measures.
	FusedSim       float64 `json:"fused_sim_seconds"`
	LayerwiseSim   float64 `json:"layerwise_sim_seconds"`
	BucketedSim    float64 `json:"bucketed_sim_seconds"`
	LayerwiseNBSim float64 `json:"layerwise_nonblocking_sim_seconds"`
	// BucketedVsLayerwise is LayerwiseSim/BucketedSim — the drift-gated
	// headline (> 1 means bucketed overlap beats the per-layer loop).
	// BucketedVsFused is FusedSim/BucketedSim (> 1 means issuing
	// model-sized buckets beats the monolithic exchange).
	BucketedVsLayerwise float64 `json:"bucketed_vs_layerwise"`
	BucketedVsFused     float64 `json:"bucketed_vs_fused"`
}

// OverlapSeed seeds the BENCH_7 sweep.
const OverlapSeed = 811

// overlapN is the gradient dimension the ablation runs the library layer
// profiles at (see the file comment).
const overlapN = 1 << 20

// layerContribs splits a full-dimension gradient vector into per-layer
// contributions along the model's spans — what the training loop's
// layer-wise extraction produces naturally.
func layerContribs(v *stream.Vector, spans [][2]int) []*stream.Vector {
	out := make([]*stream.Vector, len(spans))
	for i, sp := range spans {
		out[i] = v.ExtractRange(sp[0], sp[1])
	}
	return out
}

// RunOverlapCell measures one layered workload under the arms on
// identical fresh worlds. Simulated times are deterministic, so one run
// per arm suffices.
func RunOverlapCell(rpn, nic int, sc scenario.Scenario, key scenario.SimulationKey) OverlapRow {
	topo := simnet.Topology{RanksPerNode: rpn, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: nic}
	sched := sc.Generator(key).All()
	spans := sc.LayerSpans()
	coords := core.BucketCoords(core.CostScenario{N: sc.N, P: sc.P, Profile: simnet.Aries})
	bs := core.NewBucketScheduler(spans, coords)

	row := OverlapRow{
		Workload: sc.Name, N: sc.N, P: sc.P, RanksPerNode: rpn, NICSerial: nic,
		Calls: len(sched), Layers: len(spans), Buckets: bs.NumBuckets(), BucketCoords: coords,
	}

	arm := func(f func(p *comm.Proc, inputs []*stream.Vector)) float64 {
		w := comm.NewWorldTopo(sc.P, topo)
		comm.Run(w, func(p *comm.Proc) any {
			for _, inputs := range sched {
				f(p, inputs)
			}
			return nil
		})
		return w.MaxTime()
	}

	row.FusedSim = arm(func(p *comm.Proc, inputs []*stream.Vector) {
		core.Allreduce(p, inputs[p.Rank()], core.Options{})
	})
	row.LayerwiseSim = arm(func(p *comm.Proc, inputs []*stream.Vector) {
		for _, c := range layerContribs(inputs[p.Rank()], spans) {
			core.Allreduce(p, c, core.Options{})
		}
	})
	row.LayerwiseNBSim = arm(func(p *comm.Proc, inputs []*stream.Vector) {
		contribs := layerContribs(inputs[p.Rank()], spans)
		reqs := make([]*core.Request, len(contribs))
		for i, c := range contribs {
			reqs[i] = core.IAllreduce(p, c, core.Options{})
		}
		for _, r := range reqs {
			r.Wait(p)
		}
	})
	row.BucketedSim = arm(func(p *comm.Proc, inputs []*stream.Vector) {
		contribs := layerContribs(inputs[p.Rank()], spans)
		bs.Drain(p, bs.Issue(p, contribs, []core.Options{{Chunks: core.AutoChunks}}))
	})

	if row.BucketedSim > 0 {
		row.BucketedVsLayerwise = row.LayerwiseSim / row.BucketedSim
		row.BucketedVsFused = row.FusedSim / row.BucketedSim
	}
	return row
}

// overlapScenarios returns the BENCH_7 workloads: the library's layered
// profiles at the ablation's scale. Renamed so the seed-isolated RNG
// streams never collide with the library-scale runs of other sweeps.
func overlapScenarios() []scenario.Scenario {
	var out []scenario.Scenario
	for _, name := range []string{"lstm", "transformer"} {
		sc, err := scenario.ByName(name)
		if err != nil {
			panic(err)
		}
		sc.N = overlapN
		sc.Name = sc.Name + "-1m"
		out = append(out, sc)
	}
	return out
}

// OverlapSweep runs the BENCH_7 workload cells on the BENCH_5 machine
// shape (4 ranks per node, serialized NIC).
func OverlapSweep() []OverlapRow {
	var rows []OverlapRow
	key := scenario.NewKey(OverlapSeed)
	for _, sc := range overlapScenarios() {
		rows = append(rows, RunOverlapCell(4, 1, sc, key))
	}
	return rows
}

// PipeModelRow is one pipelining-model validation cell: a pinned
// split-allgather instance simulated at a fixed chunk degree against the
// cost model's prediction for the same scenario.
type PipeModelRow struct {
	N      int `json:"n"`
	P      int `json:"p"`
	K      int `json:"k_per_rank"`
	Chunks int `json:"chunks"`
	// SimSeconds is the simulated virtual time of one allreduce;
	// ModelSeconds is PredictSeconds on the matching CostScenario;
	// ModelOverSim is their ratio (the documented error band of the
	// pipelining term — asserted by the acceptance test).
	SimSeconds   float64 `json:"sim_seconds"`
	ModelSeconds float64 `json:"model_seconds"`
	ModelOverSim float64 `json:"model_over_sim"`
}

// PipeModelSweep validates the cost model's pipelining term: the same
// seeded SSARSplitAllgather instance on a flat Aries world, simulated at
// Chunks ∈ {1, 2, 4, 8}, each against the model's prediction.
func PipeModelSweep() []PipeModelRow {
	const (
		n = 1 << 16
		P = 8
		k = 1 << 12
	)
	prof := simnet.Aries
	inputs := transportInputs(OverlapSeed, n, P, k)
	kmax := 0
	for _, v := range inputs {
		if nz := v.NNZ(); nz > kmax {
			kmax = nz
		}
	}
	var rows []PipeModelRow
	for _, C := range []int{1, 2, 4, 8} {
		w := comm.NewWorld(P, prof)
		comm.Run(w, func(p *comm.Proc) any {
			return core.Allreduce(p, inputs[p.Rank()],
				core.Options{Algorithm: core.SSARSplitAllgather, Chunks: C})
		})
		row := PipeModelRow{N: n, P: P, K: kmax, Chunks: C, SimSeconds: w.MaxTime()}
		row.ModelSeconds = core.PredictSeconds(core.SSARSplitAllgather,
			core.CostScenario{N: n, P: P, K: kmax, Profile: prof, Chunks: C})
		if row.SimSeconds > 0 {
			row.ModelOverSim = row.ModelSeconds / row.SimSeconds
		}
		rows = append(rows, row)
	}
	return rows
}

// OverlapWallRow is one wall-clock cell of the overlap sweep: blocking
// per-layer vs bucketed issue on the goroutine transport, where issue
// overhead and merge scheduling cost real time. Wall numbers are
// machine-dependent, so they are never drift-gated — a snapshot goes in
// the BENCH_7 Note as prose.
type OverlapWallRow struct {
	Workload string `json:"workload"`
	Calls    int    `json:"calls"`
	Layers   int    `json:"layers"`
	Buckets  int    `json:"buckets"`
	Runs     int    `json:"runs"`
	// Median wall seconds of the whole call sequence per arm, and the
	// LayerwiseWall/BucketedWall ratio (> 1 means the scheduler's fewer,
	// overlapped collectives beat the blocking per-layer loop in real
	// time).
	LayerwiseWall       float64 `json:"layerwise_wall_seconds"`
	BucketedWall        float64 `json:"bucketed_wall_seconds"`
	BucketedVsLayerwise float64 `json:"bucketed_vs_layerwise"`
}

// OverlapWallSweep measures the wall-clock complement of OverlapSweep on
// the goroutine transport with a pinned algorithm (Auto's agreement
// traffic would only add identical noise to both arms). Takes the median
// of runs per arm.
func OverlapWallSweep(runs int) []OverlapWallRow {
	if runs < 1 {
		runs = 1
	}
	topo := simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 1}
	key := scenario.NewKey(OverlapSeed)
	var rows []OverlapWallRow
	for _, sc := range overlapScenarios() {
		sched := sc.Generator(key).All()
		spans := sc.LayerSpans()
		coords := core.BucketCoords(core.CostScenario{N: sc.N, P: sc.P, Profile: simnet.Aries})
		bs := core.NewBucketScheduler(spans, coords)
		opts := core.Options{Algorithm: core.SSARSplitAllgather}

		arm := func(f func(p *comm.Proc, inputs []*stream.Vector)) float64 {
			times := make([]float64, runs)
			for i := range times {
				w := comm.NewWorldTopo(sc.P, topo).UseGoroutineTransport()
				comm.Run(w, func(p *comm.Proc) any {
					for _, inputs := range sched {
						f(p, inputs)
					}
					return nil
				})
				times[i] = w.MaxTime()
			}
			return median(times)
		}

		row := OverlapWallRow{Workload: sc.Name, Calls: len(sched),
			Layers: len(spans), Buckets: bs.NumBuckets(), Runs: runs}
		row.LayerwiseWall = arm(func(p *comm.Proc, inputs []*stream.Vector) {
			for _, c := range layerContribs(inputs[p.Rank()], spans) {
				core.Allreduce(p, c, opts)
			}
		})
		row.BucketedWall = arm(func(p *comm.Proc, inputs []*stream.Vector) {
			contribs := layerContribs(inputs[p.Rank()], spans)
			bs.Drain(p, bs.Issue(p, contribs, []core.Options{opts}))
		})
		if row.BucketedWall > 0 {
			row.BucketedVsLayerwise = row.LayerwiseWall / row.BucketedWall
		}
		rows = append(rows, row)
	}
	return rows
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
