package experiments

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// This file holds the execution-backend comparison recorded as
// BENCH_6.json: the same seeded allreduce instances run on the simulator
// and on the real transports (in-process goroutine channels, loopback TCP
// sockets), checking bit-identity of the results and recording measured
// wall times, plus the calibration demo — the adaptive controller running
// on the goroutine backend, fitting genuine α–β link constants from
// measured transfer durations and resolving Auto from them. Unlike
// BENCH_2–5, the wall-time fields are machine-dependent snapshots and are
// NOT drift-gated; only the deterministic fields (bit-identity, shapes,
// agreement) are stable across machines.

// TransportRow is one (backend, algorithm) cell of the execution-backend
// comparison. Exactly one of SimSeconds/WallSeconds is meaningful: the
// simulator reports deterministic virtual time and zero wall time, the
// real backends report measured wall time and zero virtual time.
type TransportRow struct {
	Transport string `json:"transport"`
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	P         int    `json:"p"`
	K         int    `json:"k"`
	// SimSeconds is the simulator's virtual completion time (deterministic);
	// WallSeconds is the measured wall-clock completion time on a real
	// backend (machine-dependent, not drift-gated).
	SimSeconds  float64 `json:"sim_seconds,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// BitIdenticalToSim reports whether every rank's dense result equals
	// the simulator's bit for bit (trivially true on the sim row itself).
	BitIdenticalToSim bool `json:"bit_identical_to_sim"`
}

// CalibDemo records the wall-clock calibration demo: the adaptive
// controller on the goroutine backend, with the link fit recovered from
// measured transfer durations and the Auto resolution it fed.
type CalibDemo struct {
	Transport string `json:"transport"`
	P         int    `json:"p"`
	N         int    `json:"n"`
	K         int    `json:"k"`
	Calls     int    `json:"calls"`
	// Samples is how many of rank 0's own measured transfers the
	// calibrator consumed; FitOK whether they yielded a usable affine fit.
	Samples int  `json:"samples"`
	FitOK   bool `json:"fit_ok"`
	// AlphaSeconds and BetaSecondsPerByte are the fitted link constants
	// (measured wall values — machine-dependent, not drift-gated).
	AlphaSeconds       float64 `json:"alpha_seconds,omitempty"`
	BetaSecondsPerByte float64 `json:"beta_seconds_per_byte,omitempty"`
	// Choice is the concrete algorithm Auto resolved to; RanksAgree
	// whether every rank's controller holds the same choice.
	Choice     string `json:"choice"`
	RanksAgree bool   `json:"ranks_agree"`
	// BitIdenticalToStatic reports whether the adaptive results equal a
	// static reference run bit for bit.
	BitIdenticalToStatic bool `json:"bit_identical_to_static"`
}

// transportInputs builds the seeded per-rank inputs shared by every
// backend: one uniform scenario call whose lattice values (odd multiples
// of 1/16) make floating-point accumulation exact, so bit-comparison
// across backends is meaningful.
func transportInputs(seed int64, n, P, k int) []*stream.Vector {
	sc := scenario.Scenario{
		Name: "transport", N: n, P: P, Calls: 1,
		Density: scenario.Const(float64(k) / float64(n)),
	}
	return sc.Generator(scenario.NewKey(seed)).Next()
}

// TransportSweep runs the backend comparison. backends selects the real
// transports to include ("goroutine", "tcp"); the simulator is always the
// reference. The returned error is non-nil only if a TCP world cannot be
// constructed.
func TransportSweep(backends []string) ([]TransportRow, CalibDemo, error) {
	const (
		n = 1 << 16
		P = 8
		k = 1 << 10
	)
	prof := simnet.Aries
	inputs := transportInputs(404, n, P, k)
	algs := []struct {
		alg core.Algorithm
	}{
		{core.SSARRecDouble},
		{core.SSARSplitAllgather},
		{core.DenseRabenseifner},
	}

	runAll := func(w *comm.World) ([][][]float64, []float64) {
		res := make([][][]float64, len(algs))
		times := make([]float64, len(algs))
		for i, a := range algs {
			opts := core.Options{Algorithm: a.alg}
			res[i] = comm.Run(w, func(p *comm.Proc) []float64 {
				return core.Allreduce(p, inputs[p.Rank()], opts).ToDense()
			})
			times[i] = w.MaxTime()
		}
		return res, times
	}

	simW := comm.NewWorld(P, prof)
	ref, simTimes := runAll(simW)

	var rows []TransportRow
	for i, a := range algs {
		rows = append(rows, TransportRow{
			Transport: "sim", Algorithm: a.alg.String(), N: n, P: P, K: k,
			SimSeconds: simTimes[i], BitIdenticalToSim: true,
		})
	}

	sameAsRef := func(res [][][]float64) []bool {
		ok := make([]bool, len(algs))
		for i := range algs {
			ok[i] = true
			for r := range res[i] {
				for c := range res[i][r] {
					if res[i][r][c] != ref[i][r][c] {
						ok[i] = false
					}
				}
			}
		}
		return ok
	}

	for _, backend := range backends {
		var w *comm.World
		switch backend {
		case "goroutine":
			w = comm.NewWorld(P, prof).UseGoroutineTransport()
		case "tcp":
			var err error
			w, err = comm.NewWorldTCP(P, prof, comm.TCPConfig{})
			if err != nil {
				return nil, CalibDemo{}, fmt.Errorf("tcp world: %w", err)
			}
		default:
			return nil, CalibDemo{}, fmt.Errorf("unknown backend %q (want goroutine or tcp)", backend)
		}
		res, wallTimes := runAll(w)
		for i, ok := range sameAsRef(res) {
			rows = append(rows, TransportRow{
				Transport: backend, Algorithm: algs[i].alg.String(), N: n, P: P, K: k,
				WallSeconds: wallTimes[i], BitIdenticalToSim: ok,
			})
		}
		if backend == "tcp" {
			w.Close()
		}
	}

	return rows, calibDemo(), nil
}

// calibDemo runs the adaptive controller on the goroutine backend and
// reports the measured link fit plus the Auto resolution it produced.
func calibDemo() CalibDemo {
	const (
		n     = 1 << 15
		P     = 8
		k     = 700
		calls = 6
	)
	demo := CalibDemo{Transport: "goroutine", P: P, N: n, K: k, Calls: calls}
	inputs := transportInputs(405, n, P, k)

	static := comm.Run(comm.NewWorld(P, simnet.Aries), func(p *comm.Proc) []float64 {
		return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather}).ToDense()
	})

	w := comm.NewWorld(P, simnet.Aries).UseGoroutineTransport()
	tr := w.EnableTrace()
	tr.LimitPerRank(1 << 16)
	ctrls := make([]*adapt.Controller, P)
	for r := range ctrls {
		ctrls[r] = adapt.NewController(adapt.Config{})
		ctrls[r].AttachTracer(tr, r)
	}
	demo.BitIdenticalToStatic = true
	for call := 0; call < calls; call++ {
		res := comm.Run(w, func(p *comm.Proc) []float64 {
			return ctrls[p.Rank()].Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.Auto}).ToDense()
		})
		for r := range res {
			for c := range res[r] {
				if res[r][c] != static[0][c] {
					demo.BitIdenticalToStatic = false
				}
			}
		}
	}

	cal := ctrls[0].Calibrator()
	demo.Samples = cal.Samples(0)
	alpha, beta, ok := cal.Fit(0)
	demo.FitOK = ok
	if ok {
		demo.AlphaSeconds, demo.BetaSecondsPerByte = alpha, beta
	}
	alg0, lv0 := ctrls[0].Choice()
	demo.Choice = alg0.String()
	if lv0 > 0 {
		demo.Choice = fmt.Sprintf("%s@%d", alg0, lv0)
	}
	demo.RanksAgree = true
	for r := 1; r < P; r++ {
		alg, lv := ctrls[r].Choice()
		if alg != alg0 || lv != lv0 {
			demo.RanksAgree = false
		}
	}
	return demo
}
