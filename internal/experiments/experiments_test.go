package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

func TestRunMicrobenchProducesStableStats(t *testing.T) {
	cfg := MicrobenchConfig{
		N: 1 << 14, Density: 0.01, P: 4,
		Profile: simnet.Aries, Gens: 2, Runs: 2, Seed: 1,
	}
	row := RunMicrobench(cfg, core.SSARRecDouble)
	if row.Median <= 0 {
		t.Fatal("median time must be positive")
	}
	if row.Q25 > row.Median || row.Median > row.Q75 {
		t.Fatalf("quantiles out of order: %g %g %g", row.Q25, row.Median, row.Q75)
	}
	// Virtual-clock timings are deterministic given the same data, so the
	// IQR must be tight.
	if row.Q75-row.Q25 > 0.01*row.Median {
		t.Fatalf("virtual-clock IQR unexpectedly wide: [%g, %g]", row.Q25, row.Q75)
	}
	if row.ResultNNZ <= 0 {
		t.Fatal("result nnz missing")
	}
}

func TestFig3OrderingAtPaperOperatingPoints(t *testing.T) {
	// At the paper's operating point (high dimension, 0.78% density,
	// growing P) the sparse algorithms must beat the dense baselines by a
	// wide margin — the headline of Figure 3.
	rows := Fig3NodeSweep(1<<18, 0.0078, []int{8}, simnet.Aries, 1, 1)
	byAlg := map[core.Algorithm]MicrobenchRow{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	sparseBest := math.Min(byAlg[core.SSARRecDouble].Median, byAlg[core.SSARSplitAllgather].Median)
	denseBest := math.Min(byAlg[core.DenseRabenseifner].Median, byAlg[core.DenseRing].Median)
	if denseBest/sparseBest < 5 {
		t.Fatalf("sparse best %g vs dense best %g: speedup %.1fx, want ≥5x",
			sparseBest, denseBest, denseBest/sparseBest)
	}
}

func TestFig3DensitySweepCrossover(t *testing.T) {
	// As density rises toward 25%, the sparse advantage must shrink: DSAR
	// is capped at 2/κ (Lemma 5.2) and dense algorithms become
	// competitive — the right panel's convergence of curves.
	lo := Fig3DensitySweep(1<<16, 8, []float64{0.0005}, simnet.GigE, 1, 1)
	hi := Fig3DensitySweep(1<<16, 8, []float64{0.25}, simnet.GigE, 1, 1)
	ratio := func(rows []MicrobenchRow) float64 {
		byAlg := map[core.Algorithm]MicrobenchRow{}
		for _, r := range rows {
			byAlg[r.Algorithm] = r
		}
		return byAlg[core.DenseRabenseifner].Median / byAlg[core.SSARSplitAllgather].Median
	}
	if rLo, rHi := ratio(lo), ratio(hi); rLo <= rHi {
		t.Fatalf("sparse advantage must shrink with density: %.2fx at 0.05%% vs %.2fx at 25%%", rLo, rHi)
	}
}

func TestFig1GridMatchesClosedForm(t *testing.T) {
	rows := Fig1Grid(270000, []int{2, 64}, []float64{0.05})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// 5% per node at 64 nodes: essentially dense (Figure 1's message).
	for _, r := range rows {
		if r.P == 64 && r.Analytic < 0.9 {
			t.Fatalf("P=64 d=5%%: analytic density %g, want >0.9", r.Analytic)
		}
		if r.P == 2 && r.Analytic > 0.12 {
			t.Fatalf("P=2 d=5%%: analytic density %g, want ≤~0.1", r.Analytic)
		}
	}
}

func TestFig1EmpiricalGradientsClusterBelowUniform(t *testing.T) {
	rows := Fig1Empirical([]int{2, 8}, []float64{0.03}, 3)
	prev := 0.0
	for _, r := range rows {
		if r.Empirical <= 0 || r.Empirical > 1 {
			t.Fatalf("empirical density %g out of range", r.Empirical)
		}
		// Real gradients share hot coordinates across nodes, so measured
		// fill-in must not exceed the uniform worst case by much.
		if r.Empirical > r.Analytic*1.15 {
			t.Fatalf("P=%d: empirical %g far above uniform analytic %g", r.P, r.Empirical, r.Analytic)
		}
		// The union contains each node's full selection, so empirical
		// density must be at least ~the per-node selected fraction (TopK
		// selects ceil(d·512)/512 per bucket; allow bucket-boundary slack).
		if r.Empirical < 0.8*r.PerNodeDensity {
			t.Fatalf("P=%d: empirical %g below per-node density %g — degenerate selection", r.P, r.Empirical, r.PerNodeDensity)
		}
		// Fill-in grows with P.
		if r.Empirical < prev {
			t.Fatalf("P=%d: empirical density decreased", r.P)
		}
		prev = r.Empirical
	}
}

func TestFig7TableShape(t *testing.T) {
	rows := Fig7Table([]int{1, 8, 64, 512}, []int{2, 8, 32})
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.K == 512 && math.Abs(r.Growth-1) > 1e-9 {
			t.Fatalf("k=N growth = %g, want 1", r.Growth)
		}
		// k=1 growth approaches P (slightly below due to collisions).
		if r.K == 1 && (r.Growth > float64(r.P) || r.Growth < 0.94*float64(r.P)) {
			t.Fatalf("k=1 growth = %g, want ≈P=%d", r.Growth, r.P)
		}
	}
}

func TestTable2CaseShowsSparseAdvantage(t *testing.T) {
	cases := DefaultTable2Cases(0.01)
	// Run a Greina-GigE row, where the paper reports the largest speedups.
	var tc Table2Case
	for _, c := range cases {
		if c.System == "Greina (GigE)" && c.Dataset == "URL" {
			tc = c
			break
		}
	}
	tc.Nodes = 4 // keep the smoke test fast
	row := RunTable2Case(tc, 2, 1)
	if row.Speedup <= 1 {
		t.Fatalf("end-to-end speedup %.2fx, want >1x", row.Speedup)
	}
	if row.CommSpeedup <= row.Speedup {
		t.Fatal("communication speedup should exceed end-to-end speedup")
	}
	if row.FinalAccuracy < 0.7 {
		t.Fatalf("training did not converge: accuracy %g", row.FinalAccuracy)
	}
}

func TestSCDExperiment(t *testing.T) {
	res := RunSCDExperiment(0.005, 2, 1)
	if res.Speedup <= 1 || res.CommSpeedup <= 1 {
		t.Fatalf("SCD sparse allgather must win: speedup %.2fx comm %.2fx", res.Speedup, res.CommSpeedup)
	}
}

func TestSparkComparisonOrdering(t *testing.T) {
	res := RunSparkComparison(0.01, 1, 1)
	// §8.2 ordering: Spark-like ≫ dense MPI ≫ sparse, and the sparse-vs-
	// Spark comm gap exceeds the dense-vs-Spark gap.
	if !(res.SparkComm > res.DenseComm && res.DenseComm > res.SparseComm) {
		t.Fatalf("comm ordering violated: spark %g dense %g sparse %g",
			res.SparkComm, res.DenseComm, res.SparseComm)
	}
	if res.SparseVsSparkComm <= res.DenseVsSparkComm {
		t.Fatal("sparse must gain more over Spark than dense does")
	}
	if res.DenseVsSparkComm < 3 {
		t.Fatalf("dense-vs-Spark comm factor %.1fx, want ≥3x", res.DenseVsSparkComm)
	}
}

func TestFig4aSmoke(t *testing.T) {
	series := Fig4aCIFAR(DNNScale{Rows: 400, Epochs: 2, P: 4}, 1)
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: want 2 epochs", s.Label)
		}
		last := s.Points[len(s.Points)-1]
		if last.Top1 <= 0.1 { // must beat 10-class chance
			t.Fatalf("%s: top-1 %g not above chance", s.Label, last.Top1)
		}
	}
}

func TestFig6ScalabilityMonotone(t *testing.T) {
	series := Fig6ASR(DNNScale{Rows: 320, Epochs: 1, P: 2}, 1)
	pts := Scalability(series[1:]) // TopK runs only
	if len(pts) != 3 {
		t.Fatalf("want 3 scalability points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("scalability not monotone: %+v", pts)
		}
	}
}

func TestTable3Hyperparameters(t *testing.T) {
	// Paper Table 3: CIFAR batch 256; ImageNet 512; ATIS 560; selections
	// quoted in §8.3/§8.4: 8 or 16/512 CIFAR (4-bit), 2/512 ATIS, 1/512
	// wide ResNets, 4/512 ASR.
	cifar, ok := Table3For("CIFAR-10")
	if !ok || cifar.GlobalBatchSize != 256 || cifar.K != 8 || cifar.Bucket != 512 || cifar.QuantBits != 4 {
		t.Fatalf("CIFAR row mismatch: %+v", cifar)
	}
	imgnet, _ := Table3For("ImageNet-1K")
	if imgnet.GlobalBatchSize != 512 || imgnet.K != 1 {
		t.Fatalf("ImageNet row mismatch: %+v", imgnet)
	}
	atis, _ := Table3For("ATIS")
	if atis.GlobalBatchSize != 560 || atis.K != 2 {
		t.Fatalf("ATIS row mismatch: %+v", atis)
	}
	asr, _ := Table3For("ASR (proprietary)")
	if asr.K != 4 || asr.Bucket != 512 {
		t.Fatalf("ASR row mismatch: %+v", asr)
	}
	if _, ok := Table3For("MNIST"); ok {
		t.Fatal("unexpected dataset")
	}
}
