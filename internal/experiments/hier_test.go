package experiments

import (
	"testing"

	"repro/internal/simnet"
)

func TestHierCellAcceptanceScenario(t *testing.T) {
	// The issue's acceptance scenario: P=32, 4 ranks/node, NVLink-like
	// intra + Aries inter, latency-bound density. HierSSAR must beat flat
	// SSAR_Split_allgather run entirely on the inter-node profile.
	row := RunHierCell(1<<20, 1e-4, 32, 4, simnet.NVLinkLike, simnet.Aries, 1, 1, 1)
	if row.FlatMedian <= 0 || row.HierMedian <= 0 {
		t.Fatal("medians must be positive")
	}
	if row.Speedup <= 1 {
		t.Fatalf("hierarchical must beat flat at the acceptance point, got speedup %.2f", row.Speedup)
	}
	if row.HierMsgs >= row.FlatMsgs*2 {
		t.Fatalf("hier message count should not blow up: hier=%d flat=%d", row.HierMsgs, row.FlatMsgs)
	}
}

func TestHierSweepsShapes(t *testing.T) {
	rows := HierNodeSweep(1<<14, 1e-3, []int{2, 8, 16}, 4, simnet.NVLinkLike, simnet.Aries, 1, 1)
	if len(rows) != 2 { // P=2 < rpn is skipped
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	drows := HierDensitySweep(1<<14, []float64{1e-4, 1e-2}, 8, 4, simnet.NVLinkLike, simnet.Aries, 1, 1)
	if len(drows) != 2 {
		t.Fatalf("want 2 density rows, got %d", len(drows))
	}
	for _, r := range append(rows, drows...) {
		if r.FlatMedian <= 0 || r.HierMedian <= 0 {
			t.Fatalf("cell %+v has nonpositive medians", r)
		}
	}
}
