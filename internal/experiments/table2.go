package experiments

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/mlopt"
	"repro/internal/simnet"
)

// Table2Row is one row of Table 2: distributed optimization with MPI-OPT,
// comparing a SparCML sparse reduction against the dense MPI baseline.
type Table2Row struct {
	System    string
	Dataset   string
	Model     string
	Nodes     int
	Algorithm core.Algorithm
	// Per-epoch simulated times in seconds (communication part in
	// parentheses in the paper).
	BaselineTime, BaselineComm float64
	AlgoTime, AlgoComm         float64
	// End-to-end and communication speedups.
	Speedup, CommSpeedup float64
	// FinalAccuracy sanity-checks that training converges.
	FinalAccuracy float64
}

// Table2Case describes one experimental row to run.
type Table2Case struct {
	System    string
	Profile   simnet.Profile
	Dataset   string
	Gen       data.SparseConfig
	Loss      mlopt.Loss
	Nodes     int
	Algorithm core.Algorithm
}

// DefaultTable2Cases mirrors the paper's Table 2 rows (Piz Daint at 32
// nodes with recursive doubling; Piz Daint/Greina-IB/Greina-GigE at 8
// nodes with split allgather) at the given dataset scale.
func DefaultTable2Cases(scale float64) []Table2Case {
	web := scaledSparse(data.WebspamShape(1), scale)
	url := scaledSparse(data.URLShape(1), scale)
	return []Table2Case{
		{"Piz Daint", simnet.Aries, "Webspam", web, mlopt.Logistic, 32, core.SSARRecDouble},
		{"Piz Daint", simnet.Aries, "Webspam", web, mlopt.Hinge, 32, core.SSARRecDouble},
		{"Piz Daint", simnet.Aries, "URL", url, mlopt.Logistic, 32, core.SSARRecDouble},
		{"Piz Daint", simnet.Aries, "URL", url, mlopt.Hinge, 32, core.SSARRecDouble},
		{"Piz Daint", simnet.Aries, "Webspam", web, mlopt.Logistic, 8, core.SSARSplitAllgather},
		{"Piz Daint", simnet.Aries, "URL", url, mlopt.Logistic, 8, core.SSARSplitAllgather},
		{"Greina (IB)", simnet.InfiniBandFDR, "Webspam", web, mlopt.Logistic, 8, core.SSARSplitAllgather},
		{"Greina (IB)", simnet.InfiniBandFDR, "URL", url, mlopt.Logistic, 8, core.SSARSplitAllgather},
		{"Greina (GigE)", simnet.GigE, "Webspam", web, mlopt.Logistic, 8, core.SSARSplitAllgather},
		{"Greina (GigE)", simnet.GigE, "URL", url, mlopt.Logistic, 8, core.SSARSplitAllgather},
	}
}

// scaledSparse shrinks a dataset shape by `scale` in rows and dimension
// while keeping per-row sparsity structure.
func scaledSparse(cfg data.SparseConfig, scale float64) data.SparseConfig {
	cfg.Rows = max(200, int(float64(cfg.Rows)*scale))
	cfg.Dim = max(1000, int(float64(cfg.Dim)*scale))
	// Per-row nnz shrinks with the dimension so the per-row *density* —
	// the quantity the sparse collectives exploit — matches the original
	// dataset's.
	cfg.NNZPerRow = max(10, int(float64(cfg.NNZPerRow)*scale))
	if cfg.NNZPerRow > cfg.Dim/10 {
		cfg.NNZPerRow = cfg.Dim / 10
	}
	return cfg
}

// RunTable2Case trains with the dense baseline and the SparCML algorithm
// and reports per-epoch times and speedups.
func RunTable2Case(tc Table2Case, epochs int, seed int64) Table2Row {
	ds := data.SyntheticSparse(tc.Gen)
	run := func(mode mlopt.CommMode) (time, commT, acc float64) {
		w := comm.NewWorld(tc.Nodes, tc.Profile)
		results := comm.Run(w, func(p *comm.Proc) []mlopt.EpochStats {
			return mlopt.TrainSGD(p, ds.Shard(p.Rank(), tc.Nodes), mlopt.SGDConfig{
				Loss: tc.Loss, LR: 0.8, BatchPerNode: 100, Epochs: epochs,
				Mode: mode, Algorithm: tc.Algorithm, Seed: seed,
			})
		})
		stats := results[0]
		for _, e := range stats {
			time += e.Time
			commT += e.CommTime
		}
		return time / float64(epochs), commT / float64(epochs), stats[len(stats)-1].Accuracy
	}
	bTime, bComm, _ := run(mlopt.CommDense)
	aTime, aComm, acc := run(mlopt.CommSparse)
	model := "LR"
	if tc.Loss == mlopt.Hinge {
		model = "SVM"
	}
	return Table2Row{
		System: tc.System, Dataset: tc.Dataset, Model: model,
		Nodes: tc.Nodes, Algorithm: tc.Algorithm,
		BaselineTime: bTime, BaselineComm: bComm,
		AlgoTime: aTime, AlgoComm: aComm,
		Speedup: bTime / aTime, CommSpeedup: bComm / aComm,
		FinalAccuracy: acc,
	}
}

// SCDResult compares the sparse and dense allgather variants of the
// distributed coordinate-descent experiment (§8.2).
type SCDResult struct {
	SparseEpochTime, SparseCommTime float64
	DenseEpochTime, DenseCommTime   float64
	Speedup, CommSpeedup            float64
	FinalAccuracy                   float64
}

// RunSCDExperiment reproduces the §8.2 SCD comparison on a URL-shaped
// dataset across 8 nodes, 100 coordinates per node per iteration.
func RunSCDExperiment(scale float64, epochs int, seed int64) SCDResult {
	cfg := scaledSparse(data.URLShape(1), scale)
	ds := data.SyntheticSparse(cfg)
	const P = 8
	run := func(sparse bool) (time, commT, acc float64) {
		w := comm.NewWorld(P, simnet.Aries)
		results := comm.Run(w, func(p *comm.Proc) []mlopt.EpochStats {
			return mlopt.TrainSCD(p, ds.Shard(p.Rank(), P), mlopt.SCDConfig{
				Loss: mlopt.Logistic, LR: 4, CoordsPerIter: 100,
				ItersPerEpoch: 30, Epochs: epochs, Sparse: sparse, Seed: seed,
			})
		})
		stats := results[0]
		for _, e := range stats {
			time += e.Time
			commT += e.CommTime
		}
		return time / float64(epochs), commT / float64(epochs), stats[len(stats)-1].Accuracy
	}
	sTime, sComm, acc := run(true)
	dTime, dComm, _ := run(false)
	return SCDResult{
		SparseEpochTime: sTime, SparseCommTime: sComm,
		DenseEpochTime: dTime, DenseCommTime: dComm,
		Speedup: dTime / sTime, CommSpeedup: dComm / sComm,
		FinalAccuracy: acc,
	}
}

// SparkResult compares MPI-OPT's communication layers against a Spark-like
// stack (§8.2's comparison with Apache Spark).
type SparkResult struct {
	// Per-epoch simulated times: Spark-like dense, MPI dense, SparCML
	// sparse — all on the same cluster profile plus the Spark software
	// overhead for the first.
	SparkEpoch, SparkComm   float64
	DenseEpoch, DenseComm   float64
	SparseEpoch, SparseComm float64
	// Headline ratios as reported in §8.2.
	SparseVsSparkComm float64
	DenseVsSparkComm  float64
}

// RunSparkComparison reproduces the §8.2 Spark comparison: the same
// URL-shaped SGD workload through (a) a Spark-like communication layer
// (dense, high software overhead), (b) dense MPI, and (c) SparCML sparse
// collectives, on an 8-node cluster.
func RunSparkComparison(scale float64, epochs int, seed int64) SparkResult {
	cfg := scaledSparse(data.URLShape(1), scale)
	ds := data.SyntheticSparse(cfg)
	const P = 8
	run := func(profile simnet.Profile, mode mlopt.CommMode) (time, commT float64) {
		w := comm.NewWorld(P, profile)
		results := comm.Run(w, func(p *comm.Proc) []mlopt.EpochStats {
			return mlopt.TrainSGD(p, ds.Shard(p.Rank(), P), mlopt.SGDConfig{
				Loss: mlopt.Logistic, LR: 0.8, BatchPerNode: 100, Epochs: epochs,
				Mode: mode, Algorithm: core.SSARSplitAllgather, Seed: seed,
			})
		})
		for _, e := range results[0] {
			time += e.Time
			commT += e.CommTime
		}
		return time / float64(epochs), commT / float64(epochs)
	}
	r := SparkResult{}
	r.SparkEpoch, r.SparkComm = run(simnet.SparkLike, mlopt.CommDense)
	r.DenseEpoch, r.DenseComm = run(simnet.GigE, mlopt.CommDense)
	r.SparseEpoch, r.SparseComm = run(simnet.GigE, mlopt.CommSparse)
	r.SparseVsSparkComm = r.SparkComm / r.SparseComm
	r.DenseVsSparkComm = r.SparkComm / r.DenseComm
	return r
}
