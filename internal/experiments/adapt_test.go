package experiments

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

// testAdaptScenario is a reduced clustered cell (same shape as the
// BENCH_5 "clustered" cell at a sixteenth of the dimension) used by the
// determinism and replay tests.
var testAdaptScenario = scenario.Scenario{
	Name: "clustered-small", N: 1 << 16, P: 16, Calls: 6,
	Density: scenario.Const(0.04),
	Blocks:  []scenario.Block{{Start: 0, Frac: 0.05, Weight: 1}},
	HotMass: scenario.Const(0.9),
}

// TestRunAdaptCellDeterministic checks one reduced adaptation cell is
// fully deterministic (the property the BENCH_5 drift gate relies on)
// and internally consistent.
func TestRunAdaptCellDeterministic(t *testing.T) {
	key := scenario.NewKey(42)
	a := RunAdaptCell(4, 1, testAdaptScenario, key)
	b := RunAdaptCell(4, 1, testAdaptScenario, key)
	if a != b {
		t.Fatalf("adapt cell not deterministic:\n%+v\n%+v", a, b)
	}
	if a.StaticUniformSim <= 0 || a.StaticClusteredSim <= 0 || a.AdaptiveSim <= 0 {
		t.Fatalf("non-positive simulated times: %+v", a)
	}
	if a.AdaptiveClusteredCalls == 0 {
		t.Fatal("strongly clustered cell should select the clustered support model")
	}
	wantBest := math.Min(a.StaticUniformSim, a.StaticClusteredSim) / a.AdaptiveSim
	if math.Abs(wantBest-a.AdaptiveVsBestStatic) > 1e-12 {
		t.Fatalf("ratio bookkeeping wrong: %v vs %v", wantBest, a.AdaptiveVsBestStatic)
	}
}

// TestReplayAdaptCellMatchesLive records the reduced cell's schedule to a
// trace, round-trips the trace through its file encoding, and checks the
// replayed row equals the live one field for field — the byte-identity
// claim behind cmd/sparreplay and the CI replay gate.
func TestReplayAdaptCellMatchesLive(t *testing.T) {
	key := scenario.NewKey(42)
	live := RunAdaptCell(4, 1, testAdaptScenario, key)

	tr := scenario.Record(testAdaptScenario, key)
	decoded, err := scenario.Decode(tr.Encode())
	if err != nil {
		t.Fatalf("decode recorded trace: %v", err)
	}
	replayed := ReplayAdaptCell(4, 1, decoded)
	if live != replayed {
		t.Fatalf("replay diverged from live run:\nlive:   %+v\nreplay: %+v", live, replayed)
	}
}
