package experiments

import (
	"math"
	"testing"
)

// TestRunAdaptCellDeterministic checks one reduced adaptation cell is
// fully deterministic (the property the BENCH_5 drift gate relies on)
// and internally consistent.
func TestRunAdaptCellDeterministic(t *testing.T) {
	wl := adaptWorkload{
		name: "clustered", calls: 6, hotFrac: 0.05,
		kAt:    func(int) int { return (1 << 16) / 25 },
		biasAt: func(int) float64 { return 0.9 },
	}
	a := RunAdaptCell(1<<16, 16, 4, 1, wl, 42)
	b := RunAdaptCell(1<<16, 16, 4, 1, wl, 42)
	if a != b {
		t.Fatalf("adapt cell not deterministic:\n%+v\n%+v", a, b)
	}
	if a.StaticUniformSim <= 0 || a.StaticClusteredSim <= 0 || a.AdaptiveSim <= 0 {
		t.Fatalf("non-positive simulated times: %+v", a)
	}
	if a.AdaptiveClusteredCalls == 0 {
		t.Fatal("strongly clustered cell should select the clustered support model")
	}
	wantBest := math.Min(a.StaticUniformSim, a.StaticClusteredSim) / a.AdaptiveSim
	if math.Abs(wantBest-a.AdaptiveVsBestStatic) > 1e-12 {
		t.Fatalf("ratio bookkeeping wrong: %v vs %v", wantBest, a.AdaptiveVsBestStatic)
	}
}
