package mlopt

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/simnet"
)

var testNet = simnet.Profile{Name: "test", Alpha: 1e-6, BetaPerByte: 1e-10,
	GammaPerElem: 1e-10, SparseComputeFactor: 4}

func testDataset() *data.SparseDataset {
	return data.SyntheticSparse(data.SparseConfig{
		Rows: 2000, Dim: 5000, NNZPerRow: 25,
		HotFraction: 0.05, ClusterBias: 0.8, NoiseRate: 0.01, Seed: 11,
	})
}

// wideDataset has URL-like dimension/sample ratios: minibatch gradients
// stay genuinely sparse (<5% density).
func wideDataset() *data.SparseDataset {
	return data.SyntheticSparse(data.SparseConfig{
		Rows: 2000, Dim: 50000, NNZPerRow: 25,
		HotFraction: 0.02, ClusterBias: 0.8, NoiseRate: 0.01, Seed: 11,
	})
}

func TestLossValuesAndDerivatives(t *testing.T) {
	// Logistic at margin 0: loss = ln 2, derivative = −1/2.
	if got := Logistic.Value(0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("logistic(0) = %g, want ln2", got)
	}
	if got := Logistic.DMargin(0); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("logistic'(0) = %g, want -0.5", got)
	}
	// Hinge: flat past margin 1, slope −1 before.
	if Hinge.Value(2) != 0 || Hinge.DMargin(2) != 0 {
		t.Fatal("hinge must vanish past margin 1")
	}
	if Hinge.Value(0) != 1 || Hinge.DMargin(0) != -1 {
		t.Fatal("hinge at margin 0 wrong")
	}
	// Logistic must be numerically stable at extreme margins.
	if v := Logistic.Value(1000); v != 0 && !(v > 0 && v < 1e-300) {
		t.Fatalf("logistic(1000) = %g, want ~0", v)
	}
	if v := Logistic.Value(-50); math.Abs(v-50) > 1 {
		t.Fatalf("logistic(-50) = %g, want ≈50", v)
	}
}

func TestLossDerivativeMatchesFiniteDifference(t *testing.T) {
	for _, l := range []Loss{Logistic, Hinge} {
		for _, m := range []float64{-3, -0.5, 0.3, 0.99, 2.5} {
			h := 1e-6
			fd := (l.Value(m+h) - l.Value(m-h)) / (2 * h)
			if math.Abs(fd-l.DMargin(m)) > 1e-5 {
				t.Fatalf("%s at m=%g: analytic %g vs finite-diff %g", l, m, l.DMargin(m), fd)
			}
		}
	}
}

func TestSGDConvergesSparseAndDense(t *testing.T) {
	ds := testDataset()
	P := 4
	for _, mode := range []CommMode{CommDense, CommSparse} {
		w := comm.NewWorld(P, testNet)
		results := comm.Run(w, func(p *comm.Proc) []EpochStats {
			return TrainSGD(p, ds.Shard(p.Rank(), P), SGDConfig{
				Loss: Logistic, LR: 1.0, BatchPerNode: 100, Epochs: 10,
				Mode: mode, Algorithm: core.SSARRecDouble, Seed: 3,
			})
		})
		final := results[0][len(results[0])-1]
		if final.Accuracy < 0.9 {
			t.Fatalf("mode=%d: final accuracy %g, want ≥0.9", mode, final.Accuracy)
		}
		// Loss must be decreasing overall.
		first := results[0][0]
		if final.Loss >= first.Loss {
			t.Fatalf("mode=%d: loss did not decrease (%g → %g)", mode, first.Loss, final.Loss)
		}
		// All ranks must report identical stats (consistent replicas).
		for r := 1; r < P; r++ {
			last := results[r][len(results[r])-1]
			if math.Abs(last.Accuracy-final.Accuracy) > 1e-12 || math.Abs(last.Loss-final.Loss) > 1e-12 {
				t.Fatalf("mode=%d: rank %d stats diverge", mode, r)
			}
		}
	}
}

func TestSGDSparseAndDenseAgree(t *testing.T) {
	// Lossless sparse communication: the sparse-comm run must produce the
	// same learning trajectory as the dense baseline (same batches, exact
	// sums up to float associativity — compare loosely).
	ds := testDataset()
	P := 4
	run := func(mode CommMode) []EpochStats {
		w := comm.NewWorld(P, testNet)
		results := comm.Run(w, func(p *comm.Proc) []EpochStats {
			return TrainSGD(p, ds.Shard(p.Rank(), P), SGDConfig{
				Loss: Hinge, LR: 0.2, BatchPerNode: 50, Epochs: 3,
				Mode: mode, Algorithm: core.SSARSplitAllgather, Seed: 5,
			})
		})
		return results[0]
	}
	dense, sparse := run(CommDense), run(CommSparse)
	for e := range dense {
		if math.Abs(dense[e].Loss-sparse[e].Loss) > 1e-6 {
			t.Fatalf("epoch %d: dense loss %g vs sparse loss %g", e, dense[e].Loss, sparse[e].Loss)
		}
	}
}

func TestSGDSparseCommFasterOnSparseData(t *testing.T) {
	// The Table 2 claim: on sparse data the SparCML exchange beats the
	// dense baseline in communication time.
	ds := wideDataset()
	P := 8
	commT := func(mode CommMode) float64 {
		w := comm.NewWorld(P, simnet.GigE)
		results := comm.Run(w, func(p *comm.Proc) []EpochStats {
			return TrainSGD(p, ds.Shard(p.Rank(), P), SGDConfig{
				Loss: Logistic, LR: 0.5, BatchPerNode: 100, Epochs: 1,
				Mode: mode, Algorithm: core.SSARRecDouble, Seed: 7,
			})
		})
		return results[0][0].CommTime
	}
	dense, sparse := commT(CommDense), commT(CommSparse)
	if sparse >= dense {
		t.Fatalf("sparse comm (%g) not faster than dense (%g)", sparse, dense)
	}
	if dense/sparse < 2 {
		t.Fatalf("sparse comm speedup %.2f, want ≥2x on this instance", dense/sparse)
	}
}

func TestSCDConvergesSparseAndDense(t *testing.T) {
	ds := data.SyntheticSparse(data.SparseConfig{
		Rows: 1000, Dim: 800, NNZPerRow: 30,
		HotFraction: 0.2, ClusterBias: 0.7, NoiseRate: 0.01, Seed: 13,
	})
	P := 4
	for _, sparse := range []bool{true, false} {
		w := comm.NewWorld(P, testNet)
		results := comm.Run(w, func(p *comm.Proc) []EpochStats {
			return TrainSCD(p, ds.Shard(p.Rank(), P), SCDConfig{
				Loss: Logistic, LR: 6, CoordsPerIter: 50,
				ItersPerEpoch: 40, Epochs: 5, Sparse: sparse, Seed: 17,
			})
		})
		final := results[0][len(results[0])-1]
		if final.Accuracy < 0.85 {
			t.Fatalf("sparse=%v: final accuracy %g, want ≥0.85", sparse, final.Accuracy)
		}
	}
}

func TestSCDSparseAllgatherFasterThanDense(t *testing.T) {
	// §8.2: sparse allgather gave a 5.3× communication speedup over the
	// dense allgather on the URL run. Check the direction and a ≥2× gap.
	ds := data.SyntheticSparse(data.SparseConfig{
		Rows: 500, Dim: 20000, NNZPerRow: 20,
		HotFraction: 0.1, ClusterBias: 0.5, NoiseRate: 0.01, Seed: 19,
	})
	P := 8
	commT := func(sparse bool) float64 {
		w := comm.NewWorld(P, simnet.GigE)
		results := comm.Run(w, func(p *comm.Proc) []EpochStats {
			return TrainSCD(p, ds.Shard(p.Rank(), P), SCDConfig{
				Loss: Logistic, LR: 2, CoordsPerIter: 100,
				ItersPerEpoch: 10, Epochs: 1, Sparse: sparse, Seed: 23,
			})
		})
		return results[0][0].CommTime
	}
	sparse, dense := commT(true), commT(false)
	if sparse >= dense || dense/sparse < 2 {
		t.Fatalf("sparse allgather comm %g vs dense %g (%.1fx), want ≥2x", sparse, dense, dense/sparse)
	}
}

func TestSCDMarginCacheConsistency(t *testing.T) {
	// The incremental margin cache must agree with recomputing w·x from
	// scratch — checked implicitly by convergence, and explicitly here by
	// verifying that replicas agree (any cache drift desynchronizes loss).
	ds := data.SyntheticSparse(data.SparseConfig{
		Rows: 400, Dim: 600, NNZPerRow: 15, NoiseRate: 0, Seed: 29,
	})
	P := 4
	w := comm.NewWorld(P, testNet)
	results := comm.Run(w, func(p *comm.Proc) []EpochStats {
		return TrainSCD(p, ds.Shard(p.Rank(), P), SCDConfig{
			Loss: Logistic, LR: 3, CoordsPerIter: 40,
			ItersPerEpoch: 15, Epochs: 2, Sparse: true, Seed: 31,
		})
	})
	for r := 1; r < P; r++ {
		for e := range results[r] {
			if math.Abs(results[r][e].Loss-results[0][e].Loss) > 1e-9 {
				t.Fatalf("rank %d epoch %d: loss diverged", r, e)
			}
		}
	}
}

func TestEvaluateEmptyShard(t *testing.T) {
	empty := &data.SparseDataset{Dim: 10, RowStart: []int32{0}}
	loss, acc := Evaluate(make([]float64, 10), empty, Logistic)
	if loss != 0 || acc != 0 {
		t.Fatal("empty shard must evaluate to zeros")
	}
}

func TestAsyncAggregationConvergesAndOverlaps(t *testing.T) {
	ds := testDataset()
	P := 4
	run := func(async bool) []EpochStats {
		w := comm.NewWorld(P, simnet.GigE)
		results := comm.Run(w, func(p *comm.Proc) []EpochStats {
			return TrainSGD(p, ds.Shard(p.Rank(), P), SGDConfig{
				Loss: Logistic, LR: 1.0, BatchPerNode: 100, Epochs: 6,
				Mode: CommSparse, Algorithm: core.SSARRecDouble,
				Async: async, Seed: 3,
			})
		})
		return results[0]
	}
	sync, async := run(false), run(true)
	// Staleness of one step must not prevent convergence.
	if final := async[len(async)-1]; final.Accuracy < 0.88 {
		t.Fatalf("async final accuracy %g, want ≥0.88", final.Accuracy)
	}
	// Overlap must reduce total epoch time on a slow network.
	var syncT, asyncT float64
	for i := range sync {
		syncT += sync[i].Time
		asyncT += async[i].Time
	}
	if asyncT >= syncT {
		t.Fatalf("async total time %g not faster than sync %g", asyncT, syncT)
	}
}

func TestAsyncDenseModeMatchesLossless(t *testing.T) {
	// Async with the dense algorithm must still converge (the pipeline is
	// algorithm-agnostic).
	ds := testDataset()
	P := 2
	w := comm.NewWorld(P, testNet)
	results := comm.Run(w, func(p *comm.Proc) []EpochStats {
		return TrainSGD(p, ds.Shard(p.Rank(), P), SGDConfig{
			Loss: Logistic, LR: 1.0, BatchPerNode: 100, Epochs: 6,
			Mode: CommDense, Async: true, Seed: 5,
		})
	})
	if final := results[0][len(results[0])-1]; final.Accuracy < 0.88 {
		t.Fatalf("async dense accuracy %g, want ≥0.88", final.Accuracy)
	}
}
