package mlopt

import (
	"math/rand"
	"sort"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// CommMode selects the gradient exchange implementation.
type CommMode int

const (
	// CommDense exchanges full dense gradients with Rabenseifner's
	// allreduce — the "Cray MPI dense" baseline of Table 2.
	CommDense CommMode = iota
	// CommSparse exchanges sparse gradients with a SparCML algorithm.
	CommSparse
)

// SGDConfig configures distributed SGD.
type SGDConfig struct {
	// Loss is the training objective.
	Loss Loss
	// LR is the learning rate.
	LR float64
	// BatchPerNode is the per-node minibatch size (the paper runs "large
	// batches (1,000 × P)", i.e. 1000 per node).
	BatchPerNode int
	// Epochs is the number of dataset passes.
	Epochs int
	// Mode selects dense vs sparse gradient exchange.
	Mode CommMode
	// Algorithm is the SparCML algorithm for CommSparse (Auto by default).
	Algorithm core.Algorithm
	// Device models per-node compute speed; zero value means CPUXeon.
	Device simnet.Device
	// Async enables pipelined (one-step-stale) aggregation: the gradient
	// allreduce is issued nonblocking and applied at the *next* step,
	// overlapping communication with the following batch's computation —
	// MPI-OPT's asynchronous aggregation mode (§7: "sparse, dense,
	// synchronous, and asynchronous aggregation").
	Async bool
	// Schedule, when non-nil, multiplies LR by Schedule(epoch) — MPI-OPT's
	// "parametrized learning rate adaptation strategies" (§7).
	Schedule func(epoch int) float64
	// Seed drives batch sampling.
	Seed int64
}

// EpochStats records one epoch of distributed training. Times are
// simulated (virtual-clock) seconds for this rank.
type EpochStats struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Time is the total simulated time spent in the epoch.
	Time float64
	// CommTime is the portion spent in collective communication.
	CommTime float64
	// Loss is the global mean training loss after the epoch.
	Loss float64
	// Accuracy is the global training accuracy after the epoch.
	Accuracy float64
}

// sgdFlopsPerEntry models the multiply-adds per stored feature touched in
// a forward+backward pass of a linear model.
const sgdFlopsPerEntry = 6

// TrainSGD runs data-parallel minibatch SGD on this rank's shard,
// exchanging gradients every step, and returns per-epoch statistics
// (identical on every rank). Gradients of linear models on sparse data are
// sparse — the experiment of §8.2 exploits exactly this, with no
// sparsification or quantization.
func TrainSGD(p *comm.Proc, shard *data.SparseDataset, cfg SGDConfig) []EpochStats {
	if cfg.Device.FlopsPerSec == 0 {
		cfg.Device = simnet.CPUXeon
	}
	if cfg.BatchPerNode <= 0 {
		cfg.BatchPerNode = 100
	}
	w := make([]float64, shard.Dim)
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p.Rank()+1)))
	stats := make([]EpochStats, 0, cfg.Epochs)
	stepsPerEpoch := (shard.Rows() + cfg.BatchPerNode - 1) / cfg.BatchPerNode
	P := float64(p.Size())

	algOpts := core.Options{Algorithm: cfg.Algorithm}
	if cfg.Mode == CommDense {
		algOpts.Algorithm = core.DenseRabenseifner
	}
	var pending *core.Request

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR
		if cfg.Schedule != nil {
			lr = cfg.LR * cfg.Schedule(epoch)
		}
		epochStart := p.Now()
		commTime := 0.0
		for step := 0; step < stepsPerEpoch; step++ {
			grad, nnzTouched := minibatchGradient(w, shard, cfg, rng)
			p.Compute(cfg.Device.ComputeTime(float64(nnzTouched) * sgdFlopsPerEntry))

			commStart := p.Now()
			var sum *stream.Vector
			if cfg.Async {
				// Pipelined: apply last step's (stale) aggregate and issue
				// this step's exchange in the background.
				if pending != nil {
					sum = pending.Wait(p)
				}
				pending = core.IAllreduce(p, grad, algOpts)
			} else if cfg.Mode == CommDense {
				sum = AllreduceRabenseifnerWrapped(p, grad)
			} else {
				sum = core.Allreduce(p, grad, algOpts)
			}
			commTime += p.Now() - commStart

			if sum != nil {
				applyUpdate(w, sum, lr/P)
				p.Compute(cfg.Device.ComputeTime(float64(sum.NNZ()) * 2))
			}
		}
		// Drain the pipeline at epoch boundaries so reported metrics
		// reflect all issued gradients.
		if pending != nil {
			commStart := p.Now()
			sum := pending.Wait(p)
			pending = nil
			commTime += p.Now() - commStart
			applyUpdate(w, sum, lr/P)
		}
		loss, acc := globalEval(p, w, shard, cfg.Loss)
		stats = append(stats, EpochStats{
			Epoch:    epoch,
			Time:     p.Now() - epochStart,
			CommTime: commTime,
			Loss:     loss,
			Accuracy: acc,
		})
	}
	return stats
}

// AllreduceRabenseifnerWrapped runs the dense baseline on a sparse
// gradient: the vector is densified first (that is the point of the
// baseline — it cannot exploit sparsity) and the full dense vector crosses
// the network.
func AllreduceRabenseifnerWrapped(p *comm.Proc, grad *stream.Vector) *stream.Vector {
	dense := core.AllreduceRabenseifner(p, grad.ToDense(), grad.Op(), grad.ValueBytes(), p.NextTagBase())
	return stream.NewDense(dense, grad.Op())
}

// minibatchGradient computes the summed gradient of the loss over a random
// minibatch, as a sparse stream over the union of the batch's feature
// indices. Returns the stream and the number of stored entries touched
// (for compute-time modeling).
func minibatchGradient(w []float64, shard *data.SparseDataset, cfg SGDConfig, rng *rand.Rand) (*stream.Vector, int) {
	acc := make(map[int32]float64, cfg.BatchPerNode*8)
	touched := 0
	rows := shard.Rows()
	for b := 0; b < cfg.BatchPerNode; b++ {
		i := rng.Intn(rows)
		idx, val := shard.Row(i)
		y := shard.Label[i]
		d := cfg.Loss.DMargin(margin(w, idx, val, y))
		touched += len(idx)
		if d == 0 {
			continue // hinge: correctly classified with margin
		}
		for j, ix := range idx {
			acc[ix] += d * y * val[j]
		}
	}
	scale := 1 / float64(cfg.BatchPerNode)
	idx := make([]int32, 0, len(acc))
	for ix := range acc {
		idx = append(idx, ix)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, len(idx))
	for j, ix := range idx {
		val[j] = acc[ix] * scale
	}
	return stream.NewSparse(shard.Dim, idx, val, stream.OpSum), touched
}

// applyUpdate performs w ← w − lr·g for every present entry of g.
func applyUpdate(w []float64, g *stream.Vector, lr float64) {
	if g.IsDense() {
		for i, x := range g.ToDense() {
			w[i] -= lr * x
		}
		return
	}
	idx, val := g.Pairs()
	for j, ix := range idx {
		w[ix] -= lr * val[j]
	}
}

// globalEval evaluates w on this rank's shard and allreduces the counts so
// every rank reports the global training loss and accuracy. The tiny
// 3-element allreduce is charged to the clock like any other message.
func globalEval(p *comm.Proc, w []float64, shard *data.SparseDataset, loss Loss) (meanLoss, accuracy float64) {
	localLoss, localAcc := Evaluate(w, shard, loss)
	n := float64(shard.Rows())
	sums := core.AllreduceDense(p, []float64{localLoss * n, localAcc * n, n}, stream.OpSum)
	if sums[2] == 0 {
		return 0, 0
	}
	return sums[0] / sums[2], sums[1] / sums[2]
}
