package mlopt

import (
	"math/rand"
	"sort"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// SCDConfig configures distributed stochastic block coordinate descent
// (§8.2: "MPI-OPT's SCD implementation, which follows the distributed
// random block coordinate descent algorithm of [Wright]"). The model
// dimension is partitioned across ranks; each iteration every rank updates
// CoordsPerIter random coordinates from its own slice and the updates are
// exchanged with an allgather — sparse (SparCML) or dense (baseline).
type SCDConfig struct {
	// Loss is the training objective (the paper runs logistic regression).
	Loss Loss
	// LR is the coordinate step size.
	LR float64
	// CoordsPerIter is the number of coordinates each node contributes per
	// iteration (the paper uses 100).
	CoordsPerIter int
	// ItersPerEpoch defines one "dataset pass" worth of iterations.
	ItersPerEpoch int
	// Epochs is the number of passes.
	Epochs int
	// Sparse selects the SparCML sparse allgather; false selects the dense
	// allgather baseline (each node ships its entire model slice).
	Sparse bool
	// Device models per-node compute speed; zero value means CPUXeon.
	Device simnet.Device
	// Seed drives coordinate sampling.
	Seed int64
}

// TrainSCD runs distributed block coordinate descent on this rank's data
// shard and returns per-epoch statistics. Margins m_i = w·x_i are cached
// per local row and updated incrementally from the gathered coordinate
// deltas via a column index, so each iteration costs O(touched entries)
// rather than O(nnz).
func TrainSCD(p *comm.Proc, shard *data.SparseDataset, cfg SCDConfig) []EpochStats {
	if cfg.Device.FlopsPerSec == 0 {
		cfg.Device = simnet.CPUXeon
	}
	if cfg.CoordsPerIter <= 0 {
		cfg.CoordsPerIter = 100
	}
	rank, P := p.Rank(), p.Size()
	dim := shard.Dim
	w := make([]float64, dim)
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(rank+1)*7919))

	// Column index over the local shard: feature → (row, value) list.
	type colEntry struct {
		row int32
		val float64
	}
	cols := make(map[int32][]colEntry)
	for i := 0; i < shard.Rows(); i++ {
		idx, val := shard.Row(i)
		for j, ix := range idx {
			cols[ix] = append(cols[ix], colEntry{int32(i), val[j]})
		}
	}
	// Margin cache (w=0 ⇒ margins start at 0).
	marg := make([]float64, shard.Rows())

	lo, hi := ownedRange(dim, P, rank)
	stats := make([]EpochStats, 0, cfg.Epochs)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := p.Now()
		commTime := 0.0
		for iter := 0; iter < cfg.ItersPerEpoch; iter++ {
			// Pick distinct coordinates from my slice.
			picked := pickCoords(rng, lo, hi, cfg.CoordsPerIter)
			delta := make([]float64, len(picked))
			touched := 0
			for c, j := range picked {
				// Coordinate gradient over the local shard.
				g := 0.0
				for _, e := range cols[j] {
					y := shard.Label[e.row]
					g += cfg.Loss.DMargin(y*marg[e.row]) * y * e.val
				}
				touched += len(cols[j])
				if shard.Rows() > 0 {
					g /= float64(shard.Rows())
				}
				delta[c] = -cfg.LR * g
			}
			p.Compute(cfg.Device.ComputeTime(float64(touched) * 4))

			// Exchange the coordinate updates.
			commStart := p.Now()
			var gathered *stream.Vector
			if cfg.Sparse {
				mine := stream.NewSparse(dim, picked, delta, stream.OpSum)
				gathered = core.SparseAllgather(p, mine)
			} else {
				// Dense baseline: ship the entire slice with the deltas
				// applied, as a dense allgather of model slices.
				slice := make([]float64, hi-lo)
				copy(slice, w[lo:hi])
				for c, j := range picked {
					slice[j-int32(lo)] += delta[c]
				}
				parts := core.AllgatherDense(p, slice, stream.DefaultValueBytes, p.NextTagBase())
				full := make([]float64, 0, dim)
				for _, part := range parts {
					full = append(full, part...)
				}
				diff := make([]float64, dim)
				for i := range full {
					diff[i] = full[i] - w[i]
				}
				gathered = stream.FromDense(diff, stream.OpSum)
			}
			commTime += p.Now() - commStart

			// Apply updates and refresh the margin cache incrementally.
			applyDeltas := func(ix int32, d float64) {
				if d == 0 {
					return
				}
				w[ix] += d
				for _, e := range cols[ix] {
					marg[e.row] += d * e.val
				}
			}
			if gathered.IsDense() {
				for i, d := range gathered.ToDense() {
					applyDeltas(int32(i), d)
				}
			} else {
				gi, gv := gathered.Pairs()
				for c, ix := range gi {
					applyDeltas(ix, gv[c])
				}
			}
			p.Compute(cfg.Device.ComputeTime(float64(gathered.NNZ()) * 2))
		}
		loss, acc := globalEval(p, w, shard, cfg.Loss)
		stats = append(stats, EpochStats{
			Epoch:    epoch,
			Time:     p.Now() - epochStart,
			CommTime: commTime,
			Loss:     loss,
			Accuracy: acc,
		})
	}
	return stats
}

// ownedRange is the coordinate slice owned by a rank.
func ownedRange(dim, P, rank int) (int, int) {
	lo := rank * dim / P
	hi := (rank + 1) * dim / P
	return lo, hi
}

// pickCoords samples k distinct coordinates from [lo, hi), sorted.
func pickCoords(rng *rand.Rand, lo, hi, k int) []int32 {
	if k > hi-lo {
		k = hi - lo
	}
	seen := make(map[int32]bool, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		j := int32(lo + rng.Intn(hi-lo))
		if seen[j] {
			continue
		}
		seen[j] = true
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
