// Package mlopt reimplements MPI-OPT (paper §7), the authors' from-scratch
// distributed optimization framework: data-parallel SGD and distributed
// stochastic (block) coordinate descent for sparse linear models (logistic
// regression and SVM), with a pluggable communication layer — dense
// MPI-style allreduce or SparCML sparse collectives — and per-epoch
// compute/communication time accounting for the Table 2 experiments.
package mlopt

import (
	"fmt"
	"math"

	"repro/internal/data"
)

// Loss selects the training objective.
type Loss int

const (
	// Logistic is the logistic regression loss log(1 + exp(−y·w·x)).
	Logistic Loss = iota
	// Hinge is the SVM hinge loss max(0, 1 − y·w·x).
	Hinge
)

// String names the loss.
func (l Loss) String() string {
	switch l {
	case Logistic:
		return "LR"
	case Hinge:
		return "SVM"
	default:
		return fmt.Sprintf("Loss(%d)", int(l))
	}
}

// Value returns the per-sample loss at margin m = y·w·x.
func (l Loss) Value(margin float64) float64 {
	switch l {
	case Logistic:
		// Numerically stable log1p(exp(−m)).
		if margin > 35 {
			return math.Exp(-margin)
		}
		return math.Log1p(math.Exp(-margin))
	case Hinge:
		if margin >= 1 {
			return 0
		}
		return 1 - margin
	default:
		panic("mlopt: unknown loss")
	}
}

// DMargin returns dℓ/dm at margin m (the gradient w.r.t. a feature j is
// DMargin · y · x_j).
func (l Loss) DMargin(margin float64) float64 {
	switch l {
	case Logistic:
		// −σ(−m)
		return -1 / (1 + math.Exp(margin))
	case Hinge:
		if margin >= 1 {
			return 0
		}
		return -1
	default:
		panic("mlopt: unknown loss")
	}
}

// margin computes y·w·x for a sparse row.
func margin(w []float64, idx []int32, val []float64, y float64) float64 {
	dot := 0.0
	for j, ix := range idx {
		dot += w[ix] * val[j]
	}
	return y * dot
}

// Evaluate returns the mean loss and accuracy of w over the dataset.
func Evaluate(w []float64, d *data.SparseDataset, loss Loss) (meanLoss, accuracy float64) {
	if d.Rows() == 0 {
		return 0, 0
	}
	totalLoss := 0.0
	correct := 0
	for i := 0; i < d.Rows(); i++ {
		idx, val := d.Row(i)
		m := margin(w, idx, val, d.Label[i])
		totalLoss += loss.Value(m)
		if m > 0 {
			correct++
		}
	}
	n := float64(d.Rows())
	return totalLoss / n, float64(correct) / n
}
