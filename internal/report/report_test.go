package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantiles(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if got := s.Median(); got != 3 {
		t.Fatalf("median = %g, want 3", got)
	}
	q25, q75 := s.IQR()
	if q25 != 2 || q75 != 4 {
		t.Fatalf("IQR = (%g, %g), want (2, 4)", q25, q75)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("min = %g", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Fatalf("max = %g", got)
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("mean = %g", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	var s Sample
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q25 = %g, want 2.5", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	var s Sample
	for _, f := range []func(){
		func() { s.Quantile(0.5) },
		func() { s.Add(1); s.Quantile(-0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(values []float64, qa, qb float64) bool {
		if len(values) == 0 {
			return true
		}
		var s Sample
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5e-6)
	tb.AddRow("a-much-longer-name", 42)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[2], "1.5µs") {
		t.Fatalf("float not formatted as duration: %q", lines[2])
	}
	// Header columns must align with the widest row.
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRowRaw("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", buf.String())
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5e-9:   "5.0ns",
		1.5e-6: "1.5µs",
		2e-3:   "2.00ms",
		1.25:   "1.25s",
		600:    "10.0min",
		86400:  "24.0h",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		100:     "100B",
		2048:    "2.0KiB",
		5 << 20: "5.0MiB",
		3 << 30: "3.00GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPow2Range(t *testing.T) {
	got := Pow2Range(2, 64)
	want := []int{2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGeomRange(t *testing.T) {
	got := GeomRange(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad range")
		}
	}()
	GeomRange(10, 1, 3)
}
