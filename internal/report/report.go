// Package report provides the experiment-harness utilities shared by the
// cmd/ tools and benchmarks: repeated measurements with 25/75 percentile
// quantiles (the paper's micro-benchmark methodology, §8.1: "we conduct
// five experiments with newly generated data, while running each one for
// ten times ... we state the 25 and 75 percentage quantiles"), aligned
// table printing, CSV output, and geometric parameter sweeps.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Sample holds repeated measurements of one configuration.
type Sample struct {
	values []float64
}

// Add records one measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		panic("report: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("report: quantile out of range")
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// IQR returns the 25th and 75th percentiles, the error bars of Figure 3.
func (s *Sample) IQR() (q25, q75 float64) {
	return s.Quantile(0.25), s.Quantile(0.75)
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSeconds(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowRaw appends pre-formatted cells.
func (t *Table) AddRowRaw(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
			}
		}
		return b.String()
	}
	fmt.Fprintln(w, line(t.header))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// WriteCSV writes the table as CSV (no quoting; cells must not contain
// commas — ours never do).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Emit writes the table as CSV when csv is set, as an aligned table
// otherwise — the shared output switch of the cmd tools.
func (t *Table) Emit(w io.Writer, csv bool) error {
	if csv {
		return t.WriteCSV(w)
	}
	t.Fprint(w)
	return nil
}

// FormatSeconds renders a duration in seconds with an adaptive unit.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.1fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.2fs", s)
	case s < 7200:
		return fmt.Sprintf("%.1fmin", s/60)
	default:
		return fmt.Sprintf("%.1fh", s/3600)
	}
}

// FormatBytes renders a byte count with an adaptive unit.
func FormatBytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// Pow2Range returns {from, 2·from, ..., to} (inclusive when to is a
// power-of-two multiple of from).
func Pow2Range(from, to int) []int {
	var out []int
	for v := from; v <= to; v *= 2 {
		out = append(out, v)
	}
	return out
}

// GeomRange returns n geometrically spaced values from lo to hi inclusive.
func GeomRange(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("report: invalid geometric range")
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
