// Package topk implements the gradient sparsification used by Top-K SGD
// (paper §2.2, §8.3, §8.4): selecting the k largest-magnitude components of
// a gradient vector, either globally or per bucket of consecutive
// coordinates (the paper selects e.g. k=4 out of every 512 consecutive
// entries), together with the error-feedback residual accumulator of
// Algorithm 1/2.
package topk

import (
	"math"

	"repro/internal/stream"
)

// Select returns the indices of the k largest-magnitude entries of v, in
// ascending index order. Ties are broken toward lower indices, making the
// selection deterministic. If k >= len(v) all indices are returned.
func Select(v []float64, k int) []int32 {
	if k < 0 {
		panic("topk: negative k")
	}
	if k >= len(v) {
		out := make([]int32, len(v))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	if k == 0 {
		return nil
	}
	// Min-heap of size k over (|value|, -index) so the smallest retained
	// magnitude sits at the root; ties prefer keeping the lower index.
	h := make([]heapItem, 0, k)
	for i, x := range v {
		m := math.Abs(x)
		if len(h) < k {
			h = append(h, heapItem{m, int32(i)})
			siftUp(h, len(h)-1)
			continue
		}
		if less(heapItem{m, int32(i)}, h[0]) {
			continue
		}
		h[0] = heapItem{m, int32(i)}
		siftDown(h, 0)
	}
	out := make([]int32, len(h))
	for i, it := range h {
		out[i] = it.idx
	}
	sortIdx(out)
	return out
}

type heapItem struct {
	mag float64
	idx int32
}

// less orders items by magnitude, breaking ties by preferring higher index
// as "smaller" so that lower indices survive eviction.
func less(a, b heapItem) bool {
	if a.mag != b.mag {
		return a.mag < b.mag
	}
	return a.idx > b.idx
}

func siftUp(h []heapItem, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []heapItem, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && less(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

func sortIdx(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
		if i >= 64 {
			// Fall back for large k: shell sort pass covers the rest.
			shellSort(a)
			return
		}
	}
}

func shellSort(a []int32) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j] < a[j-gap]; j -= gap {
				a[j], a[j-gap] = a[j-gap], a[j]
			}
		}
	}
}

// Sparsify returns a sparse stream holding the k largest-magnitude entries
// of v (global selection).
func Sparsify(v []float64, k int) *stream.Vector {
	idx := Select(v, k)
	val := make([]float64, len(idx))
	for i, ix := range idx {
		val[i] = v[ix]
	}
	return stream.NewSparse(len(v), idx, val, stream.OpSum)
}

// SparsifyBuckets splits v into buckets of `bucket` consecutive coordinates
// and keeps the k largest-magnitude entries of each bucket (the per-bucket
// TopK of §8.3: "we select k = 8 and 16 entries from every bucket of 512
// consecutive elements"). The final short bucket keeps min(k, len) entries.
func SparsifyBuckets(v []float64, bucket, k int) *stream.Vector {
	if bucket <= 0 {
		panic("topk: bucket must be positive")
	}
	idx := make([]int32, 0, (len(v)/bucket+1)*k)
	val := make([]float64, 0, cap(idx))
	for lo := 0; lo < len(v); lo += bucket {
		hi := lo + bucket
		if hi > len(v) {
			hi = len(v)
		}
		for _, rel := range Select(v[lo:hi], k) {
			ix := int32(lo) + rel
			idx = append(idx, ix)
			val = append(val, v[ix])
		}
	}
	return stream.NewSparse(len(v), idx, val, stream.OpSum)
}

// Residual is the error-feedback accumulator of Algorithm 1/2: components
// not selected for transmission accumulate locally and are re-added to the
// next gradient ("The value of the components which are not chosen is
// accumulated, and added to the gradient vector of the next iteration").
type Residual struct {
	acc []float64
}

// NewResidual creates a zeroed accumulator of dimension n.
func NewResidual(n int) *Residual {
	return &Residual{acc: make([]float64, n)}
}

// Dim returns the accumulator dimension.
func (r *Residual) Dim() int { return len(r.acc) }

// Accumulate adds grad (scaled by lr) into the residual and returns the
// accumulator acc_t = eps_{t-1} + lr·grad. The returned slice is the
// internal buffer; callers must not retain it across calls.
func (r *Residual) Accumulate(grad []float64, lr float64) []float64 {
	if len(grad) != len(r.acc) {
		panic("topk: gradient dimension mismatch")
	}
	for i, g := range grad {
		r.acc[i] += lr * g
	}
	return r.acc
}

// Extract selects the per-bucket TopK of the accumulator, removes the
// selected entries from the residual (eps_t = acc_t − TopK(acc_t)), and
// returns them as a sparse stream. bucket<=0 selects globally.
func (r *Residual) Extract(bucket, k int) *stream.Vector {
	var out *stream.Vector
	if bucket <= 0 {
		out = Sparsify(r.acc, k)
	} else {
		out = SparsifyBuckets(r.acc, bucket, k)
	}
	idx, _ := out.Pairs()
	for _, ix := range idx {
		r.acc[ix] = 0
	}
	return out
}

// ExtractSpan is Extract restricted to the coordinate range [lo, hi) — one
// layer's slice of the flat parameter buffer. Used for layer-wise gradient
// exchange (§8.3). The returned stream is over the full dimension with
// global indices; selected entries are removed from the residual.
func (r *Residual) ExtractSpan(lo, hi, bucket, k int) *stream.Vector {
	if lo < 0 || hi > len(r.acc) || lo > hi {
		panic("topk: bad span")
	}
	sub := r.acc[lo:hi]
	var local *stream.Vector
	if bucket <= 0 {
		local = Sparsify(sub, k)
	} else {
		local = SparsifyBuckets(sub, bucket, k)
	}
	// Tiny spans can trip the automatic dense switch; the pair view is
	// needed regardless of representation.
	local.Sparsify()
	idx, val := local.Pairs()
	global := make([]int32, len(idx))
	for i, ix := range idx {
		global[i] = ix + int32(lo)
		r.acc[global[i]] = 0
	}
	return stream.NewSparse(len(r.acc), global, append([]float64(nil), val...), stream.OpSum)
}

// Norm returns the L2 norm of the residual, used to track error-feedback
// magnitude in convergence experiments.
func (r *Residual) Norm() float64 {
	s := 0.0
	for _, x := range r.acc {
		s += x * x
	}
	return math.Sqrt(s)
}

// Reset zeroes the accumulator.
func (r *Residual) Reset() {
	for i := range r.acc {
		r.acc[i] = 0
	}
}
