package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectBasic(t *testing.T) {
	v := []float64{0.1, -5, 2, 0, 4.5, -4.6}
	got := Select(v, 3)
	want := []int32{1, 4, 5} // magnitudes 5, 4.5, 4.6
	if len(got) != len(want) {
		t.Fatalf("Select = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Select = %v, want %v", got, want)
		}
	}
}

func TestSelectKLargerThanLen(t *testing.T) {
	got := Select([]float64{1, 2}, 10)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Select = %v, want [0 1]", got)
	}
}

func TestSelectZeroK(t *testing.T) {
	if got := Select([]float64{1, 2, 3}, 0); len(got) != 0 {
		t.Fatalf("Select(k=0) = %v, want empty", got)
	}
}

func TestSelectTieBreaksTowardLowerIndex(t *testing.T) {
	v := []float64{1, -1, 1, 1}
	got := Select(v, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("tie break wrong: %v, want [0 1]", got)
	}
}

// Property: the selected set contains the k largest magnitudes — every
// selected magnitude >= every unselected magnitude.
func TestQuickSelectIsTopK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := rng.Intn(n + 1)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		sel := Select(v, k)
		if len(sel) != min(k, n) {
			return false
		}
		chosen := make(map[int32]bool, len(sel))
		minChosen := math.Inf(1)
		for _, ix := range sel {
			chosen[ix] = true
			if m := math.Abs(v[ix]); m < minChosen {
				minChosen = m
			}
		}
		for i, x := range v {
			if !chosen[int32(i)] && math.Abs(x) > minChosen {
				return false
			}
		}
		// Indices must come back sorted.
		return sort.SliceIsSorted(sel, func(i, j int) bool { return sel[i] < sel[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSparsifyValues(t *testing.T) {
	v := []float64{0, -3, 1, 7}
	s := Sparsify(v, 2)
	if s.NNZ() != 2 || s.Get(1) != -3 || s.Get(3) != 7 {
		t.Fatalf("Sparsify wrong: %v", s)
	}
}

func TestSparsifyBucketsSelectsPerBucket(t *testing.T) {
	// Two buckets of 4; one huge value in bucket 0 should not starve
	// bucket 1's selection.
	v := []float64{100, 99, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	s := SparsifyBuckets(v, 4, 2)
	if s.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", s.NNZ())
	}
	for _, ix := range []int{0, 1, 6, 7} {
		if s.Get(ix) != v[ix] {
			t.Fatalf("coordinate %d missing from per-bucket selection", ix)
		}
	}
}

func TestSparsifyBucketsShortTail(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5} // bucket=4 → tail bucket has 1 element
	s := SparsifyBuckets(v, 4, 2)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (2 from first bucket + 1 tail)", s.NNZ())
	}
	if s.Get(4) != 5 {
		t.Fatal("tail bucket entry missing")
	}
}

func TestResidualErrorFeedbackInvariant(t *testing.T) {
	// Invariant of Algorithm 1: sent + residual == accumulated, at every
	// step, for every coordinate.
	rng := rand.New(rand.NewSource(5))
	n := 64
	r := NewResidual(n)
	total := make([]float64, n) // sum of all lr·grad so far
	sent := make([]float64, n)  // sum of all transmitted entries
	for step := 0; step < 20; step++ {
		grad := make([]float64, n)
		for i := range grad {
			grad[i] = math.Round(rng.NormFloat64()*16) / 16
		}
		lr := 0.5
		r.Accumulate(grad, lr)
		for i, g := range grad {
			total[i] += lr * g
		}
		out := r.Extract(16, 2)
		idx, val := out.Pairs()
		for i, ix := range idx {
			sent[ix] += val[i]
		}
		for i := 0; i < n; i++ {
			if math.Abs(total[i]-(sent[i]+r.acc[i])) > 1e-12 {
				t.Fatalf("step %d coord %d: total=%g sent+res=%g", step, i, total[i], sent[i]+r.acc[i])
			}
		}
	}
}

func TestResidualExtractZeroesSelected(t *testing.T) {
	r := NewResidual(8)
	r.Accumulate([]float64{5, 0, 0, 1, 0, 0, 0, 2}, 1)
	out := r.Extract(0, 2)
	if out.Get(0) != 5 || out.Get(7) != 2 {
		t.Fatalf("extract wrong: %v", out)
	}
	if r.acc[0] != 0 || r.acc[7] != 0 {
		t.Fatal("selected entries must be zeroed in the residual")
	}
	if r.acc[3] != 1 {
		t.Fatal("unselected entry must remain in the residual")
	}
}

func TestResidualNormAndReset(t *testing.T) {
	r := NewResidual(4)
	r.Accumulate([]float64{3, 4, 0, 0}, 1)
	if got := r.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %g, want 5", got)
	}
	r.Reset()
	if r.Norm() != 0 {
		t.Fatal("Reset did not zero the residual")
	}
}

func TestSelectLargeKUsesShellSortPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := make([]float64, 1000)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	sel := Select(v, 300)
	if !sort.SliceIsSorted(sel, func(i, j int) bool { return sel[i] < sel[j] }) {
		t.Fatal("large-k selection not sorted")
	}
	if len(sel) != 300 {
		t.Fatalf("len = %d, want 300", len(sel))
	}
}

func BenchmarkSelect1MTop1Percent(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(v, len(v)/100)
	}
}

func BenchmarkSparsifyBuckets512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SparsifyBuckets(v, 512, 4)
	}
}
