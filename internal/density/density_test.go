package density

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpectedKSingleNode(t *testing.T) {
	if got := ExpectedKUniform(1000, 50, 1); math.Abs(got-50) > 1e-9 {
		t.Fatalf("P=1: E[K] = %g, want 50", got)
	}
}

func TestExpectedKSaturatesAtN(t *testing.T) {
	if got := ExpectedKUniform(100, 100, 5); got != 100 {
		t.Fatalf("k=N: E[K] = %g, want 100", got)
	}
	if got := ExpectedKUniform(100, 40, 1000); got > 100 || got < 99 {
		t.Fatalf("huge P: E[K] = %g, want ≈100", got)
	}
}

func TestExpectedKMonotoneInP(t *testing.T) {
	prev := 0.0
	for p := 1; p <= 128; p *= 2 {
		e := ExpectedKUniform(1<<20, 1000, p)
		if e < prev {
			t.Fatalf("E[K] decreased at P=%d", p)
		}
		prev = e
	}
}

func TestClosedFormsAgree(t *testing.T) {
	for _, tc := range []struct{ n, k, p int }{
		{512, 8, 2}, {512, 64, 16}, {512, 500, 4},
		{1 << 16, 100, 32}, {1000, 1, 50},
	} {
		a := ExpectedKUniform(tc.n, tc.k, tc.p)
		b := ExpectedKInclusionExclusion(tc.n, tc.k, tc.p)
		if math.Abs(a-b) > 1e-6*a+1e-9 {
			t.Fatalf("n=%d k=%d p=%d: uniform=%g inclusion-exclusion=%g", tc.n, tc.k, tc.p, a, b)
		}
	}
}

func TestQuickClosedFormsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(1<<14)
		k := rng.Intn(n)
		p := 1 + rng.Intn(30)
		a := ExpectedKUniform(n, k, p)
		b := ExpectedKInclusionExclusion(n, k, p)
		// The alternating sum cancels catastrophically as P grows; within
		// its documented domain it agrees to ~1e-4 relative.
		return math.Abs(a-b) <= 1e-4*math.Max(a, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionBoundDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(1<<14)
		k := rng.Intn(n)
		p := 1 + rng.Intn(200)
		return ExpectedKUniform(n, k, p) <= UnionBound(n, k, p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedKMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, k, p := 2048, 100, 16
	const trials = 200
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		sets := make([][]int32, p)
		for i := range sets {
			seen := make(map[int32]bool, k)
			for len(sets[i]) < k {
				ix := int32(rng.Intn(n))
				if !seen[ix] {
					seen[ix] = true
					sets[i] = append(sets[i], ix)
				}
			}
		}
		sum += float64(MeasureK(sets))
	}
	emp := sum / trials
	want := ExpectedKUniform(n, k, p)
	if math.Abs(emp-want) > 0.02*want {
		t.Fatalf("Monte Carlo E[K] = %g, closed form %g", emp, want)
	}
}

func TestGrowthFigure7Shape(t *testing.T) {
	// Figure 7 (N=512): growth ≈ P for small k, and approaches N/k as k→N.
	n := 512
	if g := Growth(n, 1, 8); math.Abs(g-8) > 0.1 {
		t.Fatalf("growth(k=1,P=8) = %g, want ≈8", g)
	}
	if g := Growth(n, n, 8); g != 1 {
		t.Fatalf("growth(k=N) = %g, want 1", g)
	}
	// Growth is monotone decreasing in k for fixed P.
	prev := math.Inf(1)
	for k := 1; k <= n; k *= 2 {
		g := Growth(n, k, 16)
		if g > prev+1e-9 {
			t.Fatalf("growth increased at k=%d", k)
		}
		prev = g
	}
}

func TestReducedDensityFigure1Shape(t *testing.T) {
	// Figure 1: at 5–10% per-node density and large node counts the reduced
	// vector becomes dense ("reducing across a large number of nodes cans
	// cause the reduced vector to become dense").
	n := 270000 // ~ResNet20 parameter count
	if d := ReducedDensity(n, 0.05, 64); d < 0.9 {
		t.Fatalf("5%% per node across 64 nodes: reduced density %g, want >0.9", d)
	}
	// At very high sparsity (0.1%) and few nodes, the result stays sparse.
	if d := ReducedDensity(n, 0.001, 4); d > 0.01 {
		t.Fatalf("0.1%% per node across 4 nodes: reduced density %g, want <0.01", d)
	}
}

func TestSpeedupCap(t *testing.T) {
	// Lemma 5.2 example: κ = 0.5 yields max speedup 4×.
	if got := SpeedupCap(0.5); got != 4 {
		t.Fatalf("SpeedupCap(0.5) = %g, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for κ=0")
		}
	}()
	SpeedupCap(0)
}

func TestMeasureK(t *testing.T) {
	sets := [][]int32{{1, 2, 3}, {3, 4}, {}, {1}}
	if got := MeasureK(sets); got != 4 {
		t.Fatalf("MeasureK = %d, want 4", got)
	}
}

func TestPanicsOnInvalid(t *testing.T) {
	for _, f := range []func(){
		func() { ExpectedKUniform(0, 1, 1) },
		func() { ExpectedKUniform(10, -1, 1) },
		func() { ExpectedKUniform(10, 1, 0) },
		func() { ExpectedKInclusionExclusion(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// clusteredSets draws P index sets of k distinct indices each from the
// hot-set distribution ExpectedKClustered models: probability hotMass of
// landing in the first ⌈hotFrac·n⌉ coordinates, uniform otherwise.
func clusteredSets(rng *rand.Rand, n, k, p int, hotFrac, hotMass float64) [][]int32 {
	hot := int(math.Ceil(hotFrac * float64(n)))
	if hot < 1 {
		hot = 1
	}
	sets := make([][]int32, p)
	for r := range sets {
		seen := map[int32]bool{}
		for len(sets[r]) < k {
			var ix int32
			if rng.Float64() < hotMass {
				ix = int32(rng.Intn(hot))
			} else {
				ix = int32(rng.Intn(n))
			}
			if seen[ix] {
				continue
			}
			seen[ix] = true
			sets[r] = append(sets[r], ix)
		}
	}
	return sets
}

func TestExpectedKClusteredMatchesMeasurement(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, k, P := 1<<16, 3000, 16
	hf, hm := 0.1, 0.7
	measured := float64(MeasureK(clusteredSets(rng, n, k, P, hf, hm)))
	clustered := ExpectedKClustered(n, k, P, hf, hm)
	uniform := ExpectedKUniform(n, k, P)
	if rel := math.Abs(clustered-measured) / measured; rel > 0.15 {
		t.Fatalf("clustered closed form %0.f vs measured %0.f (rel err %.0f%%)",
			clustered, measured, rel*100)
	}
	// The uniform worst case must be a clear overestimate on this shape —
	// the skew this model exists to remove.
	if uniform < 1.4*measured {
		t.Fatalf("uniform model %0.f does not overestimate measured %0.f as expected",
			uniform, measured)
	}
}

func TestExpectedKClusteredLimits(t *testing.T) {
	// All mass uniform (hotMass=0) approaches the uniform closed form for
	// k << N (the Poisson approximation of distinct sampling).
	n, k, p := 1<<20, 200, 8
	flat := ExpectedKClustered(n, k, p, 0.5, 0)
	uni := ExpectedKUniform(n, k, p)
	if rel := math.Abs(flat-uni) / uni; rel > 0.01 {
		t.Fatalf("hotMass=0 clustered %0.f vs uniform %0.f (rel err %.2f%%)", flat, uni, rel*100)
	}
	// Saturation: k >= n collapses to n.
	if got := ExpectedKClustered(100, 100, 4, 0.1, 0.7); got != 100 {
		t.Fatalf("k=n must give n, got %g", got)
	}
	// More concentration → less fill-in, monotonically.
	prev := math.Inf(1)
	for _, hm := range []float64{0.1, 0.4, 0.7, 0.95} {
		e := ExpectedKClustered(1<<16, 2000, 16, 0.05, hm)
		if e >= prev {
			t.Fatalf("E[K] must fall as hot mass grows: %g then %g at mass %g", prev, e, hm)
		}
		prev = e
	}
	// Never above the union bound or below one rank's contribution.
	e := ExpectedKClustered(1<<16, 2000, 16, 0.1, 0.7)
	if e > UnionBound(1<<16, 2000, 16) || e < 2000 {
		t.Fatalf("E[K]=%g outside [k, min(N,Pk)]", e)
	}
}

func TestExpectedKClusteredPanicsOnInvalid(t *testing.T) {
	for _, f := range []func(){
		func() { ExpectedKClustered(0, 1, 1, 0.1, 0.5) },
		func() { ExpectedKClustered(10, 1, 1, 0, 0.5) },
		func() { ExpectedKClustered(10, 1, 1, 1.5, 0.5) },
		func() { ExpectedKClustered(10, 1, 1, 0.1, -0.1) },
		func() { ExpectedKClustered(10, 1, 1, 0.1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
