package density

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

func TestExpectedKBlocksSingleBlockMatchesClustered(t *testing.T) {
	for _, c := range []struct {
		n, k, p          int
		hotFrac, hotMass float64
	}{
		{1 << 16, 2000, 16, 0.1, 0.7},
		{1 << 18, 8000, 32, 0.05, 0.9},
		{1 << 14, 100, 4, 0.3, 0.2},
	} {
		a := ExpectedKClustered(c.n, c.k, c.p, c.hotFrac, c.hotMass)
		b := ExpectedKBlocks(c.n, c.k, c.p, []HotBlock{{Frac: c.hotFrac, Mass: c.hotMass}})
		if a != b {
			t.Fatalf("single-block mixture %g diverges from clustered form %g at %+v", b, a, c)
		}
	}
}

func TestExpectedKBlocksLimits(t *testing.T) {
	n, k, p := 1<<20, 200, 8
	// No blocks → the uniform closed form (Poisson approximation, k << N).
	flat := ExpectedKBlocks(n, k, p, nil)
	uni := ExpectedKUniform(n, k, p)
	if rel := math.Abs(flat-uni) / uni; rel > 0.01 {
		t.Fatalf("block-free mixture %0.f vs uniform %0.f (rel err %.2f%%)", flat, uni, rel*100)
	}
	// Saturation collapses to n.
	if got := ExpectedKBlocks(100, 100, 4, []HotBlock{{Frac: 0.1, Mass: 0.7}}); got != 100 {
		t.Fatalf("k=n must give n, got %g", got)
	}
	// Splitting one block into two halves of the mass and width changes
	// nothing: the mixture is linear in disjoint blocks.
	one := ExpectedKBlocks(1<<16, 2000, 16, []HotBlock{{Frac: 0.1, Mass: 0.8}})
	two := ExpectedKBlocks(1<<16, 2000, 16, []HotBlock{{Frac: 0.05, Mass: 0.4}, {Frac: 0.05, Mass: 0.4}})
	if rel := math.Abs(one-two) / one; rel > 1e-9 {
		t.Fatalf("split-block mixture %g diverges from single block %g", two, one)
	}
	// Bounded by [k, min(N, Pk)].
	e := ExpectedKBlocks(1<<16, 2000, 16, []HotBlock{{Frac: 0.02, Mass: 0.5}, {Frac: 0.03, Mass: 0.3}})
	if e > UnionBound(1<<16, 2000, 16) || e < 2000 {
		t.Fatalf("E[K]=%g outside [k, min(N,Pk)]", e)
	}
}

func TestExpectedKBlocksPanicsOnInvalid(t *testing.T) {
	for _, f := range []func(){
		func() { ExpectedKBlocks(0, 1, 1, nil) },
		func() { ExpectedKBlocks(10, 1, 1, []HotBlock{{Frac: 0, Mass: 0.5}}) },
		func() { ExpectedKBlocks(10, 1, 1, []HotBlock{{Frac: 0.5, Mass: -0.1}}) },
		func() { ExpectedKBlocks(10, 1, 1, []HotBlock{{Frac: 0.6, Mass: 0.3}, {Frac: 0.6, Mass: 0.3}}) },
		func() { ExpectedKBlocks(10, 1, 1, []HotBlock{{Frac: 0.2, Mass: 0.6}, {Frac: 0.2, Mass: 0.6}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestExpectedKBlocksMixtureAccuracy prices the scenario generator's
// multi-modal mixture: supports drawn from a three-block scenario must
// measure a union within 15% of the closed form — the same accuracy bar
// the single-block form meets — while the uniform worst case clearly
// overestimates.
func TestExpectedKBlocksMixtureAccuracy(t *testing.T) {
	const (
		n, P = 1 << 16, 16
		d    = 0.02
		hotM = 0.8
	)
	sc := scenario.Scenario{
		Name: "mixture-pricing", N: n, P: P, Calls: 4,
		Density: scenario.Const(d),
		Blocks: []scenario.Block{
			{Start: 0.05, Frac: 0.02, Weight: 0.5},
			{Start: 0.40, Frac: 0.03, Weight: 0.3},
			{Start: 0.75, Frac: 0.015, Weight: 0.2},
		},
		HotMass: scenario.Const(hotM),
	}
	// Each block's absolute mass is the hot mass split by weight.
	blocks := []HotBlock{
		{Frac: 0.02, Mass: hotM * 0.5},
		{Frac: 0.03, Mass: hotM * 0.3},
		{Frac: 0.015, Mass: hotM * 0.2},
	}
	k := int(math.Round(d * n))
	want := ExpectedKBlocks(n, k, P, blocks)

	g := sc.Generator(scenario.NewKey(9))
	var sumMeasured float64
	calls := 0
	for vs := g.Next(); vs != nil; vs = g.Next() {
		sets := make([][]int32, len(vs))
		for r, v := range vs {
			sets[r], _ = v.Pairs()
		}
		sumMeasured += float64(MeasureK(sets))
		calls++
	}
	measured := sumMeasured / float64(calls)
	if rel := math.Abs(want-measured) / measured; rel > 0.15 {
		t.Fatalf("mixture closed form %0.f vs measured %0.f (rel err %.0f%%)", want, measured, rel*100)
	}
	if uniform := ExpectedKUniform(n, k, P); uniform < 1.2*measured {
		t.Fatalf("uniform model %0.f should clearly overestimate measured %0.f on this shape", uniform, measured)
	}
}
