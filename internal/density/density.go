// Package density implements the paper's stochastic density analysis
// (Appendix B): closed forms for the expected number of non-zero entries
// K = |∪ᵢ Hᵢ| of a reduction result when each node contributes k non-zero
// indices, plus empirical fill-in measurement used for Figure 1.
package density

import "math"

// ExpectedKUniform returns E[K] when each of P nodes draws k indices
// uniformly from [0, N): E[K] = N·(1 − (1 − k/N)^P). This equals the
// inclusion–exclusion closed form of Appendix B.1 and is "a worst-case
// scenario in terms of probabilistic growth of the intermediate results".
func ExpectedKUniform(n, k, p int) float64 {
	if n <= 0 || k < 0 || p <= 0 {
		panic("density: invalid parameters")
	}
	if k >= n {
		return float64(n)
	}
	q := 1 - float64(k)/float64(n)
	return float64(n) * (1 - math.Pow(q, float64(p)))
}

// ExpectedKInclusionExclusion evaluates the paper's explicit alternating
// binomial sum f(k,N,P) = N·Σᵢ (−1)^{i−1} C(P,i) (k/N)^i. It is
// mathematically identical to ExpectedKUniform; both are kept so tests can
// verify the identity (and because the binomial form mirrors the paper's
// Figure 7 derivation). Accurate for P ≤ ~60 before cancellation dominates.
func ExpectedKInclusionExclusion(n, k, p int) float64 {
	if n <= 0 || k < 0 || p <= 0 {
		panic("density: invalid parameters")
	}
	if k >= n {
		return float64(n)
	}
	d := float64(k) / float64(n)
	sum := 0.0
	binom := 1.0 // C(P, i), updated incrementally
	sign := 1.0
	for i := 1; i <= p; i++ {
		binom = binom * float64(p-i+1) / float64(i)
		sum += sign * binom * math.Pow(d, float64(i))
		sign = -sign
	}
	return float64(n) * sum
}

// ExpectedKClustered returns E[K] under a blocked (hot-set) support model:
// each of the P·k drawn indices lands in a hot block of ⌈hotFrac·N⌉
// coordinates with probability hotMass, uniformly in [0, N) otherwise —
// the structure of real gradient supports, where a shared hot region
// (embedding rows, output layers) absorbs most of the mass. Summing the
// per-coordinate hit probabilities over both regions gives the closed form
//
//	E[K] = h·(1 − (1 − q_hot)^{kP}) + (N − h)·(1 − (1 − q_cold)^{kP})
//
// with h = hotFrac·N, q_hot = hotMass/h + (1−hotMass)/N and
// q_cold = (1−hotMass)/N. Draws are modeled as independent (a Poisson-style
// approximation of distinct per-rank sampling, accurate for k ≪ N, the
// regime sparse allreduce targets). Because the hot region saturates, this
// is substantially below ExpectedKUniform — the uniform worst case
// overestimates clustered fill-in and, through the cost model, skews Auto
// toward the dense regime.
//
// Validity range: against the measured union of the `clustered` test
// pattern (hotFrac = 0.1, hotMass = 0.7) the closed form is accurate to
// ~15% across the sparse regime, where ExpectedKUniform overestimates the
// same unions by ~1.65×. The estimate is only as good as its (hotFrac,
// hotMass) parameters — with a mismatched shape (e.g. the defaults applied
// to uniform supports, where the form *under*estimates E[K]) the error can
// flip the δ regime gate near the boundary exactly as the uniform form
// does in the other direction; see core.CostScenario.Support and the
// boundary-value test TestSupportModelGateBoundary.
func ExpectedKClustered(n, k, p int, hotFrac, hotMass float64) float64 {
	if n <= 0 || k < 0 || p <= 0 {
		panic("density: invalid parameters")
	}
	if hotFrac <= 0 || hotFrac > 1 || hotMass < 0 || hotMass > 1 {
		panic("density: hotFrac must be in (0,1], hotMass in [0,1]")
	}
	return ExpectedKBlocks(n, k, p, []HotBlock{{Frac: hotFrac, Mass: hotMass}})
}

// HotBlock is one component of a multi-modal support mixture: a block
// covering Frac of the dimension space that absorbs Mass of each draw's
// probability. Blocks must be disjoint, with ΣFrac ≤ 1 and ΣMass ≤ 1; the
// remaining 1 − ΣMass of the mass draws uniformly over the whole space
// (hot blocks included), matching the scenario generator's mixture.
type HotBlock struct {
	// Frac is the block's width as a fraction of N.
	Frac float64
	// Mass is the probability a single draw lands in this block (before
	// the uniform remainder).
	Mass float64
}

// ExpectedKBlocks generalizes ExpectedKClustered to a mixture of several
// hot blocks — the multi-modal supports of real gradients, where
// embedding rows, output layers, and attention heads each absorb a chunk
// of the mass. With h_b = ⌈Frac_b·N⌉, per-coordinate hit probabilities
// q_b = Mass_b/h_b + (1−ΣMass)/N inside block b and
// q_cold = (1−ΣMass)/N outside every block, summing per-coordinate hit
// probabilities over kP independent draws gives
//
//	E[K] = Σ_b h_b·(1 − (1 − q_b)^{kP}) + (N − Σ_b h_b)·(1 − (1 − q_cold)^{kP})
//
// The independence approximation and validity caveats of
// ExpectedKClustered apply unchanged; with a single block the two forms
// agree exactly.
func ExpectedKBlocks(n, k, p int, blocks []HotBlock) float64 {
	if n <= 0 || k < 0 || p <= 0 {
		panic("density: invalid parameters")
	}
	totalFrac, totalMass := 0.0, 0.0
	for _, b := range blocks {
		if b.Frac <= 0 || b.Mass < 0 {
			panic("density: block Frac must be positive, Mass non-negative")
		}
		totalFrac += b.Frac
		totalMass += b.Mass
	}
	if totalFrac > 1+1e-9 || totalMass > 1+1e-9 {
		panic("density: block fractions and masses must each sum to at most 1")
	}
	if k >= n {
		return float64(n)
	}
	draws := float64(k) * float64(p)
	cold := (1 - totalMass) / float64(n)
	sum := 0.0
	hotCoords := 0.0
	for _, b := range blocks {
		h := math.Ceil(b.Frac * float64(n))
		if h > float64(n) {
			h = float64(n)
		}
		qb := b.Mass/h + cold
		sum += h * (1 - math.Pow(1-qb, draws))
		hotCoords += h
	}
	if hotCoords > float64(n) {
		hotCoords = float64(n)
	}
	return sum + (float64(n)-hotCoords)*(1-math.Pow(1-cold, draws))
}

// UnionBound returns the trivial upper bound min(N, P·k) on K.
func UnionBound(n, k, p int) float64 {
	return math.Min(float64(n), float64(p)*float64(k))
}

// Growth returns the multiplicative growth factor E[K]/k shown in
// Figure 7: how much larger the reduced result is than one node's
// contribution.
func Growth(n, k, p int) float64 {
	if k == 0 {
		return 0
	}
	return ExpectedKUniform(n, k, p) / float64(k)
}

// ReducedDensity returns the expected density E[K]/N of the reduced result
// given per-node density d = k/N, the quantity plotted in Figure 1.
func ReducedDensity(n int, d float64, p int) float64 {
	k := int(math.Round(d * float64(n)))
	return ExpectedKUniform(n, k, p) / float64(n)
}

// MeasureK returns the exact union size |∪ᵢ Hᵢ| of concrete index sets,
// used to validate the closed forms empirically and to measure real
// gradient fill-in for Figure 1.
func MeasureK(sets [][]int32) int {
	seen := make(map[int32]struct{})
	for _, s := range sets {
		for _, ix := range s {
			seen[ix] = struct{}{}
		}
	}
	return len(seen)
}

// SpeedupCap returns the maximum achievable sparse-over-dense allreduce
// speedup 2/κ from Lemma 5.2, where κ = δ/N. ("By exploiting sparsity
// alone ... the achievable speedup of a sparse allreduce is at most 2/κ.")
func SpeedupCap(kappa float64) float64 {
	if kappa <= 0 || kappa > 1 {
		panic("density: kappa must be in (0, 1]")
	}
	return 2 / kappa
}
