// Package quant implements the QSGD stochastic quantization scheme used by
// SparCML for low-precision communication (paper §6): a dense vector is
// split into buckets of B consecutive entries, each bucket is quantized
// independently and stochastically to a small number of levels (2, 4, or 8
// bits per entry), and each bucket carries one full-precision scaling
// factor. Quantization is unbiased (E[decode] = input), which is what
// preserves SGD convergence (Alistarh et al., QSGD).
package quant

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Norm selects the per-bucket scaling factor.
type Norm int

const (
	// NormMax scales by the bucket's max |value|; every input is then within
	// [-scale, +scale], so stochastic rounding is exactly unbiased.
	NormMax Norm = iota
	// NormL2 scales by the bucket's Euclidean norm, as in the original QSGD
	// paper; yields more aggressive variance bounds for dense gradients.
	NormL2
)

func (n Norm) String() string {
	if n == NormL2 {
		return "L2"
	}
	return "max"
}

// Config describes a quantizer.
type Config struct {
	// Bits per entry: 2, 4, or 8 (§6).
	Bits int
	// Bucket is the number of consecutive entries sharing one scaling
	// factor; the paper uses "in the order of 1024" (1024 for collectives,
	// 512 for the DNN experiments).
	Bucket int
	// Norm selects the scaling factor; default NormMax.
	Norm Norm
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Bits {
	case 2, 4, 8:
	default:
		return fmt.Errorf("quant: bits must be 2, 4, or 8 (got %d)", c.Bits)
	}
	if c.Bucket <= 0 {
		return fmt.Errorf("quant: bucket must be positive (got %d)", c.Bucket)
	}
	return nil
}

// Levels returns the number of positive quantization levels L: codes lie in
// [-L, +L]. One bit encodes the sign, the rest the magnitude.
func (c Config) Levels() int { return 1<<(c.Bits-1) - 1 }

// Quantized is a quantized vector: packed signed level codes plus one
// float32 scale per bucket. (The paper sends a "full-precision scaling
// factor"; we use float32 on the wire, which is full precision relative to
// 2–8 bit payloads and matches common QSGD implementations.)
type Quantized struct {
	cfg    Config
	n      int
	scales []float32
	packed []byte // n codes, cfg.Bits each, little-endian within bytes
}

// Encode stochastically quantizes v. The rng drives the stochastic
// rounding; passing the same seed reproduces the encoding bit-for-bit.
func Encode(v []float64, cfg Config, rng *rand.Rand) *Quantized {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	L := float64(cfg.Levels())
	nb := (len(v) + cfg.Bucket - 1) / cfg.Bucket
	q := &Quantized{
		cfg:    cfg,
		n:      len(v),
		scales: make([]float32, nb),
		packed: make([]byte, (len(v)*cfg.Bits+7)/8),
	}
	for b := 0; b < nb; b++ {
		lo := b * cfg.Bucket
		hi := lo + cfg.Bucket
		if hi > len(v) {
			hi = len(v)
		}
		scale := bucketScale(v[lo:hi], cfg.Norm)
		q.scales[b] = float32(scale)
		if scale == 0 {
			continue // all codes stay 0
		}
		for i := lo; i < hi; i++ {
			x := v[i] / scale * L // in [-L, L] for NormMax
			f := math.Floor(x)
			code := int(f)
			if rng.Float64() < x-f {
				code++
			}
			// NormL2 can put |x| above L for outlier coordinates; clamp.
			if code > int(L) {
				code = int(L)
			} else if code < -int(L) {
				code = -int(L)
			}
			q.put(i, code)
		}
	}
	return q
}

func bucketScale(v []float64, norm Norm) float64 {
	switch norm {
	case NormL2:
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	default:
		s := 0.0
		for _, x := range v {
			if a := math.Abs(x); a > s {
				s = a
			}
		}
		return s
	}
}

// put stores the signed code for entry i.
func (q *Quantized) put(i, code int) {
	u := uint(code + q.cfg.Levels()) // bias to unsigned
	bitPos := i * q.cfg.Bits
	byteIdx := bitPos / 8
	shift := uint(bitPos % 8)
	q.packed[byteIdx] |= byte(u << shift)
	if shift+uint(q.cfg.Bits) > 8 {
		q.packed[byteIdx+1] |= byte(u >> (8 - shift))
	}
}

// code retrieves the signed code for entry i.
func (q *Quantized) code(i int) int {
	bitPos := i * q.cfg.Bits
	byteIdx := bitPos / 8
	shift := uint(bitPos % 8)
	u := uint(q.packed[byteIdx] >> shift)
	if shift+uint(q.cfg.Bits) > 8 {
		u |= uint(q.packed[byteIdx+1]) << (8 - shift)
	}
	u &= (1 << q.cfg.Bits) - 1
	return int(u) - q.cfg.Levels()
}

// Dim returns the vector dimension.
func (q *Quantized) Dim() int { return q.n }

// Config returns the quantizer configuration.
func (q *Quantized) Config() Config { return q.cfg }

// Decode reconstructs the (lossy) vector.
func (q *Quantized) Decode() []float64 {
	out := make([]float64, q.n)
	L := float64(q.cfg.Levels())
	for i := range out {
		b := i / q.cfg.Bucket
		out[i] = float64(q.scales[b]) * float64(q.code(i)) / L
	}
	return out
}

// WireBytes returns the transmitted size: packed codes plus one float32
// scale per bucket, plus a 5-byte header (format flag + count), matching
// the stream header convention.
func (q *Quantized) WireBytes() int {
	return 5 + len(q.packed) + 4*len(q.scales)
}

// CompressionRatio returns dense float64 bytes divided by quantized bytes.
func (q *Quantized) CompressionRatio() float64 {
	return float64(8*q.n) / float64(q.WireBytes())
}

// Marshal serializes the quantized vector.
func (q *Quantized) Marshal() []byte {
	buf := make([]byte, 0, 16+len(q.packed)+4*len(q.scales))
	var hdr [16]byte
	hdr[0] = byte(q.cfg.Bits)
	hdr[1] = byte(q.cfg.Norm)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(q.cfg.Bucket))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(q.n))
	buf = append(buf, hdr[:10]...)
	for _, s := range q.scales {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(s))
		buf = append(buf, b[:]...)
	}
	return append(buf, q.packed...)
}

// Unmarshal reverses Marshal.
func Unmarshal(buf []byte) (*Quantized, error) {
	if len(buf) < 10 {
		return nil, fmt.Errorf("quant: short buffer")
	}
	cfg := Config{
		Bits:   int(buf[0]),
		Norm:   Norm(buf[1]),
		Bucket: int(binary.LittleEndian.Uint32(buf[2:])),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(buf[6:]))
	nb := (n + cfg.Bucket - 1) / cfg.Bucket
	packedLen := (n*cfg.Bits + 7) / 8
	if len(buf) != 10+4*nb+packedLen {
		return nil, fmt.Errorf("quant: buffer is %d bytes, want %d", len(buf), 10+4*nb+packedLen)
	}
	q := &Quantized{cfg: cfg, n: n, scales: make([]float32, nb)}
	off := 10
	for i := range q.scales {
		q.scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	q.packed = append([]byte(nil), buf[off:]...)
	return q, nil
}
