package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneBitDecodePreservesSignClassMeans(t *testing.T) {
	v := []float64{3, 1, -2, -4, 2, 0}
	q, errv := EncodeOneBit(v, 6)
	dec := q.Decode()
	// Positive entries decode to the positive mean (3+1+2+0)/4 = 1.5;
	// negatives to (−2−4)/2 = −3.
	for i, x := range v {
		want := 1.5
		if x < 0 {
			want = -3
		}
		if math.Abs(dec[i]-want) > 1e-6 {
			t.Fatalf("coord %d: decode %g, want %g", i, dec[i], want)
		}
		if math.Abs(errv[i]-(x-dec[i])) > 1e-12 {
			t.Fatalf("coord %d: error term wrong", i)
		}
	}
}

func TestOneBitErrorSumsPreserved(t *testing.T) {
	// Within one bucket, decode preserves the total sum of positives and
	// of negatives, so the error terms sum to ~0 per sign class — the
	// property that makes 1-bit SGD with feedback unbiased in aggregate.
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 512)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	_, errv := EncodeOneBit(v, 512)
	var posErr, negErr float64
	for i, x := range v {
		if x >= 0 {
			posErr += errv[i]
		} else {
			negErr += errv[i]
		}
	}
	if math.Abs(posErr) > 1e-4 || math.Abs(negErr) > 1e-4 {
		t.Fatalf("per-class error sums not ~0: %g, %g", posErr, negErr)
	}
}

func TestOneBitCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 1<<16)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	q, _ := EncodeOneBit(v, 1024)
	if r := q.CompressionRatio(); r < 55 || r > 64 {
		t.Fatalf("compression ratio %g, want ~60", r)
	}
}

func TestOneBitMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 1000) // non-multiple of bucket
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	q, _ := EncodeOneBit(v, 128)
	q2, err := UnmarshalOneBit(q.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	a, b := q.Decode(), q2.Decode()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coord %d: %g != %g", i, a[i], b[i])
		}
	}
}

func TestUnmarshalOneBitRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalOneBit([]byte{1, 2}); err == nil {
		t.Fatal("expected error on short buffer")
	}
	q, _ := EncodeOneBit(make([]float64, 64), 16)
	buf := q.Marshal()
	if _, err := UnmarshalOneBit(buf[:len(buf)-1]); err == nil {
		t.Fatal("expected error on truncation")
	}
	buf[0] = 7
	if _, err := UnmarshalOneBit(buf); err == nil {
		t.Fatal("expected error on wrong flag")
	}
}

// Property: decode + error always reconstructs the input exactly.
func TestQuickOneBitLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		bucket := 1 + rng.Intn(256)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		q, errv := EncodeOneBit(v, bucket)
		dec := q.Decode()
		for i := range v {
			if math.Abs(dec[i]+errv[i]-v[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
