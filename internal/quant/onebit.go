package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// OneBit implements 1-bit SGD quantization (Seide et al. 2014), the
// earliest of the quantization lineage the paper builds on (§9: "Seide et
// al. was among the first to propose quantization to reduce the bandwidth
// and latency costs of training deep networks"). Each bucket stores one
// sign bit per entry plus two float32 reconstruction levels — the mean of
// the positive entries and the mean of the negative entries — so decoding
// is unbiased *per sign class*; the per-coordinate quantization error is
// returned for the caller's error-feedback residual, which is what makes
// 1-bit SGD converge.
type OneBit struct {
	n      int
	bucket int
	pos    []float32 // per-bucket mean of positive entries
	neg    []float32 // per-bucket mean of negative entries (≤ 0)
	bits   []byte    // 1 = positive class
}

// EncodeOneBit quantizes v with the given bucket size and returns the
// encoding along with the per-coordinate error (v − decode), which callers
// add to their error-feedback residual.
func EncodeOneBit(v []float64, bucket int) (*OneBit, []float64) {
	if bucket <= 0 {
		panic("quant: bucket must be positive")
	}
	nb := (len(v) + bucket - 1) / bucket
	q := &OneBit{
		n:      len(v),
		bucket: bucket,
		pos:    make([]float32, nb),
		neg:    make([]float32, nb),
		bits:   make([]byte, (len(v)+7)/8),
	}
	for b := 0; b < nb; b++ {
		lo, hi := b*bucket, (b+1)*bucket
		if hi > len(v) {
			hi = len(v)
		}
		var posSum, negSum float64
		var posN, negN int
		for i := lo; i < hi; i++ {
			if v[i] >= 0 {
				posSum += v[i]
				posN++
			} else {
				negSum += v[i]
				negN++
			}
		}
		if posN > 0 {
			q.pos[b] = float32(posSum / float64(posN))
		}
		if negN > 0 {
			q.neg[b] = float32(negSum / float64(negN))
		}
		for i := lo; i < hi; i++ {
			if v[i] >= 0 {
				q.bits[i/8] |= 1 << (i % 8)
			}
		}
	}
	err := make([]float64, len(v))
	dec := q.Decode()
	for i := range v {
		err[i] = v[i] - dec[i]
	}
	return q, err
}

// Dim returns the vector dimension.
func (q *OneBit) Dim() int { return q.n }

// Decode reconstructs the quantized vector.
func (q *OneBit) Decode() []float64 {
	out := make([]float64, q.n)
	for i := range out {
		b := i / q.bucket
		if q.bits[i/8]&(1<<(i%8)) != 0 {
			out[i] = float64(q.pos[b])
		} else {
			out[i] = float64(q.neg[b])
		}
	}
	return out
}

// WireBytes returns the transmitted size: one bit per entry plus two
// float32 levels per bucket plus a 5-byte header.
func (q *OneBit) WireBytes() int {
	return 5 + len(q.bits) + 8*len(q.pos)
}

// CompressionRatio returns dense float64 bytes over quantized bytes
// (~64× for large buckets).
func (q *OneBit) CompressionRatio() float64 {
	return float64(8*q.n) / float64(q.WireBytes())
}

// Marshal serializes the encoding.
func (q *OneBit) Marshal() []byte {
	buf := make([]byte, 0, 9+8*len(q.pos)+len(q.bits))
	var hdr [9]byte
	hdr[0] = 1
	binary.LittleEndian.PutUint32(hdr[1:], uint32(q.bucket))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(q.n))
	buf = append(buf, hdr[:]...)
	for i := range q.pos {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(q.pos[i]))
		binary.LittleEndian.PutUint32(b[4:], math.Float32bits(q.neg[i]))
		buf = append(buf, b[:]...)
	}
	return append(buf, q.bits...)
}

// UnmarshalOneBit reverses Marshal.
func UnmarshalOneBit(buf []byte) (*OneBit, error) {
	if len(buf) < 9 || buf[0] != 1 {
		return nil, fmt.Errorf("quant: not a one-bit payload")
	}
	bucket := int(binary.LittleEndian.Uint32(buf[1:]))
	n := int(binary.LittleEndian.Uint32(buf[5:]))
	if bucket <= 0 || n < 0 {
		return nil, fmt.Errorf("quant: corrupt one-bit header")
	}
	nb := (n + bucket - 1) / bucket
	want := 9 + 8*nb + (n+7)/8
	if len(buf) != want {
		return nil, fmt.Errorf("quant: one-bit payload is %d bytes, want %d", len(buf), want)
	}
	q := &OneBit{n: n, bucket: bucket, pos: make([]float32, nb), neg: make([]float32, nb)}
	off := 9
	for i := 0; i < nb; i++ {
		q.pos[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		q.neg[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
	}
	q.bits = append([]byte(nil), buf[off:]...)
	return q, nil
}
