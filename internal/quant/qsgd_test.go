package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{{2, 512, NormMax}, {4, 1024, NormL2}, {8, 1, NormMax}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", c, err)
		}
	}
	bad := []Config{{3, 512, NormMax}, {4, 0, NormMax}, {0, 512, NormMax}, {16, 512, NormMax}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: expected error", c)
		}
	}
}

func TestLevels(t *testing.T) {
	cases := map[int]int{2: 1, 4: 7, 8: 127}
	for bits, want := range cases {
		if got := (Config{Bits: bits, Bucket: 1}).Levels(); got != want {
			t.Errorf("Levels(%d bits) = %d, want %d", bits, got, want)
		}
	}
}

func TestEncodeDecodeBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{2, 4, 8} {
		v := make([]float64, 2048)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		q := Encode(v, Config{Bits: bits, Bucket: 512, Norm: NormMax}, rng)
		got := q.Decode()
		L := float64(q.cfg.Levels())
		for b := 0; b < 4; b++ {
			scale := float64(q.scales[b])
			for i := b * 512; i < (b+1)*512; i++ {
				// Stochastic rounding moves a value by at most one level.
				if math.Abs(got[i]-v[i]) > scale/L+1e-6 {
					t.Fatalf("bits=%d coord=%d: |%g - %g| > %g", bits, i, got[i], v[i], scale/L)
				}
			}
		}
	}
}

func TestUnbiasednessMaxNorm(t *testing.T) {
	// Average many independent encodings of the same vector; the mean must
	// approach the input (E[Q(v)] = v for max-norm scaling).
	rng := rand.New(rand.NewSource(2))
	v := []float64{0.3, -0.7, 0.01, 1.0, -0.999, 0.5, 0, -0.25}
	n := len(v)
	sum := make([]float64, n)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		q := Encode(v, Config{Bits: 2, Bucket: n, Norm: NormMax}, rng)
		for i, x := range q.Decode() {
			sum[i] += x
		}
	}
	for i := range v {
		mean := sum[i] / trials
		if math.Abs(mean-v[i]) > 0.02 {
			t.Errorf("coord %d: empirical mean %g, want %g", i, mean, v[i])
		}
	}
}

func TestZeroVectorStaysZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 100)
	q := Encode(v, Config{Bits: 4, Bucket: 32, Norm: NormMax}, rng)
	for i, x := range q.Decode() {
		if x != 0 {
			t.Fatalf("coord %d = %g, want 0", i, x)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := make([]float64, 1<<16)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	q := Encode(v, Config{Bits: 4, Bucket: 1024, Norm: NormMax}, rng)
	// 4-bit codes: 8x fewer payload bits than float64 → ratio close to 16
	// minus scale overhead.
	if r := q.CompressionRatio(); r < 14 || r > 16 {
		t.Fatalf("compression ratio = %g, want ~15.9", r)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, bits := range []int{2, 4, 8} {
		v := make([]float64, 777) // non-multiple of bucket
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		q := Encode(v, Config{Bits: bits, Bucket: 128, Norm: NormL2}, rng)
		q2, err := Unmarshal(q.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		a, b := q.Decode(), q2.Decode()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("bits=%d coord=%d: %g != %g", bits, i, a[i], b[i])
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("expected error on short buffer")
	}
	rng := rand.New(rand.NewSource(6))
	q := Encode(make([]float64, 64), Config{Bits: 4, Bucket: 16, Norm: NormMax}, rng)
	buf := q.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-1]); err == nil {
		t.Fatal("expected error on truncated buffer")
	}
	buf[0] = 5 // invalid bits
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("expected error on invalid bits")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	v := make([]float64, 300)
	for i := range v {
		v[i] = math.Sin(float64(i))
	}
	q1 := Encode(v, Config{Bits: 4, Bucket: 64, Norm: NormMax}, rand.New(rand.NewSource(42)))
	q2 := Encode(v, Config{Bits: 4, Bucket: 64, Norm: NormMax}, rand.New(rand.NewSource(42)))
	a, b := q1.Decode(), q2.Decode()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the encoding")
		}
	}
}

// Property: decode error is bounded by one level step for max-norm scaling,
// for arbitrary finite inputs.
func TestQuickBoundedError(t *testing.T) {
	f := func(seed int64, pickBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := []int{2, 4, 8}[int(pickBits)%3]
		n := 1 + rng.Intn(300)
		bucket := 1 + rng.Intn(128)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
		}
		cfg := Config{Bits: bits, Bucket: bucket, Norm: NormMax}
		q := Encode(v, cfg, rng)
		dec := q.Decode()
		L := float64(cfg.Levels())
		for i := range v {
			b := i / bucket
			scale := float64(q.scales[b])
			// float32 scale storage adds relative error ~1e-7.
			if math.Abs(dec[i]-v[i]) > scale/L+1e-6*scale+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode4Bit1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	cfg := Config{Bits: 4, Bucket: 1024, Norm: NormMax}
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(v, cfg, rng)
	}
}

func BenchmarkDecode4Bit1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	q := Encode(v, Config{Bits: 4, Bucket: 1024, Norm: NormMax}, rng)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Decode()
	}
}
