package data

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteLibSVM writes the dataset in LibSVM text format: one line per
// sample, "label idx:val idx:val ...", with 1-based indices as the format
// requires.
func WriteLibSVM(w io.Writer, d *SparseDataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.Rows(); i++ {
		if _, err := fmt.Fprintf(bw, "%g", d.Label[i]); err != nil {
			return err
		}
		idx, val := d.Row(i)
		for j := range idx {
			if _, err := fmt.Fprintf(bw, " %d:%g", idx[j]+1, val[j]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses LibSVM text format. dim, when positive, fixes the
// feature dimension; when zero, the maximum observed index is used.
// Indices in the file are 1-based; out-of-order indices within a row are
// sorted; duplicates are rejected.
func ReadLibSVM(r io.Reader, dim int) (*SparseDataset, error) {
	d := &SparseDataset{RowStart: []int32{0}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	maxIdx := int32(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: line %d: bad label %q", line, fields[0])
		}
		type pair struct {
			ix int32
			v  float64
		}
		pairs := make([]pair, 0, len(fields)-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("data: line %d: bad feature %q", line, f)
			}
			ix, err := strconv.Atoi(f[:colon])
			if err != nil || ix < 1 {
				return nil, fmt.Errorf("data: line %d: bad index %q", line, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad value %q", line, f[colon+1:])
			}
			pairs = append(pairs, pair{int32(ix - 1), v})
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].ix < pairs[b].ix })
		for j := 1; j < len(pairs); j++ {
			if pairs[j].ix == pairs[j-1].ix {
				return nil, fmt.Errorf("data: line %d: duplicate index %d", line, pairs[j].ix+1)
			}
		}
		for _, p := range pairs {
			d.Idx = append(d.Idx, p.ix)
			d.Val = append(d.Val, p.v)
			if p.ix > maxIdx {
				maxIdx = p.ix
			}
		}
		d.RowStart = append(d.RowStart, int32(len(d.Idx)))
		d.Label = append(d.Label, label)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if dim > 0 {
		if int(maxIdx) >= dim {
			return nil, fmt.Errorf("data: index %d exceeds declared dimension %d", maxIdx+1, dim)
		}
		d.Dim = dim
	} else {
		d.Dim = int(maxIdx) + 1
	}
	return d, nil
}
