package data

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func smallSparse() *SparseDataset {
	return SyntheticSparse(SparseConfig{
		Rows: 500, Dim: 2000, NNZPerRow: 20,
		HotFraction: 0.05, ClusterBias: 0.6, NoiseRate: 0.02, Seed: 1,
	})
}

func TestSyntheticSparseShape(t *testing.T) {
	d := smallSparse()
	if d.Rows() != 500 || d.Dim != 2000 {
		t.Fatalf("shape %dx%d, want 500x2000", d.Rows(), d.Dim)
	}
	for i := 0; i < d.Rows(); i++ {
		idx, val := d.Row(i)
		if len(idx) == 0 || len(idx) != len(val) {
			t.Fatalf("row %d: bad lengths", i)
		}
		if !sort.SliceIsSorted(idx, func(a, b int) bool { return idx[a] < idx[b] }) {
			t.Fatalf("row %d: indices not sorted", i)
		}
		for _, ix := range idx {
			if ix < 0 || int(ix) >= d.Dim {
				t.Fatalf("row %d: index %d out of range", i, ix)
			}
		}
		if d.Label[i] != 1 && d.Label[i] != -1 {
			t.Fatalf("row %d: label %g not ±1", i, d.Label[i])
		}
	}
}

func TestSyntheticSparseIsLearnable(t *testing.T) {
	// The planted ground truth must classify the generated labels at
	// ≥ 1 − noise accuracy; otherwise solvers can never validate recovery.
	d := smallSparse()
	correct := 0
	for i := 0; i < d.Rows(); i++ {
		idx, val := d.Row(i)
		margin := 0.0
		for j, ix := range idx {
			margin += d.TrueW[ix] * val[j]
		}
		pred := 1.0
		if margin < 0 {
			pred = -1
		}
		if pred == d.Label[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Rows())
	if acc < 0.95 {
		t.Fatalf("ground-truth accuracy %g, want ≥0.95", acc)
	}
}

func TestSyntheticSparseDeterministic(t *testing.T) {
	a, b := smallSparse(), smallSparse()
	if a.NNZ() != b.NNZ() || a.Label[13] != b.Label[13] || a.Idx[100] != b.Idx[100] {
		t.Fatal("same seed must reproduce the dataset")
	}
}

func TestSparseShardPartition(t *testing.T) {
	d := smallSparse()
	P := 7
	total := 0
	for r := 0; r < P; r++ {
		s := d.Shard(r, P)
		total += s.Rows()
		if s.Dim != d.Dim {
			t.Fatal("shard changed dimension")
		}
		if s.Rows() > 0 {
			idx, _ := s.Row(0)
			if len(idx) == 0 {
				t.Fatal("shard row empty")
			}
		}
	}
	if total != d.Rows() {
		t.Fatalf("shards cover %d rows, want %d", total, d.Rows())
	}
}

func TestShardRowsMatchParent(t *testing.T) {
	d := smallSparse()
	s := d.Shard(2, 5)
	off := 2 * d.Rows() / 5
	for i := 0; i < s.Rows(); i++ {
		si, sv := s.Row(i)
		pi, pv := d.Row(off + i)
		if len(si) != len(pi) || si[0] != pi[0] || sv[0] != pv[0] {
			t.Fatalf("shard row %d differs from parent row %d", i, off+i)
		}
		if s.Label[i] != d.Label[off+i] {
			t.Fatal("shard label mismatch")
		}
	}
}

func TestTable1DatasetShapes(t *testing.T) {
	// Table 1 inventory: every generator config preserves its dataset's
	// shape ratios at scale 1.
	url := URLShape(1)
	if url.Rows != 2396130 || url.Dim != 3231961 {
		t.Fatalf("URL shape %d×%d mismatch with Table 1", url.Rows, url.Dim)
	}
	web := WebspamShape(1)
	if web.Rows != 350000 || web.Dim != 16609143 {
		t.Fatalf("Webspam shape %d×%d mismatch with Table 1", web.Rows, web.Dim)
	}
	cifar := CIFARShape(1)
	if cifar.Rows != 60000 || cifar.Dim != 32*32*3 || cifar.Classes != 10 {
		t.Fatalf("CIFAR shape mismatch: %+v", cifar)
	}
	atis := ATISShape(1)
	if atis.Rows != 4978 {
		t.Fatalf("ATIS rows %d mismatch with Table 1", atis.Rows)
	}
	imgnet := ImageNetShape(1000)
	if imgnet.Classes != 1000 {
		t.Fatalf("ImageNet classes %d, want 1000", imgnet.Classes)
	}
}

func TestSyntheticDenseSeparation(t *testing.T) {
	d := SyntheticDense(DenseConfig{Rows: 400, Dim: 32, Classes: 4, Sep: 4, Seed: 9})
	if d.Rows() != 400 || d.Dim() != 32 {
		t.Fatal("wrong shape")
	}
	// Nearest-class-mean classification must beat chance by a wide margin.
	means := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	for c := range means {
		means[c] = make([]float64, d.Dim())
	}
	for i, x := range d.X {
		c := d.Y[i]
		counts[c]++
		for j, v := range x {
			means[c][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, x := range d.X {
		best, bestDist := -1, math.Inf(1)
		for c := range means {
			dist := 0.0
			for j := range x {
				diff := x[j] - means[c][j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == d.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 400; acc < 0.9 {
		t.Fatalf("nearest-mean accuracy %g, want ≥0.9", acc)
	}
}

func TestDenseSplit(t *testing.T) {
	d := SyntheticDense(DenseConfig{Rows: 100, Dim: 8, Classes: 3, Sep: 2, Seed: 1})
	tr, va := d.Split(0.8)
	if tr.Rows() != 80 || va.Rows() != 20 {
		t.Fatalf("split %d/%d, want 80/20", tr.Rows(), va.Rows())
	}
}

func TestSyntheticSequencesShape(t *testing.T) {
	d := SyntheticSequences(SequenceConfig{Rows: 200, Vocab: 100, Classes: 8, MinLen: 3, MaxLen: 12, Seed: 2})
	if d.Rows() != 200 {
		t.Fatal("wrong row count")
	}
	for i, s := range d.Seqs {
		if len(s) < 3 || len(s) > 12 {
			t.Fatalf("seq %d length %d outside [3,12]", i, len(s))
		}
		for _, tok := range s {
			if tok < 0 || tok >= 100 {
				t.Fatalf("seq %d: token %d out of vocab", i, tok)
			}
		}
		if d.Y[i] < 0 || d.Y[i] >= 8 {
			t.Fatalf("seq %d: label %d out of range", i, d.Y[i])
		}
	}
}

func TestSequenceKeywordSignal(t *testing.T) {
	// The class's keyword tokens must appear more often in its own
	// sequences than in others' — the signal a recurrent model learns.
	d := SyntheticSequences(SequenceConfig{Rows: 2000, Vocab: 100, Classes: 5, MinLen: 8, MaxLen: 16, Seed: 3})
	inClass, outClass := 0.0, 0.0
	inN, outN := 0, 0
	for i, s := range d.Seqs {
		c := d.Y[i]
		hits := 0
		for _, tok := range s {
			if tok%5 == c%5 && tok < 15 { // keyword region for class c
				hits++
			}
		}
		frac := float64(hits) / float64(len(s))
		if c == 0 {
			inClass += frac
			inN++
		} else {
			outClass += frac
			outN++
		}
	}
	_ = outClass
	_ = inClass
	// Weak check: class-0 sequences contain token 0 more often than
	// class-1 sequences do.
	count := func(class, token int) float64 {
		hits, total := 0, 0
		for i, s := range d.Seqs {
			if d.Y[i] != class {
				continue
			}
			total += len(s)
			for _, tok := range s {
				if tok == token {
					hits++
				}
			}
		}
		return float64(hits) / float64(total)
	}
	if count(0, 0) <= count(1, 0)*2 {
		t.Fatalf("keyword 0 rate in class 0 (%g) not >2x class 1 (%g)", count(0, 0), count(1, 0))
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	d := smallSparse()
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLibSVM(&buf, d.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != d.Rows() || got.NNZ() != d.NNZ() {
		t.Fatalf("round trip changed shape: %dx%d nnz=%d", got.Rows(), got.Dim, got.NNZ())
	}
	for i := 0; i < d.Rows(); i++ {
		gi, gv := got.Row(i)
		di, dv := d.Row(i)
		for j := range di {
			if gi[j] != di[j] || gv[j] != dv[j] {
				t.Fatalf("row %d entry %d mismatch", i, j)
			}
		}
		if got.Label[i] != d.Label[i] {
			t.Fatalf("row %d label mismatch", i)
		}
	}
}

func TestReadLibSVMValidation(t *testing.T) {
	cases := map[string]string{
		"bad label":   "x 1:2\n",
		"bad feature": "1 12\n",
		"bad index":   "1 0:3\n",
		"bad value":   "1 2:x\n",
		"duplicate":   "1 2:1 2:3\n",
		"exceeds dim": "1 999:1\n",
	}
	for name, text := range cases {
		if _, err := ReadLibSVM(strings.NewReader(text), 10); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadLibSVMInfersDim(t *testing.T) {
	d, err := ReadLibSVM(strings.NewReader("1 3:1 7:2\n-1 1:5\n# comment\n\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim != 7 || d.Rows() != 2 {
		t.Fatalf("dim=%d rows=%d, want 7, 2", d.Dim, d.Rows())
	}
	idx, val := d.Row(0)
	if idx[0] != 2 || val[1] != 2 {
		t.Fatal("0-based conversion wrong")
	}
}

func TestQuickLibSVMRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		cfg := SparseConfig{Rows: 20, Dim: 50, NNZPerRow: 5, NoiseRate: 0, Seed: seed}
		d := SyntheticSparse(cfg)
		var buf bytes.Buffer
		if err := WriteLibSVM(&buf, d); err != nil {
			return false
		}
		got, err := ReadLibSVM(&buf, d.Dim)
		if err != nil || got.NNZ() != d.NNZ() || got.Rows() != d.Rows() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDensityAccessor(t *testing.T) {
	d := smallSparse()
	want := float64(d.NNZ()) / float64(500*2000)
	if got := d.Density(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Density = %g, want %g", got, want)
	}
}
