package data

import (
	"fmt"
	"math/rand"
)

// DenseDataset holds fixed-length feature vectors with integer class
// labels, the shape of the CIFAR-10 and ImageNet image classification
// tasks.
type DenseDataset struct {
	// X holds one row per sample.
	X [][]float64
	// Y holds class labels in [0, Classes).
	Y []int
	// Classes is the number of target classes.
	Classes int
}

// Rows returns the number of samples.
func (d *DenseDataset) Rows() int { return len(d.X) }

// Dim returns the feature dimension.
func (d *DenseDataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Shard returns the contiguous row shard for the given rank out of P
// (views into the parent's storage).
func (d *DenseDataset) Shard(rank, P int) *DenseDataset {
	lo := rank * d.Rows() / P
	hi := (rank + 1) * d.Rows() / P
	return &DenseDataset{X: d.X[lo:hi], Y: d.Y[lo:hi], Classes: d.Classes}
}

// Split returns train/validation subsets; frac is the training fraction.
func (d *DenseDataset) Split(frac float64) (train, val *DenseDataset) {
	cut := int(frac * float64(d.Rows()))
	return &DenseDataset{X: d.X[:cut], Y: d.Y[:cut], Classes: d.Classes},
		&DenseDataset{X: d.X[cut:], Y: d.Y[cut:], Classes: d.Classes}
}

// DenseConfig parameterizes SyntheticDense.
type DenseConfig struct {
	// Rows is the number of samples.
	Rows int
	// Dim is the input dimension (e.g. 3072 for CIFAR-shaped inputs).
	Dim int
	// Classes is the number of classes (10 for CIFAR-shaped, 1000 for
	// ImageNet-shaped).
	Classes int
	// Sep is the separation between class means in units of the noise
	// standard deviation; lower values make the task harder.
	Sep float64
	// Seed makes generation deterministic.
	Seed int64
}

// CIFARShape mirrors CIFAR-10's shape (Table 1: 60k samples of 32×32×3,
// 10 classes) scaled by the given row factor.
func CIFARShape(scale float64) DenseConfig {
	return DenseConfig{Rows: int(60000 * scale), Dim: 3072, Classes: 10, Sep: 2.2, Seed: 3}
}

// ImageNetShape mirrors ImageNet-1K's class count with a reduced input
// dimension (the experiments study communication of gradients, whose size
// is set by the model, not the input).
func ImageNetShape(rows int) DenseConfig {
	return DenseConfig{Rows: rows, Dim: 3072, Classes: 1000, Sep: 3.5, Seed: 4}
}

// SyntheticDense generates class-conditional Gaussian blobs: each class
// has a random mean direction on a low-dimensional manifold embedded in
// Dim dimensions, plus isotropic noise. Models are expected to reach high
// train accuracy, and relative convergence between dense and sparsified
// training is meaningful — which is what Figures 4 and 5 compare.
func SyntheticDense(cfg DenseConfig) *DenseDataset {
	if cfg.Rows <= 0 || cfg.Dim <= 0 || cfg.Classes <= 1 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	means := make([][]float64, cfg.Classes)
	for c := range means {
		means[c] = make([]float64, cfg.Dim)
		for j := 0; j < cfg.Dim; j++ {
			means[c][j] = rng.NormFloat64() * cfg.Sep / 2
		}
	}
	d := &DenseDataset{
		X:       make([][]float64, cfg.Rows),
		Y:       make([]int, cfg.Rows),
		Classes: cfg.Classes,
	}
	for i := 0; i < cfg.Rows; i++ {
		c := rng.Intn(cfg.Classes)
		x := make([]float64, cfg.Dim)
		for j := range x {
			x[j] = means[c][j] + rng.NormFloat64()
		}
		d.X[i] = x
		d.Y[i] = c
	}
	return d
}

// SequenceDataset holds variable-length token sequences with class labels,
// the shape of the ATIS intent classification and ASR acoustic tasks.
type SequenceDataset struct {
	// Seqs holds token id sequences.
	Seqs [][]int
	// Y holds class labels in [0, Classes).
	Y []int
	// Vocab is the token id space size.
	Vocab int
	// Classes is the number of target classes.
	Classes int
}

// Rows returns the number of sequences.
func (d *SequenceDataset) Rows() int { return len(d.Seqs) }

// Shard returns the contiguous shard for the given rank out of P.
func (d *SequenceDataset) Shard(rank, P int) *SequenceDataset {
	lo := rank * d.Rows() / P
	hi := (rank + 1) * d.Rows() / P
	return &SequenceDataset{Seqs: d.Seqs[lo:hi], Y: d.Y[lo:hi], Vocab: d.Vocab, Classes: d.Classes}
}

// SequenceConfig parameterizes SyntheticSequences.
type SequenceConfig struct {
	// Rows is the number of sequences.
	Rows int
	// Vocab is the token space size.
	Vocab int
	// Classes is the number of intents.
	Classes int
	// MinLen and MaxLen bound sequence lengths.
	MinLen, MaxLen int
	// Seed makes generation deterministic.
	Seed int64
}

// ATISShape mirrors the ATIS corpus shape (Table 1: ~5k sentences, 128
// intent classes) scaled by the given factor.
func ATISShape(scale float64) SequenceConfig {
	return SequenceConfig{
		Rows: int(4978 * scale), Vocab: 900, Classes: 26,
		MinLen: 4, MaxLen: 18, Seed: 5,
	}
}

// ASRShape mirrors a frame-classification acoustic task at a reduced
// scale: long sequences over a modest symbol vocabulary.
func ASRShape(rows int) SequenceConfig {
	return SequenceConfig{
		Rows: rows, Vocab: 256, Classes: 48,
		MinLen: 20, MaxLen: 60, Seed: 6,
	}
}

// SyntheticSequences generates an intent-classification task with real
// sequential structure: each class owns a small set of "keyword" tokens
// and a class-specific bigram transition bias, so a recurrent model must
// integrate over the whole sequence to classify reliably.
func SyntheticSequences(cfg SequenceConfig) *SequenceDataset {
	if cfg.Rows <= 0 || cfg.Vocab <= cfg.Classes || cfg.MinLen <= 0 || cfg.MaxLen < cfg.MinLen {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &SequenceDataset{
		Seqs:    make([][]int, cfg.Rows),
		Y:       make([]int, cfg.Rows),
		Vocab:   cfg.Vocab,
		Classes: cfg.Classes,
	}
	// Keywords: class c owns tokens {c, Classes+c, 2·Classes+c} (mod
	// vocab); the rest of each sequence is shared background noise.
	for i := 0; i < cfg.Rows; i++ {
		c := rng.Intn(cfg.Classes)
		length := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		seq := make([]int, length)
		for t := range seq {
			if rng.Float64() < 0.35 {
				seq[t] = (c + cfg.Classes*rng.Intn(3)) % cfg.Vocab
			} else {
				seq[t] = rng.Intn(cfg.Vocab)
			}
		}
		d.Seqs[i] = seq
		d.Y[i] = c
	}
	return d
}
