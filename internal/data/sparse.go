// Package data provides the datasets for the paper's experiments. The
// originals (URL, Webspam, CIFAR-10, ImageNet, ATIS, Hansards, and a
// proprietary ASR corpus — Table 1) are not available offline, so each is
// replaced by a deterministic synthetic generator matching the property
// the experiment depends on: per-sample feature sparsity for the linear
// classification tasks, class-conditional structure for the vision tasks,
// and token-sequence structure for the language tasks. A LibSVM-format
// reader/writer is included for interoperability with the real datasets.
package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// SparseDataset is a row-major sparse design matrix with ±1 labels, the
// shape of the URL and Webspam binary classification tasks.
type SparseDataset struct {
	// Dim is the feature dimension N.
	Dim int
	// RowStart[i]..RowStart[i+1] index the i-th sample's entries.
	RowStart []int32
	// Idx holds feature indices, sorted within each row.
	Idx []int32
	// Val holds feature values parallel to Idx.
	Val []float64
	// Label holds ±1 labels.
	Label []float64
	// TrueW, when produced by a generator, is the planted ground-truth
	// weight vector (nil for loaded datasets).
	TrueW []float64
}

// Rows returns the number of samples.
func (d *SparseDataset) Rows() int { return len(d.RowStart) - 1 }

// Row returns the i-th sample's indices and values (views into backing
// arrays; do not modify).
func (d *SparseDataset) Row(i int) ([]int32, []float64) {
	lo, hi := d.RowStart[i], d.RowStart[i+1]
	return d.Idx[lo:hi], d.Val[lo:hi]
}

// NNZ returns the total number of stored entries.
func (d *SparseDataset) NNZ() int { return len(d.Idx) }

// Density returns the average per-row density.
func (d *SparseDataset) Density() float64 {
	return float64(d.NNZ()) / (float64(d.Rows()) * float64(d.Dim))
}

// Shard returns the contiguous row shard for the given rank out of P, the
// data-parallel partitioning MPI-OPT performs with MPI-IO. The shard
// shares backing arrays with the parent.
func (d *SparseDataset) Shard(rank, P int) *SparseDataset {
	rows := d.Rows()
	lo := rank * rows / P
	hi := (rank + 1) * rows / P
	return &SparseDataset{
		Dim:      d.Dim,
		RowStart: d.RowStart[lo : hi+1],
		Idx:      d.Idx,
		Val:      d.Val,
		Label:    d.Label[lo:hi],
		TrueW:    d.TrueW,
	}
}

// SparseConfig parameterizes SyntheticSparse.
type SparseConfig struct {
	// Rows is the number of samples.
	Rows int
	// Dim is the feature dimension.
	Dim int
	// NNZPerRow is the average number of features per sample (trigram-like
	// text features: each sample touches a tiny subset of a huge space).
	NNZPerRow int
	// HotFraction of the dimension receives ClusterBias of the probability
	// mass, modeling the skewed feature frequencies of text data. Zero
	// disables clustering.
	HotFraction float64
	// ClusterBias is the probability that an index is drawn from the hot
	// region (requires HotFraction > 0).
	ClusterBias float64
	// NoiseRate flips this fraction of labels.
	NoiseRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// URLShape mirrors the URL dataset's shape (Table 1: 2.4M samples, 3.2M
// features) scaled by the given factor in both axes.
func URLShape(scale float64) SparseConfig {
	return SparseConfig{
		Rows: int(2396130 * scale), Dim: int(3231961 * scale),
		NNZPerRow: 116, HotFraction: 0.02, ClusterBias: 0.6,
		NoiseRate: 0.02, Seed: 1,
	}
}

// WebspamShape mirrors the Webspam dataset's shape (Table 1: 350k samples,
// 16.6M trigram features) scaled by the given factor in both axes.
func WebspamShape(scale float64) SparseConfig {
	return SparseConfig{
		Rows: int(350000 * scale), Dim: int(16609143 * scale),
		NNZPerRow: 3730, HotFraction: 0.01, ClusterBias: 0.5,
		NoiseRate: 0.02, Seed: 2,
	}
}

// SyntheticSparse generates a linearly separable (up to NoiseRate) sparse
// binary classification dataset: a sparse ground-truth weight vector is
// planted and labels are sign(x·w*), so distributed solvers can be
// validated by recovering accuracy ≥ 1−NoiseRate.
func SyntheticSparse(cfg SparseConfig) *SparseDataset {
	if cfg.Rows <= 0 || cfg.Dim <= 0 || cfg.NNZPerRow <= 0 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &SparseDataset{
		Dim:      cfg.Dim,
		RowStart: make([]int32, 1, cfg.Rows+1),
		Idx:      make([]int32, 0, cfg.Rows*cfg.NNZPerRow),
		Val:      make([]float64, 0, cfg.Rows*cfg.NNZPerRow),
		Label:    make([]float64, cfg.Rows),
	}
	// Plant a ground-truth weight vector over the hot region (plus a thin
	// tail) so most samples carry signal.
	d.TrueW = make([]float64, cfg.Dim)
	hot := int(cfg.HotFraction * float64(cfg.Dim))
	if hot < 1 {
		hot = cfg.Dim / 10
		if hot < 1 {
			hot = 1
		}
	}
	for j := 0; j < hot; j++ {
		d.TrueW[j] = rng.NormFloat64()
	}

	row := make(map[int32]float64, cfg.NNZPerRow)
	for i := 0; i < cfg.Rows; i++ {
		clear(row)
		nnz := 1 + rng.Intn(2*cfg.NNZPerRow) // mean ≈ NNZPerRow
		if nnz > cfg.Dim {
			nnz = cfg.Dim
		}
		for len(row) < nnz {
			var ix int32
			if cfg.HotFraction > 0 && rng.Float64() < cfg.ClusterBias {
				ix = int32(rng.Intn(hot))
			} else {
				ix = int32(rng.Intn(cfg.Dim))
			}
			row[ix] = 1 // binary trigram presence features
		}
		idx := make([]int32, 0, len(row))
		for ix := range row {
			idx = append(idx, ix)
		}
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
		margin := 0.0
		for _, ix := range idx {
			d.Idx = append(d.Idx, ix)
			d.Val = append(d.Val, row[ix])
			margin += d.TrueW[ix]
		}
		d.RowStart = append(d.RowStart, int32(len(d.Idx)))
		y := 1.0
		if margin < 0 {
			y = -1
		}
		if rng.Float64() < cfg.NoiseRate {
			y = -y
		}
		d.Label[i] = y
	}
	return d
}
