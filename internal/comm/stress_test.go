package comm

import (
	"math/rand"
	"testing"

	"repro/internal/simnet"
)

// Stress and property tests for the matching layer: randomized
// interleavings of tags, sources, and nonblocking traffic, checked for
// exactly-once delivery.

func TestRandomTagStorm(t *testing.T) {
	// Every rank sends a burst of messages with random tags to random
	// peers, then receives exactly what it was sent, in randomized order.
	const P = 8
	const perRank = 50
	w := NewWorld(P, simnet.Profile{})
	rng := rand.New(rand.NewSource(99))
	// Precompute the traffic matrix so receivers know what to expect.
	type msg struct{ to, tag, payload int }
	plan := make([][]msg, P)
	expect := make([]map[int][]msg, P) // receiver → sender → messages in order
	for r := range expect {
		expect[r] = map[int][]msg{}
	}
	for src := 0; src < P; src++ {
		for i := 0; i < perRank; i++ {
			m := msg{to: rng.Intn(P), tag: rng.Intn(5), payload: src*1000 + i}
			plan[src] = append(plan[src], m)
			expect[m.to][src] = append(expect[m.to][src], m)
		}
	}
	results := Run(w, func(p *Proc) int {
		for _, m := range plan[p.Rank()] {
			p.Send(m.to, m.tag, m.payload, 0)
		}
		// Receive per (source, tag) in matching order: within one source
		// and tag FIFO must hold; across tags order is free.
		got := 0
		mine := expect[p.Rank()]
		// Shuffle the receive order of (src, tag) pairs to stress the
		// out-of-order buffer.
		type key struct{ src, tag int }
		var keys []key
		for src, ms := range mine {
			seen := map[int]bool{}
			for _, m := range ms {
				if !seen[m.tag] {
					seen[m.tag] = true
					keys = append(keys, key{src, m.tag})
				}
			}
		}
		rr := rand.New(rand.NewSource(int64(p.Rank()) + 7))
		rr.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			for _, m := range mine[k.src] {
				if m.tag != k.tag {
					continue
				}
				recv := p.Recv(k.src, k.tag)
				if recv.Payload.(int) != m.payload {
					panic("FIFO within (src,tag) violated")
				}
				got++
			}
		}
		return got
	})
	total := 0
	for _, g := range results {
		total += g
	}
	if total != P*perRank {
		t.Fatalf("delivered %d messages, want %d", total, P*perRank)
	}
}

func TestConcurrentForkTraffic(t *testing.T) {
	// Several forked Procs per rank exchange concurrently on distinct tag
	// ranges — the nonblocking-collective pattern under contention.
	const P = 4
	const forks = 6
	w := NewWorld(P, simnet.Profile{Alpha: 1e-7})
	Run(w, func(p *Proc) any {
		bases := make([]int, forks)
		for i := range bases {
			bases[i] = p.NextTagBase()
		}
		done := make(chan int, forks)
		for i := 0; i < forks; i++ {
			f := p.Fork()
			go func(f *Proc, base, i int) {
				peer := f.Rank() ^ 1
				m := f.SendRecv(peer, base, f.Rank()*100+i, 8)
				done <- m.Payload.(int)
			}(f, bases[i], i)
		}
		seen := map[int]bool{}
		for i := 0; i < forks; i++ {
			seen[<-done] = true
		}
		if len(seen) != forks {
			panic("lost or duplicated fork exchanges")
		}
		return nil
	})
}

func TestCountersAcrossRuns(t *testing.T) {
	w := NewWorld(2, simnet.Profile{})
	Run(w, func(p *Proc) any {
		p.Send(1-p.Rank(), 0, nil, 100)
		p.Recv(1-p.Rank(), 0)
		return nil
	})
	if w.TotalMessages() != 2 || w.TotalBytes() != 200 {
		t.Fatalf("counters = %d msgs / %d bytes, want 2 / 200", w.TotalMessages(), w.TotalBytes())
	}
	// Counters accumulate across Runs until reset.
	Run(w, func(p *Proc) any {
		p.Send(1-p.Rank(), 0, nil, 50)
		p.Recv(1-p.Rank(), 0)
		return nil
	})
	if w.TotalMessages() != 4 || w.TotalBytes() != 300 {
		t.Fatalf("accumulated counters wrong: %d / %d", w.TotalMessages(), w.TotalBytes())
	}
	w.ResetCounters()
	if w.TotalMessages() != 0 || w.TotalBytes() != 0 {
		t.Fatal("reset failed")
	}
}
