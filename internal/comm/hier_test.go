package comm

import (
	"testing"

	"repro/internal/simnet"
)

var (
	fastGroup = simnet.Profile{Name: "group", Alpha: 1e-6, BetaPerByte: 1e-9,
		GammaPerElem: 1e-10, SparseComputeFactor: 4}
	slowGlobal = simnet.Profile{Name: "global", Alpha: 1e-5, BetaPerByte: 1e-8,
		GammaPerElem: 1e-10, SparseComputeFactor: 4}
	testHier = simnet.Hierarchy{Levels: []simnet.Level{
		{GroupSize: 2, Profile: fastIntra, Serial: 1},
		{GroupSize: 2, Profile: fastGroup, Serial: 1},
		{Profile: slowGlobal},
	}}
)

// TestHierWorldPricesBySharedLevel: on a 3-level world, a message must be
// priced by the profile of the innermost level its ranks share.
func TestHierWorldPricesBySharedLevel(t *testing.T) {
	const bytes = 1 << 20
	w := NewWorldHier(8, testHier)
	// Rank 0 sends to its node peer (1), a group peer (2), and a global
	// peer (4); each hop must be priced by its level's profile alone
	// (single sequential sends: factor 1 everywhere since the "communicator"
	// proxy charges contention only on escape levels — verified separately).
	times := Run(w, func(p *Proc) []float64 {
		switch p.Rank() {
		case 0:
			var out []float64
			for _, dst := range []int{1, 2, 4} {
				t0 := p.Now()
				p.Send(dst, dst, nil, bytes)
				out = append(out, p.Now()-t0)
			}
			return out
		case 1, 2, 4:
			p.Recv(0, p.Rank())
		}
		return nil
	})
	// The whole world is one communicator: a level-0 escape contends with
	// the 2 node-mates (cap 1 → factor 2), a level-1 escape additionally
	// with the 4 group-mates (cap 1 → factor 4, total 8).
	wantIntra := fastIntra.TransferTime(bytes)
	wantGroup := fastGroup.ContendedTransferTime(bytes, 2)
	wantGlobal := slowGlobal.ContendedTransferTime(bytes, 8)
	got := times[0]
	if got[0] != wantIntra {
		t.Fatalf("intra-node send cost %g, want %g", got[0], wantIntra)
	}
	if got[1] != wantGroup {
		t.Fatalf("intra-group send cost %g, want %g", got[1], wantGroup)
	}
	if got[2] != wantGlobal {
		t.Fatalf("global send cost %g, want %g", got[2], wantGlobal)
	}
	if _, ok := w.Hierarchy(); !ok {
		t.Fatal("hierarchy world must report its hierarchy")
	}
	if _, ok := w.Topology(); ok {
		t.Fatal("NewWorldHier world must not report a legacy topology")
	}
	if w.Profile().Name != "global" {
		t.Fatal("hierarchy world default profile must be the outermost profile")
	}
}

// TestHierLeaderSubUncontended: a sub-communicator with one rank per group
// must pay no egress serialization at the levels it is alone in — the
// asymmetry the hierarchical collectives' leader phases exploit.
func TestHierLeaderSubUncontended(t *testing.T) {
	const bytes = 1 << 20
	w := NewWorldHier(8, testHier)
	times := Run(w, func(p *Proc) float64 {
		if p.Rank()%4 != 0 {
			return 0
		}
		// Group leaders 0 and 4: one rank per level-0 and level-1 group.
		sub := p.Sub([]int{0, 4})
		t0 := sub.Now()
		if sub.Rank() == 0 {
			sub.Send(1, 3, nil, bytes)
		} else {
			sub.Recv(0, 3)
		}
		elapsed := sub.Now() - t0
		p.Join(sub)
		return elapsed
	})
	if want := slowGlobal.TransferTime(bytes); times[0] != want {
		t.Fatalf("leader-phase global send cost %g, want uncontended %g", times[0], want)
	}
}

// TestSubLevelGroups: SubLevel must carve the node, group, and world
// communicators out of the hierarchy.
func TestSubLevelGroups(t *testing.T) {
	w := NewWorldHier(7, testHier) // ragged: nodes {0,1},{2,3},{4,5},{6}; groups {0..3},{4..6}
	Run(w, func(p *Proc) any {
		node := p.SubLevel(0)
		wantNode := 2
		if p.Rank() == 6 {
			wantNode = 1
		}
		if node.Size() != wantNode {
			panic("node communicator size wrong")
		}
		group := p.SubLevel(1)
		wantGroup := 4
		if p.Rank() >= 4 {
			wantGroup = 3
		}
		if group.Size() != wantGroup {
			panic("group communicator size wrong")
		}
		world := p.SubLevel(2)
		if world.Size() != 7 {
			panic("outermost communicator must span the world")
		}
		return nil
	})
}

// TestTraceRecordsLevel: the tracer must record each message's shared
// level and total contention factor.
func TestTraceRecordsLevel(t *testing.T) {
	w := NewWorldHier(8, testHier)
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, nil, 100)
			p.Send(2, 2, nil, 100)
			p.Send(4, 4, nil, 100)
		case 1, 2, 4:
			p.Recv(0, p.Rank())
		}
		return nil
	})
	want := map[int]struct {
		level  int
		factor float64
	}{1: {0, 1}, 2: {1, 2}, 4: {2, 8}}
	for _, ev := range tr.Events() {
		w, ok := want[ev.Dst]
		if !ok {
			t.Fatalf("unexpected traced destination %d", ev.Dst)
		}
		if ev.Level != w.level || ev.NICFactor != w.factor {
			t.Fatalf("dst %d traced level=%d factor=%g, want level=%d factor=%g",
				ev.Dst, ev.Level, ev.NICFactor, w.level, w.factor)
		}
	}
}

func TestNewWorldHierValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid hierarchy must panic")
		}
	}()
	NewWorldHier(4, simnet.Hierarchy{})
}
