package comm

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"

	"repro/internal/quant"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// TestPayloadCodecRoundTrip: every payload type a collective sends must
// survive the wire codec deeply equal, sharing no storage with the input.
func TestPayloadCodecRoundTrip(t *testing.T) {
	sv := stream.NewSparse(100, []int32{3, 17, 99}, []float64{1.5, -2.25, 0.125}, stream.OpSum)
	dv := stream.NewDense(make([]float64, 40), stream.OpMax)
	qc := quant.Config{Bits: 4, Bucket: 16, Norm: quant.NormMax}
	qv := quant.Encode([]float64{1, -2, 3, -4, 5, 6, 7, 8}, qc, rand.New(rand.NewSource(1)))

	cases := []any{
		nil,
		[]float64{1, 2, 3.5},
		[]float64{},
		[][]float64{{1, 2}, nil, {3}},
		map[int][]float64{4: {1}, 1: {2, 3}, 9: {}},
		sv,
		dv,
		(*stream.Vector)(nil),
		qv,
		(*quant.Quantized)(nil),
		[]*quant.Quantized{qv, nil, qv},
		map[int]*quant.Quantized{2: qv, 0: qv},
		7,
		-3.75,
		"hello",
		[]byte{1, 2, 3},
	}
	for i, in := range cases {
		out, err := copyPayload(in)
		if err != nil {
			t.Fatalf("case %d (%T): %v", i, in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("case %d (%T): round trip %#v != %#v", i, in, out, in)
		}
	}

	// The copy must not share storage: mutating it leaves the original.
	xs := []float64{1, 2, 3}
	cp, _ := copyPayload(xs)
	cp.([]float64)[0] = 99
	if xs[0] != 1 {
		t.Fatalf("copy aliases the original slice")
	}
}

// TestPayloadCodecRejectsGarbage: truncation and trailing bytes error
// rather than decode wrong data.
func TestPayloadCodecRejectsGarbage(t *testing.T) {
	good, err := appendPayload(nil, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePayload(good[:len(good)-3]); err == nil {
		t.Fatalf("truncated frame decoded")
	}
	if _, err := decodePayload(append(good, 0)); err == nil {
		t.Fatalf("trailing garbage decoded")
	}
	if _, err := decodePayload([]byte{250}); err == nil {
		t.Fatalf("unknown type id decoded")
	}
	if _, err := appendPayload(nil, struct{ X int }{1}); err == nil {
		t.Fatalf("unregistered type encoded")
	}
}

// exchangeRing is the test program both real backends run: every rank
// sends a tagged vector to its successor and returns the one it received
// from its predecessor.
func exchangeRing(p *Proc) *stream.Vector {
	n, rank := p.Size(), p.Rank()
	v := stream.NewSparse(64, []int32{int32(rank)}, []float64{float64(rank + 1)}, stream.OpSum)
	p.Send((rank+1)%n, 7, v, v.WireBytes())
	return p.Recv((rank-1+n)%n, 7).Payload.(*stream.Vector)
}

// TestGoroutineTransportExchange: the goroutine backend delivers correct
// values, deep-copied (no storage shared with the sender), and reports
// measured wall times.
func TestGoroutineTransportExchange(t *testing.T) {
	const P = 8
	w := NewWorld(P, simnet.Aries).UseGoroutineTransport()
	if w.Transport() != "goroutine" || !w.WallClock() {
		t.Fatalf("transport=%q wall=%v", w.Transport(), w.WallClock())
	}
	sent := make([]*stream.Vector, P)
	got := Run(w, func(p *Proc) *stream.Vector {
		n, rank := p.Size(), p.Rank()
		v := stream.NewSparse(64, []int32{int32(rank)}, []float64{float64(rank + 1)}, stream.OpSum)
		sent[rank] = v
		p.Send((rank+1)%n, 7, v, v.WireBytes())
		return p.Recv((rank-1+n)%n, 7).Payload.(*stream.Vector)
	})
	for r, v := range got {
		prev := (r - 1 + P) % P
		idx, val := v.Pairs()
		if len(idx) != 1 || idx[0] != int32(prev) || val[0] != float64(prev+1) {
			t.Fatalf("rank %d received %v/%v", r, idx, val)
		}
		if v == sent[prev] {
			t.Fatalf("rank %d received the sender's own object (no deep copy)", r)
		}
	}
	times := w.Times()
	for r, d := range times {
		if d <= 0 {
			t.Fatalf("rank %d wall time %g, want > 0", r, d)
		}
	}
	if w.MaxTime() <= 0 {
		t.Fatalf("MaxTime %g, want > 0", w.MaxTime())
	}
}

// TestGoroutineTransportTrace: traced events on the real backend carry
// measured timestamps (arrival ≥ send ≥ 0) and factor-1 contention, and
// concurrent EventsOf reads during the run are safe (the -race CI pass
// drives this).
func TestGoroutineTransportTrace(t *testing.T) {
	const P = 8
	w := NewWorld(P, simnet.Aries).UseGoroutineTransport()
	tr := w.EnableTrace()
	Run(w, func(p *Proc) int {
		n, rank := p.Size(), p.Rank()
		for round := 0; round < 50; round++ {
			p.Send((rank+1)%n, round, []float64{float64(round)}, 8)
			p.Recv((rank-1+n)%n, round)
			if own := tr.EventsOf(rank); len(own) != round+1 {
				panic(fmt.Sprintf("rank %d round %d: %d own events", rank, round, len(own)))
			}
		}
		return 0
	})
	events := tr.Events()
	if len(events) != P*50 {
		t.Fatalf("%d events, want %d", len(events), P*50)
	}
	for _, e := range events {
		if e.SendTime < 0 || e.Arrival < e.SendTime {
			t.Fatalf("event %+v: non-causal timestamps", e)
		}
		if e.NICFactor != 1 {
			t.Fatalf("event %+v: modeled contention on a real transport", e)
		}
	}
}

// TestTracerConcurrentAppendsAndReads hammers one tracer from many
// goroutines appending as different source ranks while readers scan — the
// sharded design must hold up under -race.
func TestTracerConcurrentAppendsAndReads(t *testing.T) {
	w := NewWorld(16, simnet.Aries)
	tr := w.EnableTrace()
	var wg sync.WaitGroup
	for src := 0; src < 16; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.record(TraceEvent{Src: src, Dst: (src + 1) % 16, Bytes: i})
				if got := tr.EventsOf(src); len(got) != i+1 {
					panic("own prefix not stable")
				}
			}
		}(src)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for i := 0; i < 50; i++ {
			tr.Events()
			tr.TotalBytes()
		}
	}()
	wg.Wait()
	rg.Wait()
	if got := len(tr.Events()); got != 16*200 {
		t.Fatalf("%d events, want %d", got, 16*200)
	}
}

// TestTCPLoopbackExchange: the TCP backend in its single-process loopback
// form delivers correct values over real sockets and reports wall times.
func TestTCPLoopbackExchange(t *testing.T) {
	const P = 4
	w, err := NewWorldTCP(P, simnet.Aries, TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Transport() != "tcp" || !w.WallClock() {
		t.Fatalf("transport=%q wall=%v", w.Transport(), w.WallClock())
	}
	got := Run(w, exchangeRing)
	for r, v := range got {
		prev := (r - 1 + P) % P
		idx, val := v.Pairs()
		if len(idx) != 1 || idx[0] != int32(prev) || val[0] != float64(prev+1) {
			t.Fatalf("rank %d received %v/%v", r, idx, val)
		}
	}
	// A second Run on the same world must work (connections are reused).
	Run(w, exchangeRing)
	if w.MaxTime() <= 0 {
		t.Fatalf("MaxTime %g, want > 0", w.MaxTime())
	}
}

// TestTCPMultiProcessWorlds splits one 6-rank world across two World
// instances in this process — exactly the multi-process protocol, minus
// fork/exec — and runs a collective exchange across the socket boundary.
func TestTCPMultiProcessWorlds(t *testing.T) {
	// Reserve a rendezvous port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rend := ln.Addr().String()
	ln.Close()

	const P = 6
	type worldOrErr struct {
		w   *World
		err error
	}
	mk := func(ranks []int, out chan<- worldOrErr) {
		w, err := NewWorldTCP(P, simnet.Aries, TCPConfig{Rendezvous: rend, LocalRanks: ranks})
		out <- worldOrErr{w, err}
	}
	chA, chB := make(chan worldOrErr, 1), make(chan worldOrErr, 1)
	go mk([]int{0, 1, 2}, chA)
	go mk([]int{3, 4, 5}, chB)
	ra, rb := <-chA, <-chB
	if ra.err != nil || rb.err != nil {
		t.Fatalf("world construction: %v / %v", ra.err, rb.err)
	}
	defer ra.w.Close()
	defer rb.w.Close()
	if got := ra.w.LocalRanks(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("world A local ranks %v", got)
	}

	var wg sync.WaitGroup
	results := make([][]*stream.Vector, 2)
	for i, w := range []*World{ra.w, rb.w} {
		wg.Add(1)
		go func(i int, w *World) {
			defer wg.Done()
			results[i] = Run(w, exchangeRing)
		}(i, w)
	}
	wg.Wait()
	for half, res := range results {
		for _, r := range [][]int{{0, 1, 2}, {3, 4, 5}}[half] {
			v := res[r]
			prev := (r - 1 + P) % P
			idx, val := v.Pairs()
			if len(idx) != 1 || idx[0] != int32(prev) || val[0] != float64(prev+1) {
				t.Fatalf("half %d rank %d received %v/%v", half, r, idx, val)
			}
		}
		// Non-local ranks' times stay zero; local ones are measured.
		times := [2]*World{ra.w, rb.w}[half].Times()
		for r, d := range times {
			local := (half == 0) == (r <= 2)
			if local && d <= 0 {
				t.Fatalf("half %d rank %d: wall time %g", half, r, d)
			}
			if !local && d != 0 {
				t.Fatalf("half %d rank %d: non-local time %g, want 0", half, r, d)
			}
		}
	}
}

// TestTCPConfigValidation: malformed configurations fail fast.
func TestTCPConfigValidation(t *testing.T) {
	if _, err := NewWorldTCP(4, simnet.Aries, TCPConfig{LocalRanks: []int{0, 2}}); err == nil {
		t.Fatalf("partial world without rendezvous accepted")
	}
	if _, err := NewWorldTCP(4, simnet.Aries, TCPConfig{Rendezvous: "127.0.0.1:0", LocalRanks: []int{2, 1}}); err == nil {
		t.Fatalf("unsorted LocalRanks accepted")
	}
	if _, err := NewWorldTCP(4, simnet.Aries, TCPConfig{Rendezvous: "127.0.0.1:0", LocalRanks: []int{0, 7}}); err == nil {
		t.Fatalf("out-of-range rank accepted")
	}
}
