// Package comm provides the message-passing substrate the collectives run
// on: an in-process "world" of P ranks (one goroutine each) exchanging
// tagged messages, in the style of MPI point-to-point communication. It
// stands in for the MPI runtime the paper builds on (there is no MPI
// ecosystem for Go), preserving exactly the properties the collective
// algorithms rely on: ordered, reliable, tagged point-to-point messages
// between any pair of ranks, plus nonblocking operation via Requests.
//
// Every message carries both its payload and its modeled wire size. How a
// message actually moves — and what its timestamps mean — is the pluggable
// Transport's business (see transport.go): the default simulator backend
// advances per-rank virtual clocks by the α–β model, while the real
// backends (goroutine, TCP) move bytes over shared memory or sockets and
// stamp measured wall-clock times. Collective implementations are written
// once against Proc and run unchanged on every backend.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Message is a tagged point-to-point message.
type Message struct {
	// Src is the sender's rank.
	Src int
	// Tag disambiguates concurrent protocols (MPI-style).
	Tag int
	// Payload is the application data. Ownership transfers to the receiver:
	// senders must not mutate a payload after sending.
	Payload any
	// Bytes is the modeled wire size used by the α–β cost model.
	Bytes int
	// Arrival is the time at which the message is fully received: virtual
	// α–β seconds on the simulator backend, measured wall-clock seconds
	// since the Run epoch on real transports.
	Arrival float64
}

// World is a communicator over P ranks.
type World struct {
	p       int
	profile simnet.Profile
	topo    *simnet.Topology  // set only by NewWorldTopo, for the legacy accessor
	hier    *simnet.Hierarchy // nil for flat (single-level) worlds
	boxes   []*mailbox
	times   []float64 // final per-rank time (virtual or wall), filled by Run

	// mach and slots are set only by NewWorldPlaced: the full machine
	// hierarchy and the ascending machine slot hosting each rank. Pricing
	// (profiles, contention levels) then happens over slots on mach, while
	// hier holds the induced job-structure hierarchy when derivable.
	mach  *simnet.Hierarchy
	slots []int

	// activity, when non-nil, replaces the static communicator-size
	// contention proxy with observed in-flight flow counts (see
	// SetActivitySource). Install before Run; reads happen on rank
	// goroutines.
	activity ActivitySource

	// transport is the execution backend (see transport.go); wall caches
	// transport.Wall() for the clock-gating hot paths, and epoch anchors
	// wall-clock measurement (unix nanos, reset by Run).
	transport Transport
	wall      bool
	epoch     atomic.Int64

	// local, when non-nil, lists the world ranks this process hosts (the
	// multi-process TCP form); nil means all ranks are local.
	local []int

	msgs  atomic.Int64 // total messages sent since the last reset
	bytes atomic.Int64 // total modeled payload bytes since the last reset

	// poisoned is set when a rank panics mid-Run so that ranks blocked in
	// Recv unblock (and re-panic) instead of deadlocking on messages that
	// will never arrive.
	poisoned atomic.Bool

	// tracer, when non-nil, records every Send (see trace.go).
	tracer atomic.Pointer[Tracer]

	// obs, when non-nil, is the observability hub plus the cached
	// hot-path metric handles (see obs.go). Installed by
	// EnableObservability before Run; nil means disabled, and every
	// instrumentation site costs one pointer comparison.
	obs *worldObs
}

type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// NewWorld creates a world of p ranks communicating under the given
// network profile.
func NewWorld(p int, profile simnet.Profile) *World {
	if p <= 0 {
		panic("comm: world size must be positive")
	}
	w := &World{p: p, profile: profile, boxes: make([]*mailbox, p), times: make([]float64, p)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.setTransport(simTransport{})
	return w
}

// setTransport installs the execution backend and caches its clock mode.
func (w *World) setTransport(t Transport) {
	w.transport = t
	w.wall = t.Wall()
	w.epoch.Store(time.Now().UnixNano())
	w.syncObsClock()
}

// Transport returns the name of the world's execution backend: "sim" (the
// default virtual-clock simulator), "goroutine", or "tcp".
func (w *World) Transport() string { return w.transport.Name() }

// WallClock reports whether the world's times (Times, MaxTime, Proc.Now,
// Message.Arrival, TraceEvent timestamps) are measured wall-clock seconds
// rather than simulated virtual seconds. False on the simulator backend,
// true on the goroutine and TCP backends.
func (w *World) WallClock() bool { return w.wall }

// Close releases any transport resources (network listeners and
// connections of the TCP backend; a no-op for the simulator and goroutine
// backends). The world must not be used after Close.
func (w *World) Close() error { return w.transport.close() }

// wallNow returns the measured seconds since the last Run's epoch.
func (w *World) wallNow() float64 {
	return float64(time.Now().UnixNano()-w.epoch.Load()) * 1e-9
}

// localRanks returns the world ranks hosted by this process.
func (w *World) localRanks() []int {
	if w.local != nil {
		return w.local
	}
	all := make([]int, w.p)
	for i := range all {
		all[i] = i
	}
	return all
}

// LocalRanks returns the world ranks this process hosts: all of them
// except on a multi-process TCP world restricted with TCPConfig.LocalRanks.
// Run executes rank programs (and fills Times entries) only for these.
func (w *World) LocalRanks() []int {
	return append([]int(nil), w.localRanks()...)
}

// NewWorldTopo creates a world of p ranks on a two-level topology:
// consecutive groups of topo.RanksPerNode ranks share a node, intra-node
// messages are priced by topo.Intra and inter-node messages by topo.Inter
// (both in seconds per the α–β model). The world's default profile
// (returned by Profile, used for local compute costs) is the inter-node
// profile. When topo.NICSerial > 0, inter-node sends additionally pay the
// per-node NIC bandwidth-sharing factor for concurrently sending
// node-mates (see Topology.NICFactor and Proc.Send). Panics if
// topo.Validate fails or p <= 0.
//
// A topology world is exactly the two-level case of NewWorldHier; it
// additionally answers the legacy Topology accessor.
func NewWorldTopo(p int, topo simnet.Topology) *World {
	if err := topo.Validate(); err != nil {
		panic(err.Error())
	}
	w := NewWorldHier(p, topo.Hierarchy())
	w.topo = &topo
	return w
}

// NewWorldHier creates a world of p ranks on an N-level machine hierarchy:
// every message is priced by the profile of the innermost level its two
// ranks share (simnet.Hierarchy.ProfileFor), and pays each crossed level's
// egress serialization factor on its bandwidth term (see Proc.Send). The
// world's default profile (returned by Profile, used for local compute
// costs) is the outermost level's. Panics if h.Validate fails or p <= 0.
func NewWorldHier(p int, h simnet.Hierarchy) *World {
	if err := h.Validate(); err != nil {
		panic(err.Error())
	}
	w := NewWorld(p, h.Levels[len(h.Levels)-1].Profile)
	w.hier = &h
	return w
}

// NewWorldPlaced creates a world of p ranks gang-placed onto slots of a
// larger machine: rank i occupies machine slot slots[i] (strictly
// ascending, within the machine), and every message is priced by the
// machine hierarchy over the two ranks' slots — profile of the innermost
// machine level the slots share, serialization factors of the machine
// levels crossed. When the placement is regular, the world reports the
// induced job-structure hierarchy (simnet.Hierarchy.Induced) through
// Hierarchy/SubLevel so hierarchical collectives organize around the
// machine's real locality; irregular placements report no hierarchy and
// run flat, still machine-correctly priced. Panics on an invalid machine,
// a slot count mismatch, or out-of-machine slots. Multi-tenant contention
// across co-placed worlds is modeled by installing a shared
// ActivitySource (see SetActivitySource); without one, contention falls
// back to the per-world static proxy.
func NewWorldPlaced(p int, mach simnet.Hierarchy, slots []int) *World {
	if err := mach.Validate(); err != nil {
		panic(err.Error())
	}
	if len(slots) != p {
		panic(fmt.Sprintf("comm: %d slots for %d ranks", len(slots), p))
	}
	for i, s := range slots {
		if s < 0 {
			panic(fmt.Sprintf("comm: negative machine slot %d", s))
		}
		if i > 0 && slots[i-1] >= s {
			panic("comm: machine slots must be strictly ascending")
		}
	}
	w := NewWorld(p, mach.Levels[len(mach.Levels)-1].Profile)
	m := mach
	w.mach = &m
	w.slots = append([]int(nil), slots...)
	if ih, ok := mach.Induced(slots); ok {
		w.hier = &ih
	}
	return w
}

// ActivitySource supplies observed per-level in-flight flow counts for
// dynamic contention pricing — the multi-tenant replacement for the static
// communicator-size proxy (see Proc.Send). Slot arguments are machine
// slots on placed worlds (NewWorldPlaced) and plain world ranks otherwise;
// levels index the pricing hierarchy (the machine's, on placed worlds).
// Counts include the querying flow itself; values below 1 are treated
// as 1. Implementations must be safe for concurrent reads from rank
// goroutines — the cluster simulator satisfies this by only mutating
// counters between Run calls on its single event-loop goroutine.
type ActivitySource interface {
	// EgressFlows returns how many flows are driving the egress of the
	// level-`level` group containing `slot` at the current event.
	EgressFlows(slot, level int) int
	// IngressFlows returns how many flows are converging on the ingress of
	// the level-`level` group containing `slot` at the current event.
	IngressFlows(slot, level int) int
}

// SetActivitySource installs src as the world's dynamic contention oracle:
// Send prices every crossed level's egress (and, on hierarchies with
// ingress caps, the destination's ingress) with src's observed flow counts
// instead of the static communicator-size proxy. Install before Run; pass
// nil to restore the proxy.
func (w *World) SetActivitySource(src ActivitySource) { w.activity = src }

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Profile returns the world's network profile (the inter-node profile for
// topology worlds).
func (w *World) Profile() simnet.Profile { return w.profile }

// Topology returns the world's two-level topology, if the world was built
// with NewWorldTopo. Worlds built directly from a Hierarchy report false;
// use Hierarchy instead.
func (w *World) Topology() (simnet.Topology, bool) {
	if w.topo == nil {
		return simnet.Topology{}, false
	}
	return *w.topo, true
}

// Hierarchy returns the world's machine hierarchy, if one was configured
// (directly via NewWorldHier, or as the two-level hierarchy of a
// NewWorldTopo topology).
func (w *World) Hierarchy() (simnet.Hierarchy, bool) {
	if w.hier == nil {
		return simnet.Hierarchy{}, false
	}
	return *w.hier, true
}

// pricingHier returns the hierarchy messages are priced on — the machine
// hierarchy for placed worlds, the world's own otherwise — or nil for flat
// worlds.
func (w *World) pricingHier() *simnet.Hierarchy {
	if w.mach != nil {
		return w.mach
	}
	return w.hier
}

// slotOf maps a world rank to its position on the pricing hierarchy: its
// machine slot on placed worlds, the rank itself otherwise.
func (w *World) slotOf(rank int) int {
	if w.slots != nil {
		return w.slots[rank]
	}
	return rank
}

// profileFor returns the profile pricing a message from src to dst.
func (w *World) profileFor(src, dst int) simnet.Profile {
	if h := w.pricingHier(); h != nil {
		return h.ProfileFor(w.slotOf(src), w.slotOf(dst))
	}
	return w.profile
}

// Times returns each rank's completion time for the last Run. On the
// simulator backend (the default) entries are final virtual-clock values —
// the modeled α–β completion times. On the real backends (goroutine, TCP)
// entries are measured wall-clock seconds from the Run epoch to the rank's
// program returning. On a multi-process TCP world only this process's
// LocalRanks entries are filled; the rest stay zero.
func (w *World) Times() []float64 { return w.times }

// TotalMessages returns the number of messages sent since the last
// ResetCounters, across all ranks. Useful for verifying the analytic
// message complexity of collective algorithms.
func (w *World) TotalMessages() int64 { return w.msgs.Load() }

// TotalBytes returns the total modeled payload volume since the last
// ResetCounters.
func (w *World) TotalBytes() int64 { return w.bytes.Load() }

// ResetCounters zeroes the message and byte counters.
func (w *World) ResetCounters() {
	w.msgs.Store(0)
	w.bytes.Store(0)
}

// MaxTime returns the maximum entry of Times: the simulated completion
// time of the last Run on the simulator backend, the measured wall-clock
// completion time (of this process's ranks) on real transports.
func (w *World) MaxTime() float64 {
	max := 0.0
	for _, t := range w.times {
		if t > max {
			max = t
		}
	}
	return max
}

// Proc is one rank's handle on the world. A Proc is confined to the
// goroutine running the rank's program (plus any nonblocking-operation
// goroutines it explicitly forks via Fork).
//
// A Proc may be a sub-communicator view (see Sub): Rank and Size then
// refer to the group, and peer arguments to Send/Recv/SendRecv/Barrier are
// group-local ranks, transparently translated to world ranks. Collective
// algorithms written against this interface therefore run unchanged over
// any subset of ranks.
type Proc struct {
	rank    int // world rank
	world   *World
	clock   simnet.Clock
	nextTag int

	// group, when non-nil, restricts this view to a sub-communicator: the
	// ascending world ranks of the group, with groupRank this rank's index.
	group     []int
	groupRank int

	// levelUsers caches, per hierarchy level, the number of this
	// communicator's ranks sharing this rank's group at that level — the
	// modeled count of flows contending for the group's egress (see
	// activeAt). A zero entry means not yet computed.
	levelUsers []int

	// obs is this rank's span track, cached at Proc creation (Run, Sub,
	// Fork) so the disabled path is a plain nil field check. Nil when
	// the world's observability is disabled.
	obs *obs.Track
}

// Rank returns this process's rank in [0, Size) — group-local on a
// sub-communicator view.
func (p *Proc) Rank() int {
	if p.group != nil {
		return p.groupRank
	}
	return p.rank
}

// WorldRank returns this process's rank in the full world, regardless of
// any sub-communicator view.
func (p *Proc) WorldRank() int { return p.rank }

// Size returns the communicator size (the group size on a
// sub-communicator view).
func (p *Proc) Size() int {
	if p.group != nil {
		return len(p.group)
	}
	return p.world.p
}

// worldRank translates a communicator-local peer rank to a world rank.
func (p *Proc) worldRank(r int) int {
	if p.group != nil {
		if r < 0 || r >= len(p.group) {
			panic(fmt.Sprintf("comm: invalid group rank %d (group size %d)", r, len(p.group)))
		}
		return p.group[r]
	}
	if r < 0 || r >= p.world.p {
		panic(fmt.Sprintf("comm: invalid rank %d (world size %d)", r, p.world.p))
	}
	return r
}

// Profile returns the network profile (the inter-node profile on a
// topology world).
func (p *Proc) Profile() simnet.Profile { return p.world.profile }

// Topology returns the world's two-level topology if one is configured.
// Sub-communicator views report no topology: the node grouping is defined
// over world ranks, and hierarchical algorithms are expected to run on the
// world communicator.
func (p *Proc) Topology() (simnet.Topology, bool) {
	if p.group != nil {
		return simnet.Topology{}, false
	}
	return p.world.Topology()
}

// Hierarchy returns the world's machine hierarchy if one is configured
// (a two-level one on NewWorldTopo worlds). Sub-communicator views report
// no hierarchy, for the same reason as Topology.
func (p *Proc) Hierarchy() (simnet.Hierarchy, bool) {
	if p.group != nil {
		return simnet.Hierarchy{}, false
	}
	return p.world.Hierarchy()
}

// Sub returns a sub-communicator view of this rank over the given world
// ranks (ascending, distinct, containing this rank). The view starts at
// the parent's current virtual time and has an independent clock; fold its
// elapsed time back with Join after the sub-group phase completes, exactly
// as with Fork. Tag ranges must be provided by the caller (allocate on the
// parent in program order); nesting Sub on a sub view is not supported.
func (p *Proc) Sub(ranks []int) *Proc {
	if p.group != nil {
		panic("comm: nested sub-communicators are not supported")
	}
	idx := -1
	for i, r := range ranks {
		if i > 0 && ranks[i-1] >= r {
			panic("comm: Sub ranks must be ascending and distinct")
		}
		if r < 0 || r >= p.world.p {
			panic(fmt.Sprintf("comm: Sub rank %d outside world of %d", r, p.world.p))
		}
		if r == p.rank {
			idx = i
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("comm: Sub group %v does not contain caller rank %d", ranks, p.rank))
	}
	s := &Proc{rank: p.rank, world: p.world, group: ranks, groupRank: idx, obs: p.obs}
	s.clock.Observe(p.clock.Now())
	return s
}

// SubLevel returns the sub-communicator of all ranks sharing this rank's
// level-l group: SubLevel(0) is this rank's node, SubLevel(1) its rack or
// Dragonfly group, and SubLevel(Depth-1) the whole world. The view follows
// the Sub contract (independent clock, fold back with Join, no nesting).
// Panics on a world without a hierarchy or an out-of-range level.
func (p *Proc) SubLevel(l int) *Proc {
	h := p.world.hier
	if h == nil {
		panic("comm: SubLevel requires a hierarchy world")
	}
	if l < 0 || l >= h.Depth() {
		panic(fmt.Sprintf("comm: SubLevel %d outside hierarchy of depth %d", l, h.Depth()))
	}
	return p.Sub(h.GroupRanks(p.rank, l, p.world.p))
}

// Now returns the rank's current time: its virtual clock on the simulator
// backend, measured wall-clock seconds since the Run epoch on real
// transports (where every rank shares the machine's real clock).
func (p *Proc) Now() float64 {
	if p.world.wall {
		return p.world.wallNow()
	}
	return p.clock.Now()
}

// Compute advances the rank's virtual clock by a modeled computation. On
// real transports it is a no-op: computation there takes actual wall time,
// which Now measures directly.
func (p *Proc) Compute(seconds float64) {
	if p.world.wall {
		return
	}
	p.clock.Advance(seconds)
}

// Observe advances the rank's virtual clock to time t if later. A no-op on
// real transports, where time flows on its own.
func (p *Proc) Observe(t float64) {
	if p.world.wall {
		return
	}
	p.clock.Observe(t)
}

// Wall reports whether this rank's times are measured wall-clock seconds
// (see World.WallClock) — the gate collectives use to enable true-
// parallelism optimizations that would be meaningless under the
// single-machine simulator.
func (p *Proc) Wall() bool { return p.world.wall }

// NextTagBase allocates a fresh tag range for one collective operation.
// Ranks call collectives in identical program order, so the same base is
// allocated on every rank; each collective may use [base, base+tagStride).
func (p *Proc) NextTagBase() int {
	base := p.nextTag
	p.nextTag += tagStride
	return base
}

// tagStride is the tag space reserved per collective invocation; stages
// within one collective offset into this range.
const tagStride = 1 << 20

// activeAt returns how many ranks of this Proc's communicator share this
// rank's level-l group on the pricing hierarchy — the modeled number of
// flows contending for the group's egress when the communicator drives
// traffic out of it. This is the static fallback proxy, used only when no
// ActivitySource is installed: the communicator group stands in for the
// in-flight flow set, on the grounds that collectives keep every member of
// the communicator they run on busy in lockstep — a world-communicator
// phase contends with all group-mates, a leader sub-communicator phase
// (one rank per group) is contention-free. The proxy is exact for one job
// running lockstep collectives alone on the machine and deliberately blind
// to anything else (overlapped collectives, co-tenant jobs); worlds driven
// by the cluster simulator install an ActivitySource and never reach it.
// The count is static per communicator view, which keeps message pricing
// deterministic (no cross-goroutine state).
func (p *Proc) activeAt(l int) int {
	w := p.world
	h := w.pricingHier()
	if p.levelUsers == nil {
		p.levelUsers = make([]int, h.Depth())
	}
	if p.levelUsers[l] == 0 {
		if p.group == nil && w.slots == nil {
			p.levelUsers[l] = len(h.GroupRanks(p.rank, l, w.p))
		} else {
			mine := h.GroupOf(w.slotOf(p.rank), l)
			if p.group == nil {
				for r := 0; r < w.p; r++ {
					if h.GroupOf(w.slotOf(r), l) == mine {
						p.levelUsers[l]++
					}
				}
			} else {
				for _, r := range p.group {
					if h.GroupOf(w.slotOf(r), l) == mine {
						p.levelUsers[l]++
					}
				}
			}
		}
	}
	return p.levelUsers[l]
}

// Send transmits payload of the given modeled size to rank `to`, through
// the world's Transport.
//
// On the simulator backend the sender's clock advances by the full
// α+β·bytes transfer (message injection occupies the sender, which is what
// gives the split phase its (P−1)α latency term in §5.3.2); the receiver
// will observe the same completion time. On hierarchy worlds the message
// pays, for every level it escapes below the shared one, that level's
// egress serialization factor (simnet.Hierarchy.SerialFactor) — and, on
// hierarchies with ingress caps, every entered level's ingress factor
// (simnet.Hierarchy.IngressFactor). The contending flow counts come from
// the world's ActivitySource when one is installed (observed in-flight
// flows, the multi-tenant cluster path) and otherwise from the static
// communicator-size proxy of activeAt — on a two-level topology world
// exactly the per-node NIC factor of Topology.NICFactor.
//
// On real transports the payload actually moves (through the wire codec in
// process, over a socket across processes) and the recorded trace times
// are measured; contention is then physical, so no factor is modeled.
func (p *Proc) Send(to, tag int, payload any, bytes int) {
	p.world.transport.send(p, p.worldRank(to), tag, payload, bytes)
}

// sendFactor returns the modeled contention factor and priced hierarchy
// level of a message to world rank dst (see Send): the product of every
// escaped level's egress serialization factor and — under an
// ActivitySource, on ingress-capped hierarchies — every entered level's
// ingress factor at the destination.
func (p *Proc) sendFactor(dst int) (factor float64, level int) {
	factor = 1.0
	w := p.world
	h := w.pricingHier()
	if h == nil {
		return factor, level
	}
	src, d := w.slotOf(p.rank), w.slotOf(dst)
	level = h.SharedLevel(src, d)
	if a := w.activity; a != nil {
		for l := 0; l < level; l++ {
			if n := a.EgressFlows(src, l); n > 1 {
				factor *= h.SerialFactor(l, n)
			}
			if n := a.IngressFlows(d, l); n > 1 {
				factor *= h.IngressFactor(l, n)
			}
		}
		return factor, level
	}
	for l := 0; l < level; l++ {
		factor *= h.SerialFactor(l, p.activeAt(l))
	}
	return factor, level
}

// sharedLevel returns the hierarchy level a message to world rank dst is
// priced (and calibrated) at: the innermost pricing-hierarchy level shared
// by the two ranks (their machine slots, on placed worlds), 0 on flat
// worlds.
func (p *Proc) sharedLevel(dst int) int {
	if h := p.world.pricingHier(); h != nil {
		return h.SharedLevel(p.world.slotOf(p.rank), p.world.slotOf(dst))
	}
	return 0
}

// recordSend updates the world counters and, when tracing is enabled,
// records the message — shared bookkeeping of every transport's send path.
func (p *Proc) recordSend(dst, tag, bytes int, start, arrival, factor float64, level int) {
	p.world.msgs.Add(1)
	p.world.bytes.Add(int64(bytes))
	if tr := p.world.tracer.Load(); tr != nil {
		tr.record(TraceEvent{Src: p.rank, Dst: dst, Tag: tag, Bytes: bytes,
			SendTime: start, Arrival: arrival, NICFactor: factor, Level: level})
	}
	if ob := p.world.obs; ob != nil {
		p.observeSend(ob, dst, tag, bytes, start, arrival, level)
	}
}

// deliver enqueues a message into the destination world rank's mailbox.
func (p *Proc) deliver(to int, m Message) {
	p.world.deliver(to, m)
}

// deliver enqueues a message into a local rank's mailbox — the common
// last hop of every transport (the TCP backend's socket readers land
// remote messages here too).
func (w *World) deliver(to int, m Message) {
	box := w.boxes[to]
	box.mu.Lock()
	box.pending = append(box.pending, m)
	box.mu.Unlock()
	box.cond.Broadcast()
}

// poison marks the world failed and wakes every rank blocked in Recv,
// which then re-panics instead of deadlocking on messages that will never
// arrive. Rank panics and transport failures (a TCP peer dying mid-run)
// both land here.
func (w *World) poison() {
	w.poisoned.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Recv blocks until a message from rank `from` with the given tag is
// available, removes it, advances the virtual clock to its arrival time
// (simulator backend only), and returns it. Out-of-order messages
// (different tags or sources) are left queued, giving MPI-style tag
// matching.
func (p *Proc) Recv(from, tag int) Message {
	wfrom := p.worldRank(from)
	box := p.world.boxes[p.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		for i, m := range box.pending {
			if m.Src == wfrom && m.Tag == tag {
				box.pending = append(box.pending[:i], box.pending[i+1:]...)
				p.Observe(m.Arrival)
				return m
			}
		}
		if p.world.poisoned.Load() {
			panic("comm: world poisoned by a peer rank's panic")
		}
		box.cond.Wait()
	}
}

// SendRecv exchanges messages with a peer (both directions use the same
// tag), the fundamental step of recursive doubling/halving. Send happens
// first; the pattern is deadlock-free because payloads are buffered.
func (p *Proc) SendRecv(peer, tag int, payload any, bytes int) Message {
	p.Send(peer, tag, payload, bytes)
	return p.Recv(peer, tag)
}

// Fork creates a detached Proc sharing this rank's identity and mailbox but
// with an independent clock starting at the current virtual time. Used to
// run nonblocking collectives: the forked Proc's sends and receives do not
// advance the parent's clock; Join folds the forked completion time back.
//
// Tag ranges must be allocated on the parent (in program order) before
// forking, so concurrent operations never collide.
func (p *Proc) Fork() *Proc {
	f := &Proc{rank: p.rank, world: p.world, group: p.group, groupRank: p.groupRank,
		levelUsers: append([]int(nil), p.levelUsers...), obs: p.obs}
	f.clock.Observe(p.clock.Now())
	return f
}

// Join folds a forked Proc's elapsed virtual time into the parent,
// modeling perfect computation/communication overlap: the parent's clock
// becomes max(parent, forked). A no-op on real transports, where overlap
// is physical.
func (p *Proc) Join(f *Proc) {
	p.Observe(f.Now())
}

// Barrier synchronizes all ranks of this communicator (dissemination
// barrier: ⌈log2 P⌉ rounds), advancing every clock to a common time.
func (p *Proc) Barrier() {
	base := p.NextTagBase()
	n, rank := p.Size(), p.Rank()
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (rank + dist) % n
		from := (rank - dist + n) % n
		p.Send(to, base+round, nil, 0)
		p.Recv(from, base+round)
	}
}

// Run executes f on every rank this process hosts (all of them, except on
// a multi-process TCP world) concurrently and returns the per-rank
// results. Panics on any rank are re-raised on the caller with the rank
// attached. After Run returns, World.Times holds each local rank's
// completion time — final virtual clock on the simulator, measured wall
// seconds on real transports.
func Run[R any](w *World, f func(*Proc) R) []R {
	w.poisoned.Store(false)
	w.epoch.Store(time.Now().UnixNano())
	for i := range w.times {
		w.times[i] = 0
	}
	results := make([]R, w.p)
	panics := make([]any, w.p)
	var wg sync.WaitGroup
	for _, r := range w.localRanks() {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
					// Poison the world and wake every rank blocked in
					// Recv: their messages will never arrive.
					w.poison()
				}
			}()
			p := &Proc{rank: rank, world: w}
			if w.obs != nil {
				p.obs = w.obs.hub.Rank(rank)
			}
			results[rank] = f(p)
			w.times[rank] = p.Now()
		}(r)
	}
	wg.Wait()
	// Re-raise the root cause, preferring a rank's own panic over the
	// secondary "world poisoned" panics it triggered in blocked peers.
	var first any
	firstRank := -1
	for rank, e := range panics {
		if e == nil {
			continue
		}
		if s, ok := e.(string); ok && s == "comm: world poisoned by a peer rank's panic" {
			if first == nil {
				first, firstRank = e, rank
			}
			continue
		}
		first, firstRank = e, rank
		break
	}
	if first != nil {
		panic(fmt.Sprintf("comm: rank %d panicked: %v", firstRank, first))
	}
	// Drain mailboxes so a world can be reused across experiments even if
	// a protocol intentionally leaves stragglers (none of ours do; this is
	// defensive hygiene).
	for _, b := range w.boxes {
		b.mu.Lock()
		b.pending = b.pending[:0]
		b.mu.Unlock()
	}
	return results
}
