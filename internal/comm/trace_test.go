package comm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func TestTracerRecordsAllSends(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		p.Send(1-p.Rank(), 3, nil, 64)
		p.Recv(1-p.Rank(), 3)
		return nil
	})
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Bytes != 64 || e.Tag != 3 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Arrival <= e.SendTime {
			t.Fatal("arrival must follow send")
		}
	}
	if tr.TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d, want 128", tr.TotalBytes())
	}
}

func TestTracerDisable(t *testing.T) {
	w := NewWorld(2, simnet.Profile{})
	tr := w.EnableTrace()
	w.DisableTrace()
	Run(w, func(p *Proc) any {
		p.Send(1-p.Rank(), 0, nil, 8)
		p.Recv(1-p.Rank(), 0)
		return nil
	})
	if len(tr.Events()) != 0 {
		t.Fatal("tracer recorded after disable")
	}
}

func TestTracerRoundsShowPayloadDoubling(t *testing.T) {
	// Recursive-doubling style traffic: every rank exchanges 100B, then
	// 200B. Rounds must cluster by virtual send time with doubling bytes.
	w := NewWorld(4, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		p.SendRecv(p.Rank()^1, 0, nil, 100)
		p.SendRecv(p.Rank()^2, 1, nil, 200)
		return nil
	})
	counts, byteTotals := tr.Rounds()
	if len(counts) != 2 {
		t.Fatalf("got %d rounds, want 2: %v", len(counts), counts)
	}
	if counts[0] != 4 || counts[1] != 4 {
		t.Fatalf("round message counts %v, want [4 4]", counts)
	}
	if byteTotals[0] != 400 || byteTotals[1] != 800 {
		t.Fatalf("round bytes %v, want [400 800]", byteTotals)
	}
}

func TestTracerDumpAndReset(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		if p.Rank() == 0 {
			p.Send(1, 7, nil, 32)
		} else {
			p.Recv(0, 7)
		}
		return nil
	})
	var buf bytes.Buffer
	tr.Dump(&buf)
	if !strings.Contains(buf.String(), "0 →  1") {
		t.Fatalf("dump missing edge: %q", buf.String())
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("reset failed")
	}
}

// TestTracerEventsOf: per-source filtering returns a rank's sends in send
// order, complete regardless of other ranks' concurrent activity.
func TestTracerEventsOf(t *testing.T) {
	w := NewWorld(3, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		peer := (p.Rank() + 1) % 3
		for i := 0; i < 4; i++ {
			p.Send(peer, 100+i, nil, 8*(i+1))
		}
		from := (p.Rank() + 2) % 3
		for i := 0; i < 4; i++ {
			p.Recv(from, 100+i)
		}
		return nil
	})
	for src := 0; src < 3; src++ {
		own := tr.EventsOf(src)
		if len(own) != 4 {
			t.Fatalf("src %d: %d events, want 4", src, len(own))
		}
		for i, e := range own {
			if e.Src != src {
				t.Fatalf("src %d: foreign event %+v", src, e)
			}
			if e.Bytes != 8*(i+1) {
				t.Fatalf("src %d: events out of send order: %+v", src, own)
			}
		}
	}
	if got := tr.EventsOf(99); got != nil {
		t.Fatalf("unknown source should have no events, got %v", got)
	}
}

// TestTracerLimitPerRank: the per-rank cap keeps exactly the first limit
// sends of each rank — a deterministic prefix, unlike a global cap.
func TestTracerLimitPerRank(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	tr.LimitPerRank(3)
	Run(w, func(p *Proc) any {
		peer := 1 - p.Rank()
		for i := 0; i < 10; i++ {
			p.Send(peer, 200+i, nil, 8*(i+1))
		}
		for i := 0; i < 10; i++ {
			p.Recv(peer, 200+i)
		}
		return nil
	})
	for src := 0; src < 2; src++ {
		own := tr.EventsOf(src)
		if len(own) != 3 {
			t.Fatalf("src %d: %d events recorded, want the capped 3", src, len(own))
		}
		for i, e := range own {
			if e.Bytes != 8*(i+1) {
				t.Fatalf("src %d: cap must keep the FIRST sends, got %+v", src, own)
			}
		}
	}
	// Reset clears the per-rank counts too: recording resumes.
	tr.Reset()
	Run(w, func(p *Proc) any {
		peer := 1 - p.Rank()
		p.Send(peer, 300, nil, 8)
		p.Recv(peer, 300)
		return nil
	})
	if got := len(tr.EventsOf(0)); got != 1 {
		t.Fatalf("after reset: %d events, want 1", got)
	}
}

// TestTracerLimitReEnable: disabling the cap and re-enabling it later
// must enforce against the true recorded counts, not counts from the
// first capped epoch.
func TestTracerLimitReEnable(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	send := func(rounds, tagBase int) {
		Run(w, func(p *Proc) any {
			peer := 1 - p.Rank()
			for i := 0; i < rounds; i++ {
				p.Send(peer, tagBase+i, nil, 8)
			}
			for i := 0; i < rounds; i++ {
				p.Recv(peer, tagBase+i)
			}
			return nil
		})
	}
	tr.LimitPerRank(2)
	send(5, 100) // capped at 2
	tr.LimitPerRank(0)
	send(5, 200) // uncapped: 5 more
	tr.LimitPerRank(3)
	send(5, 300) // already 7 >= 3 recorded: nothing more
	if got := len(tr.EventsOf(0)); got != 7 {
		t.Fatalf("recorded %d events for rank 0, want 2 capped + 5 uncapped = 7", got)
	}
}

// TestTracerEventsOfSince: the incremental read hands out only the new
// suffix, and the generation exposes Resets even after the source has
// re-recorded more events than the caller's cursor.
func TestTracerEventsOfSince(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	send := func(rounds, tagBase int) {
		Run(w, func(p *Proc) any {
			peer := 1 - p.Rank()
			for i := 0; i < rounds; i++ {
				p.Send(peer, tagBase+i, nil, 8*(i+1))
			}
			for i := 0; i < rounds; i++ {
				p.Recv(peer, tagBase+i)
			}
			return nil
		})
	}
	send(3, 100)
	first, gen0 := tr.EventsOfSince(0, 0)
	if len(first) != 3 {
		t.Fatalf("initial read: %d events, want 3", len(first))
	}
	rest, gen1 := tr.EventsOfSince(0, 3)
	if len(rest) != 0 || gen1 != gen0 {
		t.Fatalf("cursor read should be empty at the same generation, got %d events gen %d", len(rest), gen1)
	}
	tr.Reset()
	send(5, 200) // MORE events than the old cursor: a naive len check would miss the reset
	after, gen2 := tr.EventsOfSince(0, 3)
	if gen2 == gen0 {
		t.Fatal("reset must bump the generation")
	}
	if len(after) != 2 {
		t.Fatalf("post-reset read from stale cursor 3: %d events, want 2 (of the 5 new)", len(after))
	}
	all, _ := tr.EventsOfSince(0, 0)
	if len(all) != 5 {
		t.Fatalf("post-reset full read: %d events, want 5", len(all))
	}
}

func TestDumpPrintsAllFields(t *testing.T) {
	// Dump was lossy for a while (it predates Level and NICFactor):
	// every TraceEvent field must appear on its line.
	cases := []struct {
		event TraceEvent
		want  []string
	}{
		{
			event: TraceEvent{Src: 0, Dst: 1, Tag: 5, Bytes: 256,
				SendTime: 1e-6, Arrival: 3.5e-6, NICFactor: 2, Level: 1},
			want: []string{"1.000µs", "0 →  1", "tag=5", "256B",
				"lvl=1", "nic=2", "arrives", "3.500µs"},
		},
		{
			event: TraceEvent{Src: 3, Dst: 2, Tag: 40, Bytes: 1024,
				SendTime: 2e-6, Arrival: 9e-6, NICFactor: 1.25, Level: 2},
			want: []string{"2.000µs", "3 →  2", "tag=40", "1024B",
				"lvl=2", "nic=1.25", "arrives", "9.000µs"},
		},
		{
			event: TraceEvent{Src: 1, Dst: 0, Tag: 7, Bytes: 8,
				SendTime: 4e-6, Arrival: 4.1e-6, NICFactor: 1, Level: 0},
			want: []string{"4.000µs", "1 →  0", "tag=7", "8B",
				"lvl=0", "nic=1", "arrives", "4.100µs"},
		},
	}
	tr := &Tracer{shards: make([]traceShard, 4)}
	for _, c := range cases {
		tr.record(c.event)
	}
	var buf bytes.Buffer
	tr.Dump(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(cases) {
		t.Fatalf("dumped %d lines, want %d:\n%s", len(lines), len(cases), buf.String())
	}
	// Events (and hence lines) come out sorted by send time.
	for i, c := range cases {
		for _, want := range c.want {
			if !strings.Contains(lines[i], want) {
				t.Errorf("line %d = %q: missing %q", i, lines[i], want)
			}
		}
	}
}
