package comm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func TestTracerRecordsAllSends(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		p.Send(1-p.Rank(), 3, nil, 64)
		p.Recv(1-p.Rank(), 3)
		return nil
	})
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Bytes != 64 || e.Tag != 3 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Arrival <= e.SendTime {
			t.Fatal("arrival must follow send")
		}
	}
	if tr.TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d, want 128", tr.TotalBytes())
	}
}

func TestTracerDisable(t *testing.T) {
	w := NewWorld(2, simnet.Profile{})
	tr := w.EnableTrace()
	w.DisableTrace()
	Run(w, func(p *Proc) any {
		p.Send(1-p.Rank(), 0, nil, 8)
		p.Recv(1-p.Rank(), 0)
		return nil
	})
	if len(tr.Events()) != 0 {
		t.Fatal("tracer recorded after disable")
	}
}

func TestTracerRoundsShowPayloadDoubling(t *testing.T) {
	// Recursive-doubling style traffic: every rank exchanges 100B, then
	// 200B. Rounds must cluster by virtual send time with doubling bytes.
	w := NewWorld(4, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		p.SendRecv(p.Rank()^1, 0, nil, 100)
		p.SendRecv(p.Rank()^2, 1, nil, 200)
		return nil
	})
	counts, byteTotals := tr.Rounds()
	if len(counts) != 2 {
		t.Fatalf("got %d rounds, want 2: %v", len(counts), counts)
	}
	if counts[0] != 4 || counts[1] != 4 {
		t.Fatalf("round message counts %v, want [4 4]", counts)
	}
	if byteTotals[0] != 400 || byteTotals[1] != 800 {
		t.Fatalf("round bytes %v, want [400 800]", byteTotals)
	}
}

func TestTracerDumpAndReset(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		if p.Rank() == 0 {
			p.Send(1, 7, nil, 32)
		} else {
			p.Recv(0, 7)
		}
		return nil
	})
	var buf bytes.Buffer
	tr.Dump(&buf)
	if !strings.Contains(buf.String(), "0 →  1") {
		t.Fatalf("dump missing edge: %q", buf.String())
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("reset failed")
	}
}
