package comm

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/simnet"
)

// zeroLatency is a profile where time does not advance, for pure
// message-plumbing tests.
var zeroLatency = simnet.Profile{Name: "zero"}

func TestPingPong(t *testing.T) {
	w := NewWorld(2, zeroLatency)
	out := Run(w, func(p *Proc) string {
		if p.Rank() == 0 {
			p.Send(1, 7, "ping", 4)
			return p.Recv(1, 7).Payload.(string)
		}
		m := p.Recv(0, 7)
		p.Send(0, 7, "pong", 4)
		return m.Payload.(string)
	})
	if out[0] != "pong" || out[1] != "ping" {
		t.Fatalf("got %v", out)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2, zeroLatency)
	out := Run(w, func(p *Proc) [2]int {
		if p.Rank() == 0 {
			p.Send(1, 1, 100, 0)
			p.Send(1, 2, 200, 0)
			return [2]int{}
		}
		// Receive in reverse tag order: matching must buffer tag 1.
		b := p.Recv(0, 2).Payload.(int)
		a := p.Recv(0, 1).Payload.(int)
		return [2]int{a, b}
	})
	if out[1] != [2]int{100, 200} {
		t.Fatalf("got %v", out[1])
	}
}

func TestSourceMatching(t *testing.T) {
	w := NewWorld(3, zeroLatency)
	out := Run(w, func(p *Proc) int {
		switch p.Rank() {
		case 0:
			p.Send(2, 5, 10, 0)
		case 1:
			p.Send(2, 5, 20, 0)
		case 2:
			// Same tag, distinct sources: must match by source.
			a := p.Recv(1, 5).Payload.(int)
			b := p.Recv(0, 5).Payload.(int)
			return a*100 + b
		}
		return 0
	})
	if out[2] != 2010 {
		t.Fatalf("got %d, want 2010", out[2])
	}
}

func TestVirtualClockAlphaBeta(t *testing.T) {
	prof := simnet.Profile{Alpha: 1e-6, BetaPerByte: 1e-9}
	w := NewWorld(2, prof)
	Run(w, func(p *Proc) any {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 1000)
		} else {
			p.Recv(0, 0)
		}
		return nil
	})
	want := 1e-6 + 1e-6 // α + β·1000
	for rank, got := range w.Times() {
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("rank %d time = %g, want %g", rank, got, want)
		}
	}
}

func TestReceiverWaitsForSender(t *testing.T) {
	prof := simnet.Profile{Alpha: 1e-6}
	w := NewWorld(2, prof)
	Run(w, func(p *Proc) any {
		if p.Rank() == 0 {
			p.Compute(5e-6) // sender is busy first
			p.Send(1, 0, nil, 0)
		} else {
			p.Recv(0, 0) // arrival = 5µs + α
		}
		return nil
	})
	if got, want := w.Times()[1], 6e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("receiver time = %g, want %g", got, want)
	}
}

func TestSendRecvSymmetricExchange(t *testing.T) {
	prof := simnet.Profile{Alpha: 2e-6, BetaPerByte: 1e-9}
	w := NewWorld(2, prof)
	Run(w, func(p *Proc) any {
		peer := 1 - p.Rank()
		p.SendRecv(peer, 3, nil, 500)
		return nil
	})
	// Both ranks advance α+βL sending, and the peer's message arrives at
	// the same completed time → exchange costs one α+βL on each side.
	want := 2e-6 + 500e-9
	for rank, got := range w.Times() {
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("rank %d time = %g, want %g", rank, got, want)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	prof := simnet.Profile{Alpha: 1e-6}
	w := NewWorld(8, prof)
	Run(w, func(p *Proc) any {
		p.Compute(float64(p.Rank()) * 1e-6) // skewed start
		p.Barrier()
		return nil
	})
	t0 := w.Times()[0]
	for rank, got := range w.Times() {
		if math.Abs(got-t0) > 1e-12 {
			t.Fatalf("rank %d time %g differs from rank 0 %g after barrier", rank, got, t0)
		}
	}
	// Barrier must dominate the slowest rank's start time.
	if t0 < 7e-6 {
		t.Fatalf("barrier completed at %g, before slowest rank started", t0)
	}
}

func TestNextTagBaseConsistentAcrossRanks(t *testing.T) {
	w := NewWorld(4, zeroLatency)
	out := Run(w, func(p *Proc) [3]int {
		return [3]int{p.NextTagBase(), p.NextTagBase(), p.NextTagBase()}
	})
	for r := 1; r < 4; r++ {
		if out[r] != out[0] {
			t.Fatalf("rank %d tag bases %v differ from rank 0 %v", r, out[r], out[0])
		}
	}
	if out[0][0] == out[0][1] {
		t.Fatal("tag bases must be distinct per invocation")
	}
}

func TestForkJoinOverlapSemantics(t *testing.T) {
	prof := simnet.Profile{Alpha: 1e-6}
	w := NewWorld(2, prof)
	Run(w, func(p *Proc) any {
		tag := p.NextTagBase()
		f := p.Fork()
		done := make(chan struct{})
		go func() {
			defer close(done)
			if f.Rank() == 0 {
				f.Send(1, tag, nil, 0)
			} else {
				f.Recv(0, tag)
			}
			f.Compute(10e-6) // 10µs of "communication work"
		}()
		p.Compute(4e-6) // overlapped local compute
		<-done
		p.Join(f)
		return nil
	})
	// Overlap: total = max(4µs, comm+10µs), not the sum.
	for rank, got := range w.Times() {
		if got > 12e-6 || got < 10e-6 {
			t.Fatalf("rank %d time = %g, want ~11µs (overlapped), not 15µs (serial)", rank, got)
		}
	}
}

func TestRunCollectsResultsInRankOrder(t *testing.T) {
	w := NewWorld(16, zeroLatency)
	out := Run(w, func(p *Proc) int { return p.Rank() * p.Rank() })
	for r, v := range out {
		if v != r*r {
			t.Fatalf("result[%d] = %d, want %d", r, v, r*r)
		}
	}
}

func TestRunReusableAcrossCalls(t *testing.T) {
	w := NewWorld(4, zeroLatency)
	var counter atomic.Int64
	for i := 0; i < 3; i++ {
		Run(w, func(p *Proc) any {
			peer := p.Rank() ^ 1
			p.SendRecv(peer, 9, p.Rank(), 0)
			counter.Add(1)
			return nil
		})
	}
	if counter.Load() != 12 {
		t.Fatalf("ran %d rank-programs, want 12", counter.Load())
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from rank goroutine")
		}
	}()
	w := NewWorld(2, zeroLatency)
	Run(w, func(p *Proc) any {
		if p.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
}

func TestManyRanksStress(t *testing.T) {
	// All-to-all with 32 ranks; exercises matching under contention.
	w := NewWorld(32, zeroLatency)
	out := Run(w, func(p *Proc) int {
		tag := p.NextTagBase()
		for to := 0; to < p.Size(); to++ {
			if to != p.Rank() {
				p.Send(to, tag, p.Rank(), 0)
			}
		}
		sum := p.Rank()
		for from := 0; from < p.Size(); from++ {
			if from != p.Rank() {
				sum += p.Recv(from, tag).Payload.(int)
			}
		}
		return sum
	})
	want := 31 * 32 / 2
	for r, v := range out {
		if v != want {
			t.Fatalf("rank %d sum = %d, want %d", r, v, want)
		}
	}
}

func TestPanicUnblocksPeersInRecv(t *testing.T) {
	// Rank 1 panics while rank 0 blocks waiting for its message; the world
	// must poison itself so Run terminates and re-raises the root cause.
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected panic to propagate")
		}
		msg, _ := e.(string)
		if !strings.Contains(msg, "boom") {
			t.Fatalf("expected root-cause panic, got %v", e)
		}
	}()
	w := NewWorld(2, zeroLatency)
	Run(w, func(p *Proc) any {
		if p.Rank() == 1 {
			panic("boom")
		}
		p.Recv(1, 0) // never satisfied; must be unblocked by poisoning
		return nil
	})
}

func TestWorldRecoversAfterPoisonedRun(t *testing.T) {
	w := NewWorld(2, zeroLatency)
	func() {
		defer func() { recover() }()
		Run(w, func(p *Proc) any {
			if p.Rank() == 0 {
				panic("first run dies")
			}
			p.Recv(0, 0)
			return nil
		})
	}()
	// A fresh Run on the same world must work.
	out := Run(w, func(p *Proc) int {
		peer := 1 - p.Rank()
		return p.SendRecv(peer, 1, p.Rank()+10, 0).Payload.(int)
	})
	if out[0] != 11 || out[1] != 10 {
		t.Fatalf("post-poison run wrong: %v", out)
	}
}
