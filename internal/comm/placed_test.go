package comm

import (
	"testing"

	"repro/internal/simnet"
)

// placedMach is a 2-ranks/node, 2-nodes/group test machine with a
// single-flow NIC, a two-flow group uplink, and matching ingress caps.
var placedMach = simnet.Hierarchy{Levels: []simnet.Level{
	{GroupSize: 2, Profile: cheapIntra, Serial: 1, IngressSerial: 1},
	{GroupSize: 2, Profile: costlyInter, Serial: 2, IngressSerial: 2},
	{Profile: simnet.AriesGlobal},
}}

// TestPlacedWorldPricesByMachineSlots: a placed world must price messages
// by the machine locality of the ranks' slots, not by the rank numbers.
func TestPlacedWorldPricesByMachineSlots(t *testing.T) {
	const bytes = 1 << 20
	// Ranks 0 and 1 land on node-mate slots 4 and 5; ranks 2 and 3 on the
	// next node of the same machine group.
	w := NewWorldPlaced(4, placedMach, []int{4, 5, 6, 7})
	times := Run(w, func(p *Proc) float64 {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, bytes)
			return p.Now()
		}
		if p.Rank() == 1 {
			p.Recv(0, 1)
		}
		return 0
	})
	if got, want := times[0], cheapIntra.TransferTime(bytes); got != want {
		t.Fatalf("node-mate slots priced %g, want intra %g", got, want)
	}
	// The induced hierarchy mirrors the machine locality.
	ih, ok := w.Hierarchy()
	if !ok {
		t.Fatal("regular placement must report an induced hierarchy")
	}
	if ih.SharedLevel(0, 1) != 0 || ih.SharedLevel(0, 2) != 1 {
		t.Fatalf("induced locality wrong: %d/%d", ih.SharedLevel(0, 1), ih.SharedLevel(0, 2))
	}
}

// TestPlacedWorldStaticProxy: without an ActivitySource a placed world
// falls back to the communicator-size proxy counted over machine groups —
// two node-mate ranks contending for a cap-1 NIC pay factor 2.
func TestPlacedWorldStaticProxy(t *testing.T) {
	const bytes = 1 << 20
	w := NewWorldPlaced(4, placedMach, []int{0, 1, 2, 3})
	times := Run(w, func(p *Proc) float64 {
		if p.Rank() == 0 {
			p.Send(2, 1, nil, bytes) // crosses the node boundary
			return p.Now()
		}
		if p.Rank() == 2 {
			p.Recv(0, 1)
		}
		return 0
	})
	want := costlyInter.Alpha + 2*costlyInter.BetaPerByte*bytes
	if got := times[0]; got != want {
		t.Fatalf("placed inter send cost %g, want %g (2 node-mates, cap 1)", got, want)
	}
}

// fixedActivity returns constant flow counts for every slot and level.
type fixedActivity struct{ egress, ingress int }

// EgressFlows implements ActivitySource.
func (f fixedActivity) EgressFlows(slot, level int) int { return f.egress }

// IngressFlows implements ActivitySource.
func (f fixedActivity) IngressFlows(slot, level int) int { return f.ingress }

// TestPlacedWorldActivitySource: an installed ActivitySource must replace
// the static proxy on both the egress and ingress sides of the crossed
// levels.
func TestPlacedWorldActivitySource(t *testing.T) {
	const bytes = 1 << 20
	send := func(egress, ingress int) float64 {
		w := NewWorldPlaced(4, placedMach, []int{0, 1, 2, 3})
		w.SetActivitySource(fixedActivity{egress: egress, ingress: ingress})
		times := Run(w, func(p *Proc) float64 {
			if p.Rank() == 0 {
				p.Send(2, 1, nil, bytes)
				return p.Now()
			}
			if p.Rank() == 2 {
				p.Recv(0, 1)
			}
			return 0
		})
		return times[0]
	}
	// 3 observed egress flows through the cap-1 NIC, single ingress flow:
	// factor 3 on the bandwidth term.
	if got, want := send(3, 1), costlyInter.Alpha+3*costlyInter.BetaPerByte*bytes; got != want {
		t.Fatalf("observed-egress cost %g, want %g", got, want)
	}
	// Adding 2 converging ingress flows through the cap-1 ingress doubles
	// it again: factor 3 (egress) x 2 (ingress).
	if got, want := send(3, 2), costlyInter.Alpha+6*costlyInter.BetaPerByte*bytes; got != want {
		t.Fatalf("observed-ingress cost %g, want %g", got, want)
	}
	// A single observed flow on both sides is contention-free.
	if got, want := send(1, 1), costlyInter.TransferTime(bytes); got != want {
		t.Fatalf("single-flow cost %g, want %g", got, want)
	}
}

// TestPlacedWorldIrregularRunsFlat: an irregular placement reports no
// hierarchy (flat algorithm structure) but is still priced by machine
// locality.
func TestPlacedWorldIrregularRunsFlat(t *testing.T) {
	w := NewWorldPlaced(3, placedMach, []int{0, 1, 2})
	if _, ok := w.Hierarchy(); ok {
		t.Fatal("irregular placement must not report a hierarchy")
	}
	const bytes = 1 << 10
	times := Run(w, func(p *Proc) float64 {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, bytes)
			return p.Now()
		}
		if p.Rank() == 1 {
			p.Recv(0, 1)
		}
		return 0
	})
	if got, want := times[0], cheapIntra.TransferTime(bytes); got != want {
		t.Fatalf("irregular node-mate send cost %g, want intra %g", got, want)
	}
}

// TestPlacedWorldRejectsBadSlots: slot lists must match the world size and
// be strictly ascending.
func TestPlacedWorldRejectsBadSlots(t *testing.T) {
	for name, slots := range map[string][]int{
		"short":      {0, 1},
		"descending": {0, 2, 1},
		"duplicate":  {0, 1, 1},
		"negative":   {-1, 0, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s slot list accepted", name)
				}
			}()
			NewWorldPlaced(3, placedMach, slots)
		}()
	}
}
