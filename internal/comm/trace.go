package comm

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// TraceEvent records one message for post-hoc analysis of a collective's
// communication schedule: who sent what to whom, when, and how large it
// was. Tracing is how the micro-benchmarks' per-stage payload growth
// (Figure 2) can be inspected directly. On the simulator the timestamps
// are virtual α–β seconds; on the real backends (goroutine, TCP) they are
// measured wall-clock seconds since World.Run started, which is what the
// adapt-layer link calibrator fits genuine machine constants from.
type TraceEvent struct {
	// Src and Dst are ranks.
	Src, Dst int
	// Tag is the message tag.
	Tag int
	// Bytes is the modeled payload size.
	Bytes int
	// SendTime and Arrival are times in seconds: virtual on the
	// simulator, measured wall-clock on real transports.
	SendTime, Arrival float64
	// NICFactor is the total egress bandwidth-sharing multiplier the
	// message's bandwidth term was priced with: the product of the
	// serialization factors of every hierarchy level the message escaped
	// (1 for intra-node messages and for worlds without Serial caps; on a
	// two-level topology world exactly the per-node NIC factor, hence the
	// name). Real transports record 1: their contention is physical, not
	// modeled. See simnet.Hierarchy.SerialFactor.
	NICFactor float64
	// Level is the hierarchy level the message was priced at — the
	// innermost level shared by sender and receiver (0 for node-local
	// messages and for flat worlds). See simnet.Hierarchy.SharedLevel.
	Level int
}

// traceShard holds one source rank's recorded sends. Sharding by source is
// what makes the tracer race-free *and* contention-free under truly
// concurrent ranks: a rank's Send only ever locks its own shard, so the
// append path never serializes independent ranks against each other, and a
// rank reading its own history (EventsOf) contends with nobody else.
type traceShard struct {
	mu     sync.Mutex
	events []TraceEvent
	gen    int // reset generation, bumped by Reset
}

// Tracer collects TraceEvents from a world, sharded by source rank. Safe
// for concurrent use from all ranks, including under the truly concurrent
// goroutine and TCP backends.
type Tracer struct {
	shards  []traceShard
	perRank atomic.Int64 // max recorded events per source rank; 0 = unlimited
}

// EnableTrace attaches a tracer to the world; every subsequent Send is
// recorded until DisableTrace. Returns the tracer.
func (w *World) EnableTrace() *Tracer {
	t := &Tracer{shards: make([]traceShard, w.p)}
	w.tracer.Store(t)
	return t
}

// DisableTrace detaches the tracer.
func (w *World) DisableTrace() {
	w.tracer.Store((*Tracer)(nil))
}

// LimitPerRank caps how many events the tracer records per *source* rank;
// once a rank has limit recorded sends, its further sends are dropped.
// A per-rank (rather than global) cap keeps long-running traced worlds —
// e.g. a training loop with adaptation enabled — at bounded memory while
// staying deterministic: whether a given rank's k-th send is recorded
// depends only on k, never on cross-rank goroutine interleaving, so
// consumers reading their own rank's events (Tracer.EventsOf) see a
// reproducible prefix. The cap applies against the events already
// recorded, whenever they were recorded; limit <= 0 removes the cap.
func (t *Tracer) LimitPerRank(limit int) {
	if limit < 0 {
		limit = 0
	}
	t.perRank.Store(int64(limit))
}

func (t *Tracer) record(e TraceEvent) {
	if e.Src < 0 || e.Src >= len(t.shards) {
		return
	}
	s := &t.shards[e.Src]
	limit := int(t.perRank.Load())
	s.mu.Lock()
	if limit <= 0 || len(s.events) < limit {
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
}

// Events returns the recorded events sorted by send time (ties by src).
func (t *Tracer) Events() []TraceEvent {
	var out []TraceEvent
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SendTime != out[j].SendTime {
			return out[i].SendTime < out[j].SendTime
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// EventsOf returns the recorded events sent by the given world rank, in
// send order. Unlike Events, the result is well-defined even while other
// ranks are still sending: a rank's own sends are recorded synchronously
// inside Send, so when that rank calls EventsOf(itsRank) the slice is a
// complete, stable prefix of its send history — the property the
// adapt-layer link calibrator relies on for deterministic per-rank fits.
// This holds on every backend: the shard is written only under its own
// lock, so a truly concurrent rank reading its own shard races with no
// other rank's appends.
func (t *Tracer) EventsOf(src int) []TraceEvent {
	events, _ := t.EventsOfSince(src, 0)
	return events
}

// EventsOfSince is the incremental form of EventsOf: it returns only the
// given rank's events from index `from` on (O(new events), not a rescan
// of the history), together with the tracer's reset generation. A
// consumer holding a cursor compares the generation against the one it
// last saw: a change means Reset ran in between, so its cursor indexes a
// discarded history and it must restart from zero.
func (t *Tracer) EventsOfSince(src, from int) (events []TraceEvent, generation int) {
	if src < 0 || src >= len(t.shards) {
		return nil, 0
	}
	s := &t.shards[src]
	if from < 0 {
		from = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < len(s.events) {
		events = append([]TraceEvent(nil), s.events[from:]...)
	}
	return events, s.gen
}

// Reset clears recorded events and bumps the reset generation (see
// EventsOfSince).
func (t *Tracer) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.events = s.events[:0]
		s.gen++
		s.mu.Unlock()
	}
}

// TotalBytes sums the traced payload volume.
func (t *Tracer) TotalBytes() int64 {
	var total int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.events {
			total += int64(e.Bytes)
		}
		s.mu.Unlock()
	}
	return total
}

// Rounds groups events into communication rounds by distinct send times
// (virtual-time-synchronous algorithms produce one cluster per stage) and
// returns per-round message counts and byte totals. Only meaningful on the
// simulator, whose send times are exact virtual stage boundaries.
func (t *Tracer) Rounds() (counts []int, bytes []int64) {
	events := t.Events()
	var lastT float64 = -1
	for _, e := range events {
		if len(counts) == 0 || e.SendTime != lastT {
			counts = append(counts, 0)
			bytes = append(bytes, 0)
			lastT = e.SendTime
		}
		counts[len(counts)-1]++
		bytes[len(bytes)-1] += int64(e.Bytes)
	}
	return counts, bytes
}

// Dump writes a human-readable timeline, one line per event carrying
// every TraceEvent field: send time, endpoints, tag, size, the priced
// hierarchy level, the contention (NIC) factor, and the arrival time.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintf(w, "%12.3fµs  %2d → %2d  tag=%-8d %8dB  lvl=%d nic=%-6.3g arrives %12.3fµs\n",
			e.SendTime*1e6, e.Src, e.Dst, e.Tag, e.Bytes, e.Level, e.NICFactor, e.Arrival*1e6)
	}
}
