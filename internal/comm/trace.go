package comm

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceEvent records one message for post-hoc analysis of a collective's
// communication schedule: who sent what to whom, when (virtual time), and
// how large it was. Tracing is how the micro-benchmarks' per-stage payload
// growth (Figure 2) can be inspected directly.
type TraceEvent struct {
	// Src and Dst are ranks.
	Src, Dst int
	// Tag is the message tag.
	Tag int
	// Bytes is the modeled payload size.
	Bytes int
	// SendTime and Arrival are virtual times in seconds.
	SendTime, Arrival float64
	// NICFactor is the total egress bandwidth-sharing multiplier the
	// message's bandwidth term was priced with: the product of the
	// serialization factors of every hierarchy level the message escaped
	// (1 for intra-node messages and for worlds without Serial caps; on a
	// two-level topology world exactly the per-node NIC factor, hence the
	// name). See simnet.Hierarchy.SerialFactor.
	NICFactor float64
	// Level is the hierarchy level the message was priced at — the
	// innermost level shared by sender and receiver (0 for node-local
	// messages and for flat worlds). See simnet.Hierarchy.SharedLevel.
	Level int
}

// Tracer collects TraceEvents from a world. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	bySrc   map[int][]int32 // per-source indices into events, in send order
	perRank int             // max recorded events per source rank; 0 = unlimited
	gen     int             // reset generation, bumped by Reset
}

// EnableTrace attaches a tracer to the world; every subsequent Send is
// recorded until DisableTrace. Returns the tracer.
func (w *World) EnableTrace() *Tracer {
	t := &Tracer{}
	w.tracer.Store(t)
	return t
}

// DisableTrace detaches the tracer.
func (w *World) DisableTrace() {
	w.tracer.Store((*Tracer)(nil))
}

// LimitPerRank caps how many events the tracer records per *source* rank;
// once a rank has limit recorded sends, its further sends are dropped.
// A per-rank (rather than global) cap keeps long-running traced worlds —
// e.g. a training loop with adaptation enabled — at bounded memory while
// staying deterministic: whether a given rank's k-th send is recorded
// depends only on k, never on cross-rank goroutine interleaving, so
// consumers reading their own rank's events (Tracer.EventsOf) see a
// reproducible prefix. The cap applies against the events already
// recorded, whenever they were recorded; limit <= 0 removes the cap.
func (t *Tracer) LimitPerRank(limit int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.perRank = limit
}

func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	if t.bySrc == nil {
		t.bySrc = make(map[int][]int32)
	}
	if t.perRank > 0 && len(t.bySrc[e.Src]) >= t.perRank {
		t.mu.Unlock()
		return
	}
	t.bySrc[e.Src] = append(t.bySrc[e.Src], int32(len(t.events)))
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns the recorded events sorted by send time (ties by src).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]TraceEvent(nil), t.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SendTime != out[j].SendTime {
			return out[i].SendTime < out[j].SendTime
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// EventsOf returns the recorded events sent by the given world rank, in
// send order. Unlike Events, the result is well-defined even while other
// ranks are still sending: a rank's own sends are recorded synchronously
// inside Send, so when that rank calls EventsOf(itsRank) the slice is a
// complete, stable prefix of its send history — the property the
// adapt-layer link calibrator relies on for deterministic per-rank fits.
func (t *Tracer) EventsOf(src int) []TraceEvent {
	events, _ := t.EventsOfSince(src, 0)
	return events
}

// EventsOfSince is the incremental form of EventsOf: it returns only the
// given rank's events from index `from` on (O(new events), not a rescan
// of the history), together with the tracer's reset generation. A
// consumer holding a cursor compares the generation against the one it
// last saw: a change means Reset ran in between, so its cursor indexes a
// discarded history and it must restart from zero.
func (t *Tracer) EventsOfSince(src, from int) (events []TraceEvent, generation int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	own := t.bySrc[src]
	if from < 0 {
		from = 0
	}
	if from < len(own) {
		events = make([]TraceEvent, 0, len(own)-from)
		for _, i := range own[from:] {
			events = append(events, t.events[i])
		}
	}
	return events, t.gen
}

// Reset clears recorded events and bumps the reset generation (see
// EventsOfSince).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	if t.bySrc != nil {
		clear(t.bySrc)
	}
	t.gen++
	t.mu.Unlock()
}

// TotalBytes sums the traced payload volume.
func (t *Tracer) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, e := range t.events {
		total += int64(e.Bytes)
	}
	return total
}

// Rounds groups events into communication rounds by distinct send times
// (virtual-time-synchronous algorithms produce one cluster per stage) and
// returns per-round message counts and byte totals.
func (t *Tracer) Rounds() (counts []int, bytes []int64) {
	events := t.Events()
	var lastT float64 = -1
	for _, e := range events {
		if len(counts) == 0 || e.SendTime != lastT {
			counts = append(counts, 0)
			bytes = append(bytes, 0)
			lastT = e.SendTime
		}
		counts[len(counts)-1]++
		bytes[len(bytes)-1] += int64(e.Bytes)
	}
	return counts, bytes
}

// Dump writes a human-readable timeline.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintf(w, "%12.3fµs  %2d → %2d  tag=%-8d %8dB  arrives %12.3fµs\n",
			e.SendTime*1e6, e.Src, e.Dst, e.Tag, e.Bytes, e.Arrival*1e6)
	}
}
