package comm

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceEvent records one message for post-hoc analysis of a collective's
// communication schedule: who sent what to whom, when (virtual time), and
// how large it was. Tracing is how the micro-benchmarks' per-stage payload
// growth (Figure 2) can be inspected directly.
type TraceEvent struct {
	// Src and Dst are ranks.
	Src, Dst int
	// Tag is the message tag.
	Tag int
	// Bytes is the modeled payload size.
	Bytes int
	// SendTime and Arrival are virtual times in seconds.
	SendTime, Arrival float64
	// NICFactor is the total egress bandwidth-sharing multiplier the
	// message's bandwidth term was priced with: the product of the
	// serialization factors of every hierarchy level the message escaped
	// (1 for intra-node messages and for worlds without Serial caps; on a
	// two-level topology world exactly the per-node NIC factor, hence the
	// name). See simnet.Hierarchy.SerialFactor.
	NICFactor float64
	// Level is the hierarchy level the message was priced at — the
	// innermost level shared by sender and receiver (0 for node-local
	// messages and for flat worlds). See simnet.Hierarchy.SharedLevel.
	Level int
}

// Tracer collects TraceEvents from a world. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// EnableTrace attaches a tracer to the world; every subsequent Send is
// recorded until DisableTrace. Returns the tracer.
func (w *World) EnableTrace() *Tracer {
	t := &Tracer{}
	w.tracer.Store(t)
	return t
}

// DisableTrace detaches the tracer.
func (w *World) DisableTrace() {
	w.tracer.Store((*Tracer)(nil))
}

func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns the recorded events sorted by send time (ties by src).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]TraceEvent(nil), t.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SendTime != out[j].SendTime {
			return out[i].SendTime < out[j].SendTime
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// Reset clears recorded events.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// TotalBytes sums the traced payload volume.
func (t *Tracer) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, e := range t.events {
		total += int64(e.Bytes)
	}
	return total
}

// Rounds groups events into communication rounds by distinct send times
// (virtual-time-synchronous algorithms produce one cluster per stage) and
// returns per-round message counts and byte totals.
func (t *Tracer) Rounds() (counts []int, bytes []int64) {
	events := t.Events()
	var lastT float64 = -1
	for _, e := range events {
		if len(counts) == 0 || e.SendTime != lastT {
			counts = append(counts, 0)
			bytes = append(bytes, 0)
			lastT = e.SendTime
		}
		counts[len(counts)-1]++
		bytes[len(bytes)-1] += int64(e.Bytes)
	}
	return counts, bytes
}

// Dump writes a human-readable timeline.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintf(w, "%12.3fµs  %2d → %2d  tag=%-8d %8dB  arrives %12.3fµs\n",
			e.SendTime*1e6, e.Src, e.Dst, e.Tag, e.Bytes, e.Arrival*1e6)
	}
}
