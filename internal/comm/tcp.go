package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// The TCP backend: ranks communicate over sockets with length-prefixed
// frames, so a world can span OS processes (or, in the loopback form, host
// every rank in one process while still pushing each message through a
// real kernel socket). Rank 0's listener doubles as the rendezvous point:
// every other rank dials it, registers its own data address, and receives
// the complete address table once all P ranks have checked in. Data
// connections are then dialed lazily, one per (sender, receiver) ordered
// pair, which preserves the per-pair FIFO ordering the mailbox protocol
// expects. Payloads travel as wire.go codec bytes; timestamps are measured
// wall-clock seconds.

// TCPConfig configures a TCP-transport world (NewWorldTCP).
type TCPConfig struct {
	// Rendezvous is rank 0's listen address ("host:port"). Every process
	// of a multi-process world must name the same address. Empty selects
	// an ephemeral loopback port, which is only usable in the single-
	// process loopback form (all ranks local).
	Rendezvous string
	// LocalRanks lists the world ranks this process hosts, ascending.
	// Nil hosts all of them — the loopback form. A multi-process world
	// partitions [0, P) across its processes' LocalRanks.
	LocalRanks []int
	// DialTimeout bounds the rendezvous wait and every data dial
	// (default 10s). Processes of a multi-process world may start in any
	// order within this window.
	DialTimeout time.Duration
	// Hierarchy optionally declares the machine hierarchy the world
	// should assume, exactly as NewWorldHier does: the hierarchical
	// collectives group ranks by it and Auto's cost model prices with it
	// (until calibration replaces the constants). It never prices a
	// transfer on this backend — the wire is real. Every process of a
	// multi-process world must declare the same hierarchy.
	Hierarchy *simnet.Hierarchy
}

// Frame kinds of the TCP wire protocol. Every frame is a uint32 length
// prefix followed by a body whose first byte is the kind.
const (
	frameRegister byte = 1 // rank → rendezvous: [rank u32][data addr]
	frameTable    byte = 2 // rendezvous → rank: [p u32] p×[len u16][addr]
	frameHello    byte = 3 // first frame of a data conn: [sender rank u32]
	frameMsg      byte = 4 // [src u32][tag u64][modeled bytes u64][payload]
)

// maxFrameBytes caps a frame body, guarding the readers against corrupt
// length prefixes.
const maxFrameBytes = 1 << 30

// msgHeaderBytes is the fixed prefix of a frameMsg body before the payload
// codec bytes: kind + src + tag + modeled size.
const msgHeaderBytes = 1 + 4 + 8 + 8

// tcpTransport is the Transport implementation behind NewWorldTCP.
type tcpTransport struct {
	w      *World
	cfg    TCPConfig
	addrs  []string             // data address per world rank, fixed after setup
	eps    map[int]*tcpEndpoint // local rank → endpoint
	reg    *registrar           // rank 0 only
	closed atomic.Bool

	connMu   sync.Mutex
	allConns []net.Conn // every conn ever opened or accepted, for close
}

// tcpEndpoint is one local rank's socket presence: its data listener plus
// the lazily dialed outbound connections.
type tcpEndpoint struct {
	rank  int
	t     *tcpTransport
	ln    net.Listener
	mu    sync.Mutex
	conns map[int]*tcpConn // destination world rank → outbound conn
}

// tcpConn serializes frame writes on one connection.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// registrar is rank 0's rendezvous state: it collects every rank's data
// address and broadcasts the completed table.
type registrar struct {
	mu    sync.Mutex
	p     int
	addrs []string
	got   int
	conns []net.Conn
	done  chan struct{}
	err   error
}

// Name identifies the backend.
func (t *tcpTransport) Name() string { return "tcp" }

// Wall reports measured wall-clock time.
func (t *tcpTransport) Wall() bool { return true }

func (t *tcpTransport) close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for _, ep := range t.eps {
		ep.ln.Close()
	}
	t.connMu.Lock()
	conns := t.allConns
	t.allConns = nil
	t.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

func (t *tcpTransport) send(p *Proc, dst, tag int, payload any, bytes int) {
	start := t.w.wallNow()
	ep := t.eps[p.rank]
	if ep == nil {
		panic(fmt.Sprintf("comm: rank %d is not local to this process", p.rank))
	}
	body := make([]byte, 0, msgHeaderBytes+64)
	body = append(body, frameMsg)
	body = binary.LittleEndian.AppendUint32(body, uint32(p.rank))
	body = binary.LittleEndian.AppendUint64(body, uint64(int64(tag)))
	body = binary.LittleEndian.AppendUint64(body, uint64(int64(bytes)))
	body, err := appendPayload(body, payload)
	if err != nil {
		panic(fmt.Sprintf("comm: tcp transport payload: %v", err))
	}
	c, err := ep.connTo(dst)
	if err == nil {
		err = c.writeFrame(body)
	}
	if err != nil {
		t.w.poison()
		panic(fmt.Sprintf("comm: tcp send %d→%d: %v", p.rank, dst, err))
	}
	arrival := t.w.wallNow()
	p.recordSend(dst, tag, bytes, start, arrival, 1, p.sharedLevel(dst))
}

// track remembers a connection for close-time teardown.
func (t *tcpTransport) track(c net.Conn) {
	t.connMu.Lock()
	t.allConns = append(t.allConns, c)
	t.connMu.Unlock()
}

// connTo returns the endpoint's outbound connection to world rank dst,
// dialing it (and introducing itself with a hello frame) on first use.
func (ep *tcpEndpoint) connTo(dst int) (*tcpConn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if c, ok := ep.conns[dst]; ok {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", ep.t.addrs[dst], ep.t.dialTimeout())
	if err != nil {
		return nil, err
	}
	ep.t.track(conn)
	c := &tcpConn{c: conn}
	hello := make([]byte, 0, 5)
	hello = append(hello, frameHello)
	hello = binary.LittleEndian.AppendUint32(hello, uint32(ep.rank))
	if err := c.writeFrame(hello); err != nil {
		conn.Close()
		return nil, err
	}
	ep.conns[dst] = c
	return c, nil
}

func (t *tcpTransport) dialTimeout() time.Duration {
	if t.cfg.DialTimeout > 0 {
		return t.cfg.DialTimeout
	}
	return 10 * time.Second
}

// writeFrame writes one length-prefixed frame as a single Write.
func (c *tcpConn) writeFrame(body []byte) error {
	buf := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.c.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n > maxFrameBytes {
		return nil, fmt.Errorf("comm: tcp frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// acceptLoop serves one endpoint's listener until the transport closes.
func (ep *tcpEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.t.track(conn)
		go ep.serveConn(conn)
	}
}

// serveConn classifies an inbound connection by its first frame: a
// rendezvous registration (rank 0 only) or a peer's data stream, whose
// messages it decodes and delivers into this endpoint's mailbox.
func (ep *tcpEndpoint) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	first, err := readFrame(br)
	if err != nil || len(first) == 0 {
		conn.Close()
		return
	}
	switch first[0] {
	case frameRegister:
		if ep.t.reg == nil || len(first) < 5 {
			conn.Close()
			return
		}
		rank := int(binary.LittleEndian.Uint32(first[1:]))
		ep.t.reg.add(rank, string(first[5:]), conn)
	case frameHello:
		if len(first) != 5 {
			conn.Close()
			return
		}
		src := int(binary.LittleEndian.Uint32(first[1:]))
		ep.readMessages(br, src)
		conn.Close()
	default:
		conn.Close()
	}
}

// readMessages is the per-connection reader: each frame becomes a mailbox
// delivery for this endpoint's rank. A mid-run transport error poisons the
// world so blocked receivers fail fast instead of deadlocking.
func (ep *tcpEndpoint) readMessages(br *bufio.Reader, src int) {
	for {
		body, err := readFrame(br)
		if err != nil {
			if !ep.t.closed.Load() && err != io.EOF {
				ep.t.w.poison()
			}
			return
		}
		if len(body) < msgHeaderBytes || body[0] != frameMsg {
			ep.t.w.poison()
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(body[5:])))
		modeled := int(int64(binary.LittleEndian.Uint64(body[13:])))
		payload, err := decodePayload(body[msgHeaderBytes:])
		if err != nil {
			ep.t.w.poison()
			return
		}
		ep.t.w.deliver(ep.rank, Message{
			Src: src, Tag: tag, Payload: payload, Bytes: modeled,
			Arrival: ep.t.w.wallNow(),
		})
	}
}

// add records one rank's registration; the P-th completes the table and
// broadcasts it to every registered connection.
func (r *registrar) add(rank int, addr string, conn net.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= r.p {
		r.fail(fmt.Errorf("comm: tcp rendezvous: rank %d outside world of %d", rank, r.p))
		if conn != nil {
			conn.Close()
		}
		return
	}
	if r.addrs[rank] != "" {
		r.fail(fmt.Errorf("comm: tcp rendezvous: rank %d registered twice", rank))
		if conn != nil {
			conn.Close()
		}
		return
	}
	r.addrs[rank] = addr
	r.got++
	if conn != nil {
		r.conns = append(r.conns, conn)
	}
	if r.got == r.p {
		table := encodeTable(r.addrs)
		for _, c := range r.conns {
			tc := &tcpConn{c: c}
			tc.writeFrame(table)
			c.Close()
		}
		r.conns = nil
		close(r.done)
	}
}

// count reports how many ranks have registered; registrations arrive on
// accept goroutines, so the timeout path must read got under the lock.
func (r *registrar) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.got
}

// fail records the first rendezvous error and unblocks waiters.
func (r *registrar) fail(err error) {
	if r.err == nil {
		r.err = err
		close(r.done)
	}
}

// encodeTable builds a frameTable body from the completed address table.
func encodeTable(addrs []string) []byte {
	body := make([]byte, 0, 5+len(addrs)*24)
	body = append(body, frameTable)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(addrs)))
	for _, a := range addrs {
		body = binary.LittleEndian.AppendUint16(body, uint16(len(a)))
		body = append(body, a...)
	}
	return body
}

// decodeTable reverses encodeTable.
func decodeTable(body []byte) ([]string, error) {
	if len(body) < 5 || body[0] != frameTable {
		return nil, fmt.Errorf("comm: tcp rendezvous: malformed table frame")
	}
	p := int(binary.LittleEndian.Uint32(body[1:]))
	addrs := make([]string, p)
	off := 5
	for i := 0; i < p; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("comm: tcp rendezvous: truncated table frame")
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+n > len(body) {
			return nil, fmt.Errorf("comm: tcp rendezvous: truncated table frame")
		}
		addrs[i] = string(body[off : off+n])
		off += n
	}
	return addrs, nil
}

// NewWorldTCP creates a world of p ranks communicating over TCP sockets,
// with measured wall-clock times. With the zero TCPConfig every rank lives
// in this process behind an ephemeral loopback rendezvous — the loopback
// form the cross-transport equivalence suite runs. A multi-process world
// instead names a shared cfg.Rendezvous address and partitions the ranks
// across processes via cfg.LocalRanks; each process calls NewWorldTCP with
// the same p and rendezvous, then Run executes only its local ranks'
// programs. Close the world to release its sockets.
func NewWorldTCP(p int, profile simnet.Profile, cfg TCPConfig) (*World, error) {
	var w *World
	if cfg.Hierarchy != nil {
		w = NewWorldHier(p, *cfg.Hierarchy)
	} else {
		w = NewWorld(p, profile)
	}
	local := cfg.LocalRanks
	if local == nil {
		local = w.localRanks()
	} else {
		local = append([]int(nil), local...)
		for i, r := range local {
			if r < 0 || r >= p || (i > 0 && local[i-1] >= r) {
				return nil, fmt.Errorf("comm: tcp LocalRanks must be ascending distinct ranks in [0,%d), got %v", p, cfg.LocalRanks)
			}
		}
		w.local = local
	}
	hasRank0 := len(local) > 0 && local[0] == 0
	if cfg.Rendezvous == "" && len(local) != p {
		return nil, fmt.Errorf("comm: a multi-process tcp world needs an explicit Rendezvous address")
	}

	t := &tcpTransport{w: w, cfg: cfg, addrs: make([]string, p), eps: make(map[int]*tcpEndpoint, len(local))}
	fail := func(err error) (*World, error) {
		t.close()
		return nil, err
	}
	for _, r := range local {
		laddr := "127.0.0.1:0"
		if r == 0 && cfg.Rendezvous != "" {
			laddr = cfg.Rendezvous
		}
		ln, err := net.Listen("tcp", laddr)
		if err != nil {
			return fail(fmt.Errorf("comm: tcp listen for rank %d: %w", r, err))
		}
		ep := &tcpEndpoint{rank: r, t: t, ln: ln, conns: make(map[int]*tcpConn)}
		t.eps[r] = ep
	}

	rendAddr := cfg.Rendezvous
	if hasRank0 {
		t.reg = &registrar{p: p, addrs: make([]string, p), done: make(chan struct{})}
		rendAddr = t.eps[0].ln.Addr().String()
	}
	// Accept loops must run before anyone dials the rendezvous.
	for _, ep := range t.eps {
		go ep.acceptLoop()
	}
	if hasRank0 {
		t.reg.add(0, t.eps[0].ln.Addr().String(), nil)
	}

	// Register every other local rank, keeping the connections open for
	// the table replies; reading them before all registrations are out
	// would deadlock a process hosting several ranks.
	regConns := make(map[int]net.Conn, len(local))
	for _, r := range local {
		if r == 0 {
			continue
		}
		conn, err := dialRetry(rendAddr, t.dialTimeout())
		if err != nil {
			return fail(fmt.Errorf("comm: tcp rendezvous dial for rank %d: %w", r, err))
		}
		t.track(conn)
		body := make([]byte, 0, 5+len(t.eps[r].ln.Addr().String()))
		body = append(body, frameRegister)
		body = binary.LittleEndian.AppendUint32(body, uint32(r))
		body = append(body, t.eps[r].ln.Addr().String()...)
		tc := &tcpConn{c: conn}
		if err := tc.writeFrame(body); err != nil {
			return fail(fmt.Errorf("comm: tcp rendezvous register rank %d: %w", r, err))
		}
		regConns[r] = conn
	}

	// Collect the table: from the registrar if rank 0 is ours, and from
	// each registration reply.
	if hasRank0 {
		select {
		case <-t.reg.done:
		case <-time.After(t.dialTimeout()):
			return fail(fmt.Errorf("comm: tcp rendezvous: timed out waiting for %d ranks (have %d)", p, t.reg.count()))
		}
		if t.reg.err != nil {
			return fail(t.reg.err)
		}
		copy(t.addrs, t.reg.addrs)
	}
	for r, conn := range regConns {
		conn.SetReadDeadline(time.Now().Add(t.dialTimeout()))
		body, err := readFrame(bufio.NewReader(conn))
		if err != nil {
			return fail(fmt.Errorf("comm: tcp rendezvous reply for rank %d: %w", r, err))
		}
		table, err := decodeTable(body)
		if err != nil || len(table) != p {
			return fail(fmt.Errorf("comm: tcp rendezvous reply for rank %d: bad table (%v)", r, err))
		}
		copy(t.addrs, table)
		conn.Close()
	}

	w.setTransport(t)
	return w, nil
}

// dialRetry dials addr until it answers or the timeout elapses — processes
// of a multi-process world may start before rank 0's listener exists.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}
