package comm

import (
	"testing"

	"repro/internal/simnet"
)

var (
	cheapIntra  = simnet.Profile{Name: "intra", Alpha: 1e-7, BetaPerByte: 1e-10, GammaPerElem: 1e-10}
	costlyInter = simnet.Profile{Name: "inter", Alpha: 1e-6, BetaPerByte: 1e-9, GammaPerElem: 1e-10}
)

// TestNICContentionScalesInterBandwidth: with a NICSerial cap of 1 and 2
// ranks per node, a world-communicator inter-node send must pay twice the
// bandwidth term (2 contending flows / cap 1); the latency term and
// intra-node sends must be unaffected.
func TestNICContentionScalesInterBandwidth(t *testing.T) {
	const bytes = 1 << 20
	base := simnet.Topology{RanksPerNode: 2, Intra: cheapIntra, Inter: costlyInter}
	capped := base
	capped.NICSerial = 1

	sendCost := func(topo simnet.Topology, to int) float64 {
		w := NewWorldTopo(4, topo)
		times := Run(w, func(p *Proc) float64 {
			if p.Rank() == 0 {
				p.Send(to, 1, nil, bytes)
				return p.Now()
			}
			if p.Rank() == to {
				p.Recv(0, 1)
			}
			return 0
		})
		return times[0]
	}

	free := sendCost(base, 2)
	contended := sendCost(capped, 2)
	wantFree := costlyInter.TransferTime(bytes)
	wantContended := costlyInter.Alpha + 2*costlyInter.BetaPerByte*bytes
	if free != wantFree {
		t.Fatalf("uncapped inter send cost %g, want %g", free, wantFree)
	}
	if contended != wantContended {
		t.Fatalf("capped inter send cost %g, want %g (2x bandwidth)", contended, wantContended)
	}

	// Intra-node sends never pay the factor.
	if got, want := sendCost(capped, 1), cheapIntra.TransferTime(bytes); got != want {
		t.Fatalf("capped intra send cost %g, want %g", got, want)
	}
}

// TestNICContentionLeaderSubUncontended: a sub-communicator with one rank
// per node (the hierarchical leader group) must send inter-node at factor
// 1 even on a capped topology, while the world communicator pays the full
// node population.
func TestNICContentionLeaderSubUncontended(t *testing.T) {
	const bytes = 1 << 20
	topo := simnet.Topology{RanksPerNode: 4, Intra: cheapIntra, Inter: costlyInter, NICSerial: 1}
	w := NewWorldTopo(8, topo)
	leaders := []int{0, 4}
	times := Run(w, func(p *Proc) [2]float64 {
		var out [2]float64
		// World-communicator inter-node send: 4 node-mates contend.
		if p.Rank() == 0 {
			p.Send(4, 1, nil, bytes)
			out[0] = p.Now()
		} else if p.Rank() == 4 {
			p.Recv(0, 1)
		}
		p.Barrier()
		start := p.Now()
		// Leader sub-communicator: one flow per node, no contention.
		if p.Rank() == 0 || p.Rank() == 4 {
			sub := p.Sub(leaders)
			if sub.Rank() == 0 {
				sub.Send(1, 2, nil, bytes)
				out[1] = sub.Now() - start
			} else {
				sub.Recv(0, 2)
			}
			p.Join(sub)
		}
		return out
	})
	wantWorld := costlyInter.Alpha + 4*costlyInter.BetaPerByte*bytes
	wantLeader := costlyInter.TransferTime(bytes)
	if got := times[0][0]; got != wantWorld {
		t.Fatalf("world inter send cost %g, want %g (4 contending flows)", got, wantWorld)
	}
	if got := times[0][1]; got != wantLeader {
		t.Fatalf("leader sub inter send cost %g, want %g (uncontended)", got, wantLeader)
	}
}

// TestNICContentionRaggedLastNode: ranks on the short last node contend
// only with the ranks that actually exist there.
func TestNICContentionRaggedLastNode(t *testing.T) {
	const bytes = 1 << 20
	topo := simnet.Topology{RanksPerNode: 4, Intra: cheapIntra, Inter: costlyInter, NICSerial: 1}
	w := NewWorldTopo(6, topo) // nodes {0..3} and {4,5}
	times := Run(w, func(p *Proc) float64 {
		if p.Rank() == 4 {
			p.Send(0, 1, nil, bytes) // last node hosts only 2 ranks
			return p.Now()
		}
		if p.Rank() == 0 {
			p.Recv(4, 1)
		}
		return 0
	})
	want := costlyInter.Alpha + 2*costlyInter.BetaPerByte*bytes
	if got := times[4]; got != want {
		t.Fatalf("ragged-node inter send cost %g, want %g (2 resident ranks)", got, want)
	}
}

// TestTraceRecordsNICFactor: the tracer must expose the contention factor
// each message was priced with.
func TestTraceRecordsNICFactor(t *testing.T) {
	topo := simnet.Topology{RanksPerNode: 2, Intra: cheapIntra, Inter: costlyInter, NICSerial: 1}
	w := NewWorldTopo(4, topo)
	tr := w.EnableTrace()
	Run(w, func(p *Proc) any {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, nil, 100) // intra
			p.Send(2, 2, nil, 100) // inter, contended
		case 1:
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 2)
		}
		return nil
	})
	byTag := map[int]TraceEvent{}
	for _, ev := range tr.Events() {
		byTag[ev.Tag] = ev
	}
	if got := byTag[1].NICFactor; got != 1 {
		t.Fatalf("intra message NICFactor = %g, want 1", got)
	}
	if got := byTag[2].NICFactor; got != 2 {
		t.Fatalf("contended inter message NICFactor = %g, want 2", got)
	}
}
