package comm

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// freeLoopbackAddr reserves an ephemeral loopback port and releases it, so
// a test can hand NewWorldTCP a concrete rendezvous address that is almost
// certainly still free.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTCPRendezvousTimeoutMissingRank pins the rendezvous failure path: a
// multi-process world whose last rank never dials in must surface a
// timeout error from NewWorldTCP — not hang — and release its sockets.
func TestTCPRendezvousTimeoutMissingRank(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping rendezvous timeout wait")
	}
	addr := freeLoopbackAddr(t)
	done := make(chan error, 1)
	go func() {
		// Host ranks 0 and 1 of a 3-rank world; rank 2 does not exist.
		w, err := NewWorldTCP(3, simnet.Aries, TCPConfig{
			Rendezvous:  addr,
			LocalRanks:  []int{0, 1},
			DialTimeout: 500 * time.Millisecond,
		})
		if err == nil {
			w.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rendezvous with a missing rank must fail, got a world")
		}
		if !strings.Contains(err.Error(), "timed out waiting") {
			t.Fatalf("want a rendezvous timeout error, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("NewWorldTCP hung waiting for a rank that never dials in")
	}
}

// TestTCPRendezvousTimeoutSilentRendezvous pins the other half of the
// failure path: a non-rank-0 process whose rendezvous accepts the
// registration but never replies with the address table must error out on
// its read deadline instead of hanging.
func TestTCPRendezvousTimeoutSilentRendezvous(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping rendezvous timeout wait")
	}
	// A stub rendezvous: accepts connections, reads nothing, replies never.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("stub rendezvous listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	done := make(chan error, 1)
	go func() {
		w, err := NewWorldTCP(3, simnet.Aries, TCPConfig{
			Rendezvous:  ln.Addr().String(),
			LocalRanks:  []int{1},
			DialTimeout: 500 * time.Millisecond,
		})
		if err == nil {
			w.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rendezvous that never answers must fail, got a world")
		}
		if !strings.Contains(err.Error(), "rendezvous reply") {
			t.Fatalf("want a rendezvous-reply error, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("NewWorldTCP hung on a rendezvous that never replies")
	}
}
