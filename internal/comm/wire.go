package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"repro/internal/quant"
	"repro/internal/stream"
)

// Payload codec: the serialization layer of the real transports. The
// simulator hands payloads over by reference, but the goroutine backend
// deep-copies every message through this codec (so sender and receiver
// never share storage and the copy costs real per-byte work) and the TCP
// backend frames exactly these bytes onto sockets.
//
// Every payload type a collective sends is supported: nil (barriers),
// dense slices and their allgather containers, sparse stream vectors
// (reconstructed field-exact via stream.AppendWire/DecodeWire, which is
// what keeps results bit-identical across transports), and quantized
// vectors (quant.Marshal/Unmarshal). Packages with private payload types
// extend the codec with RegisterPayloadCodec.
//
// Wire form (little endian): one type-id byte followed by a type-specific
// body. A message frame carries exactly one payload, so decoders consume
// the whole buffer.

// Payload type ids.
const (
	wireNil        byte = 0
	wireFloats     byte = 1 // []float64
	wireFloatss    byte = 2 // [][]float64 (nil inner slices preserved)
	wireFloatMap   byte = 3 // map[int][]float64
	wireVector     byte = 4 // *stream.Vector
	wireQuantized  byte = 5 // *quant.Quantized
	wireQuantSlice byte = 6 // []*quant.Quantized (nil entries preserved)
	wireQuantMap   byte = 7 // map[int]*quant.Quantized
	wireInt        byte = 8
	wireFloat      byte = 9
	wireString     byte = 10
	wireBytes      byte = 11
	wireRegistered byte = 12 // name-tagged type from RegisterPayloadCodec
	wireVectorNil  byte = 13 // typed nil *stream.Vector
	wireQuantNil   byte = 14 // typed nil *quant.Quantized
)

// PayloadCodec serializes one application payload type for the real
// transports. Append writes v's body to buf and returns the extended
// slice; Decode reverses it from exactly the bytes Append produced.
// Decode must reconstruct the value deeply — the result must share no
// mutable storage with the encoded original.
type PayloadCodec struct {
	// Type is the concrete dynamic type the codec handles.
	Type reflect.Type
	// Append serializes a value of Type.
	Append func(buf []byte, v any) []byte
	// Decode parses a value of Type from its full body.
	Decode func(data []byte) (any, error)
}

var (
	payloadMu     sync.RWMutex
	payloadByType = map[reflect.Type]string{}
	payloadCodecs = map[string]PayloadCodec{}
)

// RegisterPayloadCodec extends the real transports' payload codec with a
// package-private type (for example core's dense allgather block slices).
// The name tags the type on the wire and must be unique; register from an
// init function so every process of a multi-process world agrees on the
// tag before any message flows.
func RegisterPayloadCodec(name string, c PayloadCodec) {
	payloadMu.Lock()
	defer payloadMu.Unlock()
	if _, dup := payloadCodecs[name]; dup {
		panic(fmt.Sprintf("comm: payload codec %q registered twice", name))
	}
	payloadCodecs[name] = c
	payloadByType[c.Type] = name
}

// copyPayload round-trips a payload through the codec, producing a deep
// copy that shares no storage with the original — the goroutine
// transport's per-message handover.
func copyPayload(v any) (any, error) {
	buf, err := appendPayload(nil, v)
	if err != nil {
		return nil, err
	}
	return decodePayload(buf)
}

// appendPayload serializes one payload (type id + body) onto buf.
func appendPayload(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, wireNil), nil
	case []float64:
		buf = append(buf, wireFloats)
		return appendFloats(buf, x), nil
	case [][]float64:
		buf = append(buf, wireFloatss)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, inner := range x {
			if inner == nil {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			buf = appendFloats(buf, inner)
		}
		return buf, nil
	case map[int][]float64:
		buf = append(buf, wireFloatMap)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, k := range sortedKeys(x) {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(k)))
			buf = appendFloats(buf, x[k])
		}
		return buf, nil
	case *stream.Vector:
		if x == nil {
			return append(buf, wireVectorNil), nil
		}
		buf = append(buf, wireVector)
		return x.AppendWire(buf), nil
	case *quant.Quantized:
		if x == nil {
			return append(buf, wireQuantNil), nil
		}
		buf = append(buf, wireQuantized)
		return appendSized(buf, x.Marshal()), nil
	case []*quant.Quantized:
		buf = append(buf, wireQuantSlice)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, q := range x {
			if q == nil {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			buf = appendSized(buf, q.Marshal())
		}
		return buf, nil
	case map[int]*quant.Quantized:
		buf = append(buf, wireQuantMap)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, k := range sortedKeys(x) {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(k)))
			buf = appendSized(buf, x[k].Marshal())
		}
		return buf, nil
	case int:
		buf = append(buf, wireInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(int64(x))), nil
	case float64:
		buf = append(buf, wireFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		buf = append(buf, wireString)
		return appendSized(buf, []byte(x)), nil
	case []byte:
		buf = append(buf, wireBytes)
		return appendSized(buf, x), nil
	default:
		payloadMu.RLock()
		name, ok := payloadByType[reflect.TypeOf(v)]
		var c PayloadCodec
		if ok {
			c = payloadCodecs[name]
		}
		payloadMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("comm: no payload codec for %T (see RegisterPayloadCodec)", v)
		}
		buf = append(buf, wireRegistered)
		buf = appendSized(buf, []byte(name))
		body := c.Append(nil, v)
		return appendSized(buf, body), nil
	}
}

// decodePayload reverses appendPayload, consuming the whole buffer.
func decodePayload(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("comm: empty payload frame")
	}
	id, body := data[0], data[1:]
	switch id {
	case wireNil:
		return nil, checkDrained(body, 0)
	case wireVectorNil:
		return (*stream.Vector)(nil), checkDrained(body, 0)
	case wireQuantNil:
		return (*quant.Quantized)(nil), checkDrained(body, 0)
	case wireFloats:
		xs, n, err := decodeFloats(body)
		if err != nil {
			return nil, err
		}
		return xs, checkDrained(body, n)
	case wireFloatss:
		if len(body) < 4 {
			return nil, errTruncated
		}
		count := int(binary.LittleEndian.Uint32(body))
		off := 4
		out := make([][]float64, count)
		for i := 0; i < count; i++ {
			if off >= len(body) {
				return nil, errTruncated
			}
			present := body[off]
			off++
			if present == 0 {
				continue
			}
			xs, n, err := decodeFloats(body[off:])
			if err != nil {
				return nil, err
			}
			out[i] = xs
			off += n
		}
		return out, checkDrained(body, off)
	case wireFloatMap:
		if len(body) < 4 {
			return nil, errTruncated
		}
		count := int(binary.LittleEndian.Uint32(body))
		off := 4
		out := make(map[int][]float64, count)
		for i := 0; i < count; i++ {
			if off+8 > len(body) {
				return nil, errTruncated
			}
			k := int(int64(binary.LittleEndian.Uint64(body[off:])))
			off += 8
			xs, n, err := decodeFloats(body[off:])
			if err != nil {
				return nil, err
			}
			out[k] = xs
			off += n
		}
		return out, checkDrained(body, off)
	case wireVector:
		v, n, err := stream.DecodeWire(body)
		if err != nil {
			return nil, err
		}
		return v, checkDrained(body, n)
	case wireQuantized:
		b, n, err := readSized(body)
		if err != nil {
			return nil, err
		}
		q, err := quant.Unmarshal(b)
		if err != nil {
			return nil, err
		}
		return q, checkDrained(body, n)
	case wireQuantSlice:
		if len(body) < 4 {
			return nil, errTruncated
		}
		count := int(binary.LittleEndian.Uint32(body))
		off := 4
		out := make([]*quant.Quantized, count)
		for i := 0; i < count; i++ {
			if off >= len(body) {
				return nil, errTruncated
			}
			present := body[off]
			off++
			if present == 0 {
				continue
			}
			b, n, err := readSized(body[off:])
			if err != nil {
				return nil, err
			}
			q, err := quant.Unmarshal(b)
			if err != nil {
				return nil, err
			}
			out[i] = q
			off += n
		}
		return out, checkDrained(body, off)
	case wireQuantMap:
		if len(body) < 4 {
			return nil, errTruncated
		}
		count := int(binary.LittleEndian.Uint32(body))
		off := 4
		out := make(map[int]*quant.Quantized, count)
		for i := 0; i < count; i++ {
			if off+8 > len(body) {
				return nil, errTruncated
			}
			k := int(int64(binary.LittleEndian.Uint64(body[off:])))
			off += 8
			b, n, err := readSized(body[off:])
			if err != nil {
				return nil, err
			}
			q, err := quant.Unmarshal(b)
			if err != nil {
				return nil, err
			}
			out[k] = q
			off += n
		}
		return out, checkDrained(body, off)
	case wireInt:
		if len(body) != 8 {
			return nil, errTruncated
		}
		return int(int64(binary.LittleEndian.Uint64(body))), nil
	case wireFloat:
		if len(body) != 8 {
			return nil, errTruncated
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(body)), nil
	case wireString:
		b, n, err := readSized(body)
		if err != nil {
			return nil, err
		}
		return string(b), checkDrained(body, n)
	case wireBytes:
		b, n, err := readSized(body)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), checkDrained(body, n)
	case wireRegistered:
		nameB, n, err := readSized(body)
		if err != nil {
			return nil, err
		}
		codecBody, m, err := readSized(body[n:])
		if err != nil {
			return nil, err
		}
		payloadMu.RLock()
		c, ok := payloadCodecs[string(nameB)]
		payloadMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("comm: unknown payload codec %q", nameB)
		}
		v, err := c.Decode(codecBody)
		if err != nil {
			return nil, err
		}
		return v, checkDrained(body, n+m)
	default:
		return nil, fmt.Errorf("comm: unknown payload type id %d", id)
	}
}

var errTruncated = fmt.Errorf("comm: truncated payload frame")

// checkDrained rejects trailing garbage after a decoded payload.
func checkDrained(body []byte, consumed int) error {
	if consumed != len(body) {
		return fmt.Errorf("comm: payload frame has %d trailing bytes", len(body)-consumed)
	}
	return nil
}

// appendFloats writes a length-prefixed float64 slice.
func appendFloats(buf []byte, xs []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xs)))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// decodeFloats reads a length-prefixed float64 slice, returning it and the
// bytes consumed.
func decodeFloats(data []byte) ([]float64, int, error) {
	if len(data) < 4 {
		return nil, 0, errTruncated
	}
	count := int(binary.LittleEndian.Uint32(data))
	size := 4 + 8*count
	if count < 0 || len(data) < size {
		return nil, 0, errTruncated
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[4+8*i:]))
	}
	return out, size, nil
}

// appendSized writes a length-prefixed byte block.
func appendSized(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// readSized reads a length-prefixed byte block (aliasing data), returning
// it and the bytes consumed.
func readSized(data []byte) ([]byte, int, error) {
	if len(data) < 4 {
		return nil, 0, errTruncated
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < 0 || len(data) < 4+n {
		return nil, 0, errTruncated
	}
	return data[4 : 4+n], 4 + n, nil
}

// sortedKeys returns m's keys ascending — map payloads must encode
// deterministically so both real backends produce identical frames.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
