package comm

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// TestDisabledObsZeroAllocs is the disabled-path cost contract: a world
// that never called EnableObservability must take zero allocations per
// send-bookkeeping call and per span hook. The measurement runs inside a
// rank goroutine, exactly where the hot path lives.
func TestDisabledObsZeroAllocs(t *testing.T) {
	w := NewWorld(1, simnet.Profile{Alpha: 1e-6})
	got := Run(w, func(p *Proc) float64 {
		return testing.AllocsPerRun(200, func() {
			p.recordSend(0, 7, 64, 0, 1e-6, 1, 0)
			p.SpanBegin("phase")
			p.SpanEnd()
		})
	})
	if got[0] != 0 {
		t.Fatalf("disabled observability allocated %v times per send+span", got[0])
	}
	if p := w.Observability(); p != nil {
		t.Fatal("Observability should be nil when never enabled")
	}
}

func TestEnableObservabilityRecordsSends(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6, BetaPerByte: 1e-9})
	hub := w.EnableObservability()
	if w.EnableObservability() != hub || w.Observability() != hub {
		t.Fatal("EnableObservability not idempotent")
	}
	if hub.Clock() != obs.ClockVirtual {
		t.Fatal("simulator world should report the virtual clock")
	}
	Run(w, func(p *Proc) any {
		p.SpanBegin("exchange")
		p.Send(1-p.Rank(), 3, nil, 64)
		p.Recv(1-p.Rank(), 3)
		p.SpanEnd()
		return nil
	})
	reg := hub.Metrics()
	if n := reg.Counter("comm.sends").Value(); n != 2 {
		t.Fatalf("comm.sends = %d, want 2", n)
	}
	if b := reg.Counter("comm.send_bytes").Value(); b != 128 {
		t.Fatalf("comm.send_bytes = %d, want 128", b)
	}
	if c := reg.Histogram("comm.wire_seconds").Count(); c != 2 {
		t.Fatalf("comm.wire_seconds count = %d, want 2", c)
	}
	var sends, phases int
	for _, s := range hub.Spans() {
		switch {
		case s.Lane == obs.LaneNet && s.Name == "send":
			sends++
			if s.End <= s.Start {
				t.Fatalf("send span must have positive wire time: %+v", s)
			}
			if s.Attrs[0].Key != "dst" || s.Attrs[2].Key != "bytes" || s.Attrs[2].Value != "64" {
				t.Fatalf("send span attrs wrong: %+v", s.Attrs)
			}
		case s.Name == "exchange":
			phases++
		}
	}
	if sends != 2 || phases != 2 {
		t.Fatalf("sends=%d phases=%d, want 2/2", sends, phases)
	}
}

// TestObsTrackFollowsSubAndFork checks that sub-communicator views and
// forked procs keep reporting onto the owning rank's track, so spans
// from hierarchical leader phases and nonblocking collectives land on
// the right timeline.
func TestObsTrackFollowsSubAndFork(t *testing.T) {
	w := NewWorld(4, simnet.Profile{Alpha: 1e-6})
	hub := w.EnableObservability()
	Run(w, func(p *Proc) any {
		if p.Rank() < 2 {
			p.NextTagBase()
			sub := p.Sub([]int{0, 1})
			sub.SpanBegin("sub-phase")
			sub.SpanEnd()
			p.Join(sub)
		}
		f := p.Fork()
		f.SpanBegin("forked")
		f.SpanEnd()
		p.Join(f)
		return nil
	})
	byRank := map[int]int{}
	for _, s := range hub.Spans() {
		byRank[s.Rank]++
		if s.Name == "sub-phase" && s.Rank > 1 {
			t.Fatalf("sub span on wrong track: %+v", s)
		}
	}
	for r := 0; r < 4; r++ {
		want := 1 // "forked"
		if r < 2 {
			want = 2 // plus "sub-phase"
		}
		if byRank[r] != want {
			t.Fatalf("rank %d has %d spans, want %d", r, byRank[r], want)
		}
	}
}

func TestObsClockFollowsTransport(t *testing.T) {
	w := NewWorld(2, simnet.Profile{Alpha: 1e-6})
	hub := w.EnableObservability()
	w.UseGoroutineTransport()
	if hub.Clock() != obs.ClockWall {
		t.Fatal("hub clock should flip to wall when a real transport is attached")
	}
}

// BenchmarkDisabledObsHooks measures the disabled-path cost of the
// instrumentation added to the send path and the span hooks: a handful
// of nil checks per call.
func BenchmarkDisabledObsHooks(b *testing.B) {
	w := NewWorld(1, simnet.Profile{Alpha: 1e-6})
	Run(w, func(p *Proc) any {
		for i := 0; i < b.N; i++ {
			p.recordSend(0, 7, 64, 0, 1e-6, 1, 0)
			p.SpanBegin("phase")
			p.SpanEnd()
		}
		return nil
	})
}
