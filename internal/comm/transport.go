package comm

import "fmt"

// Transport is the execution backend behind Proc.Send/Recv/SendRecv/
// Barrier: it decides how a message's payload reaches the destination
// rank's mailbox and what the recorded timestamps mean. Three backends are
// provided, selected per World:
//
//   - the simulator (default): single-process, payloads handed over by
//     reference, per-rank virtual clocks advanced by the α–β model;
//   - goroutine (World.UseGoroutineTransport): single-process, one truly
//     concurrent goroutine per rank, payloads deep-copied through the wire
//     codec, measured wall-clock timestamps;
//   - TCP (NewWorldTCP): one or more OS processes, payloads framed over
//     sockets, measured wall-clock timestamps.
//
// The interface is sealed (its send/close methods are unexported):
// backends live in this package because they are entangled with mailbox
// delivery, tracing, and poisoning invariants.
type Transport interface {
	// Name identifies the backend: "sim", "goroutine", or "tcp".
	Name() string
	// Wall reports whether the backend's timestamps are measured
	// wall-clock seconds (true) rather than virtual α–β seconds (false).
	Wall() bool
	// send moves one message from p to world rank dst and records it.
	send(p *Proc, dst, tag int, payload any, bytes int)
	// close releases backend resources.
	close() error
}

// simTransport is the virtual-clock simulator backend: the message costs
// α+β·bytes (times the modeled egress contention factor) on the sender's
// clock, and the payload is delivered by reference — sender and receiver
// share memory, which is safe because payload ownership transfers on Send.
type simTransport struct{}

// Name identifies the backend.
func (simTransport) Name() string { return "sim" }

// Wall reports virtual time.
func (simTransport) Wall() bool { return false }

func (simTransport) close() error { return nil }

func (simTransport) send(p *Proc, dst, tag int, payload any, bytes int) {
	start := p.clock.Now()
	factor, level := p.sendFactor(dst)
	cost := p.world.profileFor(p.rank, dst).ContendedTransferTime(bytes, factor)
	p.clock.Advance(cost)
	arrival := p.clock.Now()
	p.recordSend(dst, tag, bytes, start, arrival, factor, level)
	p.deliver(dst, Message{Src: p.rank, Tag: tag, Payload: payload, Bytes: bytes, Arrival: arrival})
}

// goroutineTransport is the in-process real backend: ranks run truly
// concurrently and every payload is deep-copied through the wire codec
// before delivery — real per-byte serialization work, so the recorded
// (measured) transfer times carry a genuine α–β signal for the link
// calibrator, and the codec is exercised on every single message exactly
// as the TCP backend would use it.
type goroutineTransport struct{}

// Name identifies the backend.
func (goroutineTransport) Name() string { return "goroutine" }

// Wall reports measured wall-clock time.
func (goroutineTransport) Wall() bool { return true }

func (goroutineTransport) close() error { return nil }

func (goroutineTransport) send(p *Proc, dst, tag int, payload any, bytes int) {
	start := p.world.wallNow()
	cp, err := copyPayload(payload)
	if err != nil {
		panic(fmt.Sprintf("comm: goroutine transport payload round-trip: %v", err))
	}
	arrival := p.world.wallNow()
	// Contention on a real machine is physical, not modeled: record
	// factor 1 so the calibrator fits measured bytes directly. The priced
	// hierarchy level is still attributed, keeping per-level fits.
	p.recordSend(dst, tag, bytes, start, arrival, 1, p.sharedLevel(dst))
	p.deliver(dst, Message{Src: p.rank, Tag: tag, Payload: cp, Bytes: bytes, Arrival: arrival})
}

// UseGoroutineTransport switches the world to the in-process goroutine
// backend: ranks run as truly concurrent goroutines, payloads are
// deep-copied through the wire codec, and all times (Times, MaxTime,
// Proc.Now, trace timestamps) are measured wall-clock seconds. Call it
// before Run; the virtual clocks are never advanced on this backend.
// Returns the world for chaining.
func (w *World) UseGoroutineTransport() *World {
	w.setTransport(goroutineTransport{})
	return w
}
