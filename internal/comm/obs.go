package comm

import (
	"strconv"

	"repro/internal/obs"
)

// worldObs bundles a world's observability hub with the metric handles
// the send hot path needs, resolved once at enable time so recordSend
// never takes the registry lock.
type worldObs struct {
	hub       *obs.Obs
	sends     *obs.Counter
	sendBytes *obs.Counter
	wire      *obs.Histogram
}

// EnableObservability attaches an observability hub to the world: one
// span track per rank plus a metrics registry, on the transport's clock
// (virtual on the simulator, wall on goroutine/TCP). Call it before
// Run — ranks cache their track when they start. Idempotent: repeated
// calls return the same hub. A world that never calls this carries nil
// handles everywhere and pays one pointer comparison (zero allocations)
// per instrumentation site.
func (w *World) EnableObservability() *obs.Obs {
	if w.obs != nil {
		return w.obs.hub
	}
	hub := obs.New(w.p, w.obsClock())
	reg := hub.Metrics()
	w.obs = &worldObs{
		hub:       hub,
		sends:     reg.Counter("comm.sends"),
		sendBytes: reg.Counter("comm.send_bytes"),
		wire:      reg.Histogram("comm.wire_seconds"),
	}
	return hub
}

// Observability returns the world's hub, or nil when observability was
// never enabled.
func (w *World) Observability() *obs.Obs {
	if w.obs == nil {
		return nil
	}
	return w.obs.hub
}

// obsClock maps the transport's clock mode to the hub's clock label.
func (w *World) obsClock() obs.Clock {
	if w.wall {
		return obs.ClockWall
	}
	return obs.ClockVirtual
}

// syncObsClock re-labels the hub's clock after a transport change
// (EnableObservability before UseGoroutineTransport, say).
func (w *World) syncObsClock() {
	if w.obs != nil {
		w.obs.hub.SetClock(w.obsClock())
	}
}

// Obs returns this rank's span track, or nil when observability is
// disabled — callers building attribute lists must guard on it, because
// variadic arguments are materialized before any nil check can run.
func (p *Proc) Obs() *obs.Track { return p.obs }

// SpanBegin opens a span named name at the rank's current time on its
// main lane. Free (one nil check, no allocations) when observability is
// disabled.
func (p *Proc) SpanBegin(name string) {
	if p.obs != nil {
		p.obs.Begin(name, p.Now())
	}
}

// SpanEnd closes the innermost span opened by SpanBegin at the rank's
// current time. Free when observability is disabled.
func (p *Proc) SpanEnd() {
	if p.obs != nil {
		p.obs.End(p.Now())
	}
}

// observeSend is recordSend's enabled-path tail: bump the sharded
// counters and record the message as a span on the rank's net lane
// (sends get their own lane because a message's arrival can outlive the
// phase that sent it).
func (p *Proc) observeSend(ob *worldObs, dst, tag, bytes int, start, arrival float64, level int) {
	rank := p.rank
	ob.sends.Inc(rank)
	ob.sendBytes.Add(rank, int64(bytes))
	ob.wire.Observe(rank, arrival-start)
	if t := p.obs; t != nil {
		t.EventLane(obs.LaneNet, "send", start, arrival,
			obs.Attr{Key: "dst", Value: strconv.Itoa(dst)},
			obs.Attr{Key: "tag", Value: strconv.Itoa(tag)},
			obs.Attr{Key: "bytes", Value: strconv.Itoa(bytes)},
			obs.Attr{Key: "level", Value: strconv.Itoa(level)})
	}
}
