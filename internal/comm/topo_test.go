package comm

import (
	"testing"

	"repro/internal/simnet"
)

var (
	slowInter = simnet.Profile{Name: "slow", Alpha: 1e-5, BetaPerByte: 1e-8,
		GammaPerElem: 1e-10, SparseComputeFactor: 4}
	fastIntra = simnet.Profile{Name: "fast", Alpha: 1e-7, BetaPerByte: 1e-11,
		GammaPerElem: 1e-10, SparseComputeFactor: 4}
	testTopo = simnet.Topology{RanksPerNode: 2, Intra: fastIntra, Inter: slowInter}
)

func TestTopoWorldCostsByNodeLocality(t *testing.T) {
	const bytes = 1 << 20
	w := NewWorldTopo(4, testTopo)
	// Rank 0 sends to its node peer (1) and to a remote rank (2); the
	// sender-side injection cost must differ by the profile ratio.
	times := Run(w, func(p *Proc) float64 {
		switch p.Rank() {
		case 0:
			t0 := p.Now()
			p.Send(1, 1, nil, bytes)
			intra := p.Now() - t0
			t0 = p.Now()
			p.Send(2, 2, nil, bytes)
			inter := p.Now() - t0
			return inter / intra
		case 1:
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 2)
		}
		return 0
	})
	wantRatio := slowInter.TransferTime(bytes) / fastIntra.TransferTime(bytes)
	if got := times[0]; got != wantRatio {
		t.Fatalf("inter/intra cost ratio = %g, want %g", got, wantRatio)
	}
	if _, ok := w.Topology(); !ok {
		t.Fatal("topology world must report its topology")
	}
	if w.Profile().Name != "slow" {
		t.Fatal("topology world default profile must be the inter profile")
	}
}

func TestFlatWorldReportsNoTopology(t *testing.T) {
	w := NewWorld(2, slowInter)
	if _, ok := w.Topology(); ok {
		t.Fatal("flat world must not report a topology")
	}
	Run(w, func(p *Proc) any {
		if _, ok := p.Topology(); ok {
			panic("flat proc must not report a topology")
		}
		return nil
	})
}

func TestNewWorldTopoValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology must panic")
		}
	}()
	NewWorldTopo(4, simnet.Topology{RanksPerNode: 0, Intra: fastIntra, Inter: slowInter})
}

func TestSubCommunicatorRanksAndExchange(t *testing.T) {
	w := NewWorld(6, slowInter)
	// Odd world ranks form a group; each sends its group rank to the next
	// group member (ring), verifying translation of both Send and Recv.
	results := Run(w, func(p *Proc) int {
		if p.Rank()%2 == 0 {
			return -1
		}
		sub := p.Sub([]int{1, 3, 5})
		if sub.Size() != 3 {
			panic("sub size wrong")
		}
		if sub.WorldRank() != p.Rank() {
			panic("sub world rank wrong")
		}
		r := sub.Rank()
		next := (r + 1) % 3
		prev := (r + 2) % 3
		sub.Send(next, 7, r, 8)
		got := sub.Recv(prev, 7).Payload.(int)
		sub.Barrier()
		p.Join(sub)
		return got
	})
	for i, want := range map[int]int{1: 2, 3: 0, 5: 1} {
		if results[i] != want {
			t.Fatalf("group member at world rank %d received %d, want %d", i, results[i], want)
		}
	}
}

func TestSubCommunicatorClockFoldsBack(t *testing.T) {
	w := NewWorld(4, slowInter)
	times := Run(w, func(p *Proc) float64 {
		var ranks []int
		if p.Rank() < 2 {
			ranks = []int{0, 1}
		} else {
			ranks = []int{2, 3}
		}
		sub := p.Sub(ranks)
		sub.Send((sub.Rank()+1)%2, 3, nil, 1000)
		sub.Recv((sub.Rank()+1)%2, 3)
		p.Join(sub)
		return p.Now()
	})
	want := slowInter.TransferTime(1000)
	for r, got := range times {
		if got < want {
			t.Fatalf("rank %d clock %g did not absorb sub-phase time %g", r, got, want)
		}
	}
}

func TestSubValidation(t *testing.T) {
	w := NewWorld(4, slowInter)
	Run(w, func(p *Proc) any {
		if p.Rank() != 0 {
			return nil
		}
		mustPanic := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					panic("expected panic: " + name)
				}
			}()
			f()
		}
		mustPanic("caller absent", func() { p.Sub([]int{1, 2}) })
		mustPanic("unsorted", func() { p.Sub([]int{2, 0}) })
		mustPanic("out of range", func() { p.Sub([]int{0, 9}) })
		mustPanic("nested", func() { p.Sub([]int{0, 1}).Sub([]int{0}) })
		return nil
	})
}
