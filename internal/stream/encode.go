package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format (little endian):
//
//	byte 0       format flag: 0 = sparse, 1 = dense
//	bytes 1..4   uint32 nnz (sparse) or unused (dense)
//	sparse:      nnz × (uint32 index, float64 value)
//	dense:       N × float64 value
//
// The modeled wire size (WireBytes) may differ from the encoded length when
// ValueBytes is 4: storage stays float64 but the cost model charges 4 bytes
// per value, mirroring a single-precision deployment.

const (
	flagSparse byte = 0
	flagDense  byte = 1
)

var errShortBuffer = errors.New("stream: short buffer")

// Encode serializes the vector. The universe size and operation are not
// part of the wire format; Decode requires them (collectives know both).
func (v *Vector) Encode() []byte {
	return v.EncodeInto(nil)
}

// EncodeInto is Encode drawing the output buffer from sc, so steady-state
// encode/decode round-trips stop allocating: return the buffer with
// Scratch.PutBytes once its bytes are on the wire. A nil pool degrades to
// plain allocation.
func (v *Vector) EncodeInto(sc *Scratch) []byte {
	if v.dns != nil {
		buf := sc.grabBytes(HeaderBytes + 8*v.n)
		buf[0] = flagDense
		buf[1], buf[2], buf[3], buf[4] = 0, 0, 0, 0
		for i, x := range v.dns {
			binary.LittleEndian.PutUint64(buf[HeaderBytes+8*i:], math.Float64bits(x))
		}
		return buf
	}
	buf := sc.grabBytes(HeaderBytes + 12*len(v.idx))
	buf[0] = flagSparse
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(v.idx)))
	off := HeaderBytes
	for i, ix := range v.idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(ix))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(v.val[i]))
		off += 12
	}
	return buf
}

// Decode deserializes a vector of dimension n for operation op from buf.
func Decode(buf []byte, n int, op Op) (*Vector, error) {
	return DecodeInto(buf, n, op, nil)
}

// DecodeInto is Decode drawing the vector's header and storage from sc, so
// steady-state round-trips stop allocating: release the result with
// Scratch.Release once it is merged. buf is only read; a nil pool degrades
// to plain allocation.
func DecodeInto(buf []byte, n int, op Op, sc *Scratch) (*Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: dimension must be positive, got %d", n)
	}
	if len(buf) < HeaderBytes {
		return nil, errShortBuffer
	}
	v := sc.grabVector(n, op, DefaultValueBytes, Delta(n, DefaultValueBytes))
	switch buf[0] {
	case flagDense:
		if len(buf) != HeaderBytes+8*n {
			sc.Release(v)
			return nil, fmt.Errorf("stream: dense payload is %d bytes, want %d", len(buf), HeaderBytes+8*n)
		}
		v.dns = sc.grabDenseRaw(n)
		for i := range v.dns {
			v.dns[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[HeaderBytes+8*i:]))
		}
		return v, nil
	case flagSparse:
		nnz := int(binary.LittleEndian.Uint32(buf[1:]))
		if len(buf) != HeaderBytes+12*nnz {
			sc.Release(v)
			return nil, fmt.Errorf("stream: sparse payload is %d bytes, want %d", len(buf), HeaderBytes+12*nnz)
		}
		v.idx = sc.grabIdx(nnz)
		v.val = sc.grabVal(nnz)
		off := HeaderBytes
		var prev int32 = -1
		for i := 0; i < nnz; i++ {
			ix := int32(binary.LittleEndian.Uint32(buf[off:]))
			if ix <= prev || int(ix) >= n {
				sc.Release(v)
				return nil, fmt.Errorf("stream: corrupt index %d at position %d", ix, i)
			}
			prev = ix
			v.idx = append(v.idx, ix)
			v.val = append(v.val, math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:])))
			off += 12
		}
		return v, nil
	default:
		sc.Release(v)
		return nil, fmt.Errorf("stream: unknown format flag %d", buf[0])
	}
}
