package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format (little endian):
//
//	byte 0       format flag: 0 = sparse, 1 = dense
//	bytes 1..4   uint32 nnz (sparse) or unused (dense)
//	sparse:      nnz × (uint32 index, float64 value)
//	dense:       N × float64 value
//
// The modeled wire size (WireBytes) may differ from the encoded length when
// ValueBytes is 4: storage stays float64 but the cost model charges 4 bytes
// per value, mirroring a single-precision deployment.

const (
	flagSparse byte = 0
	flagDense  byte = 1
)

var errShortBuffer = errors.New("stream: short buffer")

// Encode serializes the vector. The universe size and operation are not
// part of the wire format; Decode requires them (collectives know both).
func (v *Vector) Encode() []byte {
	if v.dns != nil {
		buf := make([]byte, HeaderBytes+8*v.n)
		buf[0] = flagDense
		for i, x := range v.dns {
			binary.LittleEndian.PutUint64(buf[HeaderBytes+8*i:], math.Float64bits(x))
		}
		return buf
	}
	buf := make([]byte, HeaderBytes+12*len(v.idx))
	buf[0] = flagSparse
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(v.idx)))
	off := HeaderBytes
	for i, ix := range v.idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(ix))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(v.val[i]))
		off += 12
	}
	return buf
}

// Decode deserializes a vector of dimension n for operation op from buf.
func Decode(buf []byte, n int, op Op) (*Vector, error) {
	if len(buf) < HeaderBytes {
		return nil, errShortBuffer
	}
	v := Zero(n, op)
	switch buf[0] {
	case flagDense:
		if len(buf) != HeaderBytes+8*n {
			return nil, fmt.Errorf("stream: dense payload is %d bytes, want %d", len(buf), HeaderBytes+8*n)
		}
		v.dns = make([]float64, n)
		for i := range v.dns {
			v.dns[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[HeaderBytes+8*i:]))
		}
		return v, nil
	case flagSparse:
		nnz := int(binary.LittleEndian.Uint32(buf[1:]))
		if len(buf) != HeaderBytes+12*nnz {
			return nil, fmt.Errorf("stream: sparse payload is %d bytes, want %d", len(buf), HeaderBytes+12*nnz)
		}
		v.idx = make([]int32, nnz)
		v.val = make([]float64, nnz)
		off := HeaderBytes
		var prev int32 = -1
		for i := 0; i < nnz; i++ {
			ix := int32(binary.LittleEndian.Uint32(buf[off:]))
			if ix <= prev || int(ix) >= n {
				return nil, fmt.Errorf("stream: corrupt index %d at position %d", ix, i)
			}
			prev = ix
			v.idx[i] = ix
			v.val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
			off += 12
		}
		return v, nil
	default:
		return nil, fmt.Errorf("stream: unknown format flag %d", buf[0])
	}
}
