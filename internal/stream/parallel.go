package stream

import (
	"fmt"
	"sort"
	"sync"
)

// MergeKParallel reduces vs in parallel and returns a fresh vector that is
// value-for-value bit-identical to MergeK(vs, nil). The coordinate space
// [0, N) is split into one contiguous range per worker; a worker binary-
// searches each input stream's cursor bounds for its range and runs the
// ordinary k-way heap merge on the sub-streams, and the per-range outputs
// are stitched back in coordinate order. Bit-identity holds because the
// k-way pass folds each coordinate independently, in stream order, and
// densification depends only on the total merged size (> δ), which the
// stitched result knows exactly — so neither the range boundaries nor the
// worker count can change a single output bit.
//
// Workers ≤ 1, a dense input, a fan-in past the heap's stream budget, or a
// tiny total all fall back to the serial MergeK. Unlike the scratch-backed
// serial path this variant allocates plainly: scratch pools are per-rank,
// not goroutine-safe. Intended for the real transports, where ranks are OS
// threads with idle cores to spare; the simulator's virtual-time accounting
// never calls it.
func MergeKParallel(vs []*Vector, workers int) *Vector {
	if len(vs) == 0 {
		panic("stream: MergeKParallel needs at least one input")
	}
	total := 0
	serial := workers <= 1 || len(vs) == 2
	for _, v := range vs {
		if v.dns != nil {
			serial = true
			break
		}
		total += len(v.idx)
	}
	// Below ~4k merged elements the fan-out/stitch overhead dominates any
	// parallel win; the threshold only affects scheduling, never values.
	if serial || len(vs) > mergeMaxStreams || total < 4096 {
		return MergeK(vs, nil)
	}
	if workers > total/2048 {
		workers = total / 2048
	}

	out := &Vector{n: vs[0].n, op: vs[0].op, valueBytes: vs[0].valueBytes, delta: vs[0].delta}
	n := vs[0].n
	for _, v := range vs {
		if v.n != n {
			panic("stream: dimension mismatch")
		}
		if v.op != out.op {
			panic("stream: operation mismatch")
		}
	}

	type rangeOut struct {
		idx []int32
		val []float64
	}
	outs := make([]rangeOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int32(int64(w) * int64(n) / int64(workers))
		hi := int32(int64(w+1) * int64(n) / int64(workers))
		wg.Add(1)
		go func(w int, lo, hi int32) {
			defer wg.Done()
			cur := make([]mergeCursor, 0, len(vs))
			for _, v := range vs {
				// Cursor bounds for [lo, hi): first position ≥ lo and
				// first position ≥ hi in the sorted index stream.
				s := sort.Search(len(v.idx), func(i int) bool { return v.idx[i] >= lo })
				e := sort.Search(len(v.idx), func(i int) bool { return v.idx[i] >= hi })
				if s < e {
					cur = append(cur, mergeCursor{idx: v.idx[s:e], val: v.val[s:e]})
				}
			}
			idx, val := mergeCursors(cur, out.op)
			outs[w] = rangeOut{idx: idx, val: val}
		}(w, lo, hi)
	}
	wg.Wait()

	merged := 0
	for _, r := range outs {
		merged += len(r.idx)
	}
	if merged > out.delta {
		// Exactly the serial spill rule: the result exceeds δ, so it is
		// dense — seeded with the neutral element, holding each
		// coordinate's folded value.
		dns := make([]float64, n)
		if neutral := out.op.Neutral(); neutral != 0 {
			for i := range dns {
				dns[i] = neutral
			}
		}
		for _, r := range outs {
			for i, ix := range r.idx {
				dns[ix] = r.val[i]
			}
		}
		out.dns = dns
		return out
	}
	out.idx = make([]int32, 0, merged)
	out.val = make([]float64, 0, merged)
	for _, r := range outs {
		out.idx = append(out.idx, r.idx...)
		out.val = append(out.val, r.val...)
	}
	return out
}

// TakeFrom adopts o's representation (storage, δ, value-byte accounting)
// into v, releasing v's superseded buffers into s (nil drops them), and
// voids o. It is the splice step for merge paths that build their result in
// a fresh vector — e.g. MergeKParallel — while the caller's accumulator
// pointer must keep identifying the result. v and o must share dimension
// and operation.
func (v *Vector) TakeFrom(o *Vector, s *Scratch) {
	if v.n != o.n {
		panic(fmt.Sprintf("stream: dimension mismatch %d vs %d", v.n, o.n))
	}
	if v.op != o.op {
		panic("stream: operation mismatch")
	}
	s.putIdx(v.idx)
	s.putVal(v.val)
	s.putDense(v.dns)
	v.idx, v.val, v.dns = o.idx, o.val, o.dns
	v.valueBytes, v.delta = o.valueBytes, o.delta
	o.idx, o.val, o.dns = nil, nil, nil
}

// mergeCursors runs the k-way heap merge over the given cursors (already
// in stream order) and returns the folded sparse output — the loop of
// AddAll without the δ spill, which the caller applies to the stitched
// whole.
func mergeCursors(cur []mergeCursor, op Op) ([]int32, []float64) {
	if len(cur) == 0 {
		return nil, nil
	}
	total := 0
	for i := range cur {
		total += len(cur[i].idx)
	}
	h := make([]uint64, len(cur))
	for i := range cur {
		h[i] = mergeKey(cur[i].idx[0], i)
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownKeys(h, i)
	}
	outIdx := make([]int32, 0, total)
	outVal := make([]float64, 0, total)
	neutral := op.Neutral()
	for len(h) > 0 {
		ix := int32(h[0] >> mergeOrdBits)
		c := &cur[h[0]&mergeOrdMask]
		x := c.val[c.pos]
		have := true
		h = advanceRootKey(h, cur)
		for len(h) > 0 && int32(h[0]>>mergeOrdBits) == ix {
			c = &cur[h[0]&mergeOrdMask]
			y := c.val[c.pos]
			if have {
				x = op.Combine(x, y)
				if x == neutral {
					have = false
				}
			} else {
				x, have = y, true
			}
			h = advanceRootKey(h, cur)
		}
		if have {
			outIdx = append(outIdx, ix)
			outVal = append(outVal, x)
		}
	}
	return outIdx, outVal
}
