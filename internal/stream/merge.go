package stream

import "fmt"

// This file implements the multi-stream reduction hot path: a k-way sorted
// merge (MergeK / AddAll) that reduces P streams in one pass instead of
// P−1 chained two-way merges, plus the scratch-buffer variants of the
// mutating Vector operations (AddInto, DensifyInto, CloneInto,
// ExtractRangeInto) that draw output buffers from a Scratch pool. The
// split phase of the SSAR/DSAR algorithms (§5.3.2) receives P−1 partition
// streams per rank and is the dominant wall-clock cost of an allreduce;
// these paths cut both its O(P·k) re-merging work and its per-Add
// allocations.
//
// Equivalence contract: AddAll's result is value-for-value bit-identical
// to `for _, o := range others { v.Add(o) }`. When any input is dense it
// literally performs the chained in-place folds (dense operands already
// cost one pass each). In the all-sparse case — the split-phase hot path —
// it runs a single k-way pass: for every coordinate the present values
// fold in stream order with the same neutral-element cancellation
// dropping the chained merges apply, and canonical sparse vectors cannot
// carry signed zeros, so the folds agree bit-for-bit. The representation
// may then be *more* canonical: chained Add densifies on a pessimistic
// per-step upper bound (|H1|+|H2| > δ), while the k-way pass densifies
// exactly when the merged size exceeds δ, so it can stay sparse where the
// chain would have switched.

// AddAll reduces every vector of others into v in a single pass,
// semantically identical to calling v.Add(o) for each o in order (see the
// equivalence contract above). All inputs must share v's dimension and
// operation; others is not modified. A nil scratch is allowed.
func (v *Vector) AddAll(others []*Vector, s *Scratch) {
	anyDense := v.dns != nil
	for _, o := range others {
		if o.n != v.n {
			panic(fmt.Sprintf("stream: dimension mismatch %d vs %d", v.n, o.n))
		}
		if o.op != v.op {
			panic("stream: operation mismatch")
		}
		if o.dns != nil {
			anyDense = true
		}
	}
	if len(others) == 0 {
		return
	}
	if anyDense {
		// Some input is dense: fold in the exact chained order. Dense
		// operands are already consumed in one pass each, so there is no
		// k-way advantage — and bit-exactness demands the chain's literal
		// behavior (e.g. the first dense operand's array is copied, which
		// preserves signed zeros a Combine with the neutral would lose).
		for _, o := range others {
			v.AddInto(o, s)
		}
		return
	}
	if len(others) == 1 {
		// Two streams: the plain two-way merge (including its upper-bound
		// densify rule) IS the chained semantics.
		v.AddInto(others[0], s)
		return
	}

	total := len(v.idx)
	cur := make([]mergeCursor, 0, len(others)+1)
	if len(v.idx) > 0 {
		cur = append(cur, mergeCursor{idx: v.idx, val: v.val})
	}
	for _, o := range others {
		total += len(o.idx)
		if len(o.idx) > 0 {
			cur = append(cur, mergeCursor{idx: o.idx, val: o.val})
		}
	}
	if total == len(v.idx) {
		return // every other stream is empty
	}
	if len(cur) > mergeMaxStreams {
		// The packed heap keys reserve 16 bits for the stream order; a
		// fan-in this wide falls back to chained in-place merges.
		for _, o := range others {
			v.AddInto(o, s)
		}
		return
	}

	// The merge frontier is a binary min-heap of packed (index, stream)
	// keys: 8-byte sift operations instead of cursor-struct swaps keep the
	// per-element cost low. Key order breaks index ties by stream order,
	// so equal indices pop — and fold — in exactly the chained order.
	h := make([]uint64, len(cur))
	for i := range cur {
		h[i] = mergeKey(cur[i].idx[0], i)
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownKeys(h, i)
	}
	outIdx := s.grabIdx(total)
	outVal := s.grabVal(total)
	neutral := v.op.Neutral()
	for len(h) > 0 {
		ix := int32(h[0] >> mergeOrdBits)
		c := &cur[h[0]&mergeOrdMask]
		x := c.val[c.pos]
		have := true
		h = advanceRootKey(h, cur)
		// Fold every stream holding ix, in stream order — including
		// re-creating and dropping the neutral element mid-way, exactly as
		// the chained merges would.
		for len(h) > 0 && int32(h[0]>>mergeOrdBits) == ix {
			c = &cur[h[0]&mergeOrdMask]
			y := c.val[c.pos]
			if have {
				x = v.op.Combine(x, y)
				if x == neutral {
					have = false
				}
			} else {
				x, have = y, true
			}
			h = advanceRootKey(h, cur)
		}
		if have {
			outIdx = append(outIdx, ix)
			outVal = append(outVal, x)
			if len(outIdx) > v.delta {
				// Emitted entries are final (indices ascend), so the result
				// is certain to exceed δ: finish densely.
				v.spillToDense(outIdx, outVal, cur, s)
				return
			}
		}
	}
	s.putIdx(v.idx)
	s.putVal(v.val)
	v.idx, v.val = outIdx, outVal
}

// MergeK reduces vs in one k-way pass and returns a fresh vector,
// value-for-value bit-identical to cloning vs[0] and chain-Adding the
// rest (see AddAll for the exact contract). vs must be non-empty and
// share one dimension and operation; the inputs are not modified. The
// result inherits vs[0]'s δ and value-byte settings. A nil scratch is
// allowed.
func MergeK(vs []*Vector, s *Scratch) *Vector {
	if len(vs) == 0 {
		panic("stream: MergeK needs at least one input")
	}
	out := &Vector{n: vs[0].n, op: vs[0].op, valueBytes: vs[0].valueBytes, delta: vs[0].delta}
	out.AddAll(vs, s)
	return out
}

// mergeCursor is one input stream's read position in the k-way merge; its
// stream order is its position in the cursor array.
type mergeCursor struct {
	idx []int32
	val []float64
	pos int
}

// mergeOrdBits is the low-bit budget of a packed heap key reserved for the
// stream order (ties at equal index must pop in stream order).
const (
	mergeOrdBits    = 16
	mergeOrdMask    = 1<<mergeOrdBits - 1
	mergeMaxStreams = 1 << mergeOrdBits
)

// mergeKey packs (index, stream order) into one comparable word: the index
// occupies the high bits, so key order is (index, order) lexicographic.
func mergeKey(ix int32, ord int) uint64 {
	return uint64(uint32(ix))<<mergeOrdBits | uint64(ord)
}

func siftDownKeys(h []uint64, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// advanceRootKey moves the minimum stream past its current entry, dropping
// it when exhausted, and restores the heap order.
func advanceRootKey(h []uint64, cur []mergeCursor) []uint64 {
	ord := h[0] & mergeOrdMask
	c := &cur[ord]
	c.pos++
	if c.pos == len(c.idx) {
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
	} else {
		h[0] = uint64(uint32(c.idx[c.pos]))<<mergeOrdBits | ord
	}
	siftDownKeys(h, 0)
	return h
}

// spillToDense finishes a k-way merge densely after the sparse output
// crossed δ: the pairs emitted so far seed a dense array and the remaining
// stream tails fold in stream order (every remaining index is strictly
// greater than the emitted ones, so per-coordinate fold order is
// preserved).
func (v *Vector) spillToDense(outIdx []int32, outVal []float64, cur []mergeCursor, s *Scratch) {
	neutral := v.op.Neutral()
	dns := s.grabDense(v.n, neutral)
	for i, ix := range outIdx {
		dns[ix] = outVal[i]
	}
	// The cursor array is already in stream order.
	for ci := range cur {
		c := &cur[ci]
		for p := c.pos; p < len(c.idx); p++ {
			ix := c.idx[p]
			dns[ix] = v.op.Combine(dns[ix], c.val[p])
		}
	}
	// Release buffers only after the tails are folded: the cursors may
	// still reference v's old storage.
	s.putIdx(outIdx)
	s.putVal(outVal)
	s.putIdx(v.idx)
	s.putVal(v.val)
	v.dns = dns
	v.idx, v.val = nil, nil
}

// AddInto is Add drawing its output buffers from s and releasing v's
// superseded buffers back into it — the in-place reduction step of the
// steady-state hot path. Semantics are identical to Add; a nil scratch
// degrades to plain allocation.
func (v *Vector) AddInto(other *Vector, s *Scratch) {
	if v.n != other.n {
		panic(fmt.Sprintf("stream: dimension mismatch %d vs %d", v.n, other.n))
	}
	if v.op != other.op {
		panic("stream: operation mismatch")
	}
	switch {
	case v.dns == nil && other.dns == nil:
		bound := len(v.idx) + len(other.idx)
		if bound > v.delta {
			v.DensifyInto(s)
			v.addSparseIntoDense(other)
			return
		}
		idx, val := v.mergeSparseInto(other, s.grabIdx(bound), s.grabVal(bound))
		s.putIdx(v.idx)
		s.putVal(v.val)
		v.idx, v.val = idx, val
	case v.dns != nil && other.dns == nil:
		v.addSparseIntoDense(other)
	case v.dns == nil && other.dns != nil:
		dns := s.grabDenseRaw(v.n)
		copy(dns, other.dns)
		for i, ix := range v.idx {
			dns[ix] = v.op.Combine(dns[ix], v.val[i])
		}
		s.putIdx(v.idx)
		s.putVal(v.val)
		v.idx, v.val, v.dns = nil, nil, dns
	default:
		for i, x := range other.dns {
			v.dns[i] = v.op.Combine(v.dns[i], x)
		}
	}
}

// DensifyInto is Densify drawing the dense array from s and releasing the
// sparse buffers back into it.
func (v *Vector) DensifyInto(s *Scratch) {
	if v.dns != nil {
		return
	}
	dns := s.grabDense(v.n, v.op.Neutral())
	for i, ix := range v.idx {
		dns[ix] = v.val[i]
	}
	s.putIdx(v.idx)
	s.putVal(v.val)
	v.dns = dns
	v.idx, v.val = nil, nil
}

// maybeDensifyInto is maybeDensify with scratch-backed dense storage.
func (v *Vector) maybeDensifyInto(s *Scratch) {
	if v.dns == nil && len(v.idx) > v.delta {
		v.DensifyInto(s)
	}
}

// CloneInto is Clone with the copy's header and buffers drawn from s. The
// clone is independent of v; releasing either does not affect the other.
func (v *Vector) CloneInto(s *Scratch) *Vector {
	c := s.grabVector(v.n, v.op, v.valueBytes, v.delta)
	if v.dns != nil {
		c.dns = s.grabDenseRaw(v.n)
		copy(c.dns, v.dns)
		return c
	}
	c.idx = append(s.grabIdx(len(v.idx)), v.idx...)
	c.val = append(s.grabVal(len(v.val)), v.val...)
	return c
}

// ExtractRangeInto is ExtractRange with the slice's buffers drawn from s.
func (v *Vector) ExtractRangeInto(lo, hi int, s *Scratch) *Vector {
	return v.extractRange(lo, hi, s)
}
