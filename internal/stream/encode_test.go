package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeSparse(t *testing.T) {
	v := NewSparse(1000, []int32{3, 500, 999}, []float64{1.5, -2.25, 1e-9}, OpSum)
	buf := v.Encode()
	if len(buf) != HeaderBytes+3*12 {
		t.Fatalf("encoded length = %d, want %d", len(buf), HeaderBytes+3*12)
	}
	got, err := Decode(buf, 1000, OpSum)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatal("round trip changed the vector")
	}
}

func TestEncodeDecodeDense(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	v := NewDense(vals, OpSum)
	got, err := Decode(v.Encode(), 64, OpSum)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsDense() || !got.Equal(v) {
		t.Fatal("dense round trip failed")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad flag":     {9, 0, 0, 0, 0},
		"short sparse": {flagSparse, 2, 0, 0, 0, 1},
		"short dense":  {flagDense, 0, 0, 0, 0, 1, 2},
	}
	for name, buf := range cases {
		if _, err := Decode(buf, 8, OpSum); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeRejectsUnsortedIndices(t *testing.T) {
	a := NewSparse(100, []int32{5}, []float64{1}, OpSum)
	b := NewSparse(100, []int32{3}, []float64{1}, OpSum)
	buf := a.Encode()
	// Splice b's pair after a's to create out-of-order indices.
	buf = append(buf, b.Encode()[HeaderBytes:]...)
	buf[1] = 2 // nnz = 2
	if _, err := Decode(buf, 100, OpSum); err == nil {
		t.Fatal("expected error on unsorted indices")
	}
}

// TestEncodeDecodeIntoPooled: the scratch-aware codec must agree
// byte-for-byte with the allocating one, in both representations, and
// DecodeInto must return canonical vectors drawn from the pool.
func TestEncodeDecodeIntoPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sc := NewScratch()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(256)
		v := randVector(rng, n, rng.Float64(), OpSum)
		buf := v.EncodeInto(sc)
		plain := v.Encode()
		if string(buf) != string(plain) {
			t.Fatalf("trial %d: EncodeInto bytes differ from Encode", trial)
		}
		got, err := DecodeInto(buf, n, OpSum, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.IsDense() != v.IsDense() || !got.Equal(v) {
			t.Fatalf("trial %d: pooled round trip changed the vector", trial)
		}
		sc.PutBytes(buf)
		sc.Release(got)
	}
	if _, err := DecodeInto([]byte{flagSparse, 1, 0, 0, 0, 9, 9, 9, 9, 0, 0, 0, 0, 0, 0, 0, 0}, 5, OpSum, sc); err == nil {
		t.Fatal("corrupt index must still error through the pooled path")
	}
}

// TestEncodeDecodeIntoZeroAlloc is the satellite acceptance check: with a
// warm pool, a full encode → decode → release round trip performs zero
// steady-state allocations in either representation.
func TestEncodeDecodeIntoZeroAlloc(t *testing.T) {
	sparse := NewSparse(4096, []int32{1, 17, 400, 4000}, []float64{1, 2, 3, 4}, OpSum)
	dense := NewSparse(64, []int32{0, 1, 2}, []float64{1, 2, 3}, OpSum)
	dense.Densify()
	for name, v := range map[string]*Vector{"sparse": sparse, "dense": dense} {
		sc := NewScratch()
		roundTrip := func() {
			buf := v.EncodeInto(sc)
			got, err := DecodeInto(buf, v.Dim(), v.Op(), sc)
			if err != nil {
				t.Fatal(err)
			}
			sc.PutBytes(buf)
			sc.Release(got)
		}
		for i := 0; i < 4; i++ { // warm the pool to steady state
			roundTrip()
		}
		if allocs := testing.AllocsPerRun(20, roundTrip); allocs != 0 {
			t.Fatalf("%s: pooled round trip allocates %.0f objects per op, want 0", name, allocs)
		}
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		v := randVector(rng, n, rng.Float64(), OpSum)
		got, err := Decode(v.Encode(), n, OpSum)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
