package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeSparse(t *testing.T) {
	v := NewSparse(1000, []int32{3, 500, 999}, []float64{1.5, -2.25, 1e-9}, OpSum)
	buf := v.Encode()
	if len(buf) != HeaderBytes+3*12 {
		t.Fatalf("encoded length = %d, want %d", len(buf), HeaderBytes+3*12)
	}
	got, err := Decode(buf, 1000, OpSum)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatal("round trip changed the vector")
	}
}

func TestEncodeDecodeDense(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	v := NewDense(vals, OpSum)
	got, err := Decode(v.Encode(), 64, OpSum)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsDense() || !got.Equal(v) {
		t.Fatal("dense round trip failed")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad flag":     {9, 0, 0, 0, 0},
		"short sparse": {flagSparse, 2, 0, 0, 0, 1},
		"short dense":  {flagDense, 0, 0, 0, 0, 1, 2},
	}
	for name, buf := range cases {
		if _, err := Decode(buf, 8, OpSum); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeRejectsUnsortedIndices(t *testing.T) {
	a := NewSparse(100, []int32{5}, []float64{1}, OpSum)
	b := NewSparse(100, []int32{3}, []float64{1}, OpSum)
	buf := a.Encode()
	// Splice b's pair after a's to create out-of-order indices.
	buf = append(buf, b.Encode()[HeaderBytes:]...)
	buf[1] = 2 // nnz = 2
	if _, err := Decode(buf, 100, OpSum); err == nil {
		t.Fatal("expected error on unsorted indices")
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		v := randVector(rng, n, rng.Float64(), OpSum)
		got, err := Decode(v.Encode(), n, OpSum)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
