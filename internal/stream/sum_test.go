package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randVector builds a random vector with the given density; half the time
// it is stored dense to exercise representation-mixing paths.
func randVector(rng *rand.Rand, n int, density float64, op Op) *Vector {
	dense := make([]float64, n)
	neutral := op.Neutral()
	for i := range dense {
		if rng.Float64() < density {
			dense[i] = math.Round(rng.NormFloat64()*8) / 4 // dyadic: exact float sums
		} else {
			dense[i] = neutral
		}
	}
	v := FromDense(dense, op)
	if rng.Intn(2) == 0 {
		v.Densify()
	}
	return v
}

func addRef(op Op, a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = op.Combine(a[i], b[i])
	}
	return out
}

func TestAddMatchesDenseReferenceAllRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, op := range []Op{OpSum, OpMax, OpMin} {
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(300)
			a := randVector(rng, n, rng.Float64(), op)
			b := randVector(rng, n, rng.Float64(), op)
			want := addRef(op, a.ToDense(), b.ToDense())
			a.Add(b)
			got := a.ToDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op=%s trial=%d coord=%d: got %g want %g", op, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAddCancellationDropsEntry(t *testing.T) {
	a := NewSparse(10, []int32{3, 5}, []float64{2, 1}, OpSum)
	b := NewSparse(10, []int32{3}, []float64{-2}, OpSum)
	a.Add(b)
	if a.NNZ() != 1 {
		t.Fatalf("NNZ after cancellation = %d, want 1", a.NNZ())
	}
	if a.Get(3) != 0 {
		t.Fatalf("cancelled coordinate = %g, want 0", a.Get(3))
	}
}

func TestAddSwitchesToDenseAtThreshold(t *testing.T) {
	n := 30 // δ = 20
	a := Zero(n, OpSum)
	b := Zero(n, OpSum)
	ai := make([]int32, 0)
	bi := make([]int32, 0)
	for i := 0; i < 12; i++ {
		ai = append(ai, int32(i))
		bi = append(bi, int32(n-1-i))
	}
	ones := make([]float64, 12)
	for i := range ones {
		ones[i] = 1
	}
	a = NewSparse(n, ai, ones, OpSum)
	b = NewSparse(n, bi, ones, OpSum)
	if a.IsDense() || b.IsDense() {
		t.Fatal("inputs should be sparse")
	}
	a.Add(b) // bound 12+12=24 > δ=20 → dense even though union is 24 ≤ n
	if !a.IsDense() {
		t.Fatal("Add must switch to dense when |H1|+|H2| > δ")
	}
	if a.NNZ() != 24 {
		t.Fatalf("NNZ = %d, want 24", a.NNZ())
	}
}

func TestAddStaysSparseBelowThreshold(t *testing.T) {
	n := 300
	a := NewSparse(n, []int32{1, 5}, []float64{1, 1}, OpSum)
	b := NewSparse(n, []int32{2, 5}, []float64{1, 1}, OpSum)
	a.Add(b)
	if a.IsDense() {
		t.Fatal("small merge should remain sparse")
	}
	if a.NNZ() != 3 || a.Get(5) != 2 {
		t.Fatalf("merge wrong: nnz=%d Get(5)=%g", a.NNZ(), a.Get(5))
	}
}

func TestAddHashMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(200)
		a := randVector(rng, n, 0.1, OpSum)
		b := randVector(rng, n, 0.1, OpSum)
		a.Sparsify()
		b.Sparsify()
		a2 := a.Clone()
		a.Add(b)
		a2.AddHash(b)
		if !a.Equal(a2) {
			t.Fatalf("trial %d: AddHash diverges from Add", trial)
		}
	}
}

func TestConcatDisjointOrderedRanges(t *testing.T) {
	a := NewSparse(100, []int32{1, 3}, []float64{1, 3}, OpSum)
	b := NewSparse(100, []int32{50, 70}, []float64{50, 70}, OpSum)
	a.Concat(b)
	if a.NNZ() != 4 || a.Get(70) != 70 {
		t.Fatalf("concat wrong: %v", a)
	}
	// Reverse order concatenation.
	c := NewSparse(100, []int32{80}, []float64{80}, OpSum)
	d := NewSparse(100, []int32{2}, []float64{2}, OpSum)
	c.Concat(d)
	if c.NNZ() != 2 || c.Get(2) != 2 || c.Get(80) != 80 {
		t.Fatalf("reverse concat wrong: %v", c)
	}
}

func TestConcatInterleavedDisjoint(t *testing.T) {
	a := NewSparse(100, []int32{1, 50}, []float64{1, 50}, OpSum)
	b := NewSparse(100, []int32{25, 75}, []float64{25, 75}, OpSum)
	a.Concat(b)
	if a.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", a.NNZ())
	}
}

func TestConcatPanicsOnOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping Concat")
		}
	}()
	a := NewSparse(100, []int32{1, 50}, []float64{1, 50}, OpSum)
	b := NewSparse(100, []int32{50}, []float64{5}, OpSum)
	a.Concat(b)
}

// Regression: the densify path of Concat (taken when |H1|+|H2| > δ) used
// to fold overlapping entries silently instead of honoring the documented
// overlap panic.
func TestConcatPanicsOnOverlapViaDensifyPath(t *testing.T) {
	n := 30 // δ = 20
	mk := func(start, count int, extra ...int32) *Vector {
		var idx []int32
		var val []float64
		for i := start; i < start+count; i++ {
			idx = append(idx, int32(i))
			val = append(val, 1)
		}
		for _, e := range extra {
			idx = append(idx, e)
			val = append(val, 1)
		}
		return NewSparse(n, idx, val, OpSum)
	}
	a := mk(0, 12)
	b := mk(15, 11, 5) // 12+12 > δ → densify path; index 5 overlaps a
	defer func() {
		if recover() == nil {
			t.Fatal("expected overlap panic on the Concat densify path")
		}
	}()
	a.Concat(b)
}

// The densify path must still succeed (and stay correct) for genuinely
// disjoint inputs whose combined size exceeds δ.
func TestConcatDensifyPathDisjointSucceeds(t *testing.T) {
	n := 30 // δ = 20
	var ai, bi []int32
	var av, bv []float64
	for i := 0; i < 12; i++ {
		ai = append(ai, int32(i))
		av = append(av, float64(i+1))
		bi = append(bi, int32(i+15))
		bv = append(bv, float64(i+100))
	}
	a := NewSparse(n, ai, av, OpSum)
	b := NewSparse(n, bi, bv, OpSum)
	a.Concat(b)
	if !a.IsDense() {
		t.Fatal("combined size 24 > δ=20 must densify")
	}
	if a.NNZ() != 24 || a.Get(0) != 1 || a.Get(15) != 100 {
		t.Fatalf("densify-path concat wrong: %v", a)
	}
}

// Regression: ExtractRange on a dense input used to return a sparse vector
// with more than δ entries — a non-canonical representation that under-
// reports wire bytes and breaks the δ invariant downstream.
func TestExtractRangeDenseInputStaysCanonical(t *testing.T) {
	n := 30 // δ = 20
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	v := NewDense(vals, OpSum)
	out := v.ExtractRange(0, 25) // 25 non-neutral coords > δ
	if !out.IsDense() {
		t.Fatalf("range with %d > δ=%d entries must come back dense", out.NNZ(), out.Delta())
	}
	for i := 0; i < 25; i++ {
		if out.Get(i) != float64(i+1) {
			t.Fatalf("coord %d = %g, want %g", i, out.Get(i), float64(i+1))
		}
	}
	for i := 25; i < n; i++ {
		if out.Get(i) != 0 {
			t.Fatalf("coord %d outside range must be 0, got %g", i, out.Get(i))
		}
	}
	// Below δ the sparse representation is kept.
	small := v.ExtractRange(0, 5)
	if small.IsDense() || small.NNZ() != 5 {
		t.Fatalf("small range must stay sparse: %v", small)
	}
}

func TestExtractRange(t *testing.T) {
	v := NewSparse(100, []int32{5, 25, 50, 75}, []float64{5, 25, 50, 75}, OpSum)
	part := v.ExtractRange(25, 75)
	if part.NNZ() != 2 || part.Get(25) != 25 || part.Get(50) != 50 {
		t.Fatalf("ExtractRange wrong: %v", part)
	}
	if part.Get(75) != 0 {
		t.Fatal("ExtractRange must exclude hi")
	}
	v.Densify()
	part2 := v.ExtractRange(25, 75)
	if !part.Equal(part2) {
		t.Fatal("dense and sparse ExtractRange disagree")
	}
}

func TestExtractRangePartitionCoversVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randVector(rng, 257, 0.2, OpSum)
	parts := 8
	sum := Zero(257, OpSum)
	for p := 0; p < parts; p++ {
		lo := p * 257 / parts
		hi := (p + 1) * 257 / parts
		sum.Concat(v.ExtractRange(lo, hi))
	}
	if !sum.Equal(v) {
		t.Fatal("partition concat does not recover the vector")
	}
}

func TestScale(t *testing.T) {
	v := NewSparse(10, []int32{1, 2}, []float64{2, 4}, OpSum)
	v.Scale(0.5)
	if v.Get(1) != 1 || v.Get(2) != 2 {
		t.Fatal("sparse Scale wrong")
	}
	v.Densify()
	v.Scale(2)
	if v.Get(1) != 2 || v.Get(2) != 4 {
		t.Fatal("dense Scale wrong")
	}
}

// Property: Add is commutative for OpSum on dyadic rationals.
func TestQuickAddCommutative(t *testing.T) {
	type input struct {
		Seed int64
	}
	f := func(in input) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		n := 1 + rng.Intn(128)
		a := randVector(rng, n, 0.3, OpSum)
		b := randVector(rng, n, 0.3, OpSum)
		x := a.Clone()
		x.Add(b)
		y := b.Clone()
		y.Add(a)
		return x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is associative for OpSum on dyadic rationals (exact in
// binary floating point, so representation switching cannot change results).
func TestQuickAddAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		a := randVector(rng, n, 0.3, OpSum)
		b := randVector(rng, n, 0.3, OpSum)
		c := randVector(rng, n, 0.3, OpSum)
		x := a.Clone()
		x.Add(b)
		x.Add(c)
		bc := b.Clone()
		bc.Add(c)
		y := a.Clone()
		y.Add(bc)
		return x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding the zero vector is the identity.
func TestQuickAddIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		a := randVector(rng, n, 0.3, OpSum)
		before := a.Clone()
		a.Add(Zero(n, OpSum))
		return a.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddSparseSparseMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	a := randSparseExact(rng, n, 1000)
	c := randSparseExact(rng, n, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := a.Clone()
		x.Add(c)
	}
}

func BenchmarkAddHash(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	a := randSparseExact(rng, n, 1000)
	c := randSparseExact(rng, n, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := a.Clone()
		x.AddHash(c)
	}
}

func randSparseExact(rng *rand.Rand, n, k int) *Vector {
	seen := make(map[int32]bool, k)
	idx := make([]int32, 0, k)
	val := make([]float64, 0, k)
	for len(idx) < k {
		ix := int32(rng.Intn(n))
		if seen[ix] {
			continue
		}
		seen[ix] = true
		idx = append(idx, ix)
		val = append(val, rng.NormFloat64())
	}
	return NewSparse(n, idx, val, OpSum)
}
