package stream

import (
	"math/rand"
	"testing"
)

func TestScratchReleaseAndReuse(t *testing.T) {
	s := NewScratch()
	v := NewSparse(100, []int32{1, 2, 3}, []float64{1, 2, 3}, OpSum)
	idxBuf, valBuf := v.idx, v.val
	s.Release(v)
	if v.idx != nil || v.val != nil || v.dns != nil {
		t.Fatal("Release must void the vector")
	}
	if s.Buffers() != 3 { // idx + val + the recycled header
		t.Fatalf("pool holds %d buffers, want 3", s.Buffers())
	}
	// The next grab of a fitting size must reuse the released storage.
	got := s.grabIdx(3)
	if cap(got) != cap(idxBuf) || &got[:1][0] != &idxBuf[:1][0] {
		t.Fatal("grabIdx did not reuse the released buffer")
	}
	gotV := s.grabVal(3)
	if &gotV[:1][0] != &valBuf[:1][0] {
		t.Fatal("grabVal did not reuse the released buffer")
	}
}

func TestScratchNilSafety(t *testing.T) {
	var s *Scratch
	if b := s.grabIdx(4); cap(b) < 4 {
		t.Fatal("nil scratch grabIdx must allocate")
	}
	if b := s.grabDense(8, -1); len(b) != 8 || b[0] != -1 {
		t.Fatal("nil scratch grabDense must allocate and fill")
	}
	s.Release(NewSparse(10, []int32{1}, []float64{1}, OpSum)) // must not panic
	s.Release(nil)
	if s.Buffers() != 0 {
		t.Fatal("nil scratch has no buffers")
	}
}

func TestScratchGrabDenseClearsStaleData(t *testing.T) {
	s := NewScratch()
	d := NewDense([]float64{5, 6, 7, 8}, OpSum)
	s.Release(d)
	b := s.grabDense(4, 0)
	for i, x := range b {
		if x != 0 {
			t.Fatalf("recycled dense buffer not cleared at %d: %g", i, x)
		}
	}
	d2 := NewDense([]float64{5, 6, 7}, OpMax)
	s.Release(d2)
	b2 := s.grabDense(3, -1)
	for _, x := range b2 {
		if x != -1 {
			t.Fatal("recycled dense buffer not filled with neutral")
		}
	}
}

func TestScratchPoolBounded(t *testing.T) {
	s := NewScratch()
	for i := 0; i < 4*scratchPoolCap; i++ {
		s.Release(NewSparse(10, []int32{1}, []float64{1}, OpSum))
	}
	if s.Buffers() > 3*scratchPoolCap {
		t.Fatalf("pool grew unboundedly: %d buffers", s.Buffers())
	}
}

// TestAddIntoSteadyStateAllocs is the allocation-regression guard for the
// in-place reduction step: once the pool is warm, AddInto must not
// allocate at all for sparse merges below δ.
func TestAddIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 16
	a := randSparseExact(rng, n, 500)
	b := randSparseExact(rng, n, 500)
	s := NewScratch()
	// Warm the pool: two generations of merge buffers.
	for i := 0; i < 4; i++ {
		c := a.CloneInto(s)
		c.AddInto(b, s)
		s.Release(c)
	}
	allocs := testing.AllocsPerRun(50, func() {
		c := a.CloneInto(s)
		c.AddInto(b, s)
		s.Release(c)
	})
	// One header allocation for the clone's Vector struct is allowed; the
	// idx/val buffers must come from the pool.
	if allocs > 1 {
		t.Fatalf("steady-state CloneInto+AddInto allocates %.1f objects/op, want ≤ 1", allocs)
	}
}

// TestAddAllSteadyStateAllocs: the k-way merge with a warm scratch stays
// allocation-free apart from the cursor slice.
func TestAddAllSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 16
	const P = 16
	others := make([]*Vector, P-1)
	for i := range others {
		others[i] = randSparseExact(rng, n, 300)
	}
	base := randSparseExact(rng, n, 300)
	s := NewScratch()
	for i := 0; i < 4; i++ {
		acc := base.CloneInto(s)
		acc.AddAll(others, s)
		s.Release(acc)
	}
	allocs := testing.AllocsPerRun(30, func() {
		acc := base.CloneInto(s)
		acc.AddAll(others, s)
		s.Release(acc)
	})
	// Vector header + cursor slice; everything else must be pooled.
	if allocs > 2 {
		t.Fatalf("steady-state AddAll allocates %.1f objects/op, want ≤ 2", allocs)
	}
}

// TestChainedAddAllocsBaseline documents what the k-way/scratch path is
// being compared against: the chained two-way merge allocates fresh
// buffers for every Add.
func TestChainedAddAllocsBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 16
	const P = 16
	others := make([]*Vector, P-1)
	for i := range others {
		others[i] = randSparseExact(rng, n, 300)
	}
	base := randSparseExact(rng, n, 300)
	chained := testing.AllocsPerRun(10, func() {
		acc := base.Clone()
		for _, o := range others {
			acc.Add(o)
		}
	})
	s := NewScratch()
	for i := 0; i < 4; i++ {
		acc := base.CloneInto(s)
		acc.AddAll(others, s)
		s.Release(acc)
	}
	kway := testing.AllocsPerRun(10, func() {
		acc := base.CloneInto(s)
		acc.AddAll(others, s)
		s.Release(acc)
	})
	if kway > chained/2 {
		t.Fatalf("k-way+scratch allocates %.1f/op vs chained %.1f/op — want ≥ 50%% reduction", kway, chained)
	}
}
