package stream

// Scratch is a pool of reusable vector buffers for the reduction hot path.
// The chained two-way merges of an allreduce allocate fresh idx/val slices
// on every Add (BenchmarkAblationMerge); a Scratch lets the in-place
// variants (AddInto, AddAll, ExtractRangeInto, CloneInto, DensifyInto)
// draw their output buffers from a free list and return superseded buffers
// to it, so steady-state reductions perform near-zero allocations.
//
// Ownership discipline:
//
//   - A Scratch belongs to ONE goroutine (one rank). It must never be
//     shared across ranks or across concurrently running collectives
//     (e.g. overlapping nonblocking operations) — it performs no locking.
//   - Release(v) hands v's backing buffers to the pool and voids v. Only
//     release vectors this goroutine exclusively owns (typically vectors
//     received from a peer and already merged, or local temporaries);
//     never release a vector that was returned to a caller or whose
//     Pairs() slices may still be referenced elsewhere.
//   - Buffers may migrate between ranks: a vector built from rank A's
//     scratch and sent to rank B is owned by B on receipt and may be
//     released into B's scratch. Collectives are symmetric, so pools reach
//     a steady state where sends drain and receives replenish them.
//
// The zero value is ready to use; all methods are nil-safe (a nil *Scratch
// degrades to plain allocation, so every scratch-aware code path can take
// an optional pool).
type Scratch struct {
	idx [][]int32
	val [][]float64
	dns [][]float64
	hdr []*Vector // voided Vector headers, recycled by grabVector
	bts [][]byte  // wire-codec buffers, recycled by EncodeInto/PutBytes
}

// scratchPoolCap bounds each free list so a pathological release pattern
// cannot retain unbounded memory; excess buffers are dropped to the GC.
const scratchPoolCap = 64

// NewScratch returns an empty buffer pool.
func NewScratch() *Scratch { return &Scratch{} }

// Buffers reports how many buffers the pool currently holds, across all
// free lists. Intended for tests and diagnostics.
func (s *Scratch) Buffers() int {
	if s == nil {
		return 0
	}
	return len(s.idx) + len(s.val) + len(s.dns) + len(s.hdr) + len(s.bts)
}

// Release reclaims v's backing buffers — and the *Vector header itself —
// into the pool and voids v (it must not be used again; a later grab may
// hand the same header out reinitialized). Safe to call with a nil vector
// or on a nil pool (the storage is simply dropped).
func (s *Scratch) Release(v *Vector) {
	if v == nil {
		return
	}
	if s != nil {
		if v.idx != nil && len(s.idx) < scratchPoolCap {
			s.idx = append(s.idx, v.idx)
		}
		if v.val != nil && len(s.val) < scratchPoolCap {
			s.val = append(s.val, v.val)
		}
		if v.dns != nil && len(s.dns) < scratchPoolCap {
			s.dns = append(s.dns, v.dns)
		}
	}
	v.idx, v.val, v.dns = nil, nil, nil
	if s != nil && len(s.hdr) < scratchPoolCap {
		s.hdr = append(s.hdr, v)
	}
}

// grabVector returns an empty sparse vector header with the given
// metadata, recycling a released header when one is available.
func (s *Scratch) grabVector(n int, op Op, valueBytes, delta int) *Vector {
	if s != nil && len(s.hdr) > 0 {
		v := s.hdr[len(s.hdr)-1]
		s.hdr = s.hdr[:len(s.hdr)-1]
		*v = Vector{n: n, op: op, valueBytes: valueBytes, delta: delta}
		return v
	}
	return &Vector{n: n, op: op, valueBytes: valueBytes, delta: delta}
}

// grabIdx returns a zero-length index buffer with capacity ≥ c, reusing a
// pooled buffer when one fits.
func (s *Scratch) grabIdx(c int) []int32 {
	if s != nil {
		for i := len(s.idx) - 1; i >= 0; i-- {
			if cap(s.idx[i]) >= c {
				b := s.idx[i]
				s.idx[i] = s.idx[len(s.idx)-1]
				s.idx = s.idx[:len(s.idx)-1]
				return b[:0]
			}
		}
	}
	return make([]int32, 0, c)
}

// grabVal returns a zero-length value buffer with capacity ≥ c.
func (s *Scratch) grabVal(c int) []float64 {
	if s != nil {
		for i := len(s.val) - 1; i >= 0; i-- {
			if cap(s.val[i]) >= c {
				b := s.val[i]
				s.val[i] = s.val[len(s.val)-1]
				s.val = s.val[:len(s.val)-1]
				return b[:0]
			}
		}
	}
	return make([]float64, 0, c)
}

// GrabDense returns a length-n dense float64 buffer filled with the given
// neutral element, reusing pooled storage when possible. For callers
// assembling raw dense blocks (e.g. the DSAR densify step); return the
// buffer with PutDense when done.
func (s *Scratch) GrabDense(n int, neutral float64) []float64 {
	return s.grabDense(n, neutral)
}

// PutDense returns a raw dense buffer obtained from GrabDense (or
// otherwise exclusively owned) to the pool.
func (s *Scratch) PutDense(b []float64) {
	s.putDense(b)
}

// grabDense returns a length-n dense buffer filled with the neutral
// element. Unlike make([]float64, n), recycled buffers hold stale data, so
// the fill is unconditional.
func (s *Scratch) grabDense(n int, neutral float64) []float64 {
	b, fresh := s.grabDenseBuf(n)
	if fresh && neutral == 0 {
		return b
	}
	for i := range b {
		b[i] = neutral
	}
	return b
}

// grabDenseRaw returns a length-n dense buffer with unspecified contents;
// the caller must overwrite every element.
func (s *Scratch) grabDenseRaw(n int) []float64 {
	b, _ := s.grabDenseBuf(n)
	return b
}

// grabDenseBuf returns a length-n buffer and whether it is freshly
// allocated (and therefore zeroed).
func (s *Scratch) grabDenseBuf(n int) ([]float64, bool) {
	if s != nil {
		for i := len(s.dns) - 1; i >= 0; i-- {
			if cap(s.dns[i]) >= n {
				b := s.dns[i][:n]
				s.dns[i] = s.dns[len(s.dns)-1]
				s.dns = s.dns[:len(s.dns)-1]
				return b, false
			}
		}
	}
	return make([]float64, n), true
}

// grabBytes returns a length-n byte buffer with unspecified contents,
// reusing a pooled wire buffer when one fits; the caller must overwrite
// every byte.
func (s *Scratch) grabBytes(n int) []byte {
	if s != nil {
		for i := len(s.bts) - 1; i >= 0; i-- {
			if cap(s.bts[i]) >= n {
				b := s.bts[i][:n]
				s.bts[i] = s.bts[len(s.bts)-1]
				s.bts = s.bts[:len(s.bts)-1]
				return b
			}
		}
	}
	return make([]byte, n)
}

// PutBytes returns a wire buffer obtained from Vector.EncodeInto (or
// otherwise exclusively owned) to the pool — the byte-slice counterpart of
// PutDense. Safe on a nil pool or buffer (the storage is simply dropped).
func (s *Scratch) PutBytes(b []byte) {
	if s != nil && b != nil && len(s.bts) < scratchPoolCap {
		s.bts = append(s.bts, b)
	}
}

// putIdx returns a loose index buffer to the pool.
func (s *Scratch) putIdx(b []int32) {
	if s != nil && b != nil && len(s.idx) < scratchPoolCap {
		s.idx = append(s.idx, b)
	}
}

// putVal returns a loose value buffer to the pool.
func (s *Scratch) putVal(b []float64) {
	if s != nil && b != nil && len(s.val) < scratchPoolCap {
		s.val = append(s.val, b)
	}
}

// putDense returns a loose dense buffer to the pool.
func (s *Scratch) putDense(b []float64) {
	if s != nil && b != nil && len(s.dns) < scratchPoolCap {
		s.dns = append(s.dns, b)
	}
}
