package stream

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWireRoundTripFieldExact: AppendWire→DecodeWire must rebuild the
// vector field-exact — representation, op, δ, value-byte accounting — for
// sparse, dense, and non-default-δ vectors. reflect.DeepEqual inspects the
// unexported fields directly.
func TestWireRoundTripFieldExact(t *testing.T) {
	cases := []*Vector{
		NewSparse(100, []int32{1, 5, 99}, []float64{0.5, -1.25, 3}, OpSum),
		NewSparse(64, []int32{0}, []float64{-7}, OpMax),
		NewSparse(1000, nil, nil, OpMin),
		NewDense([]float64{1, 2, 3, 0, -5}, OpSum),
		NewDense(make([]float64, 17), OpProd),
	}
	// A vector with a non-default δ (SetDelta may densify; either way the
	// round trip must preserve the final state exactly).
	custom := NewSparse(50, []int32{2, 3, 4, 5, 6, 7}, []float64{1, 1, 1, 1, 1, 1}, OpSum)
	custom.SetDelta(3)
	cases = append(cases, custom)
	// Value-byte 4 accounting.
	vb4 := NewSparse(200, []int32{10, 20}, []float64{1.5, 2.5}, OpSum)
	vb4.SetValueBytes(4)
	cases = append(cases, vb4)

	for i, v := range cases {
		buf := v.AppendWire(nil)
		if len(buf) != v.WireSize() {
			t.Fatalf("case %d: WireSize %d, encoded %d", i, v.WireSize(), len(buf))
		}
		got, n, err := DecodeWire(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(buf))
		}
		if !reflect.DeepEqual(v, got) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, v)
		}
	}
}

// TestWireRejectsCorrupt: truncated buffers, bad ops, bad value-byte
// settings, and non-ascending indices must error.
func TestWireRejectsCorrupt(t *testing.T) {
	v := NewSparse(100, []int32{1, 5}, []float64{1, 2}, OpSum)
	buf := v.AppendWire(nil)
	if _, _, err := DecodeWire(buf[:10]); err == nil {
		t.Fatal("short header decoded")
	}
	if _, _, err := DecodeWire(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated body decoded")
	}
	bad := append([]byte(nil), buf...)
	bad[5] = 99 // op
	if _, _, err := DecodeWire(bad); err == nil {
		t.Fatal("bad op decoded")
	}
	bad = append([]byte(nil), buf...)
	bad[6] = 3 // value bytes
	if _, _, err := DecodeWire(bad); err == nil {
		t.Fatal("bad value bytes decoded")
	}
	bad = append([]byte(nil), buf...)
	// Swap the two indices so they descend.
	copy(bad[selfWireHeaderBytes:], []byte{5, 0, 0, 0})
	copy(bad[selfWireHeaderBytes+12:], []byte{1, 0, 0, 0})
	if _, _, err := DecodeWire(bad); err == nil {
		t.Fatal("descending indices decoded")
	}
}

// TestMergeKParallelMatchesSerial: MergeKParallel must be bit-identical to
// MergeK for any worker count, across sparse results, δ-spilling results,
// and every operation — including inputs engineered to make coordinates
// cancel to the neutral element mid-fold.
func TestMergeKParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name    string
		n, k, P int
		op      Op
		delta   int // 0 = default
	}{
		{"sparse-stays", 1 << 16, 1500, 8, OpSum, 0},
		{"spills-dense", 1 << 14, 3000, 8, OpSum, 0},
		{"max", 1 << 15, 2000, 6, OpMax, 0},
		{"min", 1 << 15, 2000, 6, OpMin, 0},
		{"tiny-delta", 1 << 14, 1200, 5, OpSum, 100},
		{"two-streams", 1 << 15, 4000, 2, OpSum, 0},
	} {
		vs := make([]*Vector, tc.P)
		for r := range vs {
			idx := make([]int32, 0, tc.k)
			val := make([]float64, 0, tc.k)
			seen := map[int32]bool{}
			for len(idx) < tc.k {
				ix := int32(rng.Intn(tc.n))
				if seen[ix] {
					continue
				}
				seen[ix] = true
				idx = append(idx, ix)
			}
			sortInt32s(idx)
			for range idx {
				// ±powers of two: exact addition, and opposite signs force
				// mid-fold cancellations through the neutral element.
				v := float64(int(1) << rng.Intn(8))
				if rng.Intn(2) == 0 {
					v = -v
				}
				val = append(val, v)
			}
			vs[r] = NewSparse(tc.n, idx, val, tc.op)
			if tc.delta > 0 {
				vs[r].SetDelta(tc.delta)
			}
		}
		want := MergeK(vs, nil)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := MergeKParallel(vs, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s workers=%d: parallel merge differs from serial", tc.name, workers)
			}
		}
	}
}

// sortInt32s sorts ascending (insertion sort is fine at test sizes).
func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestTakeFrom: the splice step moves storage and settings and voids the
// source.
func TestTakeFrom(t *testing.T) {
	dst := NewSparse(100, []int32{1}, []float64{1}, OpSum)
	src := NewSparse(100, []int32{2, 3}, []float64{5, 6}, OpSum)
	src.SetDelta(7)
	dst.TakeFrom(src, nil)
	idx, val := dst.Pairs()
	if len(idx) != 2 || idx[0] != 2 || val[1] != 6 {
		t.Fatalf("TakeFrom result %v/%v", idx, val)
	}
	if dst.Delta() != 7 {
		t.Fatalf("δ not adopted: %d", dst.Delta())
	}
	if src.NNZ() != 0 {
		t.Fatalf("source not voided")
	}
}
