package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeltaRoundTrip(t *testing.T) {
	v := NewSparse(1<<20, []int32{0, 1, 1000, 1048575}, []float64{1, -2, 3.5, 4}, OpSum)
	got, err := DecodeDelta(v.EncodeDelta(), 1<<20, OpSum)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatal("delta round trip changed the vector")
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(1<<16)
		v := randVector(rng, n, rng.Float64()*0.1, OpSum)
		v.Sparsify()
		got, err := DecodeDelta(v.EncodeDelta(), n, OpSum)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWireBytesDeltaMatchesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		v := randVector(rng, 1+rng.Intn(1<<18), 0.01, OpSum)
		v.Sparsify()
		if got, want := v.WireBytesDelta(), len(v.EncodeDelta()); got != want {
			t.Fatalf("WireBytesDelta = %d, encoded length = %d", got, want)
		}
	}
}

func TestDeltaCompressesClusteredIndices(t *testing.T) {
	// Adjacent indices: gaps of 1 take 1 byte vs 4 fixed → ~25% savings on
	// the index stream.
	n := 1 << 20
	k := 10000
	idx := make([]int32, k)
	val := make([]float64, k)
	for i := range idx {
		idx[i] = int32(i) // fully clustered
		val[i] = 1
	}
	v := NewSparse(n, idx, val, OpSum)
	fixed := v.WireBytes()
	delta := v.WireBytesDelta()
	// Fixed: 12 bytes/entry. Delta: 9 bytes/entry (1-byte gap + 8 value).
	if ratio := float64(fixed) / float64(delta); ratio < 1.3 {
		t.Fatalf("clustered compression ratio %.2f, want ≥1.3", ratio)
	}
}

func TestDeltaNearFixedForSpreadIndices(t *testing.T) {
	// Uniformly spread indices over 2^20 need ~3-byte varints: still a
	// saving over 4-byte fixed but bounded.
	rng := rand.New(rand.NewSource(4))
	v := randSparseExact(rng, 1<<20, 5000)
	fixed := v.WireBytes()
	delta := v.WireBytesDelta()
	if delta >= fixed {
		t.Fatalf("delta (%d) should not exceed fixed (%d) here", delta, fixed)
	}
	if float64(fixed)/float64(delta) > 1.5 {
		t.Fatalf("spread indices should not compress more than ~1.5x, got %.2f", float64(fixed)/float64(delta))
	}
}

func TestDecodeDeltaRejectsCorrupt(t *testing.T) {
	v := NewSparse(100, []int32{5, 10}, []float64{1, 2}, OpSum)
	buf := v.EncodeDelta()
	if _, err := DecodeDelta(buf[:len(buf)-3], 100, OpSum); err == nil {
		t.Fatal("expected error on truncated values")
	}
	if _, err := DecodeDelta([]byte{9, 0, 0, 0, 0}, 100, OpSum); err == nil {
		t.Fatal("expected error on wrong flag")
	}
	// Index beyond the universe.
	big := NewSparse(1000, []int32{999}, []float64{1}, OpSum)
	if _, err := DecodeDelta(big.EncodeDelta(), 10, OpSum); err == nil {
		t.Fatal("expected error on out-of-range index")
	}
}

func TestEncodeDeltaPanicsOnDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := NewDense([]float64{1, 2}, OpSum)
	v.EncodeDelta()
}

func BenchmarkEncodeDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randSparseExact(rng, 1<<20, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.EncodeDelta()
	}
}

func BenchmarkEncodeFixed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randSparseExact(rng, 1<<20, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Encode()
	}
}
