package stream

// SupportObserver receives a read-only view of a vector's support during
// Observe. It is the hook the runtime adaptation layer (internal/adapt)
// uses to sketch input shapes inline with the reduction hot path: the
// vector hands its backing storage to the observer without copying, so a
// sampling observer costs a few hundred nanoseconds per call.
//
// Observers must treat the slices as immutable and must not retain them
// past the call — they alias the vector's live storage, which scratch
// pools may recycle.
type SupportObserver interface {
	// ObserveSparse is called with the dimension and the sorted index
	// slice of a sparse vector (values are irrelevant to support shape).
	ObserveSparse(n int, idx []int32)
	// ObserveDense is called with the dimension, the dense array, and the
	// operation's neutral element when the vector is in the dense
	// representation; non-neutral entries are the support.
	ObserveDense(n int, dns []float64, neutral float64)
}

// Observe feeds the vector's support to o in its current representation.
// Strictly observe-only: the vector is not modified, no storage is
// allocated or copied, and the observer sees backing slices it must not
// mutate or retain. Calling Observe any number of times, at any point,
// never changes the result of subsequent merges — the invariant the
// adapt-layer fuzz tests enforce.
func (v *Vector) Observe(o SupportObserver) {
	if v.dns != nil {
		o.ObserveDense(v.n, v.dns, v.op.Neutral())
		return
	}
	o.ObserveSparse(v.n, v.idx)
}
