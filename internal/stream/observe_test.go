package stream

import "testing"

// recordingObserver captures what Observe hands out.
type recordingObserver struct {
	sparseN, denseN int
	idx             []int32
	dns             []float64
	neutral         float64
}

func (r *recordingObserver) ObserveSparse(n int, idx []int32) {
	r.sparseN, r.idx = n, idx
}

func (r *recordingObserver) ObserveDense(n int, dns []float64, neutral float64) {
	r.denseN, r.dns, r.neutral = n, dns, neutral
}

// TestObserveRepresentations: the observer sees the live backing storage
// of whichever representation the vector is in, with no copying and no
// mutation.
func TestObserveRepresentations(t *testing.T) {
	v := NewSparse(100, []int32{3, 7, 50}, []float64{1, 2, 3}, OpSum)
	var r recordingObserver
	v.Observe(&r)
	if r.sparseN != 100 || len(r.idx) != 3 || r.idx[2] != 50 {
		t.Fatalf("sparse observation wrong: n=%d idx=%v", r.sparseN, r.idx)
	}
	if r.denseN != 0 {
		t.Fatal("sparse vector must not be observed densely")
	}
	idx, _ := v.Pairs()
	if &r.idx[0] != &idx[0] {
		t.Fatal("sparse observation must alias the backing storage, not copy it")
	}

	v.Densify()
	var d recordingObserver
	v.Observe(&d)
	if d.denseN != 100 || len(d.dns) != 100 || d.dns[50] != 3 || d.neutral != 0 {
		t.Fatalf("dense observation wrong: n=%d len=%d", d.denseN, len(d.dns))
	}

	prod := NewSparse(10, []int32{1}, []float64{4}, OpProd)
	prod.Densify()
	var p recordingObserver
	prod.Observe(&p)
	if p.neutral != 1 {
		t.Fatalf("OpProd neutral = %g, want 1", p.neutral)
	}
}

// TestObserveEmpty: observing an empty vector feeds an empty index slice.
func TestObserveEmpty(t *testing.T) {
	var r recordingObserver
	Zero(5, OpSum).Observe(&r)
	if r.sparseN != 5 || len(r.idx) != 0 {
		t.Fatalf("empty observation wrong: n=%d idx=%v", r.sparseN, r.idx)
	}
}
