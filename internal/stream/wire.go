package stream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Self-describing wire form (little endian), used by the comm transport
// payload codec rather than by the collectives themselves:
//
//	byte 0        format flag: 0 = sparse, 1 = dense (same flags as Encode)
//	bytes 1..4    uint32 dimension N
//	byte 5        operation (Op)
//	byte 6        value-byte accounting (4 or 8)
//	bytes 7..10   uint32 δ threshold
//	bytes 11..14  uint32 nnz (sparse) or unused (dense)
//	sparse:       nnz × (uint32 index, float64 bits)
//	dense:        N × float64 bits
//
// Unlike Encode/Decode — whose header matches the paper's modeled wire
// format and therefore carries neither the dimension, the operation, nor
// the δ/value-byte settings (the collectives know all of them) — this form
// reconstructs the vector field-exact on another process. That exactness
// is what keeps results bit-identical across transports: a decoded vector
// must densify at exactly the same δ, charge exactly the same wire bytes,
// and carry exactly the same representation as the original.

// selfWireHeaderBytes is the fixed prefix size of the self-describing form.
const selfWireHeaderBytes = 15

// AppendWire appends the self-describing encoding of v to buf and returns
// the extended slice. DecodeWire reverses it exactly.
func (v *Vector) AppendWire(buf []byte) []byte {
	var hdr [selfWireHeaderBytes]byte
	if v.dns != nil {
		hdr[0] = flagDense
	} else {
		hdr[0] = flagSparse
	}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(v.n))
	hdr[5] = byte(v.op)
	hdr[6] = byte(v.valueBytes)
	binary.LittleEndian.PutUint32(hdr[7:], uint32(v.delta))
	binary.LittleEndian.PutUint32(hdr[11:], uint32(len(v.idx)))
	buf = append(buf, hdr[:]...)
	if v.dns != nil {
		for _, x := range v.dns {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
		return buf
	}
	for i, ix := range v.idx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ix))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.val[i]))
	}
	return buf
}

// WireSize returns the exact length AppendWire will append for v.
func (v *Vector) WireSize() int {
	if v.dns != nil {
		return selfWireHeaderBytes + 8*v.n
	}
	return selfWireHeaderBytes + 12*len(v.idx)
}

// DecodeWire decodes one AppendWire encoding from the front of buf and
// returns the reconstructed vector and the number of bytes consumed. The
// vector is rebuilt field-exact — representation, operation, δ, value-byte
// accounting — with freshly allocated storage, so the decoded copy behaves
// bit-identically to the original in every later reduction.
func DecodeWire(buf []byte) (*Vector, int, error) {
	if len(buf) < selfWireHeaderBytes {
		return nil, 0, errShortBuffer
	}
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	if n <= 0 {
		return nil, 0, fmt.Errorf("stream: wire dimension %d", n)
	}
	op := Op(buf[5])
	if op < OpSum || op > OpProd {
		return nil, 0, fmt.Errorf("stream: wire operation %d", buf[5])
	}
	vb := int(buf[6])
	if vb != 4 && vb != 8 {
		return nil, 0, fmt.Errorf("stream: wire value bytes %d", vb)
	}
	delta := int(binary.LittleEndian.Uint32(buf[7:]))
	v := &Vector{n: n, op: op, valueBytes: vb, delta: delta}
	switch buf[0] {
	case flagDense:
		size := selfWireHeaderBytes + 8*n
		if len(buf) < size {
			return nil, 0, errShortBuffer
		}
		v.dns = make([]float64, n)
		for i := range v.dns {
			v.dns[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[selfWireHeaderBytes+8*i:]))
		}
		return v, size, nil
	case flagSparse:
		nnz := int(binary.LittleEndian.Uint32(buf[11:]))
		size := selfWireHeaderBytes + 12*nnz
		if nnz < 0 || len(buf) < size {
			return nil, 0, errShortBuffer
		}
		v.idx = make([]int32, nnz)
		v.val = make([]float64, nnz)
		off := selfWireHeaderBytes
		var prev int32 = -1
		for i := 0; i < nnz; i++ {
			ix := int32(binary.LittleEndian.Uint32(buf[off:]))
			if ix <= prev || int(ix) >= n {
				return nil, 0, fmt.Errorf("stream: corrupt wire index %d at position %d", ix, i)
			}
			prev = ix
			v.idx[i] = ix
			v.val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
			off += 12
		}
		return v, size, nil
	default:
		return nil, 0, fmt.Errorf("stream: unknown wire flag %d", buf[0])
	}
}
