package stream

import "fmt"

// Add reduces other into v coordinate-wise under v's operation, mutating v
// and possibly switching it to the dense representation. This implements
// the "efficient summation" cases of §5.1:
//
//   - sparse + sparse: if the upper bound |H1|+|H2| on the union exceeds δ,
//     v is densified first (the paper avoids computing the exact union size
//     because that is as costly as the merge itself); otherwise a sorted
//     two-way merge produces the result in O(|H1|+|H2|).
//   - dense + sparse: the sparse side's pairs are folded into the dense
//     array in place.
//   - dense + dense: element-wise loop over the arrays, reusing v's storage.
func (v *Vector) Add(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("stream: dimension mismatch %d vs %d", v.n, other.n))
	}
	if v.op != other.op {
		panic("stream: operation mismatch")
	}
	switch {
	case v.dns == nil && other.dns == nil:
		if len(v.idx)+len(other.idx) > v.delta {
			v.Densify()
			v.addSparseIntoDense(other)
			return
		}
		v.mergeSparse(other)
	case v.dns != nil && other.dns == nil:
		v.addSparseIntoDense(other)
	case v.dns == nil && other.dns != nil:
		// Iterate over v's sparse pairs, setting positions in a copy of the
		// dense input; then adopt the dense result.
		dns := append([]float64(nil), other.dns...)
		for i, ix := range v.idx {
			dns[ix] = v.op.Combine(dns[ix], v.val[i])
		}
		v.dns = dns
		v.idx, v.val = nil, nil
	default:
		for i, x := range other.dns {
			v.dns[i] = v.op.Combine(v.dns[i], x)
		}
	}
}

func (v *Vector) addSparseIntoDense(other *Vector) {
	for i, ix := range other.idx {
		v.dns[ix] = v.op.Combine(v.dns[ix], other.val[i])
	}
}

// mergeSparse performs the sorted two-way merge of two sparse vectors.
func (v *Vector) mergeSparse(other *Vector) {
	bound := len(v.idx) + len(other.idx)
	v.idx, v.val = v.mergeSparseInto(other,
		make([]int32, 0, bound), make([]float64, 0, bound))
}

// mergeSparseInto appends the sorted two-way merge of v and other into the
// provided buffers and returns them (the scratch-pooled twin of
// mergeSparse; see AddInto).
func (v *Vector) mergeSparseInto(other *Vector, idx []int32, val []float64) ([]int32, []float64) {
	a, av := v.idx, v.val
	b, bv := other.idx, other.val
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			idx = append(idx, a[i])
			val = append(val, av[i])
			i++
		case a[i] > b[j]:
			idx = append(idx, b[j])
			val = append(val, bv[j])
			j++
		default:
			combined := v.op.Combine(av[i], bv[j])
			// Cancellation can re-create the neutral element; drop it to
			// keep the representation canonical.
			if combined != v.op.Neutral() {
				idx = append(idx, a[i])
				val = append(val, combined)
			}
			i++
			j++
		}
	}
	idx = append(idx, a[i:]...)
	val = append(val, av[i:]...)
	idx = append(idx, b[j:]...)
	val = append(val, bv[j:]...)
	return idx, val
}

// AddHash is an alternative reduction used only for the merge-strategy
// ablation (DESIGN.md §4.2): instead of a sorted merge it accumulates into
// a hash map and re-sorts. Semantically identical to Add for sparse+sparse
// inputs; falls back to Add otherwise.
func (v *Vector) AddHash(other *Vector) {
	if v.dns != nil || other.dns != nil {
		v.Add(other)
		return
	}
	if v.n != other.n || v.op != other.op {
		panic("stream: mismatched vectors")
	}
	m := make(map[int32]float64, len(v.idx)+len(other.idx))
	for i, ix := range v.idx {
		m[ix] = v.val[i]
	}
	for i, ix := range other.idx {
		if old, ok := m[ix]; ok {
			m[ix] = v.op.Combine(old, other.val[i])
		} else {
			m[ix] = other.val[i]
		}
	}
	neutral := v.op.Neutral()
	idx := make([]int32, 0, len(m))
	for ix, x := range m {
		if x != neutral {
			idx = append(idx, ix)
		}
	}
	sortInt32(idx)
	val := make([]float64, len(idx))
	for i, ix := range idx {
		val[i] = m[ix]
	}
	v.idx, v.val = idx, val
	v.maybeDensify()
}

func sortInt32(a []int32) {
	// Insertion sort for tiny inputs, pdq-style fallback via sort.Slice.
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	quickSortInt32(a)
}

func quickSortInt32(a []int32) {
	for len(a) > 32 {
		p := partitionInt32(a)
		if p < len(a)-p {
			quickSortInt32(a[:p])
			a = a[p+1:]
		} else {
			quickSortInt32(a[p+1:])
			a = a[:p]
		}
	}
	sortInt32(a)
}

func partitionInt32(a []int32) int {
	mid := len(a) / 2
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[len(a)-1] < a[0] {
		a[len(a)-1], a[0] = a[0], a[len(a)-1]
	}
	if a[len(a)-1] < a[mid] {
		a[len(a)-1], a[mid] = a[mid], a[len(a)-1]
	}
	pivot := a[mid]
	a[mid], a[len(a)-2] = a[len(a)-2], a[mid]
	i := 0
	for j := 0; j < len(a)-2; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[len(a)-2] = a[len(a)-2], a[i]
	return i
}

// Concat merges two vectors whose index sets are guaranteed disjoint (the
// partition-by-dimension case of §5.1, where the sum is a simple
// concatenation). Panics if an overlap is detected during the merge. Both
// inputs must be sparse.
func (v *Vector) Concat(other *Vector) {
	if v.dns != nil || other.dns != nil {
		panic("stream: Concat requires sparse inputs")
	}
	if v.n != other.n || v.op != other.op {
		panic("stream: mismatched vectors")
	}
	if len(v.idx)+len(other.idx) > v.delta {
		// Densify path. A freshly densified canonical vector holds the
		// neutral element exactly at its absent coordinates, so the overlap
		// accounting reduces to checking that every incoming (non-neutral)
		// entry lands on a neutral slot — the densify path must uphold the
		// documented overlap panic just like the merge path below.
		v.Densify()
		neutral := v.op.Neutral()
		for i, ix := range other.idx {
			if v.dns[ix] != neutral {
				panic("stream: Concat inputs overlap")
			}
			v.dns[ix] = v.op.Combine(v.dns[ix], other.val[i])
		}
		return
	}
	// Fast path: strictly ordered ranges concatenate without a merge.
	if len(v.idx) == 0 || len(other.idx) == 0 ||
		v.idx[len(v.idx)-1] < other.idx[0] {
		v.idx = append(v.idx, other.idx...)
		v.val = append(v.val, other.val...)
		return
	}
	if other.idx[len(other.idx)-1] < v.idx[0] {
		v.idx = append(append([]int32(nil), other.idx...), v.idx...)
		v.val = append(append([]float64(nil), other.val...), v.val...)
		return
	}
	// Interleaved but disjoint: merge, panicking on equality.
	before := len(v.idx) + len(other.idx)
	v.mergeSparse(other)
	if len(v.idx) != before {
		panic("stream: Concat inputs overlap")
	}
}

// ExtractRange returns a new vector over the same universe holding only
// the coordinates in [lo, hi). Indices stay global. Used by the split
// phase of the SSAR/DSAR split-allgather algorithms (§5.3.2). The result
// is canonical: when more than δ coordinates of a dense input fall in the
// range, it is returned in the dense representation rather than as an
// over-long sparse vector.
func (v *Vector) ExtractRange(lo, hi int) *Vector {
	return v.extractRange(lo, hi, nil)
}

func (v *Vector) extractRange(lo, hi int, s *Scratch) *Vector {
	if lo < 0 || hi > v.n || lo > hi {
		panic("stream: bad range")
	}
	out := s.grabVector(v.n, v.op, v.valueBytes, v.delta)
	if v.dns != nil {
		neutral := v.op.Neutral()
		// The range holds at most hi−lo entries, but anything past δ
		// densifies below, so δ+1 bounds the useful sparse capacity.
		bound := hi - lo
		if bound > v.delta+1 {
			bound = v.delta + 1
		}
		out.idx = s.grabIdx(bound)
		out.val = s.grabVal(bound)
		for i := lo; i < hi; i++ {
			if v.dns[i] != neutral {
				out.idx = append(out.idx, int32(i))
				out.val = append(out.val, v.dns[i])
			}
		}
		// Keep the representation canonical: a dense input can contribute
		// more than δ coordinates to the range.
		out.maybeDensifyInto(s)
		return out
	}
	loPos := searchInt32(v.idx, int32(lo))
	hiPos := searchInt32(v.idx, int32(hi))
	out.idx = append(s.grabIdx(hiPos-loPos), v.idx[loPos:hiPos]...)
	out.val = append(s.grabVal(hiPos-loPos), v.val[loPos:hiPos]...)
	return out
}

func searchInt32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Scale multiplies every present entry by s. Only meaningful for OpSum.
func (v *Vector) Scale(s float64) {
	if v.dns != nil {
		for i := range v.dns {
			v.dns[i] *= s
		}
		return
	}
	for i := range v.val {
		v.val[i] *= s
	}
}
