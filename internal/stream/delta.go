package stream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Delta-varint encoding: an alternative sparse wire format in the spirit
// of the run-length approaches the paper builds on (Hofmann & Rünger,
// §9). Sorted indices are stored as varint-encoded gaps instead of fixed
// 4-byte values, which compresses clustered index distributions (real
// gradients concentrate in hot layers) well below c = 4 bytes/index.
//
// Format (little endian):
//
//	byte 0       format flag: 2 = sparse-delta
//	bytes 1..4   uint32 nnz
//	then         nnz uvarint gaps (first gap = first index)
//	then         nnz float64 values
const flagSparseDelta byte = 2

// EncodeDelta serializes a sparse vector with delta-varint indices.
// Panics if the vector is dense (dense vectors gain nothing from gap
// encoding; use Encode).
func (v *Vector) EncodeDelta() []byte {
	if v.dns != nil {
		panic("stream: EncodeDelta on dense vector")
	}
	buf := make([]byte, 0, HeaderBytes+len(v.idx)*10)
	var hdr [HeaderBytes]byte
	hdr[0] = flagSparseDelta
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(v.idx)))
	buf = append(buf, hdr[:]...)
	prev := int32(0)
	var tmp [binary.MaxVarintLen32]byte
	for _, ix := range v.idx {
		n := binary.PutUvarint(tmp[:], uint64(ix-prev))
		buf = append(buf, tmp[:n]...)
		prev = ix
	}
	for _, x := range v.val {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		buf = append(buf, b[:]...)
	}
	return buf
}

// DecodeDelta deserializes the delta-varint format.
func DecodeDelta(buf []byte, n int, op Op) (*Vector, error) {
	if len(buf) < HeaderBytes || buf[0] != flagSparseDelta {
		return nil, fmt.Errorf("stream: not a sparse-delta payload")
	}
	nnz := int(binary.LittleEndian.Uint32(buf[1:]))
	v := Zero(n, op)
	v.idx = make([]int32, nnz)
	v.val = make([]float64, nnz)
	off := HeaderBytes
	prev := int32(0)
	for i := 0; i < nnz; i++ {
		gap, used := binary.Uvarint(buf[off:])
		if used <= 0 {
			return nil, fmt.Errorf("stream: corrupt varint at entry %d", i)
		}
		off += used
		ix := prev + int32(gap)
		if int(ix) >= n || (i > 0 && ix <= v.idx[i-1]) || ix < 0 {
			return nil, fmt.Errorf("stream: corrupt delta index %d at entry %d", ix, i)
		}
		v.idx[i] = ix
		prev = ix
	}
	if len(buf)-off != 8*nnz {
		return nil, fmt.Errorf("stream: value payload is %d bytes, want %d", len(buf)-off, 8*nnz)
	}
	for i := 0; i < nnz; i++ {
		v.val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8*i:]))
	}
	return v, nil
}

// WireBytesDelta returns the exact wire size of the delta-varint encoding
// without materializing it. For a sparse vector whose indices are
// clustered, this is substantially below WireBytes; for uniformly spread
// indices over a large universe it approaches it.
func (v *Vector) WireBytesDelta() int {
	if v.dns != nil {
		return v.WireBytes()
	}
	total := HeaderBytes + len(v.idx)*v.valueBytes
	prev := int32(0)
	for _, ix := range v.idx {
		total += uvarintLen(uint64(ix - prev))
		prev = ix
	}
	return total
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
