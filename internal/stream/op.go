// Package stream implements SparCML's "sparse streams" (paper §5.1): a
// vector representation that starts sparse (sorted index–value pairs) and
// automatically switches to a dense array once the number of non-zero
// entries crosses the efficiency threshold δ. Streams support coordinate-wise
// reduction under any associative operation with a neutral element, merge-
// based summation, disjoint concatenation, range extraction for
// partition-based collectives, and wire (de)serialization with exact byte
// accounting for the α–β cost model.
package stream

import "math"

// Op identifies a coordinate-wise associative reduction operation with a
// neutral element, as required by the paper ("arbitrary coordinate-wise
// associative reduction operations for which a neutral-element can be
// defined", §5.2).
type Op int

const (
	// OpSum is element-wise addition; neutral element 0.
	OpSum Op = iota
	// OpMax is element-wise maximum; neutral element -Inf.
	OpMax
	// OpMin is element-wise minimum; neutral element +Inf.
	OpMin
	// OpProd is element-wise product over the *present* entries; neutral
	// element 1. Note that unlike OpSum, absent coordinates are treated as
	// the neutral element 1, matching MPI's treatment of sparse reductions
	// that ignore neutral elements (Träff, 2010).
	OpProd
)

// Neutral returns the operation's neutral element: combining any value x
// with Neutral() yields x.
func (op Op) Neutral() float64 {
	switch op {
	case OpSum:
		return 0
	case OpMax:
		return math.Inf(-1)
	case OpMin:
		return math.Inf(1)
	case OpProd:
		return 1
	default:
		panic("stream: unknown Op")
	}
}

// Combine applies the binary reduction to two values.
func (op Op) Combine(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	case OpProd:
		return a * b
	default:
		panic("stream: unknown Op")
	}
}

// String returns the MPI-style name of the operation.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "SUM"
	case OpMax:
		return "MAX"
	case OpMin:
		return "MIN"
	case OpProd:
		return "PROD"
	default:
		return "UNKNOWN"
	}
}
