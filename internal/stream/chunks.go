package stream

import "fmt"

// This file implements the chunking seam of the pipelined collectives: a
// vector can be split into C independent key-range chunks, processed (sent,
// merged) chunk by chunk, and reassembled. Chunks are plain Vectors over
// the full universe with global indices, so every existing stream operation
// applies to them unchanged; disjointness by construction is what makes the
// reassembly a pure concatenation.

// ChunkRange returns the i-th of c uniform key sub-ranges of [0, n): the
// same ⌊n/c⌋-block rule the split phase uses to assign rank partitions
// (Appendix A), with the last chunk absorbing the remainder. Panics if c
// is not positive or i is out of range.
func ChunkRange(n, c, i int) (lo, hi int) {
	if c <= 0 || i < 0 || i >= c {
		panic(fmt.Sprintf("stream: chunk %d of %d out of range", i, c))
	}
	block := n / c
	lo = i * block
	hi = lo + block
	if i == c-1 {
		hi = n
	}
	return lo, hi
}

// SplitChunks splits v into c chunks by uniform key range: chunk i holds
// exactly the coordinates of ChunkRange(Dim(), c, i), with global indices
// over the full universe. Each chunk is canonical and inherits v's
// operation, wire settings, and δ. Buffers are drawn from s (nil degrades
// to plain allocation); v is not modified.
//
// The round trip ConcatChunks(v.SplitChunks(c, s), s) rebuilds v exactly:
// for canonical vectors the representation and every entry come back bit
// for bit (canonical sparse vectors cannot carry signed zeros; a dense
// vector's signed-zero entries are the one exception — they compare equal
// to the dropped neutral element). A non-canonical dense vector with
// nnz ≤ δ comes back re-canonicalized to the sparse representation,
// exactly as ExtractRange canonicalizes its result.
func (v *Vector) SplitChunks(c int, s *Scratch) []*Vector {
	if c <= 0 {
		panic("stream: SplitChunks needs at least one chunk")
	}
	out := make([]*Vector, c)
	for i := range out {
		lo, hi := ChunkRange(v.n, c, i)
		out[i] = v.extractRange(lo, hi, s)
	}
	return out
}

// ConcatChunks reassembles vectors with pairwise-disjoint supports —
// typically SplitChunks output or per-key-range reduction results — into
// one vector, without consuming the inputs. All chunks must share one
// dimension and operation; the result inherits the first chunk's wire
// settings and δ, its header and buffers drawn from s (nil degrades to
// plain allocation). The result is canonical: it is dense iff any chunk is
// dense or the combined support exceeds δ (exact, since the supports are
// disjoint). Sparse chunks must be in ascending key order; a detected
// overlap or ordering violation panics, like Vector.Concat.
func ConcatChunks(chunks []*Vector, s *Scratch) *Vector {
	if len(chunks) == 0 {
		panic("stream: ConcatChunks needs at least one chunk")
	}
	base := chunks[0]
	total := 0
	anyDense := false
	for _, ch := range chunks {
		if ch.n != base.n {
			panic(fmt.Sprintf("stream: dimension mismatch %d vs %d", base.n, ch.n))
		}
		if ch.op != base.op {
			panic("stream: operation mismatch")
		}
		if ch.dns != nil {
			anyDense = true
		} else {
			total += len(ch.idx)
		}
	}
	out := s.grabVector(base.n, base.op, base.valueBytes, base.delta)
	if anyDense || total > base.delta {
		neutral := base.op.Neutral()
		dns := s.grabDense(base.n, neutral)
		for _, ch := range chunks {
			if ch.dns != nil {
				for i, x := range ch.dns {
					if x != neutral {
						if dns[i] != neutral {
							panic("stream: ConcatChunks chunks overlap")
						}
						dns[i] = x
					}
				}
				continue
			}
			for i, ix := range ch.idx {
				if dns[ix] != neutral {
					panic("stream: ConcatChunks chunks overlap")
				}
				dns[ix] = ch.val[i]
			}
		}
		out.dns = dns
		return out
	}
	idx := s.grabIdx(total)
	val := s.grabVal(total)
	for _, ch := range chunks {
		if len(ch.idx) == 0 {
			continue
		}
		if len(idx) > 0 && ch.idx[0] <= idx[len(idx)-1] {
			panic("stream: ConcatChunks chunks out of order or overlapping")
		}
		idx = append(idx, ch.idx...)
		val = append(val, ch.val...)
	}
	out.idx, out.val = idx, val
	return out
}
