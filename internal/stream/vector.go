package stream

import (
	"fmt"
	"sort"
)

// IndexBytes is the wire size of one non-zero index. The paper fixes the
// index datatype to a 4-byte unsigned int because problem dimensions exceed
// 65k (§8, Setup).
const IndexBytes = 4

// HeaderBytes is the wire size of the stream header: one format flag byte
// ("we add an extra value to the beginning of each vector that indicates
// whether the vector is dense or sparse", §5.1) plus a 4-byte non-zero
// count for the sparse case.
const HeaderBytes = 5

// DefaultValueBytes is the wire size of one value in full precision
// (float64). Streams can also account values as 4-byte float32 for modeling
// single-precision deployments; storage is always float64.
const DefaultValueBytes = 8

// Delta returns the sparsity-efficiency threshold δ = N·isize/(c+isize)
// (§5.1): the largest non-zero count for which the sparse wire format is no
// larger than the dense one. valueBytes is the per-value wire size (isize)
// and IndexBytes is c.
func Delta(n, valueBytes int) int {
	if n < 0 {
		panic("stream: negative dimension")
	}
	return n * valueBytes / (IndexBytes + valueBytes)
}

// Vector is a sparse stream over the universe [0, N): a vector that is
// stored either as sorted index–value pairs or as a dense array, switching
// representation automatically during reductions when the non-zero count
// crosses the δ threshold.
//
// The zero Vector is not usable; construct with NewSparse, NewDense,
// FromDense, or Zero.
type Vector struct {
	n   int
	op  Op
	idx []int32   // sorted, strictly increasing; nil iff dense
	val []float64 // parallel to idx when sparse
	dns []float64 // length n; non-nil iff dense

	valueBytes int // wire size per value (4 or 8); storage is float64
	delta      int // switch-to-dense threshold; default Delta(n, valueBytes)
}

// Zero returns an empty (all-neutral) sparse vector of dimension n for the
// given reduction operation.
func Zero(n int, op Op) *Vector {
	if n <= 0 {
		panic("stream: dimension must be positive")
	}
	return &Vector{n: n, op: op, valueBytes: DefaultValueBytes, delta: Delta(n, DefaultValueBytes)}
}

// NewSparse builds a sparse vector of dimension n from index–value pairs.
// Indices need not be sorted but must be unique and in [0, n). The slices
// are copied. Values equal to the operation's neutral element are dropped.
func NewSparse(n int, idx []int32, val []float64, op Op) *Vector {
	if len(idx) != len(val) {
		panic("stream: index/value length mismatch")
	}
	v := Zero(n, op)
	neutral := op.Neutral()
	pairs := make([]pair, 0, len(idx))
	for i, ix := range idx {
		if ix < 0 || int(ix) >= n {
			panic(fmt.Sprintf("stream: index %d out of range [0,%d)", ix, n))
		}
		if val[i] == neutral {
			continue
		}
		pairs = append(pairs, pair{ix, val[i]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ix < pairs[j].ix })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].ix == pairs[i-1].ix {
			panic(fmt.Sprintf("stream: duplicate index %d", pairs[i].ix))
		}
	}
	v.idx = make([]int32, len(pairs))
	v.val = make([]float64, len(pairs))
	for i, p := range pairs {
		v.idx[i] = p.ix
		v.val[i] = p.v
	}
	v.maybeDensify()
	return v
}

type pair struct {
	ix int32
	v  float64
}

// NewDense builds a dense vector of dimension len(values). The slice is
// copied.
func NewDense(values []float64, op Op) *Vector {
	v := Zero(len(values), op)
	v.dns = make([]float64, len(values))
	copy(v.dns, values)
	return v
}

// WrapDense builds a dense vector that takes ownership of values without
// copying (the allocation-free twin of NewDense for hot paths assembling a
// result in place). The caller must not use the slice afterwards.
func WrapDense(values []float64, op Op) *Vector {
	v := Zero(len(values), op)
	v.dns = values
	return v
}

// FromDense builds a vector from a dense array, choosing the sparse
// representation when the number of non-neutral entries is at most δ.
func FromDense(values []float64, op Op) *Vector {
	neutral := op.Neutral()
	nnz := 0
	for _, x := range values {
		if x != neutral {
			nnz++
		}
	}
	if nnz > Delta(len(values), DefaultValueBytes) {
		return NewDense(values, op)
	}
	v := Zero(len(values), op)
	v.idx = make([]int32, 0, nnz)
	v.val = make([]float64, 0, nnz)
	for i, x := range values {
		if x != neutral {
			v.idx = append(v.idx, int32(i))
			v.val = append(v.val, x)
		}
	}
	return v
}

// Dim returns the universe size N.
func (v *Vector) Dim() int { return v.n }

// Op returns the reduction operation the vector was built for.
func (v *Vector) Op() Op { return v.op }

// IsDense reports whether the vector currently uses the dense
// representation.
func (v *Vector) IsDense() bool { return v.dns != nil }

// NNZ returns the number of non-neutral entries. For dense vectors this
// scans the array.
func (v *Vector) NNZ() int {
	if v.dns == nil {
		return len(v.idx)
	}
	neutral := v.op.Neutral()
	nnz := 0
	for _, x := range v.dns {
		if x != neutral {
			nnz++
		}
	}
	return nnz
}

// Density returns NNZ()/N.
func (v *Vector) Density() float64 { return float64(v.NNZ()) / float64(v.n) }

// Delta returns the vector's switch-to-dense threshold.
func (v *Vector) Delta() int { return v.delta }

// SetDelta overrides the switch-to-dense threshold. In practice δ should be
// smaller than the pure volume bound to reflect the higher computational
// cost of sparse summation (§5.1). Panics if d is negative.
func (v *Vector) SetDelta(d int) {
	if d < 0 {
		panic("stream: negative delta")
	}
	v.delta = d
	v.maybeDensify()
}

// SetValueBytes sets the modeled wire size per value (4 for float32, 8 for
// float64) and recomputes δ accordingly.
func (v *Vector) SetValueBytes(b int) {
	if b != 4 && b != 8 {
		panic("stream: value size must be 4 or 8 bytes")
	}
	v.valueBytes = b
	v.delta = Delta(v.n, b)
}

// ValueBytes returns the modeled wire size per value.
func (v *Vector) ValueBytes() int { return v.valueBytes }

// Get returns the value at coordinate i (the neutral element if absent).
func (v *Vector) Get(i int) float64 {
	if i < 0 || i >= v.n {
		panic("stream: index out of range")
	}
	if v.dns != nil {
		return v.dns[i]
	}
	j := sort.Search(len(v.idx), func(k int) bool { return v.idx[k] >= int32(i) })
	if j < len(v.idx) && v.idx[j] == int32(i) {
		return v.val[j]
	}
	return v.op.Neutral()
}

// ToDense materializes the vector as a length-N float64 slice (always a
// fresh copy), with absent coordinates set to the neutral element.
func (v *Vector) ToDense() []float64 {
	out := make([]float64, v.n)
	if v.dns != nil {
		copy(out, v.dns)
		return out
	}
	if neutral := v.op.Neutral(); neutral != 0 {
		for i := range out {
			out[i] = neutral
		}
	}
	for i, ix := range v.idx {
		out[ix] = v.val[i]
	}
	return out
}

// Pairs returns the sparse index and value slices. The returned slices are
// the vector's backing storage and must not be modified. Panics if the
// vector is dense.
func (v *Vector) Pairs() ([]int32, []float64) {
	if v.dns != nil {
		panic("stream: Pairs on dense vector")
	}
	return v.idx, v.val
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, op: v.op, valueBytes: v.valueBytes, delta: v.delta}
	if v.dns != nil {
		c.dns = append([]float64(nil), v.dns...)
		return c
	}
	c.idx = append([]int32(nil), v.idx...)
	c.val = append([]float64(nil), v.val...)
	return c
}

// Densify converts the vector to the dense representation in place.
func (v *Vector) Densify() {
	if v.dns != nil {
		return
	}
	dns := make([]float64, v.n)
	if neutral := v.op.Neutral(); neutral != 0 {
		for i := range dns {
			dns[i] = neutral
		}
	}
	for i, ix := range v.idx {
		dns[ix] = v.val[i]
	}
	v.dns = dns
	v.idx, v.val = nil, nil
}

// Sparsify converts the vector to the sparse representation in place,
// regardless of δ. Useful for tests and for re-sparsifying after TopK.
func (v *Vector) Sparsify() {
	if v.dns == nil {
		return
	}
	neutral := v.op.Neutral()
	idx := make([]int32, 0, 64)
	val := make([]float64, 0, 64)
	for i, x := range v.dns {
		if x != neutral {
			idx = append(idx, int32(i))
			val = append(val, x)
		}
	}
	v.idx, v.val = idx, val
	v.dns = nil
}

// maybeDensify switches to the dense representation when nnz exceeds δ.
func (v *Vector) maybeDensify() {
	if v.dns == nil && len(v.idx) > v.delta {
		v.Densify()
	}
}

// WireBytes returns the number of bytes the vector occupies on the wire in
// its current representation: HeaderBytes + nnz·(c+isize) when sparse,
// HeaderBytes + N·isize when dense (§5.1).
func (v *Vector) WireBytes() int {
	if v.dns != nil {
		return HeaderBytes + v.n*v.valueBytes
	}
	return HeaderBytes + len(v.idx)*(IndexBytes+v.valueBytes)
}

// Equal reports whether two vectors represent the same mathematical vector
// (regardless of representation).
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := 0; i < v.n; i++ {
		if v.Get(i) != o.Get(i) {
			return false
		}
	}
	return true
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	repr := "sparse"
	if v.dns != nil {
		repr = "dense"
	}
	return fmt.Sprintf("Vector{n=%d %s nnz=%d op=%s}", v.n, repr, v.NNZ(), v.op)
}
