package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chainAdd computes the chained two-way reference reduction: clone vs[0]
// and Add the rest in order.
func chainAdd(vs []*Vector) *Vector {
	acc := vs[0].Clone()
	for _, o := range vs[1:] {
		acc.Add(o)
	}
	return acc
}

// assertBitIdentical fails unless got and want agree bit-for-bit on every
// coordinate (math.Float64bits, so -0.0 vs 0.0 and NaN patterns count).
func assertBitIdentical(t *testing.T, got, want *Vector, ctx string) {
	t.Helper()
	if got.Dim() != want.Dim() {
		t.Fatalf("%s: dim %d vs %d", ctx, got.Dim(), want.Dim())
	}
	g, w := got.ToDense(), want.ToDense()
	for i := range w {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: coord %d: got %x (%g) want %x (%g)",
				ctx, i, math.Float64bits(g[i]), g[i], math.Float64bits(w[i]), w[i])
		}
	}
}

// adversarialFamilies generates stream sets engineered to stress the k-way
// merge: full-overlap cancellation to the neutral element, disjoint
// interleavings, identical supports, empty streams, dense mixes, and tiny
// δ forcing densification mid-merge.
func adversarialFamilies(rng *rand.Rand, n, k, P int) [][]*Vector {
	var fams [][]*Vector

	// Full cancellation: v and -v in sequence, repeated.
	base := randSparseExact(rng, n, k)
	neg := base.Clone()
	neg.Scale(-1)
	cancel := []*Vector{base, neg}
	for len(cancel) < P {
		cancel = append(cancel, base.Clone(), neg.Clone())
	}
	fams = append(fams, cancel[:P])

	// Identical supports (§5.3 case 2).
	idx, _ := base.Pairs()
	ident := make([]*Vector, P)
	for r := range ident {
		val := make([]float64, len(idx))
		for i := range val {
			val[i] = math.Round(rng.NormFloat64()*8) / 4
			if val[i] == 0 {
				val[i] = 0.25
			}
		}
		ident[r] = NewSparse(n, append([]int32(nil), idx...), val, OpSum)
	}
	fams = append(fams, ident)

	// Disjoint striped supports (§5.3 case 1).
	disj := make([]*Vector, P)
	for r := range disj {
		var di []int32
		var dv []float64
		for i := r; i < n && len(di) < k; i += P {
			di = append(di, int32(i))
			dv = append(dv, float64(r+1))
		}
		disj[r] = NewSparse(n, di, dv, OpSum)
	}
	fams = append(fams, disj)

	// Empty streams interleaved with random ones.
	empt := make([]*Vector, P)
	for r := range empt {
		if r%2 == 0 {
			empt[r] = Zero(n, OpSum)
		} else {
			empt[r] = randSparseExact(rng, n, k)
		}
	}
	fams = append(fams, empt)

	// Dense inputs mixed in.
	mix := make([]*Vector, P)
	for r := range mix {
		mix[r] = randSparseExact(rng, n, k)
		if r%3 == 1 {
			mix[r].Densify()
		}
	}
	fams = append(fams, mix)

	// Tiny δ: densification mid-merge.
	tiny := make([]*Vector, P)
	for r := range tiny {
		tiny[r] = randSparseExact(rng, n, k)
		tiny[r].SetDelta(k + k/2)
	}
	fams = append(fams, tiny)

	return fams
}

func TestMergeKMatchesChainedAddAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, P := range []int{2, 3, 5, 8, 17} {
		for fi, vs := range adversarialFamilies(rng, 500, 40, P) {
			want := chainAdd(vs)
			got := MergeK(vs, nil)
			assertBitIdentical(t, got, want, "family")
			if got.IsDense() && !want.IsDense() {
				t.Fatalf("P=%d family=%d: MergeK densified where the chain stayed sparse", P, fi)
			}
			// With a warm scratch, same answer.
			s := NewScratch()
			got2 := MergeK(vs, s)
			got3 := MergeK(vs, s) // second pass reuses the pool
			assertBitIdentical(t, got2, want, "scratch-cold")
			assertBitIdentical(t, got3, want, "scratch-warm")
		}
	}
}

func TestMergeKCancellationToNeutralDropsEntries(t *testing.T) {
	// x + (−x) + y at one index must yield exactly y, with the intermediate
	// neutral dropped, matching the chained merges.
	a := NewSparse(100, []int32{7, 9}, []float64{2, 1}, OpSum)
	b := NewSparse(100, []int32{7}, []float64{-2}, OpSum)
	c := NewSparse(100, []int32{7}, []float64{5}, OpSum)
	got := MergeK([]*Vector{a, b, c}, nil)
	want := chainAdd([]*Vector{a, b, c})
	assertBitIdentical(t, got, want, "cancel-then-refill")
	if got.Get(7) != 5 || got.NNZ() != 2 {
		t.Fatalf("got %v, want entries {7:5, 9:1}", got)
	}
	// Cancellation with no refill must drop the coordinate entirely.
	got2 := MergeK([]*Vector{a, b}, nil)
	if got2.NNZ() != 1 || got2.Get(7) != 0 {
		t.Fatalf("cancelled coordinate survives: %v", got2)
	}
}

func TestAddAllMatchesChainedAddRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(400)
		P := 2 + rng.Intn(9)
		op := []Op{OpSum, OpMax, OpMin}[rng.Intn(3)]
		vs := make([]*Vector, P)
		for r := range vs {
			vs[r] = randVector(rng, n, rng.Float64()*0.5, op)
		}
		want := chainAdd(vs)
		got := vs[0].Clone()
		got.AddAll(vs[1:], NewScratch())
		assertBitIdentical(t, got, want, op.String())
	}
}

// Property (quick-check): MergeK ≡ chained Add on random dyadic streams of
// random shapes, operations, and representations.
func TestQuickMergeKEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		P := 1 + rng.Intn(12)
		vs := make([]*Vector, P)
		for r := range vs {
			vs[r] = randVector(rng, n, rng.Float64()*0.6, OpSum)
		}
		want := chainAdd(vs)
		got := MergeK(vs, NewScratch())
		g, w := got.ToDense(), want.ToDense()
		for i := range w {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzMergeKEquivalence drives the equivalence from raw fuzz bytes:
// index/value pairs are decoded from data, duplicated across a variable
// number of streams with sign flips to provoke cancellation.
func FuzzMergeKEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(99), uint8(7), []byte{0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, seed int64, streams uint8, data []byte) {
		P := 1 + int(streams%12)
		n := 64 + int((seed%191+191)%191)
		rng := rand.New(rand.NewSource(seed))
		vs := make([]*Vector, P)
		for r := range vs {
			var idx []int32
			var val []float64
			seen := map[int32]bool{}
			for i := 0; i+1 < len(data); i += 2 {
				ix := int32(int(data[i]) % n)
				if seen[ix] {
					continue
				}
				seen[ix] = true
				v := float64(int(data[i+1])-128) / 8
				if v == 0 {
					continue
				}
				if rng.Intn(2) == 0 {
					v = -v
				}
				idx = append(idx, ix)
				val = append(val, v)
			}
			vs[r] = NewSparse(n, idx, val, OpSum)
			if rng.Intn(4) == 0 {
				vs[r].Densify()
			}
			if rng.Intn(4) == 0 {
				vs[r].SetDelta(1 + rng.Intn(n))
			}
		}
		want := chainAdd(vs)
		got := MergeK(vs, NewScratch())
		g, w := got.ToDense(), want.ToDense()
		for i := range w {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				t.Fatalf("coord %d: got %g want %g", i, g[i], w[i])
			}
		}
	})
}

func TestAddIntoMatchesAddExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	s := NewScratch()
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(300)
		op := []Op{OpSum, OpMax, OpMin, OpProd}[rng.Intn(4)]
		a := randVector(rng, n, rng.Float64()*0.6, op)
		b := randVector(rng, n, rng.Float64()*0.6, op)
		ref := a.Clone()
		ref.Add(b)
		a.AddInto(b, s)
		assertBitIdentical(t, a, ref, "AddInto")
		if a.IsDense() != ref.IsDense() {
			t.Fatalf("trial %d: AddInto representation (dense=%v) diverges from Add (dense=%v)",
				trial, a.IsDense(), ref.IsDense())
		}
	}
}

func TestMergeKSingleAndEmptyInputs(t *testing.T) {
	v := NewSparse(50, []int32{3}, []float64{1}, OpSum)
	got := MergeK([]*Vector{v}, nil)
	assertBitIdentical(t, got, v, "single")
	zeros := []*Vector{Zero(50, OpSum), Zero(50, OpSum), Zero(50, OpSum)}
	if MergeK(zeros, nil).NNZ() != 0 {
		t.Fatal("merge of empty streams must be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MergeK of no inputs must panic")
		}
	}()
	MergeK(nil, nil)
}

func TestMergeKMismatchPanics(t *testing.T) {
	a := NewSparse(50, []int32{3}, []float64{1}, OpSum)
	b := NewSparse(60, []int32{3}, []float64{1}, OpSum)
	c := NewSparse(50, []int32{3}, []float64{1}, OpMax)
	for name, vs := range map[string][]*Vector{
		"dim": {a, b}, "op": {a, c},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch must panic", name)
				}
			}()
			MergeK(vs, nil)
		}()
	}
}

func TestMergeKDensifiesPastDelta(t *testing.T) {
	// Three disjoint streams whose union exceeds δ must densify mid-merge
	// and still be value-identical to the chain.
	n := 30 // δ = 20
	mk := func(start int) *Vector {
		var idx []int32
		var val []float64
		for i := start; i < start+10; i++ {
			idx = append(idx, int32(i))
			val = append(val, 1)
		}
		return NewSparse(n, idx, val, OpSum)
	}
	vs := []*Vector{mk(0), mk(10), mk(20)}
	want := chainAdd(vs)
	got := MergeK(vs, NewScratch())
	assertBitIdentical(t, got, want, "spill")
	if !got.IsDense() {
		t.Fatalf("union of 30 > δ=20 must densify, nnz=%d", got.NNZ())
	}
}

func TestCloneIntoAndDensifyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := NewScratch()
	for trial := 0; trial < 40; trial++ {
		v := randVector(rng, 1+rng.Intn(200), 0.3, OpSum)
		c := v.CloneInto(s)
		assertBitIdentical(t, c, v, "CloneInto")
		if c.IsDense() != v.IsDense() {
			t.Fatal("CloneInto changed representation")
		}
		// Mutating the clone must not affect the original.
		c.Scale(3)
		d := v.Clone()
		d.DensifyInto(s)
		assertBitIdentical(t, d, v, "DensifyInto")
		if !d.IsDense() {
			t.Fatal("DensifyInto left vector sparse")
		}
		s.Release(c)
		s.Release(d)
	}
}
