package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDelta(t *testing.T) {
	// δ = N·isize/(c+isize): with float64 values and 4-byte indices the
	// sparse format pays 12 bytes/entry vs 8 bytes/slot dense → δ = 2N/3.
	if got := Delta(1200, 8); got != 800 {
		t.Fatalf("Delta(1200,8) = %d, want 800", got)
	}
	// With float32 values the sparse entry costs 8 bytes vs 4 dense → δ = N/2.
	if got := Delta(1000, 4); got != 500 {
		t.Fatalf("Delta(1000,4) = %d, want 500", got)
	}
	if got := Delta(0, 8); got != 0 {
		t.Fatalf("Delta(0,8) = %d, want 0", got)
	}
}

func TestNewSparseSortsAndValidates(t *testing.T) {
	v := NewSparse(10, []int32{7, 2, 5}, []float64{7, 2, 5}, OpSum)
	idx, val := v.Pairs()
	want := []int32{2, 5, 7}
	for i := range want {
		if idx[i] != want[i] || val[i] != float64(want[i]) {
			t.Fatalf("pair %d = (%d,%g), want (%d,%d)", i, idx[i], val[i], want[i], want[i])
		}
	}
}

func TestNewSparseDropsNeutral(t *testing.T) {
	v := NewSparse(10, []int32{1, 2, 3}, []float64{0, 4, 0}, OpSum)
	if v.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", v.NNZ())
	}
	if v.Get(2) != 4 {
		t.Fatalf("Get(2) = %g, want 4", v.Get(2))
	}
}

func TestNewSparsePanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate index")
		}
	}()
	NewSparse(10, []int32{3, 3}, []float64{1, 2}, OpSum)
}

func TestNewSparsePanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	NewSparse(10, []int32{10}, []float64{1}, OpSum)
}

func TestAutoDensifyOnConstruction(t *testing.T) {
	n := 12
	// δ = 8 for n=12; 9 entries must densify.
	idx := make([]int32, 9)
	val := make([]float64, 9)
	for i := range idx {
		idx[i] = int32(i)
		val[i] = 1
	}
	v := NewSparse(n, idx, val, OpSum)
	if !v.IsDense() {
		t.Fatalf("vector with nnz=9 > δ=%d should be dense", v.Delta())
	}
	if v.NNZ() != 9 {
		t.Fatalf("NNZ = %d, want 9", v.NNZ())
	}
}

func TestFromDenseChoosesRepresentation(t *testing.T) {
	sparseIn := make([]float64, 100)
	sparseIn[3] = 1
	sparseIn[97] = -2
	v := FromDense(sparseIn, OpSum)
	if v.IsDense() {
		t.Fatal("2/100 non-zeros should stay sparse")
	}
	denseIn := make([]float64, 100)
	for i := range denseIn {
		denseIn[i] = float64(i + 1)
	}
	w := FromDense(denseIn, OpSum)
	if !w.IsDense() {
		t.Fatal("fully dense input should be dense")
	}
}

func TestGetAndToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		dense := make([]float64, n)
		for i := range dense {
			if rng.Float64() < 0.3 {
				dense[i] = rng.NormFloat64()
			}
		}
		v := FromDense(dense, OpSum)
		got := v.ToDense()
		for i := range dense {
			if got[i] != dense[i] || v.Get(i) != dense[i] {
				t.Fatalf("trial %d: coordinate %d mismatch", trial, i)
			}
		}
	}
}

func TestNeutralElementsForMinMax(t *testing.T) {
	v := NewSparse(8, []int32{2}, []float64{5}, OpMax)
	if got := v.Get(0); !math.IsInf(got, -1) {
		t.Fatalf("OpMax absent coordinate = %g, want -Inf", got)
	}
	w := NewSparse(8, []int32{2}, []float64{5}, OpMin)
	if got := w.Get(0); !math.IsInf(got, 1) {
		t.Fatalf("OpMin absent coordinate = %g, want +Inf", got)
	}
}

func TestWireBytes(t *testing.T) {
	v := NewSparse(100, []int32{1, 2, 3}, []float64{1, 2, 3}, OpSum)
	if got := v.WireBytes(); got != HeaderBytes+3*12 {
		t.Fatalf("sparse WireBytes = %d, want %d", got, HeaderBytes+3*12)
	}
	v.Densify()
	if got := v.WireBytes(); got != HeaderBytes+100*8 {
		t.Fatalf("dense WireBytes = %d, want %d", got, HeaderBytes+100*8)
	}
	v.SetValueBytes(4)
	if got := v.WireBytes(); got != HeaderBytes+100*4 {
		t.Fatalf("fp32 dense WireBytes = %d, want %d", got, HeaderBytes+100*4)
	}
}

func TestSparsifyDensifyRoundTrip(t *testing.T) {
	v := NewSparse(50, []int32{10, 20}, []float64{1.5, -2.5}, OpSum)
	orig := v.Clone()
	v.Densify()
	v.Sparsify()
	if !v.Equal(orig) {
		t.Fatal("densify→sparsify changed the vector")
	}
	if v.IsDense() {
		t.Fatal("Sparsify left the vector dense")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := NewSparse(10, []int32{1}, []float64{1}, OpSum)
	c := v.Clone()
	c.Add(NewSparse(10, []int32{1}, []float64{5}, OpSum))
	if v.Get(1) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

// Property: FromDense∘ToDense is the identity on arbitrary vectors.
func TestQuickDenseRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(x) {
				raw[i] = 0 // NaN breaks == comparison by design; exclude.
			}
		}
		v := FromDense(raw, OpSum)
		got := v.ToDense()
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDeltaTriggersSwitch(t *testing.T) {
	v := NewSparse(1000, []int32{1, 2, 3, 4}, []float64{1, 2, 3, 4}, OpSum)
	v.SetDelta(3)
	if !v.IsDense() {
		t.Fatal("lowering δ below nnz must densify")
	}
}
