package simnet

import (
	"math"
	"reflect"
	"testing"
)

// threeTier is a 4-ranks/node, 3-nodes/group Dragonfly-ish test hierarchy.
var threeTier = Hierarchy{Levels: []Level{
	{GroupSize: 4, Profile: NVLinkLike, Serial: 1},
	{GroupSize: 3, Profile: Aries, Serial: 2},
	{Profile: AriesGlobal},
}}

func TestHierarchyValidate(t *testing.T) {
	if err := threeTier.Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	bad := []Hierarchy{
		{},
		{Levels: []Level{{GroupSize: 0, Profile: NVLinkLike}, {Profile: Aries}, {Profile: AriesGlobal}}},
		{Levels: []Level{{GroupSize: 4, Profile: Profile{}}, {Profile: Aries}}},
		{Levels: []Level{{GroupSize: 4, Profile: NVLinkLike, Serial: -1}, {Profile: Aries}}},
		{Levels: make([]Level, MaxLevels+1)},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Fatalf("bad hierarchy %d accepted", i)
		}
	}
	if err := (Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries}).Hierarchy().Validate(); err != nil {
		t.Fatalf("Topology.Hierarchy must validate: %v", err)
	}
}

func TestHierarchySpanAndGroups(t *testing.T) {
	h := threeTier
	if got := h.Span(0); got != 4 {
		t.Fatalf("Span(0) = %d, want 4", got)
	}
	if got := h.Span(1); got != 12 {
		t.Fatalf("Span(1) = %d, want 12", got)
	}
	if got := h.Span(2); got != math.MaxInt {
		t.Fatalf("Span(2) = %d, want MaxInt", got)
	}
	if got := h.GroupOf(13, 0); got != 3 {
		t.Fatalf("GroupOf(13, 0) = %d, want 3", got)
	}
	if got := h.GroupOf(13, 1); got != 1 {
		t.Fatalf("GroupOf(13, 1) = %d, want 1", got)
	}
	if got := h.Leader(13, 1); got != 12 {
		t.Fatalf("Leader(13, 1) = %d, want 12", got)
	}
	// Ragged world of 14 ranks: last node {12, 13} and last group {12, 13}
	// are both short.
	if got := h.GroupRanks(13, 0, 14); !reflect.DeepEqual(got, []int{12, 13}) {
		t.Fatalf("GroupRanks(13, 0, 14) = %v", got)
	}
	if got := h.GroupRanks(5, 1, 14); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}) {
		t.Fatalf("GroupRanks(5, 1, 14) = %v", got)
	}
	if got := h.LeadersAt(0, 14); !reflect.DeepEqual(got, []int{0, 4, 8, 12}) {
		t.Fatalf("LeadersAt(0, 14) = %v", got)
	}
	if got := h.LeadersAt(1, 14); !reflect.DeepEqual(got, []int{0, 12}) {
		t.Fatalf("LeadersAt(1, 14) = %v", got)
	}
	if got := h.LeadersAt(2, 14); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("LeadersAt(2, 14) = %v", got)
	}
	// Stage participants: node members at level 0, node leaders of the
	// group at level 1, group leaders of the world at level 2.
	if got := h.StageRanks(6, 0, 14); !reflect.DeepEqual(got, []int{4, 5, 6, 7}) {
		t.Fatalf("StageRanks(6, 0, 14) = %v", got)
	}
	if got := h.StageRanks(6, 1, 14); !reflect.DeepEqual(got, []int{0, 4, 8}) {
		t.Fatalf("StageRanks(6, 1, 14) = %v", got)
	}
	if got := h.StageRanks(13, 1, 14); !reflect.DeepEqual(got, []int{12}) {
		t.Fatalf("StageRanks(13, 1, 14) = %v", got)
	}
	if got := h.StageRanks(6, 2, 14); !reflect.DeepEqual(got, []int{0, 12}) {
		t.Fatalf("StageRanks(6, 2, 14) = %v", got)
	}
}

func TestHierarchySharedLevelAndProfile(t *testing.T) {
	h := threeTier
	cases := []struct{ a, b, level int }{
		{0, 0, 0}, {0, 3, 0}, {13, 12, 0}, // same node
		{0, 4, 1}, {3, 11, 1}, // same group, different node
		{0, 12, 2}, {11, 23, 2}, // different groups
	}
	for _, c := range cases {
		if got := h.SharedLevel(c.a, c.b); got != c.level {
			t.Fatalf("SharedLevel(%d, %d) = %d, want %d", c.a, c.b, got, c.level)
		}
		if got := h.ProfileFor(c.a, c.b).Name; got != h.Levels[c.level].Profile.Name {
			t.Fatalf("ProfileFor(%d, %d) = %s, want level-%d profile", c.a, c.b, got, c.level)
		}
	}
}

func TestHierarchySerialFactor(t *testing.T) {
	h := threeTier
	if got := h.SerialFactor(0, 1); got != 1 {
		t.Fatalf("one flow under a cap of 1 = %g, want 1", got)
	}
	if got := h.SerialFactor(0, 4); got != 4 {
		t.Fatalf("4 flows through a cap of 1 = %g, want 4", got)
	}
	if got := h.SerialFactor(1, 2); got != 1 {
		t.Fatalf("2 flows under a cap of 2 = %g, want 1", got)
	}
	if got := h.SerialFactor(1, 3); got != 1.5 {
		t.Fatalf("3 flows through a cap of 2 = %g, want 1.5", got)
	}
	if got := h.SerialFactor(2, 100); got != 1 {
		t.Fatalf("uncapped level factor = %g, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("active < 1 must panic")
		}
	}()
	h.SerialFactor(0, 0)
}

func TestHierarchyIngressFactor(t *testing.T) {
	h := Hierarchy{Levels: []Level{
		{GroupSize: 4, Profile: NVLinkLike, Serial: 1, IngressSerial: 1},
		{GroupSize: 3, Profile: Aries, Serial: 2, IngressSerial: 2},
		{Profile: AriesGlobal},
	}}
	if err := h.Validate(); err != nil {
		t.Fatalf("ingress-capped hierarchy rejected: %v", err)
	}
	if got := h.IngressFactor(0, 1); got != 1 {
		t.Fatalf("one flow under a cap of 1 = %g, want 1", got)
	}
	if got := h.IngressFactor(0, 4); got != 4 {
		t.Fatalf("4 flows through a cap of 1 = %g, want 4", got)
	}
	if got := h.IngressFactor(1, 2); got != 1 {
		t.Fatalf("2 flows under a cap of 2 = %g, want 1", got)
	}
	if got := h.IngressFactor(1, 3); got != 1.5 {
		t.Fatalf("3 flows through a cap of 2 = %g, want 1.5", got)
	}
	if got := h.IngressFactor(2, 100); got != 1 {
		t.Fatalf("uncapped level factor = %g, want 1", got)
	}
	if !h.HasIngress() {
		t.Fatal("ingress-capped hierarchy must report HasIngress")
	}
	if threeTier.HasIngress() {
		t.Fatal("preset-style hierarchy must not report HasIngress")
	}
	if DragonflyLike(4, 8).HasIngress() {
		t.Fatal("DragonflyLike must not carry ingress caps")
	}
	bad := Hierarchy{Levels: []Level{{GroupSize: 4, Profile: NVLinkLike, IngressSerial: -1}, {Profile: Aries}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative IngressSerial accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("active < 1 must panic")
		}
	}()
	h.IngressFactor(0, 0)
}

// TestTopologyHierarchyEquivalence: the two-level hierarchy derived from a
// Topology must agree with the topology's own locality and pricing.
func TestTopologyHierarchyEquivalence(t *testing.T) {
	topo := Topology{RanksPerNode: 3, Intra: NVLinkLike, Inter: Aries, NICSerial: 2}
	h := topo.Hierarchy()
	const p = 11
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			if got, want := h.ProfileFor(a, b).Name, topo.ProfileFor(a, b).Name; got != want {
				t.Fatalf("ProfileFor(%d, %d) = %s, topology says %s", a, b, got, want)
			}
			wantLevel := 1
			if topo.SameNode(a, b) {
				wantLevel = 0
			}
			if got := h.SharedLevel(a, b); got != wantLevel {
				t.Fatalf("SharedLevel(%d, %d) = %d, want %d", a, b, got, wantLevel)
			}
		}
		if got, want := h.Leader(a, 0), topo.Leader(a); got != want {
			t.Fatalf("Leader(%d) = %d, topology says %d", a, got, want)
		}
		if got, want := h.GroupRanks(a, 0, p), topo.NodeRanks(a, p); !reflect.DeepEqual(got, want) {
			t.Fatalf("GroupRanks(%d) = %v, topology says %v", a, got, want)
		}
	}
	if got, want := h.LeadersAt(0, p), topo.LeaderRanks(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("LeadersAt(0) = %v, topology says %v", got, want)
	}
	for active := 1; active <= 5; active++ {
		if got, want := h.SerialFactor(0, active), topo.NICFactor(active); got != want {
			t.Fatalf("SerialFactor(0, %d) = %g, NICFactor says %g", active, got, want)
		}
	}
}

func TestHierarchyInduced(t *testing.T) {
	mach := DragonflyLike(4, 2) // nodes of 4, groups of 2 nodes (span 8)
	// Packed 8 ranks onto slots 0..7: two full nodes of one group.
	packed := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ih, ok := mach.Induced(packed)
	if !ok {
		t.Fatal("packed placement must induce a hierarchy")
	}
	if ih.Depth() != 3 || ih.Span(0) != 4 || ih.Span(1) != 8 {
		t.Fatalf("packed induced shape wrong: depth=%d spans=%d/%d", ih.Depth(), ih.Span(0), ih.Span(1))
	}
	if err := ih.Validate(); err != nil {
		t.Fatalf("induced hierarchy must validate: %v", err)
	}
	// Spread 4 ranks one per node across two groups: induced nodes of 1.
	spread := []int{0, 4, 8, 12}
	ih, ok = mach.Induced(spread)
	if !ok {
		t.Fatal("spread placement must induce a hierarchy")
	}
	if ih.Span(0) != 1 || ih.Span(1) != 2 {
		t.Fatalf("spread induced shape wrong: spans=%d/%d", ih.Span(0), ih.Span(1))
	}
	// Induced and machine shared levels must agree rank-for-rank.
	for a := range spread {
		for b := range spread {
			if got, want := ih.SharedLevel(a, b), mach.SharedLevel(spread[a], spread[b]); got != want {
				t.Fatalf("induced SharedLevel(%d, %d) = %d, machine says %d", a, b, got, want)
			}
		}
	}
	// Irregular placement (3 slots on one node, 1 on another) has no
	// nested structure.
	if _, ok := mach.Induced([]int{0, 1, 2, 4}); ok {
		t.Fatal("irregular placement must not induce a hierarchy")
	}
	// Unsorted or empty slot lists are rejected.
	if _, ok := mach.Induced([]int{4, 0}); ok {
		t.Fatal("unsorted slots must be rejected")
	}
	if _, ok := mach.Induced(nil); ok {
		t.Fatal("empty slots must be rejected")
	}
}

func TestDragonflyLikePreset(t *testing.T) {
	h := DragonflyLike(4, 8)
	if err := h.Validate(); err != nil {
		t.Fatalf("DragonflyLike must validate: %v", err)
	}
	if h.Depth() != 3 || h.Span(0) != 4 || h.Span(1) != 32 {
		t.Fatalf("DragonflyLike shape wrong: depth=%d spans=%d/%d", h.Depth(), h.Span(0), h.Span(1))
	}
	if h.Levels[2].Profile.Name != AriesGlobal.Name {
		t.Fatalf("outermost profile = %s, want %s", h.Levels[2].Profile.Name, AriesGlobal.Name)
	}
	if _, err := ProfileByName("aries-global"); err != nil {
		t.Fatalf("AriesGlobal must be resolvable by name: %v", err)
	}
}
