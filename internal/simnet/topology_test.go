package simnet

import (
	"reflect"
	"testing"
)

func TestTopologyNodeMapping(t *testing.T) {
	topo := Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Fatal("NodeOf wrong")
	}
	if !topo.SameNode(0, 3) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	if topo.Leader(6) != 4 || topo.Leader(0) != 0 {
		t.Fatal("Leader wrong")
	}
	if topo.ProfileFor(1, 2).Name != "nvlink" {
		t.Fatal("intra-node message should use the intra profile")
	}
	if topo.ProfileFor(1, 9).Name != "aries" {
		t.Fatal("inter-node message should use the inter profile")
	}
}

func TestTopologyRankEnumeration(t *testing.T) {
	topo := Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries}
	// Divisible world.
	if got := topo.NodeRanks(5, 8); !reflect.DeepEqual(got, []int{4, 5, 6, 7}) {
		t.Fatalf("NodeRanks(5, 8) = %v", got)
	}
	if got := topo.LeaderRanks(8); !reflect.DeepEqual(got, []int{0, 4}) {
		t.Fatalf("LeaderRanks(8) = %v", got)
	}
	// Ragged world: the last node is smaller.
	if got := topo.NodeRanks(9, 10); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("NodeRanks(9, 10) = %v", got)
	}
	if got := topo.LeaderRanks(10); !reflect.DeepEqual(got, []int{0, 4, 8}) {
		t.Fatalf("LeaderRanks(10) = %v", got)
	}
	if topo.Nodes(10) != 3 || topo.Nodes(8) != 2 || topo.Nodes(1) != 1 {
		t.Fatal("Nodes wrong")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{RanksPerNode: 0, Intra: NVLinkLike, Inter: Aries}).Validate(); err == nil {
		t.Fatal("RanksPerNode=0 must fail validation")
	}
	if err := (Topology{RanksPerNode: 2, Inter: Aries}).Validate(); err == nil {
		t.Fatal("unnamed intra profile must fail validation")
	}
}

func TestNVLinkLikeProfile(t *testing.T) {
	p, err := ProfileByName("nvlink")
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha >= Aries.Alpha || p.BetaPerByte >= Aries.BetaPerByte {
		t.Fatal("nvlink must be strictly cheaper than aries in both α and β")
	}
}

func TestNICFactor(t *testing.T) {
	uncapped := Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries}
	for _, active := range []int{1, 2, 8} {
		if got := uncapped.NICFactor(active); got != 1 {
			t.Fatalf("NICSerial=0 active=%d: factor %g, want 1", active, got)
		}
	}
	capped := Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries, NICSerial: 2}
	cases := []struct {
		active int
		want   float64
	}{{1, 1}, {2, 1}, {3, 1.5}, {4, 2}, {8, 4}}
	for _, tc := range cases {
		if got := capped.NICFactor(tc.active); got != tc.want {
			t.Fatalf("NICSerial=2 active=%d: factor %g, want %g", tc.active, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NICFactor(0) should panic")
		}
	}()
	capped.NICFactor(0)
}

func TestValidateRejectsNegativeNICSerial(t *testing.T) {
	topo := Topology{RanksPerNode: 2, Intra: NVLinkLike, Inter: Aries, NICSerial: -1}
	if err := topo.Validate(); err == nil {
		t.Fatal("negative NICSerial must fail validation")
	}
}

func TestContendedTransferTime(t *testing.T) {
	p := Profile{Name: "x", Alpha: 1e-6, BetaPerByte: 1e-9, SoftwareOverhead: 1e-7, SoftwarePerByte: 1e-10}
	bytes := 1000
	want := p.Alpha + p.SoftwareOverhead + (p.BetaPerByte+p.SoftwarePerByte)*float64(bytes)*3
	if got := p.ContendedTransferTime(bytes, 3); got != want {
		t.Fatalf("ContendedTransferTime = %g, want %g", got, want)
	}
	if got, want := p.ContendedTransferTime(bytes, 1), p.TransferTime(bytes); got != want {
		t.Fatalf("factor-1 contended time %g != TransferTime %g", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor < 1 should panic")
		}
	}()
	p.ContendedTransferTime(bytes, 0.5)
}
