package simnet

import (
	"reflect"
	"testing"
)

func TestTopologyNodeMapping(t *testing.T) {
	topo := Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Fatal("NodeOf wrong")
	}
	if !topo.SameNode(0, 3) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	if topo.Leader(6) != 4 || topo.Leader(0) != 0 {
		t.Fatal("Leader wrong")
	}
	if topo.ProfileFor(1, 2).Name != "nvlink" {
		t.Fatal("intra-node message should use the intra profile")
	}
	if topo.ProfileFor(1, 9).Name != "aries" {
		t.Fatal("inter-node message should use the inter profile")
	}
}

func TestTopologyRankEnumeration(t *testing.T) {
	topo := Topology{RanksPerNode: 4, Intra: NVLinkLike, Inter: Aries}
	// Divisible world.
	if got := topo.NodeRanks(5, 8); !reflect.DeepEqual(got, []int{4, 5, 6, 7}) {
		t.Fatalf("NodeRanks(5, 8) = %v", got)
	}
	if got := topo.LeaderRanks(8); !reflect.DeepEqual(got, []int{0, 4}) {
		t.Fatalf("LeaderRanks(8) = %v", got)
	}
	// Ragged world: the last node is smaller.
	if got := topo.NodeRanks(9, 10); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("NodeRanks(9, 10) = %v", got)
	}
	if got := topo.LeaderRanks(10); !reflect.DeepEqual(got, []int{0, 4, 8}) {
		t.Fatalf("LeaderRanks(10) = %v", got)
	}
	if topo.Nodes(10) != 3 || topo.Nodes(8) != 2 || topo.Nodes(1) != 1 {
		t.Fatal("Nodes wrong")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{RanksPerNode: 0, Intra: NVLinkLike, Inter: Aries}).Validate(); err == nil {
		t.Fatal("RanksPerNode=0 must fail validation")
	}
	if err := (Topology{RanksPerNode: 2, Inter: Aries}).Validate(); err == nil {
		t.Fatal("unnamed intra profile must fail validation")
	}
}

func TestNVLinkLikeProfile(t *testing.T) {
	p, err := ProfileByName("nvlink")
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha >= Aries.Alpha || p.BetaPerByte >= Aries.BetaPerByte {
		t.Fatal("nvlink must be strictly cheaper than aries in both α and β")
	}
}
