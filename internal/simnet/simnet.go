// Package simnet provides the latency–bandwidth (α–β) cost model the paper
// analyzes its collectives in (§5.2: "the cost of sending a message of size
// L is T(L) = α + βL"), extended with a per-element compute term γ for
// local reductions and a per-message software overhead term for modeling
// Spark-like communication layers.
//
// Each rank owns a virtual Clock. A message stamped with the sender's local
// time t arrives at the receiver at t + α + β·bytes (+ software overhead);
// the receiver's clock advances to the maximum of its own time and the
// arrival time. This is a LogP-style model with full bisection bandwidth —
// the same assumptions as the paper's analysis ("bidirectional, direct
// point-to-point communication between the nodes") — so the analytic bounds
// of §5.3 hold exactly, and algorithm crossovers appear where the paper
// predicts them.
package simnet

import "fmt"

// Profile describes a network (and the software stack driving it) in the
// α–β model.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// Alpha is the fixed latency per message transmission, in seconds.
	Alpha float64
	// BetaPerByte is the transfer time per byte, in seconds (1/bandwidth).
	BetaPerByte float64
	// GammaPerElem is the local compute time per element combined during a
	// reduction, in seconds. The paper notes δ should shrink in practice to
	// reflect that "summing sparse vectors is computationally more
	// expensive"; γ (with SparseFactor below) makes that cost explicit.
	GammaPerElem float64
	// SparseComputeFactor multiplies GammaPerElem for sparse merges
	// (index comparisons and branches per pair vs a vectorized dense add).
	SparseComputeFactor float64
	// SoftwareOverhead is an additional per-message CPU cost (serialization,
	// scheduling) charged to both sender and receiver. Near zero for MPI;
	// large for Spark-like layers.
	SoftwareOverhead float64
	// SoftwarePerByte is an additional per-byte serialization cost charged
	// like bandwidth. Near zero for MPI (zero-copy); significant for
	// object-serializing layers.
	SoftwarePerByte float64
}

// Built-in profiles. Alpha/bandwidth values follow published measurements
// of the paper's systems: Cray Aries (Piz Daint), InfiniBand FDR and GigE
// (Greina), plus a Spark-like software stack for the §8.2 comparison.
var (
	// Aries models Piz Daint's Cray Aries interconnect with a Dragonfly
	// topology: ~1.3µs latency, ~10 GB/s effective per-node bandwidth.
	Aries = Profile{
		Name: "aries", Alpha: 1.3e-6, BetaPerByte: 1e-10,
		GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
	}
	// InfiniBandFDR models Greina's FDR fabric: ~1.7µs, ~6.8 GB/s.
	InfiniBandFDR = Profile{
		Name: "ib-fdr", Alpha: 1.7e-6, BetaPerByte: 1.47e-10,
		GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
	}
	// GigE models Gigabit Ethernet: ~50µs kernel/TCP latency, ~117 MB/s.
	GigE = Profile{
		Name: "gige", Alpha: 5e-5, BetaPerByte: 8.5e-9,
		GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
	}
	// SparkLike models a JVM dataflow communication layer on GigE: high
	// per-message scheduling cost and per-byte object serialization, no
	// sparsity support. Calibrated so dense MPI beats it by roughly the
	// 12× comm factor the paper measures on GigE (§8.2).
	SparkLike = Profile{
		Name: "spark", Alpha: 5e-5, BetaPerByte: 8.5e-9,
		GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
		SoftwareOverhead: 2e-3, SoftwarePerByte: 9e-8,
	}
)

// ProfileByName returns a built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range []Profile{Aries, InfiniBandFDR, GigE, SparkLike, NVLinkLike, AriesGlobal} {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("simnet: unknown profile %q", name)
}

// TransferTime returns the modeled time in seconds to move one message of
// the given payload size in bytes: α + β·bytes plus software costs.
func (p Profile) TransferTime(bytes int) float64 {
	return p.ContendedTransferTime(bytes, 1)
}

// ContendedTransferTime is TransferTime with the bandwidth term (β and
// SoftwarePerByte) scaled by a NIC-contention factor (see
// Topology.NICFactor): α + overhead + (β+βsw)·bytes·factor, in seconds.
// The latency terms are unscaled — contention serializes bytes, it does
// not add message setups. factor must be >= 1.
func (p Profile) ContendedTransferTime(bytes int, factor float64) float64 {
	if factor < 1 {
		panic("simnet: contention factor must be >= 1")
	}
	return p.Alpha + p.SoftwareOverhead +
		(p.BetaPerByte+p.SoftwarePerByte)*float64(bytes)*factor
}

// DenseReduceTime returns the modeled compute time to combine n dense
// elements.
func (p Profile) DenseReduceTime(n int) float64 {
	return p.GammaPerElem * float64(n)
}

// SparseMergeTime returns the modeled compute time to merge sparse streams
// totalling n index–value pairs.
func (p Profile) SparseMergeTime(n int) float64 {
	return p.GammaPerElem * p.SparseComputeFactor * float64(n)
}

// Clock is a rank-local virtual clock. Clocks are confined to their rank's
// goroutine; cross-rank time only flows through message timestamps.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. Negative dt panics.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic("simnet: negative time advance")
	}
	c.now += dt
}

// Observe moves the clock forward to time t if t is later (message
// arrival).
func (c *Clock) Observe(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset sets the clock back to zero (between experiment repetitions).
func (c *Clock) Reset() { c.now = 0 }

// Device models a compute device for the DNN experiments: step compute
// time = FLOPs / FlopsPerSec.
type Device struct {
	Name        string
	FlopsPerSec float64
}

// Published peak-ish effective training throughput for the devices in the
// paper's clusters (conservative effective rates, not datasheet peaks).
var (
	GPUP100 = Device{Name: "P100", FlopsPerSec: 8e12}
	GPUV100 = Device{Name: "V100", FlopsPerSec: 1.2e13}
	GPUK80  = Device{Name: "K80", FlopsPerSec: 3e12}
	CPUXeon = Device{Name: "Xeon", FlopsPerSec: 4e11}
)

// ComputeTime returns the modeled wall time to execute the given FLOPs.
func (d Device) ComputeTime(flops float64) float64 {
	if flops < 0 {
		panic("simnet: negative flops")
	}
	return flops / d.FlopsPerSec
}
