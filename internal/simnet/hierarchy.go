package simnet

import (
	"fmt"
	"math"
)

// Level is one tier of a machine Hierarchy, ordered from innermost
// (NVLink-like intra-node links) to outermost (global links). A level
// groups GroupSize units of the previous level — ranks at level 0, level-0
// groups at level 1, and so on — into one group wired by Profile.
type Level struct {
	// GroupSize is the number of previous-level units (ranks at level 0)
	// composing one group at this level. Must be >= 1 on every level except
	// the outermost, where 0 (the idiomatic value) means "the rest of the
	// machine": the outermost group always spans the whole world.
	GroupSize int
	// Profile prices messages whose innermost shared group is at this
	// level: level 0 prices messages within one node, level 1 messages
	// between nodes of the same group, and the outermost level messages
	// crossing the top-tier links.
	Profile Profile
	// Serial is the egress serialization cap of one group at this level:
	// the number of concurrent full-rate flows one group can drive across
	// its boundary (level 0: the per-node NIC cap, level 1: a rack or
	// Dragonfly-group uplink cap). A message escaping the group pays the
	// fair-share bandwidth factor active/Serial when more than Serial
	// co-located flows are active (see Hierarchy.SerialFactor). Zero
	// disables contention at this level; the outermost level's cap is
	// meaningless (nothing escapes the machine) and ignored.
	Serial int
	// IngressSerial is the receiver-side mirror of Serial: the number of
	// concurrent full-rate flows one group can absorb across its boundary
	// before incast serialization sets in. A message entering the group
	// pays the fair-share factor active/IngressSerial when more than
	// IngressSerial flows converge on it (see Hierarchy.IngressFactor).
	// Zero — the value on every built-in preset — disables ingress
	// contention at this level, so single-tenant pricing is unchanged.
	IngressSerial int
}

// Hierarchy is the N-level generalization of the two-level Topology:
// an ordered list of Levels from innermost to outermost. Ranks are grouped
// into consecutive blocks bottom-up — Span(l) consecutive ranks share a
// level-l group — and a message between two ranks is priced by the profile
// of the innermost level whose group both share, paying each crossed
// level's egress serialization factor on its bandwidth term.
//
// A Topology is exactly a two-level Hierarchy (Topology.Hierarchy()); the
// three-tier shape of a Dragonfly machine is DragonflyLike.
type Hierarchy struct {
	// Levels holds the tiers, innermost first. See Validate for the
	// structural requirements.
	Levels []Level
}

// MaxLevels bounds the hierarchy depth. Real machines have a handful of
// tiers; the bound keeps the collectives' per-level tag budget trivially
// safe.
const MaxLevels = 8

// Validate reports whether the hierarchy is usable: between 1 and
// MaxLevels levels, every profile named, every GroupSize >= 1 except the
// outermost (which may be 0, meaning the whole machine), and no negative
// Serial cap.
func (h Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("simnet: hierarchy needs at least one level")
	}
	if len(h.Levels) > MaxLevels {
		return fmt.Errorf("simnet: hierarchy has %d levels, max %d", len(h.Levels), MaxLevels)
	}
	for i, lv := range h.Levels {
		if lv.Profile.Name == "" {
			return fmt.Errorf("simnet: hierarchy level %d profile must be named", i)
		}
		if lv.Serial < 0 {
			return fmt.Errorf("simnet: hierarchy level %d Serial must be >= 0, got %d", i, lv.Serial)
		}
		if lv.IngressSerial < 0 {
			return fmt.Errorf("simnet: hierarchy level %d IngressSerial must be >= 0, got %d", i, lv.IngressSerial)
		}
		if i < len(h.Levels)-1 && lv.GroupSize < 1 {
			return fmt.Errorf("simnet: hierarchy level %d needs GroupSize >= 1, got %d", i, lv.GroupSize)
		}
		if i == len(h.Levels)-1 && lv.GroupSize < 0 {
			return fmt.Errorf("simnet: outermost GroupSize must be >= 0, got %d", lv.GroupSize)
		}
	}
	return nil
}

// Depth returns the number of levels.
func (h Hierarchy) Depth() int { return len(h.Levels) }

// Span returns the number of consecutive ranks forming one level-l group.
// The outermost level (GroupSize 0, or any product overflowing int) spans
// the whole world and reports math.MaxInt.
func (h Hierarchy) Span(l int) int {
	span := 1
	for i := 0; i <= l; i++ {
		g := h.Levels[i].GroupSize
		if g <= 0 || span > math.MaxInt/g {
			return math.MaxInt
		}
		span *= g
	}
	return span
}

// GroupOf returns the index of the level-l group hosting the given rank.
func (h Hierarchy) GroupOf(rank, l int) int {
	span := h.Span(l)
	if span == math.MaxInt {
		return 0
	}
	return rank / span
}

// SharedLevel returns the innermost level at which two ranks share a
// group — the locality of a message between them: 0 for node-mates, 1 for
// ranks in the same level-1 group but different nodes, and so on up to
// Depth()-1 (the outermost level always covers everyone).
func (h Hierarchy) SharedLevel(a, b int) int {
	for l := 0; l < len(h.Levels)-1; l++ {
		if h.GroupOf(a, l) == h.GroupOf(b, l) {
			return l
		}
	}
	return len(h.Levels) - 1
}

// ProfileFor returns the profile pricing a message from rank a to rank b:
// the profile of their shared level.
func (h Hierarchy) ProfileFor(a, b int) Profile {
	return h.Levels[h.SharedLevel(a, b)].Profile
}

// SerialFactor returns the dimensionless bandwidth multiplier one flow
// escaping a level-`level` group pays when `active` co-located flows drive
// the group's egress concurrently: 1 when the level has no cap (Serial ==
// 0) or the flows fit under it, active/Serial (> 1) otherwise. active must
// be >= 1 (a sender is always active itself). The per-node NICFactor of
// the two-level Topology is SerialFactor at level 0.
func (h Hierarchy) SerialFactor(level, active int) float64 {
	if active < 1 {
		panic("simnet: SerialFactor needs active >= 1")
	}
	s := h.Levels[level].Serial
	if s <= 0 || active <= s {
		return 1
	}
	return float64(active) / float64(s)
}

// IngressFactor returns the dimensionless bandwidth multiplier one flow
// entering a level-`level` group pays when `active` flows converge on the
// group's ingress concurrently: 1 when the level has no cap
// (IngressSerial == 0) or the flows fit under it, active/IngressSerial
// (> 1) otherwise — the receiver-side (incast) mirror of SerialFactor.
// active must be >= 1 (a receiver always absorbs its own flow).
func (h Hierarchy) IngressFactor(level, active int) float64 {
	if active < 1 {
		panic("simnet: IngressFactor needs active >= 1")
	}
	s := h.Levels[level].IngressSerial
	if s <= 0 || active <= s {
		return 1
	}
	return float64(active) / float64(s)
}

// HasIngress reports whether any level carries an ingress serialization
// cap. All built-in presets report false, so ingress pricing stays off —
// and single-tenant runs stay byte-identical — unless a caller opts in.
func (h Hierarchy) HasIngress() bool {
	for _, lv := range h.Levels {
		if lv.IngressSerial > 0 {
			return true
		}
	}
	return false
}

// Induced derives the hierarchy a job gang-placed on the given machine
// slots observes over its own ranks: job rank i lives on slots[i], and
// induced level l groups the job ranks sharing a level-l machine group,
// carrying that machine level's Profile and serialization caps. slots must
// be strictly ascending (so job ranks cluster contiguously by machine
// group). Returns ok=false when the placement is irregular — some level
// hosts a different number of job slots per occupied machine group — in
// which case no nested hierarchy describes the job's structure and the job
// should run flat. When ok, the induced hierarchy's SharedLevel agrees
// with the machine's on every pair of job ranks, so structure-driven
// algorithm choices match machine-level pricing.
func (h Hierarchy) Induced(slots []int) (induced Hierarchy, ok bool) {
	if len(slots) == 0 {
		return Hierarchy{}, false
	}
	for i := 1; i < len(slots); i++ {
		if slots[i] <= slots[i-1] {
			return Hierarchy{}, false
		}
	}
	levels := make([]Level, len(h.Levels))
	prev := 1 // induced span of the previous level
	for l := 0; l < len(h.Levels)-1; l++ {
		c, uniform := h.uniformGroupCount(slots, l)
		if !uniform || c%prev != 0 {
			return Hierarchy{}, false
		}
		lv := h.Levels[l]
		lv.GroupSize = c / prev
		levels[l] = lv
		prev = c
	}
	top := h.Levels[len(h.Levels)-1]
	top.GroupSize = 0
	levels[len(levels)-1] = top
	return Hierarchy{Levels: levels}, true
}

// uniformGroupCount returns the number of slots per occupied level-l
// machine group when that count is uniform across the occupied groups.
// slots must be ascending, so occupied groups appear as contiguous runs.
func (h Hierarchy) uniformGroupCount(slots []int, l int) (count int, uniform bool) {
	want, run := 0, 0
	g := h.GroupOf(slots[0], l)
	for _, s := range slots {
		if sg := h.GroupOf(s, l); sg != g {
			if want == 0 {
				want = run
			} else if run != want {
				return 0, false
			}
			g, run = sg, 0
		}
		run++
	}
	if want == 0 {
		want = run
	} else if run != want {
		return 0, false
	}
	return want, true
}

// Leader returns the leader rank — the lowest rank — of the level-l group
// hosting the given rank. Leadership nests: the leader of a level-l group
// is also the leader of its own group at every level below.
func (h Hierarchy) Leader(rank, l int) int {
	span := h.Span(l)
	if span == math.MaxInt {
		return 0
	}
	return rank / span * span
}

// GroupRanks returns the ranks of the level-l group hosting the given
// rank, ascending, clipped to a world of p ranks (the last group of a
// level may be ragged).
func (h Hierarchy) GroupRanks(rank, l, p int) []int {
	lo := h.Leader(rank, l)
	hi := p
	if span := h.Span(l); span != math.MaxInt && lo+span < p {
		hi = lo + span
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// LeadersAt returns the leader ranks of every level-l group of a world of
// p ranks, in ascending order.
func (h Hierarchy) LeadersAt(l, p int) []int {
	span := h.Span(l)
	if span == math.MaxInt {
		return []int{0}
	}
	out := make([]int, 0, (p+span-1)/span)
	for r := 0; r < p; r += span {
		out = append(out, r)
	}
	return out
}

// StageRanks returns the participants of the level-l phase of a recursive
// hierarchical collective within the given rank's level-l group: the
// leaders of its level-(l-1) subgroups — all member ranks when l is 0 —
// ascending, clipped to a world of p ranks. The first entry is always the
// group's own leader.
func (h Hierarchy) StageRanks(rank, l, p int) []int {
	step := 1
	if l > 0 {
		step = h.Span(l - 1)
	}
	lo := h.Leader(rank, l)
	hi := p
	if span := h.Span(l); span != math.MaxInt && lo+span < p {
		hi = lo + span
	}
	out := make([]int, 0, (hi-lo+step-1)/step)
	for r := lo; r < hi; r += step {
		out = append(out, r)
	}
	return out
}

// Hierarchy returns the two-level hierarchy equivalent to the topology:
// the Intra profile (with the NICSerial egress cap) inside nodes of
// RanksPerNode ranks, the Inter profile everywhere else. Worlds built from
// a Topology are priced identically through either representation.
func (t Topology) Hierarchy() Hierarchy {
	return Hierarchy{Levels: []Level{
		{GroupSize: t.RanksPerNode, Profile: t.Intra, Serial: t.NICSerial},
		{Profile: t.Inter},
	}}
}

// AriesGlobal models the global (inter-group) optical links of a Dragonfly
// machine: one extra switch traversal of latency and a per-node effective
// share of the tapered global bandwidth roughly 4x below the local Aries
// links.
var AriesGlobal = Profile{
	Name: "aries-global", Alpha: 2.6e-6, BetaPerByte: 4e-10,
	GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
}

// DragonflyLike returns the three-tier hierarchy of a Dragonfly machine in
// the class of Piz Daint: NVLink-like links inside nodes of ranksPerNode
// ranks behind a single full-rate NIC (Serial 1), Aries links between the
// nodesPerGroup nodes of one group with a two-flow tapered group uplink
// (Serial 2), and AriesGlobal links between groups.
func DragonflyLike(ranksPerNode, nodesPerGroup int) Hierarchy {
	return Hierarchy{Levels: []Level{
		{GroupSize: ranksPerNode, Profile: NVLinkLike, Serial: 1},
		{GroupSize: nodesPerGroup, Profile: Aries, Serial: 2},
		{Profile: AriesGlobal},
	}}
}
