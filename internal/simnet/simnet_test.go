package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransferTimeAlphaBetaModel(t *testing.T) {
	p := Profile{Alpha: 1e-6, BetaPerByte: 1e-9}
	if got := p.TransferTime(0); got != 1e-6 {
		t.Fatalf("zero-byte transfer = %g, want α", got)
	}
	want := 1e-6 + 1000e-9
	if got := p.TransferTime(1000); math.Abs(got-want) > 1e-18 {
		t.Fatalf("transfer(1000) = %g, want %g", got, want)
	}
}

func TestSoftwareOverheadAdds(t *testing.T) {
	base := GigE.TransferTime(1 << 20)
	spark := SparkLike.TransferTime(1 << 20)
	if spark <= base {
		t.Fatal("Spark-like profile must be slower than raw GigE")
	}
	// The paper measures ~12x comm gap dense-MPI vs Spark on GigE for large
	// messages; our per-byte serialization factor should land within 5-20x.
	ratio := spark / base
	if ratio < 5 || ratio > 20 {
		t.Fatalf("spark/gige large-message ratio = %g, want 5–20", ratio)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"aries", "ib-fdr", "gige", "spark"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("token-ring"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestNetworkOrdering(t *testing.T) {
	// For any message size, Aries ≤ IB ≤ GigE ≤ Spark.
	for _, bytes := range []int{0, 64, 4096, 1 << 20, 64 << 20} {
		a, i, g, s := Aries.TransferTime(bytes), InfiniBandFDR.TransferTime(bytes),
			GigE.TransferTime(bytes), SparkLike.TransferTime(bytes)
		if !(a <= i && i <= g && g <= s) {
			t.Fatalf("bytes=%d: ordering violated: %g %g %g %g", bytes, a, i, g, s)
		}
	}
}

func TestClockSemantics(t *testing.T) {
	var c Clock
	c.Advance(2)
	c.Observe(1) // in the past: no-op
	if c.Now() != 2 {
		t.Fatalf("Now = %g, want 2", c.Now())
	}
	c.Observe(5)
	if c.Now() != 5 {
		t.Fatalf("Now = %g, want 5", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestClockPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

// Property: clocks are monotone under any sequence of Advance/Observe.
func TestQuickClockMonotone(t *testing.T) {
	f := func(steps []float64) bool {
		var c Clock
		prev := 0.0
		for _, s := range steps {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			if s >= 0 {
				c.Advance(s)
			} else {
				c.Observe(-s)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseMergeCostExceedsDense(t *testing.T) {
	for _, p := range []Profile{Aries, InfiniBandFDR, GigE} {
		if p.SparseMergeTime(1000) <= p.DenseReduceTime(1000) {
			t.Fatalf("%s: sparse merge must cost more per element than dense add", p.Name)
		}
	}
}

func TestDeviceComputeTime(t *testing.T) {
	if got := GPUP100.ComputeTime(8e12); math.Abs(got-1) > 1e-12 {
		t.Fatalf("P100 8TFLOP = %gs, want 1s", got)
	}
	if GPUV100.ComputeTime(1e12) >= GPUK80.ComputeTime(1e12) {
		t.Fatal("V100 must be faster than K80")
	}
}
