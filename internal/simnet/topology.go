package simnet

import "fmt"

// Topology extends the flat α–β model to the two-level machines the paper
// actually targets (multi-GPU nodes on Greina, Piz Daint's Dragonfly):
// ranks are grouped into nodes of RanksPerNode consecutive ranks, and a
// message is costed by the Intra profile when sender and receiver share a
// node and by the Inter profile otherwise. Intra-node links (NVLink, QPI,
// shared memory) are typically an order of magnitude cheaper in both α and
// β than the network, which is what makes two-level collective schemes
// (intra reduce → inter exchange among leaders → intra broadcast) win over
// the flat algorithms analyzed in §5.3.
type Topology struct {
	// RanksPerNode is the number of consecutive ranks placed on one node.
	// The last node may be smaller when the world size is not divisible.
	// Must be >= 1.
	RanksPerNode int
	// Intra prices messages between ranks on the same node.
	Intra Profile
	// Inter prices messages between ranks on different nodes.
	Inter Profile
	// NICSerial is the per-node NIC serialization cap: the number of
	// concurrent inter-node sends one node can drive at full Inter
	// bandwidth. When more ranks of a node inject inter-node traffic at
	// once, each flow's bandwidth term (β and software per-byte) is
	// multiplied by active/NICSerial — the fair-share cost of pushing
	// `active` flows through NICSerial full-rate channels. Zero (the
	// default) disables contention modeling and reproduces the paper's
	// full-bisection-bandwidth assumption; must not be negative. Latency
	// (α) is never scaled: the cap models bandwidth serialization, not
	// extra message setup.
	NICSerial int
}

// Validate reports whether the topology is usable: RanksPerNode >= 1, both
// profiles named, and NICSerial >= 0.
func (t Topology) Validate() error {
	if t.RanksPerNode < 1 {
		return fmt.Errorf("simnet: topology needs RanksPerNode >= 1, got %d", t.RanksPerNode)
	}
	if t.Intra.Name == "" || t.Inter.Name == "" {
		return fmt.Errorf("simnet: topology profiles must be named (intra=%q inter=%q)",
			t.Intra.Name, t.Inter.Name)
	}
	if t.NICSerial < 0 {
		return fmt.Errorf("simnet: NICSerial must be >= 0, got %d", t.NICSerial)
	}
	return nil
}

// NICFactor returns the dimensionless bandwidth multiplier charged to one
// inter-node message when `active` ranks on the sending node drive the NIC
// concurrently: 1 when contention modeling is off (NICSerial == 0) or the
// flows fit under the cap, active/NICSerial (> 1) otherwise. active must
// be >= 1 (a sender is always active itself).
func (t Topology) NICFactor(active int) float64 {
	if active < 1 {
		panic("simnet: NICFactor needs active >= 1")
	}
	if t.NICSerial <= 0 || active <= t.NICSerial {
		return 1
	}
	return float64(active) / float64(t.NICSerial)
}

// NodeOf returns the node index hosting the given rank.
func (t Topology) NodeOf(rank int) int { return rank / t.RanksPerNode }

// SameNode reports whether two ranks share a node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// ProfileFor returns the profile pricing a message from rank a to rank b.
func (t Topology) ProfileFor(a, b int) Profile {
	if t.SameNode(a, b) {
		return t.Intra
	}
	return t.Inter
}

// Leader returns the node-leader rank (the lowest rank on the node) for
// the given rank.
func (t Topology) Leader(rank int) int { return t.NodeOf(rank) * t.RanksPerNode }

// Nodes returns the number of nodes in a world of p ranks.
func (t Topology) Nodes(p int) int {
	return (p + t.RanksPerNode - 1) / t.RanksPerNode
}

// NodeRanks returns the world ranks hosted on the node of the given rank,
// in ascending order, for a world of p ranks.
func (t Topology) NodeRanks(rank, p int) []int {
	lo := t.Leader(rank)
	hi := lo + t.RanksPerNode
	if hi > p {
		hi = p
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// LeaderRanks returns the node-leader ranks of a world of p ranks, in
// ascending order.
func (t Topology) LeaderRanks(p int) []int {
	out := make([]int, 0, t.Nodes(p))
	for r := 0; r < p; r += t.RanksPerNode {
		out = append(out, r)
	}
	return out
}

// NVLinkLike models an intra-node GPU interconnect in the class of the
// paper's multi-GPU Greina nodes: sub-microsecond launch latency and
// ~25 GB/s effective per-link bandwidth — roughly 2× lower α and 4× higher
// bandwidth than Aries. Compute constants match the other profiles (the
// reduction runs on the same device either way).
var NVLinkLike = Profile{
	Name: "nvlink", Alpha: 6e-7, BetaPerByte: 4e-11,
	GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
}
